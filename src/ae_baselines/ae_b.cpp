#include "ae_baselines/ae_b.hpp"

#include <algorithm>
#include <numeric>

#include "lossless/lz.hpp"
#include "nn/losses.hpp"
#include "sz/common.hpp"
#include "util/timer.hpp"

namespace aesz {
namespace {

constexpr std::uint32_t kMagic = AEB::kStreamMagic;

}  // namespace

ResBlock3d::ResBlock3d(std::size_t channels, Rng& rng)
    : conv1_(channels, channels, 3, 1, 1, rng),
      conv2_(channels, channels, 3, 1, 1, rng), relu_(0.0f) {}

nn::Tensor ResBlock3d::forward(const nn::Tensor& x, bool train) {
  nn::Tensor h = conv1_.forward(x, train);
  h = relu_.forward(h, train);
  h = conv2_.forward(h, train);
  for (std::size_t i = 0; i < h.numel(); ++i) h[i] += x[i];
  return h;
}

nn::Tensor ResBlock3d::backward(const nn::Tensor& gy) {
  nn::Tensor g = conv2_.backward(gy);
  g = relu_.backward(g);
  g = conv1_.backward(g);
  for (std::size_t i = 0; i < g.numel(); ++i) g[i] += gy[i];
  return g;
}

std::vector<nn::Param*> ResBlock3d::params() {
  std::vector<nn::Param*> out;
  for (nn::Param* p : conv1_.params()) out.push_back(p);
  for (nn::Param* p : conv2_.params()) out.push_back(p);
  return out;
}

AEB::AEB(Options opt, std::uint64_t seed) : opt_(std::move(opt)) {
  AESZ_CHECK_MSG(opt_.block % 4 == 0, "AE-B block must be divisible by 4");
  Rng rng(seed);
  const std::size_t wdt = opt_.width;
  // Encoder: lift to `width` channels, then two [res..., stride-2] stages
  // (4x spatial reduction per axis = 64x in 3-D) ending at 1 channel.
  enc_.push_back(std::make_unique<nn::Conv3d>(1, wdt, 3, 1, 1, rng));
  for (std::size_t i = 0; i < opt_.res_blocks; ++i)
    enc_.push_back(std::make_unique<ResBlock3d>(wdt, rng));
  enc_.push_back(std::make_unique<nn::Conv3d>(wdt, 2 * wdt, 3, 2, 1, rng));
  for (std::size_t i = 0; i < opt_.res_blocks; ++i)
    enc_.push_back(std::make_unique<ResBlock3d>(2 * wdt, rng));
  enc_.push_back(std::make_unique<nn::Conv3d>(2 * wdt, 2 * wdt, 3, 2, 1, rng));
  enc_.push_back(std::make_unique<nn::Conv3d>(2 * wdt, 1, 3, 1, 1, rng));

  dec_.push_back(std::make_unique<nn::Conv3d>(1, 2 * wdt, 3, 1, 1, rng));
  dec_.push_back(
      std::make_unique<nn::ConvT3d>(2 * wdt, 2 * wdt, 3, 2, 1, 1, rng));
  for (std::size_t i = 0; i < opt_.res_blocks; ++i)
    dec_.push_back(std::make_unique<ResBlock3d>(2 * wdt, rng));
  dec_.push_back(std::make_unique<nn::ConvT3d>(2 * wdt, wdt, 3, 2, 1, 1, rng));
  for (std::size_t i = 0; i < opt_.res_blocks; ++i)
    dec_.push_back(std::make_unique<ResBlock3d>(wdt, rng));
  dec_.push_back(std::make_unique<nn::Conv3d>(wdt, 1, 3, 1, 1, rng));
  dec_.push_back(std::make_unique<nn::Tanh>());

  const std::size_t lt = opt_.block / 4;
  latent_per_block_ = lt * lt * lt;  // 1 channel on a (block/4)^3 grid
  adam_ = std::make_unique<nn::Adam>(params(), opt_.lr);
}

nn::Tensor AEB::run(std::vector<std::unique_ptr<nn::Layer>>& stack,
                    nn::Tensor x, bool train) {
  for (auto& l : stack) x = l->forward(x, train);
  return x;
}

std::vector<nn::Param*> AEB::params() {
  std::vector<nn::Param*> out;
  for (auto& l : enc_)
    for (nn::Param* p : l->params()) out.push_back(p);
  for (auto& l : dec_)
    for (nn::Param* p : l->params()) out.push_back(p);
  return out;
}

double AEB::train_step(const nn::Tensor& batch) {
  adam_->zero_grad();
  nn::Tensor z = run(enc_, batch, true);
  nn::Tensor y = run(dec_, z, true);
  nn::Tensor g(y.shape());
  const double loss = nn::losses::mse(y, batch, g);
  for (auto it = dec_.rbegin(); it != dec_.rend(); ++it) g = (*it)->backward(g);
  for (auto it = enc_.rbegin(); it != enc_.rend(); ++it) g = (*it)->backward(g);
  adam_->step();
  return loss;
}

TrainReport AEB::train(const std::vector<const Field*>& fields,
                       const TrainOptions& opts) {
  nn::AEConfig blockcfg;
  blockcfg.rank = 3;
  blockcfg.block = opt_.block;
  std::vector<std::vector<float>> samples;
  for (const Field* f : fields) {
    AESZ_CHECK_MSG(f->dims().rank == 3, "AE-B supports only 3-D data");
    const BlockSplit s = make_block_split(f->dims(), opt_.block);
    auto [lo, hi] = f->min_max();
    const Normalizer nrm{lo, hi};
    for (std::size_t bid = 0; bid < s.total; ++bid) {
      samples.emplace_back(s.block_elems());
      extract_block(*f, s, bid, nrm, samples.back().data());
    }
  }
  Rng rng(opts.seed);
  if (samples.size() > opts.max_blocks) {
    for (std::size_t i = 0; i < opts.max_blocks; ++i)
      std::swap(samples[i], samples[i + rng.below(samples.size() - i)]);
    samples.resize(opts.max_blocks);
  }
  AESZ_CHECK_MSG(!samples.empty(), "no AE-B training blocks");

  TrainReport report;
  report.samples = samples.size();
  Timer timer;
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::size_t be = samples[0].size();
  for (std::size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    double el = 0.0;
    std::size_t nb = 0;
    for (std::size_t start = 0; start < order.size(); start += opts.batch) {
      const std::size_t n = std::min(opts.batch, order.size() - start);
      nn::Tensor batch({n, 1, opt_.block, opt_.block, opt_.block});
      for (std::size_t i = 0; i < n; ++i)
        std::copy(samples[order[start + i]].begin(),
                  samples[order[start + i]].end(), batch.data() + i * be);
      el += train_step(batch);
      ++nb;
    }
    report.epoch_loss.push_back(el / static_cast<double>(nb));
  }
  report.seconds = timer.seconds();
  return report;
}

std::vector<std::uint8_t> AEB::compress(const Field& f,
                                        const ErrorBound& eb) {
  AESZ_CHECK_ARG(f.dims().rank == 3, "AE-B supports only 3-D data");
  const Dims& d = f.dims();
  auto [lo, hi] = f.min_max();
  const Normalizer nrm{lo, hi};
  const BlockSplit split = make_block_split(d, opt_.block);
  const std::size_t be = split.block_elems();

  ByteWriter w;
  sz::write_header(w, kMagic, d, eb, /*abs_eb=*/0.0);
  w.put(lo);
  w.put(hi);
  w.put_varint(opt_.block);

  // Fixed-ratio latents: raw float32, 1/64 of the input volume.
  std::vector<float> latents(split.total * latent_per_block_);
  const std::size_t batch = 16;
  for (std::size_t start = 0; start < split.total; start += batch) {
    const std::size_t n = std::min(batch, split.total - start);
    nn::Tensor x({n, 1, opt_.block, opt_.block, opt_.block});
    for (std::size_t i = 0; i < n; ++i)
      extract_block(f, split, start + i, nrm, x.data() + i * be);
    nn::Tensor z = run(enc_, x, false);
    AESZ_CHECK(z.numel() == n * latent_per_block_);
    std::copy(z.data(), z.data() + n * latent_per_block_,
              latents.data() + start * latent_per_block_);
  }
  ByteWriter lw;
  lw.put_array<float>(latents);
  w.put_blob(lw.bytes());
  return sz::seal_stream(w.take());
}

Field AEB::decompress_impl(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const sz::StreamHeader h = sz::read_header_or_throw(r, kMagic);
  const Dims d = h.dims;
  AESZ_CHECK_STREAM(d.rank == 3, "AE-B streams are 3-D");
  const auto lo = r.get<float>();
  const auto hi = r.get<float>();
  const std::size_t block = r.get_varint();
  if (block != opt_.block)
    throw Error(ErrCode::kModelMismatch, "AE-B stream block mismatch");
  const auto blob = r.get_blob();
  ByteReader lr(blob);
  const auto latents = lr.get_array<float>();

  const Normalizer nrm{lo, hi};
  const BlockSplit split = make_block_split(d, opt_.block);
  AESZ_CHECK_STREAM(latents.size() == split.total * latent_per_block_,
                    "latent count mismatch");
  Field out(d);
  const std::size_t lt = opt_.block / 4;
  const std::size_t batch = 16;
  for (std::size_t start = 0; start < split.total; start += batch) {
    const std::size_t n = std::min(batch, split.total - start);
    nn::Tensor z({n, 1, lt, lt, lt});
    std::copy(latents.data() + start * latent_per_block_,
              latents.data() + (start + n) * latent_per_block_, z.data());
    nn::Tensor y = run(dec_, z, false);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t bid = start + i;
      std::size_t off[3], ext[3];
      block_region(split, bid, off, ext);
      const float* rc = y.data() + i * split.block_elems();
      for (std::size_t a = 0; a < ext[0]; ++a)
        for (std::size_t b = 0; b < ext[1]; ++b)
          for (std::size_t c = 0; c < ext[2]; ++c)
            out.at3(off[0] + a, off[1] + b, off[2] + c) = nrm.denorm(
                rc[(a * split.bs + b) * split.bs + c]);
    }
  }
  return out;
}

}  // namespace aesz
