#pragma once

#include <memory>

#include "core/training.hpp"
#include "nn/conv.hpp"
#include "nn/optimizer.hpp"
#include "predictors/compressor.hpp"

namespace aesz {

/// AE-B baseline (Glaws, King & Sprague, Phys. Rev. Fluids 2020): a purely
/// convolutional autoencoder for 3-D turbulence snapshots with a fixed
/// compression ratio of 64x and *no* error bound. The encoder interleaves
/// residual blocks with three stride-2 "compression layers"; the latent is
/// a spatial grid stored as raw float32 (1/64 of the input volume).
///
/// Reproduced at reduced width; error_bounded() returns false, matching
/// the paper's caveat that AE-B's reported speeds cover only the AE
/// prediction process.
class AEB final : public Compressor, public Trainable {
 public:
  static constexpr std::uint32_t kStreamMagic = 0x41454232;  // "AEB2"

  struct Options {
    std::size_t block = 16;  // processing tile (latent tile = block/4)
    std::size_t width = 4;   // base channel count (paper-scale: much wider)
    std::size_t res_blocks = 1;  // residual blocks per stage (12 total in paper)
    float lr = 1e-3f;
  };

  AEB(Options opt, std::uint64_t seed);

  TrainReport train(const std::vector<const Field*>& fields,
                    const TrainOptions& opts) override;

  std::string name() const override { return "AE-B"; }
  bool error_bounded() const override { return false; }
  bool supports_rank(int rank) const override { return rank == 3; }
  /// The bound is ignored: AE-B has a fixed ratio (documented limitation).
  using Compressor::compress;
  std::vector<std::uint8_t> compress(const Field& f,
                                     const ErrorBound& eb) override;

 protected:
  Field decompress_impl(std::span<const std::uint8_t> stream) override;

 private:
  nn::Tensor run(std::vector<std::unique_ptr<nn::Layer>>& stack,
                 nn::Tensor x, bool train);
  std::vector<nn::Param*> params();
  double train_step(const nn::Tensor& batch);

  Options opt_;
  std::vector<std::unique_ptr<nn::Layer>> enc_, dec_;
  std::unique_ptr<nn::Adam> adam_;
  std::size_t latent_per_block_ = 0;
};

/// Residual block used by AE-B: x + Conv(ReLU(Conv(x))). Exposed so the
/// gradcheck tests can validate the skip connection's backward pass.
class ResBlock3d final : public nn::Layer {
 public:
  ResBlock3d(std::size_t channels, Rng& rng);

  nn::Tensor forward(const nn::Tensor& x, bool train) override;
  nn::Tensor backward(const nn::Tensor& gy) override;
  std::vector<nn::Param*> params() override;

 private:
  nn::Conv3d conv1_, conv2_;
  nn::LeakyReLU relu_;
};

}  // namespace aesz
