#include "ae_baselines/ae_a.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lossless/lz.hpp"
#include "nn/losses.hpp"
#include "predictors/quantizer.hpp"
#include "sz/common.hpp"
#include "util/timer.hpp"

namespace aesz {
namespace {

constexpr std::uint32_t kMagic = AEA::kStreamMagic;

}  // namespace

AEA::AEA(Options opt, std::uint64_t seed) : opt_(std::move(opt)) {
  AESZ_CHECK_MSG(opt_.window % 64 == 0, "AE-A window must be divisible by 64");
  Rng rng(seed);
  const std::size_t w = opt_.window;
  // Encoder: w -> w/8 -> w/64 -> latent, LeakyReLU between FC layers
  // (the original uses fully connected layers shrinking 8x each).
  enc_.push_back(std::make_unique<nn::Linear>(w, w / 8, rng));
  enc_.push_back(std::make_unique<nn::LeakyReLU>(0.2f));
  enc_.push_back(std::make_unique<nn::Linear>(w / 8, w / 64, rng));
  enc_.push_back(std::make_unique<nn::LeakyReLU>(0.2f));
  enc_.push_back(std::make_unique<nn::Linear>(w / 64, opt_.latent, rng));
  dec_.push_back(std::make_unique<nn::Linear>(opt_.latent, w / 64, rng));
  dec_.push_back(std::make_unique<nn::LeakyReLU>(0.2f));
  dec_.push_back(std::make_unique<nn::Linear>(w / 64, w / 8, rng));
  dec_.push_back(std::make_unique<nn::LeakyReLU>(0.2f));
  dec_.push_back(std::make_unique<nn::Linear>(w / 8, w, rng));
  dec_.push_back(std::make_unique<nn::Tanh>());
  adam_ = std::make_unique<nn::Adam>(params(), opt_.lr);
}

std::vector<nn::Param*> AEA::params() {
  std::vector<nn::Param*> out;
  for (auto& l : enc_)
    for (nn::Param* p : l->params()) out.push_back(p);
  for (auto& l : dec_)
    for (nn::Param* p : l->params()) out.push_back(p);
  return out;
}

void AEA::encode_window(const float* in, float* latent) {
  nn::Tensor x({1, opt_.window});
  std::copy(in, in + opt_.window, x.data());
  for (auto& l : enc_) x = l->forward(x, false);
  std::copy(x.data(), x.data() + opt_.latent, latent);
}

void AEA::decode_window(const float* latent, float* out) {
  nn::Tensor z({1, opt_.latent});
  std::copy(latent, latent + opt_.latent, z.data());
  for (auto& l : dec_) z = l->forward(z, false);
  std::copy(z.data(), z.data() + opt_.window, out);
}

void AEA::predict_window(const float* in, float* out) {
  std::vector<float> latent(opt_.latent);
  encode_window(in, latent.data());
  decode_window(latent.data(), out);
}

double AEA::train_step(const std::vector<const float*>& batch) {
  const std::size_t N = batch.size();
  nn::Tensor x({N, opt_.window});
  for (std::size_t i = 0; i < N; ++i)
    std::copy(batch[i], batch[i] + opt_.window, x.data() + i * opt_.window);
  adam_->zero_grad();
  nn::Tensor h = x;
  for (auto& l : enc_) h = l->forward(h, true);
  for (auto& l : dec_) h = l->forward(h, true);
  nn::Tensor g(h.shape());
  const double loss = nn::losses::mse(h, x, g);
  for (auto it = dec_.rbegin(); it != dec_.rend(); ++it) g = (*it)->backward(g);
  for (auto it = enc_.rbegin(); it != enc_.rend(); ++it) g = (*it)->backward(g);
  adam_->step();
  return loss;
}

TrainReport AEA::train(const std::vector<const Field*>& fields,
                       const TrainOptions& opts) {
  // Flatten every field into normalized windows (AE-A is dimension-blind).
  std::vector<std::vector<float>> samples;
  for (const Field* f : fields) {
    auto [lo, hi] = f->min_max();
    const float range = hi - lo;
    const std::size_t nwin = f->size() / opt_.window;
    for (std::size_t wdx = 0; wdx < nwin; ++wdx) {
      samples.emplace_back(opt_.window);
      for (std::size_t i = 0; i < opt_.window; ++i) {
        const float v = f->at(wdx * opt_.window + i);
        samples.back()[i] =
            range > 0 ? 2.0f * (v - lo) / range - 1.0f : 0.0f;
      }
    }
  }
  Rng rng(opts.seed);
  if (samples.size() > opts.max_blocks) {
    for (std::size_t i = 0; i < opts.max_blocks; ++i)
      std::swap(samples[i], samples[i + rng.below(samples.size() - i)]);
    samples.resize(opts.max_blocks);
  }
  AESZ_CHECK_MSG(!samples.empty(), "no AE-A training windows");

  TrainReport report;
  report.samples = samples.size();
  Timer timer;
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    double el = 0.0;
    std::size_t nb = 0;
    for (std::size_t start = 0; start < order.size(); start += opts.batch) {
      const std::size_t n = std::min(opts.batch, order.size() - start);
      std::vector<const float*> batch(n);
      for (std::size_t i = 0; i < n; ++i)
        batch[i] = samples[order[start + i]].data();
      el += train_step(batch);
      ++nb;
    }
    report.epoch_loss.push_back(el / static_cast<double>(nb));
  }
  report.seconds = timer.seconds();
  return report;
}

std::vector<std::uint8_t> AEA::compress(const Field& f,
                                        const ErrorBound& eb) {
  const Dims& d = f.dims();
  auto [lo, hi] = f.min_max();
  const float range = hi - lo;
  const double abs_eb = sz::resolve_abs_eb(f, eb, "AE-A");
  const std::size_t W = opt_.window;
  const std::size_t n = f.size();
  const std::size_t nwin = (n + W - 1) / W;

  ByteWriter w;
  sz::write_header(w, kMagic, d, eb, abs_eb);
  w.put(lo);
  w.put(hi);
  w.put_varint(W);
  w.put_varint(opt_.latent);

  // Latents stored as raw float32 (the original's overhead), prediction
  // errors quantized like SZ ("the .dvalue files ... compressed by SZ").
  std::vector<float> latents(nwin * opt_.latent);
  std::vector<float> window(W), pred(W);
  std::vector<std::uint16_t> codes(n);
  std::vector<float> unpred;
  LinearQuantizer quant(abs_eb);

  for (std::size_t wd = 0; wd < nwin; ++wd) {
    const std::size_t base = wd * W;
    const std::size_t len = std::min(W, n - base);
    for (std::size_t i = 0; i < W; ++i) {
      const float v = f.at(base + std::min(i, len - 1));
      window[i] = range > 0 ? 2.0f * (v - lo) / range - 1.0f : 0.0f;
    }
    encode_window(window.data(), latents.data() + wd * opt_.latent);
    decode_window(latents.data() + wd * opt_.latent, pred.data());
    for (std::size_t i = 0; i < len; ++i) {
      const float p = lo + (pred[i] + 1.0f) * 0.5f * range;
      float rec;
      const std::uint16_t code = quant.quantize(f.at(base + i), p, rec);
      if (code == LinearQuantizer::kUnpredictable)
        unpred.push_back(f.at(base + i));
      codes[base + i] = code;
    }
  }

  {
    ByteWriter lw;
    lw.put_array<float>(latents);
    w.put_blob(lz::compress(lw.bytes()));
  }
  w.put_blob(qcodec::encode_codes(codes));
  {
    ByteWriter uw;
    uw.put_array<float>(unpred);
    w.put_blob(lz::compress(uw.bytes()));
  }
  return sz::seal_stream(w.take());
}

Field AEA::decompress_impl(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const sz::StreamHeader h = sz::read_header_or_throw(r, kMagic);
  const Dims d = h.dims;
  const double abs_eb = h.abs_eb;
  const auto lo = r.get<float>();
  const auto hi = r.get<float>();
  const float range = hi - lo;
  const std::size_t W = r.get_varint();
  const std::size_t L = r.get_varint();
  if (W != opt_.window || L != opt_.latent)
    throw Error(ErrCode::kModelMismatch, "AE-A stream config mismatch");

  const auto latent_bytes = lz::decompress(r.get_blob());
  ByteReader lr(latent_bytes);
  const auto latents = lr.get_array<float>();
  auto codes = qcodec::decode_codes(r.get_blob());
  AESZ_CHECK_STREAM(codes.size() == d.total(), "code count mismatch");
  const auto unpred_bytes = lz::decompress(r.get_blob());
  ByteReader ur(unpred_bytes);
  const auto unpred = ur.get_array<float>();

  const std::size_t n = d.total();
  const std::size_t nwin = (n + W - 1) / W;
  AESZ_CHECK_STREAM(latents.size() == nwin * L, "latent count mismatch");

  Field out(d);
  std::vector<float> pred(W);
  LinearQuantizer quant(abs_eb);
  std::size_t ui = 0;
  for (std::size_t wd = 0; wd < nwin; ++wd) {
    const std::size_t base = wd * W;
    const std::size_t len = std::min(W, n - base);
    decode_window(latents.data() + wd * L, pred.data());
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint16_t code = codes[base + i];
      if (code == LinearQuantizer::kUnpredictable) {
        AESZ_CHECK_STREAM(ui < unpred.size(), "unpredictable underflow");
        out.at(base + i) = unpred[ui++];
        continue;
      }
      const float p = lo + (pred[i] + 1.0f) * 0.5f * range;
      out.at(base + i) = quant.recover(p, code);
    }
  }
  return out;
}

}  // namespace aesz
