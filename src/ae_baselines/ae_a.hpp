#pragma once

#include <memory>

#include "core/training.hpp"
#include "nn/dense.hpp"
#include "nn/optimizer.hpp"
#include "predictors/compressor.hpp"

namespace aesz {

/// AE-A baseline (Liu et al., IEEE TBD 2021, "High-ratio lossy compression:
/// exploring the autoencoder to compress scientific data"): a fully
/// connected autoencoder over flattened 1-D windows, each layer shrinking by
/// 8x (three stages => overall 512x latent reduction), with the residual
/// correction stream ("the .dvalue files") compressed by an SZ-style
/// quantize + Huffman + LZ pass to restore the error bound.
///
/// Limitations reproduced on purpose: the model sees the data as 1-D
/// (dimension-blind), latents are stored as raw float32, and the windowed
/// FC inference is much slower per byte than AE-SZ's conv blocks — this is
/// what makes AE-A uncompetitive in Fig. 8 / Table VIII.
class AEA final : public Compressor, public Trainable {
 public:
  static constexpr std::uint32_t kStreamMagic = 0x41454131;  // "AEA1"

  struct Options {
    std::size_t window = 1024;  // 1-D window length (paper-scale: 4096)
    std::size_t latent = 2;     // window / 512
    float lr = 1e-3f;
  };

  AEA(Options opt, std::uint64_t seed);

  TrainReport train(const std::vector<const Field*>& fields,
                    const TrainOptions& opts) override;

  std::string name() const override { return "AE-A"; }
  using Compressor::compress;
  std::vector<std::uint8_t> compress(const Field& f,
                                     const ErrorBound& eb) override;

 protected:
  Field decompress_impl(std::span<const std::uint8_t> stream) override;

 private:
  /// Window prediction (normalized in, normalized out).
  void predict_window(const float* in, float* out);
  void encode_window(const float* in, float* latent);
  void decode_window(const float* latent, float* out);
  std::vector<nn::Param*> params();
  double train_step(const std::vector<const float*>& batch);

  Options opt_;
  // Encoder: window -> w/8 -> w/64 -> latent; decoder mirrors.
  std::vector<std::unique_ptr<nn::Layer>> enc_, dec_;
  std::unique_ptr<nn::Adam> adam_;
};

}  // namespace aesz
