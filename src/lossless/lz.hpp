#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace aesz {

/// LZSS-style byte compressor standing in for Zstd as the lossless back end
/// (see DESIGN.md "Substitutions"). Greedy hash-chain matching over a 64 KiB
/// window, min match 4, token format:
///   repeat { varint lit_len; lit_len bytes; varint match_len;
///            if match_len==0 -> end; varint (dist-1); }
/// Self-describing; decode throws aesz::Error on corruption.
namespace lz {

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input);
std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> stream);

}  // namespace lz

/// The paper's lossless pipeline: Huffman over 16-bit quantization codes,
/// then byte-level LZ over the Huffman stream ("Huffman + Zstd").
namespace qcodec {

std::vector<std::uint8_t> encode_codes(std::span<const std::uint16_t> codes);
std::vector<std::uint16_t> decode_codes(std::span<const std::uint8_t> stream);

}  // namespace qcodec

}  // namespace aesz
