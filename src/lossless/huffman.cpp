#include "lossless/huffman.hpp"

#include <algorithm>
#include <queue>

#include <cstring>

#include "util/bitstream.hpp"
#include "util/bytestream.hpp"
#include "util/error.hpp"
#include "util/stage_timer.hpp"

namespace aesz::huffman {
namespace {

constexpr int kMaxLen = 57;  // on-disk code-length cap (fits one put_bits)

// Table-driven decode: a direct-mapped table over the next kPrimaryBits
// stream bits resolves every code of length <= kPrimaryBits in one lookup;
// longer (rare) codes fall back to the per-length canonical walk. 2^11
// entries x 4 bytes = 8 KiB — resident in L1 for the whole decode loop.
constexpr int kPrimaryBits = 11;

struct Node {
  std::uint64_t freq;
  int left;   // -1 for leaf
  int right;
  std::uint16_t sym;
};

/// Compute Huffman code lengths by the classic two-queue construction.
/// Returns max depth; lengths[i] == 0 for absent symbols.
int build_lengths(std::span<const std::uint64_t> freq,
                  std::vector<std::uint8_t>& lengths) {
  const std::size_t n = freq.size();
  lengths.assign(n, 0);

  std::vector<Node> nodes;
  nodes.reserve(2 * n);
  using QE = std::pair<std::uint64_t, int>;  // (freq, node index)
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  for (std::size_t s = 0; s < n; ++s) {
    if (freq[s] == 0) continue;
    nodes.push_back({freq[s], -1, -1, static_cast<std::uint16_t>(s)});
    pq.emplace(freq[s], static_cast<int>(nodes.size()) - 1);
  }
  if (nodes.empty()) return 0;
  if (nodes.size() == 1) {  // single distinct symbol: 1-bit code
    lengths[nodes[0].sym] = 1;
    return 1;
  }
  while (pq.size() > 1) {
    auto [fa, a] = pq.top();
    pq.pop();
    auto [fb, b] = pq.top();
    pq.pop();
    nodes.push_back({fa + fb, a, b, 0});
    pq.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
  }
  // Depth-assign iteratively (explicit stack: trees can be deep).
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{pq.top().second, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<std::size_t>(idx)];
    if (nd.left < 0) {
      lengths[nd.sym] = static_cast<std::uint8_t>(depth);
      max_depth = std::max(max_depth, depth);
    } else {
      stack.emplace_back(nd.left, depth + 1);
      stack.emplace_back(nd.right, depth + 1);
    }
  }
  return max_depth;
}

/// Reverse the low `n` bits of `v` (canonical codes compare MSB-first, the
/// bitstream packs LSB-first — emission and table indexing both need the
/// stream-order value).
std::uint64_t bit_reverse(std::uint64_t v, int n) {
  std::uint64_t r = 0;
  for (int i = 0; i < n; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

struct Canonical {
  // Canonical code assignment: symbols sorted by (length, value) get
  // consecutive codes; decode needs only per-length ranges.
  std::vector<std::uint8_t> lengths;
  std::vector<std::uint64_t> codes;          // MSB-first code value per symbol
  std::vector<std::uint16_t> sorted_syms;    // symbols ordered by (len, sym)
  std::vector<std::uint64_t> first_code;     // per length
  std::vector<std::size_t> first_index;      // per length, into sorted_syms
  std::vector<std::size_t> count;            // per length
  // Primary decode table (build_lut): entry = sym | (len << 16) for codes
  // of length <= kPrimaryBits, 0 = "not resolvable here" (long code, or a
  // bit pattern outside an incomplete code's space).
  std::vector<std::uint32_t> lut;
  int max_len = 0;
};

Canonical canonicalize(std::vector<std::uint8_t> lengths) {
  Canonical c;
  c.lengths = std::move(lengths);
  const std::size_t n = c.lengths.size();
  c.max_len = 0;
  for (auto l : c.lengths) c.max_len = std::max<int>(c.max_len, l);
  c.count.assign(static_cast<std::size_t>(c.max_len) + 1, 0);
  for (auto l : c.lengths)
    if (l) ++c.count[l];
  c.first_code.assign(static_cast<std::size_t>(c.max_len) + 1, 0);
  c.first_index.assign(static_cast<std::size_t>(c.max_len) + 1, 0);
  std::uint64_t code = 0;
  std::size_t index = 0;
  for (int l = 1; l <= c.max_len; ++l) {
    code <<= 1;
    c.first_code[static_cast<std::size_t>(l)] = code;
    c.first_index[static_cast<std::size_t>(l)] = index;
    code += c.count[static_cast<std::size_t>(l)];
    index += c.count[static_cast<std::size_t>(l)];
    // Kraft bound: an over-subscribed length table would assign codes
    // >= 2^l, making the code set non-prefix-free and the LUT build index
    // out of range. Encode-side tables (true Huffman trees) always pass.
    AESZ_CHECK_STREAM(code <= (1ULL << l),
                      "huffman code lengths oversubscribed");
  }
  c.sorted_syms.resize(index);
  std::vector<std::size_t> next = c.first_index;
  c.codes.assign(n, 0);
  std::vector<std::uint64_t> next_code = c.first_code;
  for (std::size_t s = 0; s < n; ++s) {
    const int l = c.lengths[s];
    if (!l) continue;
    c.sorted_syms[next[static_cast<std::size_t>(l)]++] =
        static_cast<std::uint16_t>(s);
    c.codes[s] = next_code[static_cast<std::size_t>(l)]++;
  }
  return c;
}

/// Fill the primary decode table: for a symbol with stream-order code bits
/// rc (length l <= kPrimaryBits), every index whose low l bits equal rc
/// resolves to it in one lookup. Codes are validated < 2^l by canonicalize,
/// so rc < 2^l and the strided fill stays in bounds.
void build_lut(Canonical& c) {
  c.lut.assign(std::size_t{1} << kPrimaryBits, 0);
  for (std::size_t s = 0; s < c.lengths.size(); ++s) {
    const int l = c.lengths[s];
    if (!l || l > kPrimaryBits) continue;
    const std::uint64_t rc = bit_reverse(c.codes[s], l);
    const std::uint32_t entry = static_cast<std::uint32_t>(s & 0xFFFF) |
                                (static_cast<std::uint32_t>(l) << 16);
    for (std::size_t idx = rc; idx < c.lut.size(); idx += std::size_t{1} << l)
      c.lut[idx] = entry;
  }
}

void write_table(ByteWriter& w, const Canonical& c) {
  // Sparse (delta symbol, length) pairs.
  std::uint64_t nz = 0;
  for (auto l : c.lengths)
    if (l) ++nz;
  w.put_varint(c.lengths.size());
  w.put_varint(nz);
  std::uint64_t prev = 0;
  for (std::size_t s = 0; s < c.lengths.size(); ++s) {
    if (!c.lengths[s]) continue;
    w.put_varint(s - prev);
    w.put(static_cast<std::uint8_t>(c.lengths[s]));
    prev = s;
  }
}

Canonical read_table(ByteReader& r) {
  const std::uint64_t n = r.get_varint();
  const std::uint64_t nz = r.get_varint();
  AESZ_CHECK_MSG(n <= (1u << 17) && nz <= n, "bad huffman table");
  std::vector<std::uint8_t> lengths(n, 0);
  std::uint64_t sym = 0;
  for (std::uint64_t i = 0; i < nz; ++i) {
    sym += r.get_varint();
    AESZ_CHECK_MSG(sym < n, "huffman symbol out of range");
    const auto l = r.get<std::uint8_t>();
    AESZ_CHECK_MSG(l >= 1 && l <= kMaxLen, "bad huffman code length");
    lengths[sym] = l;
  }
  return canonicalize(std::move(lengths));
}

/// Canonical per-length walk, one bit at a time. The decode slow path for
/// codes longer than the primary table, and the reference decoder body.
std::uint16_t decode_one_slow(BitReader& bits, const Canonical& c) {
  std::uint64_t code = 0;
  int l = 0;
  while (true) {
    code = (code << 1) | static_cast<std::uint64_t>(bits.get_bit());
    ++l;
    AESZ_CHECK_MSG(l <= c.max_len, "corrupt huffman payload");
    const auto ul = static_cast<std::size_t>(l);
    if (c.count[ul] &&
        code < c.first_code[ul] + c.count[ul] && code >= c.first_code[ul]) {
      return c.sorted_syms[c.first_index[ul] + (code - c.first_code[ul])];
    }
  }
}

}  // namespace

std::vector<std::uint8_t> code_lengths(std::span<const std::uint64_t> freq) {
  std::vector<std::uint8_t> lengths;
  int depth = build_lengths(freq, lengths);
  // Depth-limit by frequency flattening: rare with 16-bit bins, but a
  // pathological geometric distribution can exceed the on-disk length cap.
  std::vector<std::uint64_t> f(freq.begin(), freq.end());
  int shift = 1;
  while (depth > kMaxLen) {
    for (auto& v : f)
      if (v) v = 1 + (v >> shift);
    depth = build_lengths(f, lengths);
    ++shift;
  }
  return lengths;
}

std::vector<std::uint8_t> encode(std::span<const std::uint16_t> symbols) {
  prof::StageScope scope(prof::Stage::kEntropy);
  // One pass: count while growing the table from a running max. Sized
  // max_sym+1 exactly (matching the historical two-scan build, so the
  // serialized table — and thus the stream bytes — are unchanged).
  std::vector<std::uint64_t> freq(1, 0);
  for (auto s : symbols) {
    if (s >= freq.size()) {
      if (freq.capacity() <= s) freq.reserve(std::max<std::size_t>(
          2 * freq.capacity(), std::size_t{s} + 1));
      freq.resize(std::size_t{s} + 1, 0);
    }
    ++freq[s];
  }

  const Canonical c = canonicalize(code_lengths(freq));

  // Stream-order emission values: one put_bits per symbol.
  std::vector<std::uint64_t> emit(freq.size());
  std::size_t payload_bits = 0;
  std::size_t nz = 0;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    const int l = c.lengths[s];
    if (!l) continue;
    emit[s] = bit_reverse(c.codes[s], l);
    payload_bits += static_cast<std::size_t>(l) * freq[s];
    ++nz;
  }

  ByteWriter w;
  // Size estimate: varint count + sparse table (<= 3 bytes/entry + header)
  // + blob length prefix + payload.
  w.reserve(16 + 3 * nz + 10 + payload_bits / 8 + 9);
  w.put_varint(symbols.size());
  write_table(w, c);
  BitWriter bits;
  bits.reserve_bits(payload_bits);
  for (auto s : symbols)
    bits.put_bits(emit[s], c.lengths[s]);
  w.put_blob(bits.finish());
  return w.take();
}

std::vector<std::uint16_t> decode(std::span<const std::uint8_t> stream) {
  prof::StageScope scope(prof::Stage::kEntropy);
  ByteReader r(stream);
  const std::uint64_t n = r.get_varint();
  Canonical c = read_table(r);
  build_lut(c);
  const auto payload = r.get_blob();
  // Every symbol costs at least one payload bit; a corrupt count that
  // exceeds that would otherwise decode zero-filled bits for ~2^64
  // iterations (and pre-reserve the memory to match).
  AESZ_CHECK_STREAM(n <= payload.size() * 8,
                    "huffman symbol count exceeds payload");
  // Hot loop over local accumulator state (the BitReader abstraction costs
  // ~2x here). Semantics match the per-bit walk exactly, including zero-fill
  // past the payload end.
  const std::uint8_t* p = payload.data();
  const std::size_t nbytes = payload.size();
  std::size_t bytepos = 0;
  std::uint64_t acc = 0;
  int nbits = 0;
  constexpr std::uint64_t pmask = (1ULL << kPrimaryBits) - 1;

  std::vector<std::uint16_t> out(static_cast<std::size_t>(n));
  std::uint16_t* op = out.data();
  std::uint64_t i = 0;

  // Per-bit walk on the local state for codes the primary table cannot
  // resolve (longer than kPrimaryBits, or an invalid prefix — throws).
  const auto slow_symbol = [&]() {
    std::uint64_t code = 0;
    int cl = 0;
    while (true) {
      int bit = 0;  // zero-fill past end
      if (nbits > 0) {
        bit = static_cast<int>(acc & 1);
        acc >>= 1;
        --nbits;
      } else if (bytepos < nbytes) {
        acc = p[bytepos++];
        nbits = 7;
        bit = static_cast<int>(acc & 1);
        acc >>= 1;
      }
      code = (code << 1) | static_cast<std::uint64_t>(bit);
      ++cl;
      AESZ_CHECK_MSG(cl <= c.max_len, "corrupt huffman payload");
      const auto ul = static_cast<std::size_t>(cl);
      if (c.count[ul] && code >= c.first_code[ul] &&
          code < c.first_code[ul] + c.count[ul]) {
        op[i++] = c.sorted_syms[c.first_index[ul] + (code - c.first_code[ul])];
        return;
      }
    }
  };

  while (i < n) {
    if (bytepos + 8 <= nbytes) {  // branchless word refill
      std::uint64_t w;
      std::memcpy(&w, p + bytepos, 8);
      acc |= w << nbits;
      const int add = (63 - nbits) >> 3;
      bytepos += static_cast<std::size_t>(add);
      nbits += add * 8;
    } else {
      while (nbits <= 56 && bytepos < nbytes) {
        acc |= static_cast<std::uint64_t>(p[bytepos++]) << nbits;
        nbits += 8;
      }
    }
    if (nbits >= kPrimaryBits) {
      // Steady state: one refill feeds several table hits.
      bool slow = false;
      while (i < n && nbits >= kPrimaryBits) {
        const std::uint32_t e = c.lut[acc & pmask];
        if (e == 0) {
          slow = true;
          break;
        }
        const int l = static_cast<int>(e >> 16);
        acc >>= l;
        nbits -= l;
        op[i++] = static_cast<std::uint16_t>(e & 0xFFFF);
      }
      if (slow) slow_symbol();
      continue;
    }
    // Stream tail: fewer than kPrimaryBits real bits left; acc's high bits
    // are zero, matching the per-bit walk's zero-fill past the end.
    const std::uint32_t e = c.lut[acc & pmask];
    if (e != 0) {
      const int l = static_cast<int>(e >> 16);
      if (l <= nbits) {
        acc >>= l;
        nbits -= l;
      } else {
        acc = 0;
        nbits = 0;
      }
      op[i++] = static_cast<std::uint16_t>(e & 0xFFFF);
    } else {
      slow_symbol();
    }
  }
  return out;
}

std::vector<std::uint16_t> decode_reference(
    std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const std::uint64_t n = r.get_varint();
  const Canonical c = read_table(r);
  const auto payload = r.get_blob();
  AESZ_CHECK_STREAM(n <= payload.size() * 8,
                    "huffman symbol count exceeds payload");
  BitReader bits(payload);
  std::vector<std::uint16_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(decode_one_slow(bits, c));
  return out;
}

}  // namespace aesz::huffman
