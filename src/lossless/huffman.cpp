#include "lossless/huffman.hpp"

#include <algorithm>
#include <queue>

#include "util/bitstream.hpp"
#include "util/bytestream.hpp"
#include "util/error.hpp"

namespace aesz::huffman {
namespace {

constexpr int kMaxLen = 57;  // BitWriter::put limit; plenty for 64Ki symbols

struct Node {
  std::uint64_t freq;
  int left;   // -1 for leaf
  int right;
  std::uint16_t sym;
};

/// Compute Huffman code lengths by the classic two-queue construction.
/// Returns max depth; lengths[i] == 0 for absent symbols.
int build_lengths(std::span<const std::uint64_t> freq,
                  std::vector<std::uint8_t>& lengths) {
  const std::size_t n = freq.size();
  lengths.assign(n, 0);

  std::vector<Node> nodes;
  nodes.reserve(2 * n);
  using QE = std::pair<std::uint64_t, int>;  // (freq, node index)
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  for (std::size_t s = 0; s < n; ++s) {
    if (freq[s] == 0) continue;
    nodes.push_back({freq[s], -1, -1, static_cast<std::uint16_t>(s)});
    pq.emplace(freq[s], static_cast<int>(nodes.size()) - 1);
  }
  if (nodes.empty()) return 0;
  if (nodes.size() == 1) {  // single distinct symbol: 1-bit code
    lengths[nodes[0].sym] = 1;
    return 1;
  }
  while (pq.size() > 1) {
    auto [fa, a] = pq.top();
    pq.pop();
    auto [fb, b] = pq.top();
    pq.pop();
    nodes.push_back({fa + fb, a, b, 0});
    pq.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
  }
  // Depth-assign iteratively (explicit stack: trees can be deep).
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{pq.top().second, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<std::size_t>(idx)];
    if (nd.left < 0) {
      lengths[nd.sym] = static_cast<std::uint8_t>(depth);
      max_depth = std::max(max_depth, depth);
    } else {
      stack.emplace_back(nd.left, depth + 1);
      stack.emplace_back(nd.right, depth + 1);
    }
  }
  return max_depth;
}

struct Canonical {
  // Canonical code assignment: symbols sorted by (length, value) get
  // consecutive codes; decode needs only per-length ranges.
  std::vector<std::uint8_t> lengths;
  std::vector<std::uint64_t> codes;          // MSB-first code value per symbol
  std::vector<std::uint16_t> sorted_syms;    // symbols ordered by (len, sym)
  std::vector<std::uint64_t> first_code;     // per length
  std::vector<std::size_t> first_index;      // per length, into sorted_syms
  std::vector<std::size_t> count;            // per length
  int max_len = 0;
};

Canonical canonicalize(std::vector<std::uint8_t> lengths) {
  Canonical c;
  c.lengths = std::move(lengths);
  const std::size_t n = c.lengths.size();
  c.max_len = 0;
  for (auto l : c.lengths) c.max_len = std::max<int>(c.max_len, l);
  c.count.assign(static_cast<std::size_t>(c.max_len) + 1, 0);
  for (auto l : c.lengths)
    if (l) ++c.count[l];
  c.first_code.assign(static_cast<std::size_t>(c.max_len) + 1, 0);
  c.first_index.assign(static_cast<std::size_t>(c.max_len) + 1, 0);
  std::uint64_t code = 0;
  std::size_t index = 0;
  for (int l = 1; l <= c.max_len; ++l) {
    code <<= 1;
    c.first_code[static_cast<std::size_t>(l)] = code;
    c.first_index[static_cast<std::size_t>(l)] = index;
    code += c.count[static_cast<std::size_t>(l)];
    index += c.count[static_cast<std::size_t>(l)];
  }
  c.sorted_syms.resize(index);
  std::vector<std::size_t> next = c.first_index;
  c.codes.assign(n, 0);
  std::vector<std::uint64_t> next_code = c.first_code;
  for (std::size_t s = 0; s < n; ++s) {
    const int l = c.lengths[s];
    if (!l) continue;
    c.sorted_syms[next[static_cast<std::size_t>(l)]++] =
        static_cast<std::uint16_t>(s);
    c.codes[s] = next_code[static_cast<std::size_t>(l)]++;
  }
  return c;
}

void write_table(ByteWriter& w, const Canonical& c) {
  // Sparse (delta symbol, length) pairs.
  std::uint64_t nz = 0;
  for (auto l : c.lengths)
    if (l) ++nz;
  w.put_varint(c.lengths.size());
  w.put_varint(nz);
  std::uint64_t prev = 0;
  for (std::size_t s = 0; s < c.lengths.size(); ++s) {
    if (!c.lengths[s]) continue;
    w.put_varint(s - prev);
    w.put(static_cast<std::uint8_t>(c.lengths[s]));
    prev = s;
  }
}

Canonical read_table(ByteReader& r) {
  const std::uint64_t n = r.get_varint();
  const std::uint64_t nz = r.get_varint();
  AESZ_CHECK_MSG(n <= (1u << 17) && nz <= n, "bad huffman table");
  std::vector<std::uint8_t> lengths(n, 0);
  std::uint64_t sym = 0;
  for (std::uint64_t i = 0; i < nz; ++i) {
    sym += r.get_varint();
    AESZ_CHECK_MSG(sym < n, "huffman symbol out of range");
    const auto l = r.get<std::uint8_t>();
    AESZ_CHECK_MSG(l >= 1 && l <= kMaxLen, "bad huffman code length");
    lengths[sym] = l;
  }
  return canonicalize(std::move(lengths));
}

}  // namespace

std::vector<std::uint8_t> code_lengths(std::span<const std::uint64_t> freq) {
  std::vector<std::uint8_t> lengths;
  int depth = build_lengths(freq, lengths);
  // Depth-limit by frequency flattening: rare with 16-bit bins, but a
  // pathological geometric distribution can exceed the writer's word size.
  std::vector<std::uint64_t> f(freq.begin(), freq.end());
  int shift = 1;
  while (depth > kMaxLen) {
    for (auto& v : f)
      if (v) v = 1 + (v >> shift);
    depth = build_lengths(f, lengths);
    ++shift;
  }
  return lengths;
}

std::vector<std::uint8_t> encode(std::span<const std::uint16_t> symbols) {
  std::uint16_t max_sym = 0;
  for (auto s : symbols) max_sym = std::max(max_sym, s);
  std::vector<std::uint64_t> freq(static_cast<std::size_t>(max_sym) + 1, 0);
  for (auto s : symbols) ++freq[s];

  const Canonical c = canonicalize(code_lengths(freq));

  ByteWriter w;
  w.put_varint(symbols.size());
  write_table(w, c);
  BitWriter bits;
  for (auto s : symbols) {
    const int l = c.lengths[s];
    const std::uint64_t code = c.codes[s];
    // Canonical codes compare MSB-first; emit in that order.
    for (int b = l - 1; b >= 0; --b) bits.put_bit((code >> b) & 1);
  }
  w.put_blob(bits.finish());
  return w.take();
}

std::vector<std::uint16_t> decode(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const std::uint64_t n = r.get_varint();
  const Canonical c = read_table(r);
  const auto payload = r.get_blob();
  // Every symbol costs at least one payload bit; a corrupt count that
  // exceeds that would otherwise decode zero-filled bits for ~2^64
  // iterations (and pre-reserve the memory to match).
  AESZ_CHECK_STREAM(n <= payload.size() * 8,
                    "huffman symbol count exceeds payload");
  BitReader bits(payload);

  std::vector<std::uint16_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t code = 0;
    int l = 0;
    while (true) {
      code = (code << 1) | static_cast<std::uint64_t>(bits.get_bit());
      ++l;
      AESZ_CHECK_MSG(l <= c.max_len, "corrupt huffman payload");
      const auto ul = static_cast<std::size_t>(l);
      if (c.count[ul] &&
          code < c.first_code[ul] + c.count[ul] && code >= c.first_code[ul]) {
        out.push_back(
            c.sorted_syms[c.first_index[ul] + (code - c.first_code[ul])]);
        break;
      }
    }
  }
  return out;
}

}  // namespace aesz::huffman
