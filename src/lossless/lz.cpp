#include "lossless/lz.hpp"

#include <algorithm>
#include <cstring>

#include "lossless/huffman.hpp"
#include "util/bytestream.hpp"
#include "util/error.hpp"
#include "util/stage_timer.hpp"

namespace aesz::lz {
namespace {

constexpr std::size_t kWindow = 1u << 16;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 1u << 16;
constexpr int kMaxChain = 48;
constexpr int kHashBits = 16;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

}  // namespace

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input) {
  prof::StageScope stage(prof::Stage::kEntropy);
  ByteWriter w;
  w.put_varint(input.size());
  const std::size_t n = input.size();
  if (n == 0) {
    w.put_varint(0);  // empty literal run
    w.put_varint(0);  // terminator
    return w.take();
  }

  // Hash-chain matcher: head[h] = most recent position with hash h,
  // prev[pos & mask] = previous position in the chain.
  std::vector<std::int64_t> head(1u << kHashBits, -1);
  std::vector<std::int64_t> prev(kWindow, -1);
  const std::uint8_t* base = input.data();

  auto insert = [&](std::size_t pos) {
    const std::uint32_t h = hash4(base + pos);
    prev[pos & (kWindow - 1)] = head[h];
    head[h] = static_cast<std::int64_t>(pos);
  };

  std::size_t pos = 0;
  std::size_t lit_start = 0;
  while (pos + kMinMatch <= n) {
    // Find the longest match among the most recent kMaxChain candidates.
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    const std::size_t limit = std::min(n - pos, kMaxMatch);
    std::int64_t cand = head[hash4(base + pos)];
    for (int chain = 0;
         chain < kMaxChain && cand >= 0 &&
         pos - static_cast<std::size_t>(cand) <= kWindow;
         ++chain) {
      const auto cpos = static_cast<std::size_t>(cand);
      const std::size_t len = match_length(base + cpos, base + pos, limit);
      if (len > best_len) {
        best_len = len;
        best_dist = pos - cpos;
        if (len == limit) break;
      }
      cand = prev[cpos & (kWindow - 1)];
    }

    if (best_len >= kMinMatch) {
      w.put_varint(pos - lit_start);
      w.put_bytes(input.subspan(lit_start, pos - lit_start));
      w.put_varint(best_len);
      w.put_varint(best_dist - 1);
      const std::size_t end = pos + best_len;
      // Index positions inside the match (bounded to keep O(n)).
      const std::size_t index_end = std::min(end, n - kMinMatch + 1);
      for (; pos < index_end; ++pos) insert(pos);
      pos = end;
      lit_start = pos;
    } else {
      insert(pos);
      ++pos;
    }
  }
  w.put_varint(n - lit_start);
  w.put_bytes(input.subspan(lit_start, n - lit_start));
  w.put_varint(0);  // terminator
  return w.take();
}

std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> stream) {
  prof::StageScope stage(prof::Stage::kEntropy);
  ByteReader r(stream);
  const std::uint64_t n = r.get_varint();
  std::vector<std::uint8_t> out;
  // Cap the speculative reservation: a corrupt length must not become a
  // multi-gigabyte allocation. The overflow checks below still enforce `n`
  // exactly; out simply grows on demand past the cap.
  out.reserve(std::min<std::uint64_t>(n, std::uint64_t{1} << 20));
  while (true) {
    const std::uint64_t lit_len = r.get_varint();
    AESZ_CHECK_MSG(out.size() + lit_len <= n, "lz: literal overflow");
    const auto lits = r.get_bytes(lit_len);
    out.insert(out.end(), lits.begin(), lits.end());
    const std::uint64_t match_len = r.get_varint();
    if (match_len == 0) break;
    const std::uint64_t dist = r.get_varint() + 1;
    AESZ_CHECK_MSG(dist <= out.size(), "lz: bad match distance");
    AESZ_CHECK_MSG(out.size() + match_len <= n, "lz: match overflow");
    // Overlapping copies are intentional (run-length style matches).
    std::size_t src = out.size() - dist;
    for (std::uint64_t i = 0; i < match_len; ++i) out.push_back(out[src++]);
  }
  AESZ_CHECK_MSG(out.size() == n, "lz: size mismatch");
  return out;
}

}  // namespace aesz::lz

namespace aesz::qcodec {

std::vector<std::uint8_t> encode_codes(
    std::span<const std::uint16_t> codes) {
  return lz::compress(huffman::encode(codes));
}

std::vector<std::uint16_t> decode_codes(
    std::span<const std::uint8_t> stream) {
  return huffman::decode(lz::decompress(stream));
}

}  // namespace aesz::qcodec
