#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace aesz {

/// Canonical Huffman codec over 16-bit symbols (quantization bins).
///
/// This is the entropy stage of every SZ-family compressor in this repo,
/// mirroring the Huffman encoder inside SZ2.1. The code table is rebuilt
/// per stream from symbol frequencies and serialized compactly (delta-coded
/// sparse (symbol, length) pairs) ahead of the payload, so streams are
/// self-describing.
///
/// The output is further passed through the LZ byte codec by callers
/// (Huffman + Zstd in the paper).
namespace huffman {

/// Encode `symbols` into a self-describing byte stream.
std::vector<std::uint8_t> encode(std::span<const std::uint16_t> symbols);

/// Decode a stream produced by encode(). Throws aesz::Error on corruption.
/// Table-driven: codes of length <= 11 resolve via one LUT lookup, longer
/// codes fall back to the per-length canonical walk.
std::vector<std::uint16_t> decode(std::span<const std::uint8_t> stream);

/// Bit-at-a-time canonical-walk decoder, kept as the differential-testing
/// reference for decode() and the "scalar path" baseline in bench_kernels.
/// Identical accept/reject behavior and output to decode().
std::vector<std::uint16_t> decode_reference(
    std::span<const std::uint8_t> stream);

/// Code lengths chosen for the given frequencies (exposed for tests:
/// Kraft inequality, optimality vs entropy).
std::vector<std::uint8_t> code_lengths(std::span<const std::uint64_t> freq);

}  // namespace huffman
}  // namespace aesz
