#include "temporal/aetc.hpp"

#include <cmath>
#include <cstring>

#include "sz/common.hpp"
#include "util/crc32c.hpp"

namespace aesz::temporal {

namespace {

/// Smallest possible record: marker + mode + abs f64 + 1-byte blob length
/// for an empty payload — any index length below this is corrupt.
constexpr std::size_t kMinRecordBytes = 1 + 1 + sizeof(double) + 1;

/// Trailer after the footer index: footer-length u32 + index magic u32.
constexpr std::size_t kFooterTailBytes = 2 * sizeof(std::uint32_t);

Status parse_header(ByteReader& r, StreamInfo& out) {
  std::uint32_t magic = 0;
  if (!r.try_get(magic))
    return Status::error(ErrCode::kTruncated, "stream too short for magic");
  if (magic != kStreamMagic)
    return Status::error(ErrCode::kBadMagic, "not an AETC temporal stream");
  std::uint8_t version = 0;
  if (!r.try_get(version))
    return Status::error(ErrCode::kTruncated, "truncated AETC header");
  if (version != kFormatVersion && version != kFormatVersionV1)
    return Status::error(ErrCode::kBadHeader, "unsupported AETC version");
  out.version = version;
  std::span<const std::uint8_t> name;
  if (!r.try_get_blob(name))
    return Status::error(ErrCode::kTruncated, "truncated inner codec name");
  if (name.empty() || name.size() > kMaxInnerName)
    return Status::error(ErrCode::kBadHeader, "bad inner codec name length");
  out.inner.assign(reinterpret_cast<const char*>(name.data()), name.size());
  for (char c : out.inner) {
    if (c < 0x20 || c > 0x7E)
      return Status::error(ErrCode::kBadHeader,
                           "non-printable inner codec name");
  }
  if (Status s = sz::read_dims_checked(r, out.dims); !s.ok()) return s;
  std::uint8_t mode = 0;
  double value = 0.0;
  if (!r.try_get(mode) || !r.try_get(value))
    return Status::error(ErrCode::kTruncated, "truncated error bound");
  if (mode > static_cast<std::uint8_t>(EbMode::kPSNR))
    return Status::error(ErrCode::kBadHeader, "bad error-bound mode");
  out.eb = ErrorBound(static_cast<EbMode>(mode), value);
  if (!out.eb.usable())
    return Status::error(ErrCode::kBadHeader, "unusable error bound");
  std::uint64_t gop = 0;
  if (!r.try_get_varint(gop))
    return Status::error(ErrCode::kTruncated, "truncated gop");
  if (gop > kMaxGop)
    return Status::error(ErrCode::kBadHeader, "gop exceeds cap");
  out.gop = static_cast<std::size_t>(gop);
  return {};
}

/// The v2 per-record checksum: CRC32C over mode | abs-bound | payload —
/// every semantic byte of the record (marker and the blob length varint
/// are structural and validated by the parse itself).
std::uint32_t record_crc(std::uint8_t mode, double abs_eb,
                         std::span<const std::uint8_t> payload) {
  std::uint32_t c = util::crc32c({&mode, 1});
  c = util::crc32c({reinterpret_cast<const std::uint8_t*>(&abs_eb),
                    sizeof(abs_eb)},
                   c);
  return util::crc32c(payload, c);
}

/// Parse one self-delimiting record at the reader's position. Fallible —
/// recover_stream() treats a kTruncated failure as the end of the record
/// walk (torn tail) and anything else as corruption.
Status parse_record(ByteReader& r, RecordInfo& rec, std::uint8_t version) {
  std::uint8_t marker = 0;
  if (!r.try_get(marker))
    return Status::error(ErrCode::kTruncated, "truncated record marker");
  if (marker != kRecordMarker)
    return Status::error(ErrCode::kCorruptStream, "bad record marker");
  if (!r.try_get(rec.mode))
    return Status::error(ErrCode::kTruncated, "truncated record mode");
  if (rec.mode != kModeIntra && rec.mode != kModeResidual)
    return Status::error(ErrCode::kCorruptStream, "bad record mode");
  if (!r.try_get(rec.abs_eb))
    return Status::error(ErrCode::kTruncated, "truncated record bound");
  if (!std::isfinite(rec.abs_eb) || rec.abs_eb <= 0)
    return Status::error(ErrCode::kCorruptStream, "bad record bound");
  if (!r.try_get_blob(rec.payload))
    return Status::error(ErrCode::kTruncated, "truncated record payload");
  if (rec.payload.empty())
    return Status::error(ErrCode::kCorruptStream, "empty record payload");
  if (version >= kFormatVersion) {
    std::uint32_t stored = 0;
    if (!r.try_get(stored))
      return Status::error(ErrCode::kTruncated, "truncated record checksum");
    if (record_crc(rec.mode, rec.abs_eb, rec.payload) != stored)
      return Status::error(ErrCode::kChecksumMismatch,
                           "record checksum mismatch");
  }
  return {};
}

}  // namespace

bool is_temporal(std::span<const std::uint8_t> stream) {
  std::uint32_t magic = 0;
  if (stream.size() < sizeof(magic)) return false;
  std::memcpy(&magic, stream.data(), sizeof(magic));
  return magic == kStreamMagic;
}

Expected<std::string> peek_inner(std::span<const std::uint8_t> stream) {
  StreamInfo info;
  ByteReader r(stream);
  if (Status s = parse_header(r, info); !s.ok()) return s;
  return info.inner;
}

std::vector<std::uint8_t> write_stream_header(const std::string& inner,
                                              const Dims& dims,
                                              const ErrorBound& eb,
                                              std::size_t gop) {
  AESZ_CHECK_ARG(!inner.empty() && inner.size() <= kMaxInnerName,
                 "bad inner codec name length");
  AESZ_CHECK_ARG(dims.rank >= 1 && dims.rank <= 3, "bad rank");
  AESZ_CHECK_ARG(eb.usable(), "unusable error bound");
  AESZ_CHECK_ARG(gop <= kMaxGop, "gop exceeds cap");
  ByteWriter w;
  w.put(kStreamMagic);
  w.put(kFormatVersion);
  w.put_blob({reinterpret_cast<const std::uint8_t*>(inner.data()),
              inner.size()});
  w.put(static_cast<std::uint8_t>(dims.rank));
  for (int i = 0; i < dims.rank; ++i) w.put_varint(dims[i]);
  w.put(static_cast<std::uint8_t>(eb.mode()));
  w.put(eb.value());
  w.put_varint(gop);
  return w.take();
}

void append_record(std::vector<std::uint8_t>& body, std::uint8_t mode,
                   double abs_eb, std::span<const std::uint8_t> payload,
                   std::uint8_t version) {
  AESZ_CHECK_ARG(mode == kModeIntra || mode == kModeResidual,
                 "bad record mode");
  AESZ_CHECK_ARG(std::isfinite(abs_eb) && abs_eb > 0, "bad record bound");
  AESZ_CHECK_ARG(!payload.empty(), "empty record payload");
  AESZ_CHECK_ARG(version == kFormatVersion || version == kFormatVersionV1,
                 "bad record version");
  ByteWriter w;
  w.reserve(kMinRecordBytes + payload.size() + 8);
  w.put(kRecordMarker);
  w.put(mode);
  w.put(abs_eb);
  w.put_blob(payload);
  if (version >= kFormatVersion) w.put(record_crc(mode, abs_eb, payload));
  const auto& bytes = w.bytes();
  body.insert(body.end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> write_footer(std::span<const RecordInfo> records) {
  ByteWriter w;
  w.put_varint(records.size());
  for (const RecordInfo& rec : records) {
    w.put(rec.mode);
    w.put(rec.abs_eb);
    w.put_varint(rec.offset);
    w.put_varint(rec.length);
  }
  const auto footer_len = static_cast<std::uint32_t>(w.size());
  w.put(footer_len);
  w.put(kIndexMagic);
  return w.take();
}

Expected<StreamInfo> read_stream(std::span<const std::uint8_t> stream) {
  StreamInfo info;
  ByteReader r(stream);
  if (Status s = parse_header(r, info); !s.ok()) return s;
  const std::size_t header_end = r.pos();
  if (stream.size() < header_end + kFooterTailBytes)
    return Status::error(ErrCode::kTruncated, "missing AETC footer");
  std::uint32_t footer_len = 0, index_magic = 0;
  std::memcpy(&footer_len, stream.data() + stream.size() - kFooterTailBytes,
              sizeof(footer_len));
  std::memcpy(&index_magic, stream.data() + stream.size() - sizeof(index_magic),
              sizeof(index_magic));
  if (index_magic != kIndexMagic)
    return Status::error(ErrCode::kCorruptStream,
                         "missing AETC index magic (truncated append?)");
  if (footer_len > stream.size() - kFooterTailBytes - header_end)
    return Status::error(ErrCode::kCorruptStream, "footer length out of range");
  const std::size_t footer_start =
      stream.size() - kFooterTailBytes - footer_len;

  ByteReader fr(stream.subspan(footer_start, footer_len));
  std::uint64_t count = 0;
  if (!fr.try_get_varint(count))
    return Status::error(ErrCode::kTruncated, "truncated index count");
  // Each index entry is at least mode u8 + abs f64 + two 1-byte varints —
  // bound the count against the footer bytes BEFORE reserving.
  constexpr std::size_t kMinEntryBytes = 1 + sizeof(double) + 2;
  if (count > footer_len / kMinEntryBytes)
    return Status::error(ErrCode::kCorruptStream, "index count out of range");
  info.records.reserve(static_cast<std::size_t>(count));

  std::size_t prev_end = header_end;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint8_t mode = 0;
    double abs_eb = 0.0;
    std::uint64_t offset = 0, length = 0;
    if (!fr.try_get(mode) || !fr.try_get(abs_eb) ||
        !fr.try_get_varint(offset) || !fr.try_get_varint(length))
      return Status::error(ErrCode::kTruncated, "truncated index entry");
    // Records must tile [header_end, footer_start) exactly, in order — an
    // index pointing anywhere else (gaps, overlaps, the footer itself)
    // is corrupt.
    if (offset != prev_end || length < kMinRecordBytes ||
        length > footer_start - offset)
      return Status::error(ErrCode::kCorruptStream, "index entry out of range");
    ByteReader rr(stream.subspan(static_cast<std::size_t>(offset),
                                 static_cast<std::size_t>(length)));
    RecordInfo rec;
    if (Status s = parse_record(rr, rec, info.version); !s.ok()) return s;
    if (!rr.eof())
      return Status::error(ErrCode::kCorruptStream,
                           "record shorter than index entry");
    // The index duplicates mode/bound for O(1) seeks; both copies must
    // agree bit-for-bit or one of them was tampered with.
    if (rec.mode != mode || std::memcmp(&rec.abs_eb, &abs_eb,
                                        sizeof(abs_eb)) != 0)
      return Status::error(ErrCode::kCorruptStream,
                           "index entry disagrees with record");
    rec.offset = static_cast<std::size_t>(offset);
    rec.length = static_cast<std::size_t>(length);
    info.records.push_back(rec);
    prev_end = static_cast<std::size_t>(offset + length);
  }
  if (!fr.eof())
    return Status::error(ErrCode::kCorruptStream, "trailing bytes in index");
  if (prev_end != footer_start)
    return Status::error(ErrCode::kCorruptStream,
                         "unindexed bytes before footer");
  info.body_bytes = prev_end;
  return info;
}

Expected<StreamInfo> recover_stream(std::span<const std::uint8_t> stream) {
  StreamInfo info;
  ByteReader r(stream);
  if (Status s = parse_header(r, info); !s.ok()) return s;
  std::size_t end = r.pos();
  while (end < stream.size() && stream[end] == kRecordMarker) {
    ByteReader rr(stream.subspan(end));
    RecordInfo rec;
    const Status s = parse_record(rr, rec, info.version);
    if (s.code == ErrCode::kChecksumMismatch) return s;  // corrupt, not torn
    if (!s.ok()) break;  // truncated tail (or footer bytes) — stop here
    rec.offset = end;
    rec.length = rr.pos();
    info.records.push_back(rec);
    end += rr.pos();
  }
  info.body_bytes = end;
  return info;
}

}  // namespace aesz::temporal
