#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/field.hpp"
#include "predictors/compressor.hpp"
#include "predictors/error_bound.hpp"
#include "temporal/aetc.hpp"
#include "util/expected.hpp"

namespace aesz::temporal {

/// Per-timestep coding policy of a temporal stream writer.
enum class Mode : std::uint8_t {
  kAuto = 0,      // trial-compress both ways, keep the smaller (tie: intra)
  kIntra = 1,     // every timestep independent (== snapshot compression)
  kResidual = 2,  // residual whenever a reference exists (keyframes aside)
};

Expected<Mode> parse_mode(const std::string& spec);
const char* mode_name(Mode m);

/// Builds the inner codec for a given field rank. Defaults to
/// CodecRegistry::create(name, rank); callers with out-of-registry
/// configuration (an AE-SZ instance loaded from a trained model file)
/// supply their own.
using CodecFactory =
    std::function<std::unique_ptr<Compressor>(const std::string& name,
                                              int rank)>;

/// Residual temporal codec over any registry compressor: timestep t is
/// coded either intra (the inner codec stream of the frame itself) or as
/// the residual frame - reference, where the reference is the DECODED
/// previous timestep — never the original. That choice is what keeps the
/// per-element guarantee compositional: recon[t] = ref + recon_residual,
/// so |orig[t] - recon[t]| = |residual - recon_residual| <= the absolute
/// tolerance the residual was compressed under, regardless of how much
/// error the reference already carries. The encoder decodes its own
/// output after every step so its reference chain is bit-identical to any
/// decoder's.
///
/// Residuals are always compressed under EbMode::kAbs with the tolerance
/// the stream's bound resolves to for the ORIGINAL frame at t (rel/psnr
/// bounds resolve against each frame's own value range) — relative bounds
/// stay relative to the data, not to the residual.
///
/// One instance drives one direction: compress_step() advances the
/// encoder chain, decode_step() the decoder chain. Mixing directions on
/// one instance is only sound when the chains coincide (an appender
/// reading back what it just wrote).
///
/// Keyframes: step 0 is always intra; with gop > 0 every gop-th step is
/// forced intra, so seeking and corruption containment stay O(gop). Inner
/// codecs whose error_bounded() is false (AE-B, fixed-rate ZFP) are
/// forced all-intra — an unbounded residual chain would compound their
/// error without limit.
class TemporalCompressor {
 public:
  /// Takes ownership of a freshly built inner codec. Throws
  /// aesz::Error(kInvalidArgument/kUnsupported) on an unusable
  /// combination (bad gop, codec can't handle the rank).
  TemporalCompressor(std::unique_ptr<Compressor> codec, Dims dims,
                     ErrorBound eb, std::size_t gop, Mode mode);

  struct StepResult {
    std::uint8_t mode = kModeIntra;  // kModeIntra / kModeResidual
    double abs_eb = 0.0;             // resolved tolerance for this step
    std::vector<std::uint8_t> payload;
  };

  /// Encode the next timestep and advance the encoder's reference chain.
  /// Throws aesz::Error(kInvalidArgument) on a dims mismatch.
  StepResult compress_step(const Field& f);

  /// Decode one record and advance the decoder's reference chain. A
  /// residual record without a reference (decoder not positioned on the
  /// preceding timestep) is a corrupt-stream error.
  Expected<Field> decode_step(std::uint8_t mode,
                              std::span<const std::uint8_t> payload);

  /// Drop the reference chain (before seeking to a keyframe).
  void reset();

  /// Reposition the chain explicitly: `ref` is the decoded frame of
  /// timestep `step - 1`. How a re-opened appender resumes mid-stream —
  /// `step` must be the absolute timestep count so the keyframe cadence
  /// (step % gop) continues exactly as if the stream had never been
  /// closed.
  void restore(Field ref, std::size_t step);

  std::size_t step() const { return step_; }
  Compressor& codec() { return *codec_; }

 private:
  std::unique_ptr<Compressor> codec_;
  Dims dims_;
  ErrorBound eb_;
  std::size_t gop_;
  Mode mode_;
  Field ref_;
  bool has_ref_ = false;
  std::size_t step_ = 0;
};

/// Assembles (or re-opens and extends) one AETC artifact: owns the
/// serialized body, the record index, and a TemporalCompressor whose
/// encoder chain matches the last appended timestep. bytes() is always a
/// complete artifact (body + footer), so callers persist by rewriting the
/// file tail after each append — and a crash between the two writes
/// leaves a file TemporalWriter::open(recover=true) brings back to the
/// last complete timestep.
class TemporalWriter {
 public:
  struct Options {
    std::string inner = "SZ2.1";
    std::size_t gop = 8;
    Mode mode = Mode::kAuto;
    CodecFactory factory;  // empty = CodecRegistry
  };

  /// Start an empty stream. Throws aesz::Error on an unknown codec,
  /// unusable bound, or unsupported rank.
  TemporalWriter(Dims dims, ErrorBound eb, Options opt);

  /// Re-open an existing artifact for appending. Strict parse by
  /// default; recover=true accepts a truncated tail (interrupted append)
  /// and resumes from the last complete timestep. The encoder reference
  /// chain is rebuilt by decoding forward from the last keyframe —
  /// O(gop) inner decodes, independent of stream length. The header pins
  /// inner codec, bound, AND gop (one stream keeps one seek cost), so
  /// opt.inner/opt.gop are ignored here; opt.mode/opt.factory govern the
  /// appends to come.
  static Expected<std::unique_ptr<TemporalWriter>> open(
      std::span<const std::uint8_t> stream, Options opt,
      bool recover = false);
  // GCC rejects `Options opt = {}` on a nested struct; same two-overload
  // workaround as service::Server's constructor.
  static Expected<std::unique_ptr<TemporalWriter>> open(
      std::span<const std::uint8_t> stream) {
    return open(stream, Options());
  }

  struct AppendResult {
    std::size_t timestep = 0;
    std::uint8_t mode = kModeIntra;
    double abs_eb = 0.0;
    std::size_t stored_bytes = 0;  // record bytes this append added
  };

  /// Compress and append one timestep. Throws aesz::Error on dims
  /// mismatch or inner-codec argument errors.
  AppendResult append(const Field& f);

  /// Decode timestep t (seeks to the nearest keyframe at or before t,
  /// then decodes forward — O(gop) inner decodes).
  Expected<Field> read(std::size_t t);

  /// The complete artifact: header + records + footer index.
  std::vector<std::uint8_t> bytes() const;

  /// The two halves of bytes(), for crash-safe persistence: a sync-mode
  /// writer stores body(), fsyncs, then appends footer() and fsyncs again
  /// — the records are durable on disk BEFORE the index that advertises
  /// them, so a crash between the phases leaves at worst a torn tail that
  /// open(recover=true) resumes from, never a footer pointing at records
  /// that were lost in the page cache.
  std::span<const std::uint8_t> body() const { return body_; }
  std::vector<std::uint8_t> footer() const { return write_footer(records_); }

  std::size_t timesteps() const { return records_.size(); }
  std::size_t body_bytes() const { return body_.size(); }
  const Dims& dims() const { return dims_; }
  const ErrorBound& eb() const { return eb_; }
  const std::string& inner() const { return inner_; }
  std::size_t gop() const { return gop_; }

 private:
  TemporalWriter() = default;

  std::string inner_;
  Dims dims_;
  ErrorBound eb_;
  std::size_t gop_ = 8;
  /// Record format this stream was opened with — a re-opened v1 artifact
  /// keeps appending v1 records (aetc.hpp: one artifact, one format).
  std::uint8_t version_ = kFormatVersion;
  std::vector<std::uint8_t> body_;   // header + records, no footer
  std::vector<RecordInfo> records_;  // payload spans NOT set (body_
                                     // reallocates); offset/length are
  std::unique_ptr<TemporalCompressor> enc_;
};

/// Decodes timesteps out of a parsed artifact. Zero-copy: the reader
/// aliases the caller's bytes, which must outlive it. Sequential reads
/// are O(1) amortized (the decoder chain is memoized); random reads cost
/// O(gop) inner decodes.
class TemporalReader {
 public:
  static Expected<std::unique_ptr<TemporalReader>> open(
      std::span<const std::uint8_t> stream, CodecFactory factory = {});

  Expected<Field> read(std::size_t t);

  std::size_t timesteps() const { return info_.records.size(); }
  const StreamInfo& info() const { return info_; }

 private:
  TemporalReader() = default;

  StreamInfo info_;
  std::unique_ptr<TemporalCompressor> dec_;
  std::size_t next_ = 0;  // timestep the memoized decoder chain expects
};

}  // namespace aesz::temporal
