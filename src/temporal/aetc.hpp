#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "predictors/error_bound.hpp"
#include "util/bytestream.hpp"
#include "util/dims.hpp"
#include "util/expected.hpp"

namespace aesz::temporal {

/// Appendable timestep-stream container (version 2, "AETC"). One artifact
/// holds a whole timestep sequence of a single field: a fixed header, then
/// one self-delimiting record per timestep, then a footer index that is
/// REWRITTEN on every append (the only mutable region of the file). Layout
/// (little-endian, varint = LEB128, blob = varint length + bytes):
///
///   header   magic u32 "AETC" | version u8 | inner codec name blob |
///            rank u8 | dims varint* | eb-mode u8 | eb-value f64 |
///            gop varint
///   record*  marker u8 (0xA7) | mode u8 (0 intra, 1 residual) |
///            abs-bound f64 | payload blob | crc32c u32 (v2+)
///   footer   count varint | per record: mode u8, abs-bound f64,
///            offset varint, length varint |
///            footer-length u32 | footer magic u32 "AETI"
///
/// v2 added the per-record CRC32C (over mode | abs-bound | payload
/// bytes): recovery can now tell a TORN tail (record structurally
/// truncated — the interrupted append, benign) from a CORRUPT one
/// (record structurally complete but its bytes don't hash — reported as
/// kChecksumMismatch, never silently decoded). v1 streams still parse;
/// a re-opened v1 stream keeps appending v1 records so one artifact
/// never mixes record formats.
///
/// `inner codec name` is the registry spelling of the codec every payload
/// was produced by (including `parallel:<name>` container wrappers), so a
/// reader can rebuild the right decoder without magic-sniffing each record.
/// `eb-mode`/`eb-value` record the bound requested for EVERY timestep;
/// each record additionally stores the absolute tolerance that bound
/// resolved to for that timestep (rel/psnr bounds resolve against each
/// original frame's own value range). `gop` is the keyframe cadence the
/// writer enforced (0 = only timestep 0 is intra), recorded so seek cost
/// is inspectable; readers trust the per-record mode flags, not gop.
///
/// Append = overwrite the old footer with the new record, then write a
/// fresh footer. A crash mid-append therefore leaves a file whose footer
/// is missing or malformed but whose record sequence is intact up to the
/// interrupted write: records are self-delimiting (marker byte + fixed
/// fields + length-prefixed payload), so recover_stream() can walk them
/// from the header and return every timestep that was completely written.
/// The footer's first byte is a varint count — it can collide with a
/// record marker only if count == 0xA7, which the strict reader never
/// relies on: read_stream() locates the footer from the END of the file
/// (magic + length), validates every index entry against the actual
/// record bytes, and rejects any inconsistency with a typed status.
///
/// Hostile-input discipline matches the AEPC container (pipeline/
/// container.hpp): every length is bounds-checked against the remaining
/// bytes before any allocation, offsets must be strictly increasing and
/// in-bounds, and malformed prefixes map to typed statuses — never an
/// out-of-bounds read or unbounded allocation.

/// "AETC" / "AETI" in little-endian byte order.
constexpr std::uint32_t kStreamMagic = 0x43544541u;
constexpr std::uint32_t kIndexMagic = 0x49544541u;
constexpr std::uint8_t kFormatVersion = 2;
constexpr std::uint8_t kFormatVersionV1 = 1;  // pre-checksum records
constexpr std::uint8_t kRecordMarker = 0xA7;

/// Timestep coding modes.
constexpr std::uint8_t kModeIntra = 0;
constexpr std::uint8_t kModeResidual = 1;

/// Cap on the inner-codec-name blob — longer is a hostile header, not a
/// registry lookup (mirrors service::kMaxCodecName).
constexpr std::size_t kMaxInnerName = 256;

/// Cap on the keyframe cadence a header may declare; anything larger is a
/// hostile header, not a tuning choice.
constexpr std::size_t kMaxGop = std::size_t{1} << 20;

/// One parsed timestep record: coding mode, the absolute tolerance the
/// writer enforced on this timestep, and a zero-copy view of the inner
/// codec stream (an intra frame or a residual field). `offset`/`length`
/// locate the whole record (marker byte included) within the artifact —
/// what the footer index stores and what an appender needs to rebuild it.
struct RecordInfo {
  std::uint8_t mode = kModeIntra;
  double abs_eb = 0.0;
  std::span<const std::uint8_t> payload;
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// Parsed and validated artifact: header fields plus one RecordInfo per
/// complete timestep. Payload spans alias the caller's bytes.
struct StreamInfo {
  std::string inner;  // registry codec name of every payload
  /// Format version the header declared — an appender must keep writing
  /// records in this version so one artifact never mixes formats.
  std::uint8_t version = kFormatVersion;
  Dims dims;
  ErrorBound eb;
  std::size_t gop = 0;
  std::vector<RecordInfo> records;
  /// Byte length of header + complete records (excludes the footer and
  /// any truncated tail) — the recovery point an appender resumes from.
  std::size_t body_bytes = 0;
};

/// True when `stream` leads with the AETC magic (cheap sniff for the CLI).
bool is_temporal(std::span<const std::uint8_t> stream);

/// The inner codec name from a validated header alone — what
/// CodecRegistry::identify() needs without parsing records or footer.
Expected<std::string> peek_inner(std::span<const std::uint8_t> stream);

/// Serialize the fixed header.
std::vector<std::uint8_t> write_stream_header(const std::string& inner,
                                              const Dims& dims,
                                              const ErrorBound& eb,
                                              std::size_t gop);

/// Append one record to `body` (a header + records prefix, NO footer).
/// `version` selects the record format and must match the stream header's
/// declared version (v2 records carry a trailing CRC32C; v1 don't).
void append_record(std::vector<std::uint8_t>& body, std::uint8_t mode,
                   double abs_eb, std::span<const std::uint8_t> payload,
                   std::uint8_t version = kFormatVersion);

/// The footer bytes for the given records (their offset/length fields
/// must locate each record within the body); a complete artifact is
/// body + footer.
std::vector<std::uint8_t> write_footer(std::span<const RecordInfo> records);

/// Strict parse: header, footer located from the file tail, every index
/// entry cross-checked against the record bytes it points at. Any
/// malformation — truncation, bad magic/version, hostile dims or name,
/// offsets that do not tile the record region, index entries disagreeing
/// with record bytes — maps to a typed status.
Expected<StreamInfo> read_stream(std::span<const std::uint8_t> stream);

/// Recovery parse: validates the header, then walks the self-delimiting
/// records forward, IGNORING the footer entirely. Returns every complete
/// timestep; a truncated final append (or a stomped footer) simply ends
/// the walk. `body_bytes` marks where an appender should resume writing.
/// On a v2 stream, a record that is structurally COMPLETE but fails its
/// checksum is kChecksumMismatch — that is corruption, not a torn tail,
/// and resuming past it would silently lose the flipped bytes.
Expected<StreamInfo> recover_stream(std::span<const std::uint8_t> stream);

}  // namespace aesz::temporal
