#include "temporal/temporal.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

#include "predictors/registry.hpp"
#include "util/bytestream.hpp"
#include "util/error.hpp"

namespace aesz::temporal {

namespace {

/// Build the inner codec through the caller's factory or the registry.
/// Fallible flavor (the open/read paths, where an unknown codec name is
/// hostile input, not a programming error).
Expected<std::unique_ptr<Compressor>> make_inner(const CodecFactory& factory,
                                                 const std::string& name,
                                                 int rank) {
  std::unique_ptr<Compressor> codec;
  if (factory) {
    codec = factory(name, rank);
    if (!codec)
      return Status::error(ErrCode::kUnsupported,
                           "codec factory returned null for '" + name + "'");
  } else {
    auto built = CodecRegistry::instance().create(name, rank);
    if (!built.ok()) return built.status();
    codec = std::move(*built);
  }
  if (!codec->supports_rank(rank))
    return Status::error(ErrCode::kUnsupported,
                         "codec '" + name + "' does not support rank " +
                             std::to_string(rank));
  return codec;
}

/// Re-derive a record's payload span from the record bytes (the writer
/// keeps offsets only — payload spans into a growing body buffer would
/// dangle across reallocations).
std::span<const std::uint8_t> record_payload(
    std::span<const std::uint8_t> stream, const RecordInfo& rec) {
  ByteReader r(stream.subspan(rec.offset, rec.length));
  r.get<std::uint8_t>();  // marker
  r.get<std::uint8_t>();  // mode
  r.get<double>();        // abs bound
  return r.get_blob();
}

/// Index of the nearest keyframe at or before t, or an error when the
/// record sequence has none (corrupt: a stream must open with intra).
Expected<std::size_t> keyframe_before(const std::vector<RecordInfo>& recs,
                                      std::size_t t) {
  std::size_t k = t;
  while (recs[k].mode != kModeIntra) {
    if (k == 0)
      return Status::error(ErrCode::kCorruptStream,
                           "no keyframe before timestep");
    --k;
  }
  return k;
}

/// Decode timestep t from scratch: seek to the nearest keyframe, then
/// chain residuals forward. Shared by the writer's read path and its
/// reopen (which needs the final frame to restore the encoder chain).
Expected<Field> decode_at(Compressor& codec, const Dims& dims,
                          std::span<const std::uint8_t> stream,
                          const std::vector<RecordInfo>& recs,
                          std::size_t t) {
  auto k = keyframe_before(recs, t);
  if (!k.ok()) return k.status();
  Field ref;
  for (std::size_t i = *k; i <= t; ++i) {
    auto dec = codec.decompress(record_payload(stream, recs[i]));
    if (!dec.ok()) return dec.status();
    if (dec->dims() != dims)
      return Status::error(ErrCode::kCorruptStream, "record dims mismatch");
    if (recs[i].mode == kModeIntra) {
      ref = std::move(*dec);
    } else {
      auto out = ref.values();
      auto res = dec->values();
      for (std::size_t j = 0; j < out.size(); ++j) out[j] += res[j];
    }
  }
  return ref;
}

}  // namespace

Expected<Mode> parse_mode(const std::string& spec) {
  std::string s = spec;
  for (char& c : s)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (s == "auto") return Mode::kAuto;
  if (s == "intra") return Mode::kIntra;
  if (s == "residual") return Mode::kResidual;
  return Status::error(ErrCode::kInvalidArgument,
                       "unknown temporal mode '" + spec +
                           "' (use auto|intra|residual)");
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kAuto: return "auto";
    case Mode::kIntra: return "intra";
    case Mode::kResidual: return "residual";
  }
  return "?";
}

TemporalCompressor::TemporalCompressor(std::unique_ptr<Compressor> codec,
                                       Dims dims, ErrorBound eb,
                                       std::size_t gop, Mode mode)
    : codec_(std::move(codec)), dims_(dims), eb_(eb), gop_(gop), mode_(mode) {
  AESZ_CHECK_ARG(codec_ != nullptr, "temporal codec requires an inner codec");
  AESZ_CHECK_ARG(dims_.rank >= 1 && dims_.rank <= 3, "bad rank");
  AESZ_CHECK_ARG(eb_.usable(), "unusable error bound");
  AESZ_CHECK_ARG(gop_ <= kMaxGop, "gop exceeds cap");
  if (!codec_->supports_rank(dims_.rank))
    throw Error(ErrCode::kUnsupported,
                "codec '" + codec_->name() + "' does not support rank " +
                    std::to_string(dims_.rank));
  // An unbounded residual chain compounds error without limit — force
  // snapshot coding for codecs that cannot bound the residual.
  if (!codec_->error_bounded()) mode_ = Mode::kIntra;
}

TemporalCompressor::StepResult TemporalCompressor::compress_step(
    const Field& f) {
  AESZ_CHECK_ARG(f.dims() == dims_,
                 "timestep dims " + f.dims().str() + " != stream dims " +
                     dims_.str());
  StepResult out;
  out.abs_eb = eb_.absolute(f.value_range());
  const bool keyframe =
      !has_ref_ || step_ == 0 || (gop_ > 0 && step_ % gop_ == 0);
  const bool try_residual = !keyframe && mode_ != Mode::kIntra;

  std::vector<std::uint8_t> residual_stream;
  if (try_residual) {
    Field residual(dims_);
    auto rv = residual.values();
    auto fv = f.values();
    auto ref = ref_.values();
    for (std::size_t i = 0; i < rv.size(); ++i) rv[i] = fv[i] - ref[i];
    // Abs, not the stream bound: rel/psnr must stay relative to the
    // ORIGINAL frame's range, which out.abs_eb already resolved.
    residual_stream = codec_->compress(residual, ErrorBound::Abs(out.abs_eb));
  }
  if (keyframe || mode_ != Mode::kResidual) {
    std::vector<std::uint8_t> intra_stream = codec_->compress(f, eb_);
    // Auto mode keeps the smaller trial; ties go intra (better error
    // containment at equal cost).
    if (try_residual && residual_stream.size() < intra_stream.size()) {
      out.mode = kModeResidual;
      out.payload = std::move(residual_stream);
    } else {
      out.mode = kModeIntra;
      out.payload = std::move(intra_stream);
    }
  } else {
    out.mode = kModeResidual;
    out.payload = std::move(residual_stream);
  }

  // Advance the reference chain with the DECODED frame, so the encoder
  // state is bit-identical to what any decoder reconstructs.
  auto advanced = decode_step(out.mode, out.payload);
  if (!advanced.ok())
    throw Error(ErrCode::kInternal,
                "self-decode of freshly encoded timestep failed: " +
                    advanced.status().str());
  return out;
}

Expected<Field> TemporalCompressor::decode_step(
    std::uint8_t mode, std::span<const std::uint8_t> payload) {
  if (mode != kModeIntra && mode != kModeResidual)
    return Status::error(ErrCode::kCorruptStream, "bad record mode");
  auto dec = codec_->decompress(payload);
  if (!dec.ok()) return dec.status();
  if (dec->dims() != dims_)
    return Status::error(ErrCode::kCorruptStream, "record dims mismatch");
  if (mode == kModeIntra) {
    ref_ = std::move(*dec);
  } else {
    if (!has_ref_)
      return Status::error(ErrCode::kCorruptStream,
                           "residual record without a reference frame");
    auto out = ref_.values();
    auto res = dec->values();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += res[i];
  }
  has_ref_ = true;
  ++step_;
  return ref_;
}

void TemporalCompressor::reset() {
  ref_ = Field();
  has_ref_ = false;
  step_ = 0;
}

void TemporalCompressor::restore(Field ref, std::size_t step) {
  AESZ_CHECK_ARG(ref.dims() == dims_, "restore dims mismatch");
  AESZ_CHECK_ARG(step > 0, "restore needs a decoded timestep");
  ref_ = std::move(ref);
  has_ref_ = true;
  step_ = step;
}

TemporalWriter::TemporalWriter(Dims dims, ErrorBound eb, Options opt) {
  inner_ = opt.inner;
  dims_ = dims;
  eb_ = eb;
  gop_ = opt.gop;
  auto codec = make_inner(opt.factory, inner_, dims.rank);
  if (!codec.ok()) throw Error(codec.status().code, codec.status().str());
  enc_ = std::make_unique<TemporalCompressor>(std::move(*codec), dims_, eb_,
                                              gop_, opt.mode);
  body_ = write_stream_header(inner_, dims_, eb_, gop_);
}

Expected<std::unique_ptr<TemporalWriter>> TemporalWriter::open(
    std::span<const std::uint8_t> stream, Options opt, bool recover) {
  auto parsed = recover ? recover_stream(stream) : read_stream(stream);
  if (!parsed.ok()) return parsed.status();
  StreamInfo info = std::move(*parsed);

  auto codec = make_inner(opt.factory, info.inner, info.dims.rank);
  if (!codec.ok()) return codec.status();

  std::unique_ptr<TemporalWriter> w(new TemporalWriter());
  w->inner_ = info.inner;
  w->dims_ = info.dims;
  w->eb_ = info.eb;
  w->gop_ = info.gop;
  w->version_ = info.version;
  w->enc_ = std::make_unique<TemporalCompressor>(std::move(*codec), w->dims_,
                                                 w->eb_, w->gop_, opt.mode);
  w->body_.assign(stream.begin(),
                  stream.begin() + static_cast<std::ptrdiff_t>(info.body_bytes));
  w->records_ = std::move(info.records);
  // The parsed payload spans alias the caller's buffer, which this writer
  // outlives — drop them; the offsets into body_ are the durable truth.
  for (RecordInfo& rec : w->records_) rec.payload = {};

  if (!w->records_.empty()) {
    const std::size_t last = w->records_.size() - 1;
    auto ref = decode_at(w->enc_->codec(), w->dims_, w->body_, w->records_,
                         last);
    if (!ref.ok()) return ref.status();
    w->enc_->restore(std::move(*ref), w->records_.size());
  }
  return w;
}

TemporalWriter::AppendResult TemporalWriter::append(const Field& f) {
  auto step = enc_->compress_step(f);
  RecordInfo rec;
  rec.mode = step.mode;
  rec.abs_eb = step.abs_eb;
  rec.offset = body_.size();
  append_record(body_, step.mode, step.abs_eb, step.payload, version_);
  rec.length = body_.size() - rec.offset;
  records_.push_back(rec);
  return {records_.size() - 1, step.mode, step.abs_eb, rec.length};
}

Expected<Field> TemporalWriter::read(std::size_t t) {
  if (t >= records_.size())
    return Status::error(ErrCode::kInvalidArgument,
                         "timestep " + std::to_string(t) + " out of range (" +
                             std::to_string(records_.size()) + " stored)");
  return decode_at(enc_->codec(), dims_, body_, records_, t);
}

std::vector<std::uint8_t> TemporalWriter::bytes() const {
  std::vector<std::uint8_t> out = body_;
  const auto footer = write_footer(records_);
  out.insert(out.end(), footer.begin(), footer.end());
  return out;
}

Expected<std::unique_ptr<TemporalReader>> TemporalReader::open(
    std::span<const std::uint8_t> stream, CodecFactory factory) {
  auto parsed = read_stream(stream);
  if (!parsed.ok()) return parsed.status();
  auto codec = make_inner(factory, parsed->inner, parsed->dims.rank);
  if (!codec.ok()) return codec.status();
  std::unique_ptr<TemporalReader> r(new TemporalReader());
  r->info_ = std::move(*parsed);
  r->dec_ = std::make_unique<TemporalCompressor>(
      std::move(*codec), r->info_.dims, r->info_.eb, r->info_.gop,
      Mode::kAuto);
  return r;
}

Expected<Field> TemporalReader::read(std::size_t t) {
  const auto& recs = info_.records;
  if (t >= recs.size())
    return Status::error(ErrCode::kInvalidArgument,
                         "timestep " + std::to_string(t) + " out of range (" +
                             std::to_string(recs.size()) + " stored)");
  auto k = keyframe_before(recs, t);
  if (!k.ok()) return k.status();
  // Continue the memoized chain when it sits inside [keyframe, t];
  // otherwise re-seek from the keyframe.
  std::size_t start = next_;
  if (next_ == 0 || next_ < *k || next_ > t) {
    dec_->reset();
    start = *k;
  }
  next_ = 0;  // invalid until the loop below completes
  Field out;
  for (std::size_t i = start; i <= t; ++i) {
    auto f = dec_->decode_step(recs[i].mode, recs[i].payload);
    if (!f.ok()) {
      dec_->reset();
      return f.status();
    }
    out = std::move(*f);
  }
  next_ = t + 1;
  return out;
}

}  // namespace aesz::temporal
