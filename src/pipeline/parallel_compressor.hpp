#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pipeline/container.hpp"
#include "predictors/compressor.hpp"

namespace aesz::pipeline {

/// Compressor factory used to build one independent inner-codec instance
/// per worker thread (codecs are not required to be thread-safe; instances
/// are). Takes the field rank, like CodecRegistry factories.
using InnerFactory =
    std::function<std::unique_ptr<Compressor>(int rank)>;

/// `Compressor`-conforming adapter that shards a field into axis-0 slabs
/// (pipeline/sharder.hpp), compresses them concurrently on a ThreadPool —
/// one inner-codec instance per worker — and assembles the results into
/// the versioned multi-chunk container format (pipeline/container.hpp).
/// Any registry codec can be wrapped without touching its own stream
/// format; the registry exposes this as `parallel:<codec>`.
///
/// Error-bound semantics (max-over-chunks guarantee): the requested bound
/// is resolved against the WHOLE field's value range once, and every chunk
/// is compressed under that absolute tolerance. Each point therefore
/// satisfies exactly the bound a single-shot run of the inner codec would
/// have enforced — a value-range-relative or PSNR bound never weakens or
/// tightens because of how the field happened to be sharded.
///
/// Determinism: chunk boundaries depend only on the field dims and the
/// chunk_rows option (the auto default is a function of the dims alone),
/// never on the thread count, and every inner instance built by the same
/// factory is identical (registry codecs use fixed seeds) — so 1-thread
/// and N-thread runs produce byte-identical containers.
class ParallelCompressor : public Compressor {
 public:
  struct Options {
    std::string inner;        // registry name of the wrapped codec
    std::size_t threads = 0;  // worker count; 0 = hardware_concurrency
    std::size_t chunk_rows = 0;  // slab thickness; 0 = auto (~1 MiB slabs)
  };

  /// Wrap the registry codec named `opt.inner`. `rank_hint` is forwarded
  /// to the inner factory (rank-specific codecs pick a matching default
  /// config). Throws aesz::Error(kUnsupported) on an unknown inner name.
  explicit ParallelCompressor(Options opt, int rank_hint = 2);

  /// Wrap codecs built by a custom factory (e.g. AE-SZ instances loading
  /// a trained model file) instead of the registry.
  ParallelCompressor(Options opt, int rank_hint, InnerFactory factory);

  std::string name() const override { return "parallel:" + inner_name_; }
  bool error_bounded() const override;
  bool supports_rank(int rank) const override;

  using Compressor::compress;
  std::vector<std::uint8_t> compress(const Field& f,
                                     const ErrorBound& eb) override;

  /// Worker count this instance will use (after hardware resolution).
  std::size_t threads() const { return threads_; }

 protected:
  Field decompress_impl(std::span<const std::uint8_t> stream) override;

 private:
  Options opt_;
  InnerFactory factory_;
  std::unique_ptr<Compressor> prototype_;  // metadata queries only
  std::string inner_name_;
  std::size_t threads_ = 1;
};

}  // namespace aesz::pipeline
