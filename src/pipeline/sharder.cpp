#include "pipeline/sharder.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace aesz::pipeline {

namespace {

/// Elements per axis-0 plane (the slab stride).
std::size_t row_stride(const Dims& d) {
  std::size_t s = 1;
  for (int i = 1; i < d.rank; ++i) s *= d[i];
  return s;
}

Dims chunk_dims(const Dims& d, std::size_t rows) {
  switch (d.rank) {
    case 1: return Dims(rows);
    case 2: return Dims(rows, d[1]);
    default: return Dims(rows, d[1], d[2]);
  }
}

}  // namespace

std::vector<ChunkSpec> make_chunks(const Dims& d, std::size_t chunk_rows) {
  AESZ_CHECK_ARG(d.rank >= 1 && d.rank <= 3, "field rank must be 1, 2, or 3");
  for (int i = 0; i < d.rank; ++i)
    AESZ_CHECK_ARG(d[i] > 0, "field has a zero extent along axis " +
                                 std::to_string(i));
  const std::size_t d0 = d[0];
  if (chunk_rows == 0 || chunk_rows >= d0)
    return {ChunkSpec{0, d0, chunk_dims(d, d0), 0, d.total()}};
  const std::size_t stride = row_stride(d);
  std::vector<ChunkSpec> chunks;
  chunks.reserve(num_blocks(d0, chunk_rows));
  for (std::size_t row0 = 0; row0 < d0; row0 += chunk_rows) {
    const std::size_t rows = std::min(chunk_rows, d0 - row0);
    chunks.push_back(ChunkSpec{row0, rows, chunk_dims(d, rows),
                               row0 * stride, rows * stride});
  }
  return chunks;
}

Field extract_chunk(const Field& f, const ChunkSpec& c) {
  Field out(c.dims);
  std::memcpy(out.data(), f.data() + c.elem0, c.elems * sizeof(float));
  return out;
}

void scatter_chunk(Field& f, const ChunkSpec& c, const Field& chunk) {
  AESZ_CHECK_STREAM(chunk.dims() == c.dims,
                    "decoded chunk shape " + chunk.dims().str() +
                        " does not match container entry " + c.dims.str());
  std::memcpy(f.data() + c.elem0, chunk.data(), c.elems * sizeof(float));
}

std::size_t auto_chunk_rows(const Dims& d) {
  constexpr std::size_t kTargetChunkBytes = std::size_t{1} << 20;  // 1 MiB
  const std::size_t plane_bytes = row_stride(d) * sizeof(float);
  return std::max<std::size_t>(1, kTargetChunkBytes / plane_bytes);
}

}  // namespace aesz::pipeline
