#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pipeline/sharder.hpp"
#include "predictors/error_bound.hpp"
#include "util/bytestream.hpp"
#include "util/dims.hpp"
#include "util/expected.hpp"

namespace aesz::pipeline {

/// Multi-chunk container stream format (version 2). A container wraps N
/// independently compressed chunk streams of ANY registered codec without
/// touching the inner format — each payload is a complete, self-describing
/// stream of the inner codec. Layout (little-endian, varint = LEB128):
///
///   container magic u32 | version u8 | inner codec magic u32 |
///   rank u8 | dims varint* | eb-mode u8 | eb-value f64 | abs-bound f64 |
///   chunk-rows varint | chunk-count varint |
///   per chunk: rows varint, byte-length varint, crc32c u32 (v2+) |
///   concatenated chunk payloads
///
/// v2 added the per-chunk CRC32C over each payload's bytes: a bit flip
/// inside a chunk is reported as kChecksumMismatch instead of being left
/// for the inner codec to (maybe) notice. v1 streams — no checksums —
/// still parse; writers emit v2.
///
/// `eb-mode`/`eb-value` record the bound the user requested on the WHOLE
/// field; `abs-bound` is the absolute tolerance the encoder resolved it to
/// and enforced on EVERY chunk (the max-over-chunks guarantee: if each
/// chunk satisfies the absolute bound, so does the assembled field).
/// Chunk geometry is validated against the declared dims before any
/// allocation, mirroring the overflow checks of the v2 codec header
/// (sz::read_header).

/// "AEPC" in little-endian byte order.
constexpr std::uint32_t kContainerMagic = 0x43504541u;
constexpr std::uint8_t kContainerVersion = 2;
constexpr std::uint8_t kContainerVersionV1 = 1;  // pre-checksum, read-only

/// Parsed and validated container: chunk geometry plus zero-copy payload
/// views into the caller's stream bytes.
struct ContainerInfo {
  std::uint32_t inner_magic = 0;
  Dims dims;
  ErrorBound eb;
  double abs_eb = 0.0;
  std::size_t chunk_rows = 0;
  std::vector<ChunkSpec> chunks;
  std::vector<std::span<const std::uint8_t>> payloads;  // one per chunk
};

/// True when `stream` leads with the container magic (cheap sniff used by
/// the CLI and the registry's identify()).
bool is_container(std::span<const std::uint8_t> stream);

/// The inner codec magic of a container stream, for codec identification
/// without a full parse.
Expected<std::uint32_t> peek_inner_magic(std::span<const std::uint8_t> stream);

/// Serialize the container: header + chunk table + concatenated payloads.
/// `chunks` and `payloads` must be parallel arrays in axis-0 order.
std::vector<std::uint8_t> write_container(
    std::uint32_t inner_magic, const Dims& dims, const ErrorBound& eb,
    double abs_eb, std::size_t chunk_rows,
    const std::vector<ChunkSpec>& chunks,
    const std::vector<std::vector<std::uint8_t>>& payloads);

/// Fallible parse of a container stream. Every malformed prefix —
/// truncation, wrong magic/version, hostile rank/dims, a chunk table that
/// does not exactly tile the field, payload lengths that overrun the
/// stream — maps to a typed status without reading out of bounds or
/// allocating unbounded memory.
Expected<ContainerInfo> read_container(std::span<const std::uint8_t> stream);

}  // namespace aesz::pipeline
