#pragma once

#include <cstddef>
#include <vector>

#include "data/field.hpp"
#include "util/dims.hpp"

namespace aesz::pipeline {

/// One shard of a field: a contiguous slab of `rows` planes along the
/// slowest-varying axis (axis 0), starting at plane `row0`. Because fields
/// are row-major with the last dimension contiguous, a slab is a single
/// contiguous range of `rows * row_stride` floats — extraction and
/// scatter-back are plain memcpy, no gather loops.
struct ChunkSpec {
  std::size_t row0 = 0;   // first plane along axis 0
  std::size_t rows = 0;   // number of planes in this chunk
  Dims dims;              // chunk shape: {rows, d1[, d2]} at the field rank
  std::size_t elem0 = 0;  // linear element offset of the chunk in the field
  std::size_t elems = 0;  // element count (rows * row_stride)
};

/// Split `d` (rank 1/2/3) into slabs of `chunk_rows` planes along axis 0;
/// the last chunk keeps the remainder. `chunk_rows == 0` or >= d[0] yields
/// a single chunk covering the whole field. Throws
/// aesz::Error(kInvalidArgument) on degenerate dims (rank outside [1,3] or
/// a zero extent).
std::vector<ChunkSpec> make_chunks(const Dims& d, std::size_t chunk_rows);

/// Copy chunk `c` of `f` into its own Field (contiguous slab copy).
Field extract_chunk(const Field& f, const ChunkSpec& c);

/// Copy a decoded chunk back into the assembled field at its slab offset.
/// Throws aesz::Error(kCorruptStream) when `chunk`'s dims disagree with
/// the spec (a container header lying about its payload).
void scatter_chunk(Field& f, const ChunkSpec& c, const Field& chunk);

/// Default slab thickness for a field of shape `d`: targets ~1 MiB of
/// f32s per chunk (fine enough for load balance across many workers,
/// coarse enough that per-task overhead is negligible), never zero.
/// Deliberately a function of the dims ALONE — never of the worker count
/// — so containers compressed with default chunking are byte-identical
/// for every thread count.
std::size_t auto_chunk_rows(const Dims& d);

}  // namespace aesz::pipeline
