#include "pipeline/parallel_compressor.hpp"

#include <atomic>
#include <exception>
#include <future>
#include <utility>

#include "predictors/registry.hpp"
#include "sz/common.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace aesz::pipeline {

namespace {

InnerFactory registry_factory(const std::string& inner) {
  return [inner](int rank) -> std::unique_ptr<Compressor> {
    auto c = CodecRegistry::instance().create(inner, rank);
    if (!c.ok()) throw Error(c.status().code, c.status().str());
    return std::move(c).value();
  };
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ParallelCompressor::ParallelCompressor(Options opt, int rank_hint)
    : ParallelCompressor(opt, rank_hint, registry_factory(opt.inner)) {}

ParallelCompressor::ParallelCompressor(Options opt, int rank_hint,
                                       InnerFactory factory)
    : opt_(std::move(opt)),
      factory_(std::move(factory)),
      prototype_(factory_(rank_hint)),
      inner_name_(prototype_->name()),
      threads_(resolve_threads(opt_.threads)) {}

bool ParallelCompressor::error_bounded() const {
  return prototype_->error_bounded();
}

bool ParallelCompressor::supports_rank(int rank) const {
  return prototype_->supports_rank(rank);
}

namespace {

/// Run fn(codec, chunk_index) over every index in [0, n): sequentially on
/// one fresh inner instance when a single worker suffices, otherwise on a
/// ThreadPool with one fresh inner instance per worker and dynamic
/// (atomic-counter) chunk scheduling. The first exception thrown by any
/// worker is rethrown here; remaining workers stop at their next pull.
template <typename Fn>
void for_each_chunk(const InnerFactory& factory, int rank,
                    std::size_t threads, std::size_t n, Fn&& fn) {
  const std::size_t workers = std::min(threads, n);
  if (workers <= 1) {
    auto codec = factory(rank);
    for (std::size_t i = 0; i < n; ++i) fn(*codec, i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  ThreadPool pool(workers);
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futures.push_back(pool.submit([&factory, &fn, &next, &failed, rank, n] {
      auto codec = factory(rank);
      for (;;) {
        if (failed.load(std::memory_order_acquire)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(*codec, i);
        } catch (...) {
          failed.store(true, std::memory_order_release);
          throw;
        }
      }
    }));
  }
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace

std::vector<std::uint8_t> ParallelCompressor::compress(const Field& f,
                                                       const ErrorBound& eb) {
  const int rank = f.dims().rank;
  AESZ_CHECK_ARG(supports_rank(rank),
                 name() + " does not support rank-" + std::to_string(rank) +
                     " fields");
  // Max-over-chunks guarantee: resolve the bound against the WHOLE field
  // once and hand every chunk the resulting absolute tolerance. Codecs
  // without an error-bounding mechanism get the request verbatim.
  ErrorBound chunk_eb = eb;
  double abs_eb = 0.0;
  if (prototype_->error_bounded()) {
    abs_eb = sz::resolve_abs_eb(f, eb, name().c_str());
    chunk_eb = ErrorBound::Abs(abs_eb);
  }
  const std::size_t chunk_rows =
      opt_.chunk_rows != 0 ? opt_.chunk_rows : auto_chunk_rows(f.dims());
  const std::vector<ChunkSpec> chunks = make_chunks(f.dims(), chunk_rows);
  std::vector<std::vector<std::uint8_t>> payloads(chunks.size());
  for_each_chunk(factory_, rank, threads_, chunks.size(),
                 [&](Compressor& codec, std::size_t i) {
                   payloads[i] =
                       codec.compress(extract_chunk(f, chunks[i]), chunk_eb);
                 });
  // Every inner stream leads with its codec magic; lift the first one into
  // the container header so streams stay identifiable without the wrapper.
  ByteReader r(payloads.front());
  const auto inner_magic = r.get<std::uint32_t>();
  return write_container(inner_magic, f.dims(), eb, abs_eb, chunk_rows,
                         chunks, payloads);
}

Field ParallelCompressor::decompress_impl(
    std::span<const std::uint8_t> stream) {
  auto parsed = read_container(stream);
  if (!parsed.ok())
    throw Error(parsed.status().code, parsed.status().message);
  const ContainerInfo& info = *parsed;
  Field out(info.dims);
  // Workers write disjoint axis-0 slabs of `out`; no synchronization
  // needed beyond the joins inside for_each_chunk.
  for_each_chunk(factory_, info.dims.rank, threads_, info.chunks.size(),
                 [&](Compressor& codec, std::size_t i) {
                   auto chunk = codec.decompress(info.payloads[i]);
                   if (!chunk.ok())
                     throw Error(chunk.status().code,
                                 "chunk " + std::to_string(i) + ": " +
                                     chunk.status().message);
                   scatter_chunk(out, info.chunks[i], *chunk);
                 });
  return out;
}

}  // namespace aesz::pipeline
