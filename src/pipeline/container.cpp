#include "pipeline/container.hpp"

#include <cmath>
#include <string>

#include "sz/common.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"

namespace aesz::pipeline {

bool is_container(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  std::uint32_t magic = 0;
  return r.try_get(magic) && magic == kContainerMagic;
}

Expected<std::uint32_t> peek_inner_magic(
    std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint32_t inner = 0;
  if (!r.try_get(magic))
    return Status::error(ErrCode::kTruncated, "stream too short for magic");
  if (magic != kContainerMagic)
    return Status::error(ErrCode::kBadMagic, "not a container stream");
  if (!r.try_get(version) || !r.try_get(inner))
    return Status::error(ErrCode::kTruncated, "truncated container header");
  if (version != kContainerVersion && version != kContainerVersionV1)
    return Status::error(ErrCode::kBadHeader,
                         "unsupported container version");
  return inner;
}

std::vector<std::uint8_t> write_container(
    std::uint32_t inner_magic, const Dims& dims, const ErrorBound& eb,
    double abs_eb, std::size_t chunk_rows,
    const std::vector<ChunkSpec>& chunks,
    const std::vector<std::vector<std::uint8_t>>& payloads) {
  AESZ_CHECK_ARG(chunks.size() == payloads.size(),
                 "chunk/payload count mismatch");
  AESZ_CHECK_ARG(!chunks.empty(), "container needs at least one chunk");
  ByteWriter w;
  w.put(kContainerMagic);
  w.put(kContainerVersion);
  w.put(inner_magic);
  w.put(static_cast<std::uint8_t>(dims.rank));
  for (int i = 0; i < dims.rank; ++i) w.put_varint(dims[i]);
  w.put(static_cast<std::uint8_t>(eb.mode()));
  w.put(eb.value());
  w.put(abs_eb);
  w.put_varint(chunk_rows);
  w.put_varint(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    w.put_varint(chunks[i].rows);
    w.put_varint(payloads[i].size());
    w.put(util::crc32c(payloads[i]));
  }
  for (const auto& p : payloads) w.put_bytes(p);
  return w.take();
}

Expected<ContainerInfo> read_container(
    std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  std::uint32_t magic = 0;
  if (!r.try_get(magic))
    return Status::error(ErrCode::kTruncated, "stream too short for magic");
  if (magic != kContainerMagic)
    return Status::error(ErrCode::kBadMagic, "container magic mismatch");
  std::uint8_t version = 0;
  ContainerInfo info;
  if (!r.try_get(version) || !r.try_get(info.inner_magic))
    return Status::error(ErrCode::kTruncated, "truncated container header");
  if (version != kContainerVersion && version != kContainerVersionV1)
    return Status::error(ErrCode::kBadHeader,
                         "unsupported container version");
  const bool has_crc = version >= kContainerVersion;
  if (Status s = sz::read_dims_checked(r, info.dims); !s.ok()) return s;
  const int rank = info.dims.rank;
  std::uint8_t mode = 0;
  double eb_value = 0.0;
  if (!r.try_get(mode) || !r.try_get(eb_value) || !r.try_get(info.abs_eb))
    return Status::error(ErrCode::kTruncated, "truncated bound fields");
  if (mode > static_cast<std::uint8_t>(EbMode::kPSNR))
    return Status::error(ErrCode::kBadHeader, "bad error-bound mode");
  if (!std::isfinite(eb_value) || !std::isfinite(info.abs_eb) ||
      info.abs_eb < 0)
    return Status::error(ErrCode::kBadHeader, "bad error-bound value");
  info.eb = ErrorBound(static_cast<EbMode>(mode), eb_value);

  std::uint64_t chunk_rows = 0, chunk_count = 0;
  if (!r.try_get_varint(chunk_rows) || !r.try_get_varint(chunk_count))
    return Status::error(ErrCode::kTruncated, "truncated chunk table");
  // A chunk spans at least one axis-0 plane and its table entry takes at
  // least two bytes — both caps are checked BEFORE the table allocation so
  // a hostile count cannot trigger one.
  if (chunk_count == 0 || chunk_count > info.dims[0] ||
      chunk_count > r.remaining() / 2)
    return Status::error(ErrCode::kBadHeader, "bad chunk count");
  info.chunk_rows = static_cast<std::size_t>(chunk_rows);

  std::size_t stride = 1;
  for (int i = 1; i < rank; ++i) stride *= info.dims[i];
  info.chunks.reserve(static_cast<std::size_t>(chunk_count));
  std::vector<std::uint64_t> lengths;
  lengths.reserve(static_cast<std::size_t>(chunk_count));
  std::vector<std::uint32_t> crcs;
  if (has_crc) crcs.reserve(static_cast<std::size_t>(chunk_count));
  std::uint64_t row0 = 0, payload_total = 0;
  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    std::uint64_t rows = 0, nbytes = 0;
    if (!r.try_get_varint(rows) || !r.try_get_varint(nbytes))
      return Status::error(ErrCode::kTruncated, "truncated chunk table");
    if (has_crc) {
      std::uint32_t crc = 0;
      if (!r.try_get(crc))
        return Status::error(ErrCode::kTruncated, "truncated chunk table");
      crcs.push_back(crc);
    }
    if (rows == 0 || rows > info.dims[0] - row0)
      return Status::error(ErrCode::kCorruptStream,
                           "chunk table does not tile the field");
    // Bounds-before-accumulate: nbytes is compared against the remaining
    // stream bytes, so payload_total can never overflow.
    if (nbytes > r.remaining() || payload_total > r.remaining() - nbytes)
      return Status::error(ErrCode::kTruncated,
                           "chunk payload exceeds stream");
    ChunkSpec c;
    c.row0 = static_cast<std::size_t>(row0);
    c.rows = static_cast<std::size_t>(rows);
    c.dims = info.dims;
    c.dims.d[0] = c.rows;
    c.elem0 = c.row0 * stride;
    c.elems = c.rows * stride;
    info.chunks.push_back(c);
    lengths.push_back(nbytes);
    row0 += rows;
    payload_total += nbytes;
  }
  if (row0 != info.dims[0])
    return Status::error(ErrCode::kCorruptStream,
                         "chunk table does not cover the field");
  if (payload_total != r.remaining())
    return Status::error(ErrCode::kCorruptStream,
                         "container payload size mismatch");
  info.payloads.reserve(lengths.size());
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    std::span<const std::uint8_t> p;
    if (!r.try_get_bytes(static_cast<std::size_t>(lengths[i]), p))
      return Status::error(ErrCode::kTruncated, "truncated chunk payload");
    if (has_crc && util::crc32c(p) != crcs[i])
      return Status::error(ErrCode::kChecksumMismatch,
                           "chunk " + std::to_string(i) +
                               " checksum mismatch");
    info.payloads.push_back(p);
  }
  return info;
}

}  // namespace aesz::pipeline
