#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "util/expected.hpp"
#include "util/stage_timer.hpp"

namespace aesz::obs {

/// Per-request tracing (docs/OBSERVABILITY.md). A RequestTrace is created
/// at frame admission and carried — as a thread-local current pointer
/// installed by TraceScope — across the hop from the admitting thread to
/// the ThreadPool worker or batcher thread that executes the request.
/// While a scope is installed, the codec-level prof::StageScope seams
/// (prediction passes, quantization, entropy coding, network forwards)
/// bill their nanoseconds into the trace as well as into the process-wide
/// accumulators, turning PR 5's global stage totals into per-request
/// spans. A TraceWriter renders finished traces as Chrome trace-event
/// JSONL (one complete JSON object per line; `jq -s . file` wraps it into
/// the array form chrome://tracing and Perfetto load directly).

struct RequestTrace {
  std::uint64_t id = 0;       // process-unique; trace events use it as tid
  const char* op = "request"; // op_name() string (static storage)
  std::uint8_t op_raw = 0;    // raw opcode byte; 0 = none parsed
  std::uint64_t conn_id = 0;  // event-loop connection id; 0 = none
  std::uint64_t session_id = 0;  // stream session addressed; 0 = none

  // Span bounds on the obs::monotonic_ns() clock. admit_ns is stamped
  // where the frame entered the server (submit()); 0 means the request
  // was handled synchronously and has no queue-wait span.
  std::uint64_t admit_ns = 0;
  std::uint64_t queue_wait_ns = 0;   // admission -> execution start
  std::uint64_t batch_wait_ns = 0;   // parked with the batching scheduler
  std::uint64_t exec_start_ns = 0;
  std::uint64_t exec_end_ns = 0;

  /// Codec-stage nanoseconds billed to this request, prof::Stage order
  /// (predict, quantize, entropy, inference).
  std::array<std::uint64_t, prof::kStageCount> stage_ns{};

  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  bool error = false;

  std::uint64_t exec_ns() const {
    return exec_end_ns > exec_start_ns ? exec_end_ns - exec_start_ns : 0;
  }
  /// Admission-to-completion wall time (== queue_wait + exec by
  /// construction when admit_ns is set).
  std::uint64_t wall_ns() const {
    const std::uint64_t from = admit_ns ? admit_ns : exec_start_ns;
    return exec_end_ns > from ? exec_end_ns - from : 0;
  }
};

/// Process-unique request/trace id (also the Chrome-trace tid).
std::uint64_t next_request_id();

/// The trace the current thread is executing for, or nullptr.
RequestTrace* current_trace();

/// RAII: install `t` as the current thread's trace and hook the
/// prof::StageScope sink so codec stage time lands in it; restores the
/// previous trace (scopes nest) on destruction. Passing nullptr is a
/// no-op scope.
class TraceScope {
 public:
  explicit TraceScope(RequestTrace* t);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  RequestTrace* prev_;
  prof::StageSink prev_sink_;
};

/// Thread-safe Chrome trace-event JSONL sink. Each finished request
/// becomes a handful of complete ("ph":"X") events sharing tid=request id:
/// queue-wait and batch-coalesce spans (when nonzero), the request span
/// with byte/stage args, and one child span per nonzero codec stage laid
/// out sequentially inside the request span (stage durations are exact;
/// their offsets are aggregate placement, since a stage accumulates over
/// many scopes).
class TraceWriter {
 public:
  static Expected<std::unique_ptr<TraceWriter>> open(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const RequestTrace& t);

  const std::string& path() const { return path_; }

 private:
  explicit TraceWriter(std::FILE* f, std::string path)
      : f_(f), path_(std::move(path)) {}

  std::mutex mu_;
  std::FILE* f_;
  std::string path_;
};

}  // namespace aesz::obs
