#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace aesz::obs {

namespace {

/// Bucket upper bounds, built once: b0 = 1, b{i+1} = max(b+1, b + b/4).
const std::array<std::uint64_t, kHistogramBuckets>& bounds() {
  static const auto table = [] {
    std::array<std::uint64_t, kHistogramBuckets> b{};
    std::uint64_t v = 1;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      b[i] = v;
      v = std::max(v + 1, v + v / 4);
    }
    return b;
  }();
  return table;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_')
    return false;
  for (char c : name)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  return true;
}

/// HELP text must stay one exposition line: escape backslash and newline
/// per the Prometheus text-format rules.
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

}  // namespace

std::uint64_t histogram_bucket_bound(std::size_t i) { return bounds()[i]; }

std::size_t histogram_bucket_index(std::uint64_t value) {
  const auto& b = bounds();
  const auto it = std::lower_bound(b.begin(), b.end(), value);
  return it == b.end() ? kHistogramBuckets
                       : static_cast<std::size_t>(it - b.begin());
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the order statistic we are after, 1-based.
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (cum + buckets[i] < rank) {
      cum += buckets[i];
      continue;
    }
    // The rank lands in bucket i: interpolate linearly between its bounds
    // by the rank's position inside the bucket. The overflow bucket has no
    // finite upper bound; clamp it to the last finite one.
    const double lower =
        i == 0 ? 0.0 : static_cast<double>(histogram_bucket_bound(i - 1));
    const double upper = static_cast<double>(
        histogram_bucket_bound(std::min(i, kHistogramBuckets - 1)));
    const double frac = static_cast<double>(rank - cum) /
                        static_cast<double>(buckets[i]);
    return lower + frac * (upper - lower);
  }
  return static_cast<double>(histogram_bucket_bound(kHistogramBuckets - 1));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

MetricsRegistry::Metric& MetricsRegistry::get_or_create(
    const std::string& name, const std::string& help, MetricKind kind) {
  AESZ_CHECK_ARG(valid_metric_name(name),
                 "metric name '" + name + "' is not [a-zA-Z_][a-zA-Z0-9_]*");
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = index_.find(name); it != index_.end()) {
    Metric& m = metrics_[it->second];
    AESZ_CHECK_ARG(m.kind == kind,
                   "metric '" + name + "' already registered as another kind");
    return m;
  }
  Metric m;
  m.name = name;
  m.help = help;
  m.kind = kind;
  switch (kind) {
    case MetricKind::kCounter: m.c = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: m.g = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram: m.h = std::make_unique<Histogram>(); break;
  }
  metrics_.push_back(std::move(m));
  index_.emplace(name, metrics_.size() - 1);
  return metrics_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  return *get_or_create(name, help, MetricKind::kCounter).c;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  return *get_or_create(name, help, MetricKind::kGauge).g;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help) {
  return *get_or_create(name, help, MetricKind::kHistogram).h;
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(metrics_.size());
  for (const auto& m : metrics_) {
    Entry e;
    e.name = m.name;
    e.help = m.help;
    e.kind = m.kind;
    switch (m.kind) {
      case MetricKind::kCounter: e.counter = m.c->value(); break;
      case MetricKind::kGauge: e.gauge = m.g->value(); break;
      case MetricKind::kHistogram: e.hist = m.h->snapshot(); break;
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::string MetricsRegistry::prometheus(const std::string& prefix) const {
  const auto entries = snapshot();
  std::string out;
  for (const auto& e : entries) {
    const std::string full = prefix + e.name;
    out += "# HELP " + full + " " +
           (e.help.empty() ? e.name : escape_help(e.help)) + "\n";
    switch (e.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + full + " counter\n";
        out += full + " " + std::to_string(e.counter) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + full + " gauge\n";
        out += full + " " + std::to_string(e.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + full + " histogram\n";
        // Cumulative counts; empty buckets elided (the series stays valid
        // — each emitted `le` is larger than the last and counts are
        // monotone), "+Inf" always emitted so count is always recoverable.
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
          if (e.hist.buckets[i] == 0) continue;
          cum += e.hist.buckets[i];
          out += full + "_bucket{le=\"" +
                 std::to_string(histogram_bucket_bound(i)) + "\"} " +
                 std::to_string(cum) + "\n";
        }
        // "+Inf" and _count derive from the bucket sums, not the count_
        // atomic: under concurrent observe() the relaxed reads can lag
        // each other, and the exposition's cumulative series must stay
        // monotone within itself.
        cum += e.hist.buckets[kHistogramBuckets];
        out += full + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + "\n";
        out += full + "_sum " + std::to_string(e.hist.sum) + "\n";
        out += full + "_count " + std::to_string(cum) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace aesz::obs
