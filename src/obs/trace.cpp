#include "obs/trace.hpp"

#include <atomic>
#include <cinttypes>

#include "obs/log.hpp"

namespace aesz::obs {

namespace {

thread_local RequestTrace* g_current = nullptr;

void stage_into_trace(void* ctx, prof::Stage s, std::uint64_t ns) {
  static_cast<RequestTrace*>(ctx)->stage_ns[static_cast<int>(s)] += ns;
}

const char* stage_span_name(int stage) {
  switch (static_cast<prof::Stage>(stage)) {
    case prof::Stage::kPredict: return "predict";
    case prof::Stage::kQuantize: return "quantize";
    case prof::Stage::kEntropy: return "entropy";
    case prof::Stage::kInference: return "inference";
  }
  return "?";
}

double us(std::uint64_t ns) { return static_cast<double>(ns) * 1e-3; }

}  // namespace

std::uint64_t next_request_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

RequestTrace* current_trace() { return g_current; }

TraceScope::TraceScope(RequestTrace* t)
    : prev_(g_current), prev_sink_(prof::stage_sink()) {
  if (!t) return;
  g_current = t;
  prof::stage_sink() = prof::StageSink{&stage_into_trace, t};
}

TraceScope::~TraceScope() {
  g_current = prev_;
  prof::stage_sink() = prev_sink_;
}

Expected<std::unique_ptr<TraceWriter>> TraceWriter::open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f)
    return Status::error(ErrCode::kIoError,
                         "cannot open trace output '" + path + "'");
  return std::unique_ptr<TraceWriter>(new TraceWriter(f, path));
}

TraceWriter::~TraceWriter() {
  std::lock_guard<std::mutex> lock(mu_);
  if (f_) std::fclose(f_);
}

void TraceWriter::write(const RequestTrace& t) {
  // Events are assembled outside the lock; the lock only serializes the
  // writes so lines from concurrent requests never interleave.
  char buf[512];
  std::string out;

  if (t.queue_wait_ns > 0) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"queue-wait\",\"cat\":\"queue\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%" PRIu64 "}\n",
                  us(t.admit_ns), us(t.queue_wait_ns), t.id);
    out += buf;
  }
  if (t.batch_wait_ns > 0) {
    // The coalesce wait is the tail of the queue wait spent parked with
    // the batching scheduler; place it so it ends at execution start.
    const std::uint64_t start =
        t.exec_start_ns > t.batch_wait_ns ? t.exec_start_ns - t.batch_wait_ns
                                          : 0;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"batch-coalesce\",\"cat\":\"queue\",\"ph\":"
                  "\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%" PRIu64
                  "}\n",
                  us(start), us(t.batch_wait_ns), t.id);
    out += buf;
  }

  std::snprintf(
      buf, sizeof(buf),
      "{\"name\":\"%s\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":%.3f,"
      "\"dur\":%.3f,\"pid\":1,\"tid\":%" PRIu64
      ",\"args\":{\"conn\":%" PRIu64 ",\"session\":%" PRIu64
      ",\"bytes_in\":%" PRIu64 ",\"bytes_out\":%" PRIu64
      ",\"queue_wait_us\":%.3f,\"wall_us\":%.3f,\"error\":%d}}\n",
      t.op, us(t.exec_start_ns), us(t.exec_ns()), t.id, t.conn_id,
      t.session_id, t.bytes_in, t.bytes_out, us(t.queue_wait_ns),
      us(t.wall_ns()), t.error ? 1 : 0);
  out += buf;

  // Stage children: exact durations, sequential placement from execution
  // start (a stage's time accumulates over many scopes, so there is no
  // single real offset to report).
  std::uint64_t cursor = t.exec_start_ns;
  for (int s = 0; s < prof::kStageCount; ++s) {
    if (t.stage_ns[s] == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":"
                  "%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%" PRIu64 "}\n",
                  stage_span_name(s), us(cursor), us(t.stage_ns[s]), t.id);
    out += buf;
    cursor += t.stage_ns[s];
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!f_) return;
  std::fwrite(out.data(), 1, out.size(), f_);
  std::fflush(f_);
}

}  // namespace aesz::obs
