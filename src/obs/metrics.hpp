#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace aesz::obs {

/// Observability metrics core (docs/OBSERVABILITY.md). Three instrument
/// kinds — Counter (monotonic), Gauge (signed level), Histogram
/// (log-bucketed distribution) — registered by name in a MetricsRegistry
/// that snapshots them all in registration order and renders Prometheus
/// text exposition. Registration takes a mutex once per metric; every
/// update after that is a single relaxed atomic op, so instruments are
/// safe (and cheap) to hit from the server's worker pool, the batcher
/// thread, and the event loop concurrently. Instrument references handed
/// out by a registry stay valid for the registry's lifetime.

/// Monotonic event count. Relaxed atomics: totals are exact, but a
/// concurrent snapshot may observe a value between two related updates.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depths, open connections). Signed so a
/// racing sub-before-add transient cannot wrap to 2^64.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed log-spaced bucket layout shared by every histogram: bucket i
/// counts values in (bound[i-1], bound[i]], bucket 0 counts [0, bound[0]],
/// and one extra overflow bucket counts values past the last bound. Bounds
/// grow by ~1.25x per step (exactly max(b+1, b + b/4) in integers, so
/// small buckets are dense and every bound is distinct), spanning 1 ns to
/// ~30 hours when values are nanoseconds — relative quantile error is
/// bounded by one bucket width (25%) at any magnitude.
inline constexpr std::size_t kHistogramBuckets = 144;

/// Inclusive upper bound of bucket i (i < kHistogramBuckets).
std::uint64_t histogram_bucket_bound(std::size_t i);

/// Index of the bucket that counts `value` (kHistogramBuckets = overflow).
std::size_t histogram_bucket_index(std::uint64_t value);

/// A point-in-time copy of a histogram. Mergeable because every histogram
/// shares one bucket layout; quantiles interpolate within the bucket that
/// crosses the requested rank.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets + 1> buckets{};

  void merge(const HistogramSnapshot& other);

  /// Estimated q-quantile (q in [0,1]), within one bucket width of the
  /// exact order statistic. 0 when the histogram is empty; overflow-bucket
  /// ranks clamp to the last finite bound.
  double quantile(double q) const;
};

class Histogram {
 public:
  void observe(std::uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[histogram_bucket_index(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets + 1> buckets_{};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Named instruments in registration order. counter()/gauge()/histogram()
/// get-or-create: the first call fixes the kind and help text, later calls
/// return the same instrument (asking for an existing name as a different
/// kind throws Error(kInvalidArgument), as does a name that fails the
/// Prometheus [a-zA-Z_][a-zA-Z0-9_]* regex). Not a process singleton: each
/// Server owns one so tests see isolated counters; share it across layers
/// (EventServer does) to get one snapshot covering all of them.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "");

  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;
    std::int64_t gauge = 0;
    HistogramSnapshot hist;
  };

  /// All instruments, registration order, values read relaxed.
  std::vector<Entry> snapshot() const;

  /// Prometheus text exposition (docs/OBSERVABILITY.md): HELP/TYPE pair
  /// per metric, `prefix` prepended to every name, histogram buckets as
  /// cumulative `_bucket{le="..."}` series (empty buckets elided, "+Inf"
  /// always present) plus `_sum`/`_count`.
  std::string prometheus(const std::string& prefix = "aesz_") const;

 private:
  struct Metric {
    std::string name;
    std::string help;
    MetricKind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  Metric& get_or_create(const std::string& name, const std::string& help,
                        MetricKind kind);

  mutable std::mutex mu_;
  std::deque<Metric> metrics_;  // deque: stable references across growth
  std::map<std::string, std::size_t> index_;
};

}  // namespace aesz::obs
