#pragma once

#include <string>

#include "util/expected.hpp"

namespace aesz::obs {

/// Tiny leveled logger for the service layer (docs/OBSERVABILITY.md).
/// One line per event on stderr, written by a single fprintf so concurrent
/// threads never interleave mid-line:
///
///   [   12.345678] W server: slow request op=compress id=42 ms=103.2
///
/// The timestamp is monotonic seconds since process start (steady clock —
/// matches trace-event timestamps, immune to wall-clock steps). The level
/// starts from the AESZ_LOG environment variable (trace|debug|info|warn|
/// error|off, default info) and can be overridden programmatically
/// (aesz_server --log-level). Call sites go through the AESZ_LOG_* macros
/// so disabled levels cost one relaxed atomic load and never evaluate
/// their arguments.

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Current threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse a level name ("warn", "WARN", ...). Typed kInvalidArgument on an
/// unknown name, so --log-level typos fail loudly.
Expected<LogLevel> parse_log_level(const std::string& name);
const char* log_level_name(LogLevel level);

inline bool log_enabled(LogLevel level) { return level >= log_level(); }

/// Emit one line (printf-style). Prefer the macros below.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
void log_line(LogLevel level, const char* component, const char* fmt, ...);

/// Monotonic nanoseconds since an arbitrary process-stable epoch — the
/// clock every obs timestamp (log lines, trace events, span bounds) shares.
std::uint64_t monotonic_ns();

#define AESZ_LOG_AT(level, component, ...)                       \
  do {                                                           \
    if (::aesz::obs::log_enabled(level))                         \
      ::aesz::obs::log_line(level, component, __VA_ARGS__);      \
  } while (0)

#define AESZ_LOG_TRACE(component, ...) \
  AESZ_LOG_AT(::aesz::obs::LogLevel::kTrace, component, __VA_ARGS__)
#define AESZ_LOG_DEBUG(component, ...) \
  AESZ_LOG_AT(::aesz::obs::LogLevel::kDebug, component, __VA_ARGS__)
#define AESZ_LOG_INFO(component, ...) \
  AESZ_LOG_AT(::aesz::obs::LogLevel::kInfo, component, __VA_ARGS__)
#define AESZ_LOG_WARN(component, ...) \
  AESZ_LOG_AT(::aesz::obs::LogLevel::kWarn, component, __VA_ARGS__)
#define AESZ_LOG_ERROR(component, ...) \
  AESZ_LOG_AT(::aesz::obs::LogLevel::kError, component, __VA_ARGS__)

}  // namespace aesz::obs
