#include "obs/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdarg>
#include <cstdio>

namespace aesz::obs {

namespace {

/// Process-start epoch for every obs timestamp. Captured on first use;
/// function-local static so it is safe before main().
std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

LogLevel level_from_env() {
  const char* v = std::getenv("AESZ_LOG");
  if (v && *v) {
    auto parsed = parse_log_level(v);
    if (parsed.ok()) return *parsed;
    std::fprintf(stderr, "[    0.000000] W log: AESZ_LOG='%s' is not a "
                         "level (trace|debug|info|warn|error|off)\n", v);
  }
  return LogLevel::kInfo;
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

char level_char(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return 'T';
    case LogLevel::kDebug: return 'D';
    case LogLevel::kInfo: return 'I';
    case LogLevel::kWarn: return 'W';
    case LogLevel::kError: return 'E';
    case LogLevel::kOff: break;
  }
  return '?';
}

}  // namespace

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

LogLevel log_level() {
  return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

Expected<LogLevel> parse_log_level(const std::string& name) {
  std::string l;
  for (char c : name)
    l += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (l == "trace") return LogLevel::kTrace;
  if (l == "debug") return LogLevel::kDebug;
  if (l == "info") return LogLevel::kInfo;
  if (l == "warn" || l == "warning") return LogLevel::kWarn;
  if (l == "error") return LogLevel::kError;
  if (l == "off" || l == "none") return LogLevel::kOff;
  return Status::error(ErrCode::kInvalidArgument,
                       "'" + name + "' is not a log level "
                       "(trace|debug|info|warn|error|off)");
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void log_line(LogLevel level, const char* component, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  const double sec = static_cast<double>(monotonic_ns()) * 1e-9;
  // One fprintf per line: stderr is unbuffered but POSIX guarantees
  // atomicity only per write, so the line is assembled first.
  std::fprintf(stderr, "[%12.6f] %c %s: %s\n", sec, level_char(level),
               component ? component : "-", msg);
}

}  // namespace aesz::obs
