#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace aesz {

/// LSB-first bit sink for Huffman codes and ZFP bit planes.
///
/// Word-at-a-time: bits accumulate in a 64-bit register and are flushed as
/// whole 8-byte words; a single put_bits() call appends up to 64 bits. The
/// emitted byte stream is identical to per-bit emission (bit i of the
/// stream is bit (i&7) of byte i>>3), so streams written by older per-bit
/// writers and by this one are interchangeable.
class BitWriter {
 public:
  /// Append the low `n` bits of `v`, LSB of `v` first. n in [0, 64].
  void put_bits(std::uint64_t v, int n) {
    if (n <= 0) return;
    if (n < 64) v &= (1ULL << n) - 1;
    acc_ |= v << fill_;  // fill_ in [0, 63] between calls
    if (fill_ + n >= 64) {
      flush_word();
      const int consumed = 64 - fill_;
      acc_ = consumed >= 64 ? 0 : v >> consumed;
      fill_ = fill_ + n - 64;
    } else {
      fill_ += n;
    }
  }

  /// Compatibility alias for put_bits (historical name).
  void put(std::uint64_t v, int n) { put_bits(v, n); }

  void put_bit(bool b) { put_bits(b ? 1 : 0, 1); }

  /// Unary-coded small integer (n zero bits then a one); cheap for the
  /// geometric distributions in ZFP group tests.
  void put_unary(unsigned n) {
    while (n >= 63) {
      put_bits(0, 63);
      n -= 63;
    }
    put_bits(1ULL << n, static_cast<int>(n) + 1);
  }

  /// Grow the backing buffer ahead of a known-size payload.
  void reserve_bits(std::size_t bits) { buf_.reserve(buf_.size() + bits / 8 + 9); }

  /// Pad to a byte boundary and return the stream.
  std::vector<std::uint8_t> finish() {
    int left = fill_;
    while (left > 0) {
      buf_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      left -= 8;
    }
    acc_ = 0;
    fill_ = 0;
    return std::move(buf_);
  }

  std::size_t bit_count() const {
    return buf_.size() * 8 + static_cast<std::size_t>(fill_);
  }

 private:
  void flush_word() {
    const std::size_t old = buf_.size();
    buf_.resize(old + 8);
    std::uint64_t a = acc_;
    for (int i = 0; i < 8; ++i) {  // little-endian store, single mov on x86
      buf_[old + i] = static_cast<std::uint8_t>(a);
      a >>= 8;
    }
  }

  std::vector<std::uint8_t> buf_;
  std::uint64_t acc_ = 0;
  int fill_ = 0;  // buffered bits in acc_, [0, 63]
};

/// LSB-first bit source matching BitWriter, buffered through a 64-bit
/// accumulator (refilled a byte at a time, so get_bits(n) is one shift/mask
/// for any n). Reading past the end returns zero bits (needed by truncated
/// fixed-rate ZFP streams); `overran()` reports whether that ever happened,
/// giving decoders a fallible bounds-checked path: decode optimistically,
/// then reject the stream as truncated if any read fell off the end.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Consume and return the next `n` bits, LSB = first stream bit.
  /// n in [0, 64]; bits past the end read as zero and set overran().
  std::uint64_t get_bits(int n) {
    if (n <= 0) return 0;
    refill();
    std::uint64_t v;
    if (n <= nbits_) {
      v = n >= 64 ? acc_ : acc_ & ((1ULL << n) - 1);
      acc_ = n >= 64 ? 0 : acc_ >> n;
      nbits_ -= n;
    } else {
      // Fewer buffered bits than requested: either n > 57 with more bytes
      // available (refill stops at >=57), or the stream is ending.
      v = acc_;
      const int got = nbits_;
      acc_ = 0;
      nbits_ = 0;
      refill();
      const int need = n - got;
      if (need <= nbits_) {
        v |= (acc_ & ((1ULL << need) - 1)) << got;
        acc_ >>= need;
        nbits_ -= need;
      } else {  // stream exhausted: zero-fill the remainder
        v |= acc_ << got;
        acc_ = 0;
        nbits_ = 0;
        overran_ = true;
      }
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  /// Compatibility alias for get_bits (historical name).
  std::uint64_t get(int n) { return get_bits(n); }

  int get_bit() { return static_cast<int>(get_bits(1)); }

  /// Return the next `n` bits without consuming them. n in [0, 57] (the
  /// refill guarantee); bits past the end read as zero and do NOT set
  /// overran() — only consuming them does. This is the lookahead primitive
  /// behind table-driven Huffman decoding.
  std::uint64_t peek_bits(int n) {
    refill();
    return n <= 0 ? 0 : acc_ & ((1ULL << n) - 1);
  }

  /// Discard `n` bits (any size); past-the-end bits set overran().
  void skip_bits(std::size_t n) {
    while (n > 57) {
      (void)get_bits(57);
      n -= 57;
    }
    (void)get_bits(static_cast<int>(n));
  }

  unsigned get_unary(unsigned limit) {
    unsigned n = 0;
    while (n < limit && !get_bit()) ++n;
    return n;
  }

  std::size_t bit_pos() const { return pos_; }
  bool exhausted() const { return (pos_ >> 3) >= data_.size(); }
  /// True once any read went past the last data bit (and was zero-filled).
  bool overran() const { return overran_; }

 private:
  void refill() {
    while (nbits_ <= 56 && byte_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(data_[byte_++]) << nbits_;
      nbits_ += 8;
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t byte_ = 0;  // next byte to load into acc_
  std::uint64_t acc_ = 0;
  int nbits_ = 0;           // valid bits in acc_, [0, 64]
  std::size_t pos_ = 0;     // consumed bit count
  bool overran_ = false;
};

}  // namespace aesz
