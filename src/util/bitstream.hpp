#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace aesz {

/// LSB-first bit sink for Huffman codes and ZFP bit planes.
/// Bits are packed into a 64-bit accumulator and flushed bytewise; write
/// order equals read order in BitReader.
class BitWriter {
 public:
  /// Append the low `n` bits of `v` (n in [0, 57]; callers split longer
  /// words). LSB of `v` is emitted first.
  void put(std::uint64_t v, int n) {
    acc_ |= (n >= 64 ? v : (v & ((1ULL << n) - 1))) << fill_;
    fill_ += n;
    while (fill_ >= 8) {
      buf_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }

  void put_bit(bool b) { put(b ? 1 : 0, 1); }

  /// Unary-coded small integer (n zero bits then a one); cheap for the
  /// geometric distributions in ZFP group tests.
  void put_unary(unsigned n) {
    for (unsigned i = 0; i < n; ++i) put_bit(false);
    put_bit(true);
  }

  /// Pad to a byte boundary and return the stream.
  std::vector<std::uint8_t> finish() {
    if (fill_ > 0) {
      buf_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      fill_ = 0;
    }
    return std::move(buf_);
  }

  std::size_t bit_count() const { return buf_.size() * 8 + fill_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint64_t acc_ = 0;
  int fill_ = 0;
};

/// LSB-first bit source matching BitWriter. Reading past the end returns
/// zero bits (needed by truncated fixed-rate ZFP streams); `overran()`
/// reports whether that ever happened, giving decoders a fallible
/// bounds-checked path: decode optimistically, then reject the stream as
/// truncated if any read fell off the end.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint64_t get(int n) {
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(get_bit()) << i;
    }
    return v;
  }

  int get_bit() {
    const std::size_t byte = pos_ >> 3;
    if (byte >= data_.size()) {
      ++pos_;
      overran_ = true;
      return 0;  // zero-fill past end: truncated embedded streams decode low bits as 0
    }
    const int bit = (data_[byte] >> (pos_ & 7)) & 1;
    ++pos_;
    return bit;
  }

  unsigned get_unary(unsigned limit) {
    unsigned n = 0;
    while (n < limit && !get_bit()) ++n;
    return n;
  }

  std::size_t bit_pos() const { return pos_; }
  bool exhausted() const { return (pos_ >> 3) >= data_.size(); }
  /// True once any read went past the last data bit (and was zero-filled).
  bool overran() const { return overran_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool overran_ = false;
};

}  // namespace aesz
