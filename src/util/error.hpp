#pragma once

#include <stdexcept>
#include <string>

namespace aesz {

/// Machine-readable failure categories for the status-based v2 API. Stream
/// decoders map every malformed input to one of these instead of crashing;
/// `Expected<T>` (util/expected.hpp) carries them across the API boundary.
enum class ErrCode : std::uint8_t {
  kOk = 0,
  kTruncated,        // stream ended before a required read completed
  kBadMagic,         // leading magic does not identify this codec
  kBadHeader,        // version/rank/dims/bound-mode out of range or overflow
  kCorruptStream,    // payload inconsistent with its header
  kModelMismatch,    // AE weights/config differ from the encoding side
  kInvalidArgument,  // caller-supplied bound/options are unusable
  kUnsupported,      // operation not provided by this codec (rank, mode)
  kIoError,          // file open/read/write failure
  kInternal,         // library invariant failure
  kOverloaded,       // server admission control rejected the request
  kNoSession,        // stream-session id unknown, closed, or reaped
  kChecksumMismatch, // stored CRC32C disagrees with the bytes it covers
  kTimeout,          // deadline expired before the operation finished
};

inline const char* errcode_name(ErrCode c) {
  switch (c) {
    case ErrCode::kOk: return "ok";
    case ErrCode::kTruncated: return "truncated";
    case ErrCode::kBadMagic: return "bad_magic";
    case ErrCode::kBadHeader: return "bad_header";
    case ErrCode::kCorruptStream: return "corrupt_stream";
    case ErrCode::kModelMismatch: return "model_mismatch";
    case ErrCode::kInvalidArgument: return "invalid_argument";
    case ErrCode::kUnsupported: return "unsupported";
    case ErrCode::kIoError: return "io_error";
    case ErrCode::kInternal: return "internal";
    case ErrCode::kOverloaded: return "overloaded";
    case ErrCode::kNoSession: return "no_session";
    case ErrCode::kChecksumMismatch: return "checksum_mismatch";
    case ErrCode::kTimeout: return "timeout";
  }
  return "unknown";
}

/// Thrown on malformed compressed streams, bad configuration, or I/O
/// failure. Carries an ErrCode so `Compressor::decompress` can translate
/// internal failures into typed statuses without string matching.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg)
      : std::runtime_error(msg), code_(ErrCode::kInternal) {}
  Error(ErrCode code, const std::string& msg)
      : std::runtime_error(msg), code_(code) {}

  ErrCode code() const { return code_; }

 private:
  ErrCode code_;
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg,
                              ErrCode code = ErrCode::kInternal) {
  throw Error(code, std::string(file) + ":" + std::to_string(line) +
                        ": check `" + expr + "` failed" +
                        (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace aesz

/// Runtime invariant check that survives NDEBUG; use for stream/format
/// validation where silent corruption is worse than an exception.
#define AESZ_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) ::aesz::detail::fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define AESZ_CHECK_MSG(expr, msg)                                 \
  do {                                                            \
    if (!(expr)) ::aesz::detail::fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Stream-validation flavor: failure is attributed to the *input stream*
/// (ErrCode::kCorruptStream), not to a library bug, so decompress() can
/// report it as a typed, recoverable status.
#define AESZ_CHECK_STREAM(expr, msg)                            \
  do {                                                          \
    if (!(expr))                                                \
      ::aesz::detail::fail(#expr, __FILE__, __LINE__, (msg),    \
                           ::aesz::ErrCode::kCorruptStream);    \
  } while (0)

/// Argument-validation flavor for compress()/configuration entry points.
#define AESZ_CHECK_ARG(expr, msg)                               \
  do {                                                          \
    if (!(expr))                                                \
      ::aesz::detail::fail(#expr, __FILE__, __LINE__, (msg),    \
                           ::aesz::ErrCode::kInvalidArgument);  \
  } while (0)
