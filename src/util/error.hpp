#pragma once

#include <stdexcept>
#include <string>

namespace aesz {

/// Thrown on malformed compressed streams, bad configuration, or I/O failure.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": check `" +
              expr + "` failed" + (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace aesz

/// Runtime invariant check that survives NDEBUG; use for stream/format
/// validation where silent corruption is worse than an exception.
#define AESZ_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) ::aesz::detail::fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define AESZ_CHECK_MSG(expr, msg)                                 \
  do {                                                            \
    if (!(expr)) ::aesz::detail::fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
