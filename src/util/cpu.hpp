#pragma once

// Runtime CPU-feature detection, factored out of the GEMM microkernel
// dispatch so every SIMD-dispatching kernel in the repo asks the same
// question the same way. On x86-64 GNU/Clang builds the probes compile to
// one cpuid via __builtin_cpu_supports (memoized below — the builtin
// itself re-reads a TLS-cached model struct, but funneling through one
// bool keeps call sites branch-predictable and greppable). Elsewhere every
// probe is constant-false, so dispatch code needs no #ifdef at the call
// site — only around the target-attributed kernel definitions themselves,
// for which AESZ_X86_DISPATCH is the canonical gate.

namespace aesz::util {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define AESZ_X86_DISPATCH 1

/// AVX2 and FMA together — the baseline for the repo's wide-vector
/// kernels. Probed once per process.
inline bool cpu_has_avx2_fma() {
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
}

/// SSE4.2 — carries the crc32 instruction behind util/crc32c.hpp.
inline bool cpu_has_sse42() {
  static const bool ok = __builtin_cpu_supports("sse4.2");
  return ok;
}

#else

inline bool cpu_has_avx2_fma() { return false; }
inline bool cpu_has_sse42() { return false; }

#endif  // x86-64 GNU/Clang

/// Human-readable tier name, for benchmark banners and stats output.
inline const char* cpu_dispatch_tier() {
#ifdef AESZ_X86_DISPATCH
  return cpu_has_avx2_fma() ? "avx2+fma" : "sse2";
#else
  return "scalar";
#endif
}

}  // namespace aesz::util
