#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace aesz::util {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected) — the checksum
/// behind iSCSI, ext4, and most storage formats, chosen here because
/// x86-64 has carried a hardware instruction for it since Nehalem. The
/// repo uses it for every integrity seal: codec streams, container chunk
/// tables, AETC records, AEPR layers, and optional protocol frame
/// trailers.
///
/// `crc` is a running value for incremental use:
///
///   std::uint32_t c = crc32c(part1);
///   c = crc32c(part2, c);            // == crc32c(part1 + part2)
///
/// The implementation dispatches once per process between the SSE4.2
/// hardware path (three 8-byte CRC lanes per iteration are unnecessary at
/// our sizes; a single _mm_crc32_u64 chain already saturates the port)
/// and a slice-by-8 table fallback. Both are exposed for differential
/// testing; call the plain crc32c() everywhere else.
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t crc = 0);

inline std::uint32_t crc32c(const std::vector<std::uint8_t>& data,
                            std::uint32_t crc = 0) {
  return crc32c(std::span<const std::uint8_t>(data), crc);
}

/// Slice-by-8 software path (always available).
std::uint32_t crc32c_sw(std::span<const std::uint8_t> data,
                        std::uint32_t crc = 0);

/// SSE4.2 hardware path. Only callable when crc32c_hw_available() — on
/// other machines it falls through to the software path.
std::uint32_t crc32c_hw(std::span<const std::uint8_t> data,
                        std::uint32_t crc = 0);

/// True when this process dispatches crc32c() to the SSE4.2 instruction.
bool crc32c_hw_available();

}  // namespace aesz::util
