#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace aesz {

/// xoshiro256** — fast, high-quality, reproducible PRNG. We avoid
/// std::mt19937 in hot paths (weight init, synthetic data, SWAE
/// projections) because its state is large and its distribution wrappers
/// are implementation-defined; reproducibility across stdlibs matters for
/// the regression tests.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    for (auto& w : s_) {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      w = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (cached second value).
  double gaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double a = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(a);
    have_cached_ = true;
    return r * std::cos(a);
  }

  float gaussianf() { return static_cast<float>(gaussian()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace aesz
