#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace aesz {

/// Shape of a scalar field: 1, 2, or 3 dimensions, slowest-varying first
/// (SDRBench convention: a CESM field 1800x3600 is dims {1800, 3600} with
/// the 3600 axis contiguous in memory).
struct Dims {
  int rank = 0;
  std::array<std::size_t, 3> d{1, 1, 1};

  Dims() = default;
  explicit Dims(std::size_t n0) : rank(1), d{n0, 1, 1} {}
  Dims(std::size_t n0, std::size_t n1) : rank(2), d{n0, n1, 1} {}
  Dims(std::size_t n0, std::size_t n1, std::size_t n2)
      : rank(3), d{n0, n1, n2} {}

  std::size_t total() const { return d[0] * d[1] * d[2]; }
  std::size_t operator[](int i) const { return d[static_cast<std::size_t>(i)]; }

  bool operator==(const Dims& o) const { return rank == o.rank && d == o.d; }

  std::string str() const {
    std::string s = std::to_string(d[0]);
    for (int i = 1; i < rank; ++i) {
      s += 'x';
      s += std::to_string(d[i]);
    }
    return s;
  }
};

/// Row-major linear index helpers.
inline std::size_t lin2(const Dims& dm, std::size_t i, std::size_t j) {
  return i * dm.d[1] + j;
}
inline std::size_t lin3(const Dims& dm, std::size_t i, std::size_t j,
                        std::size_t k) {
  return (i * dm.d[1] + j) * dm.d[2] + k;
}

/// Number of blocks of size `bs` covering `n` points (last block may be
/// partial).
inline std::size_t num_blocks(std::size_t n, std::size_t bs) {
  return (n + bs - 1) / bs;
}

}  // namespace aesz
