#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace aesz {

/// Fixed-size worker pool over a FIFO work queue — the execution engine of
/// the parallel compression pipeline (src/pipeline/). Tasks are submitted
/// as callables and observed through std::future, so exceptions thrown
/// inside a task surface at the caller's future.get(), not in the worker.
///
/// Design points:
///  - The destructor is a graceful drain: tasks still queued at shutdown
///    are executed before the workers exit, so a caller that submitted N
///    tasks and then joins on their futures never deadlocks.
///  - `threads == 0` asks for std::thread::hardware_concurrency() (itself
///    clamped to at least 1, since hardware_concurrency may return 0).
///  - The pool is itself thread-safe: any thread may submit().
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  /// Tasks queued but not yet picked up by a worker — the queue-depth
  /// gauge the observability layer exports (Server's pool_queue_depth).
  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// Enqueue `fn` and return a future for its result. `fn` must be
  /// invocable with no arguments; its return value (or exception) is
  /// delivered through the future.
  template <typename F>
  std::future<std::invoke_result_t<std::decay_t<F>>> submit(F&& fn) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        // Graceful drain: even when stopping, finish what was queued so
        // every outstanding future is eventually satisfied.
        if (queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace aesz
