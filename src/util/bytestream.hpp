#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace aesz {

/// Append-only little-endian byte sink used to assemble compressed streams.
/// All multi-byte scalars are written via memcpy so the format is
/// alignment-safe and identical across the x86-64 targets we support.
class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const std::size_t old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &v, sizeof(T));
  }

  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// LEB128 unsigned varint: compact lengths/counts in headers.
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Length-prefixed nested blob (varint length + payload).
  void put_blob(std::span<const std::uint8_t> bytes) {
    put_varint(bytes.size());
    put_bytes(bytes);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_array(std::span<const T> v) {
    put_varint(v.size());
    if (v.empty()) return;  // empty span may have data() == nullptr
    const std::size_t old = buf_.size();
    buf_.resize(old + v.size() * sizeof(T));
    std::memcpy(buf_.data() + old, v.data(), v.size() * sizeof(T));
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a compressed stream; throws aesz::Error on
/// truncation instead of reading out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    AESZ_CHECK_MSG(pos_ + sizeof(T) <= data_.size(), "truncated stream");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      AESZ_CHECK_MSG(pos_ < data_.size(), "truncated varint");
      const std::uint8_t b = data_[pos_++];
      AESZ_CHECK_MSG(shift < 64, "varint overflow");
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    return v;
  }

  std::span<const std::uint8_t> get_bytes(std::size_t n) {
    AESZ_CHECK_MSG(pos_ + n <= data_.size(), "truncated stream");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::span<const std::uint8_t> get_blob() {
    const std::uint64_t n = get_varint();
    return get_bytes(n);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_array() {
    const std::uint64_t n = get_varint();
    AESZ_CHECK_MSG(pos_ + n * sizeof(T) <= data_.size(), "truncated array");
    std::vector<T> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool eof() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace aesz
