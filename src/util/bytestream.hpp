#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace aesz {

/// Append-only little-endian byte sink used to assemble compressed streams.
/// All multi-byte scalars are written via memcpy so the format is
/// alignment-safe and identical across the x86-64 targets we support.
class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const std::size_t old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &v, sizeof(T));
  }

  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// LEB128 unsigned varint: compact lengths/counts in headers.
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Length-prefixed nested blob (varint length + payload).
  void put_blob(std::span<const std::uint8_t> bytes) {
    put_varint(bytes.size());
    put_bytes(bytes);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_array(std::span<const T> v) {
    put_varint(v.size());
    if (v.empty()) return;  // empty span may have data() == nullptr
    const std::size_t old = buf_.size();
    buf_.resize(old + v.size() * sizeof(T));
    std::memcpy(buf_.data() + old, v.data(), v.size() * sizeof(T));
  }

  /// Pre-size the backing buffer from a stream-size estimate.
  void reserve(std::size_t bytes) { buf_.reserve(buf_.size() + bytes); }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a compressed stream (a zero-copy view: the
/// caller keeps ownership of the bytes; get_bytes/get_blob return subspans
/// of them).
///
/// Two read flavors:
///  - try_get* returns false on truncation and never throws — the fallible
///    path used by header parsing to produce typed statuses;
///  - get* throws aesz::Error(ErrCode::kTruncated) — the convenient path
///    inside decoder bodies, translated to a Status by
///    Compressor::decompress.
/// All bounds arithmetic is overflow-safe against hostile varint lengths
/// (`n` is compared against the remaining byte count, never added to pos_).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  bool try_get(T& out) {
    if (sizeof(T) > remaining()) return false;
    std::memcpy(&out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool try_get_varint(std::uint64_t& out) {
    std::uint64_t v = 0;
    int shift = 0;
    std::size_t pos = pos_;
    while (true) {
      if (pos >= data_.size() || shift >= 64) return false;
      const std::uint8_t b = data_[pos++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    pos_ = pos;
    out = v;
    return true;
  }

  bool try_get_bytes(std::size_t n, std::span<const std::uint8_t>& out) {
    if (n > remaining()) return false;
    out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

  bool try_get_blob(std::span<const std::uint8_t>& out) {
    const std::size_t mark = pos_;
    std::uint64_t n = 0;
    if (try_get_varint(n) && n <= remaining() &&
        try_get_bytes(static_cast<std::size_t>(n), out))
      return true;
    pos_ = mark;
    return false;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T v;
    if (!try_get(v)) throw Error(ErrCode::kTruncated, "truncated stream");
    return v;
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    if (!try_get_varint(v))
      throw Error(ErrCode::kTruncated, "truncated or overlong varint");
    return v;
  }

  std::span<const std::uint8_t> get_bytes(std::size_t n) {
    std::span<const std::uint8_t> s;
    if (!try_get_bytes(n, s))
      throw Error(ErrCode::kTruncated, "truncated stream");
    return s;
  }

  std::span<const std::uint8_t> get_blob() {
    const std::uint64_t n = get_varint();
    if (n > remaining())
      throw Error(ErrCode::kTruncated, "blob length exceeds stream");
    return get_bytes(static_cast<std::size_t>(n));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_array() {
    const std::uint64_t n = get_varint();
    // Validate against the remaining bytes BEFORE allocating, so a hostile
    // count cannot trigger a multi-gigabyte allocation.
    if (n > remaining() / sizeof(T))
      throw Error(ErrCode::kTruncated, "truncated array");
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n == 0) return v;  // empty vector/span data() may be nullptr
    std::memcpy(v.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return v;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool eof() const { return pos_ == data_.size(); }

  /// View of the unread remainder WITHOUT consuming it — what checksum
  /// verification hashes after the header fields have been read.
  std::span<const std::uint8_t> rest() const { return data_.subspan(pos_); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace aesz
