#pragma once

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace aesz {

/// Minimal --flag/--key value parser for the example tools. Positional
/// arguments are collected in order; "--key value" and "--key=value" both
/// work; names in `known_flags` are bare boolean switches ("--verify",
/// queried with has()) that consume no value; unknown flags throw so typos
/// fail loudly.
class CliArgs {
 public:
  CliArgs(int argc, char** argv, std::vector<std::string> known_keys,
          std::vector<std::string> known_flags = {})
      : known_(std::move(known_keys)), flags_(std::move(known_flags)) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      std::string key = arg.substr(2);
      std::string value;
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
      } else if (std::find(flags_.begin(), flags_.end(), key) !=
                 flags_.end()) {
        // std::string temporary, not a char* assign: GCC 12's -Wrestrict
        // false-fires on the inlined assign(const char*) path here.
        values_[key] = std::string("1");
        continue;
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw Error("missing value for --" + key);
      }
      if (std::find(flags_.begin(), flags_.end(), key) != flags_.end()) {
        // Callers test flags by presence (has()), so "--flag=0" /
        // "--flag=false" must drop the key entirely to mean off.
        if (value != "0" && value != "false")
          values_[key] = std::string("1");
        continue;
      }
      AESZ_CHECK_MSG(std::find(known_.begin(), known_.end(), key) !=
                         known_.end(),
                     "unknown option --" + key);
      values_[key] = value;
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  long get_long(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }

 private:
  std::vector<std::string> known_;
  std::vector<std::string> flags_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> values_;
};

}  // namespace aesz
