#pragma once

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace aesz {

/// Minimal --flag/--key value parser for the example tools. Positional
/// arguments are collected in order; "--key value" and "--key=value" both
/// work; names in `known_flags` are bare boolean switches ("--verify",
/// queried with has()) that consume no value; names in
/// `optional_value_keys` take a value when one follows ("--once 3") but
/// default to "1" when the next token is another option or argv ends
/// (bare "--once" — kept for callers that predate the key growing a
/// value); unknown flags throw so typos fail loudly.
class CliArgs {
 public:
  CliArgs(int argc, char** argv, std::vector<std::string> known_keys,
          std::vector<std::string> known_flags = {},
          std::vector<std::string> optional_value_keys = {})
      : known_(std::move(known_keys)),
        flags_(std::move(known_flags)),
        optional_(std::move(optional_value_keys)) {
    const auto in = [](const std::vector<std::string>& v,
                       const std::string& k) {
      return std::find(v.begin(), v.end(), k) != v.end();
    };
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      std::string key = arg.substr(2);
      std::string value;
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
      } else if (in(flags_, key)) {
        // std::string temporary, not a char* assign: GCC 12's -Wrestrict
        // false-fires on the inlined assign(const char*) path here.
        values_[key] = std::string("1");
        continue;
      } else if (in(optional_, key) &&
                 (i + 1 >= argc ||
                  std::string(argv[i + 1]).rfind("--", 0) == 0)) {
        value = std::string("1");
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw Error("missing value for --" + key);
      }
      if (in(flags_, key)) {
        // Callers test flags by presence (has()), so "--flag=0" /
        // "--flag=false" must drop the key entirely to mean off.
        if (value != "0" && value != "false")
          values_[key] = std::string("1");
        continue;
      }
      AESZ_CHECK_MSG(in(known_, key) || in(optional_, key),
                     "unknown option --" + key);
      values_[key] = value;
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  long get_long(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }

 private:
  std::vector<std::string> known_;
  std::vector<std::string> flags_;
  std::vector<std::string> optional_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> values_;
};

}  // namespace aesz
