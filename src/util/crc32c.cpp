#include "util/crc32c.hpp"

#include <array>
#include <cstring>

#include "util/cpu.hpp"

#ifdef AESZ_X86_DISPATCH
#include <immintrin.h>
#endif

namespace aesz::util {

namespace {

/// Reflected CRC32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

/// Slice-by-8 lookup: table[0] is the classic byte-at-a-time table,
/// table[k] advances a byte that sits k positions deeper in the message.
/// Built once at first use — 8 KiB, cheap enough that baking a constexpr
/// blob into the binary buys nothing.
struct Tables {
  std::uint32_t t[8][256];
  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (int k = 1; k < 8; ++k)
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint32_t crc32c_sw(std::span<const std::uint8_t> data,
                        std::uint32_t crc) {
  const Tables& tb = tables();
  std::uint32_t c = ~crc;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  // Head: bytes until nothing or an 8-byte block remains.
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    w ^= c;  // little-endian: the CRC folds into the low 4 bytes
    c = tb.t[7][w & 0xFF] ^ tb.t[6][(w >> 8) & 0xFF] ^
        tb.t[5][(w >> 16) & 0xFF] ^ tb.t[4][(w >> 24) & 0xFF] ^
        tb.t[3][(w >> 32) & 0xFF] ^ tb.t[2][(w >> 40) & 0xFF] ^
        tb.t[1][(w >> 48) & 0xFF] ^ tb.t[0][(w >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n--) c = (c >> 8) ^ tb.t[0][(c ^ *p++) & 0xFF];
  return ~c;
}

#ifdef AESZ_X86_DISPATCH

__attribute__((target("sse4.2"))) static std::uint32_t crc32c_hw_impl(
    const std::uint8_t* p, std::size_t n, std::uint32_t crc) {
  std::uint64_t c = ~crc;
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    c = _mm_crc32_u64(c, w);
    p += 8;
    n -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (n--) c32 = _mm_crc32_u8(c32, *p++);
  return ~c32;
}

std::uint32_t crc32c_hw(std::span<const std::uint8_t> data,
                        std::uint32_t crc) {
  if (!cpu_has_sse42()) return crc32c_sw(data, crc);
  return crc32c_hw_impl(data.data(), data.size(), crc);
}

bool crc32c_hw_available() { return cpu_has_sse42(); }

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t crc) {
  if (cpu_has_sse42()) return crc32c_hw_impl(data.data(), data.size(), crc);
  return crc32c_sw(data, crc);
}

#else

std::uint32_t crc32c_hw(std::span<const std::uint8_t> data,
                        std::uint32_t crc) {
  return crc32c_sw(data, crc);
}

bool crc32c_hw_available() { return false; }

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t crc) {
  return crc32c_sw(data, crc);
}

#endif  // AESZ_X86_DISPATCH

}  // namespace aesz::util
