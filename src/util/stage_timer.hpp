#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace aesz::prof {

/// Pipeline-stage attribution for the speed benchmarks (bench_table8_speed's
/// per-stage breakdown). Process-wide monotonic accumulators, fed by RAII
/// scopes placed at coarse seams (whole prediction passes, whole entropy
/// blobs, whole layer forwards) so the clock cost is negligible next to the
/// work being timed.
///
/// Stage meanings across the codec zoo:
///   kPredict   prediction passes (SZ-family fuses quantization into the
///              same raster loop; that fused time lands here)
///   kQuantize  standalone quantization (AE-SZ residual/latent quantization)
///   kEntropy   Huffman + LZ, encode and decode
///   kInference neural-network layer forwards (AE encode/decode, baselines)
///
/// Nested scopes of the same stage count once (only the outermost
/// accumulates), so e.g. huffman::encode inside qcodec::encode_codes is not
/// double-billed.
enum class Stage : int { kPredict = 0, kQuantize, kEntropy, kInference };
inline constexpr int kStageCount = 4;

inline std::array<std::atomic<std::uint64_t>, kStageCount>& stage_ns() {
  static std::array<std::atomic<std::uint64_t>, kStageCount> totals{};
  return totals;
}

inline int& stage_depth(Stage s) {
  thread_local std::array<int, kStageCount> depth{};
  return depth[static_cast<int>(s)];
}

/// Optional per-thread attribution hook: when installed, every outermost
/// StageScope also reports its nanoseconds here (in addition to the
/// process-wide accumulators). The observability layer points this at the
/// current request's trace (obs::TraceScope) so concurrent requests get
/// individually attributed stage time. Plain function pointer + context,
/// not std::function: installing/clearing must stay allocation-free on
/// the request hot path.
struct StageSink {
  void (*fn)(void* ctx, Stage s, std::uint64_t ns) = nullptr;
  void* ctx = nullptr;
};

inline StageSink& stage_sink() {
  thread_local StageSink sink;
  return sink;
}

/// Cumulative per-stage seconds since process start (monotonic; benches
/// subtract two snapshots around a measured region).
struct StageTimes {
  double predict = 0, quantize = 0, entropy = 0, inference = 0;
};

inline StageTimes snapshot() {
  auto& t = stage_ns();
  const auto sec = [&](Stage s) {
    return static_cast<double>(
               t[static_cast<int>(s)].load(std::memory_order_relaxed)) *
           1e-9;
  };
  return {sec(Stage::kPredict), sec(Stage::kQuantize), sec(Stage::kEntropy),
          sec(Stage::kInference)};
}

class StageScope {
 public:
  explicit StageScope(Stage s) : s_(s), outer_(stage_depth(s)++ == 0) {
    if (outer_) t0_ = std::chrono::steady_clock::now();
  }
  ~StageScope() { stop(); }

  /// End attribution early (before other stages start in the same block).
  void stop() {
    if (stopped_) return;
    stopped_ = true;
    --stage_depth(s_);
    if (outer_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0_)
                          .count();
      stage_ns()[static_cast<int>(s_)].fetch_add(
          static_cast<std::uint64_t>(ns), std::memory_order_relaxed);
      if (const StageSink& sink = stage_sink(); sink.fn)
        sink.fn(sink.ctx, s_, static_cast<std::uint64_t>(ns));
    }
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  Stage s_;
  bool outer_;
  bool stopped_ = false;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace aesz::prof
