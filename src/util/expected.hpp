#pragma once

#include <optional>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace aesz {

/// Failure descriptor of the status-based API: a typed code plus a
/// human-readable message. `Status{}` is success.
struct Status {
  ErrCode code = ErrCode::kOk;
  std::string message;

  bool ok() const { return code == ErrCode::kOk; }

  static Status error(ErrCode c, std::string msg) {
    return Status{c, std::move(msg)};
  }

  std::string str() const {
    return ok() ? "ok"
                : std::string(errcode_name(code)) +
                      (message.empty() ? "" : (": " + message));
  }
};

/// Minimal `std::expected`-style carrier: either a value of T or a Status.
/// This is the return type of `Compressor::decompress` — malformed streams
/// become typed statuses instead of exceptions. Works with move-only T.
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Expected(Status status) : status_(std::move(status)) {  // NOLINT
    AESZ_CHECK_MSG(!status_.ok(), "Expected built from an ok Status");
  }
  Expected(ErrCode code, std::string msg)
      : status_(Status::error(code, std::move(msg))) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Status of a failed result; `Status{}` (ok) when a value is present.
  const Status& status() const { return status_; }

  /// Access the value; throws aesz::Error when holding a status. This is
  /// the bridge for callers that prefer exceptions (tests, examples).
  T& value() & {
    if (!ok()) throw Error(status_.code, status_.str());
    return *value_;
  }
  const T& value() const& {
    if (!ok()) throw Error(status_.code, status_.str());
    return *value_;
  }
  T&& value() && {
    if (!ok()) throw Error(status_.code, status_.str());
    return std::move(*value_);
  }

  template <typename U>
  T value_or(U&& fallback) && {
    return ok() ? std::move(*value_) : T(std::forward<U>(fallback));
  }

  /// Unchecked access (caller verified ok()).
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace aesz
