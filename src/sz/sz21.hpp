#pragma once

#include "predictors/compressor.hpp"

namespace aesz {

/// SZ2.1-like error-bounded compressor (Liang et al., IEEE Big Data 2018):
/// blockwise selection between a first-order Lorenzo predictor and a linear
/// regression predictor (hyperplane fit per block, coefficients quantized
/// and stored), followed by linear-scale quantization of residuals and
/// Huffman + LZ entropy coding.
///
/// This is the paper's main classical baseline and also the codec AE-SZ's
/// Table IV compares the custom latent compressor against.
class SZ21 final : public Compressor {
 public:
  static constexpr std::uint32_t kStreamMagic = 0x535A3231;  // "SZ21"

  struct Options {
    std::size_t block_2d = 12;  // SZ2.1 defaults: 12x12 (2-D), 6x6x6 (3-D)
    std::size_t block_3d = 6;
    std::size_t block_1d = 128;
    bool enable_regression = true;  // off => pure Lorenzo (ablation knob)
  };

  SZ21() = default;
  explicit SZ21(Options opt) : opt_(opt) {}

  std::string name() const override { return "SZ2.1"; }
  using Compressor::compress;
  std::vector<std::uint8_t> compress(const Field& f,
                                     const ErrorBound& eb) override;

 protected:
  Field decompress_impl(std::span<const std::uint8_t> stream) override;

 private:
  Options opt_;
};

}  // namespace aesz
