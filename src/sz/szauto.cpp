#include "sz/szauto.hpp"

#include <cmath>

#include "lossless/lz.hpp"
#include "predictors/lorenzo.hpp"
#include "predictors/quantizer.hpp"
#include "sz/common.hpp"
#include "util/stage_timer.hpp"

namespace aesz {
namespace {

constexpr std::uint32_t kMagic = SZAuto::kStreamMagic;

/// Sampled L1 prediction error of the first- vs second-order stencil on the
/// original data — the "automatic parameter selection" step. Sampling every
/// `stride`-th point keeps this O(n / stride).
bool second_order_wins(const Field& f) {
  const Dims& d = f.dims();
  const float* v = f.data();
  double e1 = 0.0, e2 = 0.0;
  const std::size_t stride = std::max<std::size_t>(d.total() / 65536, 1);
  if (d.rank == 1) {
    for (std::size_t i = 2; i < d[0]; i += stride) {
      e1 += std::abs(v[i] - lorenzo::predict1(v, i));
      e2 += std::abs(v[i] - lorenzo::predict1_2nd(v, i));
    }
  } else if (d.rank == 2) {
    for (std::size_t t = 0; t < d.total(); t += stride) {
      const std::size_t i = t / d[1], j = t % d[1];
      if (i < 2 || j < 2) continue;
      e1 += std::abs(v[t] - lorenzo::predict2(v, d, i, j));
      e2 += std::abs(v[t] - lorenzo::predict2_2nd(v, d, i, j));
    }
  } else {
    for (std::size_t t = 0; t < d.total(); t += stride) {
      const std::size_t i = t / (d[1] * d[2]);
      const std::size_t j = (t / d[2]) % d[1];
      const std::size_t k = t % d[2];
      if (i < 2 || j < 2 || k < 2) continue;
      e1 += std::abs(v[t] - lorenzo::predict3(v, d, i, j, k));
      e2 += std::abs(v[t] - lorenzo::predict3_2nd(v, d, i, j, k));
    }
  }
  return e2 < e1;
}

}  // namespace

std::vector<std::uint8_t> SZAuto::compress(const Field& f,
                                           const ErrorBound& eb) {
  const Dims& d = f.dims();
  const double abs_eb = sz::resolve_abs_eb(f, eb, "SZauto");

  const bool use2nd = second_order_wins(f);

  ByteWriter w;
  sz::write_header(w, kMagic, d, eb, abs_eb);
  w.put(static_cast<std::uint8_t>(use2nd ? 2 : 1));

  LinearQuantizer quant(abs_eb);
  const float* src = f.data();
  std::vector<float> recon(d.total());
  std::vector<std::uint16_t> codes(d.total());
  std::vector<float> unpred;
  prof::StageScope predict_stage(prof::Stage::kPredict);

  auto encode_point = [&](std::size_t idx, float pred) {
    float r;
    const std::uint16_t code = quant.quantize(src[idx], pred, r);
    if (code == LinearQuantizer::kUnpredictable) unpred.push_back(src[idx]);
    recon[idx] = r;
    codes[idx] = code;
  };

  if (d.rank == 1) {
    for (std::size_t i = 0; i < d[0]; ++i)
      encode_point(i, use2nd ? lorenzo::predict1_2nd(recon.data(), i)
                             : lorenzo::predict1(recon.data(), i));
  } else if (d.rank == 2) {
    for (std::size_t i = 0; i < d[0]; ++i)
      for (std::size_t j = 0; j < d[1]; ++j)
        encode_point(lin2(d, i, j),
                     use2nd ? lorenzo::predict2_2nd(recon.data(), d, i, j)
                            : lorenzo::predict2(recon.data(), d, i, j));
  } else {
    for (std::size_t i = 0; i < d[0]; ++i)
      for (std::size_t j = 0; j < d[1]; ++j)
        for (std::size_t k = 0; k < d[2]; ++k)
          encode_point(lin3(d, i, j, k),
                       use2nd
                           ? lorenzo::predict3_2nd(recon.data(), d, i, j, k)
                           : lorenzo::predict3(recon.data(), d, i, j, k));
  }

  predict_stage.stop();
  w.put_blob(qcodec::encode_codes(codes));
  ByteWriter uw;
  uw.put_array<float>(unpred);
  w.put_blob(lz::compress(uw.bytes()));
  return sz::seal_stream(w.take());
}

Field SZAuto::decompress_impl(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const sz::StreamHeader h = sz::read_header_or_throw(r, kMagic);
  const Dims d = h.dims;
  const double abs_eb = h.abs_eb;
  const int order = r.get<std::uint8_t>();
  AESZ_CHECK_STREAM(order == 1 || order == 2, "bad predictor order");
  const bool use2nd = order == 2;

  auto codes = qcodec::decode_codes(r.get_blob());
  AESZ_CHECK_STREAM(codes.size() == d.total(), "code count mismatch");
  const auto unpred_bytes = lz::decompress(r.get_blob());
  ByteReader ur(unpred_bytes);
  const auto unpred = ur.get_array<float>();

  prof::StageScope predict_stage(prof::Stage::kPredict);
  LinearQuantizer quant(abs_eb);
  Field out(d);
  float* recon = out.data();
  std::size_t ui = 0;

  auto decode_point = [&](std::size_t idx, float pred) {
    const std::uint16_t code = codes[idx];
    if (code == LinearQuantizer::kUnpredictable) {
      AESZ_CHECK_STREAM(ui < unpred.size(), "unpredictable underflow");
      recon[idx] = unpred[ui++];
    } else {
      recon[idx] = quant.recover(pred, code);
    }
  };

  if (d.rank == 1) {
    for (std::size_t i = 0; i < d[0]; ++i)
      decode_point(i, use2nd ? lorenzo::predict1_2nd(recon, i)
                             : lorenzo::predict1(recon, i));
  } else if (d.rank == 2) {
    for (std::size_t i = 0; i < d[0]; ++i)
      for (std::size_t j = 0; j < d[1]; ++j)
        decode_point(lin2(d, i, j),
                     use2nd ? lorenzo::predict2_2nd(recon, d, i, j)
                            : lorenzo::predict2(recon, d, i, j));
  } else {
    for (std::size_t i = 0; i < d[0]; ++i)
      for (std::size_t j = 0; j < d[1]; ++j)
        for (std::size_t k = 0; k < d[2]; ++k)
          decode_point(lin3(d, i, j, k),
                       use2nd ? lorenzo::predict3_2nd(recon, d, i, j, k)
                              : lorenzo::predict3(recon, d, i, j, k));
  }
  return out;
}

}  // namespace aesz
