#pragma once

#include "predictors/compressor.hpp"

namespace aesz {

/// SZinterp-like compressor (Zhao et al., ICDE 2021; the SZ3 interpolation
/// algorithm): level-by-level grid refinement where each new point is
/// predicted by a cubic spline (falling back to linear/copy at boundaries)
/// through previously reconstructed points along one axis, then
/// linear-scale quantized under the error bound. Anchor points on the
/// coarsest grid are stored verbatim.
///
/// In the paper this is the strongest classical baseline at low bit rates;
/// AE-SZ is "close to SZinterp" there (Fig. 8).
class SZInterp final : public Compressor {
 public:
  static constexpr std::uint32_t kStreamMagic = 0x535A4950;  // "SZIP"

  struct Options {
    std::size_t max_stride = 32;  // coarsest refinement stride (anchor grid)
    bool cubic = true;            // false => linear interpolation (ablation)
  };

  SZInterp() = default;
  explicit SZInterp(Options opt) : opt_(opt) {}

  std::string name() const override { return "SZinterp"; }
  using Compressor::compress;
  std::vector<std::uint8_t> compress(const Field& f,
                                     const ErrorBound& eb) override;

 protected:
  Field decompress_impl(std::span<const std::uint8_t> stream) override;

 private:
  Options opt_;
};

}  // namespace aesz
