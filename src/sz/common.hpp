#pragma once

#include <cstdint>

#include "util/bytestream.hpp"
#include "util/dims.hpp"

namespace aesz::sz {

/// Shared stream-header layout of the SZ-family codecs: magic + rank + dims
/// + the absolute error bound the stream was encoded with.
inline void write_header(ByteWriter& w, std::uint32_t magic, const Dims& d,
                         double abs_eb) {
  w.put(magic);
  w.put(static_cast<std::uint8_t>(d.rank));
  for (int i = 0; i < d.rank; ++i) w.put_varint(d[i]);
  w.put(abs_eb);
}

inline Dims read_header(ByteReader& r, std::uint32_t expected_magic,
                        double& abs_eb) {
  const auto magic = r.get<std::uint32_t>();
  AESZ_CHECK_MSG(magic == expected_magic, "stream magic mismatch");
  const int rank = r.get<std::uint8_t>();
  AESZ_CHECK_MSG(rank >= 1 && rank <= 3, "bad rank");
  Dims d;
  d.rank = rank;
  for (int i = 0; i < rank; ++i) d.d[static_cast<std::size_t>(i)] = r.get_varint();
  abs_eb = r.get<double>();
  return d;
}

/// Zig-zag signed-to-unsigned mapping for varint coefficient streams.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace aesz::sz
