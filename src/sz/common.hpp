#pragma once

#include <cmath>
#include <cstdint>

#include "data/field.hpp"
#include "predictors/error_bound.hpp"
#include "util/bytestream.hpp"
#include "util/dims.hpp"
#include "util/expected.hpp"

namespace aesz::sz {

/// Stream-format version of the shared header (v2 added the ErrorBound
/// mode byte + requested value next to the resolved absolute bound).
constexpr std::uint8_t kFormatVersion = 2;

/// Upper bound on total elements a header may declare — rejects hostile
/// dims before any allocation. 2^33 covers a 2048^3 SDRBench-scale volume
/// while keeping the worst hostile-header allocation (~32 GiB) bounded;
/// services handling untrusted streams should additionally gate on their
/// own memory budget before decompressing.
constexpr std::uint64_t kMaxTotalElems = std::uint64_t{1} << 33;

/// Parsed shared header of every codec's stream: magic + version + dims +
/// the bound the user requested (mode + value) + the absolute bound the
/// encoder resolved it to (what the decoder's quantizers need).
struct StreamHeader {
  Dims dims;
  ErrorBound eb;
  double abs_eb = 0.0;
};

/// Shared rank + dims parse/validation used by every header format in the
/// repo (codec stream headers, the pipeline container, service frames):
/// rank ∈ [1,3], nonzero dims, product capped at kMaxTotalElems with
/// overflow-safe arithmetic — all checked before any allocation.
inline Status read_dims_checked(ByteReader& r, Dims& out) {
  std::uint8_t rank = 0;
  if (!r.try_get(rank))
    return Status::error(ErrCode::kTruncated, "truncated rank");
  if (rank < 1 || rank > 3)
    return Status::error(ErrCode::kBadHeader, "bad rank");
  out.rank = rank;
  std::uint64_t total = 1;
  for (int i = 0; i < rank; ++i) {
    std::uint64_t n = 0;
    if (!r.try_get_varint(n))
      return Status::error(ErrCode::kTruncated, "truncated dims");
    if (n == 0 || n > kMaxTotalElems || total > kMaxTotalElems / n)
      return Status::error(ErrCode::kBadHeader, "dims overflow");
    total *= n;
    out.d[static_cast<std::size_t>(i)] = static_cast<std::size_t>(n);
  }
  return {};
}

/// Shared stream-header layout of all codecs in the repo:
///   magic u32 | version u8 | rank u8 | dims varint* | eb-mode u8 |
///   eb-value f64 | abs-bound f64
inline void write_header(ByteWriter& w, std::uint32_t magic, const Dims& d,
                         const ErrorBound& eb, double abs_eb) {
  w.put(magic);
  w.put(kFormatVersion);
  w.put(static_cast<std::uint8_t>(d.rank));
  for (int i = 0; i < d.rank; ++i) w.put_varint(d[i]);
  w.put(static_cast<std::uint8_t>(eb.mode()));
  w.put(eb.value());
  w.put(abs_eb);
}

/// Fallible header parse: every malformed prefix (truncation, foreign
/// magic, bad version/rank/mode, zero or overflowing dims, non-finite
/// bound) maps to a typed status without reading out of bounds.
inline Expected<StreamHeader> read_header(ByteReader& r,
                                          std::uint32_t expected_magic) {
  std::uint32_t magic = 0;
  if (!r.try_get(magic))
    return Status::error(ErrCode::kTruncated, "stream too short for magic");
  if (magic != expected_magic)
    return Status::error(ErrCode::kBadMagic, "stream magic mismatch");
  std::uint8_t version = 0;
  if (!r.try_get(version))
    return Status::error(ErrCode::kTruncated, "truncated header");
  if (version != kFormatVersion)
    return Status::error(ErrCode::kBadHeader, "unsupported stream version");
  StreamHeader h;
  if (Status s = read_dims_checked(r, h.dims); !s.ok()) return s;
  std::uint8_t mode = 0;
  double eb_value = 0.0;
  if (!r.try_get(mode) || !r.try_get(eb_value) || !r.try_get(h.abs_eb))
    return Status::error(ErrCode::kTruncated, "truncated bound fields");
  if (mode > static_cast<std::uint8_t>(EbMode::kPSNR))
    return Status::error(ErrCode::kBadHeader, "bad error-bound mode");
  if (!std::isfinite(eb_value) || !std::isfinite(h.abs_eb) || h.abs_eb < 0)
    return Status::error(ErrCode::kBadHeader, "bad error-bound value");
  h.eb = ErrorBound(static_cast<EbMode>(mode), eb_value);
  return h;
}

/// Throwing flavor for use inside decompress_impl bodies (the public
/// Compressor::decompress converts the throw back into the same status).
inline StreamHeader read_header_or_throw(ByteReader& r,
                                         std::uint32_t expected_magic) {
  auto h = read_header(r, expected_magic);
  if (!h.ok()) throw Error(h.status().code, h.status().message);
  return *std::move(h);
}

/// Shared compress-side bound resolution: validates the request and turns
/// it into the absolute tolerance the quantizers enforce (previously
/// duplicated across every codec's compress()).
inline double resolve_abs_eb(const Field& f, const ErrorBound& eb,
                             const char* codec_name) {
  if (!eb.usable())
    throw Error(ErrCode::kInvalidArgument,
                std::string(codec_name) +
                    " requires a positive, finite error bound (got " +
                    eb.str() + ")");
  return eb.absolute(f.value_range());
}

/// Zig-zag signed-to-unsigned mapping for varint coefficient streams.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace aesz::sz
