#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

#include "data/field.hpp"
#include "predictors/error_bound.hpp"
#include "util/bytestream.hpp"
#include "util/crc32c.hpp"
#include "util/dims.hpp"
#include "util/expected.hpp"

namespace aesz::sz {

/// Stream-format version of the shared header (v2 added the ErrorBound
/// mode byte + requested value next to the resolved absolute bound; v3
/// added a whole-payload CRC32C at a fixed offset). Writers emit v3;
/// readers accept v2 (no checksum — decode-and-hope, as shipped) and v3
/// (checksum verified before any payload byte is trusted).
constexpr std::uint8_t kFormatVersion = 3;
constexpr std::uint8_t kLegacyFormatVersion = 2;

/// Byte offset of the v3 CRC32C field: magic bytes 0–3, version byte 4,
/// crc32c u32 bytes 5–8 covering everything from byte 9 to the end. The
/// fixed offset is what lets seal_stream() patch the value after the
/// codec has finished writing.
constexpr std::size_t kCrcOffset = 5;

/// Upper bound on total elements a header may declare — rejects hostile
/// dims before any allocation. 2^33 covers a 2048^3 SDRBench-scale volume
/// while keeping the worst hostile-header allocation (~32 GiB) bounded;
/// services handling untrusted streams should additionally gate on their
/// own memory budget before decompressing.
constexpr std::uint64_t kMaxTotalElems = std::uint64_t{1} << 33;

/// Parsed shared header of every codec's stream: magic + version + dims +
/// the bound the user requested (mode + value) + the absolute bound the
/// encoder resolved it to (what the decoder's quantizers need).
struct StreamHeader {
  Dims dims;
  ErrorBound eb;
  double abs_eb = 0.0;
};

/// Shared rank + dims parse/validation used by every header format in the
/// repo (codec stream headers, the pipeline container, service frames):
/// rank ∈ [1,3], nonzero dims, product capped at kMaxTotalElems with
/// overflow-safe arithmetic — all checked before any allocation.
inline Status read_dims_checked(ByteReader& r, Dims& out) {
  std::uint8_t rank = 0;
  if (!r.try_get(rank))
    return Status::error(ErrCode::kTruncated, "truncated rank");
  if (rank < 1 || rank > 3)
    return Status::error(ErrCode::kBadHeader, "bad rank");
  out.rank = rank;
  std::uint64_t total = 1;
  for (int i = 0; i < rank; ++i) {
    std::uint64_t n = 0;
    if (!r.try_get_varint(n))
      return Status::error(ErrCode::kTruncated, "truncated dims");
    if (n == 0 || n > kMaxTotalElems || total > kMaxTotalElems / n)
      return Status::error(ErrCode::kBadHeader, "dims overflow");
    total *= n;
    out.d[static_cast<std::size_t>(i)] = static_cast<std::size_t>(n);
  }
  return {};
}

/// Shared stream-header layout of all codecs in the repo (v3):
///   magic u32 | version u8 | crc32c u32 (over bytes 9..end) | rank u8 |
///   dims varint* | eb-mode u8 | eb-value f64 | abs-bound f64
/// The crc field is written as a zero placeholder here; the codec calls
/// seal_stream() on the finished byte vector to fill it in.
inline void write_header(ByteWriter& w, std::uint32_t magic, const Dims& d,
                         const ErrorBound& eb, double abs_eb) {
  w.put(magic);
  w.put(kFormatVersion);
  w.put(std::uint32_t{0});  // crc placeholder, patched by seal_stream()
  w.put(static_cast<std::uint8_t>(d.rank));
  for (int i = 0; i < d.rank; ++i) w.put_varint(d[i]);
  w.put(static_cast<std::uint8_t>(eb.mode()));
  w.put(eb.value());
  w.put(abs_eb);
}

/// Fill in the v3 whole-payload checksum: CRC32C over every byte after
/// the crc field itself, patched into bytes 5–8. Every codec calls this
/// exactly once, on its finished stream, right before returning it.
inline std::vector<std::uint8_t> seal_stream(std::vector<std::uint8_t> s) {
  AESZ_CHECK_MSG(s.size() >= kCrcOffset + sizeof(std::uint32_t),
                 "stream too short to seal");
  const std::uint32_t crc = util::crc32c(
      std::span<const std::uint8_t>(s).subspan(kCrcOffset + 4));
  std::memcpy(s.data() + kCrcOffset, &crc, sizeof(crc));
  return s;
}

/// Fallible header parse: every malformed prefix (truncation, foreign
/// magic, bad version/rank/mode, zero or overflowing dims, non-finite
/// bound) maps to a typed status without reading out of bounds.
inline Expected<StreamHeader> read_header(ByteReader& r,
                                          std::uint32_t expected_magic) {
  std::uint32_t magic = 0;
  if (!r.try_get(magic))
    return Status::error(ErrCode::kTruncated, "stream too short for magic");
  if (magic != expected_magic)
    return Status::error(ErrCode::kBadMagic, "stream magic mismatch");
  std::uint8_t version = 0;
  if (!r.try_get(version))
    return Status::error(ErrCode::kTruncated, "truncated header");
  if (version != kFormatVersion && version != kLegacyFormatVersion)
    return Status::error(ErrCode::kBadHeader, "unsupported stream version");
  if (version == kFormatVersion) {
    // v3: verify the whole-payload checksum before trusting a single
    // field past it. This one check covers every codec — they all parse
    // through here.
    std::uint32_t stored = 0;
    if (!r.try_get(stored))
      return Status::error(ErrCode::kTruncated, "truncated checksum");
    if (util::crc32c(r.rest()) != stored)
      return Status::error(ErrCode::kChecksumMismatch,
                           "stream checksum mismatch");
  }
  StreamHeader h;
  if (Status s = read_dims_checked(r, h.dims); !s.ok()) return s;
  std::uint8_t mode = 0;
  double eb_value = 0.0;
  if (!r.try_get(mode) || !r.try_get(eb_value) || !r.try_get(h.abs_eb))
    return Status::error(ErrCode::kTruncated, "truncated bound fields");
  if (mode > static_cast<std::uint8_t>(EbMode::kPSNR))
    return Status::error(ErrCode::kBadHeader, "bad error-bound mode");
  if (!std::isfinite(eb_value) || !std::isfinite(h.abs_eb) || h.abs_eb < 0)
    return Status::error(ErrCode::kBadHeader, "bad error-bound value");
  h.eb = ErrorBound(static_cast<EbMode>(mode), eb_value);
  return h;
}

/// Throwing flavor for use inside decompress_impl bodies (the public
/// Compressor::decompress converts the throw back into the same status).
inline StreamHeader read_header_or_throw(ByteReader& r,
                                         std::uint32_t expected_magic) {
  auto h = read_header(r, expected_magic);
  if (!h.ok()) throw Error(h.status().code, h.status().message);
  return *std::move(h);
}

/// Shared compress-side bound resolution: validates the request and turns
/// it into the absolute tolerance the quantizers enforce (previously
/// duplicated across every codec's compress()).
inline double resolve_abs_eb(const Field& f, const ErrorBound& eb,
                             const char* codec_name) {
  if (!eb.usable())
    throw Error(ErrCode::kInvalidArgument,
                std::string(codec_name) +
                    " requires a positive, finite error bound (got " +
                    eb.str() + ")");
  return eb.absolute(f.value_range());
}

/// Zig-zag signed-to-unsigned mapping for varint coefficient streams.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace aesz::sz
