#include "sz/szinterp.hpp"

#include <cmath>

#include "lossless/lz.hpp"
#include "predictors/quantizer.hpp"
#include "sz/common.hpp"
#include "util/stage_timer.hpp"

namespace aesz {
namespace {

constexpr std::uint32_t kMagic = SZInterp::kStreamMagic;

/// Spline prediction of the point at 1-D coordinate `x` (an odd multiple of
/// `s`) from reconstructed values at spacing `2s` along one axis. `base` is
/// the linear index of the point, `L` the linear stride of the axis, `n`
/// the axis extent.
inline float axis_predict(const float* buf, std::size_t base, std::size_t L,
                          std::size_t x, std::size_t s, std::size_t n,
                          bool cubic) {
  const bool has_hi = x + s < n;
  if (!has_hi) return buf[base - L * s];  // copy of the last known point
  const float lo = buf[base - L * s];
  const float hi = buf[base + L * s];
  if (cubic && x >= 3 * s && x + 3 * s < n) {
    const float lo2 = buf[base - L * 3 * s];
    const float hi2 = buf[base + L * 3 * s];
    return (-lo2 + 9.0f * lo + 9.0f * hi - hi2) * (1.0f / 16.0f);
  }
  return 0.5f * (lo + hi);
}

/// Shared refinement traversal. Calls anchor(idx) for every coarsest-grid
/// point, then point(idx, pred) for every refined point, in an order that
/// is identical for compression and decompression (prediction reads only
/// already-visited entries of `buf`).
template <typename AnchorFn, typename PointFn>
void walk(const Dims& d, std::size_t S, bool cubic, const float* buf,
          AnchorFn&& anchor, PointFn&& point) {
  const int rank = d.rank;
  const std::size_t n0 = d[0];
  const std::size_t n1 = rank >= 2 ? d[1] : 1;
  const std::size_t n2 = rank >= 3 ? d[2] : 1;
  // Linear strides per axis (row-major, last axis contiguous).
  const std::size_t L0 = rank == 1 ? 1 : (rank == 2 ? n1 : n1 * n2);
  const std::size_t L1 = rank == 3 ? n2 : 1;
  const std::size_t L2 = 1;

  for (std::size_t i = 0; i < n0; i += S)
    for (std::size_t j = 0; j < n1; j += S)
      for (std::size_t k = 0; k < n2; k += S)
        anchor(i * L0 + j * L1 + k * L2);

  for (std::size_t s = S; s >= 1; s /= 2) {
    // Axis 0: coord0 at odd multiples of s; others on the 2s grid.
    for (std::size_t i = s; i < n0; i += 2 * s) {
      for (std::size_t j = 0; j < n1; j += 2 * s) {
        for (std::size_t k = 0; k < n2; k += 2 * s) {
          const std::size_t idx = i * L0 + j * L1 + k * L2;
          point(idx, axis_predict(buf, idx, L0, i, s, n0, cubic));
        }
      }
    }
    if (rank >= 2) {
      // Axis 1: coord0 already refined to the s grid.
      for (std::size_t i = 0; i < n0; i += s) {
        for (std::size_t j = s; j < n1; j += 2 * s) {
          for (std::size_t k = 0; k < n2; k += 2 * s) {
            const std::size_t idx = i * L0 + j * L1 + k * L2;
            point(idx, axis_predict(buf, idx, L1, j, s, n1, cubic));
          }
        }
      }
    }
    if (rank >= 3) {
      for (std::size_t i = 0; i < n0; i += s) {
        for (std::size_t j = 0; j < n1; j += s) {
          for (std::size_t k = s; k < n2; k += 2 * s) {
            const std::size_t idx = i * L0 + j * L1 + k * L2;
            point(idx, axis_predict(buf, idx, L2, k, s, n2, cubic));
          }
        }
      }
    }
    if (s == 1) break;
  }
}

}  // namespace

std::vector<std::uint8_t> SZInterp::compress(const Field& f,
                                             const ErrorBound& eb) {
  const Dims& d = f.dims();
  const double abs_eb = sz::resolve_abs_eb(f, eb, "SZinterp");
  // Keep the stride a power of two no larger than the largest dimension.
  std::size_t S = 1;
  while (S * 2 <= opt_.max_stride && S * 2 < d[0]) S *= 2;

  ByteWriter w;
  sz::write_header(w, kMagic, d, eb, abs_eb);
  w.put_varint(S);
  w.put(static_cast<std::uint8_t>(opt_.cubic ? 1 : 0));

  LinearQuantizer quant(abs_eb);
  const float* src = f.data();
  std::vector<float> recon(d.total());
  std::vector<std::uint16_t> codes;
  codes.reserve(d.total());
  std::vector<float> anchors;
  std::vector<float> unpred;

  prof::StageScope predict_stage(prof::Stage::kPredict);
  walk(
      d, S, opt_.cubic, recon.data(),
      [&](std::size_t idx) {
        anchors.push_back(src[idx]);
        recon[idx] = src[idx];
      },
      [&](std::size_t idx, float pred) {
        float r;
        const std::uint16_t code = quant.quantize(src[idx], pred, r);
        if (code == LinearQuantizer::kUnpredictable)
          unpred.push_back(src[idx]);
        recon[idx] = r;
        codes.push_back(code);
      });

  predict_stage.stop();
  {
    ByteWriter aw;
    aw.put_array<float>(anchors);
    w.put_blob(lz::compress(aw.bytes()));
  }
  w.put_blob(qcodec::encode_codes(codes));
  {
    ByteWriter uw;
    uw.put_array<float>(unpred);
    w.put_blob(lz::compress(uw.bytes()));
  }
  return sz::seal_stream(w.take());
}

Field SZInterp::decompress_impl(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const sz::StreamHeader h = sz::read_header_or_throw(r, kMagic);
  const Dims d = h.dims;
  const double abs_eb = h.abs_eb;
  const std::size_t S = r.get_varint();
  // S = 0 would make the anchor loops non-terminating; a corrupt stride is
  // a stream error, not a crash.
  AESZ_CHECK_STREAM(S >= 1 && S <= (std::size_t{1} << 20) &&
                        (S & (S - 1)) == 0,
                    "bad refinement stride");
  const bool cubic = r.get<std::uint8_t>() != 0;

  const auto anchor_bytes = lz::decompress(r.get_blob());
  ByteReader ar(anchor_bytes);
  const auto anchors = ar.get_array<float>();
  auto codes = qcodec::decode_codes(r.get_blob());
  const auto unpred_bytes = lz::decompress(r.get_blob());
  ByteReader ur(unpred_bytes);
  const auto unpred = ur.get_array<float>();

  prof::StageScope predict_stage(prof::Stage::kPredict);
  LinearQuantizer quant(abs_eb);
  Field out(d);
  float* recon = out.data();
  std::size_t ai = 0, ci = 0, ui = 0;

  walk(
      d, S, cubic, recon,
      [&](std::size_t idx) {
        AESZ_CHECK_STREAM(ai < anchors.size(), "anchor underflow");
        recon[idx] = anchors[ai++];
      },
      [&](std::size_t idx, float pred) {
        AESZ_CHECK_STREAM(ci < codes.size(), "code underflow");
        const std::uint16_t code = codes[ci++];
        if (code == LinearQuantizer::kUnpredictable) {
          AESZ_CHECK_STREAM(ui < unpred.size(), "unpredictable underflow");
          recon[idx] = unpred[ui++];
        } else {
          recon[idx] = quant.recover(pred, code);
        }
      });
  return out;
}

}  // namespace aesz
