#pragma once

#include "predictors/compressor.hpp"

namespace aesz {

/// SZauto-like compressor (Zhao et al., HPDC 2020): second-order
/// Lorenzo prediction with sampled automatic selection between first- and
/// second-order stencils, linear-scale quantization, Huffman + LZ.
///
/// The full SZauto also searches block sizes and per-dataset quantization
/// parameters; this reproduction keeps the published core (second-order
/// prediction + sampling-driven selection), which is what drives its
/// rate-distortion placement in the paper's Fig. 8.
class SZAuto final : public Compressor {
 public:
  static constexpr std::uint32_t kStreamMagic = 0x535A4155;  // "SZAU"

  std::string name() const override { return "SZauto"; }
  using Compressor::compress;
  std::vector<std::uint8_t> compress(const Field& f,
                                     const ErrorBound& eb) override;

 protected:
  Field decompress_impl(std::span<const std::uint8_t> stream) override;
};

}  // namespace aesz
