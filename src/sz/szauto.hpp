#pragma once

#include "predictors/compressor.hpp"

namespace aesz {

/// SZauto-like compressor (Zhao et al., HPDC 2020): second-order
/// Lorenzo prediction with sampled automatic selection between first- and
/// second-order stencils, linear-scale quantization, Huffman + LZ.
///
/// The full SZauto also searches block sizes and per-dataset quantization
/// parameters; this reproduction keeps the published core (second-order
/// prediction + sampling-driven selection), which is what drives its
/// rate-distortion placement in the paper's Fig. 8.
class SZAuto final : public Compressor {
 public:
  std::string name() const override { return "SZauto"; }
  std::vector<std::uint8_t> compress(const Field& f, double rel_eb) override;
  Field decompress(std::span<const std::uint8_t> stream) override;
};

}  // namespace aesz
