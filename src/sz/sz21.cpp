#include "sz/sz21.hpp"

#include <array>
#include <cmath>

#include "lossless/lz.hpp"
#include "predictors/lorenzo.hpp"
#include "predictors/quantizer.hpp"
#include "sz/common.hpp"
#include "util/stage_timer.hpp"

namespace aesz {
namespace {

constexpr std::uint32_t kMagic = SZ21::kStreamMagic;

/// Least-squares hyperplane fit f ≈ c[0] + sum_d c[1+d] * x_d over a
/// rectangular sub-block. On a full grid the coordinates are uncorrelated,
/// so each slope is an independent 1-D regression against the centered
/// coordinate.
struct PlaneFit {
  std::array<double, 4> c{0, 0, 0, 0};  // intercept + up to 3 slopes
};

PlaneFit fit_plane(const float* f, const Dims& fd, int rank,
                   const std::size_t* off, const std::size_t* ext) {
  PlaneFit fit;
  double n = 0.0, mean = 0.0;
  std::array<double, 3> cmean{0, 0, 0};
  // First pass: means.
  for (std::size_t a = 0; a < ext[0]; ++a) {
    for (std::size_t b = 0; b < (rank >= 2 ? ext[1] : 1); ++b) {
      for (std::size_t c = 0; c < (rank >= 3 ? ext[2] : 1); ++c) {
        const std::size_t idx =
            rank == 1 ? off[0] + a
            : rank == 2
                ? lin2(fd, off[0] + a, off[1] + b)
                : lin3(fd, off[0] + a, off[1] + b, off[2] + c);
        mean += f[idx];
        cmean[0] += static_cast<double>(a);
        cmean[1] += static_cast<double>(b);
        cmean[2] += static_cast<double>(c);
        n += 1.0;
      }
    }
  }
  mean /= n;
  for (auto& v : cmean) v /= n;
  // Second pass: slopes.
  std::array<double, 3> num{0, 0, 0}, den{0, 0, 0};
  for (std::size_t a = 0; a < ext[0]; ++a) {
    for (std::size_t b = 0; b < (rank >= 2 ? ext[1] : 1); ++b) {
      for (std::size_t c = 0; c < (rank >= 3 ? ext[2] : 1); ++c) {
        const std::size_t idx =
            rank == 1 ? off[0] + a
            : rank == 2
                ? lin2(fd, off[0] + a, off[1] + b)
                : lin3(fd, off[0] + a, off[1] + b, off[2] + c);
        const double df = f[idx] - mean;
        const double dc[3] = {static_cast<double>(a) - cmean[0],
                              static_cast<double>(b) - cmean[1],
                              static_cast<double>(c) - cmean[2]};
        for (int d = 0; d < rank; ++d) {
          num[static_cast<std::size_t>(d)] += dc[d] * df;
          den[static_cast<std::size_t>(d)] += dc[d] * dc[d];
        }
      }
    }
  }
  for (int d = 0; d < rank; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    fit.c[1 + ud] = den[ud] > 0 ? num[ud] / den[ud] : 0.0;
  }
  fit.c[0] = mean;
  for (int d = 0; d < rank; ++d)
    fit.c[0] -= fit.c[1 + static_cast<std::size_t>(d)] *
                cmean[static_cast<std::size_t>(d)];
  return fit;
}

struct BlockGrid {
  std::size_t bs[3];      // block extent per axis
  std::size_t nb[3];      // number of blocks per axis
  std::size_t total = 1;  // total blocks
};

BlockGrid make_grid(const Dims& d, const SZ21::Options& opt) {
  BlockGrid g{};
  const std::size_t bs = d.rank == 1   ? opt.block_1d
                         : d.rank == 2 ? opt.block_2d
                                       : opt.block_3d;
  for (int i = 0; i < 3; ++i) {
    g.bs[i] = i < d.rank ? bs : 1;
    g.nb[i] = i < d.rank ? num_blocks(d[i], bs) : 1;
    g.total *= g.nb[i];
  }
  return g;
}

}  // namespace

std::vector<std::uint8_t> SZ21::compress(const Field& f,
                                         const ErrorBound& eb) {
  const Dims& d = f.dims();
  const double abs_eb = sz::resolve_abs_eb(f, eb, "SZ2.1");
  const int rank = d.rank;

  ByteWriter w;
  sz::write_header(w, kMagic, d, eb, abs_eb);

  const BlockGrid g = make_grid(d, opt_);
  LinearQuantizer quant(abs_eb);

  std::vector<std::uint8_t> flags(g.total, 0);  // 1 = regression
  std::vector<PlaneFit> fits(g.total);
  const double slope_prec = 2.0 * abs_eb / static_cast<double>(g.bs[0]);
  const double icept_prec = abs_eb;
  ByteWriter coeff_w;

  prof::StageScope predict_stage(prof::Stage::kPredict);
  // Pass 1: per-block predictor selection on original data, regression
  // coefficient quantization.
  const float* src = f.data();
  std::vector<float> blockbuf(g.bs[0] * g.bs[1] * g.bs[2]);
  std::size_t bid = 0;
  for (std::size_t B0 = 0; B0 < g.nb[0]; ++B0) {
    for (std::size_t B1 = 0; B1 < g.nb[1]; ++B1) {
      for (std::size_t B2 = 0; B2 < g.nb[2]; ++B2, ++bid) {
        const std::size_t off[3] = {B0 * g.bs[0], B1 * g.bs[1], B2 * g.bs[2]};
        std::size_t ext[3] = {1, 1, 1};
        for (int i = 0; i < rank; ++i)
          ext[i] = std::min(g.bs[i], d[i] - off[i]);
        if (!opt_.enable_regression) continue;

        PlaneFit fit = fit_plane(src, d, rank, off, ext);
        // Quantize coefficients; prediction must use the dequantized values
        // the decompressor will see.
        for (int ci = 0; ci <= rank; ++ci) {
          const double prec = ci == 0 ? icept_prec : slope_prec;
          const auto q = static_cast<std::int64_t>(
              std::nearbyint(fit.c[static_cast<std::size_t>(ci)] / prec));
          fit.c[static_cast<std::size_t>(ci)] = prec * static_cast<double>(q);
        }

        // Copy block & compute selection losses on original data.
        double reg_loss = 0.0;
        for (std::size_t a = 0; a < ext[0]; ++a)
          for (std::size_t b = 0; b < ext[1]; ++b)
            for (std::size_t c = 0; c < ext[2]; ++c) {
              const std::size_t idx =
                  rank == 1 ? off[0] + a
                  : rank == 2 ? lin2(d, off[0] + a, off[1] + b)
                              : lin3(d, off[0] + a, off[1] + b, off[2] + c);
              blockbuf[(a * ext[1] + b) * ext[2] + c] = src[idx];
              const double pred = fit.c[0] + fit.c[1] * static_cast<double>(a) +
                                  fit.c[2] * static_cast<double>(b) +
                                  fit.c[3] * static_cast<double>(c);
              reg_loss += std::abs(static_cast<double>(src[idx]) - pred);
            }
        const std::span<const float> bb(blockbuf.data(),
                                        ext[0] * ext[1] * ext[2]);
        const double lor_loss =
            rank == 1   ? lorenzo::block_l1_loss_2d(bb, 1, ext[0])
            : rank == 2 ? lorenzo::block_l1_loss_2d(bb, ext[0], ext[1])
                        : lorenzo::block_l1_loss_3d(bb, ext[0], ext[1], ext[2]);
        if (reg_loss < lor_loss) {
          flags[bid] = 1;
          fits[bid] = fit;
          for (int ci = 0; ci <= rank; ++ci) {
            const double prec = ci == 0 ? icept_prec : slope_prec;
            coeff_w.put_varint(sz::zigzag(static_cast<std::int64_t>(
                std::nearbyint(fit.c[static_cast<std::size_t>(ci)] / prec))));
          }
        }
      }
    }
  }

  // Pass 2: blockwise raster encode. Lorenzo reads reconstructed neighbors
  // (block-raster + inner-raster order keeps the causal stencil available).
  std::vector<float> recon(d.total());
  std::vector<std::uint16_t> codes(d.total());
  std::vector<float> unpred;
  std::size_t ci = 0;
  bid = 0;
  for (std::size_t B0 = 0; B0 < g.nb[0]; ++B0) {
    for (std::size_t B1 = 0; B1 < g.nb[1]; ++B1) {
      for (std::size_t B2 = 0; B2 < g.nb[2]; ++B2, ++bid) {
        const std::size_t off[3] = {B0 * g.bs[0], B1 * g.bs[1], B2 * g.bs[2]};
        std::size_t ext[3] = {1, 1, 1};
        for (int i = 0; i < rank; ++i)
          ext[i] = std::min(g.bs[i], d[i] - off[i]);
        const bool reg = flags[bid] != 0;
        const PlaneFit& fit = fits[bid];
        for (std::size_t a = 0; a < ext[0]; ++a) {
          for (std::size_t b = 0; b < ext[1]; ++b) {
            for (std::size_t c = 0; c < ext[2]; ++c) {
              const std::size_t i0 = off[0] + a, i1 = off[1] + b,
                                i2 = off[2] + c;
              const std::size_t idx = rank == 1   ? i0
                                      : rank == 2 ? lin2(d, i0, i1)
                                                  : lin3(d, i0, i1, i2);
              float pred;
              if (reg) {
                pred = static_cast<float>(
                    fit.c[0] + fit.c[1] * static_cast<double>(a) +
                    fit.c[2] * static_cast<double>(b) +
                    fit.c[3] * static_cast<double>(c));
              } else {
                pred = rank == 1 ? lorenzo::predict1(recon.data(), idx)
                       : rank == 2
                           ? lorenzo::predict2(recon.data(), d, i0, i1)
                           : lorenzo::predict3(recon.data(), d, i0, i1, i2);
              }
              float r;
              const std::uint16_t code = quant.quantize(src[idx], pred, r);
              if (code == LinearQuantizer::kUnpredictable)
                unpred.push_back(src[idx]);
              recon[idx] = r;
              codes[ci++] = code;
            }
          }
        }
      }
    }
  }

  predict_stage.stop();
  // Assemble self-describing stream.
  {
    std::vector<std::uint8_t> packed((g.total + 7) / 8, 0);
    for (std::size_t i = 0; i < g.total; ++i)
      if (flags[i]) packed[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
    w.put_blob(lz::compress(packed));
  }
  w.put_blob(lz::compress(coeff_w.bytes()));
  w.put_blob(qcodec::encode_codes(codes));
  {
    ByteWriter uw;
    uw.put_array<float>(unpred);
    w.put_blob(lz::compress(uw.bytes()));
  }
  return sz::seal_stream(w.take());
}

Field SZ21::decompress_impl(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const sz::StreamHeader h = sz::read_header_or_throw(r, kMagic);
  const Dims d = h.dims;
  const double abs_eb = h.abs_eb;
  const int rank = d.rank;
  const BlockGrid g = make_grid(d, opt_);

  const auto packed = lz::decompress(r.get_blob());
  std::vector<std::uint8_t> flags(g.total, 0);
  AESZ_CHECK_STREAM(packed.size() >= (g.total + 7) / 8, "bad flag blob");
  for (std::size_t i = 0; i < g.total; ++i)
    flags[i] = (packed[i >> 3] >> (i & 7)) & 1;

  const auto coeff_bytes = lz::decompress(r.get_blob());
  ByteReader coeff_r(coeff_bytes);
  const double slope_prec = 2.0 * abs_eb / static_cast<double>(g.bs[0]);
  const double icept_prec = abs_eb;

  auto codes = qcodec::decode_codes(r.get_blob());
  AESZ_CHECK_STREAM(codes.size() == d.total(), "code count mismatch");
  const auto unpred_bytes = lz::decompress(r.get_blob());
  ByteReader ur(unpred_bytes);
  const auto unpred = ur.get_array<float>();

  prof::StageScope predict_stage(prof::Stage::kPredict);
  LinearQuantizer quant(abs_eb);
  Field out(d);
  float* recon = out.data();
  std::size_t ci = 0, ui = 0, bid = 0;
  for (std::size_t B0 = 0; B0 < g.nb[0]; ++B0) {
    for (std::size_t B1 = 0; B1 < g.nb[1]; ++B1) {
      for (std::size_t B2 = 0; B2 < g.nb[2]; ++B2, ++bid) {
        const std::size_t off[3] = {B0 * g.bs[0], B1 * g.bs[1], B2 * g.bs[2]};
        std::size_t ext[3] = {1, 1, 1};
        for (int i = 0; i < rank; ++i)
          ext[i] = std::min(g.bs[i], d[i] - off[i]);
        PlaneFit fit;
        const bool reg = flags[bid] != 0;
        if (reg) {
          for (int cj = 0; cj <= rank; ++cj) {
            const double prec = cj == 0 ? icept_prec : slope_prec;
            fit.c[static_cast<std::size_t>(cj)] =
                prec *
                static_cast<double>(sz::unzigzag(coeff_r.get_varint()));
          }
        }
        for (std::size_t a = 0; a < ext[0]; ++a) {
          for (std::size_t b = 0; b < ext[1]; ++b) {
            for (std::size_t c = 0; c < ext[2]; ++c) {
              const std::size_t i0 = off[0] + a, i1 = off[1] + b,
                                i2 = off[2] + c;
              const std::size_t idx = rank == 1   ? i0
                                      : rank == 2 ? lin2(d, i0, i1)
                                                  : lin3(d, i0, i1, i2);
              const std::uint16_t code = codes[ci++];
              if (code == LinearQuantizer::kUnpredictable) {
                AESZ_CHECK_STREAM(ui < unpred.size(), "unpredictable underflow");
                recon[idx] = unpred[ui++];
                continue;
              }
              float pred;
              if (reg) {
                pred = static_cast<float>(
                    fit.c[0] + fit.c[1] * static_cast<double>(a) +
                    fit.c[2] * static_cast<double>(b) +
                    fit.c[3] * static_cast<double>(c));
              } else {
                pred = rank == 1 ? lorenzo::predict1(recon, idx)
                       : rank == 2 ? lorenzo::predict2(recon, d, i0, i1)
                                   : lorenzo::predict3(recon, d, i0, i1, i2);
              }
              recon[idx] = quant.recover(pred, code);
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace aesz
