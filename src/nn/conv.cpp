#include "nn/conv.hpp"

#include <cmath>

#include "nn/gemm.hpp"
#include "util/stage_timer.hpp"

namespace aesz::nn {
namespace {

float he_std(std::size_t fan_in) {
  return std::sqrt(2.0f / static_cast<float>(fan_in));
}

using idx = std::ptrdiff_t;
using detail::out_range;  // shared window math, defined in nn/gemm.hpp

}  // namespace

// ---------------------------------------------------------------- Conv2d --
//
// 2-D forwards run through the im2col + blocked-SGEMM kernels in
// src/nn/gemm.cpp (the inference hot path). Backward passes and the 3-D
// classes keep the direct loop strategy: kernel taps (ic, kh, kw) hoisted
// outside the spatial loops so the innermost loop is a contiguous (or
// stride-s) AXPY over one row — which vectorizes. The correctness of every
// path is pinned by finite-difference tests and GEMM-vs-naive checks.

Conv2d::Conv2d(std::size_t in_c, std::size_t out_c, std::size_t k,
               std::size_t stride, std::size_t pad, Rng& rng)
    : in_c_(in_c), out_c_(out_c), k_(k), stride_(stride), pad_(pad),
      w_(Tensor::randn({out_c, in_c, k, k}, rng, he_std(in_c * k * k))),
      b_(Tensor::zeros({out_c})) {}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  prof::StageScope scope(prof::Stage::kInference);
  AESZ_CHECK(x.shape().size() == 4 && x.dim(1) == in_c_);
  const std::size_t N = x.dim(0), H = x.dim(2), W = x.dim(3);
  const std::size_t OH = out_size(H), OW = out_size(W);
  Tensor y({N, out_c_, OH, OW});
  // Batched im2col + SGEMM: the whole minibatch shares each packed weight
  // panel (bitwise identical to per-sample conv2d_forward calls — the
  // server's cross-request batcher depends on that identity).
  conv2d_forward_batched(x.data(), N, in_c_, H, W, w_.value.data(), out_c_,
                         k_, stride_, pad_, b_.value.data(), y.data(), OH,
                         OW);
  if (train) x_cache_ = x;
  return y;
}

Tensor Conv2d::backward(const Tensor& gy) {
  const Tensor& x = x_cache_;
  const std::size_t N = x.dim(0), H = x.dim(2), W = x.dim(3);
  const std::size_t OH = gy.dim(2), OW = gy.dim(3);
  Tensor gx(x.shape());
  const float* xp = x.data();
  const float* wp = w_.value.data();
  const float* gyp = gy.data();
  float* gxp = gx.data();
  float* gwp = w_.grad.data();
  float* gbp = b_.grad.data();
  const idx S = static_cast<idx>(stride_), P = static_cast<idx>(pad_);

  // Parameter grads: parallel over oc (disjoint gw/gb rows).
#pragma omp parallel for schedule(static)
  for (idx oc = 0; oc < static_cast<idx>(out_c_); ++oc) {
    const auto uoc = static_cast<std::size_t>(oc);
    for (std::size_t n = 0; n < N; ++n) {
      const float* gplane = gyp + (n * out_c_ + uoc) * OH * OW;
      for (std::size_t i = 0; i < OH * OW; ++i) gbp[uoc] += gplane[i];
      for (std::size_t ic = 0; ic < in_c_; ++ic) {
        const float* xplane = xp + (n * in_c_ + ic) * H * W;
        for (std::size_t kh = 0; kh < k_; ++kh) {
          idx oh_lo, oh_hi;
          out_range(static_cast<idx>(OH), static_cast<idx>(H), S, P,
                    static_cast<idx>(kh), oh_lo, oh_hi);
          for (std::size_t kw = 0; kw < k_; ++kw) {
            idx ow_lo, ow_hi;
            out_range(static_cast<idx>(OW), static_cast<idx>(W), S, P,
                      static_cast<idx>(kw), ow_lo, ow_hi);
            float acc = 0.0f;
            for (idx oh = oh_lo; oh < oh_hi; ++oh) {
              const idx ih = oh * S - P + static_cast<idx>(kh);
              const float* grow = gplane + oh * static_cast<idx>(OW);
              const float* xrow = xplane + ih * static_cast<idx>(W) - P +
                                  static_cast<idx>(kw);
              for (idx ow = ow_lo; ow < ow_hi; ++ow)
                acc += grow[ow] * xrow[ow * S];
            }
            gwp[((uoc * in_c_ + ic) * k_ + kh) * k_ + kw] += acc;
          }
        }
      }
    }
  }

  // Input grads: parallel over (n, ic); scatter from gy rows.
#pragma omp parallel for collapse(2) schedule(static)
  for (idx n = 0; n < static_cast<idx>(N); ++n) {
    for (idx ic = 0; ic < static_cast<idx>(in_c_); ++ic) {
      const auto uic = static_cast<std::size_t>(ic);
      float* gxplane = gxp + (static_cast<std::size_t>(n) * in_c_ + uic) *
                                 H * W;
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        const float* gplane =
            gyp + (static_cast<std::size_t>(n) * out_c_ + oc) * OH * OW;
        for (std::size_t kh = 0; kh < k_; ++kh) {
          idx oh_lo, oh_hi;
          out_range(static_cast<idx>(OH), static_cast<idx>(H), S, P,
                    static_cast<idx>(kh), oh_lo, oh_hi);
          for (std::size_t kw = 0; kw < k_; ++kw) {
            const float wv =
                wp[((oc * in_c_ + uic) * k_ + kh) * k_ + kw];
            idx ow_lo, ow_hi;
            out_range(static_cast<idx>(OW), static_cast<idx>(W), S, P,
                      static_cast<idx>(kw), ow_lo, ow_hi);
            for (idx oh = oh_lo; oh < oh_hi; ++oh) {
              const idx ih = oh * S - P + static_cast<idx>(kh);
              const float* grow = gplane + oh * static_cast<idx>(OW);
              float* gxrow = gxplane + ih * static_cast<idx>(W) - P +
                             static_cast<idx>(kw);
              for (idx ow = ow_lo; ow < ow_hi; ++ow)
                gxrow[ow * S] += wv * grow[ow];
            }
          }
        }
      }
    }
  }
  return gx;
}

// --------------------------------------------------------------- ConvT2d --

ConvT2d::ConvT2d(std::size_t in_c, std::size_t out_c, std::size_t k,
                 std::size_t stride, std::size_t pad, std::size_t out_pad,
                 Rng& rng)
    : in_c_(in_c), out_c_(out_c), k_(k), stride_(stride), pad_(pad),
      out_pad_(out_pad),
      w_(Tensor::randn({in_c, out_c, k, k}, rng, he_std(in_c * k_ * k_))),
      b_(Tensor::zeros({out_c})) {}

Tensor ConvT2d::forward(const Tensor& x, bool train) {
  prof::StageScope scope(prof::Stage::kInference);
  AESZ_CHECK(x.shape().size() == 4 && x.dim(1) == in_c_);
  const std::size_t N = x.dim(0), H = x.dim(2), W = x.dim(3);
  const std::size_t OH = out_size(H), OW = out_size(W);
  Tensor y({N, out_c_, OH, OW});
  convt2d_forward_batched(x.data(), N, in_c_, H, W, w_.value.data(), out_c_,
                          k_, stride_, pad_, b_.value.data(), y.data(), OH,
                          OW);
  if (train) x_cache_ = x;
  return y;
}

Tensor ConvT2d::backward(const Tensor& gy) {
  const Tensor& x = x_cache_;
  const std::size_t N = x.dim(0), H = x.dim(2), W = x.dim(3);
  const std::size_t OH = gy.dim(2), OW = gy.dim(3);
  Tensor gx(x.shape());
  const float* xp = x.data();
  const float* wp = w_.value.data();
  const float* gyp = gy.data();
  float* gxp = gx.data();
  float* gwp = w_.grad.data();
  float* gbp = b_.grad.data();
  const idx S = static_cast<idx>(stride_), P = static_cast<idx>(pad_);

  // gx gather + gw accumulation share the same (ic-parallel) traversal.
#pragma omp parallel for collapse(2) schedule(static)
  for (idx n = 0; n < static_cast<idx>(N); ++n) {
    for (idx ic = 0; ic < static_cast<idx>(in_c_); ++ic) {
      const auto uic = static_cast<std::size_t>(ic);
      float* gxplane = gxp + (static_cast<std::size_t>(n) * in_c_ + uic) *
                                 H * W;
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        const float* gplane =
            gyp + (static_cast<std::size_t>(n) * out_c_ + oc) * OH * OW;
        for (std::size_t kh = 0; kh < k_; ++kh) {
          idx ih_lo, ih_hi;
          out_range(static_cast<idx>(H), static_cast<idx>(OH), S, P,
                    static_cast<idx>(kh), ih_lo, ih_hi);
          for (std::size_t kw = 0; kw < k_; ++kw) {
            const float wv =
                wp[((uic * out_c_ + oc) * k_ + kh) * k_ + kw];
            idx iw_lo, iw_hi;
            out_range(static_cast<idx>(W), static_cast<idx>(OW), S, P,
                      static_cast<idx>(kw), iw_lo, iw_hi);
            for (idx ih = ih_lo; ih < ih_hi; ++ih) {
              const idx oh = ih * S + static_cast<idx>(kh) - P;
              float* gxrow = gxplane + ih * static_cast<idx>(W);
              const float* grow = gplane + oh * static_cast<idx>(OW) - P +
                                  static_cast<idx>(kw);
              for (idx iw = iw_lo; iw < iw_hi; ++iw)
                gxrow[iw] += wv * grow[iw * S];
            }
          }
        }
      }
    }
  }

#pragma omp parallel for schedule(static)
  for (idx ic = 0; ic < static_cast<idx>(in_c_); ++ic) {
    const auto uic = static_cast<std::size_t>(ic);
    for (std::size_t n = 0; n < N; ++n) {
      const float* xplane = xp + (n * in_c_ + uic) * H * W;
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        const float* gplane = gyp + (n * out_c_ + oc) * OH * OW;
        for (std::size_t kh = 0; kh < k_; ++kh) {
          idx ih_lo, ih_hi;
          out_range(static_cast<idx>(H), static_cast<idx>(OH), S, P,
                    static_cast<idx>(kh), ih_lo, ih_hi);
          for (std::size_t kw = 0; kw < k_; ++kw) {
            idx iw_lo, iw_hi;
            out_range(static_cast<idx>(W), static_cast<idx>(OW), S, P,
                      static_cast<idx>(kw), iw_lo, iw_hi);
            float acc = 0.0f;
            for (idx ih = ih_lo; ih < ih_hi; ++ih) {
              const idx oh = ih * S + static_cast<idx>(kh) - P;
              const float* xrow = xplane + ih * static_cast<idx>(W);
              const float* grow = gplane + oh * static_cast<idx>(OW) - P +
                                  static_cast<idx>(kw);
              for (idx iw = iw_lo; iw < iw_hi; ++iw)
                acc += xrow[iw] * grow[iw * S];
            }
            gwp[((uic * out_c_ + oc) * k_ + kh) * k_ + kw] += acc;
          }
        }
      }
    }
  }

  for (std::size_t n = 0; n < N; ++n)
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* gplane = gyp + (n * out_c_ + oc) * OH * OW;
      for (std::size_t i = 0; i < OH * OW; ++i) gbp[oc] += gplane[i];
    }
  return gx;
}

// ---------------------------------------------------------------- Conv3d --

Conv3d::Conv3d(std::size_t in_c, std::size_t out_c, std::size_t k,
               std::size_t stride, std::size_t pad, Rng& rng)
    : in_c_(in_c), out_c_(out_c), k_(k), stride_(stride), pad_(pad),
      w_(Tensor::randn({out_c, in_c, k, k, k}, rng,
                       he_std(in_c * k * k * k))),
      b_(Tensor::zeros({out_c})) {}

Tensor Conv3d::forward(const Tensor& x, bool train) {
  prof::StageScope scope(prof::Stage::kInference);
  AESZ_CHECK(x.shape().size() == 5 && x.dim(1) == in_c_);
  const std::size_t N = x.dim(0), D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const std::size_t OD = out_size(D), OH = out_size(H), OW = out_size(W);
  Tensor y({N, out_c_, OD, OH, OW});
  const float* xp = x.data();
  const float* wp = w_.value.data();
  const float* bp = b_.value.data();
  float* yp = y.data();
  const idx S = static_cast<idx>(stride_), P = static_cast<idx>(pad_);

#pragma omp parallel for collapse(2) schedule(static)
  for (idx n = 0; n < static_cast<idx>(N); ++n) {
    for (idx oc = 0; oc < static_cast<idx>(out_c_); ++oc) {
      const auto uoc = static_cast<std::size_t>(oc);
      float* yvol = yp + (static_cast<std::size_t>(n) * out_c_ + uoc) * OD *
                             OH * OW;
      for (std::size_t i = 0; i < OD * OH * OW; ++i) yvol[i] = bp[uoc];
      for (std::size_t ic = 0; ic < in_c_; ++ic) {
        const float* xvol =
            xp + (static_cast<std::size_t>(n) * in_c_ + ic) * D * H * W;
        for (std::size_t kd = 0; kd < k_; ++kd) {
          idx od_lo, od_hi;
          out_range(static_cast<idx>(OD), static_cast<idx>(D), S, P,
                    static_cast<idx>(kd), od_lo, od_hi);
          for (std::size_t kh = 0; kh < k_; ++kh) {
            idx oh_lo, oh_hi;
            out_range(static_cast<idx>(OH), static_cast<idx>(H), S, P,
                      static_cast<idx>(kh), oh_lo, oh_hi);
            for (std::size_t kw = 0; kw < k_; ++kw) {
              const float wv =
                  wp[(((uoc * in_c_ + ic) * k_ + kd) * k_ + kh) * k_ + kw];
              idx ow_lo, ow_hi;
              out_range(static_cast<idx>(OW), static_cast<idx>(W), S, P,
                        static_cast<idx>(kw), ow_lo, ow_hi);
              for (idx od = od_lo; od < od_hi; ++od) {
                const idx id = od * S - P + static_cast<idx>(kd);
                for (idx oh = oh_lo; oh < oh_hi; ++oh) {
                  const idx ih = oh * S - P + static_cast<idx>(kh);
                  float* yrow =
                      yvol + (od * static_cast<idx>(OH) + oh) *
                                 static_cast<idx>(OW);
                  const float* xrow =
                      xvol + (id * static_cast<idx>(H) + ih) *
                                 static_cast<idx>(W) -
                      P + static_cast<idx>(kw);
                  for (idx ow = ow_lo; ow < ow_hi; ++ow)
                    yrow[ow] += wv * xrow[ow * S];
                }
              }
            }
          }
        }
      }
    }
  }
  if (train) x_cache_ = x;
  return y;
}

Tensor Conv3d::backward(const Tensor& gy) {
  const Tensor& x = x_cache_;
  const std::size_t N = x.dim(0), D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const std::size_t OD = gy.dim(2), OH = gy.dim(3), OW = gy.dim(4);
  Tensor gx(x.shape());
  const float* xp = x.data();
  const float* wp = w_.value.data();
  const float* gyp = gy.data();
  float* gxp = gx.data();
  float* gwp = w_.grad.data();
  float* gbp = b_.grad.data();
  const idx S = static_cast<idx>(stride_), P = static_cast<idx>(pad_);

#pragma omp parallel for schedule(static)
  for (idx oc = 0; oc < static_cast<idx>(out_c_); ++oc) {
    const auto uoc = static_cast<std::size_t>(oc);
    for (std::size_t n = 0; n < N; ++n) {
      const float* gvol = gyp + (n * out_c_ + uoc) * OD * OH * OW;
      for (std::size_t i = 0; i < OD * OH * OW; ++i) gbp[uoc] += gvol[i];
      for (std::size_t ic = 0; ic < in_c_; ++ic) {
        const float* xvol = xp + (n * in_c_ + ic) * D * H * W;
        for (std::size_t kd = 0; kd < k_; ++kd) {
          idx od_lo, od_hi;
          out_range(static_cast<idx>(OD), static_cast<idx>(D), S, P,
                    static_cast<idx>(kd), od_lo, od_hi);
          for (std::size_t kh = 0; kh < k_; ++kh) {
            idx oh_lo, oh_hi;
            out_range(static_cast<idx>(OH), static_cast<idx>(H), S, P,
                      static_cast<idx>(kh), oh_lo, oh_hi);
            for (std::size_t kw = 0; kw < k_; ++kw) {
              idx ow_lo, ow_hi;
              out_range(static_cast<idx>(OW), static_cast<idx>(W), S, P,
                        static_cast<idx>(kw), ow_lo, ow_hi);
              float acc = 0.0f;
              for (idx od = od_lo; od < od_hi; ++od) {
                const idx id = od * S - P + static_cast<idx>(kd);
                for (idx oh = oh_lo; oh < oh_hi; ++oh) {
                  const idx ih = oh * S - P + static_cast<idx>(kh);
                  const float* grow =
                      gvol + (od * static_cast<idx>(OH) + oh) *
                                 static_cast<idx>(OW);
                  const float* xrow =
                      xvol + (id * static_cast<idx>(H) + ih) *
                                 static_cast<idx>(W) -
                      P + static_cast<idx>(kw);
                  for (idx ow = ow_lo; ow < ow_hi; ++ow)
                    acc += grow[ow] * xrow[ow * S];
                }
              }
              gwp[(((uoc * in_c_ + ic) * k_ + kd) * k_ + kh) * k_ + kw] +=
                  acc;
            }
          }
        }
      }
    }
  }

#pragma omp parallel for collapse(2) schedule(static)
  for (idx n = 0; n < static_cast<idx>(N); ++n) {
    for (idx ic = 0; ic < static_cast<idx>(in_c_); ++ic) {
      const auto uic = static_cast<std::size_t>(ic);
      float* gxvol = gxp + (static_cast<std::size_t>(n) * in_c_ + uic) * D *
                               H * W;
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        const float* gvol =
            gyp + (static_cast<std::size_t>(n) * out_c_ + oc) * OD * OH * OW;
        for (std::size_t kd = 0; kd < k_; ++kd) {
          idx od_lo, od_hi;
          out_range(static_cast<idx>(OD), static_cast<idx>(D), S, P,
                    static_cast<idx>(kd), od_lo, od_hi);
          for (std::size_t kh = 0; kh < k_; ++kh) {
            idx oh_lo, oh_hi;
            out_range(static_cast<idx>(OH), static_cast<idx>(H), S, P,
                      static_cast<idx>(kh), oh_lo, oh_hi);
            for (std::size_t kw = 0; kw < k_; ++kw) {
              const float wv =
                  wp[(((oc * in_c_ + uic) * k_ + kd) * k_ + kh) * k_ + kw];
              idx ow_lo, ow_hi;
              out_range(static_cast<idx>(OW), static_cast<idx>(W), S, P,
                        static_cast<idx>(kw), ow_lo, ow_hi);
              for (idx od = od_lo; od < od_hi; ++od) {
                const idx id = od * S - P + static_cast<idx>(kd);
                for (idx oh = oh_lo; oh < oh_hi; ++oh) {
                  const idx ih = oh * S - P + static_cast<idx>(kh);
                  const float* grow =
                      gvol + (od * static_cast<idx>(OH) + oh) *
                                 static_cast<idx>(OW);
                  float* gxrow =
                      gxvol + (id * static_cast<idx>(H) + ih) *
                                  static_cast<idx>(W) -
                      P + static_cast<idx>(kw);
                  for (idx ow = ow_lo; ow < ow_hi; ++ow)
                    gxrow[ow * S] += wv * grow[ow];
                }
              }
            }
          }
        }
      }
    }
  }
  return gx;
}

// --------------------------------------------------------------- ConvT3d --

ConvT3d::ConvT3d(std::size_t in_c, std::size_t out_c, std::size_t k,
                 std::size_t stride, std::size_t pad, std::size_t out_pad,
                 Rng& rng)
    : in_c_(in_c), out_c_(out_c), k_(k), stride_(stride), pad_(pad),
      out_pad_(out_pad),
      w_(Tensor::randn({in_c, out_c, k, k, k}, rng,
                       he_std(in_c * k * k * k))),
      b_(Tensor::zeros({out_c})) {}

Tensor ConvT3d::forward(const Tensor& x, bool train) {
  prof::StageScope scope(prof::Stage::kInference);
  AESZ_CHECK(x.shape().size() == 5 && x.dim(1) == in_c_);
  const std::size_t N = x.dim(0), D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const std::size_t OD = out_size(D), OH = out_size(H), OW = out_size(W);
  Tensor y({N, out_c_, OD, OH, OW});
  const float* xp = x.data();
  const float* wp = w_.value.data();
  const float* bp = b_.value.data();
  float* yp = y.data();
  const idx S = static_cast<idx>(stride_), P = static_cast<idx>(pad_);

#pragma omp parallel for collapse(2) schedule(static)
  for (idx n = 0; n < static_cast<idx>(N); ++n) {
    for (idx oc = 0; oc < static_cast<idx>(out_c_); ++oc) {
      const auto uoc = static_cast<std::size_t>(oc);
      float* yvol = yp + (static_cast<std::size_t>(n) * out_c_ + uoc) * OD *
                             OH * OW;
      for (std::size_t i = 0; i < OD * OH * OW; ++i) yvol[i] = bp[uoc];
      for (std::size_t ic = 0; ic < in_c_; ++ic) {
        const float* xvol =
            xp + (static_cast<std::size_t>(n) * in_c_ + ic) * D * H * W;
        for (std::size_t kd = 0; kd < k_; ++kd) {
          idx id_lo, id_hi;
          out_range(static_cast<idx>(D), static_cast<idx>(OD), S, P,
                    static_cast<idx>(kd), id_lo, id_hi);
          for (std::size_t kh = 0; kh < k_; ++kh) {
            idx ih_lo, ih_hi;
            out_range(static_cast<idx>(H), static_cast<idx>(OH), S, P,
                      static_cast<idx>(kh), ih_lo, ih_hi);
            for (std::size_t kw = 0; kw < k_; ++kw) {
              const float wv =
                  wp[(((ic * out_c_ + uoc) * k_ + kd) * k_ + kh) * k_ + kw];
              idx iw_lo, iw_hi;
              out_range(static_cast<idx>(W), static_cast<idx>(OW), S, P,
                        static_cast<idx>(kw), iw_lo, iw_hi);
              for (idx id = id_lo; id < id_hi; ++id) {
                const idx od = id * S + static_cast<idx>(kd) - P;
                for (idx ih = ih_lo; ih < ih_hi; ++ih) {
                  const idx oh = ih * S + static_cast<idx>(kh) - P;
                  const float* xrow =
                      xvol + (id * static_cast<idx>(H) + ih) *
                                 static_cast<idx>(W);
                  float* yrow =
                      yvol + (od * static_cast<idx>(OH) + oh) *
                                 static_cast<idx>(OW) -
                      P + static_cast<idx>(kw);
                  for (idx iw = iw_lo; iw < iw_hi; ++iw)
                    yrow[iw * S] += wv * xrow[iw];
                }
              }
            }
          }
        }
      }
    }
  }
  if (train) x_cache_ = x;
  return y;
}

Tensor ConvT3d::backward(const Tensor& gy) {
  const Tensor& x = x_cache_;
  const std::size_t N = x.dim(0), D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const std::size_t OD = gy.dim(2), OH = gy.dim(3), OW = gy.dim(4);
  Tensor gx(x.shape());
  const float* xp = x.data();
  const float* wp = w_.value.data();
  const float* gyp = gy.data();
  float* gxp = gx.data();
  float* gwp = w_.grad.data();
  float* gbp = b_.grad.data();
  const idx S = static_cast<idx>(stride_), P = static_cast<idx>(pad_);

#pragma omp parallel for collapse(2) schedule(static)
  for (idx n = 0; n < static_cast<idx>(N); ++n) {
    for (idx ic = 0; ic < static_cast<idx>(in_c_); ++ic) {
      const auto uic = static_cast<std::size_t>(ic);
      float* gxvol = gxp + (static_cast<std::size_t>(n) * in_c_ + uic) * D *
                               H * W;
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        const float* gvol =
            gyp + (static_cast<std::size_t>(n) * out_c_ + oc) * OD * OH * OW;
        for (std::size_t kd = 0; kd < k_; ++kd) {
          idx id_lo, id_hi;
          out_range(static_cast<idx>(D), static_cast<idx>(OD), S, P,
                    static_cast<idx>(kd), id_lo, id_hi);
          for (std::size_t kh = 0; kh < k_; ++kh) {
            idx ih_lo, ih_hi;
            out_range(static_cast<idx>(H), static_cast<idx>(OH), S, P,
                      static_cast<idx>(kh), ih_lo, ih_hi);
            for (std::size_t kw = 0; kw < k_; ++kw) {
              const float wv =
                  wp[(((uic * out_c_ + oc) * k_ + kd) * k_ + kh) * k_ + kw];
              idx iw_lo, iw_hi;
              out_range(static_cast<idx>(W), static_cast<idx>(OW), S, P,
                        static_cast<idx>(kw), iw_lo, iw_hi);
              for (idx id = id_lo; id < id_hi; ++id) {
                const idx od = id * S + static_cast<idx>(kd) - P;
                for (idx ih = ih_lo; ih < ih_hi; ++ih) {
                  const idx oh = ih * S + static_cast<idx>(kh) - P;
                  float* gxrow =
                      gxvol + (id * static_cast<idx>(H) + ih) *
                                  static_cast<idx>(W);
                  const float* grow =
                      gvol + (od * static_cast<idx>(OH) + oh) *
                                 static_cast<idx>(OW) -
                      P + static_cast<idx>(kw);
                  for (idx iw = iw_lo; iw < iw_hi; ++iw)
                    gxrow[iw] += wv * grow[iw * S];
                }
              }
            }
          }
        }
      }
    }
  }

#pragma omp parallel for schedule(static)
  for (idx ic = 0; ic < static_cast<idx>(in_c_); ++ic) {
    const auto uic = static_cast<std::size_t>(ic);
    for (std::size_t n = 0; n < N; ++n) {
      const float* xvol = xp + (n * in_c_ + uic) * D * H * W;
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        const float* gvol = gyp + (n * out_c_ + oc) * OD * OH * OW;
        for (std::size_t kd = 0; kd < k_; ++kd) {
          idx id_lo, id_hi;
          out_range(static_cast<idx>(D), static_cast<idx>(OD), S, P,
                    static_cast<idx>(kd), id_lo, id_hi);
          for (std::size_t kh = 0; kh < k_; ++kh) {
            idx ih_lo, ih_hi;
            out_range(static_cast<idx>(H), static_cast<idx>(OH), S, P,
                      static_cast<idx>(kh), ih_lo, ih_hi);
            for (std::size_t kw = 0; kw < k_; ++kw) {
              idx iw_lo, iw_hi;
              out_range(static_cast<idx>(W), static_cast<idx>(OW), S, P,
                        static_cast<idx>(kw), iw_lo, iw_hi);
              float acc = 0.0f;
              for (idx id = id_lo; id < id_hi; ++id) {
                const idx od = id * S + static_cast<idx>(kd) - P;
                for (idx ih = ih_lo; ih < ih_hi; ++ih) {
                  const idx oh = ih * S + static_cast<idx>(kh) - P;
                  const float* xrow =
                      xvol + (id * static_cast<idx>(H) + ih) *
                                 static_cast<idx>(W);
                  const float* grow =
                      gvol + (od * static_cast<idx>(OH) + oh) *
                                 static_cast<idx>(OW) -
                      P + static_cast<idx>(kw);
                  for (idx iw = iw_lo; iw < iw_hi; ++iw)
                    acc += xrow[iw] * grow[iw * S];
                }
              }
              gwp[(((uic * out_c_ + oc) * k_ + kd) * k_ + kh) * k_ + kw] +=
                  acc;
            }
          }
        }
      }
    }
  }

  for (std::size_t n = 0; n < N; ++n)
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* gvol = gyp + (n * out_c_ + oc) * OD * OH * OW;
      for (std::size_t i = 0; i < OD * OH * OW; ++i) gbp[oc] += gvol[i];
    }
  return gx;
}

}  // namespace aesz::nn
