#pragma once

#include "nn/layer.hpp"

namespace aesz::nn {

/// Generalized Divisive Normalization (Balle et al. 2016) and its inverse —
/// the paper's activation of choice ("GDN outperforms other tested
/// activation functions on scientific data lossy compression tasks").
///
/// Per spatial location with channel vector x:
///   s_i = beta_i + sum_j gamma_ij * x_j^2
///   GDN:  y_i = x_i * s_i^(-1/2)      (encoder blocks)
///   iGDN: y_i = x_i * s_i^(+1/2)      (decoder blocks)
///
/// beta >= beta_min and gamma >= 0 are maintained by projection after each
/// optimizer step (project()).
class GDN final : public Layer {
 public:
  GDN(std::size_t channels, bool inverse);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::vector<Param*> params() override { return {&beta_, &gamma_}; }
  void project() override;

 private:
  std::size_t c_;
  bool inverse_;
  Param beta_;   // (C)
  Param gamma_;  // (C, C)
  Tensor x_cache_;
  Tensor s_cache_;  // per-location normalization pools
};

}  // namespace aesz::nn
