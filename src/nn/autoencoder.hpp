#pragma once

#include <memory>

#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/gdn.hpp"
#include "util/bytestream.hpp"

namespace aesz::nn {

/// Activation used inside the (de)convolutional blocks. GDN is the paper's
/// choice; ReLU/LeakyReLU exist for the activation ablation.
enum class Activation { kGDN, kReLU, kLeakyReLU };

/// Architecture of the paper's blockwise convolutional autoencoder
/// (Fig. 3/4 + Table VI):
///  - encoder: per channel entry c_i a block [Conv3x3(s1) -> Conv3x3(s2) ->
///    GDN], spatial extent halves per block; then a fully connected resize
///    to the latent vector.
///  - decoder: mirror-symmetric with transposed convolutions and iGDN, plus
///    a final stride-1 convolution + tanh output layer-set.
struct AEConfig {
  int rank = 2;                 // 2 or 3 (dimension of conv ops)
  std::size_t block = 32;       // input block edge (32x32 / 8x8x8 ...)
  std::size_t latent = 16;      // latent vector length
  std::vector<std::size_t> channels = {16, 32, 64, 128};  // per conv block
  Activation act = Activation::kGDN;
  bool variational = false;     // encoder emits (mu, logvar)

  std::size_t block_elems() const {
    std::size_t n = 1;
    for (int i = 0; i < rank; ++i) n *= block;
    return n;
  }
  /// Latent ratio = input elements / latent length (Table II's knob).
  double latent_ratio() const {
    return static_cast<double>(block_elems()) /
           static_cast<double>(latent);
  }
};

/// The blockwise convolutional autoencoder. Explicit encode/decode halves so
/// the compressor can run them separately (encoder at compression, decoder
/// at decompression), as the paper's design requires.
class ConvAutoencoder {
 public:
  ConvAutoencoder(AEConfig cfg, std::uint64_t seed);

  const AEConfig& config() const { return cfg_; }

  /// Encoder: blocks (N, 1, extent...) -> latents (N, latent) — or
  /// (N, 2*latent) when variational (mu ++ logvar).
  Tensor encode(const Tensor& x, bool train);

  /// Decoder: latents (N, latent) -> reconstructed blocks (N, 1, extent...).
  Tensor decode(const Tensor& z, bool train);

  /// Backward through the decoder; returns dL/dz. Requires a prior
  /// decode(..., train=true).
  Tensor backward_decode(const Tensor& gy);

  /// Backward through the encoder given dL/d(encoder output).
  void backward_encode(const Tensor& gz);

  std::vector<Param*> params();
  void project();
  std::size_t param_count();

  /// Weight (de)serialization: fixed parameter order, shape-checked.
  void save(ByteWriter& w);
  void load(ByteReader& r);

 private:
  std::unique_ptr<Layer> make_act(std::size_t channels, bool inverse,
                                  Rng& rng);

  AEConfig cfg_;
  std::size_t min_spatial_;  // block / 2^#blocks
  std::size_t flat_;         // channels.back() * min_spatial^rank
  std::vector<std::unique_ptr<Layer>> enc_;
  std::unique_ptr<Linear> enc_fc_;
  std::unique_ptr<Linear> dec_fc_;
  std::vector<std::unique_ptr<Layer>> dec_;
};

}  // namespace aesz::nn
