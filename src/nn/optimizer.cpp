#include "nn/optimizer.hpp"

#include <cmath>

namespace aesz::nn {

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param& p = *params_[pi];
    Tensor& m = m_[pi];
    Tensor& v = v_[pi];
    for (std::size_t i = 0; i < p.value.numel(); ++i) {
      const float g = p.grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      p.value[i] -=
          static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

void Adam::zero_grad() {
  for (Param* p : params_) p->grad.zero();
}

}  // namespace aesz::nn
