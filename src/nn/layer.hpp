#pragma once

#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace aesz::nn {

/// A learnable parameter paired with its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  Param() = default;
};

/// Base class of all layers. The library uses explicit forward/backward
/// (no tape autograd): each layer caches what its backward needs. This
/// keeps the hot loops flat and OpenMP-friendly, and every layer's
/// gradients are validated by finite-difference tests
/// (tests/nn/gradcheck_test.cpp).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `train` enables caching for backward.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Backward pass: given dL/dy, accumulate parameter grads and return
  /// dL/dx. Must be preceded by forward(x, /*train=*/true).
  virtual Tensor backward(const Tensor& gy) = 0;

  virtual std::vector<Param*> params() { return {}; }

  /// Constraint projection after an optimizer step (GDN clamps beta/gamma).
  virtual void project() {}
};

}  // namespace aesz::nn
