#include "nn/variants.hpp"

#include <algorithm>
#include <cmath>

#include "nn/losses.hpp"

namespace aesz::nn {

std::string variant_name(AEVariant v) {
  switch (v) {
    case AEVariant::kAE: return "AE";
    case AEVariant::kVAE: return "VAE";
    case AEVariant::kBetaVAE: return "beta-VAE";
    case AEVariant::kDIPVAE: return "DIP-VAE";
    case AEVariant::kInfoVAE: return "Info-VAE";
    case AEVariant::kLogCoshVAE: return "LogCosh-VAE";
    case AEVariant::kWAE: return "WAE";
    case AEVariant::kSWAE: return "SWAE";
  }
  return "?";
}

bool variant_is_variational(AEVariant v) {
  switch (v) {
    case AEVariant::kVAE:
    case AEVariant::kBetaVAE:
    case AEVariant::kDIPVAE:
    case AEVariant::kInfoVAE:
    case AEVariant::kLogCoshVAE:
      return true;
    default:
      return false;
  }
}

VariantTrainer::VariantTrainer(AEConfig cfg, AEVariant variant,
                               std::uint64_t seed, VariantHyper hyper)
    : variant_(variant), hyper_(hyper),
      model_((cfg.variational = variant_is_variational(variant), cfg), seed),
      opt_(model_.params(), hyper.lr), rng_(seed ^ 0xA5A5A5A5ULL) {}

double VariantTrainer::train_step(const Tensor& batch) {
  const std::size_t N = batch.dim(0);
  const std::size_t d = model_.config().latent;
  opt_.zero_grad();
  double total = 0.0;

  if (!variant_is_variational(variant_)) {
    // Deterministic path: AE / WAE / SWAE.
    Tensor z = model_.encode(batch, /*train=*/true);
    Tensor xhat = model_.decode(z, /*train=*/true);
    Tensor gxhat(xhat.shape());
    total += losses::mse(xhat, batch, gxhat);
    Tensor gz = model_.backward_decode(gxhat);

    if (variant_ == AEVariant::kWAE || variant_ == AEVariant::kSWAE) {
      // Prior samples z~ ~ N(0, I), one per batch element (paper Eq. 1).
      Tensor prior({N, d});
      for (std::size_t i = 0; i < prior.numel(); ++i)
        prior[i] = rng_.gaussianf();
      if (variant_ == AEVariant::kWAE) {
        total += losses::mmd_rbf(z, prior, hyper_.mmd_weight, gz);
      } else {
        total += losses::sliced_wasserstein(
            z, prior, hyper_.swae_projections, hyper_.swae_lambda, rng_, gz);
      }
    }
    model_.backward_encode(gz);
  } else {
    // VAE family: encoder emits (mu ++ logvar); reparameterized sample.
    Tensor enc_out = model_.encode(batch, /*train=*/true);
    Tensor mu({N, d}), logvar({N, d}), eps({N, d}), z({N, d});
    for (std::size_t n = 0; n < N; ++n) {
      for (std::size_t i = 0; i < d; ++i) {
        mu[n * d + i] = enc_out[n * 2 * d + i];
        // Clamp logvar for numerical stability early in training.
        logvar[n * d + i] =
            std::clamp(enc_out[n * 2 * d + d + i], -10.0f, 10.0f);
        eps[n * d + i] = rng_.gaussianf();
        z[n * d + i] = mu[n * d + i] +
                       std::exp(0.5f * logvar[n * d + i]) * eps[n * d + i];
      }
    }

    Tensor xhat = model_.decode(z, /*train=*/true);
    Tensor gxhat(xhat.shape());
    total += variant_ == AEVariant::kLogCoshVAE
                 ? losses::logcosh(xhat, batch, gxhat)
                 : losses::mse(xhat, batch, gxhat);
    Tensor gz = model_.backward_decode(gxhat);

    Tensor gmu({N, d}), glogvar({N, d});
    // Reparameterization chain: dz/dmu = 1, dz/dlogvar = (z - mu)/2.
    for (std::size_t i = 0; i < gz.numel(); ++i) {
      gmu[i] += gz[i];
      glogvar[i] += gz[i] * 0.5f * (z[i] - mu[i]);
    }

    const double klw = variant_ == AEVariant::kBetaVAE
                           ? hyper_.kl_weight * hyper_.beta
                           : hyper_.kl_weight;
    total += losses::kl_divergence(mu, logvar, klw, gmu, glogvar);
    if (variant_ == AEVariant::kDIPVAE) {
      total += losses::dip_penalty(mu, hyper_.dip_lambda_od,
                                   hyper_.dip_lambda_d, gmu);
    }
    if (variant_ == AEVariant::kInfoVAE) {
      Tensor prior({N, d});
      for (std::size_t i = 0; i < prior.numel(); ++i)
        prior[i] = rng_.gaussianf();
      Tensor gz_mmd({N, d});
      total += losses::mmd_rbf(z, prior, hyper_.mmd_weight, gz_mmd);
      for (std::size_t i = 0; i < gz_mmd.numel(); ++i) {
        gmu[i] += gz_mmd[i];
        glogvar[i] += gz_mmd[i] * 0.5f * (z[i] - mu[i]);
      }
    }

    Tensor genc({N, 2 * d});
    for (std::size_t n = 0; n < N; ++n) {
      for (std::size_t i = 0; i < d; ++i) {
        genc[n * 2 * d + i] = gmu[n * d + i];
        genc[n * 2 * d + d + i] = glogvar[n * d + i];
      }
    }
    model_.backward_encode(genc);
  }

  // Global gradient-norm clipping: the GDN pool makes early training
  // spiky; clipping lets the same learning rate work across all eight
  // variants without per-variant tuning.
  double norm2 = 0.0;
  for (nn::Param* p : model_.params())
    for (std::size_t i = 0; i < p->grad.numel(); ++i)
      norm2 += static_cast<double>(p->grad[i]) * p->grad[i];
  const double norm = std::sqrt(norm2);
  constexpr double kClip = 5.0;
  if (norm > kClip) {
    const float scale = static_cast<float>(kClip / norm);
    for (nn::Param* p : model_.params())
      for (std::size_t i = 0; i < p->grad.numel(); ++i) p->grad[i] *= scale;
  }

  opt_.step();
  model_.project();
  return total;
}

Tensor VariantTrainer::encode_latent(const Tensor& batch) {
  Tensor enc_out = model_.encode(batch, /*train=*/false);
  if (!variant_is_variational(variant_)) return enc_out;
  const std::size_t N = enc_out.dim(0);
  const std::size_t d = model_.config().latent;
  Tensor mu({N, d});
  for (std::size_t n = 0; n < N; ++n)
    for (std::size_t i = 0; i < d; ++i) mu[n * d + i] = enc_out[n * 2 * d + i];
  return mu;
}

Tensor VariantTrainer::reconstruct(const Tensor& batch) {
  return model_.decode(encode_latent(batch), /*train=*/false);
}

}  // namespace aesz::nn
