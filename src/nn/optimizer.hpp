#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace aesz::nn {

/// Adam (Kingma & Ba) with bias correction. Holds first/second moment
/// buffers per parameter; callers zero gradients between steps.
class Adam {
 public:
  explicit Adam(std::vector<Param*> params, float lr = 1e-3f,
                float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  void step();
  void zero_grad();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> m_, v_;
  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
};

}  // namespace aesz::nn
