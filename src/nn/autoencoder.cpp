#include "nn/autoencoder.hpp"

namespace aesz::nn {

std::unique_ptr<Layer> ConvAutoencoder::make_act(std::size_t channels,
                                                 bool inverse, Rng&) {
  switch (cfg_.act) {
    case Activation::kGDN:
      return std::make_unique<GDN>(channels, inverse);
    case Activation::kReLU:
      return std::make_unique<LeakyReLU>(0.0f);
    case Activation::kLeakyReLU:
      return std::make_unique<LeakyReLU>(0.2f);
  }
  throw Error("unknown activation");
}

ConvAutoencoder::ConvAutoencoder(AEConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)) {
  AESZ_CHECK_MSG(cfg_.rank == 2 || cfg_.rank == 3, "rank must be 2 or 3");
  AESZ_CHECK_MSG(!cfg_.channels.empty(), "need at least one conv block");
  const std::size_t nb = cfg_.channels.size();
  AESZ_CHECK_MSG(cfg_.block >= (std::size_t{1} << nb),
                 "block too small for the number of stride-2 halvings");
  Rng rng(seed);

  min_spatial_ = cfg_.block >> nb;
  flat_ = cfg_.channels.back();
  for (int i = 0; i < cfg_.rank; ++i) flat_ *= min_spatial_;

  // ---- Encoder: [Conv(s1) Conv(s2) Act] per channel entry, then FC.
  std::size_t prev = 1;
  for (std::size_t b = 0; b < nb; ++b) {
    const std::size_t c = cfg_.channels[b];
    if (cfg_.rank == 2) {
      enc_.push_back(std::make_unique<Conv2d>(prev, c, 3, 1, 1, rng));
      enc_.push_back(std::make_unique<Conv2d>(c, c, 3, 2, 1, rng));
    } else {
      enc_.push_back(std::make_unique<Conv3d>(prev, c, 3, 1, 1, rng));
      enc_.push_back(std::make_unique<Conv3d>(c, c, 3, 2, 1, rng));
    }
    enc_.push_back(make_act(c, /*inverse=*/false, rng));
    prev = c;
  }
  const std::size_t enc_out = cfg_.variational ? 2 * cfg_.latent : cfg_.latent;
  enc_fc_ = std::make_unique<Linear>(flat_, enc_out, rng);

  // ---- Decoder: FC, then mirror blocks [ConvT(s1) ConvT(s2) iAct], then
  // the final output layer-set Conv(s1)+tanh.
  dec_fc_ = std::make_unique<Linear>(cfg_.latent, flat_, rng);
  for (std::size_t b = nb; b-- > 0;) {
    const std::size_t c = cfg_.channels[b];
    const std::size_t cnext = b > 0 ? cfg_.channels[b - 1] : cfg_.channels[0];
    if (cfg_.rank == 2) {
      dec_.push_back(std::make_unique<ConvT2d>(c, c, 3, 1, 1, 0, rng));
      dec_.push_back(std::make_unique<ConvT2d>(c, cnext, 3, 2, 1, 1, rng));
    } else {
      dec_.push_back(std::make_unique<ConvT3d>(c, c, 3, 1, 1, 0, rng));
      dec_.push_back(std::make_unique<ConvT3d>(c, cnext, 3, 2, 1, 1, rng));
    }
    dec_.push_back(make_act(cnext, /*inverse=*/true, rng));
  }
  if (cfg_.rank == 2) {
    dec_.push_back(
        std::make_unique<Conv2d>(cfg_.channels[0], 1, 3, 1, 1, rng));
  } else {
    dec_.push_back(
        std::make_unique<Conv3d>(cfg_.channels[0], 1, 3, 1, 1, rng));
  }
  dec_.push_back(std::make_unique<Tanh>());
}

Tensor ConvAutoencoder::encode(const Tensor& x, bool train) {
  AESZ_CHECK_MSG(x.dim(1) == 1 && x.dim(2) == cfg_.block,
                 "encoder input must be (N, 1, block, ...)");
  Tensor h = x;
  for (auto& l : enc_) h = l->forward(h, train);
  h = h.reshaped({h.dim(0), flat_});
  return enc_fc_->forward(h, train);
}

Tensor ConvAutoencoder::decode(const Tensor& z, bool train) {
  AESZ_CHECK_MSG(z.shape().size() == 2 && z.dim(1) == cfg_.latent,
                 "decoder input must be (N, latent)");
  Tensor h = dec_fc_->forward(z, train);
  std::vector<std::size_t> shape{h.dim(0), cfg_.channels.back()};
  for (int i = 0; i < cfg_.rank; ++i) shape.push_back(min_spatial_);
  h = h.reshaped(shape);
  for (auto& l : dec_) h = l->forward(h, train);
  return h;
}

Tensor ConvAutoencoder::backward_decode(const Tensor& gy) {
  Tensor g = gy;
  for (auto it = dec_.rbegin(); it != dec_.rend(); ++it)
    g = (*it)->backward(g);
  g = g.reshaped({g.dim(0), flat_});
  return dec_fc_->backward(g);
}

void ConvAutoencoder::backward_encode(const Tensor& gz) {
  Tensor g = enc_fc_->backward(gz);
  std::vector<std::size_t> shape{g.dim(0), cfg_.channels.back()};
  for (int i = 0; i < cfg_.rank; ++i) shape.push_back(min_spatial_);
  g = g.reshaped(shape);
  for (auto it = enc_.rbegin(); it != enc_.rend(); ++it)
    g = (*it)->backward(g);
}

std::vector<Param*> ConvAutoencoder::params() {
  std::vector<Param*> out;
  for (auto& l : enc_)
    for (Param* p : l->params()) out.push_back(p);
  for (Param* p : enc_fc_->params()) out.push_back(p);
  for (Param* p : dec_fc_->params()) out.push_back(p);
  for (auto& l : dec_)
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

void ConvAutoencoder::project() {
  for (auto& l : enc_) l->project();
  for (auto& l : dec_) l->project();
}

std::size_t ConvAutoencoder::param_count() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

void ConvAutoencoder::save(ByteWriter& w) {
  const auto ps = params();
  w.put_varint(ps.size());
  for (Param* p : ps) {
    w.put_varint(p->value.shape().size());
    for (std::size_t s : p->value.shape()) w.put_varint(s);
    w.put_array<float>(p->value.flat());
  }
}

void ConvAutoencoder::load(ByteReader& r) {
  const auto ps = params();
  const std::uint64_t n = r.get_varint();
  AESZ_CHECK_MSG(n == ps.size(), "model parameter count mismatch");
  for (Param* p : ps) {
    const std::uint64_t ndim = r.get_varint();
    AESZ_CHECK_MSG(ndim == p->value.shape().size(), "model shape mismatch");
    for (std::size_t s : p->value.shape())
      AESZ_CHECK_MSG(r.get_varint() == s, "model shape mismatch");
    const auto vals = r.get_array<float>();
    AESZ_CHECK_MSG(vals.size() == p->value.numel(), "model size mismatch");
    std::copy(vals.begin(), vals.end(), p->value.data());
  }
}

}  // namespace aesz::nn
