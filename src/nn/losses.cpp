#include "nn/losses.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace aesz::nn::losses {

double mse(const Tensor& pred, const Tensor& target, Tensor& grad) {
  AESZ_CHECK(pred.numel() == target.numel());
  const double inv_n = 1.0 / static_cast<double>(pred.numel());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    loss += d * d;
    grad[i] = static_cast<float>(2.0 * d * inv_n);
  }
  return loss * inv_n;
}

double l1(const Tensor& pred, const Tensor& target, Tensor& grad) {
  AESZ_CHECK(pred.numel() == target.numel());
  const double inv_n = 1.0 / static_cast<double>(pred.numel());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    loss += std::abs(d);
    grad[i] = static_cast<float>((d > 0 ? 1.0 : d < 0 ? -1.0 : 0.0) * inv_n);
  }
  return loss * inv_n;
}

double logcosh(const Tensor& pred, const Tensor& target, Tensor& grad) {
  AESZ_CHECK(pred.numel() == target.numel());
  const double inv_n = 1.0 / static_cast<double>(pred.numel());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    // log(cosh(d)) computed stably: |d| + log1p(exp(-2|d|)) - log 2.
    const double ad = std::abs(d);
    loss += ad + std::log1p(std::exp(-2.0 * ad)) - std::log(2.0);
    grad[i] = static_cast<float>(std::tanh(d) * inv_n);
  }
  return loss * inv_n;
}

double kl_divergence(const Tensor& mu, const Tensor& logvar, double weight,
                     Tensor& gmu, Tensor& glogvar) {
  AESZ_CHECK(mu.numel() == logvar.numel());
  const std::size_t N = mu.dim(0);
  const double inv_n = 1.0 / static_cast<double>(N);
  double loss = 0.0;
  for (std::size_t i = 0; i < mu.numel(); ++i) {
    const double m = mu[i], lv = logvar[i];
    loss += -0.5 * (1.0 + lv - m * m - std::exp(lv));
    gmu[i] += static_cast<float>(weight * m * inv_n);
    glogvar[i] +=
        static_cast<float>(weight * 0.5 * (std::exp(lv) - 1.0) * inv_n);
  }
  return weight * loss * inv_n;
}

double mmd_rbf(const Tensor& z, const Tensor& prior, double weight,
               Tensor& gz) {
  const std::size_t M = z.dim(0), d = z.dim(1);
  AESZ_CHECK(prior.dim(0) == M && prior.dim(1) == d);
  const double h2 = static_cast<double>(d);
  const double inv_m2 = 1.0 / static_cast<double>(M * M);

  auto k = [&](const float* a, const float* b) {
    double s = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      const double dd = static_cast<double>(a[i]) - b[i];
      s += dd * dd;
    }
    return std::exp(-s / (2.0 * h2));
  };

  double kzz = 0.0, kzp = 0.0, kpp = 0.0;
  for (std::size_t m = 0; m < M; ++m) {
    const float* zm = z.data() + m * d;
    for (std::size_t m2 = 0; m2 < M; ++m2) {
      const float* zm2 = z.data() + m2 * d;
      const float* pm2 = prior.data() + m2 * d;
      const double kv_zz = k(zm, zm2);
      const double kv_zp = k(zm, pm2);
      kzz += kv_zz;
      kzp += kv_zp;
      kpp += k(prior.data() + m * d, pm2);
      // Grad: z_m appears twice in the zz term (row and column), once in zp.
      if (m != m2) {
        const double czz = weight * 2.0 * inv_m2 * kv_zz / h2;
        for (std::size_t i = 0; i < d; ++i)
          gz[m * d + i] -= static_cast<float>(czz * (zm[i] - zm2[i]));
      }
      const double czp = weight * 2.0 * inv_m2 * kv_zp / h2;
      for (std::size_t i = 0; i < d; ++i)
        gz[m * d + i] += static_cast<float>(czp * (zm[i] - pm2[i]));
    }
  }
  return weight * (kzz * inv_m2 - 2.0 * kzp * inv_m2 + kpp * inv_m2);
}

double sliced_wasserstein(const Tensor& z, const Tensor& prior,
                          std::size_t nproj, double weight, Rng& rng,
                          Tensor& gz) {
  const std::size_t M = z.dim(0), d = z.dim(1);
  AESZ_CHECK(prior.dim(0) == M && prior.dim(1) == d);
  std::vector<double> theta(d);
  std::vector<double> a(M), b(M);
  std::vector<std::size_t> ia(M), ib(M);
  const double scale = 1.0 / static_cast<double>(nproj * M);
  double loss = 0.0;

  for (std::size_t l = 0; l < nproj; ++l) {
    // Random direction on the unit sphere.
    double norm = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      theta[i] = rng.gaussian();
      norm += theta[i] * theta[i];
    }
    norm = std::sqrt(std::max(norm, 1e-30));
    for (auto& t : theta) t /= norm;

    for (std::size_t m = 0; m < M; ++m) {
      double pa = 0.0, pb = 0.0;
      for (std::size_t i = 0; i < d; ++i) {
        pa += theta[i] * z[m * d + i];
        pb += theta[i] * prior[m * d + i];
      }
      a[m] = pa;
      b[m] = pb;
    }
    std::iota(ia.begin(), ia.end(), std::size_t{0});
    std::iota(ib.begin(), ib.end(), std::size_t{0});
    std::sort(ia.begin(), ia.end(),
              [&](std::size_t x, std::size_t y) { return a[x] < a[y]; });
    std::sort(ib.begin(), ib.end(),
              [&](std::size_t x, std::size_t y) { return b[x] < b[y]; });

    // Matched by rank: cost sum_r (a_(r) - b_(r))^2.
    for (std::size_t r = 0; r < M; ++r) {
      const double diff = a[ia[r]] - b[ib[r]];
      loss += diff * diff * scale;
      const double g = weight * 2.0 * diff * scale;
      for (std::size_t i = 0; i < d; ++i)
        gz[ia[r] * d + i] += static_cast<float>(g * theta[i]);
    }
  }
  return weight * loss;
}

double dip_penalty(const Tensor& mu, double lambda_od, double lambda_d,
                   Tensor& gmu) {
  const std::size_t N = mu.dim(0), d = mu.dim(1);
  std::vector<double> mean(d, 0.0);
  for (std::size_t n = 0; n < N; ++n)
    for (std::size_t i = 0; i < d; ++i) mean[i] += mu[n * d + i];
  for (auto& m : mean) m /= static_cast<double>(N);

  // Covariance of mu over the batch.
  std::vector<double> cov(d * d, 0.0);
  for (std::size_t n = 0; n < N; ++n)
    for (std::size_t i = 0; i < d; ++i)
      for (std::size_t j = 0; j < d; ++j)
        cov[i * d + j] += (mu[n * d + i] - mean[i]) * (mu[n * d + j] - mean[j]);
  for (auto& c : cov) c /= static_cast<double>(N);

  double loss = 0.0;
  std::vector<double> A(d * d);  // dL/dCov
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      if (i == j) {
        const double dd = cov[i * d + j] - 1.0;
        loss += lambda_d * dd * dd;
        A[i * d + j] = 2.0 * lambda_d * dd;
      } else {
        loss += lambda_od * cov[i * d + j] * cov[i * d + j];
        A[i * d + j] = 2.0 * lambda_od * cov[i * d + j];
      }
    }
  }
  // dL/dmu_n = (2/N) * (mu_n - mean) A  (centering correction vanishes:
  // the centered rows sum to zero and A is symmetric).
  for (std::size_t n = 0; n < N; ++n) {
    for (std::size_t j = 0; j < d; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < d; ++i)
        acc += (mu[n * d + i] - mean[i]) * A[i * d + j];
      gmu[n * d + j] += static_cast<float>(2.0 * acc / static_cast<double>(N));
    }
  }
  return loss;
}

}  // namespace aesz::nn::losses
