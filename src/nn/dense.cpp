#include "nn/dense.hpp"

#include <cmath>
#include <cstring>

#include "nn/gemm.hpp"
#include "util/stage_timer.hpp"

namespace aesz::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : in_(in), out_(out),
      w_(Tensor::randn({out, in}, rng,
                       std::sqrt(2.0f / static_cast<float>(in)))),
      b_(Tensor::zeros({out})) {}

Tensor Linear::forward(const Tensor& x, bool train) {
  prof::StageScope scope(prof::Stage::kInference);
  AESZ_CHECK(x.shape().size() == 2 && x.dim(1) == in_);
  const std::size_t N = x.dim(0);
  Tensor y({N, out_});
  const float* xp = x.data();
  const float* wp = w_.value.data();
  const float* bp = b_.value.data();
  float* yp = y.data();
  // y = x * W^T + b through the blocked kernel (bias seeds the accumulate).
  for (std::size_t n = 0; n < N; ++n)
    std::memcpy(yp + n * out_, bp, out_ * sizeof(float));
  sgemm(false, true, N, out_, in_, xp, in_, wp, in_, 1.0f, yp, out_);
  if (train) x_cache_ = x;
  return y;
}

Tensor Linear::backward(const Tensor& gy) {
  const Tensor& x = x_cache_;
  const std::size_t N = x.dim(0);
  Tensor gx({N, in_});
  const float* xp = x.data();
  const float* wp = w_.value.data();
  const float* gyp = gy.data();
  float* gxp = gx.data();
  float* gwp = w_.grad.data();
  float* gbp = b_.grad.data();

  for (std::size_t n = 0; n < N; ++n) {
    for (std::size_t o = 0; o < out_; ++o) {
      const float g = gyp[n * out_ + o];
      gbp[o] += g;
      const float* xin = xp + n * in_;
      float* grow = gwp + o * in_;
      for (std::size_t i = 0; i < in_; ++i) grow[i] += g * xin[i];
    }
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(N); ++n) {
    const auto un = static_cast<std::size_t>(n);
    for (std::size_t i = 0; i < in_; ++i) {
      float acc = 0.0f;
      for (std::size_t o = 0; o < out_; ++o)
        acc += gyp[un * out_ + o] * wp[o * in_ + i];
      gxp[un * in_ + i] = acc;
    }
  }
  return gx;
}

Tensor Tanh::forward(const Tensor& x, bool train) {
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) y[i] = std::tanh(x[i]);
  if (train) y_cache_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& gy) {
  Tensor gx(gy.shape());
  for (std::size_t i = 0; i < gy.numel(); ++i)
    gx[i] = gy[i] * (1.0f - y_cache_[i] * y_cache_[i]);
  return gx;
}

Tensor LeakyReLU::forward(const Tensor& x, bool train) {
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i)
    y[i] = x[i] > 0.0f ? x[i] : slope_ * x[i];
  if (train) x_cache_ = x;
  return y;
}

Tensor LeakyReLU::backward(const Tensor& gy) {
  Tensor gx(gy.shape());
  for (std::size_t i = 0; i < gy.numel(); ++i)
    gx[i] = gy[i] * (x_cache_[i] > 0.0f ? 1.0f : slope_);
  return gx;
}

}  // namespace aesz::nn
