#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/cpu.hpp"

namespace aesz::nn {
namespace {

// Microkernel footprint: MR x NR accumulators live in registers for the
// whole KC-depth loop (6 x 16 floats = 12 YMM registers in the AVX2+FMA
// variant — the classic 6x16 tile). Block sizes keep the packed A block
// (MC x KC, 96 KiB) in L2 and one B panel strip (KC x NR, 16 KiB) hot in
// L1 across the jr sweep.
constexpr std::size_t MR = 6;
constexpr std::size_t NR = 16;
constexpr std::size_t MC = 96;
constexpr std::size_t KC = 256;
constexpr std::size_t NC = 512;

/// Pack an mc x kc block of op(A) into MR-row strips: strip s holds
/// kc consecutive MR-vectors a[s*MR..s*MR+MR-1][kk], zero-padded past mc.
void pack_a(bool trans, const float* a, std::size_t lda, std::size_t row0,
            std::size_t col0, std::size_t mc, std::size_t kc, float* dst) {
  for (std::size_t s = 0; s < mc; s += MR) {
    const std::size_t rows = std::min(MR, mc - s);
    for (std::size_t kk = 0; kk < kc; ++kk) {
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t i = row0 + s + r, j = col0 + kk;
        *dst++ = trans ? a[j * lda + i] : a[i * lda + j];
      }
      for (std::size_t r = rows; r < MR; ++r) *dst++ = 0.0f;
    }
  }
}

/// Pack a kc x nc panel of op(B) into NR-column strips: strip t holds
/// kc consecutive NR-vectors b[kk][t*NR..t*NR+NR-1], zero-padded past nc.
void pack_b(bool trans, const float* b, std::size_t ldb, std::size_t row0,
            std::size_t col0, std::size_t kc, std::size_t nc, float* dst) {
  for (std::size_t t = 0; t < nc; t += NR) {
    const std::size_t cols = std::min(NR, nc - t);
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const std::size_t i = row0 + kk;
      if (!trans && cols == NR) {
        std::memcpy(dst, b + i * ldb + col0 + t, NR * sizeof(float));
        dst += NR;
        continue;
      }
      for (std::size_t cc = 0; cc < cols; ++cc) {
        const std::size_t j = col0 + t + cc;
        *dst++ = trans ? b[j * ldb + i] : b[i * ldb + j];
      }
      for (std::size_t cc = cols; cc < NR; ++cc) *dst++ = 0.0f;
    }
  }
}

// ---------------------------------------------------------------------
// MR x NR register-tile microkernels: out = Ap-strip * Bp-strip over kc.
// The accumulators are explicit vector variables (GCC/Clang vector
// extensions), which is what actually keeps the 6x16 tile in registers —
// an indexed local array defeats the autovectorizer's registerization and
// runs ~40x slower. On x86-64 an AVX2+FMA variant is selected once at
// runtime via cpuid (12 YMM accumulators); the always-available SSE2
// variant sweeps the tile in two 8-column halves (12 XMM accumulators
// each) so it also stays register-resident. Other targets get the plain
// scalar loop nest.
// ---------------------------------------------------------------------

[[maybe_unused]] void micro_kernel_scalar(std::size_t kc, const float* ap,
                                          const float* bp, float* out) {
  float acc[MR * NR] = {};
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const float* av = ap + kk * MR;
    const float* bv = bp + kk * NR;
    for (std::size_t r = 0; r < MR; ++r) {
      const float arv = av[r];
      for (std::size_t cc = 0; cc < NR; ++cc)
        acc[r * NR + cc] += arv * bv[cc];
    }
  }
  std::memcpy(out, acc, sizeof(acc));
}

#ifdef AESZ_X86_DISPATCH

typedef float v8sf __attribute__((vector_size(32)));
typedef float v4sf __attribute__((vector_size(16)));

__attribute__((target("avx2,fma"))) void micro_kernel_avx2(
    std::size_t kc, const float* ap, const float* bp, float* out) {
  v8sf acc[MR][2] = {};
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const float* av = ap + kk * MR;
    const float* bv = bp + kk * NR;
    v8sf b0, b1;  // memcpy = unaligned vector load
    std::memcpy(&b0, bv, sizeof(b0));
    std::memcpy(&b1, bv + 8, sizeof(b1));
    for (std::size_t r = 0; r < MR; ++r) {
      const float s = av[r];
      const v8sf ar = {s, s, s, s, s, s, s, s};
      acc[r][0] += ar * b0;
      acc[r][1] += ar * b1;
    }
  }
  for (std::size_t r = 0; r < MR; ++r) {
    std::memcpy(out + r * NR, &acc[r][0], sizeof(v8sf));
    std::memcpy(out + r * NR + 8, &acc[r][1], sizeof(v8sf));
  }
}

void micro_kernel_sse(std::size_t kc, const float* ap, const float* bp,
                      float* out) {
  for (std::size_t half = 0; half < 2; ++half) {
    const float* bph = bp + half * 8;
    v4sf acc[MR][2] = {};
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const float* av = ap + kk * MR;
      const float* bv = bph + kk * NR;
      v4sf b0, b1;
      std::memcpy(&b0, bv, sizeof(b0));
      std::memcpy(&b1, bv + 4, sizeof(b1));
      for (std::size_t r = 0; r < MR; ++r) {
        const float s = av[r];
        const v4sf ar = {s, s, s, s};
        acc[r][0] += ar * b0;
        acc[r][1] += ar * b1;
      }
    }
    for (std::size_t r = 0; r < MR; ++r) {
      std::memcpy(out + r * NR + half * 8, &acc[r][0], sizeof(v4sf));
      std::memcpy(out + r * NR + half * 8 + 4, &acc[r][1], sizeof(v4sf));
    }
  }
}
#endif  // x86-64 GNU/Clang

using MicroFn = void (*)(std::size_t, const float*, const float*, float*);

MicroFn pick_micro_kernel() {
#ifdef AESZ_X86_DISPATCH
  if (util::cpu_has_avx2_fma()) return micro_kernel_avx2;
  return micro_kernel_sse;
#else
  return micro_kernel_scalar;
#endif
}

const MicroFn g_micro_kernel = pick_micro_kernel();

thread_local std::vector<float> tl_pack_a;
thread_local std::vector<float> tl_pack_b;
thread_local std::vector<float> tl_col;

}  // namespace

void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
           std::size_t k, const float* a, std::size_t lda, const float* b,
           std::size_t ldb, float beta, float* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j)
        c[i * ldc + j] = beta == 0.0f ? 0.0f : beta * c[i * ldc + j];
    return;
  }

  tl_pack_a.resize(((MC + MR - 1) / MR) * MR * KC);
  tl_pack_b.resize(((NC + NR - 1) / NR) * NR * KC);
  float* ap = tl_pack_a.data();
  float* bp = tl_pack_b.data();

  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      // First depth block applies the caller's beta; later blocks add.
      const float eb = pc == 0 ? beta : 1.0f;
      pack_b(trans_b, b, ldb, pc, jc, kc, nc, bp);
      for (std::size_t ic = 0; ic < m; ic += MC) {
        const std::size_t mc = std::min(MC, m - ic);
        pack_a(trans_a, a, lda, ic, pc, mc, kc, ap);
        for (std::size_t jr = 0; jr < nc; jr += NR) {
          const std::size_t cols = std::min(NR, nc - jr);
          const float* bs = bp + (jr / NR) * NR * kc;
          for (std::size_t ir = 0; ir < mc; ir += MR) {
            const std::size_t rows = std::min(MR, mc - ir);
            float acc[MR * NR] = {};
            g_micro_kernel(kc, ap + (ir / MR) * MR * kc, bs, acc);
            for (std::size_t r = 0; r < rows; ++r) {
              float* crow = c + (ic + ir + r) * ldc + jc + jr;
              const float* arow = acc + r * NR;
              if (eb == 0.0f) {
                for (std::size_t cc = 0; cc < cols; ++cc) crow[cc] = arow[cc];
              } else if (eb == 1.0f) {
                for (std::size_t cc = 0; cc < cols; ++cc) crow[cc] += arow[cc];
              } else {
                for (std::size_t cc = 0; cc < cols; ++cc)
                  crow[cc] = eb * crow[cc] + arow[cc];
              }
            }
          }
        }
      }
    }
  }
}

namespace {
using idx = std::ptrdiff_t;
using detail::out_range;

/// Scratch for the batched kernels' sample-interleaved matrices (the
/// column matrix lives in tl_col, as for the per-sample kernels).
thread_local std::vector<float> tl_batch;

/// im2col of ONE sample into a column matrix shared by a sample group:
/// row r of the group matrix has leading dimension `ld` and this sample
/// owns the `ncols`-wide slice starting at column `col_off`. With
/// ld == ncols and col_off == 0 this is exactly the single-sample im2col.
void im2col_2d(const float* x, std::size_t in_c, std::size_t h,
               std::size_t w, std::size_t kk, std::size_t stride,
               std::size_t pad, std::size_t oh, std::size_t ow, float* col,
               std::size_t ld, std::size_t col_off) {
  const std::size_t ncols = oh * ow;
  const idx S = static_cast<idx>(stride), P = static_cast<idx>(pad);
  // Row (ic, kh, kw) is the input tap shifted to each output position;
  // zeros where the tap falls into padding.
  for (std::size_t ic = 0; ic < in_c; ++ic) {
    const float* xplane = x + ic * h * w;
    for (std::size_t khi = 0; khi < kk; ++khi) {
      idx oh_lo, oh_hi;
      out_range(static_cast<idx>(oh), static_cast<idx>(h), S, P,
                static_cast<idx>(khi), oh_lo, oh_hi);
      for (std::size_t kwi = 0; kwi < kk; ++kwi) {
        float* row = col + ((ic * kk + khi) * kk + kwi) * ld + col_off;
        std::memset(row, 0, ncols * sizeof(float));
        idx ow_lo, ow_hi;
        out_range(static_cast<idx>(ow), static_cast<idx>(w), S, P,
                  static_cast<idx>(kwi), ow_lo, ow_hi);
        for (idx o = oh_lo; o < oh_hi; ++o) {
          const idx ih = o * S - P + static_cast<idx>(khi);
          const float* src =
              xplane + ih * static_cast<idx>(w) - P + static_cast<idx>(kwi);
          float* dst = row + o * static_cast<idx>(ow);
          if (S == 1) {
            std::memcpy(dst + ow_lo, src + ow_lo,
                        static_cast<std::size_t>(ow_hi - ow_lo) *
                            sizeof(float));
          } else {
            for (idx oo = ow_lo; oo < ow_hi; ++oo) dst[oo] = src[oo * S];
          }
        }
      }
    }
  }
}

/// col2im scatter of ONE sample out of a group column matrix (leading
/// dimension `ld`, sample slice at `col_off`) into its (out_c, oh, ow)
/// output plane — same index math as the direct transposed-conv scatter.
void col2im_2d(const float* col, std::size_t ld, std::size_t col_off,
               std::size_t out_c, std::size_t h, std::size_t w,
               std::size_t kk, std::size_t stride, std::size_t pad,
               const float* bias, float* y, std::size_t oh, std::size_t ow) {
  const idx S = static_cast<idx>(stride), P = static_cast<idx>(pad);
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    const float bv = bias ? bias[oc] : 0.0f;
    float* yplane = y + oc * oh * ow;
    for (std::size_t i = 0; i < oh * ow; ++i) yplane[i] = bv;
  }
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    float* yplane = y + oc * oh * ow;
    for (std::size_t khi = 0; khi < kk; ++khi) {
      idx ih_lo, ih_hi;  // valid i: i*s + kh - p in [0, oh)
      out_range(static_cast<idx>(h), static_cast<idx>(oh), S, P,
                static_cast<idx>(khi), ih_lo, ih_hi);
      for (std::size_t kwi = 0; kwi < kk; ++kwi) {
        const float* row =
            col + ((oc * kk + khi) * kk + kwi) * ld + col_off;
        idx iw_lo, iw_hi;
        out_range(static_cast<idx>(w), static_cast<idx>(ow), S, P,
                  static_cast<idx>(kwi), iw_lo, iw_hi);
        for (idx ih = ih_lo; ih < ih_hi; ++ih) {
          const idx o = ih * S + static_cast<idx>(khi) - P;
          const float* src = row + ih * static_cast<idx>(w);
          float* dst = yplane + o * static_cast<idx>(ow) - P +
                       static_cast<idx>(kwi);
          for (idx iw = iw_lo; iw < iw_hi; ++iw) dst[iw * S] += src[iw];
        }
      }
    }
  }
}

/// Samples per SGEMM group, from layer shapes only (determinism: never a
/// function of the sample count remainder, thread count, or load). Bounds
/// the interleaved col + scratch matrices to ~8 MiB so grouping buys
/// packed-panel reuse without blowing the cache.
std::size_t conv_group_size(std::size_t per_sample_floats) {
  constexpr std::size_t kBudgetFloats = std::size_t{2} << 20;
  if (per_sample_floats == 0) return 1;
  return std::max<std::size_t>(1, kBudgetFloats / per_sample_floats);
}

}  // namespace

void conv2d_forward(const float* x, std::size_t in_c, std::size_t h,
                    std::size_t w, const float* wgt, std::size_t out_c,
                    std::size_t kk, std::size_t stride, std::size_t pad,
                    const float* bias, float* y, std::size_t oh,
                    std::size_t ow) {
  const std::size_t kdim = in_c * kk * kk;  // gemm depth
  const std::size_t ncols = oh * ow;
  tl_col.resize(kdim * ncols);
  float* col = tl_col.data();
  im2col_2d(x, in_c, h, w, kk, stride, pad, oh, ow, col, ncols, 0);

  // y = wgt (out_c x kdim) * col (+ bias broadcast per output channel).
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    const float bv = bias ? bias[oc] : 0.0f;
    float* yrow = y + oc * ncols;
    for (std::size_t i = 0; i < ncols; ++i) yrow[i] = bv;
  }
  sgemm(false, false, out_c, ncols, kdim, wgt, kdim, col, ncols, 1.0f, y,
        ncols);
}

void conv2d_forward_batched(const float* x, std::size_t n, std::size_t in_c,
                            std::size_t h, std::size_t w, const float* wgt,
                            std::size_t out_c, std::size_t kk,
                            std::size_t stride, std::size_t pad,
                            const float* bias, float* y, std::size_t oh,
                            std::size_t ow) {
  if (n == 0) return;
  const std::size_t kdim = in_c * kk * kk;
  const std::size_t ncols = oh * ow;
  const std::size_t group =
      std::min(n, conv_group_size((kdim + out_c) * ncols));
  tl_col.resize(kdim * group * ncols);
  tl_batch.resize(out_c * group * ncols);
  float* col = tl_col.data();
  float* buf = tl_batch.data();

  for (std::size_t g0 = 0; g0 < n; g0 += group) {
    const std::size_t gn = std::min(group, n - g0);
    const std::size_t ld = gn * ncols;
    // Samples side by side along the column dimension: one packed weight
    // panel then serves the whole group. Column position does not change
    // any element's accumulation order, so each sample's result is
    // bitwise what a solo conv2d_forward would produce.
#pragma omp parallel for schedule(static)
    for (idx gi = 0; gi < static_cast<idx>(gn); ++gi) {
      const auto ug = static_cast<std::size_t>(gi);
      im2col_2d(x + (g0 + ug) * in_c * h * w, in_c, h, w, kk, stride, pad,
                oh, ow, col, ld, ug * ncols);
    }
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      const float bv = bias ? bias[oc] : 0.0f;
      float* brow = buf + oc * ld;
      for (std::size_t i = 0; i < ld; ++i) brow[i] = bv;
    }
    sgemm(false, false, out_c, ld, kdim, wgt, kdim, col, ld, 1.0f, buf, ld);
    // De-interleave (out_c x group*ncols) back into per-sample NCHW.
#pragma omp parallel for schedule(static)
    for (idx gi = 0; gi < static_cast<idx>(gn); ++gi) {
      const auto ug = static_cast<std::size_t>(gi);
      for (std::size_t oc = 0; oc < out_c; ++oc)
        std::memcpy(y + ((g0 + ug) * out_c + oc) * ncols,
                    buf + oc * ld + ug * ncols, ncols * sizeof(float));
    }
  }
}

void convt2d_forward(const float* x, std::size_t in_c, std::size_t h,
                     std::size_t w, const float* wgt, std::size_t out_c,
                     std::size_t kk, std::size_t stride, std::size_t pad,
                     const float* bias, float* y, std::size_t oh,
                     std::size_t ow) {
  const std::size_t kdim = out_c * kk * kk;
  const std::size_t ncols = h * w;
  tl_col.resize(kdim * ncols);
  float* col = tl_col.data();

  // colmat (kdim x h*w) = wgt^T (kdim x in_c) * x (in_c x h*w); the stored
  // weight is (in_c, out_c*kk*kk), so trans_a with lda = kdim.
  sgemm(true, false, kdim, ncols, in_c, wgt, kdim, x, ncols, 0.0f, col,
        ncols);
  col2im_2d(col, ncols, 0, out_c, h, w, kk, stride, pad, bias, y, oh, ow);
}

void convt2d_forward_batched(const float* x, std::size_t n, std::size_t in_c,
                             std::size_t h, std::size_t w, const float* wgt,
                             std::size_t out_c, std::size_t kk,
                             std::size_t stride, std::size_t pad,
                             const float* bias, float* y, std::size_t oh,
                             std::size_t ow) {
  if (n == 0) return;
  const std::size_t kdim = out_c * kk * kk;
  const std::size_t ncols = h * w;
  const std::size_t group =
      std::min(n, conv_group_size((kdim + in_c) * ncols));
  tl_col.resize(kdim * group * ncols);
  tl_batch.resize(in_c * group * ncols);
  float* col = tl_col.data();
  float* xbuf = tl_batch.data();

  for (std::size_t g0 = 0; g0 < n; g0 += group) {
    const std::size_t gn = std::min(group, n - g0);
    const std::size_t ld = gn * ncols;
    // Gather NCHW samples into one (in_c x group*ncols) right-hand side so
    // the transposed weight packs once per group.
#pragma omp parallel for schedule(static)
    for (idx gi = 0; gi < static_cast<idx>(gn); ++gi) {
      const auto ug = static_cast<std::size_t>(gi);
      for (std::size_t ic = 0; ic < in_c; ++ic)
        std::memcpy(xbuf + ic * ld + ug * ncols,
                    x + ((g0 + ug) * in_c + ic) * ncols,
                    ncols * sizeof(float));
    }
    sgemm(true, false, kdim, ld, in_c, wgt, kdim, xbuf, ld, 0.0f, col, ld);
#pragma omp parallel for schedule(static)
    for (idx gi = 0; gi < static_cast<idx>(gn); ++gi) {
      const auto ug = static_cast<std::size_t>(gi);
      col2im_2d(col, ld, ug * ncols, out_c, h, w, kk, stride, pad, bias,
                y + (g0 + ug) * out_c * oh * ow, oh, ow);
    }
  }
}

}  // namespace aesz::nn
