#include "nn/gdn.hpp"

#include <cmath>

namespace aesz::nn {
namespace {

constexpr float kBetaMin = 1e-6f;

/// Spatial extent = product of dims after the channel axis.
std::size_t spatial_of(const Tensor& x) {
  std::size_t sp = 1;
  for (std::size_t i = 2; i < x.shape().size(); ++i) sp *= x.dim(i);
  return sp;
}

}  // namespace

GDN::GDN(std::size_t channels, bool inverse)
    : c_(channels), inverse_(inverse), beta_(Tensor::zeros({channels})),
      gamma_(Tensor::zeros({channels, channels})) {
  // Standard initialization: beta = 1, gamma = 0.1 * I (near-identity).
  for (std::size_t i = 0; i < c_; ++i) {
    beta_.value[i] = 1.0f;
    gamma_.value[i * c_ + i] = 0.1f;
  }
}

Tensor GDN::forward(const Tensor& x, bool train) {
  AESZ_CHECK(x.shape().size() >= 2 && x.dim(1) == c_);
  const std::size_t N = x.dim(0), SP = spatial_of(x);
  Tensor y(x.shape());
  Tensor s({N, c_, SP});
  const float* xp = x.data();
  const float* bp = beta_.value.data();
  const float* gp = gamma_.value.data();
  float* yp = y.data();
  float* sp_ = s.data();

#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(N); ++n) {
    const auto un = static_cast<std::size_t>(n);
    for (std::size_t p = 0; p < SP; ++p) {
      // Pool: s_i = beta_i + sum_j gamma_ij x_j^2 at this location.
      for (std::size_t i = 0; i < c_; ++i) {
        float acc = bp[i];
        const float* grow = gp + i * c_;
        for (std::size_t j = 0; j < c_; ++j) {
          const float xj = xp[(un * c_ + j) * SP + p];
          acc += grow[j] * xj * xj;
        }
        sp_[(un * c_ + i) * SP + p] = acc;
        const float xi = xp[(un * c_ + i) * SP + p];
        const float root = std::sqrt(acc);
        yp[(un * c_ + i) * SP + p] = inverse_ ? xi * root : xi / root;
      }
    }
  }
  if (train) {
    x_cache_ = x;
    s_cache_ = s;
  }
  return y;
}

Tensor GDN::backward(const Tensor& gy) {
  const Tensor& x = x_cache_;
  const std::size_t N = x.dim(0), SP = spatial_of(x);
  Tensor gx(x.shape());
  const float* xp = x.data();
  const float* gp = gamma_.value.data();
  const float* gyp = gy.data();
  const float* sp_ = s_cache_.data();
  float* gxp = gx.data();
  float* gbp = beta_.grad.data();
  float* ggp = gamma_.grad.data();

  // Serial over locations for the parameter accumulation; the inner loops
  // are O(C^2) which dominates, and C is small (<=128).
  std::vector<float> t(c_);  // t_i = gy_i * x_i * p * s_i^(p-1)
  for (std::size_t n = 0; n < N; ++n) {
    for (std::size_t p = 0; p < SP; ++p) {
      for (std::size_t i = 0; i < c_; ++i) {
        const std::size_t idx = (n * c_ + i) * SP + p;
        const float s = sp_[idx];
        const float spow1 = inverse_ ? 0.5f / std::sqrt(s)       // p*s^(p-1)
                                     : -0.5f / (s * std::sqrt(s));
        t[i] = gyp[idx] * xp[idx] * spow1;
        gbp[i] += t[i];
        // Direct term: gy_i * s_i^p.
        const float spow = inverse_ ? std::sqrt(s) : 1.0f / std::sqrt(s);
        gxp[idx] = gyp[idx] * spow;
      }
      // Pool terms: dL/dx_k += 2 x_k * sum_i t_i gamma_ik;
      //             dL/dgamma_ij += t_i * x_j^2.
      for (std::size_t i = 0; i < c_; ++i) {
        const float ti = t[i];
        if (ti == 0.0f) continue;
        float* ggrow = ggp + i * c_;
        const float* grow = gp + i * c_;
        for (std::size_t j = 0; j < c_; ++j) {
          const float xj = xp[(n * c_ + j) * SP + p];
          ggrow[j] += ti * xj * xj;
          gxp[(n * c_ + j) * SP + p] += 2.0f * xj * ti * grow[j];
        }
      }
    }
  }
  return gx;
}

void GDN::project() {
  for (std::size_t i = 0; i < c_; ++i)
    beta_.value[i] = std::max(beta_.value[i], kBetaMin);
  for (std::size_t i = 0; i < c_ * c_; ++i)
    gamma_.value[i] = std::max(gamma_.value[i], 0.0f);
}

}  // namespace aesz::nn
