#pragma once

#include <string>

#include "nn/autoencoder.hpp"
#include "nn/optimizer.hpp"

namespace aesz::nn {

/// The eight autoencoder variants the paper compares in Table I.
enum class AEVariant {
  kAE,         // vanilla autoencoder (MSE only)
  kVAE,        // Kingma & Welling
  kBetaVAE,    // Higgins et al. (scaled KL)
  kDIPVAE,     // Kumar et al. (covariance penalty on mu)
  kInfoVAE,    // Zhao et al. (MMD regularizer)
  kLogCoshVAE, // Chen et al. (log-cosh reconstruction)
  kWAE,        // Tolstikhin et al. (MMD on deterministic latents)
  kSWAE,       // Kolouri et al. — the paper's pick for AE-SZ
};

std::string variant_name(AEVariant v);
bool variant_is_variational(AEVariant v);

/// Loss-weight knobs. Defaults tuned for scientific blocks normalized to
/// [-1, 1]; SWAE's lambda is the paper's regularization coefficient.
struct VariantHyper {
  double kl_weight = 1e-3;        // VAE family
  double beta = 4.0;              // beta-VAE multiplier on kl_weight
  double dip_lambda_od = 1e-2;    // DIP-VAE off-diagonal
  double dip_lambda_d = 1e-2;     // DIP-VAE diagonal
  double mmd_weight = 1e-2;       // InfoVAE / WAE
  double swae_lambda = 1e-2;      // SWAE sliced-Wasserstein coefficient
  std::size_t swae_projections = 32;  // L in paper Eq. 1
  float lr = 1e-3f;
};

/// Owns a ConvAutoencoder + Adam and implements the per-variant training
/// objective. One train_step = forward + loss + backward + Adam update on
/// one minibatch of blocks (N, 1, extent...) already normalized to [-1, 1].
class VariantTrainer {
 public:
  VariantTrainer(AEConfig cfg, AEVariant variant, std::uint64_t seed,
                 VariantHyper hyper = {});

  /// Returns the total loss of this minibatch (recon + regularizers).
  double train_step(const Tensor& batch);

  /// Deterministic reconstruction (VAE family uses the mean latent), as the
  /// paper's compression path does.
  Tensor reconstruct(const Tensor& batch);

  /// Deterministic latent (mu for the VAE family).
  Tensor encode_latent(const Tensor& batch);

  ConvAutoencoder& model() { return model_; }
  AEVariant variant() const { return variant_; }
  void set_lr(float lr) { opt_.set_lr(lr); }

 private:
  AEVariant variant_;
  VariantHyper hyper_;
  ConvAutoencoder model_;
  Adam opt_;
  Rng rng_;
};

}  // namespace aesz::nn
