#pragma once

#include <algorithm>
#include <cstddef>

namespace aesz::nn {

namespace detail {
/// Valid output range [lo, hi) for "o*s - p + k in [0, n)" — the window
/// math shared by the direct convolution loops (conv.cpp) and the
/// im2col/col2im kernels (gemm.cpp), so forward and backward can never
/// drift apart.
inline void out_range(std::ptrdiff_t o_extent, std::ptrdiff_t n,
                      std::ptrdiff_t s, std::ptrdiff_t p, std::ptrdiff_t k,
                      std::ptrdiff_t& lo, std::ptrdiff_t& hi) {
  const std::ptrdiff_t a = p - k;  // o*s >= a
  lo = a > 0 ? (a + s - 1) / s : 0;
  const std::ptrdiff_t b = n - 1 + p - k;  // o*s <= b
  hi = b < 0 ? 0 : std::min(o_extent, b / s + 1);
}
}  // namespace detail

/// Register-tiled, cache-blocked single-precision GEMM, row-major:
///
///   C (m x n) = op(A) (m x k) * op(B) (k x n) + beta * C
///
/// op(X) = X or X^T per the trans flags; lda/ldb are the leading dimensions
/// of the *stored* matrices (so for trans_a the stored A is k x m with
/// leading dimension lda). beta = 0 overwrites C without reading it.
///
/// Panels of A and B are packed into contiguous micro-strips (BLIS-style
/// MC/KC/NC blocking) and consumed by an MR x NR register microkernel, so
/// the inner loop is pure FMA over L1-resident data regardless of the
/// transpose flags. Single-threaded by design: the parallel pipeline
/// (src/pipeline/) already owns inter-core parallelism.
void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
           std::size_t k, const float* a, std::size_t lda, const float* b,
           std::size_t ldb, float beta, float* c, std::size_t ldc);

/// Conv2d forward for one image via im2col + sgemm.
///   x    (in_c, h, w), NCHW plane of one sample
///   wgt  (out_c, in_c, kk, kk)
///   bias (out_c) or nullptr
///   y    (out_c, oh, ow), overwritten
/// oh/ow must equal (h + 2*pad - kk)/stride + 1.
void conv2d_forward(const float* x, std::size_t in_c, std::size_t h,
                    std::size_t w, const float* wgt, std::size_t out_c,
                    std::size_t kk, std::size_t stride, std::size_t pad,
                    const float* bias, float* y, std::size_t oh,
                    std::size_t ow);

/// ConvT2d forward for one image via sgemm + col2im scatter.
///   x    (in_c, h, w)
///   wgt  (in_c, out_c, kk, kk)  — transposed-conv weight layout
///   y    (out_c, oh, ow), overwritten; oh = (h-1)*stride + kk + out_pad
///        - 2*pad (computed by the caller).
void convt2d_forward(const float* x, std::size_t in_c, std::size_t h,
                     std::size_t w, const float* wgt, std::size_t out_c,
                     std::size_t kk, std::size_t stride, std::size_t pad,
                     const float* bias, float* y, std::size_t oh,
                     std::size_t ow);

/// Batched Conv2d forward: n samples in NCHW layout, one im2col matrix and
/// one SGEMM per sample *group* instead of per sample, so the packed
/// weight panels are amortized across the group — the win that makes
/// cross-request inference batching pay off on the latency bench.
///
/// Samples are grouped so the column matrix stays cache-friendly; the
/// group size is a pure function of the layer shapes (never of n or the
/// thread count), and every output element accumulates in exactly the
/// per-sample order — results are bitwise identical to n calls of
/// conv2d_forward, which is what lets the server coalesce requests without
/// changing a single output byte.
void conv2d_forward_batched(const float* x, std::size_t n, std::size_t in_c,
                            std::size_t h, std::size_t w, const float* wgt,
                            std::size_t out_c, std::size_t kk,
                            std::size_t stride, std::size_t pad,
                            const float* bias, float* y, std::size_t oh,
                            std::size_t ow);

/// Batched ConvT2d forward; same grouping/identity contract as
/// conv2d_forward_batched.
void convt2d_forward_batched(const float* x, std::size_t n, std::size_t in_c,
                             std::size_t h, std::size_t w, const float* wgt,
                             std::size_t out_c, std::size_t kk,
                             std::size_t stride, std::size_t pad,
                             const float* bias, float* y, std::size_t oh,
                             std::size_t ow);

}  // namespace aesz::nn
