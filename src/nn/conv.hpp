#pragma once

#include "nn/layer.hpp"

namespace aesz::nn {

/// 2-D convolution, NCHW layout, square kernel, zero padding.
/// Weight [out_c, in_c, k, k]; He initialization.
class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_c, std::size_t out_c, std::size_t k,
         std::size_t stride, std::size_t pad, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }

  std::size_t out_size(std::size_t in) const {
    return (in + 2 * pad_ - k_) / stride_ + 1;
  }

 private:
  std::size_t in_c_, out_c_, k_, stride_, pad_;
  Param w_, b_;
  Tensor x_cache_;
};

/// 2-D transposed convolution (stride-2 upsampling in the decoder).
/// Weight [in_c, out_c, k, k]; out = (in-1)*stride - 2*pad + k + out_pad.
class ConvT2d final : public Layer {
 public:
  ConvT2d(std::size_t in_c, std::size_t out_c, std::size_t k,
          std::size_t stride, std::size_t pad, std::size_t out_pad, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }

  std::size_t out_size(std::size_t in) const {
    return (in - 1) * stride_ + k_ + out_pad_ - 2 * pad_;
  }

 private:
  std::size_t in_c_, out_c_, k_, stride_, pad_, out_pad_;
  Param w_, b_;
  Tensor x_cache_;
};

/// 3-D convolution, NCDHW layout.
class Conv3d final : public Layer {
 public:
  Conv3d(std::size_t in_c, std::size_t out_c, std::size_t k,
         std::size_t stride, std::size_t pad, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }

  std::size_t out_size(std::size_t in) const {
    return (in + 2 * pad_ - k_) / stride_ + 1;
  }

 private:
  std::size_t in_c_, out_c_, k_, stride_, pad_;
  Param w_, b_;
  Tensor x_cache_;
};

/// 3-D transposed convolution.
class ConvT3d final : public Layer {
 public:
  ConvT3d(std::size_t in_c, std::size_t out_c, std::size_t k,
          std::size_t stride, std::size_t pad, std::size_t out_pad, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }

  std::size_t out_size(std::size_t in) const {
    return (in - 1) * stride_ + k_ + out_pad_ - 2 * pad_;
  }

 private:
  std::size_t in_c_, out_c_, k_, stride_, pad_, out_pad_;
  Param w_, b_;
  Tensor x_cache_;
};

}  // namespace aesz::nn
