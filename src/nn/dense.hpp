#pragma once

#include "nn/layer.hpp"

namespace aesz::nn {

/// Fully connected layer: y = x W^T + b, x of shape (N, in), W (out, in).
/// Used for the latent resize at the encoder/decoder boundary (paper Fig 3).
class Linear final : public Layer {
 public:
  Linear(std::size_t in, std::size_t out, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }

 private:
  std::size_t in_, out_;
  Param w_, b_;
  Tensor x_cache_;
};

/// Elementwise tanh — the decoder's final activation (output in [-1, 1],
/// matching the input normalization).
class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;

 private:
  Tensor y_cache_;
};

/// Leaky ReLU (slope 0 = plain ReLU). Present for the activation ablation
/// the paper cites (GDN beats ReLU/LeakyReLU on reconstruction quality).
class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.0f) : slope_(slope) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;

 private:
  float slope_;
  Tensor x_cache_;
};

}  // namespace aesz::nn
