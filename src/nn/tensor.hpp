#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace aesz::nn {

/// Dense row-major float tensor. Deliberately minimal: the layers own all
/// layout knowledge (N,C,H,W / N,C,D,H,W) and do explicit index math, so
/// the tensor needs only shape bookkeeping and flat storage.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape)
      : shape_(std::move(shape)),
        data_(std::accumulate(shape_.begin(), shape_.end(), std::size_t{1},
                              std::multiplies<>()),
              0.0f) {}

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }

  /// Gaussian init scaled by `stddev` (layers pass fan-in based scales).
  static Tensor randn(std::vector<std::size_t> shape, Rng& rng,
                      float stddev) {
    Tensor t(std::move(shape));
    for (float& v : t.data_) v = stddev * rng.gaussianf();
    return t;
  }

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t i) const { return shape_[i]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0f); }

  /// Reinterpret with a new shape of equal element count.
  Tensor reshaped(std::vector<std::size_t> shape) const {
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_ = data_;
    AESZ_CHECK_MSG(
        std::accumulate(t.shape_.begin(), t.shape_.end(), std::size_t{1},
                        std::multiplies<>()) == data_.size(),
        "reshape element-count mismatch");
    return t;
  }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace aesz::nn
