#pragma once

#include "nn/tensor.hpp"

namespace aesz::nn::losses {

/// All losses return the scalar loss and write/accumulate dL/d(input) into
/// the provided grad tensors. Scaling convention: mean over batch elements
/// (and data elements for reconstruction losses), so loss magnitudes are
/// comparable across block sizes.

/// Mean squared error; grad w.r.t. pred (overwrites `grad`).
double mse(const Tensor& pred, const Tensor& target, Tensor& grad);

/// Mean absolute error; grad w.r.t. pred (overwrites `grad`).
double l1(const Tensor& pred, const Tensor& target, Tensor& grad);

/// log-cosh reconstruction loss (LogCosh-VAE, Chen et al. 2018).
double logcosh(const Tensor& pred, const Tensor& target, Tensor& grad);

/// KL( N(mu, diag exp(logvar)) || N(0, I) ), mean per batch element;
/// grads are *accumulated* into gmu/glogvar.
double kl_divergence(const Tensor& mu, const Tensor& logvar, double weight,
                     Tensor& gmu, Tensor& glogvar);

/// Biased RBF-kernel MMD^2 between batch latents `z` (M, d) and prior
/// samples `prior` (M, d); grad accumulated into gz. Bandwidth^2 = d
/// (the InfoVAE/WAE-MMD convention).
double mmd_rbf(const Tensor& z, const Tensor& prior, double weight,
               Tensor& gz);

/// Sliced-Wasserstein distance (Kolouri et al. 2018, paper Eq. 1): average
/// over `nproj` random 1-D projections of the squared distance between the
/// sorted projected latents and sorted projected prior samples. Grad is
/// accumulated into gz. O(L M log M) — the cost advantage over WAE the
/// paper cites.
double sliced_wasserstein(const Tensor& z, const Tensor& prior,
                          std::size_t nproj, double weight, Rng& rng,
                          Tensor& gz);

/// DIP-VAE (Kumar et al. 2018) disentanglement penalty on the covariance of
/// mu: lambda_od * sum off-diag^2 + lambda_d * sum (diag - 1)^2.
double dip_penalty(const Tensor& mu, double lambda_od, double lambda_d,
                   Tensor& gmu);

}  // namespace aesz::nn::losses
