#pragma once

#include <cstddef>
#include <span>

#include "util/dims.hpp"

namespace aesz::lorenzo {

/// First- and second-order Lorenzo predictors (Ibarria et al. 2003), the
/// workhorse predictor of the SZ family. Out-of-range neighbors read as 0,
/// matching SZ semantics. All functions predict from the *reconstructed*
/// buffer so compression and decompression stay bit-identical.

inline float predict1(const float* r, std::size_t i) {
  return i >= 1 ? r[i - 1] : 0.0f;
}

inline float predict2(const float* r, const Dims& d, std::size_t i,
                      std::size_t j) {
  const std::size_t w = d[1];
  const float a = j >= 1 ? r[i * w + (j - 1)] : 0.0f;          // west
  const float b = i >= 1 ? r[(i - 1) * w + j] : 0.0f;          // north
  const float c = (i >= 1 && j >= 1) ? r[(i - 1) * w + (j - 1)] : 0.0f;
  return a + b - c;
}

inline float predict3(const float* r, const Dims& d, std::size_t i,
                      std::size_t j, std::size_t k) {
  const std::size_t n1 = d[1], n2 = d[2];
  auto at = [&](std::size_t a, std::size_t b, std::size_t c) {
    return r[(a * n1 + b) * n2 + c];
  };
  const bool I = i >= 1, J = j >= 1, K = k >= 1;
  const float f100 = I ? at(i - 1, j, k) : 0.0f;
  const float f010 = J ? at(i, j - 1, k) : 0.0f;
  const float f001 = K ? at(i, j, k - 1) : 0.0f;
  const float f110 = (I && J) ? at(i - 1, j - 1, k) : 0.0f;
  const float f101 = (I && K) ? at(i - 1, j, k - 1) : 0.0f;
  const float f011 = (J && K) ? at(i, j - 1, k - 1) : 0.0f;
  const float f111 = (I && J && K) ? at(i - 1, j - 1, k - 1) : 0.0f;
  return f100 + f010 + f001 - f110 - f101 - f011 + f111;
}

/// Second-order Lorenzo (SZauto; Zhao et al., HPDC'20): exact for quadratic
/// fields. 1-D needs three points: 3 f(i-1) - 3 f(i-2) + f(i-3)
/// (annihilates the third difference).
inline float predict1_2nd(const float* r, std::size_t i) {
  if (i >= 3) return 3.0f * r[i - 1] - 3.0f * r[i - 2] + r[i - 3];
  if (i >= 2) return 2.0f * r[i - 1] - r[i - 2];
  return predict1(r, i);
}

/// 2-D second-order stencil (binomial weights over a 3x3 causal corner).
inline float predict2_2nd(const float* r, const Dims& d, std::size_t i,
                          std::size_t j) {
  if (i < 2 || j < 2) return predict2(r, d, i, j);
  const std::size_t w = d[1];
  auto at = [&](std::size_t a, std::size_t b) { return r[a * w + b]; };
  return 2.0f * at(i, j - 1) + 2.0f * at(i - 1, j) - 4.0f * at(i - 1, j - 1) -
         at(i, j - 2) - at(i - 2, j) + 2.0f * at(i - 1, j - 2) +
         2.0f * at(i - 2, j - 1) - at(i - 2, j - 2);
}

/// 3-D second-order stencil: tensor-product of the 1-D weights
/// (+2, -1) => coefficient for offset (a,b,c) is -prod(w_a w_b w_c) with
/// w_0 = -1, w_1 = +2, w_2 = -1 (excluding the origin).
inline float predict3_2nd(const float* r, const Dims& d, std::size_t i,
                          std::size_t j, std::size_t k) {
  if (i < 2 || j < 2 || k < 2) return predict3(r, d, i, j, k);
  const std::size_t n1 = d[1], n2 = d[2];
  auto at = [&](std::size_t a, std::size_t b, std::size_t c) {
    return r[(a * n1 + b) * n2 + c];
  };
  // Annihilation constraint: sum_{a,b,c} w_a w_b w_c f(i-2+a, ...) == 0 for
  // any quadratic field, with w = (1, -2, 1). The point itself has
  // coefficient w_2^3 = 1, so it equals minus the rest of the sum.
  static constexpr float w[3] = {1.0f, -2.0f, 1.0f};
  float pred = 0.0f;
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b)
      for (int c = 0; c < 3; ++c) {
        if (a == 2 && b == 2 && c == 2) continue;  // the point itself
        pred -= w[a] * w[b] * w[c] *
                at(i - 2 + static_cast<std::size_t>(a),
                   j - 2 + static_cast<std::size_t>(b),
                   k - 2 + static_cast<std::size_t>(c));
      }
  return pred;
}

/// L1 loss of first-order Lorenzo applied to the *original* values of one
/// block (paper Algorithm 1, line 7: selection uses Lorenzo on B, not on
/// reconstructed data). `off` is the block origin, `bs` the block extent
/// (clamped by the caller). Out-of-block neighbors read as 0.
double block_l1_loss_2d(std::span<const float> block, std::size_t bh,
                        std::size_t bw);
double block_l1_loss_3d(std::span<const float> block, std::size_t b0,
                        std::size_t b1, std::size_t b2);

}  // namespace aesz::lorenzo
