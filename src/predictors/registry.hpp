#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "predictors/compressor.hpp"
#include "util/expected.hpp"

namespace aesz {

/// One registered codec: how to name it, recognize its streams, and build
/// an instance. The factory takes the field rank the caller intends to
/// compress so rank-specific codecs (AE-SZ) can pick a matching default
/// model config; rank-agnostic codecs ignore it.
struct CodecInfo {
  std::string name;
  std::string description;
  /// Leading stream magic, or 0 for codecs without a magic of their own
  /// (the `parallel:<codec>` wrappers share one container magic and are
  /// identified by the inner magic stored in the container header).
  std::uint32_t magic = 0;
  /// Default-options error_bounded() — kept here so metadata queries
  /// (e.g. `aesz_cli list-codecs`) need not construct the codec, which
  /// for the learned ones means building a whole network.
  bool error_bounded = true;
  std::function<std::unique_ptr<Compressor>(int rank)> factory;
};

/// Name -> factory registry over every codec in the repo. This is the
/// runtime-selection layer the CLI (`--codec NAME`), the benches, the
/// registry-parameterized tests, and the parallel pipeline's per-worker
/// codec construction all build codecs through.
///
/// Thread-safety guarantee: every method is individually thread-safe — a
/// mutex guards the codec table, so pipeline workers may call create() /
/// find() / identify() concurrently (ParallelCompressor builds one inner
/// codec per worker thread). Entries are never removed and live in a
/// std::deque, so `find()` pointers stay valid for the process lifetime.
/// Factories run OUTSIDE the lock (building a learned codec is expensive),
/// so a slow factory never serializes other lookups. The one caveat:
/// add() with an already-registered name overwrites that entry in place —
/// overriding a built-in is meant for startup, before other threads hold
/// pointers to it.
///
/// All built-in codecs (and their `parallel:` wrappers) are registered on
/// first use of instance(); registration lives in registry.cpp rather
/// than per-codec static initializers because unreferenced objects in a
/// static archive would be dropped by the linker, silently emptying the
/// registry.
class CodecRegistry {
 public:
  /// The process-wide registry with the built-in codecs registered.
  static CodecRegistry& instance();

  /// Register a codec. Last registration wins on a name collision (so
  /// embedders can override a built-in). Lookup is case-insensitive.
  void add(CodecInfo info);

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

  bool contains(const std::string& name) const;

  /// Metadata for a name, or nullptr when unknown. The pointer stays
  /// valid for the process lifetime (entries are never removed).
  const CodecInfo* find(const std::string& name) const;

  /// Build a fresh codec instance for fields of the given rank.
  Expected<std::unique_ptr<Compressor>> create(const std::string& name,
                                               int rank = 2) const;

  /// Identify which registered codec produced a stream, by leading magic.
  /// All three container formats resolve through an inner-codec lookup:
  /// the parallel pipeline's AEPC (inner magic in the container header)
  /// comes back as `parallel:<codec>`, the temporal AETC and progressive
  /// AEPR streams (inner registry NAME in their headers) as
  /// `temporal:<codec>` / `progressive:<codec>`. A container wrapping a
  /// codec this registry does not know is a typed kBadMagic.
  Expected<std::string> identify(
      std::span<const std::uint8_t> stream) const;

 private:
  const CodecInfo* find_locked(const std::string& name) const;

  mutable std::mutex mu_;
  std::deque<CodecInfo> codecs_;
};

}  // namespace aesz
