#include "predictors/lorenzo.hpp"

#include <cmath>

namespace aesz::lorenzo {

double block_l1_loss_2d(std::span<const float> block, std::size_t bh,
                        std::size_t bw) {
  const Dims d(bh, bw);
  double loss = 0.0;
  for (std::size_t i = 0; i < bh; ++i) {
    for (std::size_t j = 0; j < bw; ++j) {
      const float pred = predict2(block.data(), d, i, j);
      loss += std::abs(static_cast<double>(block[i * bw + j]) -
                       static_cast<double>(pred));
    }
  }
  return loss;
}

double block_l1_loss_3d(std::span<const float> block, std::size_t b0,
                        std::size_t b1, std::size_t b2) {
  const Dims d(b0, b1, b2);
  double loss = 0.0;
  for (std::size_t i = 0; i < b0; ++i) {
    for (std::size_t j = 0; j < b1; ++j) {
      for (std::size_t k = 0; k < b2; ++k) {
        const float pred = predict3(block.data(), d, i, j, k);
        loss += std::abs(static_cast<double>(block[(i * b1 + j) * b2 + k]) -
                         static_cast<double>(pred));
      }
    }
  }
  return loss;
}

}  // namespace aesz::lorenzo
