#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/field.hpp"

namespace aesz {

/// Common interface of every compressor in the repo (AE-SZ, SZ2.1-like,
/// SZauto-like, SZinterp-like, ZFP-like, AE-A, AE-B). Streams are
/// self-describing: decompress() recovers dims from the header.
class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual std::string name() const = 0;

  /// Compress `f` under a value-range-relative error bound `rel_eb`
  /// (absolute bound = rel_eb * value_range, the paper's ϵ). Codecs without
  /// an error-bounding mechanism (AE-B) ignore `rel_eb` and document so.
  virtual std::vector<std::uint8_t> compress(const Field& f,
                                             double rel_eb) = 0;

  virtual Field decompress(std::span<const std::uint8_t> stream) = 0;

  /// Whether compress() guarantees |orig - recon| <= rel_eb * range.
  virtual bool error_bounded() const { return true; }
};

}  // namespace aesz
