#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/field.hpp"
#include "predictors/error_bound.hpp"
#include "util/expected.hpp"

namespace aesz {

/// Common interface of every compressor in the repo (AE-SZ, SZ2.1-like,
/// SZauto-like, SZinterp-like, ZFP-like, AE-A, AE-B) — the v2 API:
///
///  - compress() takes an ErrorBound (abs / value-range-relative / PSNR);
///    the legacy `double rel_eb` overload is a non-virtual shim for
///    incremental migration of call sites.
///  - decompress() is status-based: malformed input (truncated buffer, bad
///    magic, hostile dims, model mismatch) comes back as a typed
///    Expected<Field> error — it never throws and never reads out of
///    bounds. Implementations override decompress_impl(), whose internal
///    aesz::Error throws are translated here.
///  - Streams are zero-copy views: decompress() borrows the caller's bytes
///    for the duration of the call (nothing is copied or owned), and the
///    decoded Field moves out through the Expected.
///
/// Streams are self-describing: decompress() recovers dims and the bound
/// from the header. Codecs register themselves in the CodecRegistry
/// (predictors/registry.hpp) for runtime, by-name construction.
class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual std::string name() const = 0;

  /// Compress `f` under `eb`. Codecs without an error-bounding mechanism
  /// (AE-B, fixed-rate ZFP) ignore the bound and document so. Throws
  /// aesz::Error(kInvalidArgument) on unusable bounds or field shapes.
  virtual std::vector<std::uint8_t> compress(const Field& f,
                                             const ErrorBound& eb) = 0;

  /// Legacy shim: a bare double is a value-range-relative bound (the
  /// paper's ϵ). Derived classes re-expose it via `using
  /// Compressor::compress;`.
  std::vector<std::uint8_t> compress(const Field& f, double rel_eb) {
    return compress(f, ErrorBound::Rel(rel_eb));
  }

  /// Decode a stream view. All failure modes become typed statuses.
  Expected<Field> decompress(std::span<const std::uint8_t> stream) {
    try {
      return decompress_impl(stream);
    } catch (const Error& e) {
      // Inside a decoder, an invariant failure is by definition caused by
      // the input: fold untyped/internal throws (the legacy lz/huffman
      // checks) into kCorruptStream so callers can dispatch on the code.
      const ErrCode c = (e.code() == ErrCode::kOk ||
                         e.code() == ErrCode::kInternal)
                            ? ErrCode::kCorruptStream
                            : e.code();
      return Status::error(c, e.what());
    } catch (const std::exception& e) {
      // Hostile sizes can surface as bad_alloc/length_error from the
      // standard library; classify them as corrupt input, not a crash.
      return Status::error(ErrCode::kCorruptStream, e.what());
    }
  }

  /// Whether compress() guarantees |orig - recon| <= absolute bound.
  virtual bool error_bounded() const { return true; }

  /// Whether this instance can compress fields of the given rank (AE-SZ is
  /// fixed to its model's rank, AE-B to 3-D; registry round-trip tests use
  /// this to skip unsupported combinations).
  virtual bool supports_rank(int rank) const {
    return rank >= 1 && rank <= 3;
  }

 protected:
  /// Codec-specific decoder. May throw aesz::Error (typed); the public
  /// decompress() converts those into statuses.
  virtual Field decompress_impl(std::span<const std::uint8_t> stream) = 0;
};

/// Optional mixin (like Trainable) for codecs whose compression pipeline
/// can amortize work across several independent fields — AE-SZ coalesces
/// the per-block network inference of a whole request batch into shared
/// forward passes. The contract the service batcher relies on: stream i of
/// compress_batch(fields, ebs) is BYTE-IDENTICAL to compress(*fields[i],
/// ebs[i]), for any batch composition, so coalescing requests is purely a
/// throughput decision and never changes what a client receives.
class BatchCompressor {
 public:
  virtual ~BatchCompressor() = default;

  /// Compress fields[i] under ebs[i]; sizes must match. Throws
  /// aesz::Error like compress() — one unusable field fails the call, so
  /// callers wanting per-request isolation fall back to solo compress.
  virtual std::vector<std::vector<std::uint8_t>> compress_batch(
      const std::vector<const Field*>& fields,
      const std::vector<ErrorBound>& ebs) = 0;
};

}  // namespace aesz
