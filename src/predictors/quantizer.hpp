#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace aesz {

/// Linear-scale quantizer with strict error-bound semantics, as in SZ
/// (Tao et al., IPDPS'17). Residual r = orig - pred maps to an integer bin
/// q = round(r / 2e); reconstruction pred + 2e*q is within e of orig by
/// construction. Codes are biased by `radius` so they fit u16; code 0 is
/// reserved for "unpredictable" points whose bin falls outside the 65536-bin
/// range (or where float rounding would break the bound) — those values are
/// stored verbatim in a side stream.
class LinearQuantizer {
 public:
  static constexpr std::uint16_t kUnpredictable = 0;

  explicit LinearQuantizer(double abs_eb, int radius = 32768)
      : eb_(abs_eb), inv_2eb_(abs_eb > 0 ? 0.5 / abs_eb : 0.0),
        radius_(radius) {}

  double error_bound() const { return eb_; }

  /// Quantize one value. On success returns the code and sets `recon` to the
  /// bounded reconstruction; on failure returns kUnpredictable, sets recon =
  /// orig, and the caller must append orig to its unpredictable stream.
  std::uint16_t quantize(float orig, float pred, float& recon) {
    const double diff = static_cast<double>(orig) - static_cast<double>(pred);
    const double qd = std::nearbyint(diff * inv_2eb_);
    if (std::abs(qd) < radius_) {
      const auto q = static_cast<long>(qd);
      const float r = static_cast<float>(
          static_cast<double>(pred) + 2.0 * eb_ * static_cast<double>(q));
      // Float-precision guard: the double-precision bin can still round to
      // a float32 outside the bound when |pred| >> eb.
      if (std::abs(static_cast<double>(r) - static_cast<double>(orig)) <=
          eb_) {
        recon = r;
        return static_cast<std::uint16_t>(q + radius_);
      }
    }
    recon = orig;
    return kUnpredictable;
  }

  /// Inverse map used by decompression (code != kUnpredictable).
  float recover(float pred, std::uint16_t code) const {
    const long q = static_cast<long>(code) - radius_;
    return static_cast<float>(static_cast<double>(pred) +
                              2.0 * eb_ * static_cast<double>(q));
  }

 private:
  double eb_;
  double inv_2eb_;
  long radius_;
};

}  // namespace aesz
