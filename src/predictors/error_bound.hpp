#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/expected.hpp"

namespace aesz {

/// Error-bound modes of the SZ family. `kRel` is the paper's ε
/// (value-range-relative); `kAbs` is a raw absolute tolerance; `kPSNR`
/// targets a peak-signal-to-noise ratio in dB.
enum class EbMode : std::uint8_t { kAbs = 0, kRel = 1, kPSNR = 2 };

inline const char* eb_mode_name(EbMode m) {
  switch (m) {
    case EbMode::kAbs: return "abs";
    case EbMode::kRel: return "rel";
    case EbMode::kPSNR: return "psnr";
  }
  return "?";
}

/// A user-facing error-bound request: mode + value. Resolved against a
/// field's value range into the absolute per-point tolerance the quantizers
/// work with, and serialized (mode byte + value) into every stream header.
class ErrorBound {
 public:
  constexpr ErrorBound() = default;
  constexpr ErrorBound(EbMode mode, double value)
      : mode_(mode), value_(value) {}

  static constexpr ErrorBound Abs(double tolerance) {
    return {EbMode::kAbs, tolerance};
  }
  static constexpr ErrorBound Rel(double epsilon) {
    return {EbMode::kRel, epsilon};
  }
  static constexpr ErrorBound PSNR(double db) { return {EbMode::kPSNR, db}; }

  EbMode mode() const { return mode_; }
  double value() const { return value_; }

  /// A bound every error-bounded codec can enforce: finite and positive.
  bool usable() const { return std::isfinite(value_) && value_ > 0; }

  /// The absolute per-point tolerance for a field with the given value
  /// range. Rel follows the paper (abs = ε · range; degenerate
  /// constant-range fields fall back to ε itself, matching the seed
  /// codecs). PSNR assumes the uniform quantization-noise model
  /// (MSE = e²/3): psnr = 10·log10(3·range²/e²)  =>  e = √3·range·10^(-db/20).
  double absolute(double value_range) const {
    switch (mode_) {
      case EbMode::kAbs: return value_;
      case EbMode::kRel:
        return value_range > 0 ? value_ * value_range : value_;
      case EbMode::kPSNR: {
        const double range = value_range > 0 ? value_range : 1.0;
        return std::sqrt(3.0) * range * std::pow(10.0, -value_ / 20.0);
      }
    }
    return value_;
  }

  /// "mode:value" — the CLI/debug spelling, accepted back by parse().
  std::string str() const {
    // %g, not std::to_string: the latter fixes 6 decimals and would print
    // a 1e-7 bound as 0.000000, which parse() then rejects.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", value_);
    return std::string(eb_mode_name(mode_)) + ":" + buf;
  }

  /// Parse "abs:1e-3", "rel:1e-2", "psnr:60" (case-insensitive); a bare
  /// number is value-range-relative, the historical CLI meaning of --eb.
  static Expected<ErrorBound> parse(const std::string& spec) {
    std::string mode_str = "rel", value_str = spec;
    const auto colon = spec.find(':');
    if (colon != std::string::npos) {
      mode_str = spec.substr(0, colon);
      value_str = spec.substr(colon + 1);
    }
    for (char& c : mode_str)
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    EbMode mode;
    if (mode_str == "abs") {
      mode = EbMode::kAbs;
    } else if (mode_str == "rel") {
      mode = EbMode::kRel;
    } else if (mode_str == "psnr") {
      mode = EbMode::kPSNR;
    } else {
      return Status::error(ErrCode::kInvalidArgument,
                           "unknown error-bound mode '" + mode_str +
                               "' (use abs|rel|psnr)");
    }
    char* end = nullptr;
    const double value = std::strtod(value_str.c_str(), &end);
    if (value_str.empty() || end != value_str.c_str() + value_str.size() ||
        !std::isfinite(value) || value <= 0) {
      return Status::error(ErrCode::kInvalidArgument,
                           "error bound needs a positive number, got '" +
                               value_str + "'");
    }
    return ErrorBound(mode, value);
  }

  bool operator==(const ErrorBound& o) const {
    return mode_ == o.mode_ && value_ == o.value_;
  }

 private:
  EbMode mode_ = EbMode::kRel;
  double value_ = 0.0;
};

}  // namespace aesz
