#include "predictors/registry.hpp"

#include <algorithm>
#include <cctype>

#include "ae_baselines/ae_a.hpp"
#include "ae_baselines/ae_b.hpp"
#include "core/aesz.hpp"
#include "pipeline/container.hpp"
#include "pipeline/parallel_compressor.hpp"
#include "progressive/aepr.hpp"
#include "progressive/progressive.hpp"
#include "sz/sz21.hpp"
#include "temporal/aetc.hpp"
#include "sz/szauto.hpp"
#include "sz/szinterp.hpp"
#include "util/bytestream.hpp"
#include "zfp/zfp_like.hpp"

// Layering note: this .cpp is the registry's one deliberate upward edge —
// it references every codec (and the parallel pipeline wrapper) so the
// linker keeps them all in the archive and the registry is never silently
// empty. The header stays within the predictors layer.

namespace aesz {
namespace {

std::string lower(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Default AE-SZ configs at CPU scale (paper Table VI at reduced width):
/// 32x32 blocks in 2-D, 8x8x8 in 3-D, latent 16.
AESZ::Options default_aesz_options(int rank) {
  AESZ::Options opt;
  opt.ae.rank = rank == 3 ? 3 : 2;
  opt.ae.block = rank == 3 ? 8 : 32;
  opt.ae.latent = 16;
  opt.ae.channels = {8, 16, 32};
  return opt;
}

/// Seeds are fixed so registry-built learned codecs are deterministic:
/// the same binary always produces byte-identical streams.
constexpr std::uint64_t kAeszSeed = 1;
constexpr std::uint64_t kAeaSeed = 2;
constexpr std::uint64_t kAebSeed = 3;

void register_builtin_codecs(CodecRegistry& reg) {
  reg.add({"AE-SZ",
           "the paper's compressor: blockwise SWAE predictor + Lorenzo "
           "fallback, error-bounded",
           AESZ::kStreamMagic, /*error_bounded=*/true,
           [](int rank) -> std::unique_ptr<Compressor> {
             return std::make_unique<AESZ>(default_aesz_options(rank),
                                           kAeszSeed);
           }});
  reg.add({"SZ2.1",
           "Lorenzo + blockwise linear regression, error-bounded",
           SZ21::kStreamMagic, /*error_bounded=*/true,
           [](int) -> std::unique_ptr<Compressor> {
             return std::make_unique<SZ21>();
           }});
  reg.add({"SZauto",
           "second-order Lorenzo with sampled predictor selection, "
           "error-bounded",
           SZAuto::kStreamMagic, /*error_bounded=*/true,
           [](int) -> std::unique_ptr<Compressor> {
             return std::make_unique<SZAuto>();
           }});
  reg.add({"SZinterp",
           "level-by-level spline interpolation (SZ3-style), error-bounded",
           SZInterp::kStreamMagic, /*error_bounded=*/true,
           [](int) -> std::unique_ptr<Compressor> {
             return std::make_unique<SZInterp>();
           }});
  reg.add({"ZFP",
           "lifted-transform bit-plane codec, fixed-accuracy mode, "
           "error-bounded",
           ZFPLike::kStreamMagic, /*error_bounded=*/true,
           [](int) -> std::unique_ptr<Compressor> {
             return std::make_unique<ZFPLike>();
           }});
  reg.add({"AE-A",
           "sliding-window fully-connected AE with SZ-style residual "
           "correction, error-bounded",
           AEA::kStreamMagic, /*error_bounded=*/true,
           [](int) -> std::unique_ptr<Compressor> {
             return std::make_unique<AEA>(AEA::Options{}, kAeaSeed);
           }});
  reg.add({"AE-B",
           "3-D convolutional AE, fixed 64x ratio, NOT error-bounded",
           AEB::kStreamMagic, /*error_bounded=*/false,
           [](int) -> std::unique_ptr<Compressor> {
             return std::make_unique<AEB>(AEB::Options{}, kAebSeed);
           }});

  // One `parallel:<codec>` wrapper per built-in: sharded multi-chunk
  // compression on a thread pool (src/pipeline/), container stream format.
  // The wrappers carry no magic of their own (magic 0) — identify() maps
  // the container magic + inner magic back to `parallel:<name>`.
  const auto builtins = reg.names();  // snapshot before adding wrappers
  for (const auto& name : builtins) {
    const CodecInfo* inner = reg.find(name);
    reg.add({"parallel:" + name,
             "sharded thread-pool wrapper over " + name +
                 " (multi-chunk container stream)",
             /*magic=*/0, inner->error_bounded,
             [name](int rank) -> std::unique_ptr<Compressor> {
               return std::make_unique<pipeline::ParallelCompressor>(
                   pipeline::ParallelCompressor::Options{name}, rank);
             }});
  }

  // One `progressive:<codec>` wrapper per error-bounded built-in: layered
  // AEPR streams whose prefixes decode at recorded looser bounds
  // (src/progressive/). Like `parallel:`, the wrappers share one container
  // magic (carried as magic 0 here) — identify() resolves the inner codec
  // name stored in the AEPR header. AE-B is skipped: a bound ladder over a
  // codec that cannot bound its error guarantees nothing.
  for (const auto& name : builtins) {
    const CodecInfo* inner = reg.find(name);
    if (!inner->error_bounded) continue;
    reg.add({"progressive:" + name,
             "layered multi-fidelity wrapper over " + name +
                 " (AEPR refinement-layer stream)",
             /*magic=*/0, /*error_bounded=*/true,
             [name](int rank) -> std::unique_ptr<Compressor> {
               progressive::ProgressiveWriter::Options opt;
               opt.inner = name;
               return std::make_unique<progressive::ProgressiveCompressor>(
                   std::move(opt), rank);
             }});
  }
}

}  // namespace

CodecRegistry& CodecRegistry::instance() {
  static CodecRegistry* reg = [] {
    auto* r = new CodecRegistry();
    register_builtin_codecs(*r);
    return r;
  }();
  return *reg;
}

void CodecRegistry::add(CodecInfo info) {
  const std::string key = lower(info.name);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it =
      std::find_if(codecs_.begin(), codecs_.end(), [&](const CodecInfo& c) {
        return lower(c.name) == key;
      });
  if (it != codecs_.end())
    *it = std::move(info);
  else
    codecs_.push_back(std::move(info));
}

std::vector<std::string> CodecRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(codecs_.size());
  for (const auto& c : codecs_) out.push_back(c.name);
  return out;
}

const CodecInfo* CodecRegistry::find_locked(const std::string& name) const {
  const std::string key = lower(name);
  for (const auto& c : codecs_)
    if (lower(c.name) == key) return &c;
  return nullptr;
}

const CodecInfo* CodecRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return find_locked(name);
}

bool CodecRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

Expected<std::unique_ptr<Compressor>> CodecRegistry::create(
    const std::string& name, int rank) const {
  // Copy the factory out under the lock and run it outside: building a
  // learned codec is expensive, and pipeline workers create concurrently.
  std::function<std::unique_ptr<Compressor>(int)> factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const CodecInfo* info = find_locked(name)) factory = info->factory;
  }
  if (!factory) {
    std::string known;
    for (const auto& n : names()) known += (known.empty() ? "" : ", ") + n;
    return Status::error(ErrCode::kUnsupported, "unknown codec '" + name +
                                                    "' (registered: " +
                                                    known + ")");
  }
  if (rank < 1 || rank > 3)
    return Status::error(ErrCode::kInvalidArgument,
                         "rank must be 1, 2, or 3");
  return factory(rank);
}

Expected<std::string> CodecRegistry::identify(
    std::span<const std::uint8_t> stream) const {
  // Degenerate inputs get distinct, explicit handling: an empty stream is
  // a different caller mistake (no data at all) than a stream shorter
  // than a magic word (truncated file/frame), and both must stay typed
  // errors — the service layer routes untrusted bytes straight here.
  if (stream.empty())
    return Status::error(ErrCode::kTruncated, "empty stream");
  ByteReader r(stream);
  std::uint32_t magic = 0;
  if (!r.try_get(magic))
    return Status::error(ErrCode::kTruncated,
                         "stream too short for magic (" +
                             std::to_string(stream.size()) + " bytes)");
  if (magic == pipeline::kContainerMagic) {
    const auto inner = pipeline::peek_inner_magic(stream);
    if (!inner.ok()) return inner.status();
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& c : codecs_)
      if (c.magic != 0 && c.magic == *inner) return "parallel:" + c.name;
    return Status::error(ErrCode::kBadMagic,
                         "container wraps no registered codec");
  }
  // The temporal and progressive containers store the inner codec's
  // registry NAME (they may wrap magic-less `parallel:` streams), so both
  // resolve through a name lookup rather than a magic scan.
  if (magic == temporal::kStreamMagic) {
    const auto inner = temporal::peek_inner(stream);
    if (!inner.ok()) return inner.status();
    std::lock_guard<std::mutex> lock(mu_);
    if (const CodecInfo* c = find_locked(*inner))
      return "temporal:" + c->name;
    return Status::error(ErrCode::kBadMagic,
                         "temporal stream wraps no registered codec");
  }
  if (magic == progressive::kStreamMagic) {
    const auto inner = progressive::peek_inner(stream);
    if (!inner.ok()) return inner.status();
    std::lock_guard<std::mutex> lock(mu_);
    if (const CodecInfo* c = find_locked(*inner))
      return "progressive:" + c->name;
    return Status::error(ErrCode::kBadMagic,
                         "progressive stream wraps no registered codec");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : codecs_)
    if (c.magic != 0 && c.magic == magic) return c.name;
  return Status::error(ErrCode::kBadMagic,
                       "stream magic matches no registered codec");
}

}  // namespace aesz
