#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace aesz::metrics {

/// Mean squared error between original and reconstructed data.
double mse(std::span<const float> a, std::span<const float> b);

/// Maximum pointwise absolute error (the quantity an error bound limits).
double max_abs_err(std::span<const float> a, std::span<const float> b);

/// Peak signal-to-noise ratio per the paper's Eq. (4):
///   PSNR = 20 log10 vrange(a) - 10 log10 mse(a, b).
double psnr(std::span<const float> a, std::span<const float> b);

/// Compression ratio |D| / |D'| for float32 input.
double compression_ratio(std::size_t n_values, std::size_t compressed_bytes);

/// Bit rate = bits per value = 32 / CR for float32 input.
double bit_rate(std::size_t n_values, std::size_t compressed_bytes);

/// One point on a rate-distortion curve.
struct RDPoint {
  double rel_error_bound;  // value-range-relative eb (0 for non-EB codecs)
  double bit_rate;
  double psnr;
  double compression_ratio;
  double max_err;  // absolute
};

/// Normalized histogram (PDF) of (b[i] - a[i]) over [lo, hi] — the Fig. 7
/// prediction-error distribution. Out-of-range errors are clamped to the
/// edge bins.
std::vector<double> error_pdf(std::span<const float> a,
                              std::span<const float> b, double lo, double hi,
                              std::size_t bins);

/// Render one RD point as an aligned table row (used by the bench binaries).
std::string format_rd_row(const std::string& compressor, const RDPoint& p);
std::string rd_header();

}  // namespace aesz::metrics
