#pragma once

#include <string>
#include <vector>

#include "data/field.hpp"

namespace aesz::metrics {

/// Z-checker-style compression assessment (Tao et al., IJHPCA'19 — the
/// framework the paper cites for assessing lossy compressors, ref [32]).
/// Bundles the distortion statistics domain scientists inspect beyond PSNR.
struct Assessment {
  double psnr = 0.0;
  double mse = 0.0;
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;        // max |err| / value_range
  double mean_abs_err = 0.0;
  double value_range = 0.0;
  double pearson_correlation = 0.0;  // original vs reconstructed
  double error_autocorrelation = 0.0;  // lag-1 autocorr of the error signal
  double ssim = 0.0;                 // 2-D fields only (0 otherwise)
};

/// Full assessment of a reconstruction against its original.
Assessment assess(const Field& original, const Field& reconstructed);

/// Structural similarity (Wang et al. 2004) between two 2-D fields,
/// 8x8 windows, data-range-scaled stabilizers.
double ssim_2d(const Field& a, const Field& b);

/// Pearson correlation coefficient between two equal-length signals.
double pearson(std::span<const float> a, std::span<const float> b);

/// Lag-1 autocorrelation of (b - a): near zero for white compression error
/// (good), near one for structured artifacts (bad).
double error_lag1_autocorrelation(std::span<const float> a,
                                  std::span<const float> b);

/// Human-readable multi-line report.
std::string format(const Assessment& a);

}  // namespace aesz::metrics
