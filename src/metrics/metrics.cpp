#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace aesz::metrics {

double mse(std::span<const float> a, std::span<const float> b) {
  AESZ_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
#pragma omp parallel for reduction(+ : sum) schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.size()); ++i) {
    const double d = static_cast<double>(a[static_cast<std::size_t>(i)]) -
                     static_cast<double>(b[static_cast<std::size_t>(i)]);
    sum += d * d;
  }
  return sum / static_cast<double>(a.size());
}

double max_abs_err(std::span<const float> a, std::span<const float> b) {
  AESZ_CHECK(a.size() == b.size());
  double m = 0.0;
#pragma omp parallel for reduction(max : m) schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.size()); ++i) {
    m = std::max(m,
                 std::abs(static_cast<double>(a[static_cast<std::size_t>(i)]) -
                          static_cast<double>(b[static_cast<std::size_t>(i)])));
  }
  return m;
}

double psnr(std::span<const float> a, std::span<const float> b) {
  float lo = a.empty() ? 0.0f : a[0], hi = lo;
  for (float v : a) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double vrange = static_cast<double>(hi) - static_cast<double>(lo);
  const double m = mse(a, b);
  if (m == 0.0) return 999.0;  // lossless sentinel
  return 20.0 * std::log10(vrange) - 10.0 * std::log10(m);
}

double compression_ratio(std::size_t n_values, std::size_t compressed_bytes) {
  return static_cast<double>(n_values * sizeof(float)) /
         static_cast<double>(std::max<std::size_t>(compressed_bytes, 1));
}

double bit_rate(std::size_t n_values, std::size_t compressed_bytes) {
  return 8.0 * static_cast<double>(compressed_bytes) /
         static_cast<double>(std::max<std::size_t>(n_values, 1));
}

std::vector<double> error_pdf(std::span<const float> a,
                              std::span<const float> b, double lo, double hi,
                              std::size_t bins) {
  AESZ_CHECK(a.size() == b.size());
  AESZ_CHECK(bins > 0 && hi > lo);
  std::vector<double> pdf(bins, 0.0);
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double e = static_cast<double>(b[i]) - static_cast<double>(a[i]);
    auto bin = static_cast<std::ptrdiff_t>((e - lo) * scale);
    bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    pdf[static_cast<std::size_t>(bin)] += 1.0;
  }
  for (double& v : pdf) v /= static_cast<double>(a.size());
  return pdf;
}

std::string rd_header() {
  return "compressor            rel_eb     bitrate      PSNR        CR     max_err";
}

std::string format_rd_row(const std::string& compressor, const RDPoint& p) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-20s %8.1e %9.4f %9.2f %9.2f %10.3e",
                compressor.c_str(), p.rel_error_bound, p.bit_rate, p.psnr,
                p.compression_ratio, p.max_err);
  return buf;
}

}  // namespace aesz::metrics
