#include "metrics/assessment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "metrics/metrics.hpp"
#include "util/error.hpp"

namespace aesz::metrics {

double pearson(std::span<const float> a, std::span<const float> b) {
  AESZ_CHECK(a.size() == b.size() && !a.empty());
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(a.size());
  mb /= static_cast<double>(a.size());
  double num = 0, da = 0, db = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = a[i] - ma, xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  const double den = std::sqrt(da * db);
  return den > 0 ? num / den : 1.0;
}

double error_lag1_autocorrelation(std::span<const float> a,
                                  std::span<const float> b) {
  AESZ_CHECK(a.size() == b.size() && a.size() >= 2);
  std::vector<double> e(a.size());
  double mean = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    e[i] = static_cast<double>(b[i]) - a[i];
    mean += e[i];
  }
  mean /= static_cast<double>(e.size());
  double num = 0, den = 0;
  for (std::size_t i = 0; i < e.size(); ++i) {
    den += (e[i] - mean) * (e[i] - mean);
    if (i + 1 < e.size()) num += (e[i] - mean) * (e[i + 1] - mean);
  }
  return den > 0 ? num / den : 0.0;
}

double ssim_2d(const Field& a, const Field& b) {
  AESZ_CHECK_MSG(a.dims().rank == 2 && a.dims() == b.dims(),
                 "ssim_2d needs matching 2-D fields");
  const std::size_t H = a.dims()[0], W = a.dims()[1];
  const double range = std::max<double>(a.value_range(), 1e-12);
  const double c1 = (0.01 * range) * (0.01 * range);
  const double c2 = (0.03 * range) * (0.03 * range);
  constexpr std::size_t win = 8;
  double total = 0;
  std::size_t count = 0;
  for (std::size_t i0 = 0; i0 + win <= H; i0 += win) {
    for (std::size_t j0 = 0; j0 + win <= W; j0 += win) {
      double ma = 0, mb = 0;
      for (std::size_t i = 0; i < win; ++i)
        for (std::size_t j = 0; j < win; ++j) {
          ma += a.at2(i0 + i, j0 + j);
          mb += b.at2(i0 + i, j0 + j);
        }
      const double n = win * win;
      ma /= n;
      mb /= n;
      double va = 0, vb = 0, cov = 0;
      for (std::size_t i = 0; i < win; ++i)
        for (std::size_t j = 0; j < win; ++j) {
          const double xa = a.at2(i0 + i, j0 + j) - ma;
          const double xb = b.at2(i0 + i, j0 + j) - mb;
          va += xa * xa;
          vb += xb * xb;
          cov += xa * xb;
        }
      va /= n - 1;
      vb /= n - 1;
      cov /= n - 1;
      total += ((2 * ma * mb + c1) * (2 * cov + c2)) /
               ((ma * ma + mb * mb + c1) * (va + vb + c2));
      ++count;
    }
  }
  return count ? total / static_cast<double>(count) : 1.0;
}

Assessment assess(const Field& original, const Field& reconstructed) {
  AESZ_CHECK(original.dims() == reconstructed.dims());
  Assessment out;
  const auto a = original.values();
  const auto b = reconstructed.values();
  out.mse = mse(a, b);
  out.psnr = psnr(a, b);
  out.max_abs_err = max_abs_err(a, b);
  out.value_range = original.value_range();
  out.max_rel_err =
      out.value_range > 0 ? out.max_abs_err / out.value_range : 0.0;
  double mae = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    mae += std::abs(static_cast<double>(b[i]) - a[i]);
  out.mean_abs_err = mae / static_cast<double>(a.size());
  out.pearson_correlation = pearson(a, b);
  out.error_autocorrelation = error_lag1_autocorrelation(a, b);
  if (original.dims().rank == 2) out.ssim = ssim_2d(original, reconstructed);
  return out;
}

std::string format(const Assessment& a) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "PSNR          : %9.3f dB\n"
                "MSE           : %9.3e\n"
                "max abs error : %9.3e  (%.4f%% of range)\n"
                "mean abs error: %9.3e\n"
                "pearson corr  : %9.6f\n"
                "err lag-1 AC  : %9.4f\n"
                "SSIM (2-D)    : %9.4f\n",
                a.psnr, a.mse, a.max_abs_err, 100.0 * a.max_rel_err,
                a.mean_abs_err, a.pearson_correlation,
                a.error_autocorrelation, a.ssim);
  return buf;
}

}  // namespace aesz::metrics
