#pragma once

#include <string>

#include "core/aesz.hpp"

namespace aesz {

/// Per-dataset AE-SZ configurations, mirroring the paper's Table VI
/// ("Autoencoder configurations for each data field"). `paper_scale`
/// selects the published channel widths; the default is the CPU-scale
/// profile used by the benches (same architecture, reduced width).
///
/// | field            | block    | latent | blocks | channels (paper)    |
/// |------------------|----------|--------|--------|---------------------|
/// | CESM-CLDHGH      | 32x32    | 16     | 4      | 32,64,128,256       |
/// | CESM-FREQSH      | 32x32    | 32     | 4      | 32,64,128,256       |
/// | EXAFEL           | 32x32    | 16     | 4      | 32,64,128,256       |
/// | RTM              | 16x16x16 | 16     | 4      | 32,64,128,256       |
/// | NYX (all fields) | 8x8x8    | 16     | 3      | 32,64,128           |
/// | Hurricane-U      | 8x8x8    | 8      | 3      | 32,64,128           |
/// | Hurricane-QVAPOR | 8x8x8    | 16     | 3      | 32,64,128           |
namespace model_zoo {

/// Table VI lookup by field name ("CESM-CLDHGH", "NYX", "Hurricane-U", ...).
/// Throws aesz::Error for unknown names; `known_fields()` lists valid keys.
nn::AEConfig config_for(const std::string& field, bool paper_scale = false);

/// All field names with a Table VI entry.
std::vector<std::string> known_fields();

/// Ready-to-train AESZ options for a field (config_for + paper defaults:
/// latent bound 0.1e, auto predictor selection).
AESZ::Options options_for(const std::string& field, bool paper_scale = false);

}  // namespace model_zoo
}  // namespace aesz
