#pragma once

#include <cstddef>
#include <span>

#include "data/field.hpp"
#include "util/dims.hpp"

namespace aesz {

/// Blockwise decomposition of a field into fixed-size cubes/squares (the
/// paper's "split the data into small fixed-size blocks"). Partial edge
/// blocks are padded by edge replication when fed to the network; only the
/// valid region participates in losses and residual coding.
struct BlockSplit {
  Dims field_dims;
  std::size_t bs = 0;      // block edge
  int rank = 0;
  std::size_t nb[3] = {1, 1, 1};
  std::size_t total = 0;   // number of blocks

  std::size_t block_elems() const {
    std::size_t n = 1;
    for (int i = 0; i < rank; ++i) n *= bs;
    return n;
  }
};

BlockSplit make_block_split(const Dims& d, std::size_t bs);

/// Block origin and valid extent for block id `bid` (raster order).
void block_region(const BlockSplit& s, std::size_t bid, std::size_t off[3],
                  std::size_t ext[3]);

/// Linear [-1,1] normalization bound to a field's min/max (the paper's
/// input normalization "based on the global maximum and minimum of data").
/// Degenerate ranges (hi <= lo — e.g. an exactly constant chunk handed to
/// a codec by the parallel pipeline) collapse consistently: norm() maps
/// every value to 0 and denorm() maps everything back to `lo`, so
/// denorm(norm(v)) reproduces a constant field exactly instead of
/// drifting to the midpoint of an inverted range.
struct Normalizer {
  float lo = 0.0f;
  float hi = 1.0f;

  float norm(float v) const {
    const float r = hi - lo;
    return r > 0 ? 2.0f * (v - lo) / r - 1.0f : 0.0f;
  }
  float denorm(float v) const {
    const float r = hi - lo;
    return r > 0 ? lo + (v + 1.0f) * 0.5f * r : lo;
  }
};

/// Extract block `bid` into `out` (bs^rank floats), normalized, partial
/// blocks padded by edge replication.
void extract_block(const Field& f, const BlockSplit& s, std::size_t bid,
                   const Normalizer& nrm, float* out);

/// L1 loss between the valid region of block `bid` in `f` and a padded
/// prediction `pred` (bs^rank, in *original* units).
double block_l1_vs(const Field& f, const BlockSplit& s, std::size_t bid,
                   const float* pred);

/// Mean of the valid region of block `bid`.
float block_mean(const Field& f, const BlockSplit& s, std::size_t bid);

/// L1 loss of predicting the valid region by a constant.
double block_l1_const(const Field& f, const BlockSplit& s, std::size_t bid,
                      float c);

/// L1 loss of block-local first-order Lorenzo on original values
/// (selection criterion, Algorithm 1 line 7).
double block_l1_lorenzo(const Field& f, const BlockSplit& s, std::size_t bid);

}  // namespace aesz
