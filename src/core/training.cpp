#include "core/training.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "metrics/metrics.hpp"
#include "util/timer.hpp"

namespace aesz {
namespace {

/// Gather normalized block samples from the fields (each sample is
/// block_elems floats).
std::vector<std::vector<float>> gather_blocks(
    const std::vector<const Field*>& fields, const nn::AEConfig& cfg,
    std::size_t max_blocks, Rng& rng) {
  std::vector<std::vector<float>> samples;
  for (const Field* f : fields) {
    AESZ_CHECK_MSG(f->dims().rank == cfg.rank,
                   "training field rank does not match AE config");
    const BlockSplit s = make_block_split(f->dims(), cfg.block);
    auto [lo, hi] = f->min_max();
    const Normalizer nrm{lo, hi};
    for (std::size_t bid = 0; bid < s.total; ++bid) {
      samples.emplace_back(s.block_elems());
      extract_block(*f, s, bid, nrm, samples.back().data());
    }
  }
  // Uniform subsample if over budget (Fisher-Yates prefix).
  if (samples.size() > max_blocks) {
    for (std::size_t i = 0; i < max_blocks; ++i) {
      const std::size_t j = i + rng.below(samples.size() - i);
      std::swap(samples[i], samples[j]);
    }
    samples.resize(max_blocks);
  }
  return samples;
}

}  // namespace

TrainReport train_on_fields(nn::VariantTrainer& trainer,
                            const std::vector<const Field*>& fields,
                            const TrainOptions& opts) {
  const nn::AEConfig& cfg = trainer.model().config();
  Rng rng(opts.seed);
  auto samples = gather_blocks(fields, cfg, opts.max_blocks, rng);
  AESZ_CHECK_MSG(!samples.empty(), "no training blocks");

  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  std::vector<std::size_t> in_shape{0, 1};
  for (int i = 0; i < cfg.rank; ++i) in_shape.push_back(cfg.block);

  TrainReport report;
  report.samples = samples.size();
  Timer timer;
  for (std::size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    // Linear learning-rate decay to 10%: recovers most of the quality a
    // full cosine schedule would at this training scale.
    trainer.set_lr(opts.lr *
                   static_cast<float>(1.0 - 0.9 * static_cast<double>(epoch) /
                                                std::max<std::size_t>(
                                                    opts.epochs - 1, 1)));
    // Shuffle sample order each epoch.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    double epoch_loss = 0.0;
    std::size_t nb = 0;
    for (std::size_t start = 0; start < order.size(); start += opts.batch) {
      const std::size_t n = std::min(opts.batch, order.size() - start);
      in_shape[0] = n;
      nn::Tensor batch(in_shape);
      for (std::size_t i = 0; i < n; ++i) {
        const auto& s = samples[order[start + i]];
        std::copy(s.begin(), s.end(),
                  batch.data() + i * cfg.block_elems());
      }
      epoch_loss += trainer.train_step(batch);
      ++nb;
    }
    report.epoch_loss.push_back(epoch_loss / static_cast<double>(nb));
    if (opts.verbose) {
      std::printf("  [%s] epoch %zu/%zu loss %.6f\n",
                  nn::variant_name(trainer.variant()).c_str(), epoch + 1,
                  opts.epochs, report.epoch_loss.back());
      std::fflush(stdout);
    }
  }
  report.seconds = timer.seconds();
  return report;
}

std::vector<nn::Tensor> make_eval_batches(const Field& f,
                                          const nn::AEConfig& cfg,
                                          std::size_t batch) {
  const BlockSplit s = make_block_split(f.dims(), cfg.block);
  auto [lo, hi] = f.min_max();
  const Normalizer nrm{lo, hi};
  std::vector<nn::Tensor> out;
  std::vector<std::size_t> in_shape{0, 1};
  for (int i = 0; i < cfg.rank; ++i) in_shape.push_back(cfg.block);
  for (std::size_t start = 0; start < s.total; start += batch) {
    const std::size_t n = std::min(batch, s.total - start);
    in_shape[0] = n;
    nn::Tensor t(in_shape);
    for (std::size_t i = 0; i < n; ++i)
      extract_block(f, s, start + i, nrm, t.data() + i * s.block_elems());
    out.push_back(std::move(t));
  }
  return out;
}

double prediction_psnr(nn::VariantTrainer& trainer, const Field& test) {
  const nn::AEConfig& cfg = trainer.model().config();
  const BlockSplit s = make_block_split(test.dims(), cfg.block);
  auto [lo, hi] = test.min_max();
  const Normalizer nrm{lo, hi};

  // Reconstruct every block, de-normalize, and assemble the predicted field
  // (valid regions only) to compute a field-level PSNR.
  Field pred(test.dims());
  const std::size_t be = s.block_elems();
  std::vector<std::size_t> in_shape{0, 1};
  for (int i = 0; i < cfg.rank; ++i) in_shape.push_back(cfg.block);
  const std::size_t batch = 64;
  for (std::size_t start = 0; start < s.total; start += batch) {
    const std::size_t n = std::min(batch, s.total - start);
    in_shape[0] = n;
    nn::Tensor t(in_shape);
    for (std::size_t i = 0; i < n; ++i)
      extract_block(test, s, start + i, nrm, t.data() + i * be);
    nn::Tensor rec = trainer.reconstruct(t);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t bid = start + i;
      std::size_t off[3], ext[3];
      block_region(s, bid, off, ext);
      const float* r = rec.data() + i * be;
      for (std::size_t a = 0; a < ext[0]; ++a)
        for (std::size_t b = 0; b < ext[1]; ++b)
          for (std::size_t c = 0; c < ext[2]; ++c) {
            const std::size_t fidx =
                s.rank == 1   ? off[0] + a
                : s.rank == 2 ? lin2(test.dims(), off[0] + a, off[1] + b)
                              : lin3(test.dims(), off[0] + a, off[1] + b,
                                     off[2] + c);
            const std::size_t bidx = s.rank == 1 ? a
                                     : s.rank == 2
                                         ? a * s.bs + b
                                         : (a * s.bs + b) * s.bs + c;
            pred.at(fidx) = nrm.denorm(r[bidx]);
          }
    }
  }
  return metrics::psnr(test.values(), pred.values());
}

}  // namespace aesz
