#pragma once

#include <memory>

#include "core/training.hpp"
#include "predictors/compressor.hpp"

namespace aesz {

/// AE-SZ — the paper's contribution: an error-bounded lossy compressor that
/// replaces SZ2.1's linear-regression predictor with a pretrained blockwise
/// convolutional SWAE (Algorithm 1):
///
///   1. split the field into fixed-size blocks,
///   2. per block, predict with (a) the AE decoder applied to the lossily
///      compressed latent vector and (b) Lorenzo (classic or block-mean),
///      keeping whichever has lower L1 loss,
///   3. linear-scale quantize residuals under the user error bound,
///   4. Huffman + LZ the quantization codes; latents go through the
///      customized latent codec (§IV-E) at 0.1e.
///
/// The network weights live in the compressor object (the paper stores the
/// model "separately against the compressed data"); save_model/load_model
/// support the offline-training / online-compression split. A weight
/// fingerprint is embedded in each stream and checked on decompression.
class AESZ final : public Compressor, public Trainable,
                   public BatchCompressor {
 public:
  static constexpr std::uint32_t kStreamMagic = 0x4145535A;  // "AESZ"

  /// Fig. 11 ablation knob: which predictors the selector may use.
  enum class Policy { kAuto, kAEOnly, kLorenzoOnly };

  struct Options {
    nn::AEConfig ae{};              // per-dataset (paper Table VI)
    double latent_eb_factor = 0.1;  // latent bound = factor * e (§IV-E)
    std::size_t batch = 64;         // AE inference batch size
    Policy policy = Policy::kAuto;
  };

  /// Per-compression telemetry for the paper's analysis figures.
  struct Stats {
    std::size_t blocks_total = 0;
    std::size_t blocks_ae = 0;
    std::size_t blocks_lorenzo = 0;
    std::size_t blocks_mean = 0;
    std::size_t latent_stream_bytes = 0;
    std::size_t code_stream_bytes = 0;
    std::size_t unpredictable = 0;
    double ae_fraction() const {
      return blocks_total
                 ? static_cast<double>(blocks_ae) /
                       static_cast<double>(blocks_total)
                 : 0.0;
    }
  };

  AESZ(Options opt, std::uint64_t seed);

  /// Offline training on earlier-timestep snapshots (paper §III-B1).
  TrainReport train(const std::vector<const Field*>& fields,
                    const TrainOptions& opts) override;

  void save_model(const std::string& path);
  void load_model(const std::string& path);

  std::string name() const override { return "AE-SZ"; }
  using Compressor::compress;
  std::vector<std::uint8_t> compress(const Field& f,
                                     const ErrorBound& eb) override;

  /// Compress several fields in one pass, pooling the AE encode/decode of
  /// ALL fields' blocks into shared inference batches (the service layer's
  /// cross-request batcher calls this). Because every block's network
  /// output is bitwise independent of its batch neighbors (see nn/gemm),
  /// stream i is byte-identical to compress(*fields[i], ebs[i]).
  /// last_stats() afterwards describes the final field of the batch.
  std::vector<std::vector<std::uint8_t>> compress_batch(
      const std::vector<const Field*>& fields,
      const std::vector<ErrorBound>& ebs) override;

  /// AE-SZ is fixed to the rank of its trained model.
  bool supports_rank(int rank) const override;

  const Stats& last_stats() const { return stats_; }
  nn::VariantTrainer& trainer() { return *trainer_; }
  const Options& options() const { return opt_; }

 protected:
  Field decompress_impl(std::span<const std::uint8_t> stream) override;

 private:
  Options opt_;
  std::unique_ptr<nn::VariantTrainer> trainer_;
  Stats stats_;
  std::uint64_t weight_fingerprint();
};

}  // namespace aesz
