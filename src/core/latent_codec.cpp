#include "core/latent_codec.hpp"

#include "lossless/lz.hpp"
#include "predictors/quantizer.hpp"
#include "util/bytestream.hpp"

namespace aesz::latent_codec {

float quantize_value(float v, double abs_eb) {
  LinearQuantizer q(abs_eb);
  float recon;
  const auto code = q.quantize(v, /*pred=*/0.0f, recon);
  return code == LinearQuantizer::kUnpredictable ? v : recon;
}

std::vector<std::uint8_t> encode(std::span<const float> latents,
                                 double abs_eb) {
  LinearQuantizer q(abs_eb);
  std::vector<std::uint16_t> codes(latents.size());
  std::vector<float> unpred;
  for (std::size_t i = 0; i < latents.size(); ++i) {
    float recon;
    codes[i] = q.quantize(latents[i], 0.0f, recon);
    if (codes[i] == LinearQuantizer::kUnpredictable)
      unpred.push_back(latents[i]);
  }
  ByteWriter w;
  w.put(abs_eb);
  w.put_varint(latents.size());
  w.put_blob(qcodec::encode_codes(codes));
  ByteWriter uw;
  uw.put_array<float>(unpred);
  w.put_blob(lz::compress(uw.bytes()));
  return w.take();
}

std::vector<float> decode(std::span<const std::uint8_t> blob) {
  ByteReader r(blob);
  const double abs_eb = r.get<double>();
  const std::uint64_t n = r.get_varint();
  auto codes = qcodec::decode_codes(r.get_blob());
  AESZ_CHECK_MSG(codes.size() == n, "latent code count mismatch");
  const auto unpred_bytes = lz::decompress(r.get_blob());
  ByteReader ur(unpred_bytes);
  const auto unpred = ur.get_array<float>();

  LinearQuantizer q(abs_eb);
  std::vector<float> out(n);
  std::size_t ui = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (codes[i] == LinearQuantizer::kUnpredictable) {
      AESZ_CHECK_MSG(ui < unpred.size(), "latent unpredictable underflow");
      out[i] = unpred[ui++];
    } else {
      out[i] = q.recover(0.0f, codes[i]);
    }
  }
  return out;
}

}  // namespace aesz::latent_codec
