#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace aesz {

/// The paper's customized latent-vector compressor ("custo.", §IV-E):
///  (1) scalar linear quantization of each latent coefficient under an
///      absolute error bound (0.1e by default, derived by the caller), and
///  (2) Huffman + LZ over the quantization codes.
///
/// Unlike SZ2.1 it assumes no spatial smoothness across adjacent latent
/// elements, and each block's latents compress independently — the two
/// properties Table IV / §IV-E call out.
namespace latent_codec {

/// Self-describing blob: count, codes (entropy coded), out-of-range values.
std::vector<std::uint8_t> encode(std::span<const float> latents,
                                 double abs_eb);

std::vector<float> decode(std::span<const std::uint8_t> blob);

/// The exact decompressed value the decoder will see for one coefficient —
/// used during compression so the AE decoder runs on identical inputs.
float quantize_value(float v, double abs_eb);

}  // namespace latent_codec
}  // namespace aesz
