#include "core/aesz.hpp"

#include <cmath>
#include <fstream>

#include "core/latent_codec.hpp"
#include "lossless/lz.hpp"
#include "predictors/lorenzo.hpp"
#include "predictors/quantizer.hpp"
#include "sz/common.hpp"
#include "util/stage_timer.hpp"

namespace aesz {
namespace {

constexpr std::uint32_t kMagic = AESZ::kStreamMagic;

enum BlockFlag : std::uint8_t { kLorenzo = 0, kMean = 1, kAE = 2 };

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n,
                    std::uint64_t h = 0xCBF29CE484222325ULL) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

AESZ::AESZ(Options opt, std::uint64_t seed) : opt_(std::move(opt)) {
  nn::AEConfig cfg = opt_.ae;
  trainer_ = std::make_unique<nn::VariantTrainer>(
      cfg, nn::AEVariant::kSWAE, seed, nn::VariantHyper{});
}

TrainReport AESZ::train(const std::vector<const Field*>& fields,
                        const TrainOptions& opts) {
  return train_on_fields(*trainer_, fields, opts);
}

std::uint64_t AESZ::weight_fingerprint() {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const nn::Param* p : trainer_->model().params()) {
    h = fnv1a(reinterpret_cast<const std::uint8_t*>(p->value.data()),
              p->value.numel() * sizeof(float), h);
  }
  return h;
}

void AESZ::save_model(const std::string& path) {
  ByteWriter w;
  w.put(std::uint32_t{0x4D4F444C});  // "MODL"
  trainer_->model().save(w);
  std::ofstream out(path, std::ios::binary);
  AESZ_CHECK_MSG(out.good(), "cannot open " + path);
  out.write(reinterpret_cast<const char*>(w.bytes().data()),
            static_cast<std::streamsize>(w.size()));
}

void AESZ::load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AESZ_CHECK_MSG(in.good(), "cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  ByteReader r(bytes);
  AESZ_CHECK_MSG(r.get<std::uint32_t>() == 0x4D4F444C, "not a model file");
  trainer_->model().load(r);
}

bool AESZ::supports_rank(int rank) const {
  return rank == trainer_->model().config().rank;
}

std::vector<std::uint8_t> AESZ::compress(const Field& f,
                                         const ErrorBound& eb) {
  return std::move(compress_batch({&f}, {eb}).front());
}

std::vector<std::vector<std::uint8_t>> AESZ::compress_batch(
    const std::vector<const Field*>& fields,
    const std::vector<ErrorBound>& ebs) {
  AESZ_CHECK_ARG(fields.size() == ebs.size(),
                 "compress_batch: fields/bounds size mismatch");
  if (fields.empty()) return {};
  const nn::AEConfig& cfg = trainer_->model().config();
  const std::size_t ld = cfg.latent;

  // Per-field bound resolution and block geometry; blocks of ALL fields
  // are pooled into one global list so the encode/decode passes below run
  // at the full inference batch size even when each field alone is small
  // (the cross-request batching case). Per-block network outputs are
  // bitwise independent of batch composition, so this pooling cannot
  // change any stream byte relative to a solo compress().
  struct Plan {
    const Field* f = nullptr;
    double abs_eb = 0.0;
    double rel_eb = 0.0;
    float lo = 0.0f, hi = 0.0f;
    Normalizer nrm{0.0f, 0.0f};
    BlockSplit split{};
    std::size_t first_block = 0;  // offset into the pooled block list
    double latent_abs_eb = 0.0;
  };
  std::vector<Plan> plans(fields.size());
  std::size_t total_blocks = 0;
  for (std::size_t pi = 0; pi < fields.size(); ++pi) {
    const Field& f = *fields[pi];
    AESZ_CHECK_ARG(f.dims().rank == cfg.rank,
                   "field rank does not match the trained AE");
    Plan& p = plans[pi];
    p.f = &f;
    const double range = f.value_range();
    p.abs_eb = sz::resolve_abs_eb(f, ebs[pi], "AE-SZ");
    // The paper's latent bound scales with the *relative* bound ε; for Abs
    // and PSNR requests use the equivalent relative bound abs_eb / range.
    p.rel_eb = range > 0 ? p.abs_eb / range : p.abs_eb;
    auto [lo, hi] = f.min_max();
    p.lo = lo;
    p.hi = hi;
    p.nrm = Normalizer{lo, hi};
    p.split = make_block_split(f.dims(), cfg.block);
    p.first_block = total_blocks;
    total_blocks += p.split.total;
  }
  const std::size_t be = plans.front().split.block_elems();

  // ---- Step 1+2a: batched AE encoding of every block of every field.
  std::vector<float> latents(total_blocks * ld);
  std::vector<std::size_t> in_shape{0, 1};
  for (int i = 0; i < cfg.rank; ++i) in_shape.push_back(cfg.block);
  std::size_t fi = 0;  // field owning the block being pulled (monotonic)
  for (std::size_t start = 0; start < total_blocks; start += opt_.batch) {
    const std::size_t n = std::min(opt_.batch, total_blocks - start);
    in_shape[0] = n;
    nn::Tensor batch(in_shape);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t g = start + i;
      while (g >= plans[fi].first_block + plans[fi].split.total) ++fi;
      const Plan& p = plans[fi];
      extract_block(*p.f, p.split, g - p.first_block, p.nrm,
                    batch.data() + i * be);
    }
    nn::Tensor z = trainer_->encode_latent(batch);
    std::copy(z.data(), z.data() + n * ld, latents.data() + start * ld);
  }

  // Latent error bound: factor * e, value-range based on each field's OWN
  // latents (paper §IV-E) — pooling must not couple fields' bounds.
  std::vector<float> zd(latents.size());
  for (Plan& p : plans) {
    const float* pl = latents.data() + p.first_block * ld;
    const std::size_t cnt = p.split.total * ld;
    float llo = cnt == 0 ? 0.0f : pl[0], lhi = llo;
    for (std::size_t i = 0; i < cnt; ++i) {
      llo = std::min(llo, pl[i]);
      lhi = std::max(lhi, pl[i]);
    }
    p.latent_abs_eb =
        std::max(opt_.latent_eb_factor * p.rel_eb *
                     (static_cast<double>(lhi) - static_cast<double>(llo)),
                 1e-12);
    // ---- Step 2b (quantize): what the decompressor will see.
    float* pzd = zd.data() + p.first_block * ld;
    for (std::size_t i = 0; i < cnt; ++i)
      pzd[i] = latent_codec::quantize_value(pl[i], p.latent_abs_eb);
  }

  // ---- Step 2b (decode): AE prediction for every block, again pooled
  // across fields.
  std::vector<Field> ae_preds;
  ae_preds.reserve(plans.size());
  for (const Plan& p : plans) ae_preds.emplace_back(p.f->dims());
  fi = 0;
  for (std::size_t start = 0; start < total_blocks; start += opt_.batch) {
    const std::size_t n = std::min(opt_.batch, total_blocks - start);
    nn::Tensor zt({n, ld});
    std::copy(zd.data() + start * ld, zd.data() + (start + n) * ld,
              zt.data());
    nn::Tensor rec = trainer_->model().decode(zt, /*train=*/false);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t g = start + i;
      while (g >= plans[fi].first_block + plans[fi].split.total) ++fi;
      const Plan& p = plans[fi];
      const Dims& d = p.f->dims();
      const BlockSplit& split = p.split;
      Field& ae_pred = ae_preds[fi];
      std::size_t off[3], ext[3];
      block_region(split, g - p.first_block, off, ext);
      const float* r = rec.data() + i * be;
      for (std::size_t a = 0; a < ext[0]; ++a)
        for (std::size_t b = 0; b < ext[1]; ++b)
          for (std::size_t c = 0; c < ext[2]; ++c) {
            const std::size_t fidx =
                cfg.rank == 2 ? lin2(d, off[0] + a, off[1] + b)
                              : lin3(d, off[0] + a, off[1] + b, off[2] + c);
            const std::size_t bidx =
                cfg.rank == 2 ? a * split.bs + b
                              : (a * split.bs + b) * split.bs + c;
            ae_pred.at(fidx) = p.nrm.denorm(r[bidx]);
          }
    }
  }

  // Steps 3-5 are per-field (selection, residual quantization, assembly).
  // The model cannot change within one call, so every stream in the batch
  // shares one weight fingerprint; computing it per field would re-hash
  // all parameters and dominate small-field compression time.
  const std::uint64_t fp = weight_fingerprint();
  std::vector<std::vector<std::uint8_t>> out(plans.size());
  for (std::size_t pi = 0; pi < plans.size(); ++pi) {
    const Plan& p = plans[pi];
    const Field& f = *p.f;
    const Dims& d = f.dims();
    const BlockSplit& split = p.split;
    const Field& ae_pred = ae_preds[pi];
    const double abs_eb = p.abs_eb;
    const float lo = p.lo, hi = p.hi;

    stats_ = Stats{};
    stats_.blocks_total = split.total;

  // ---- Step 3: per-block predictor selection (Algorithm 1 lines 3-13).
  std::vector<std::uint8_t> flags(split.total, kLorenzo);
  std::vector<float> means;
  std::vector<float> sel_latents;  // latents of AE-selected blocks only
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(split.total);
       ++b) {
    const auto bid = static_cast<std::size_t>(b);
    std::size_t off[3], ext[3];
    block_region(split, bid, off, ext);
    // AE loss against the valid region of the (padded) prediction.
    double loss_ae = 0.0;
    for (std::size_t a = 0; a < ext[0]; ++a)
      for (std::size_t bb = 0; bb < ext[1]; ++bb)
        for (std::size_t c = 0; c < ext[2]; ++c) {
          const std::size_t fidx =
              cfg.rank == 2 ? lin2(d, off[0] + a, off[1] + bb)
                            : lin3(d, off[0] + a, off[1] + bb, off[2] + c);
          loss_ae += std::abs(static_cast<double>(f.at(fidx)) -
                              static_cast<double>(ae_pred.at(fidx)));
        }
    // Lorenzo's online prediction reads *reconstructed* neighbors, so its
    // realized error carries quantization-feedback noise that grows with
    // the bound (E|e_a + e_b - e_c| ~ eb for the 2-D stencil). The
    // original-data L1 of Algorithm 1 is corrected by that term; this is
    // what makes the AE take over at medium bounds and hand back to
    // Lorenzo at tight bounds (paper Fig. 10 discussion).
    const std::size_t npts = ext[0] * ext[1] * ext[2];
    const double loss_lor = block_l1_lorenzo(f, split, bid) +
                            abs_eb * static_cast<double>(npts);
    const float mean = block_mean(f, split, bid);
    const double loss_mean = block_l1_const(f, split, bid, mean);

    std::uint8_t flag;
    if (opt_.policy == Policy::kAEOnly) {
      flag = kAE;
    } else {
      // "Lorenzo" internally selects classic vs mean (§IV-A).
      const double loss_lorenzo_best = std::min(loss_lor, loss_mean);
      const std::uint8_t lor_flag =
          loss_mean < loss_lor ? kMean : kLorenzo;
      if (opt_.policy == Policy::kLorenzoOnly || loss_lorenzo_best <= loss_ae)
        flag = lor_flag;
      else
        flag = kAE;
    }
    flags[bid] = flag;
  }
  for (std::size_t bid = 0; bid < split.total; ++bid) {
    if (flags[bid] == kAE) {
      ++stats_.blocks_ae;
      sel_latents.insert(
          sel_latents.end(),
          latents.begin() + (p.first_block + bid) * ld,
          latents.begin() + (p.first_block + bid + 1) * ld);
    } else if (flags[bid] == kMean) {
      ++stats_.blocks_mean;
      means.push_back(block_mean(f, split, bid));
    } else {
      ++stats_.blocks_lorenzo;
    }
  }

  // ---- Step 4: residual quantization (blockwise raster; Lorenzo reads
  // reconstructed neighbors, which block-raster order keeps causal).
  prof::StageScope quantize_stage(prof::Stage::kQuantize);
  LinearQuantizer quant(abs_eb);
  std::vector<float> recon(d.total());
  std::vector<std::uint16_t> codes(d.total());
  std::vector<float> unpred;
  std::size_t ci = 0, mi = 0;
  for (std::size_t bid = 0; bid < split.total; ++bid) {
    std::size_t off[3], ext[3];
    block_region(split, bid, off, ext);
    const std::uint8_t flag = flags[bid];
    const float mean = flag == kMean ? means[mi++] : 0.0f;
    for (std::size_t a = 0; a < ext[0]; ++a) {
      for (std::size_t b = 0; b < ext[1]; ++b) {
        for (std::size_t c = 0; c < ext[2]; ++c) {
          const std::size_t i0 = off[0] + a, i1 = off[1] + b, i2 = off[2] + c;
          const std::size_t fidx =
              cfg.rank == 2 ? lin2(d, i0, i1) : lin3(d, i0, i1, i2);
          float pred;
          switch (flag) {
            case kAE: pred = ae_pred.at(fidx); break;
            case kMean: pred = mean; break;
            default:
              pred = cfg.rank == 2
                         ? lorenzo::predict2(recon.data(), d, i0, i1)
                         : lorenzo::predict3(recon.data(), d, i0, i1, i2);
          }
          float r;
          const std::uint16_t code = quant.quantize(f.at(fidx), pred, r);
          if (code == LinearQuantizer::kUnpredictable)
            unpred.push_back(f.at(fidx));
          recon[fidx] = r;
          codes[ci++] = code;
        }
      }
    }
  }
  stats_.unpredictable = unpred.size();
  quantize_stage.stop();

  // ---- Step 5: stream assembly.
  ByteWriter w;
  sz::write_header(w, kMagic, d, ebs[pi], abs_eb);
  w.put(lo);
  w.put(hi);
  w.put(fp);
  w.put_varint(cfg.block);
  w.put_varint(ld);
  {
    // 2-bit flags, packed.
    std::vector<std::uint8_t> packed((split.total + 3) / 4, 0);
    for (std::size_t i = 0; i < split.total; ++i)
      packed[i >> 2] |= static_cast<std::uint8_t>(flags[i] << ((i & 3) * 2));
    w.put_blob(lz::compress(packed));
  }
  {
    const auto latent_blob =
        latent_codec::encode(sel_latents, p.latent_abs_eb);
    stats_.latent_stream_bytes = latent_blob.size();
    w.put_blob(latent_blob);
  }
  {
    ByteWriter mw;
    mw.put_array<float>(means);
    w.put_blob(lz::compress(mw.bytes()));
  }
  {
    const auto code_blob = qcodec::encode_codes(codes);
    stats_.code_stream_bytes = code_blob.size();
    w.put_blob(code_blob);
  }
  {
    ByteWriter uw;
    uw.put_array<float>(unpred);
    w.put_blob(lz::compress(uw.bytes()));
  }
  out[pi] = sz::seal_stream(w.take());
  }
  return out;
}

Field AESZ::decompress_impl(std::span<const std::uint8_t> stream) {
  const nn::AEConfig& cfg = trainer_->model().config();
  ByteReader r(stream);
  const sz::StreamHeader h = sz::read_header_or_throw(r, kMagic);
  const Dims d = h.dims;
  const double abs_eb = h.abs_eb;
  if (d.rank != cfg.rank)
    throw Error(ErrCode::kModelMismatch, "stream rank != model rank");
  const auto lo = r.get<float>();
  const auto hi = r.get<float>();
  const auto fp = r.get<std::uint64_t>();
  if (fp != weight_fingerprint())
    throw Error(ErrCode::kModelMismatch,
                "stream was compressed with different AE weights");
  const std::size_t block = r.get_varint();
  const std::size_t ld = r.get_varint();
  if (block != cfg.block || ld != cfg.latent)
    throw Error(ErrCode::kModelMismatch, "stream AE config != model config");
  const Normalizer nrm{lo, hi};
  const BlockSplit split = make_block_split(d, block);
  const std::size_t be = split.block_elems();

  // Flags.
  const auto packed = lz::decompress(r.get_blob());
  AESZ_CHECK_STREAM(packed.size() >= (split.total + 3) / 4, "bad flag blob");
  std::vector<std::uint8_t> flags(split.total);
  for (std::size_t i = 0; i < split.total; ++i)
    flags[i] = (packed[i >> 2] >> ((i & 3) * 2)) & 3;

  // Latents -> AE predictions for AE-flagged blocks.
  const auto zd = latent_codec::decode(r.get_blob());
  std::vector<std::size_t> ae_blocks;
  for (std::size_t i = 0; i < split.total; ++i)
    if (flags[i] == kAE) ae_blocks.push_back(i);
  AESZ_CHECK_STREAM(zd.size() == ae_blocks.size() * ld,
                 "latent count mismatch");

  Field ae_pred(d);
  for (std::size_t start = 0; start < ae_blocks.size();
       start += opt_.batch) {
    const std::size_t n = std::min(opt_.batch, ae_blocks.size() - start);
    nn::Tensor zt({n, ld});
    std::copy(zd.data() + start * ld, zd.data() + (start + n) * ld,
              zt.data());
    nn::Tensor rec = trainer_->model().decode(zt, /*train=*/false);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t bid = ae_blocks[start + i];
      std::size_t off[3], ext[3];
      block_region(split, bid, off, ext);
      const float* rc = rec.data() + i * be;
      for (std::size_t a = 0; a < ext[0]; ++a)
        for (std::size_t b = 0; b < ext[1]; ++b)
          for (std::size_t c = 0; c < ext[2]; ++c) {
            const std::size_t fidx =
                cfg.rank == 2 ? lin2(d, off[0] + a, off[1] + b)
                              : lin3(d, off[0] + a, off[1] + b, off[2] + c);
            const std::size_t bidx =
                cfg.rank == 2 ? a * split.bs + b
                              : (a * split.bs + b) * split.bs + c;
            ae_pred.at(fidx) = nrm.denorm(rc[bidx]);
          }
    }
  }

  const auto mean_bytes = lz::decompress(r.get_blob());
  ByteReader mr(mean_bytes);
  const auto means = mr.get_array<float>();
  auto codes = qcodec::decode_codes(r.get_blob());
  AESZ_CHECK_STREAM(codes.size() == d.total(), "code count mismatch");
  const auto unpred_bytes = lz::decompress(r.get_blob());
  ByteReader ur(unpred_bytes);
  const auto unpred = ur.get_array<float>();

  // Residual reconstruction, mirroring the compression traversal.
  prof::StageScope quantize_stage(prof::Stage::kQuantize);
  LinearQuantizer quant(abs_eb);
  Field out(d);
  float* recon = out.data();
  std::size_t ci = 0, ui = 0, mi = 0;
  for (std::size_t bid = 0; bid < split.total; ++bid) {
    std::size_t off[3], ext[3];
    block_region(split, bid, off, ext);
    const std::uint8_t flag = flags[bid];
    float mean = 0.0f;
    if (flag == kMean) {
      AESZ_CHECK_STREAM(mi < means.size(), "mean underflow");
      mean = means[mi++];
    }
    for (std::size_t a = 0; a < ext[0]; ++a) {
      for (std::size_t b = 0; b < ext[1]; ++b) {
        for (std::size_t c = 0; c < ext[2]; ++c) {
          const std::size_t i0 = off[0] + a, i1 = off[1] + b, i2 = off[2] + c;
          const std::size_t fidx =
              cfg.rank == 2 ? lin2(d, i0, i1) : lin3(d, i0, i1, i2);
          const std::uint16_t code = codes[ci++];
          if (code == LinearQuantizer::kUnpredictable) {
            AESZ_CHECK_STREAM(ui < unpred.size(), "unpredictable underflow");
            recon[fidx] = unpred[ui++];
            continue;
          }
          float pred;
          switch (flag) {
            case kAE: pred = ae_pred.at(fidx); break;
            case kMean: pred = mean; break;
            default:
              pred = cfg.rank == 2 ? lorenzo::predict2(recon, d, i0, i1)
                                   : lorenzo::predict3(recon, d, i0, i1, i2);
          }
          recon[fidx] = quant.recover(pred, code);
        }
      }
    }
  }
  return out;
}

}  // namespace aesz
