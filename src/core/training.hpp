#pragma once

#include <vector>

#include "core/blocks.hpp"
#include "nn/variants.hpp"

namespace aesz {

/// Offline-training options for the paper's protocol: the network is trained
/// on snapshots from earlier timesteps (or a different simulation run) and
/// then reused to compress unseen snapshots of the same application.
struct TrainOptions {
  std::size_t epochs = 30;
  std::size_t batch = 32;
  float lr = 1e-3f;
  std::uint64_t seed = 7;
  nn::VariantHyper hyper{};
  bool verbose = false;
  /// Cap on the number of training blocks (subsamples uniformly when the
  /// split yields more) — keeps CPU training inside bench budgets.
  std::size_t max_blocks = 4096;
};

struct TrainReport {
  std::vector<double> epoch_loss;
  double seconds = 0.0;
  std::size_t samples = 0;
};

/// Mixin interface of the learned codecs (AE-SZ, AE-A, AE-B). Lets
/// registry-driven callers train whatever supports it without knowing the
/// concrete type: `if (auto* t = dynamic_cast<Trainable*>(codec.get())) ...`.
class Trainable {
 public:
  virtual ~Trainable() = default;
  virtual TrainReport train(const std::vector<const Field*>& fields,
                            const TrainOptions& opts) = 0;
};

/// Split each training field into normalized blocks (per-field min/max, as
/// the compressor will do online) and run minibatch training.
TrainReport train_on_fields(nn::VariantTrainer& trainer,
                            const std::vector<const Field*>& fields,
                            const TrainOptions& opts);

/// Assemble normalized blocks of one field as a (N, 1, extent...) tensor
/// batch list for evaluation harnesses.
std::vector<nn::Tensor> make_eval_batches(const Field& f,
                                          const nn::AEConfig& cfg,
                                          std::size_t batch);

/// Average prediction PSNR of a trained model over a test field — the
/// Table I / Table II metric (reconstruction only, no quantization).
double prediction_psnr(nn::VariantTrainer& trainer, const Field& test);

}  // namespace aesz
