#include "core/blocks.hpp"

#include <algorithm>
#include <cmath>

#include "predictors/lorenzo.hpp"

namespace aesz {

BlockSplit make_block_split(const Dims& d, std::size_t bs) {
  // Degenerate-input guards (surfaced by the chunked pipeline, which can
  // hand codecs arbitrarily thin slabs): bs == 0 would divide by zero in
  // num_blocks, and a zero extent would underflow the `ext[i] - 1`
  // edge-replication arithmetic in extract_block.
  AESZ_CHECK_ARG(bs > 0, "block size must be positive");
  AESZ_CHECK_ARG(d.rank >= 1 && d.rank <= 3, "field rank must be 1, 2, or 3");
  for (int i = 0; i < d.rank; ++i)
    AESZ_CHECK_ARG(d[i] > 0, "field has a zero extent along axis " +
                                 std::to_string(i));
  BlockSplit s;
  s.field_dims = d;
  s.bs = bs;
  s.rank = d.rank;
  s.total = 1;
  for (int i = 0; i < d.rank; ++i) {
    s.nb[i] = num_blocks(d[i], bs);
    s.total *= s.nb[i];
  }
  return s;
}

void block_region(const BlockSplit& s, std::size_t bid, std::size_t off[3],
                  std::size_t ext[3]) {
  std::size_t B[3] = {0, 0, 0};
  if (s.rank == 1) {
    B[0] = bid;
  } else if (s.rank == 2) {
    B[0] = bid / s.nb[1];
    B[1] = bid % s.nb[1];
  } else {
    B[0] = bid / (s.nb[1] * s.nb[2]);
    B[1] = (bid / s.nb[2]) % s.nb[1];
    B[2] = bid % s.nb[2];
  }
  for (int i = 0; i < 3; ++i) {
    off[i] = i < s.rank ? B[i] * s.bs : 0;
    ext[i] = i < s.rank ? std::min(s.bs, s.field_dims[i] - off[i]) : 1;
  }
}

void extract_block(const Field& f, const BlockSplit& s, std::size_t bid,
                   const Normalizer& nrm, float* out) {
  std::size_t off[3], ext[3];
  block_region(s, bid, off, ext);
  const Dims& d = f.dims();
  for (std::size_t a = 0; a < s.bs; ++a) {
    const std::size_t i = off[0] + std::min(a, ext[0] - 1);
    if (s.rank == 1) {
      out[a] = nrm.norm(f.at(i));
      continue;
    }
    for (std::size_t b = 0; b < s.bs; ++b) {
      const std::size_t j = off[1] + std::min(b, ext[1] - 1);
      if (s.rank == 2) {
        out[a * s.bs + b] = nrm.norm(f.at(lin2(d, i, j)));
        continue;
      }
      for (std::size_t c = 0; c < s.bs; ++c) {
        const std::size_t k = off[2] + std::min(c, ext[2] - 1);
        out[(a * s.bs + b) * s.bs + c] = nrm.norm(f.at(lin3(d, i, j, k)));
      }
    }
  }
}

namespace {

template <typename Fn>
void for_valid(const BlockSplit& s, const std::size_t off[3],
               const std::size_t ext[3], const Dims& d, Fn&& fn) {
  for (std::size_t a = 0; a < ext[0]; ++a) {
    for (std::size_t b = 0; b < ext[1]; ++b) {
      for (std::size_t c = 0; c < ext[2]; ++c) {
        const std::size_t fidx =
            s.rank == 1   ? off[0] + a
            : s.rank == 2 ? lin2(d, off[0] + a, off[1] + b)
                          : lin3(d, off[0] + a, off[1] + b, off[2] + c);
        const std::size_t bidx =
            s.rank == 1 ? a : s.rank == 2 ? a * s.bs + b
                                          : (a * s.bs + b) * s.bs + c;
        fn(fidx, bidx);
      }
    }
  }
}

}  // namespace

double block_l1_vs(const Field& f, const BlockSplit& s, std::size_t bid,
                   const float* pred) {
  std::size_t off[3], ext[3];
  block_region(s, bid, off, ext);
  double loss = 0.0;
  for_valid(s, off, ext, f.dims(), [&](std::size_t fi, std::size_t bi) {
    loss += std::abs(static_cast<double>(f.at(fi)) - pred[bi]);
  });
  return loss;
}

float block_mean(const Field& f, const BlockSplit& s, std::size_t bid) {
  std::size_t off[3], ext[3];
  block_region(s, bid, off, ext);
  double sum = 0.0;
  std::size_t n = 0;
  for_valid(s, off, ext, f.dims(), [&](std::size_t fi, std::size_t) {
    sum += f.at(fi);
    ++n;
  });
  return static_cast<float>(sum / static_cast<double>(n));
}

double block_l1_const(const Field& f, const BlockSplit& s, std::size_t bid,
                      float c) {
  std::size_t off[3], ext[3];
  block_region(s, bid, off, ext);
  double loss = 0.0;
  for_valid(s, off, ext, f.dims(), [&](std::size_t fi, std::size_t) {
    loss += std::abs(static_cast<double>(f.at(fi)) - c);
  });
  return loss;
}

double block_l1_lorenzo(const Field& f, const BlockSplit& s,
                        std::size_t bid) {
  std::size_t off[3], ext[3];
  block_region(s, bid, off, ext);
  // Copy the valid region into a contiguous (tightly strided) buffer and
  // reuse the original-data block loss from the predictor library.
  std::vector<float> buf(ext[0] * ext[1] * ext[2]);
  std::size_t t = 0;
  const Dims& d = f.dims();
  for (std::size_t a = 0; a < ext[0]; ++a)
    for (std::size_t b = 0; b < ext[1]; ++b)
      for (std::size_t c = 0; c < ext[2]; ++c) {
        const std::size_t fidx =
            s.rank == 1   ? off[0] + a
            : s.rank == 2 ? lin2(d, off[0] + a, off[1] + b)
                          : lin3(d, off[0] + a, off[1] + b, off[2] + c);
        buf[t++] = f.at(fidx);
      }
  if (s.rank == 1) return lorenzo::block_l1_loss_2d(buf, 1, ext[0]);
  if (s.rank == 2) return lorenzo::block_l1_loss_2d(buf, ext[0], ext[1]);
  return lorenzo::block_l1_loss_3d(buf, ext[0], ext[1], ext[2]);
}

}  // namespace aesz
