#include "core/model_zoo.hpp"

#include <algorithm>

namespace aesz::model_zoo {
namespace {

struct Entry {
  const char* name;
  int rank;
  std::size_t block;
  std::size_t latent;
  std::vector<std::size_t> paper_channels;
  std::vector<std::size_t> cpu_channels;
};

const std::vector<Entry>& table6() {
  static const std::vector<Entry> entries = {
      {"CESM-CLDHGH", 2, 32, 16, {32, 64, 128, 256}, {8, 16, 32}},
      {"CESM-FREQSH", 2, 32, 32, {32, 64, 128, 256}, {8, 16, 32}},
      {"EXAFEL", 2, 32, 16, {32, 64, 128, 256}, {8, 16, 32}},
      {"RTM", 3, 16, 16, {32, 64, 128, 256}, {8, 16, 32}},
      {"NYX", 3, 8, 16, {32, 64, 128}, {8, 16, 32}},
      {"Hurricane-U", 3, 8, 8, {32, 64, 128}, {8, 16, 32}},
      {"Hurricane-QVAPOR", 3, 8, 16, {32, 64, 128}, {8, 16, 32}},
  };
  return entries;
}

const Entry* find(const std::string& field) {
  for (const Entry& e : table6()) {
    if (field == e.name) return &e;
  }
  // NYX fields share one row ("NYX (all fields)").
  if (field.rfind("NYX", 0) == 0) return find("NYX");
  return nullptr;
}

}  // namespace

nn::AEConfig config_for(const std::string& field, bool paper_scale) {
  const Entry* e = find(field);
  AESZ_CHECK_MSG(e != nullptr, "no Table VI entry for field '" + field + "'");
  nn::AEConfig cfg;
  cfg.rank = e->rank;
  cfg.block = e->block;
  cfg.latent = e->latent;
  cfg.channels = paper_scale ? e->paper_channels : e->cpu_channels;
  // The CPU profile keeps the block/latent geometry but must still satisfy
  // block >= 2^#channel-blocks; paper-scale RTM (block 16, 4 halvings)
  // works, the CPU profile uses 3.
  while (cfg.block < (std::size_t{1} << cfg.channels.size()))
    cfg.channels.pop_back();
  return cfg;
}

std::vector<std::string> known_fields() {
  std::vector<std::string> out;
  for (const Entry& e : table6()) out.emplace_back(e.name);
  return out;
}

AESZ::Options options_for(const std::string& field, bool paper_scale) {
  AESZ::Options opt;
  opt.ae = config_for(field, paper_scale);
  opt.latent_eb_factor = 0.1;
  opt.policy = AESZ::Policy::kAuto;
  return opt;
}

}  // namespace aesz::model_zoo
