#pragma once

#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "util/dims.hpp"
#include "util/error.hpp"

namespace aesz {

/// A single-precision scalar field on a regular 1/2/3-D grid, row-major with
/// the last dimension contiguous — the SDRBench on-disk layout.
class Field {
 public:
  Field() = default;
  Field(Dims dims, float fill = 0.0f)
      : dims_(dims), data_(dims.total(), fill) {}
  Field(Dims dims, std::vector<float> data)
      : dims_(dims), data_(std::move(data)) {
    AESZ_CHECK_MSG(data_.size() == dims_.total(), "field size mismatch");
  }

  const Dims& dims() const { return dims_; }
  std::size_t size() const { return data_.size(); }
  std::span<const float> values() const { return data_; }
  std::span<float> values() { return data_; }
  const float* data() const { return data_.data(); }
  float* data() { return data_.data(); }

  float& at(std::size_t i) { return data_[i]; }
  float at(std::size_t i) const { return data_[i]; }
  float& at2(std::size_t i, std::size_t j) { return data_[lin2(dims_, i, j)]; }
  float at2(std::size_t i, std::size_t j) const {
    return data_[lin2(dims_, i, j)];
  }
  float& at3(std::size_t i, std::size_t j, std::size_t k) {
    return data_[lin3(dims_, i, j, k)];
  }
  float at3(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[lin3(dims_, i, j, k)];
  }

  /// min/max of the field (the basis of value-range-relative error bounds).
  std::pair<float, float> min_max() const {
    float lo = data_.empty() ? 0.0f : data_[0];
    float hi = lo;
    for (float v : data_) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return {lo, hi};
  }

  float value_range() const {
    auto [lo, hi] = min_max();
    return hi - lo;
  }

  /// In-place log10(1+x) transform used for NYX density fields ("fields of
  /// NYX are transformed to their logarithmic value before compression").
  void log_transform() {
    for (float& v : data_) v = std::log10(1.0f + std::max(v, 0.0f));
  }

  /// Raw single-precision binary I/O (SDRBench .dat/.f32 format).
  static Field load_raw(const std::string& path, Dims dims);
  void save_raw(const std::string& path) const;

  /// Save a 2-D field (or a 2-D slice of a 3-D field at k-index `slice`) as
  /// a binary PGM image, linearly mapped to [0,255] — the visual-comparison
  /// artifact for Fig. 9.
  void save_pgm(const std::string& path, std::size_t slice = 0) const;

 private:
  Dims dims_;
  std::vector<float> data_;
};

}  // namespace aesz
