#include "data/field.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace aesz {

Field Field::load_raw(const std::string& path, Dims dims) {
  std::ifstream in(path, std::ios::binary);
  AESZ_CHECK_MSG(in.good(), "cannot open " + path);
  Field f(dims);
  in.read(reinterpret_cast<char*>(f.data()),
          static_cast<std::streamsize>(f.size() * sizeof(float)));
  AESZ_CHECK_MSG(static_cast<std::size_t>(in.gcount()) ==
                     f.size() * sizeof(float),
                 "short read on " + path);
  return f;
}

void Field::save_raw(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  AESZ_CHECK_MSG(out.good(), "cannot open " + path);
  out.write(reinterpret_cast<const char*>(data()),
            static_cast<std::streamsize>(size() * sizeof(float)));
}

void Field::save_pgm(const std::string& path, std::size_t slice) const {
  std::size_t h = 0, w = 0;
  const float* plane = nullptr;
  if (dims_.rank == 2) {
    h = dims_[0];
    w = dims_[1];
    plane = data();
  } else if (dims_.rank == 3) {
    AESZ_CHECK(slice < dims_[0]);
    h = dims_[1];
    w = dims_[2];
    plane = data() + slice * h * w;
  } else {
    throw Error("save_pgm: need a 2-D or 3-D field");
  }
  float lo = plane[0], hi = plane[0];
  for (std::size_t i = 0; i < h * w; ++i) {
    lo = std::min(lo, plane[i]);
    hi = std::max(hi, plane[i]);
  }
  const float scale = hi > lo ? 255.0f / (hi - lo) : 0.0f;
  std::ofstream out(path, std::ios::binary);
  AESZ_CHECK_MSG(out.good(), "cannot open " + path);
  out << "P5\n" << w << " " << h << "\n255\n";
  std::vector<unsigned char> row(w);
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < w; ++j) {
      row[j] = static_cast<unsigned char>(
          std::clamp((plane[i * w + j] - lo) * scale, 0.0f, 255.0f));
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(w));
  }
}

}  // namespace aesz
