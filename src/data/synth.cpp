#include "data/synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace aesz::synth {
namespace {

/// Stateless lattice hash -> [0,1). Deterministic across platforms; lets the
/// generators evaluate arbitrary lattice points without storing grids.
double lattice(std::int64_t ix, std::int64_t iy, std::int64_t iz,
               std::uint64_t seed) {
  std::uint64_t h = seed * 0x9E3779B97F4A7C15ULL;
  h ^= static_cast<std::uint64_t>(ix) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 31)) * 0x94D049BB133111EBULL;
  h ^= static_cast<std::uint64_t>(iy) * 0xC2B2AE3D27D4EB4FULL;
  h = (h ^ (h >> 29)) * 0x165667B19E3779F9ULL;
  h ^= static_cast<std::uint64_t>(iz) * 0x27D4EB2F165667C5ULL;
  h = (h ^ (h >> 32)) * 0x2545F4914F6CDD1DULL;
  h ^= h >> 28;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double smooth(double t) {  // quintic smoothstep: C2-continuous noise
  return t * t * t * (t * (t * 6.0 - 15.0) + 10.0);
}

/// Smoothly interpolated lattice noise at continuous (x, y, z).
double noise3(double x, double y, double z, std::uint64_t seed) {
  const auto fx = std::floor(x), fy = std::floor(y), fz = std::floor(z);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  const auto iz = static_cast<std::int64_t>(fz);
  const double tx = smooth(x - fx), ty = smooth(y - fy), tz = smooth(z - fz);
  double c[2][2][2];
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b)
      for (int d = 0; d < 2; ++d)
        c[a][b][d] = lattice(ix + a, iy + b, iz + d, seed);
  auto lerp = [](double u, double v, double t) { return u + (v - u) * t; };
  const double x00 = lerp(c[0][0][0], c[1][0][0], tx);
  const double x10 = lerp(c[0][1][0], c[1][1][0], tx);
  const double x01 = lerp(c[0][0][1], c[1][0][1], tx);
  const double x11 = lerp(c[0][1][1], c[1][1][1], tx);
  const double y0 = lerp(x00, x10, ty);
  const double y1 = lerp(x01, x11, ty);
  return lerp(y0, y1, tz);
}

/// Fractal (octave-summed) noise in [0,1]; `tphase` advects the field so
/// consecutive timesteps are correlated but distinct snapshots.
double fbm3(double x, double y, double z, int octaves, double cells0,
            std::uint64_t seed, double tphase) {
  double amp = 1.0, freq = cells0, sum = 0.0, norm = 0.0;
  for (int o = 0; o < octaves; ++o) {
    // Per-octave drift direction from the hash, scaled by tphase.
    const double dx = tphase * (0.3 + 0.1 * o);
    const double dy = tphase * 0.17 * (o % 2 ? 1.0 : -1.0);
    sum += amp * noise3(x * freq + dx, y * freq + dy, z * freq,
                        seed + 1315423911ULL * static_cast<unsigned>(o));
    norm += amp;
    amp *= 0.5;
    freq *= 2.0;
  }
  return sum / norm;
}

}  // namespace

Field value_noise_2d(std::size_t h, std::size_t w, int octaves, double cells0,
                     std::uint64_t seed, double tphase) {
  Field f(Dims(h, w));
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(h); ++i) {
    for (std::size_t j = 0; j < w; ++j) {
      const double y = static_cast<double>(i) / static_cast<double>(h);
      const double x = static_cast<double>(j) / static_cast<double>(w);
      f.at2(static_cast<std::size_t>(i), j) = static_cast<float>(
          fbm3(x, y, 0.5, octaves, cells0, seed, tphase));
    }
  }
  return f;
}

Field value_noise_3d(std::size_t n0, std::size_t n1, std::size_t n2,
                     int octaves, double cells0, std::uint64_t seed,
                     double tphase) {
  Field f(Dims(n0, n1, n2));
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n0); ++i) {
    for (std::size_t j = 0; j < n1; ++j) {
      for (std::size_t k = 0; k < n2; ++k) {
        const double z = static_cast<double>(i) / static_cast<double>(n0);
        const double y = static_cast<double>(j) / static_cast<double>(n1);
        const double x = static_cast<double>(k) / static_cast<double>(n2);
        f.at3(static_cast<std::size_t>(i), j, k) = static_cast<float>(
            fbm3(x, y, z, octaves, cells0, seed, tphase));
      }
    }
  }
  return f;
}

Field cesm_cldhgh(std::size_t h, std::size_t w, int timestep,
                  std::uint64_t seed) {
  Field f(Dims(h, w));
  const double t = 0.23 * timestep;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(h); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    const double lat = static_cast<double>(i) / static_cast<double>(h);  // 0..1 pole-to-pole
    // ITCZ + storm-track banding: clouds concentrate near the equator and
    // mid-latitudes; subtropical highs are nearly cloud-free.
    const double band =
        0.55 * std::exp(-std::pow((lat - 0.5) / 0.08, 2)) +
        0.45 * std::exp(-std::pow((lat - 0.18) / 0.10, 2)) +
        0.45 * std::exp(-std::pow((lat - 0.82) / 0.10, 2)) + 0.05;
    for (std::size_t j = 0; j < w; ++j) {
      const double x = static_cast<double>(j) / static_cast<double>(w);
      const double n = fbm3(x, lat, 0.0, 4, 3.0, seed, t);
      // Soft threshold produces plateaus at exactly 0 and saturated tops —
      // the constant clear-sky blocks that make mean-Lorenzo worthwhile.
      double v = (n - (0.62 - 0.35 * band)) / 0.18;
      v = std::clamp(v, 0.0, 1.0);
      v = v * v * (3.0 - 2.0 * v);
      f.at2(i, j) = static_cast<float>(v);
    }
  }
  return f;
}

Field cesm_freqsh(std::size_t h, std::size_t w, int timestep,
                  std::uint64_t seed) {
  Field f(Dims(h, w));
  const double t = 0.31 * timestep;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(h); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    const double lat = static_cast<double>(i) / static_cast<double>(h);
    const double band = 0.5 + 0.5 * std::cos((lat - 0.5) * std::numbers::pi);
    for (std::size_t j = 0; j < w; ++j) {
      const double x = static_cast<double>(j) / static_cast<double>(w);
      const double n = fbm3(x, lat, 0.25, 3, 2.5, seed, t);
      double v = band * (0.25 + 0.75 * n);
      v = std::clamp(v, 0.0, 1.0);
      f.at2(i, j) = static_cast<float>(v);
    }
  }
  return f;
}

Field exafel(std::size_t h, std::size_t w, int timestep, std::uint64_t seed) {
  Field f(Dims(h, w));
  const std::size_t panel_h = std::max<std::size_t>(h / 8, 16);
  Rng noise_rng(seed * 7919 + static_cast<std::uint64_t>(timestep));
  // Background: per-panel pedestal + smooth gradient + detector noise.
  for (std::size_t i = 0; i < h; ++i) {
    const std::size_t panel = i / panel_h;
    const double pedestal =
        40.0 + 25.0 * lattice(static_cast<std::int64_t>(panel), timestep, 0,
                              seed + 11);
    for (std::size_t j = 0; j < w; ++j) {
      const double x = static_cast<double>(j) / static_cast<double>(w);
      const double y = static_cast<double>(i % panel_h) /
                       static_cast<double>(panel_h);
      const double grad = 12.0 * fbm3(x, y, 0.1 * panel, 3, 2.0, seed + 13,
                                      0.2 * timestep);
      f.at2(i, j) =
          static_cast<float>(pedestal + grad + 3.0 * noise_rng.gaussian());
    }
  }
  // Bragg peaks: sharp Gaussian spots, positions re-drawn per timestep
  // (each frame images a different crystal orientation).
  Rng peak_rng(seed * 104729 + static_cast<std::uint64_t>(timestep) * 31);
  const std::size_t npeaks = (h * w) / 1800;
  for (std::size_t p = 0; p < npeaks; ++p) {
    const double ci = peak_rng.uniform() * static_cast<double>(h);
    const double cj = peak_rng.uniform() * static_cast<double>(w);
    const double amp = 200.0 * std::exp(1.5 * peak_rng.gaussian());
    const double sig = 0.8 + 1.4 * peak_rng.uniform();
    const int r = static_cast<int>(3.0 * sig) + 1;
    for (int di = -r; di <= r; ++di) {
      for (int dj = -r; dj <= r; ++dj) {
        const auto i = static_cast<std::int64_t>(ci) + di;
        const auto j = static_cast<std::int64_t>(cj) + dj;
        if (i < 0 || j < 0 || i >= static_cast<std::int64_t>(h) ||
            j >= static_cast<std::int64_t>(w))
          continue;
        const double d2 = (di * di + dj * dj) / (2.0 * sig * sig);
        f.at2(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) +=
            static_cast<float>(amp * std::exp(-d2));
      }
    }
  }
  return f;
}

Field nyx_baryon_density(std::size_t n, int timestep, std::uint64_t seed) {
  Field g = value_noise_3d(n, n, n, 5, 3.0, seed, 0.15 * timestep);
  // Log-normal density with filamentary contrast: exponentiate a
  // sharpened Gaussian-like field. Mean ~1 (cosmic mean), spikes to ~1e3.
  for (float& v : g.values()) {
    const double z = (v - 0.5) * 2.0;                  // roughly [-1, 1]
    const double sharp = z + 0.9 * z * std::abs(z);    // boost overdensities
    v = static_cast<float>(std::exp(2.8 * sharp));
  }
  return g;
}

Field nyx_temperature(std::size_t n, int timestep, std::uint64_t seed) {
  Field rho = nyx_baryon_density(n, timestep, seed + 40);
  Field pert = value_noise_3d(n, n, n, 4, 4.0, seed, 0.2 * timestep);
  Field t(rho.dims());
  for (std::size_t i = 0; i < t.size(); ++i) {
    // T ~ rho^0.6 adiabatic relation with multiplicative perturbation.
    t.at(i) = static_cast<float>(
        1.2e4 * std::pow(static_cast<double>(rho.at(i)), 0.6) *
        std::exp(0.8 * (pert.at(i) - 0.5)));
  }
  return t;
}

Field nyx_dark_matter_density(std::size_t n, int timestep,
                              std::uint64_t seed) {
  Field g = value_noise_3d(n, n, n, 6, 3.0, seed, 0.15 * timestep);
  for (float& v : g.values()) {
    const double z = (v - 0.5) * 2.0;
    const double sharp = z + 1.4 * z * std::abs(z);  // spikier halos
    v = static_cast<float>(std::exp(3.4 * sharp));
  }
  return g;
}

Field hurricane_u(std::size_t nz, std::size_t ny, std::size_t nx,
                  int timestep, std::uint64_t seed) {
  Field f(Dims(nz, ny, nx));
  // Eye moves westward with time; intensity has a slow life cycle.
  const double cy = 0.5 + 0.08 * std::sin(0.15 * timestep);
  const double cx = 0.7 - 0.012 * timestep;
  const double vmax = 55.0 * (0.8 + 0.2 * std::sin(0.1 * timestep + 1.0));
  const double rm = 0.06;  // radius of maximum wind (domain units)
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t kk = 0; kk < static_cast<std::ptrdiff_t>(nz); ++kk) {
    const auto k = static_cast<std::size_t>(kk);
    const double zfrac = static_cast<double>(k) / static_cast<double>(nz);
    const double shear = 1.0 - 0.55 * zfrac;  // winds weaken aloft
    for (std::size_t i = 0; i < ny; ++i) {
      for (std::size_t j = 0; j < nx; ++j) {
        const double y = static_cast<double>(i) / static_cast<double>(ny);
        const double x = static_cast<double>(j) / static_cast<double>(nx);
        const double dy = y - cy, dx = x - cx;
        const double r = std::sqrt(dx * dx + dy * dy) + 1e-9;
        // Holland-style tangential wind profile.
        const double vt = vmax * (r / rm) * std::exp(1.0 - r / rm);
        const double u_vortex = -vt * dy / r;  // U = tangential x-component
        const double turb =
            4.0 * (fbm3(x, y, zfrac, 3, 4.0, seed, 0.2 * timestep) - 0.5);
        const double u_env = 6.0 * std::cos(2.0 * std::numbers::pi * y);
        f.at3(k, i, j) =
            static_cast<float>(shear * (u_vortex + u_env) + turb);
      }
    }
  }
  return f;
}

Field hurricane_qvapor(std::size_t nz, std::size_t ny, std::size_t nx,
                       int timestep, std::uint64_t seed) {
  Field f(Dims(nz, ny, nx));
  const double cy = 0.5 + 0.08 * std::sin(0.15 * timestep);
  const double cx = 0.7 - 0.012 * timestep;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t kk = 0; kk < static_cast<std::ptrdiff_t>(nz); ++kk) {
    const auto k = static_cast<std::size_t>(kk);
    const double zfrac = static_cast<double>(k) / static_cast<double>(nz);
    // Exponential vertical stratification of moisture.
    const double strat = 0.022 * std::exp(-4.0 * zfrac);
    for (std::size_t i = 0; i < ny; ++i) {
      for (std::size_t j = 0; j < nx; ++j) {
        const double y = static_cast<double>(i) / static_cast<double>(ny);
        const double x = static_cast<double>(j) / static_cast<double>(nx);
        const double dy = y - cy, dx = x - cx;
        const double r = std::sqrt(dx * dx + dy * dy);
        const double moist_core = 1.0 + 0.9 * std::exp(-r / 0.12);
        const double n = fbm3(x, y, zfrac, 4, 5.0, seed, 0.25 * timestep);
        f.at3(k, i, j) = static_cast<float>(
            std::max(0.0, strat * moist_core * (0.6 + 0.8 * n)));
      }
    }
  }
  return f;
}

Field rtm(std::size_t nz, std::size_t ny, std::size_t nx, int timestep,
          std::uint64_t seed) {
  Field f(Dims(nz, ny, nx));
  // Time scaling: the front needs ~sqrt(3)/c ~ 1.7 time units to traverse
  // the unit domain; mapping 200 paper timesteps (1400..1600) onto that
  // keeps snapshots mid-flight for both the train and test splits.
  const double t = 0.0085 * (timestep - 1395);
  const double freq = 9.0;  // Ricker dominant frequency
  struct Src {
    double z, y, x, t0;
  };
  Rng rng(seed);
  Src srcs[3];
  for (auto& s : srcs) {
    s = {0.05, rng.uniform(0.3, 0.7), rng.uniform(0.3, 0.7),
         -0.04 * rng.uniform()};
  }
  const double pi2f2 = std::numbers::pi * std::numbers::pi * freq * freq;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t kk = 0; kk < static_cast<std::ptrdiff_t>(nz); ++kk) {
    const auto k = static_cast<std::size_t>(kk);
    const double z = static_cast<double>(k) / static_cast<double>(nz);
    // Layered medium: velocity increases with depth in steps.
    const double c = 0.9 + 0.25 * std::floor(z * 4.0) / 4.0;
    for (std::size_t i = 0; i < ny; ++i) {
      for (std::size_t j = 0; j < nx; ++j) {
        const double y = static_cast<double>(i) / static_cast<double>(ny);
        const double x = static_cast<double>(j) / static_cast<double>(nx);
        double v = 0.0;
        for (const auto& s : srcs) {
          const double dz = z - s.z, dy = y - s.y, dx = x - s.x;
          const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
          const double tau = t + s.t0 - dist / c;
          const double a = pi2f2 * tau * tau;
          // Ricker wavelet, geometrically attenuated.
          v += (1.0 - 2.0 * a) * std::exp(-a) / (1.0 + 8.0 * dist);
          // Ghost reflection from the free surface (z -> -z image source).
          const double dist_r =
              std::sqrt(dx * dx + dy * dy + (z + s.z) * (z + s.z));
          const double tau_r = t + s.t0 - dist_r / c;
          const double ar = pi2f2 * tau_r * tau_r;
          v -= 0.5 * (1.0 - 2.0 * ar) * std::exp(-ar) / (1.0 + 8.0 * dist_r);
        }
        f.at3(k, i, j) = static_cast<float>(v);
      }
    }
  }
  return f;
}

std::vector<NamedField> figure8_suite(int scale) {
  const auto s = static_cast<std::size_t>(std::max(1, scale));
  std::vector<NamedField> out;
  out.push_back({"CESM-CLDHGH", cesm_cldhgh(256 * s, 512 * s, /*timestep=*/55)});
  out.push_back({"CESM-FREQSH", cesm_freqsh(256 * s, 512 * s, 55)});
  out.push_back({"EXAFEL", exafel(370 * s, 388 * s, 310)});
  Field bd = nyx_baryon_density(64 * s, 42);
  bd.log_transform();
  out.push_back({"NYX-baryon_density(log)", std::move(bd)});
  Field tp = nyx_temperature(64 * s, 42);
  tp.log_transform();
  out.push_back({"NYX-temperature(log)", std::move(tp)});
  out.push_back({"Hurricane-QVAPOR",
                 hurricane_qvapor(32 * s, 80 * s, 80 * s, 43)});
  out.push_back({"Hurricane-U", hurricane_u(32 * s, 80 * s, 80 * s, 43)});
  out.push_back({"RTM", rtm(64 * s, 64 * s, 64 * s, 1510)});
  return out;
}

}  // namespace aesz::synth
