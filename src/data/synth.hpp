#pragma once

#include <string>
#include <vector>

#include "data/field.hpp"

namespace aesz::synth {

/// Synthetic stand-ins for the five SDRBench application datasets used in
/// the paper (see DESIGN.md "Substitutions"). Each generator is a
/// deterministic function of (dims, timestep, seed); the paper's train/test
/// protocol ("different time steps or the simulation running with different
/// configuration settings") maps to disjoint timestep ranges and/or
/// different seeds.
///
/// The generators reproduce the statistical features that drive the
/// compression results:
///  - CESM CLDHGH/FREQSH: 2-D cloud/frequency fractions in [0,1], smooth
///    multi-scale structure with zonal banding, sharp frontal edges, and
///    large exactly-constant (clear-sky) regions.
///  - EXAFEL: 2-D detector panels — noisy background, Bragg peaks, panel
///    seams (concatenated 185x388-style tiles).
///  - NYX: 3-D cosmology — log-normal baryon density with filamentary
///    contrast, correlated temperature, spikier dark-matter density.
///  - Hurricane: 3-D vortex wind component U and vertically stratified
///    moisture QVAPOR.
///  - RTM: 3-D seismic wavefield — expanding wavefronts (Ricker wavelets)
///    over a layered medium; timestep controls the front radius.

/// CESM-like high-cloud fraction (values in [0,1], large constant regions).
Field cesm_cldhgh(std::size_t h, std::size_t w, int timestep,
                  std::uint64_t seed = 1);

/// CESM-like shallow-convection frequency (smoother, fewer constants).
Field cesm_freqsh(std::size_t h, std::size_t w, int timestep,
                  std::uint64_t seed = 2);

/// EXAFEL-like diffraction frame (concatenated panels, Bragg peaks, noise).
Field exafel(std::size_t h, std::size_t w, int timestep,
             std::uint64_t seed = 3);

/// NYX-like baryon density (log-normal; call .log_transform() before
/// compression, as the paper does on NYX fields).
Field nyx_baryon_density(std::size_t n, int timestep, std::uint64_t seed = 4);

/// NYX-like temperature (correlated with density, power-law tail).
Field nyx_temperature(std::size_t n, int timestep, std::uint64_t seed = 5);

/// NYX-like dark-matter density (spikier than baryon density).
Field nyx_dark_matter_density(std::size_t n, int timestep,
                              std::uint64_t seed = 6);

/// Hurricane-like wind component U on (z, y, x) grid.
Field hurricane_u(std::size_t nz, std::size_t ny, std::size_t nx,
                  int timestep, std::uint64_t seed = 7);

/// Hurricane-like water-vapor mixing ratio QVAPOR.
Field hurricane_qvapor(std::size_t nz, std::size_t ny, std::size_t nx,
                       int timestep, std::uint64_t seed = 8);

/// RTM-like wavefield snapshot.
Field rtm(std::size_t nz, std::size_t ny, std::size_t nx, int timestep,
          std::uint64_t seed = 9);

/// Multi-octave value noise in [0,1]; exposed for tests and for building
/// custom workloads. `cells0` is the coarsest lattice resolution.
Field value_noise_2d(std::size_t h, std::size_t w, int octaves,
                     double cells0, std::uint64_t seed, double tphase = 0.0);
Field value_noise_3d(std::size_t n0, std::size_t n1, std::size_t n2,
                     int octaves, double cells0, std::uint64_t seed,
                     double tphase = 0.0);

/// A named (field, description) bundle used by the rate-distortion benches.
struct NamedField {
  std::string name;
  Field field;
};

/// The eight evaluation fields of Fig. 8 at CPU-scale dims, generated from
/// the *test* split (timesteps disjoint from what training helpers use).
std::vector<NamedField> figure8_suite(int scale = 1);

}  // namespace aesz::synth
