#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "service/transport.hpp"
#include "util/expected.hpp"

namespace aesz::service {

/// Deterministic fault injection for the service layer. Every fault is a
/// pure function of (seed, operation index), so a failing chaos run
/// reproduces from its seed alone — no flaky-rerun archaeology.
///
/// FaultyTransport wraps any Transport and misbehaves on the wire the way
/// real networks do: frames vanish, arrive with flipped bits, stall, or
/// the connection dies mid-conversation. It corrupts what the PEER
/// receives, never what the caller handed in — the injected faults model
/// the network between two honest endpoints.
class FaultyTransport final : public Transport {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Per-send probabilities in [0,1], checked in this order; at most
    /// one fires per frame.
    double drop_rate = 0.0;   // frame silently vanishes (send "succeeds")
    double flip_rate = 0.0;   // one bit of the frame body flips in transit
    double reset_rate = 0.0;  // connection resets: send fails, peer unblocks
    /// Fixed stall injected before every recv (0 = none) — the knob that
    /// exercises client-side timeouts.
    std::uint64_t recv_delay_ms = 0;
  };

  FaultyTransport(std::unique_ptr<Transport> inner, Options opt)
      : inner_(std::move(inner)), opt_(opt) {}

  Status send_frame(std::span<const std::uint8_t> frame) override;
  Expected<std::vector<std::uint8_t>> recv_frame() override;
  void shutdown() override { inner_->shutdown(); }
  void set_frame_crc(bool on) override { inner_->set_frame_crc(on); }
  bool frame_crc() const override { return inner_->frame_crc(); }

  /// What actually fired, for asserting a chaos schedule did its job.
  struct Stats {
    std::uint64_t sends = 0, recvs = 0;
    std::uint64_t dropped = 0, flipped = 0, reset = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::uint64_t next_rand();

  std::unique_ptr<Transport> inner_;
  Options opt_;
  Stats stats_;
  std::uint64_t rng_state_ = 0;
  bool rng_seeded_ = false;
  bool dead_ = false;  // a reset is permanent, like a real RST
};

/// Deterministic file-write fault injector for crash-consistency sweeps:
/// behaves like a disk (or a process) that dies after accepting exactly
/// `budget` bytes. Writes past the budget are SHORT — the boundary write
/// keeps its leading bytes — which is precisely the torn-append shape a
/// kill -9 mid-write leaves behind. bytes() is "what made it to disk";
/// feed it to temporal::recover_stream and friends to prove recovery.
class FaultyFile {
 public:
  /// Accept `budget` bytes, then tear. SIZE_MAX = never tear.
  explicit FaultyFile(std::size_t budget) : budget_(budget) {}

  /// False once the budget is exhausted (the ENOSPC / killed-writer
  /// moment); the failing write still lands its first budget-remaining
  /// bytes, modeling a short write.
  bool write(std::span<const std::uint8_t> data);

  /// fsync stand-in: false after the tear (nothing further is durable).
  bool sync() const { return !torn_; }

  bool torn() const { return torn_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::size_t budget_;
  bool torn_ = false;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace aesz::service
