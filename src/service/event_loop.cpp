#include "service/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstring>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "obs/log.hpp"
#include "service/protocol.hpp"
#include "util/crc32c.hpp"

namespace aesz::service {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// ----------------------------------------------------------- EventLoop ----

EventLoop::EventLoop(bool force_poll) {
#ifdef __linux__
  if (!force_poll) epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
#else
  (void)force_poll;
#endif
}

EventLoop::~EventLoop() {
#ifdef __linux__
  if (epfd_ >= 0) ::close(epfd_);
#endif
}

void EventLoop::add(int fd, bool want_read, bool want_write) {
  interest_[fd] = Interest{want_read, want_write};
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  }
#endif
}

void EventLoop::modify(int fd, bool want_read, bool want_write) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) return;
  if (it->second.read == want_read && it->second.write == want_write)
    return;
  it->second = Interest{want_read, want_write};
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }
#endif
}

void EventLoop::remove(int fd) {
  interest_.erase(fd);
#ifdef __linux__
  if (epfd_ >= 0) ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
}

int EventLoop::wait(std::vector<Event>& out, int timeout_ms) {
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event evs[64];
    const int n = ::epoll_wait(epfd_, evs, 64, timeout_ms);
    if (n <= 0) return 0;  // timeout or EINTR
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = evs[i].data.fd;
      // EPOLLHUP still allows draining buffered input, so it maps to
      // readable (a read then observes EOF); only EPOLLERR is fatal here.
      e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & EPOLLERR) != 0;
      out.push_back(e);
    }
    return n;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(interest_.size());
  for (const auto& [fd, in] : interest_) {
    pollfd p{};
    p.fd = fd;
    p.events = static_cast<short>((in.read ? POLLIN : 0) |
                                  (in.write ? POLLOUT : 0));
    pfds.push_back(p);
  }
  const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (n <= 0) return 0;
  int appended = 0;
  for (const pollfd& p : pfds) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
    out.push_back(e);
    ++appended;
  }
  return appended;
}

// --------------------------------------------------------- EventServer ----

EventServer::CompletionQueue::CompletionQueue() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0)
    throw Error(ErrCode::kIoError,
                std::string("event server wake pipe: ") +
                    std::strerror(errno));
  set_nonblocking(fds[0]);
  set_nonblocking(fds[1]);
  wake_rd = fds[0];
  wake_wr = fds[1];
}

EventServer::CompletionQueue::~CompletionQueue() {
  ::close(wake_rd);
  ::close(wake_wr);
}

void EventServer::CompletionQueue::push(Completion done) {
  {
    std::lock_guard<std::mutex> lock(mu);
    q.push_back(std::move(done));
  }
  wake();
}

void EventServer::CompletionQueue::wake() {
  const std::uint8_t one = 1;
  // EAGAIN means the pipe already holds a wakeup; that is enough.
  (void)!::write(wake_wr, &one, 1);
}

EventServer::EventServer(Server& server, TcpListener& listener, Options opt)
    : server_(server),
      listener_(listener),
      opt_(opt),
      loop_(opt_.force_poll),
      done_q_(std::make_shared<CompletionQueue>()),
      connections_(server.metrics().gauge(
          "ev_connections", "connections currently open")),
      connections_total_(server.metrics().counter(
          "ev_connections_total", "connections accepted")),
      connections_closed_(server.metrics().counter(
          "ev_connections_closed", "connections fully closed")),
      inflight_(server.metrics().gauge(
          "ev_inflight", "submitted, unanswered requests (all connections)")),
      conns_executing_(server.metrics().gauge(
          "ev_conns_executing", "connections with requests executing")),
      conns_write_blocked_(server.metrics().gauge(
          "ev_conns_write_blocked", "connections with queued outbound bytes")),
      conns_read_paused_(server.metrics().gauge(
          "ev_conns_read_paused", "connections paused by backpressure")),
      rejected_requests_(server.metrics().counter(
          "ev_rejected_requests", "requests answered kOverloaded unqueued")),
      read_pauses_(server.metrics().counter(
          "ev_read_pauses", "backpressure read-pause transitions")),
      buffered_high_water_(server.metrics().gauge(
          "ev_buffered_high_water",
          "max outbound bytes ever buffered on one connection")) {
  set_nonblocking(listener_.fd());
}

EventServer::~EventServer() {
  for (auto& [fd, c] : conns_) ::close(fd);
  conns_.clear();
  // done_q_ (and its wake pipe) is NOT torn down here: completion lambdas
  // still executing in the Server's pool share ownership and release it
  // when the last one finishes.
}

void EventServer::stop() {
  stop_.store(true, std::memory_order_release);
  done_q_->wake();
}

void EventServer::update_interest(Conn& c) {
  // State gauges ride the same transition points the poller interest does.
  const bool executing = c.inflight > 0;
  if (executing != c.gauged_exec) {
    c.gauged_exec = executing;
    if (executing)
      conns_executing_.add(1);
    else
      conns_executing_.sub(1);
  }
  const bool write_blocked = !c.wqueue.empty();
  if (write_blocked != c.gauged_write) {
    c.gauged_write = write_blocked;
    if (write_blocked)
      conns_write_blocked_.add(1);
    else
      conns_write_blocked_.sub(1);
  }

  // Backpressure: a slow reader pauses its own reads past the threshold
  // and resumes below half, so its buffered responses stay bounded.
  if (!c.read_paused && c.buffered > opt_.max_conn_buffered) {
    c.read_paused = true;
    read_pauses_.inc();
    conns_read_paused_.add(1);
    AESZ_LOG_DEBUG("event",
                   "conn=%" PRIu64 " read paused (%zu bytes buffered)",
                   c.id, c.buffered);
  } else if (c.read_paused && c.buffered < opt_.max_conn_buffered / 2) {
    c.read_paused = false;
    conns_read_paused_.sub(1);
    AESZ_LOG_DEBUG("event", "conn=%" PRIu64 " read resumed", c.id);
  }

  const bool want_read = !c.read_paused && !c.peer_eof && !c.closing;
  loop_.modify(c.fd, want_read, !c.wqueue.empty());
}

bool EventServer::maybe_close(Conn& c) {
  if ((c.closing || c.peer_eof) && c.inflight == 0 && c.wqueue.empty() &&
      c.ready.empty()) {
    close_conn(c);
    return true;
  }
  return false;
}

void EventServer::close_conn(Conn& c) {
  if (c.gauged_exec)
    conns_executing_.sub(1);
  if (c.gauged_write)
    conns_write_blocked_.sub(1);
  if (c.read_paused)
    conns_read_paused_.sub(1);
  loop_.remove(c.fd);
  ::close(c.fd);
  AESZ_LOG_DEBUG("event", "conn=%" PRIu64 " closed", c.id);
  id_to_fd_.erase(c.id);
  connections_.sub(1);
  connections_closed_.inc();
  conns_.erase(c.fd);  // invalidates `c`
}

void EventServer::accept_ready() {
  for (;;) {
    if (!accepting_) return;
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or listener trouble — wait for the next
    }
    set_nonblocking(fd);
    Conn c;
    c.fd = fd;
    c.id = next_conn_id_++;
    id_to_fd_[c.id] = fd;
    const std::uint64_t cid = c.id;
    conns_.emplace(fd, std::move(c));
    loop_.add(fd, /*want_read=*/true, /*want_write=*/false);
    connections_.add(1);
    connections_total_.inc();
    AESZ_LOG_DEBUG("event", "conn=%" PRIu64 " accepted (fd=%d)", cid, fd);
    if (opt_.accept_limit > 0 &&
        connections_total_.value() >=
            opt_.accept_limit) {
      accepting_ = false;
      loop_.remove(listener_.fd());
      return;
    }
  }
}

bool EventServer::admit_frame(Conn& c, std::vector<std::uint8_t> frame) {
  const std::uint64_t seq = c.next_seq++;
  if (inflight_.value() >= 0 &&
      static_cast<std::size_t>(inflight_.value()) >= opt_.max_inflight) {
    // Admission control: answer immediately (in this request's ordered
    // slot) instead of queueing work the server has no room for.
    rejected_requests_.inc();
    AESZ_LOG_WARN("event", "conn=%" PRIu64 " overloaded: %zu in flight",
                  c.id, opt_.max_inflight);
    return complete(c, seq,
                    encode_error_response(
                        {ErrCode::kOverloaded,
                         "server overloaded: too many requests in flight"}));
  }
  inflight_.add(1);
  ++c.inflight;
  const std::uint64_t conn_id = c.id;
  // The lambda captures the shared queue, NOT `this`: it may run after
  // the EventServer (and its wake pipe, were it owned there) is gone.
  server_.submit(std::move(frame),
                 [dq = done_q_, conn_id, seq](
                     std::vector<std::uint8_t> response) {
                   dq->push(Completion{conn_id, seq, std::move(response)});
                 },
                 conn_id);
  return false;
}

bool EventServer::parse_frames(Conn& c) {
  while (!c.closing) {
    if (c.rbuf.size() < 4) return false;
    std::uint32_t len = 0;
    std::memcpy(&len, c.rbuf.data(), 4);
    // Bit 31 marks a 4-byte CRC32C trailer after the body (protocol.hpp
    // kFrameCrcFlag); masked off before the cap check so a checksummed
    // max-size frame is not misread as hostile.
    const bool has_crc = (len & kFrameCrcFlag) != 0;
    len &= kFrameLenMask;
    // Validated BEFORE any body allocation — a hostile 4-byte prefix
    // cannot size a buffer. Framing cannot resynchronize after a bad
    // prefix, so the typed error is this connection's final response.
    if (len > kMaxFrameBytes) {
      // closing is set BEFORE complete(): its opportunistic flush may
      // close the connection (flushed in full, or peer reset), and `c`
      // must not be touched after that.
      c.closing = true;
      c.rbuf.clear();
      AESZ_LOG_WARN("event",
                    "conn=%" PRIu64 " hostile frame prefix (%u bytes "
                    "declared); closing after the error answer",
                    c.id, len);
      return complete(c, c.next_seq++,
                      encode_error_response(
                          {ErrCode::kCorruptStream,
                           "declared frame length exceeds limit"}));
    }
    const std::size_t total =
        4 + static_cast<std::size_t>(len) + (has_crc ? kFrameCrcBytes : 0);
    if (c.rbuf.size() < total) return false;
    std::vector<std::uint8_t> frame(c.rbuf.begin() + 4,
                                    c.rbuf.begin() + 4 + len);
    if (has_crc) {
      std::uint32_t want = 0;
      std::memcpy(&want, c.rbuf.data() + 4 + len, kFrameCrcBytes);
      if (util::crc32c(frame) != want) {
        // The length field was intact, so framing stays resynchronized:
        // answer the damaged request with a typed error and keep the
        // connection — the client's retry policy takes it from there.
        c.rbuf.erase(c.rbuf.begin(),
                     c.rbuf.begin() + static_cast<std::ptrdiff_t>(total));
        AESZ_LOG_WARN("event",
                      "conn=%" PRIu64 " frame checksum mismatch (%u bytes)",
                      c.id, len);
        if (complete(c, c.next_seq++,
                     encode_error_response({ErrCode::kChecksumMismatch,
                                            "frame checksum mismatch"})))
          return true;
        continue;
      }
      // A verified checksummed frame opts this connection into trailers
      // on every response from here on (sticky, like the transports).
      c.want_crc = true;
    }
    c.rbuf.erase(c.rbuf.begin(),
                 c.rbuf.begin() + static_cast<std::ptrdiff_t>(total));
    if (admit_frame(c, std::move(frame))) return true;
  }
  return false;
}

bool EventServer::read_ready(Conn& c) {
  std::uint8_t tmp[65536];
  // Bounded burst per readiness: level-triggered polling re-reports
  // whatever this pass leaves in the socket, keeping the loop fair to
  // other connections.
  for (int burst = 0; burst < 4; ++burst) {
    if (c.read_paused || c.closing || c.peer_eof) break;
    const ssize_t r = ::recv(c.fd, tmp, sizeof tmp, 0);
    if (r > 0) {
      c.rbuf.insert(c.rbuf.end(), tmp, tmp + r);
      if (parse_frames(c)) return true;  // connection closed; `c` is gone
      if (static_cast<std::size_t>(r) < sizeof tmp) break;
    } else if (r == 0) {
      // Half-close: the peer is done asking; it still gets every answer
      // it is owed before the connection goes away.
      c.peer_eof = true;
      break;
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else {
      close_conn(c);
      return true;
    }
  }
  if (maybe_close(c)) return true;
  update_interest(c);
  return false;
}

bool EventServer::write_ready(Conn& c) {
  while (!c.wqueue.empty()) {
    const std::vector<std::uint8_t>& front = c.wqueue.front();
    const ssize_t w = ::send(c.fd, front.data() + c.woff,
                             front.size() - c.woff, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(c);  // peer is gone; nothing left to deliver
      return true;
    }
    c.woff += static_cast<std::size_t>(w);
    c.buffered -= static_cast<std::size_t>(w);
    if (c.woff == front.size()) {
      c.wqueue.pop_front();
      c.woff = 0;
    }
  }
  if (maybe_close(c)) return true;
  update_interest(c);
  return false;
}

bool EventServer::complete(Conn& c, std::uint64_t seq,
                           std::vector<std::uint8_t> response) {
  // Frame (length prefix + body, plus a CRC32C trailer for peers that
  // checksum) now, park in the ordered slot, then flush every
  // consecutively-ready response.
  std::uint32_t len = static_cast<std::uint32_t>(response.size());
  if (c.want_crc) len |= kFrameCrcFlag;
  std::vector<std::uint8_t> framed(
      4 + response.size() + (c.want_crc ? kFrameCrcBytes : 0));
  std::memcpy(framed.data(), &len, 4);
  std::memcpy(framed.data() + 4, response.data(), response.size());
  if (c.want_crc) {
    const std::uint32_t crc = util::crc32c(response);
    std::memcpy(framed.data() + 4 + response.size(), &crc, kFrameCrcBytes);
  }
  c.buffered += framed.size();
  // Single-writer max: complete() only ever runs on the loop thread, so a
  // plain compare-and-set needs no CAS loop.
  const auto hw = static_cast<std::int64_t>(c.buffered);
  if (hw > buffered_high_water_.value()) buffered_high_water_.set(hw);
  c.ready.emplace(seq, std::move(framed));
  while (true) {
    auto it = c.ready.find(c.next_flush);
    if (it == c.ready.end()) break;
    c.wqueue.push_back(std::move(it->second));
    c.ready.erase(it);
    ++c.next_flush;
  }
  // Opportunistic flush; write_ready also refreshes interest/gauges and
  // closes the connection (returning true) if this was the last owed byte
  // of a closing connection or the peer reset underneath the send.
  return write_ready(c);
}

void EventServer::drain_completions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(done_q_->mu);
    batch.swap(done_q_->q);
  }
  for (Completion& done : batch) {
    inflight_.sub(1);
    auto idit = id_to_fd_.find(done.conn_id);
    if (idit == id_to_fd_.end()) continue;  // connection died first
    auto cit = conns_.find(idit->second);
    if (cit == conns_.end()) continue;
    Conn& c = cit->second;
    --c.inflight;
    // complete() may close the connection; `c` is not touched afterwards.
    (void)complete(c, done.seq, std::move(done.response));
  }
}

void EventServer::run() {
  const int wake_rd = done_q_->wake_rd;
  loop_.add(wake_rd, /*want_read=*/true, /*want_write=*/false);
  accepting_ = opt_.accept_limit == 0 ||
               connections_total_.value() <
                   opt_.accept_limit;
  if (accepting_)
    loop_.add(listener_.fd(), /*want_read=*/true, /*want_write=*/false);

  std::vector<EventLoop::Event> events;
  bool stopping = false;
  for (;;) {
    events.clear();
    loop_.wait(events, /*timeout_ms=*/-1);
    for (const EventLoop::Event& ev : events) {
      if (ev.fd == wake_rd) {
        std::uint8_t sink[256];
        while (::read(wake_rd, sink, sizeof sink) > 0) {
        }
        drain_completions();
        continue;
      }
      if (ev.fd == listener_.fd()) {
        accept_ready();
        continue;
      }
      auto it = conns_.find(ev.fd);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& c = it->second;
      if (ev.error) {
        close_conn(c);
        continue;
      }
      if (ev.writable && write_ready(c)) continue;
      // Re-find: write_ready may not close but the map is stable here.
      if (ev.readable) (void)read_ready(c);
    }

    if (stop_.load(std::memory_order_acquire) && !stopping) {
      stopping = true;
      if (accepting_) {
        accepting_ = false;
        loop_.remove(listener_.fd());
      }
      std::vector<int> fds;
      fds.reserve(conns_.size());
      for (const auto& [fd, c] : conns_) fds.push_back(fd);
      for (int fd : fds) {
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        it->second.closing = true;
        if (!maybe_close(it->second)) update_interest(it->second);
      }
    }

    const bool limit_done =
        opt_.accept_limit > 0 &&
        connections_closed_.value() >=
            opt_.accept_limit;
    if ((stopping || limit_done) && conns_.empty()) break;
  }
  loop_.remove(wake_rd);
  if (accepting_) loop_.remove(listener_.fd());
  // Late completions for connections that no longer exist still need
  // their inflight accounting drained. Completions arriving after this
  // (requests still executing in the pool) land in done_q_, which the
  // lambdas keep alive past the EventServer itself.
  drain_completions();
}

}  // namespace aesz::service
