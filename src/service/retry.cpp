#include "service/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace aesz::service {

namespace {

/// splitmix64: tiny, stateless, and good enough to decorrelate retry
/// schedules — this is jitter, not cryptography.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t RetryPolicy::delay_ms(std::size_t attempt) const {
  if (attempt == 0) attempt = 1;
  // base * 2^(attempt-1), saturating well before overflow.
  const std::size_t shift = std::min<std::size_t>(attempt - 1, 32);
  std::uint64_t delay = base_delay_ms << shift;
  if (delay > max_delay_ms || (delay >> shift) != base_delay_ms)
    delay = max_delay_ms;
  if (jitter > 0.0 && delay > 0) {
    // Deterministic in (seed, attempt): delay * (1 +/- jitter).
    const std::uint64_t r = mix64(seed ^ attempt);
    const double unit = static_cast<double>(r >> 11) * 0x1.0p-53;  // [0,1)
    const double factor = 1.0 + jitter * (2.0 * unit - 1.0);
    delay = static_cast<std::uint64_t>(static_cast<double>(delay) * factor);
  }
  return std::min(delay, max_delay_ms);
}

void sleep_for_ms(std::uint64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace aesz::service
