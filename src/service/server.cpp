#include "service/server.hpp"

#include <cctype>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <thread>
#include <utility>

#include "core/aesz.hpp"
#include "core/model_zoo.hpp"
#include "pipeline/container.hpp"
#include "pipeline/parallel_compressor.hpp"
#include "predictors/registry.hpp"
#include "util/bytestream.hpp"

namespace aesz::service {

namespace {

std::string lower(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Split an optional "parallel:" prefix off a lowercased codec name.
bool strip_parallel(std::string& name) {
  constexpr const char* kPrefix = "parallel:";
  if (name.rfind(kPrefix, 0) != 0) return false;
  name = name.substr(9);
  return true;
}

bool is_aesz_name(const std::string& lowered) {
  return lowered == "ae-sz" || lowered == "aesz";
}

/// Rank declared by a compressed stream's own header (shared v2 codec
/// header, or the container header for parallel streams) — so a cached
/// decompress codec is built at the rank the stream needs, not a guess.
/// Falls back to `fallback` when the prefix is too short or out of range.
int peek_rank(std::span<const std::uint8_t> stream, int fallback) {
  ByteReader r(stream);
  std::uint32_t magic = 0;
  std::uint8_t version = 0, rank = 0;
  if (!r.try_get(magic) || !r.try_get(version)) return fallback;
  if (magic == pipeline::kContainerMagic) {
    std::uint32_t inner = 0;
    if (!r.try_get(inner)) return fallback;
  }
  if (!r.try_get(rank)) return fallback;
  return (rank >= 1 && rank <= 3) ? rank : fallback;
}

}  // namespace

Server::Server() : Server(Options{}) {}

Server::Server(Options opt)
    : opt_(std::move(opt)),
      pool_(std::make_unique<ThreadPool>(opt_.threads)) {}

Expected<std::unique_ptr<Compressor>> Server::build_codec(
    const std::string& base, bool parallel, int rank) {
  try {
    if (base == "ae-sz" && !opt_.aesz_model.empty()) {
      // Warm trained-model path: AE-SZ instances come from the server's
      // model file instead of the registry's fixed-seed untrained default.
      auto make_aesz = [this](int) -> std::unique_ptr<Compressor> {
        auto c = std::make_unique<AESZ>(
            model_zoo::options_for(opt_.aesz_field), /*seed=*/1);
        c->load_model(opt_.aesz_model);
        counters_.ae_model_loads.fetch_add(1, std::memory_order_relaxed);
        return c;
      };
      if (parallel)
        return std::unique_ptr<Compressor>(
            std::make_unique<pipeline::ParallelCompressor>(
                pipeline::ParallelCompressor::Options{base, 0, 0}, rank,
                std::move(make_aesz)));
      return make_aesz(rank);
    }
    auto created = CodecRegistry::instance().create(
        (parallel ? "parallel:" : "") + base, rank);
    if (created.ok() && base == "ae-sz" && !parallel)
      counters_.ae_model_loads.fetch_add(1, std::memory_order_relaxed);
    return created;
  } catch (const Error& e) {
    const ErrCode c = e.code() == ErrCode::kOk ? ErrCode::kInternal : e.code();
    return Status::error(c, e.what());
  } catch (const std::exception& e) {
    // A missing/corrupt model file must be a typed status, not a crash.
    return Status::error(ErrCode::kInternal, e.what());
  }
}

Expected<Server::CachedCodec> Server::codec_for(const std::string& name,
                                                int rank) {
  // Canonicalize before building the cache key so every spelling of the
  // same codec ("AE-SZ", "AESZ", "parallel:aesz", ...) lands on ONE slot
  // — mixed spellings must not double-load a model.
  std::string base = lower(name);
  const bool parallel = strip_parallel(base);
  if (is_aesz_name(base)) base = "ae-sz";
  const std::string key =
      (parallel ? "parallel:" : "") + base + "#" + std::to_string(rank);

  std::shared_ptr<CacheEntry> entry;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (auto it = cache_.find(key); it != cache_.end()) {
      counters_.codec_cache_hits.fetch_add(1, std::memory_order_relaxed);
      entry = it->second;
    } else {
      counters_.codec_cache_misses.fetch_add(1, std::memory_order_relaxed);
      entry = std::make_shared<CacheEntry>();
      cache_.emplace(key, entry);
    }
  }

  // Construction runs under the ENTRY lock, not the cache lock: the
  // build-exactly-once guarantee (what `ae_model_loads` certifies) holds
  // per codec, while requests for other codecs hit the cache in parallel
  // even during a seconds-long model load.
  std::unique_lock<std::mutex> entry_lock(entry->mu);
  if (!entry->codec) {
    auto built = build_codec(base, parallel, rank);
    if (!built.ok()) {
      entry_lock.unlock();
      // Drop the empty slot so hostile unknown codec names cannot grow
      // the cache without bound.
      std::lock_guard<std::mutex> lock(cache_mu_);
      if (auto it = cache_.find(key);
          it != cache_.end() && it->second == entry)
        cache_.erase(it);
      return built.status();
    }
    entry->codec = std::move(built).value();
  }
  return CachedCodec{entry->codec,
                     std::shared_ptr<std::mutex>(entry, &entry->mu)};
}

std::vector<std::uint8_t> Server::error_frame(ErrCode code,
                                              std::string message) {
  counters_.error_responses.fetch_add(1, std::memory_order_relaxed);
  if (code == ErrCode::kOk) code = ErrCode::kInternal;
  return encode_error_response({code, std::move(message)});
}

std::vector<std::uint8_t> Server::handle_compress(
    std::span<const std::uint8_t> frame) {
  auto req = parse_compress_request(frame);
  if (!req.ok())
    return error_frame(req.status().code, req.status().message);
  std::vector<float> values(req->dims.total());
  std::memcpy(values.data(), req->field.data(), req->field.size());
  const Field f(req->dims, std::move(values));
  auto entry = codec_for(req->codec, req->dims.rank);
  if (!entry.ok())
    return error_frame(entry.status().code, entry.status().message);
  std::vector<std::uint8_t> stream;
  {
    std::lock_guard<std::mutex> lock(*entry->mu);
    if (!entry->codec->supports_rank(req->dims.rank))
      return error_frame(ErrCode::kUnsupported,
                         req->codec + " does not support rank-" +
                             std::to_string(req->dims.rank) + " fields");
    stream = entry->codec->compress(f, req->eb);
  }
  // Report the bound the encoder resolved and enforced — the same
  // resolution sz::resolve_abs_eb applies on the compress side.
  const double abs_eb = req->eb.absolute(f.value_range());
  return encode_compress_response({abs_eb, stream});
}

std::vector<std::uint8_t> Server::handle_decompress(
    std::span<const std::uint8_t> frame) {
  auto req = parse_decompress_request(frame);
  if (!req.ok())
    return error_frame(req.status().code, req.status().message);
  std::string codec_name = req->codec;
  if (codec_name.empty()) {
    auto identified = CodecRegistry::instance().identify(req->stream);
    if (!identified.ok())
      return error_frame(identified.status().code,
                         identified.status().message);
    codec_name = *identified;
  }
  auto entry = codec_for(codec_name, peek_rank(req->stream, /*fallback=*/2));
  if (!entry.ok())
    return error_frame(entry.status().code, entry.status().message);
  Expected<Field> result = [&] {
    std::lock_guard<std::mutex> lock(*entry->mu);
    return entry->codec->decompress(req->stream);
  }();
  if (!result.ok())
    return error_frame(result.status().code, result.status().message);
  const auto floats = result->values();
  return encode_decompress_response(
      {result->dims(),
       {reinterpret_cast<const std::uint8_t*>(floats.data()),
        floats.size() * sizeof(float)}});
}

std::vector<std::uint8_t> Server::handle_list_codecs() {
  auto& reg = CodecRegistry::instance();
  std::vector<CodecSummary> codecs;
  for (const auto& name : reg.names()) {
    const CodecInfo* info = reg.find(name);
    if (!info) continue;
    codecs.push_back({info->name, info->error_bounded, info->magic,
                      info->description});
  }
  return encode_list_codecs_response(codecs);
}

StatsResponse Server::snapshot() const {
  StatsResponse out;
  const auto put = [&](const char* name,
                       const std::atomic<std::uint64_t>& v) {
    out.counters.emplace_back(name, v.load(std::memory_order_relaxed));
  };
  put("requests", counters_.requests);
  put("compress_requests", counters_.compress_requests);
  put("decompress_requests", counters_.decompress_requests);
  put("list_codecs_requests", counters_.list_codecs_requests);
  put("stats_requests", counters_.stats_requests);
  put("error_responses", counters_.error_responses);
  put("bytes_in", counters_.bytes_in);
  put("bytes_out", counters_.bytes_out);
  put("codec_cache_hits", counters_.codec_cache_hits);
  put("codec_cache_misses", counters_.codec_cache_misses);
  put("ae_model_loads", counters_.ae_model_loads);
  return out;
}

std::vector<std::uint8_t> Server::handle_stats() {
  return encode_stats_response(snapshot());
}

std::vector<std::uint8_t> Server::dispatch(
    Op op, std::span<const std::uint8_t> frame) {
  switch (op) {
    case Op::kCompressRequest:
      counters_.compress_requests.fetch_add(1, std::memory_order_relaxed);
      return handle_compress(frame);
    case Op::kDecompressRequest:
      counters_.decompress_requests.fetch_add(1, std::memory_order_relaxed);
      return handle_decompress(frame);
    case Op::kListCodecsRequest:
      counters_.list_codecs_requests.fetch_add(1, std::memory_order_relaxed);
      return handle_list_codecs();
    case Op::kStatsRequest:
      counters_.stats_requests.fetch_add(1, std::memory_order_relaxed);
      return handle_stats();
    default:
      return error_frame(ErrCode::kUnsupported,
                         std::string(op_name(op)) + " is not a request");
  }
}

std::vector<std::uint8_t> Server::handle_frame(
    std::span<const std::uint8_t> frame) {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_in.fetch_add(frame.size(), std::memory_order_relaxed);
  std::vector<std::uint8_t> response;
  const auto op = peek_op(frame);
  if (!op.ok()) {
    response = error_frame(op.status().code, op.status().message);
  } else {
    try {
      response = dispatch(*op, frame);
    } catch (const Error& e) {
      // Same folding as Compressor::decompress: an untyped internal throw
      // during request handling is attributed to the request.
      const ErrCode c =
          e.code() == ErrCode::kOk ? ErrCode::kInternal : e.code();
      response = error_frame(c, e.what());
    } catch (const std::exception& e) {
      // Hostile sizes can surface as bad_alloc/length_error; a request
      // must never take the server down.
      response = error_frame(ErrCode::kInternal, e.what());
    }
  }
  if (response.size() > kMaxFrameBytes) {
    // e.g. a sub-cap compressed stream that decodes past the frame cap.
    // The transport would refuse to send it, and serve()'s writer cannot
    // substitute anything — the client would hang waiting. Answer with a
    // typed error instead.
    response = error_frame(
        ErrCode::kUnsupported,
        "response (" + std::to_string(response.size()) +
            " bytes) exceeds the frame limit; request a smaller field");
  }
  counters_.bytes_out.fetch_add(response.size(), std::memory_order_relaxed);
  return response;
}

void Server::serve(Transport& transport) {
  // Pipelined scheduling: the reader keeps pulling frames and submitting
  // them to the pool while earlier requests execute; the writer thread
  // sends completed responses strictly in request order, so a client that
  // stacks N requests gets N responses in the order it asked. The reader
  // stops accepting new frames while kMaxInflight requests are buffered —
  // without that cap a client that streams requests without draining
  // responses would grow server memory without bound (request bytes plus
  // completed responses), defeating the per-frame size limit.
  constexpr std::size_t kMaxInflight = 32;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::future<std::vector<std::uint8_t>>> inflight;
  bool done = false;

  std::thread writer([&] {
    for (;;) {
      std::future<std::vector<std::uint8_t>> next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done || !inflight.empty(); });
        if (inflight.empty()) return;  // done and drained
        next = std::move(inflight.front());
        inflight.pop_front();
      }
      cv.notify_all();  // a slot freed: unblock a backpressured reader
      // A failed send means the peer is gone; keep draining futures so
      // every submitted request still completes.
      (void)transport.send_frame(next.get());
    }
  });

  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return inflight.size() < kMaxInflight; });
    }
    auto frame = transport.recv_frame();
    if (!frame.ok()) break;  // orderly close or framing violation
    auto fut = pool_->submit(
        [this, bytes = std::move(*frame)] { return handle_frame(bytes); });
    {
      std::lock_guard<std::mutex> lock(mu);
      inflight.push_back(std::move(fut));
    }
    cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  writer.join();
}

}  // namespace aesz::service
