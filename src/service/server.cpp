#include "service/server.hpp"

#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <optional>
#include <thread>
#include <utility>

#include "core/aesz.hpp"
#include "core/model_zoo.hpp"
#include "obs/log.hpp"
#include "pipeline/container.hpp"
#include "pipeline/parallel_compressor.hpp"
#include "predictors/registry.hpp"
#include "progressive/progressive.hpp"
#include "util/bytestream.hpp"

namespace aesz::service {

namespace {

std::string lower(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Split an optional "parallel:" prefix off a lowercased codec name.
bool strip_parallel(std::string& name) {
  constexpr const char* kPrefix = "parallel:";
  if (name.rfind(kPrefix, 0) != 0) return false;
  name = name.substr(9);
  return true;
}

bool is_aesz_name(const std::string& lowered) {
  return lowered == "ae-sz" || lowered == "aesz";
}

/// Rank declared by a compressed stream's own header (shared v2 codec
/// header, or the container header for parallel streams) — so a cached
/// decompress codec is built at the rank the stream needs, not a guess.
/// Falls back to `fallback` when the prefix is too short or out of range.
int peek_rank(std::span<const std::uint8_t> stream, int fallback) {
  ByteReader r(stream);
  std::uint32_t magic = 0;
  std::uint8_t version = 0, rank = 0;
  if (!r.try_get(magic) || !r.try_get(version)) return fallback;
  if (magic == pipeline::kContainerMagic) {
    std::uint32_t inner = 0;
    if (!r.try_get(inner)) return fallback;
  } else if (magic == progressive::kStreamMagic) {
    // AEPR carries its inner codec NAME before the shared rank byte.
    std::uint64_t name_len = 0;
    std::span<const std::uint8_t> name;
    if (!r.try_get_varint(name_len) ||
        name_len > progressive::kMaxInnerName ||
        !r.try_get_bytes(static_cast<std::size_t>(name_len), name))
      return fallback;
  }
  if (!r.try_get(rank)) return fallback;
  return (rank >= 1 && rank <= 3) ? rank : fallback;
}

/// Shared pool of warm inner-codec instances. ParallelCompressor's workers
/// construct one codec each per compress/decompress call by design; for
/// AE-SZ that used to mean a full model build per worker per request. The
/// pool makes those constructions leases instead: an instance is built at
/// most once per peak-concurrent worker for the lifetime of the cached
/// wrapper, then reused by every later request.
struct WarmPool {
  std::mutex mu;
  std::vector<std::unique_ptr<Compressor>> free_list;
  std::function<std::unique_ptr<Compressor>(int)> make;
  int rank = 2;
};

/// The cheap stand-in ParallelCompressor workers receive: every operation
/// leases a real instance from the pool and returns it afterwards, so
/// constructing a PooledCompressor itself loads nothing.
class PooledCompressor final : public Compressor {
 public:
  PooledCompressor(std::shared_ptr<WarmPool> pool, std::string display_name)
      : pool_(std::move(pool)), name_(std::move(display_name)) {}

  std::string name() const override { return name_; }
  using Compressor::compress;
  std::vector<std::uint8_t> compress(const Field& f,
                                     const ErrorBound& eb) override {
    Lease lease(*pool_);
    return lease->compress(f, eb);
  }
  bool supports_rank(int rank) const override {
    Lease lease(*pool_);
    return lease->supports_rank(rank);
  }

 protected:
  Field decompress_impl(std::span<const std::uint8_t> stream) override {
    Lease lease(*pool_);
    auto result = lease->decompress(stream);
    if (!result.ok())
      throw Error(result.status().code, result.status().message);
    return std::move(*result);
  }

 private:
  struct Lease {
    WarmPool& pool;
    std::unique_ptr<Compressor> inst;
    explicit Lease(WarmPool& p) : pool(p) {
      {
        std::lock_guard<std::mutex> lock(pool.mu);
        if (!pool.free_list.empty()) {
          inst = std::move(pool.free_list.back());
          pool.free_list.pop_back();
        }
      }
      if (!inst) inst = pool.make(pool.rank);  // may throw a typed Error
    }
    ~Lease() {
      if (!inst) return;
      std::lock_guard<std::mutex> lock(pool.mu);
      pool.free_list.push_back(std::move(inst));
    }
    Compressor* operator->() const { return inst.get(); }
  };

  std::shared_ptr<WarmPool> pool_;
  std::string name_;
};

}  // namespace

Server::Counters::Counters(obs::MetricsRegistry& m)
    : requests(m.counter("requests", "frames handled (any opcode)")),
      compress_requests(m.counter("compress_requests", "compress frames")),
      decompress_requests(
          m.counter("decompress_requests", "decompress frames")),
      list_codecs_requests(
          m.counter("list_codecs_requests", "list-codecs frames")),
      stats_requests(m.counter("stats_requests", "stats frames")),
      metrics_requests(m.counter("metrics_requests", "metrics frames")),
      error_responses(m.counter("error_responses", "typed error answers")),
      bytes_in(m.counter("bytes_in", "request frame bytes received")),
      bytes_out(m.counter("bytes_out", "response frame bytes produced")),
      codec_cache_hits(
          m.counter("codec_cache_hits", "codec cache lookups that hit")),
      codec_cache_misses(
          m.counter("codec_cache_misses", "codec cache lookups that missed")),
      ae_model_loads(
          m.counter("ae_model_loads", "AE-SZ model constructions/loads")),
      batched_requests(m.counter(
          "batched_requests", "requests routed through the batch scheduler")),
      batch_executions(
          m.counter("batch_executions", "compress_batch group executions")),
      batch_size_1(m.counter("batch_size_1", "groups of size 1")),
      batch_size_2_3(m.counter("batch_size_2_3", "groups of size 2-3")),
      batch_size_4_7(m.counter("batch_size_4_7", "groups of size 4-7")),
      batch_size_8_plus(m.counter("batch_size_8_plus", "groups of size 8+")),
      open_stream_requests(
          m.counter("open_stream_requests", "open-stream frames")),
      append_timestep_requests(
          m.counter("append_timestep_requests", "append-timestep frames")),
      read_timestep_requests(
          m.counter("read_timestep_requests", "read-timestep frames")),
      close_stream_requests(
          m.counter("close_stream_requests", "close-stream frames")),
      sessions_opened(m.counter("sessions_opened", "stream sessions opened")),
      sessions_closed(
          m.counter("sessions_closed", "stream sessions closed by clients")),
      sessions_reaped(
          m.counter("sessions_reaped", "stream sessions reaped while idle")),
      session_timesteps_stored(m.counter("session_timesteps_stored",
                                         "timesteps appended to sessions")),
      read_partial_requests(
          m.counter("read_partial_requests", "read-partial frames")),
      deadline_requests(
          m.counter("deadline_requests", "deadline-enveloped frames")),
      timeout_responses(m.counter(
          "timeout_responses", "requests answered kTimeout (budget "
                               "expired while queued)")) {}

Server::Gauges::Gauges(obs::MetricsRegistry& m)
    : batch_queue_depth(
          m.gauge("batch_queue_depth", "requests parked with the batcher")),
      pool_queue_depth(
          m.gauge("pool_queue_depth", "tasks queued for the worker pool")),
      sessions_active(
          m.gauge("sessions_active", "stream sessions currently open")) {}

Server::Histograms::Histograms(obs::MetricsRegistry& m)
    : request_ns_compress(m.histogram(
          "request_ns_compress", "compress execution nanoseconds")),
      request_ns_decompress(m.histogram(
          "request_ns_decompress", "decompress execution nanoseconds")),
      request_ns_session(m.histogram(
          "request_ns_session", "stream-session op execution nanoseconds")),
      request_ns_admin(m.histogram(
          "request_ns_admin",
          "list-codecs/stats/metrics execution nanoseconds")),
      request_ns_other(m.histogram(
          "request_ns_other", "unknown/invalid frame handling nanoseconds")),
      queue_wait_ns(m.histogram(
          "queue_wait_ns", "admission-to-execution wait nanoseconds")),
      batch_wait_ns(m.histogram(
          "batch_wait_ns", "wait parked with the batch scheduler")),
      predict_ns(m.histogram("predict_ns",
                             "per-request prediction-stage nanoseconds")),
      quantize_ns(m.histogram("quantize_ns",
                              "per-request quantization-stage nanoseconds")),
      entropy_ns(m.histogram("entropy_ns",
                             "per-request entropy-stage nanoseconds")),
      inference_ns(m.histogram(
          "inference_ns", "per-request network-inference nanoseconds")),
      request_bytes_in(
          m.histogram("request_bytes_in", "request frame size bytes")),
      response_bytes_out(
          m.histogram("response_bytes_out", "response frame size bytes")),
      progressive_bytes_served(m.histogram(
          "progressive_bytes_served",
          "AEPR prefix bytes shipped per read-partial answer")),
      progressive_layers_served(m.histogram(
          "progressive_layers_served",
          "refinement layers included per read-partial answer")),
      deadline_slack_ms(m.histogram(
          "deadline_slack_ms",
          "budget left when an enveloped request started executing")) {}

Server::Server() : Server(Options{}) {}

Server::Server(Options opt)
    : opt_(std::move(opt)),
      pool_(std::make_unique<ThreadPool>(opt_.threads)),
      counters_(metrics_),
      gauges_(metrics_),
      hists_(metrics_) {
  if (!opt_.trace_out.empty()) {
    auto w = obs::TraceWriter::open(opt_.trace_out);
    if (!w.ok()) throw Error(w.status().code, w.status().message);
    tracer_ = std::move(*w);
    AESZ_LOG_INFO("server", "tracing requests to %s", opt_.trace_out.c_str());
  }
  batcher_ = std::thread([this] { batcher_main(); });
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    batch_stop_ = true;
  }
  batch_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  // The batcher drains its queue before exiting, so anything left here
  // means submit() raced teardown; still answer it — done callbacks fire
  // exactly once per submitted frame.
  std::deque<BatchJob> rest;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    rest.swap(batch_queue_);
  }
  for (auto& job : rest) {
    std::vector<BatchJob> one;
    one.push_back(std::move(job));
    run_batch(one);
  }
}

Expected<std::unique_ptr<Compressor>> Server::build_codec(
    const std::string& base, bool parallel, int rank) {
  try {
    if (base == "ae-sz") {
      // Every AE-SZ instance — served directly or leased by pipeline
      // workers — comes through this maker, so ae_model_loads counts true
      // model constructions wherever they happen.
      auto make_aesz = [this](int r) -> std::unique_ptr<Compressor> {
        std::unique_ptr<Compressor> c;
        if (!opt_.aesz_model.empty()) {
          // Warm trained-model path: instances come from the server's
          // model file instead of the registry's fixed-seed default.
          auto a = std::make_unique<AESZ>(
              model_zoo::options_for(opt_.aesz_field), /*seed=*/1);
          a->load_model(opt_.aesz_model);
          c = std::move(a);
        } else {
          auto created = CodecRegistry::instance().create("ae-sz", r);
          if (!created.ok())
            throw Error(created.status().code, created.status().message);
          c = std::move(created).value();
        }
        counters_.ae_model_loads.inc();
        return c;
      };
      if (!parallel) return make_aesz(rank);
      // parallel:AE-SZ — route every pipeline worker through a warm pool
      // owned by the cached wrapper, so repeated requests reuse the same
      // loaded models instead of rebuilding one per worker per request.
      auto pool = std::make_shared<WarmPool>();
      pool->make = make_aesz;
      pool->rank = rank;
      return std::unique_ptr<Compressor>(
          std::make_unique<pipeline::ParallelCompressor>(
              pipeline::ParallelCompressor::Options{base, 0, 0}, rank,
              [pool](int) -> std::unique_ptr<Compressor> {
                return std::make_unique<PooledCompressor>(pool, "AE-SZ");
              }));
    }
    return CodecRegistry::instance().create(
        (parallel ? "parallel:" : "") + base, rank);
  } catch (const Error& e) {
    const ErrCode c = e.code() == ErrCode::kOk ? ErrCode::kInternal : e.code();
    return Status::error(c, e.what());
  } catch (const std::exception& e) {
    // A missing/corrupt model file must be a typed status, not a crash.
    return Status::error(ErrCode::kInternal, e.what());
  }
}

Expected<Server::CachedCodec> Server::codec_for(const std::string& name,
                                                int rank) {
  // Canonicalize before building the cache key so every spelling of the
  // same codec ("AE-SZ", "AESZ", "parallel:aesz", ...) lands on ONE slot
  // — mixed spellings must not double-load a model.
  std::string base = lower(name);
  const bool parallel = strip_parallel(base);
  if (is_aesz_name(base)) base = "ae-sz";
  const std::string key =
      (parallel ? "parallel:" : "") + base + "#" + std::to_string(rank);

  std::shared_ptr<CacheEntry> entry;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (auto it = cache_.find(key); it != cache_.end()) {
      counters_.codec_cache_hits.inc();
      entry = it->second;
    } else {
      counters_.codec_cache_misses.inc();
      entry = std::make_shared<CacheEntry>();
      cache_.emplace(key, entry);
    }
  }

  // Construction runs under the ENTRY lock, not the cache lock: the
  // build-exactly-once guarantee (what `ae_model_loads` certifies) holds
  // per codec, while requests for other codecs hit the cache in parallel
  // even during a seconds-long model load.
  std::unique_lock<std::mutex> entry_lock(entry->mu);
  if (!entry->codec) {
    auto built = build_codec(base, parallel, rank);
    if (!built.ok()) {
      entry_lock.unlock();
      // Drop the empty slot so hostile unknown codec names cannot grow
      // the cache without bound.
      std::lock_guard<std::mutex> lock(cache_mu_);
      if (auto it = cache_.find(key);
          it != cache_.end() && it->second == entry)
        cache_.erase(it);
      return built.status();
    }
    entry->codec = std::move(built).value();
  }
  return CachedCodec{entry->codec,
                     std::shared_ptr<std::mutex>(entry, &entry->mu)};
}

std::vector<std::uint8_t> Server::error_frame(ErrCode code,
                                              std::string message) {
  counters_.error_responses.inc();
  if (auto* t = obs::current_trace()) t->error = true;
  if (code == ErrCode::kOk) code = ErrCode::kInternal;
  return encode_error_response({code, std::move(message)});
}

std::vector<std::uint8_t> Server::handle_compress(
    std::span<const std::uint8_t> frame) {
  auto req = parse_compress_request(frame);
  if (!req.ok())
    return error_frame(req.status().code, req.status().message);
  std::vector<float> values(req->dims.total());
  std::memcpy(values.data(), req->field.data(), req->field.size());
  const Field f(req->dims, std::move(values));
  auto entry = codec_for(req->codec, req->dims.rank);
  if (!entry.ok())
    return error_frame(entry.status().code, entry.status().message);
  std::vector<std::uint8_t> stream;
  {
    std::lock_guard<std::mutex> lock(*entry->mu);
    if (!entry->codec->supports_rank(req->dims.rank))
      return error_frame(ErrCode::kUnsupported,
                         req->codec + " does not support rank-" +
                             std::to_string(req->dims.rank) + " fields");
    stream = entry->codec->compress(f, req->eb);
  }
  // Report the bound the encoder resolved and enforced — the same
  // resolution sz::resolve_abs_eb applies on the compress side.
  const double abs_eb = req->eb.absolute(f.value_range());
  return encode_compress_response({abs_eb, stream});
}

std::vector<std::uint8_t> Server::handle_decompress(
    std::span<const std::uint8_t> frame) {
  auto req = parse_decompress_request(frame);
  if (!req.ok())
    return error_frame(req.status().code, req.status().message);
  std::string codec_name = req->codec;
  if (codec_name.empty()) {
    auto identified = CodecRegistry::instance().identify(req->stream);
    if (!identified.ok())
      return error_frame(identified.status().code,
                         identified.status().message);
    codec_name = *identified;
  }
  auto entry = codec_for(codec_name, peek_rank(req->stream, /*fallback=*/2));
  if (!entry.ok())
    return error_frame(entry.status().code, entry.status().message);
  Expected<Field> result = [&] {
    std::lock_guard<std::mutex> lock(*entry->mu);
    return entry->codec->decompress(req->stream);
  }();
  if (!result.ok())
    return error_frame(result.status().code, result.status().message);
  const auto floats = result->values();
  return encode_decompress_response(
      {result->dims(),
       {reinterpret_cast<const std::uint8_t*>(floats.data()),
        floats.size() * sizeof(float)}});
}

std::vector<std::uint8_t> Server::handle_list_codecs() {
  auto& reg = CodecRegistry::instance();
  std::vector<CodecSummary> codecs;
  for (const auto& name : reg.names()) {
    const CodecInfo* info = reg.find(name);
    if (!info) continue;
    codecs.push_back({info->name, info->error_bounded, info->magic,
                      info->description});
  }
  return encode_list_codecs_response(codecs);
}

// ------------------------------------------------------ stream sessions --

std::shared_ptr<Server::StreamSession> Server::find_session(
    std::uint64_t id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::size_t Server::reap_idle_sessions() {
  const auto now = std::chrono::steady_clock::now();
  const auto idle = std::chrono::milliseconds(opt_.session_idle_ms);
  // Reaped sessions are collected here so their mutexes outlive the lock
  // guards below; they free after sessions_mu_ is released.
  std::vector<std::shared_ptr<StreamSession>> doomed;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      StreamSession& s = *it->second;
      // try_lock, not lock: a session mid-operation is busy by definition
      // (and its op will refresh last_used); blocking here would also
      // invert the sessions_mu_ -> session-mu order close-stream uses.
      std::unique_lock<std::mutex> sl(s.mu, std::try_to_lock);
      if (sl.owns_lock() && s.next_ticket == s.done_ticket &&
          now - s.last_used >= idle) {
        s.closed = true;
        doomed.push_back(it->second);
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  counters_.sessions_reaped.inc(doomed.size());
  return doomed.size();
}

std::vector<std::uint8_t> Server::handle_open_stream(
    std::span<const std::uint8_t> frame) {
  auto req = parse_open_stream_request(frame);
  if (!req.ok())
    return error_frame(req.status().code, req.status().message);
  reap_idle_sessions();
  const auto overloaded = [&] {
    return error_frame(ErrCode::kOverloaded,
                       "session limit (" + std::to_string(opt_.max_sessions) +
                           ") reached; close or abandon a stream first");
  };
  {
    // Cheap pre-check so a saturated server rejects before paying for a
    // codec build; the insert below re-checks under the same lock.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (sessions_.size() >= opt_.max_sessions) return overloaded();
  }
  temporal::TemporalWriter::Options wopt;
  wopt.inner = req->codec;
  wopt.gop = static_cast<std::size_t>(req->gop);
  // Sessions build codecs through the server's maker, not the shared
  // request cache: a session's encoder chain is stateful and lives as
  // long as the session, so it owns a fresh instance — but AE-SZ still
  // rides the trained-model path and ticks ae_model_loads.
  wopt.factory = [this](const std::string& name,
                        int rank) -> std::unique_ptr<Compressor> {
    std::string base = lower(name);
    const bool parallel = strip_parallel(base);
    if (is_aesz_name(base)) base = "ae-sz";
    auto built = build_codec(base, parallel, rank);
    if (!built.ok())
      throw Error(built.status().code, built.status().message);
    return std::move(built).value();
  };
  auto session = std::make_shared<StreamSession>();
  // Throws a typed Error on unknown codec / unusable bound / unsupported
  // rank — handle_frame's catch turns it into the error frame.
  session->writer = std::make_unique<temporal::TemporalWriter>(
      req->dims, req->eb, std::move(wopt));
  session->last_used = std::chrono::steady_clock::now();
  const std::uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  session->id = id;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (sessions_.size() >= opt_.max_sessions) return overloaded();
    sessions_.emplace(id, std::move(session));
  }
  counters_.sessions_opened.inc();
  if (auto* t = obs::current_trace()) t->session_id = id;
  return encode_open_stream_response({id});
}

std::vector<std::uint8_t> Server::handle_append_timestep(
    std::span<const std::uint8_t> frame) {
  auto req = parse_append_timestep_request(frame);
  if (!req.ok())
    return error_frame(req.status().code, req.status().message);
  if (auto* t = obs::current_trace()) t->session_id = req->session_id;
  auto s = find_session(req->session_id);
  if (!s)
    return error_frame(ErrCode::kNoSession,
                       "no stream session " + std::to_string(req->session_id));
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->closed)
    return error_frame(ErrCode::kNoSession,
                       "stream session " + std::to_string(req->session_id) +
                           " is closed");
  const std::size_t want = s->writer->dims().total() * sizeof(float);
  if (req->field.size() != want)
    return error_frame(ErrCode::kInvalidArgument,
                       "field is " + std::to_string(req->field.size()) +
                           " bytes; session dims need " +
                           std::to_string(want));
  std::vector<float> values(s->writer->dims().total());
  std::memcpy(values.data(), req->field.data(), req->field.size());
  const auto res = s->writer->append(Field(s->writer->dims(),
                                           std::move(values)));
  s->last_used = std::chrono::steady_clock::now();
  counters_.session_timesteps_stored.inc();
  return encode_append_timestep_response(
      {res.timestep, res.mode == temporal::kModeResidual, res.abs_eb,
       res.stored_bytes});
}

std::vector<std::uint8_t> Server::handle_read_timestep(
    std::span<const std::uint8_t> frame) {
  auto req = parse_read_timestep_request(frame);
  if (!req.ok())
    return error_frame(req.status().code, req.status().message);
  if (auto* t = obs::current_trace()) t->session_id = req->session_id;
  auto s = find_session(req->session_id);
  if (!s)
    return error_frame(ErrCode::kNoSession,
                       "no stream session " + std::to_string(req->session_id));
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->closed)
    return error_frame(ErrCode::kNoSession,
                       "stream session " + std::to_string(req->session_id) +
                           " is closed");
  auto field = s->writer->read(static_cast<std::size_t>(req->timestep));
  if (!field.ok())
    return error_frame(field.status().code, field.status().message);
  s->last_used = std::chrono::steady_clock::now();
  const auto floats = field->values();
  return encode_read_timestep_response(
      {field->dims(),
       {reinterpret_cast<const std::uint8_t*>(floats.data()),
        floats.size() * sizeof(float)}});
}

std::vector<std::uint8_t> Server::handle_close_stream(
    std::span<const std::uint8_t> frame) {
  auto req = parse_close_stream_request(frame);
  if (!req.ok())
    return error_frame(req.status().code, req.status().message);
  if (auto* t = obs::current_trace()) t->session_id = req->session_id;
  auto s = find_session(req->session_id);
  if (!s)
    return error_frame(ErrCode::kNoSession,
                       "no stream session " + std::to_string(req->session_id));
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->closed)
    return error_frame(ErrCode::kNoSession,
                       "stream session " + std::to_string(req->session_id) +
                           " is closed");
  const auto artifact = s->writer->bytes();
  if (artifact.size() + 64 > kMaxFrameBytes) {
    // Refusing to close would strand the data the client streamed in, so
    // keep the session ALIVE: the client can still read timesteps back.
    return error_frame(
        ErrCode::kUnsupported,
        "artifact (" + std::to_string(artifact.size()) +
            " bytes) exceeds the frame limit; session stays open");
  }
  const std::uint64_t steps = s->writer->timesteps();
  s->closed = true;
  s->writer.reset();
  {
    std::lock_guard<std::mutex> map_lock(sessions_mu_);
    sessions_.erase(req->session_id);
  }
  counters_.sessions_closed.inc();
  return encode_close_stream_response({steps, artifact});
}

// ------------------------------------------------ progressive retrieval --

std::vector<std::uint8_t> Server::handle_read_partial(
    std::span<const std::uint8_t> frame) {
  auto req = parse_read_partial_request(frame);
  if (!req.ok())
    return error_frame(req.status().code, req.status().message);
  // Pure layer-table math — no codec is built and nothing is decoded. The
  // answer is a PREFIX of the client's own bytes, itself a valid AEPR
  // stream (truncation at exact layer boundaries parses by design), so
  // the client refines or decodes it locally at the recorded bound.
  const auto cut =
      req->mode == PartialMode::kByteBudget
          ? progressive::truncate_to_bytes(
                req->stream, static_cast<std::size_t>(req->budget))
          : progressive::truncate_to_bound(req->stream, req->bound);
  if (!cut.ok()) return error_frame(cut.status().code, cut.status().message);
  hists_.progressive_bytes_served.observe(cut->bytes);
  hists_.progressive_layers_served.observe(cut->layers);
  return encode_read_partial_response({cut->abs_eb, cut->layers,
                                       cut->total_layers,
                                       req->stream.first(cut->bytes)});
}

void Server::refresh_gauges() const {
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    gauges_.batch_queue_depth.set(
        static_cast<std::int64_t>(batch_queue_.size()));
  }
  gauges_.pool_queue_depth.set(static_cast<std::int64_t>(pool_->pending()));
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    gauges_.sessions_active.set(static_cast<std::int64_t>(sessions_.size()));
  }
}

StatsResponse Server::snapshot() const {
  refresh_gauges();
  StatsResponse out;
  for (const auto& e : metrics_.snapshot()) {
    switch (e.kind) {
      case obs::MetricKind::kCounter:
        out.counters.emplace_back(e.name, e.counter);
        break;
      case obs::MetricKind::kGauge:
        // Stats rows are unsigned varints; a transiently negative gauge
        // (racing sub-before-add) reads 0, never 2^64-ish.
        out.counters.emplace_back(
            e.name,
            e.gauge > 0 ? static_cast<std::uint64_t>(e.gauge) : 0);
        break;
      case obs::MetricKind::kHistogram: {
        // Histogram summaries ride as additional named rows — the only
        // compatible extension of the stats frame, since old parsers
        // reject trailing bytes but look counters up by name.
        const auto q = [&](double p) {
          return static_cast<std::uint64_t>(
              std::llround(e.hist.quantile(p)));
        };
        out.counters.emplace_back(e.name + "_count", e.hist.count);
        out.counters.emplace_back(e.name + "_sum", e.hist.sum);
        out.counters.emplace_back(e.name + "_p50", q(0.50));
        out.counters.emplace_back(e.name + "_p90", q(0.90));
        out.counters.emplace_back(e.name + "_p99", q(0.99));
        break;
      }
    }
  }
  {
    // Registration order, so repeated stats frames list providers
    // deterministically.
    std::lock_guard<std::mutex> lock(extra_mu_);
    for (const auto& [name, fn] : extra_stats_)
      if (fn) fn(out);
  }
  return out;
}

void Server::register_stats(const std::string& name,
                            std::function<void(StatsResponse&)> fn) {
  std::lock_guard<std::mutex> lock(extra_mu_);
  for (auto it = extra_stats_.begin(); it != extra_stats_.end(); ++it) {
    if (it->first == name) {
      if (fn)
        it->second = std::move(fn);  // replace in place, keep the position
      else
        extra_stats_.erase(it);
      return;
    }
  }
  if (fn) extra_stats_.emplace_back(name, std::move(fn));
}

void Server::unregister_stats(const std::string& name) {
  std::lock_guard<std::mutex> lock(extra_mu_);
  for (auto it = extra_stats_.begin(); it != extra_stats_.end(); ++it) {
    if (it->first == name) {
      extra_stats_.erase(it);
      return;
    }
  }
}

std::vector<std::uint8_t> Server::handle_stats() {
  reap_idle_sessions();  // the opportunistic reap tick
  return encode_stats_response(snapshot());
}

std::vector<std::uint8_t> Server::handle_metrics() {
  reap_idle_sessions();  // same opportunistic tick as stats
  refresh_gauges();
  const std::string text = metrics_.prometheus();
  return encode_metrics_response(
      {{reinterpret_cast<const std::uint8_t*>(text.data()), text.size()}});
}

std::vector<std::uint8_t> Server::handle_deadline(
    std::span<const std::uint8_t> frame) {
  const auto req = parse_deadline_request(frame);
  if (!req.ok()) return error_frame(req.status().code, req.status().message);
  if (req->deadline_ms > 0) {
    // The budget bounds queue wait, checked once at execution start: a
    // request that got a worker in time runs to completion (killing work
    // mid-flight would leave sessions half-mutated), one that waited out
    // its budget is shed without paying for the execution it no longer
    // has a client for.
    const auto* t = obs::current_trace();
    const std::uint64_t waited_ms =
        (t ? t->queue_wait_ns : 0) / 1'000'000;
    if (waited_ms >= req->deadline_ms) {
      counters_.timeout_responses.inc();
      hists_.deadline_slack_ms.observe(0);
      return error_frame(ErrCode::kTimeout,
                         "deadline of " + std::to_string(req->deadline_ms) +
                             " ms expired after " + std::to_string(waited_ms) +
                             " ms in queue");
    }
    hists_.deadline_slack_ms.observe(req->deadline_ms - waited_ms);
  }
  const auto inner_op = peek_op(req->inner);
  if (!inner_op.ok())
    return error_frame(inner_op.status().code, inner_op.status().message);
  // Re-dispatch stamps the trace with the INNER op — the envelope is
  // plumbing, the inner request is what latency should be billed to.
  return dispatch(*inner_op, req->inner);
}

void Server::finish_trace(const obs::RequestTrace& t, bool count_request) {
  if (count_request) {
    obs::Histogram& by_op = [&]() -> obs::Histogram& {
      switch (static_cast<Op>(t.op_raw)) {
        case Op::kCompressRequest:
          return hists_.request_ns_compress;
        case Op::kDecompressRequest:
        case Op::kReadPartialRequest:  // the other retrieval path
          return hists_.request_ns_decompress;
        case Op::kOpenStreamRequest:
        case Op::kAppendTimestepRequest:
        case Op::kReadTimestepRequest:
        case Op::kCloseStreamRequest:
          return hists_.request_ns_session;
        case Op::kListCodecsRequest:
        case Op::kStatsRequest:
        case Op::kMetricsRequest:
          return hists_.request_ns_admin;
        default:  // op_raw 0: the frame never parsed to a request opcode
          return hists_.request_ns_other;
      }
    }();
    by_op.observe(t.exec_ns());
    if (t.queue_wait_ns) hists_.queue_wait_ns.observe(t.queue_wait_ns);
    if (t.batch_wait_ns) hists_.batch_wait_ns.observe(t.batch_wait_ns);
    hists_.request_bytes_in.observe(t.bytes_in);
    hists_.response_bytes_out.observe(t.bytes_out);
  }
  // Stage time bills whichever trace carried it — a solo request, or the
  // synthetic batch-group trace when stages ran once for a whole group.
  using prof::Stage;
  const auto stage = [&](Stage s) {
    return t.stage_ns[static_cast<std::size_t>(s)];
  };
  if (stage(Stage::kPredict))
    hists_.predict_ns.observe(stage(Stage::kPredict));
  if (stage(Stage::kQuantize))
    hists_.quantize_ns.observe(stage(Stage::kQuantize));
  if (stage(Stage::kEntropy))
    hists_.entropy_ns.observe(stage(Stage::kEntropy));
  if (stage(Stage::kInference))
    hists_.inference_ns.observe(stage(Stage::kInference));
  if (tracer_) tracer_->write(t);
  if (opt_.slow_ms > 0 &&
      static_cast<double>(t.wall_ns()) / 1e6 >= opt_.slow_ms) {
    AESZ_LOG_WARN(
        "server",
        "slow request id=%" PRIu64 " op=%s conn=%" PRIu64 " session=%" PRIu64
        " wall=%.3fms queue=%.3fms batch=%.3fms exec=%.3fms"
        " predict=%.3fms quantize=%.3fms entropy=%.3fms inference=%.3fms"
        " bytes_in=%" PRIu64 " bytes_out=%" PRIu64 "%s",
        t.id, t.op, t.conn_id, t.session_id,
        static_cast<double>(t.wall_ns()) / 1e6,
        static_cast<double>(t.queue_wait_ns) / 1e6,
        static_cast<double>(t.batch_wait_ns) / 1e6,
        static_cast<double>(t.exec_ns()) / 1e6,
        static_cast<double>(stage(Stage::kPredict)) / 1e6,
        static_cast<double>(stage(Stage::kQuantize)) / 1e6,
        static_cast<double>(stage(Stage::kEntropy)) / 1e6,
        static_cast<double>(stage(Stage::kInference)) / 1e6, t.bytes_in,
        t.bytes_out, t.error ? " error=1" : "");
  }
}

std::vector<std::uint8_t> Server::dispatch(
    Op op, std::span<const std::uint8_t> frame) {
  if (auto* t = obs::current_trace()) {
    t->op = op_name(op);
    t->op_raw = static_cast<std::uint8_t>(op);
  }
  switch (op) {
    case Op::kCompressRequest:
      counters_.compress_requests.inc();
      return handle_compress(frame);
    case Op::kDecompressRequest:
      counters_.decompress_requests.inc();
      return handle_decompress(frame);
    case Op::kListCodecsRequest:
      counters_.list_codecs_requests.inc();
      return handle_list_codecs();
    case Op::kStatsRequest:
      counters_.stats_requests.inc();
      return handle_stats();
    case Op::kOpenStreamRequest:
      counters_.open_stream_requests.inc();
      return handle_open_stream(frame);
    case Op::kAppendTimestepRequest:
      counters_.append_timestep_requests.inc();
      return handle_append_timestep(frame);
    case Op::kReadTimestepRequest:
      counters_.read_timestep_requests.inc();
      return handle_read_timestep(frame);
    case Op::kCloseStreamRequest:
      counters_.close_stream_requests.inc();
      return handle_close_stream(frame);
    case Op::kMetricsRequest:
      counters_.metrics_requests.inc();
      return handle_metrics();
    case Op::kReadPartialRequest:
      counters_.read_partial_requests.inc();
      return handle_read_partial(frame);
    case Op::kDeadlineRequest:
      counters_.deadline_requests.inc();
      return handle_deadline(frame);
    default:
      return error_frame(ErrCode::kUnsupported,
                         std::string(op_name(op)) + " is not a request");
  }
}

std::vector<std::uint8_t> Server::handle_frame(
    std::span<const std::uint8_t> frame) {
  // A submit() wrapper may already have installed this thread's trace
  // (stamped with admission time and connection identity); a direct
  // synchronous call owns a local one and finalizes it on exit.
  obs::RequestTrace local;
  obs::RequestTrace* t = obs::current_trace();
  const bool own = t == nullptr;
  std::optional<obs::TraceScope> scope;
  if (own) {
    local.id = obs::next_request_id();
    t = &local;
    scope.emplace(t);
  }
  t->exec_start_ns = obs::monotonic_ns();
  // Computed here, not at dequeue, so queue_wait + exec == wall exactly.
  if (t->admit_ns && t->exec_start_ns > t->admit_ns)
    t->queue_wait_ns = t->exec_start_ns - t->admit_ns;
  t->bytes_in = frame.size();
  counters_.requests.inc();
  counters_.bytes_in.inc(frame.size());
  std::vector<std::uint8_t> response;
  const auto op = peek_op(frame);
  if (!op.ok()) {
    response = error_frame(op.status().code, op.status().message);
  } else {
    try {
      response = dispatch(*op, frame);
    } catch (const Error& e) {
      // Same folding as Compressor::decompress: an untyped internal throw
      // during request handling is attributed to the request.
      const ErrCode c =
          e.code() == ErrCode::kOk ? ErrCode::kInternal : e.code();
      response = error_frame(c, e.what());
    } catch (const std::exception& e) {
      // Hostile sizes can surface as bad_alloc/length_error; a request
      // must never take the server down.
      response = error_frame(ErrCode::kInternal, e.what());
    }
  }
  if (response.size() > kMaxFrameBytes) {
    // e.g. a sub-cap compressed stream that decodes past the frame cap.
    // The transport would refuse to send it, and serve()'s writer cannot
    // substitute anything — the client would hang waiting. Answer with a
    // typed error instead.
    response = error_frame(
        ErrCode::kUnsupported,
        "response (" + std::to_string(response.size()) +
            " bytes) exceeds the frame limit; request a smaller field");
  }
  counters_.bytes_out.inc(response.size());
  t->bytes_out = response.size();
  t->exec_end_ns = obs::monotonic_ns();
  if (own) finish_trace(*t);
  return response;
}

void Server::submit(std::vector<std::uint8_t> frame, DoneFn done,
                    std::uint64_t conn_id) {
  // Session-scoped ops (append/read/close) are ticketed: the ticket is
  // taken HERE, in arrival order, and the pool task waits its turn before
  // running — so a client that pipelines appends without waiting for
  // responses still gets timesteps stored in the order it sent them, even
  // though pool workers complete out of order. Deadlock-free because the
  // ThreadPool is FIFO: a session's lowest unfinished ticket was enqueued
  // before every task that could be waiting on it, so it is always
  // running or done — never parked behind a waiter.
  // A deadline envelope is classified by its INNER frame, so an enveloped
  // append still takes its arrival-order ticket (the view aliases `frame`,
  // which outlives classification). Batching below deliberately keeps
  // looking at the outer frame: enveloped compress requests take the
  // direct path, where the deadline check runs before any work.
  std::span<const std::uint8_t> body(frame);
  if (auto op0 = peek_op(frame); op0.ok() && *op0 == Op::kDeadlineRequest)
    if (auto env = parse_deadline_request(frame); env.ok()) body = env->inner;
  if (auto op = peek_op(body);
      op.ok() && (*op == Op::kAppendTimestepRequest ||
                  *op == Op::kReadTimestepRequest ||
                  *op == Op::kCloseStreamRequest)) {
    if (auto sid = peek_session_id(body); sid.ok()) {
      if (auto s = find_session(*sid)) {
        std::uint64_t ticket = 0;
        {
          std::lock_guard<std::mutex> lock(s->mu);
          ticket = s->next_ticket++;
        }
        obs::RequestTrace t;
        t.id = obs::next_request_id();
        t.conn_id = conn_id;
        t.session_id = *sid;
        t.admit_ns = obs::monotonic_ns();
        pool_->submit([this, s, ticket, t, f = std::move(frame),
                       cb = std::move(done)]() mutable {
          std::vector<std::uint8_t> response;
          {
            // The scope covers the ticket wait too: that wait is part of
            // this request's queue time, not its execution time.
            obs::TraceScope scope(&t);
            {
              std::unique_lock<std::mutex> lock(s->mu);
              s->cv.wait(lock, [&] { return s->done_ticket == ticket; });
            }
            response = handle_frame(f);
          }
          {
            std::lock_guard<std::mutex> lock(s->mu);
            // Advance unconditionally — later tickets must progress even
            // when this op closed the session or answered an error.
            ++s->done_ticket;
          }
          s->cv.notify_all();
          finish_trace(t);
          cb(std::move(response));
        });
        return;
      }
    }
    // Unknown session or malformed body: plain pool path below, where
    // handle_frame() produces the typed kNoSession/parse error itself.
  }
  // Batchable = a well-formed compress request for plain (non-parallel)
  // AE-SZ. Anything else — other codecs, other opcodes, malformed frames —
  // takes the direct pool path, where handle_frame() re-derives the same
  // classification and produces the response (or typed error) itself.
  bool batchable = false;
  std::string key;
  if (opt_.max_batch > 1) {
    if (auto op = peek_op(frame); op.ok() && *op == Op::kCompressRequest) {
      if (auto req = parse_compress_request(frame); req.ok()) {
        std::string base = lower(req->codec);
        const bool parallel = strip_parallel(base);
        if (is_aesz_name(base)) base = "ae-sz";
        if (!parallel && base == "ae-sz") {
          batchable = true;
          key = base + "#" + std::to_string(req->dims.rank);
        }
      }
    }
  }
  if (!batchable) {
    obs::RequestTrace t;
    t.id = obs::next_request_id();
    t.conn_id = conn_id;
    t.admit_ns = obs::monotonic_ns();
    pool_->submit(
        [this, t, f = std::move(frame), cb = std::move(done)]() mutable {
          std::vector<std::uint8_t> response;
          {
            obs::TraceScope scope(&t);
            response = handle_frame(f);
          }
          finish_trace(t);
          cb(std::move(response));
        });
    return;
  }
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    batch_queue_.push_back(BatchJob{std::move(frame), std::move(key),
                                    std::move(done), obs::next_request_id(),
                                    obs::monotonic_ns(), conn_id});
  }
  batch_cv_.notify_one();
}

void Server::batcher_main() {
  std::unique_lock<std::mutex> lock(batch_mu_);
  for (;;) {
    batch_cv_.wait(lock,
                   [&] { return batch_stop_ || !batch_queue_.empty(); });
    if (batch_queue_.empty()) {
      if (batch_stop_) return;  // stopped and drained
      continue;
    }
    // The oldest queued job opens a group and fixes its key; compatible
    // jobs anywhere in the queue join (other keys keep their order and
    // form their own groups on later iterations).
    std::vector<BatchJob> group;
    group.push_back(std::move(batch_queue_.front()));
    batch_queue_.pop_front();
    const std::string key = group.front().key;
    const auto extract_compatible = [&] {
      for (auto it = batch_queue_.begin();
           it != batch_queue_.end() && group.size() < opt_.max_batch;) {
        if (it->key == key) {
          group.push_back(std::move(*it));
          it = batch_queue_.erase(it);
        } else {
          ++it;
        }
      }
    };
    extract_compatible();
    if (group.size() < opt_.max_batch && opt_.batch_delay_us > 0 &&
        !batch_stop_) {
      // Hold the group open briefly for companions; a full group or
      // server shutdown ends the wait early.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(opt_.batch_delay_us);
      while (group.size() < opt_.max_batch && !batch_stop_) {
        if (batch_cv_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          extract_compatible();
          break;
        }
        extract_compatible();
      }
    }
    lock.unlock();
    run_batch(group);  // never throws
    lock.lock();
  }
}

void Server::run_batch(std::vector<BatchJob>& jobs) {
  // One synthetic group trace owns the execution span and the codec stage
  // time (the stages ran ONCE for the whole group); each member job gets
  // its own trace carrying its admission identity, coalesce wait, bytes,
  // and per-request latency, with exec = the shared group span.
  // finish_trace(group, false) keeps the synthetic trace out of the
  // per-request histograms — its members were already observed.
  obs::RequestTrace group;
  group.id = obs::next_request_id();
  group.op = "compress-batch";
  group.exec_start_ns = obs::monotonic_ns();
  obs::TraceScope scope(&group);
  const auto finish_group = [&] {
    group.exec_end_ns = obs::monotonic_ns();
    finish_trace(group, /*count_request=*/false);
  };

  counters_.batch_executions.inc();
  counters_.batched_requests.inc(jobs.size());
  auto& bucket = jobs.size() >= 8   ? counters_.batch_size_8_plus
                 : jobs.size() >= 4 ? counters_.batch_size_4_7
                 : jobs.size() >= 2 ? counters_.batch_size_2_3
                                    : counters_.batch_size_1;
  bucket.inc();

  // Completion mirrors handle_frame()'s tail: oversize responses become
  // typed errors, bytes_out counts what actually leaves.
  const auto finish = [this, &group](BatchJob& job,
                                     std::vector<std::uint8_t> response) {
    if (response.size() > kMaxFrameBytes)
      response = error_frame(
          ErrCode::kUnsupported,
          "response (" + std::to_string(response.size()) +
              " bytes) exceeds the frame limit; request a smaller field");
    counters_.bytes_out.inc(response.size());
    obs::RequestTrace t;
    t.id = job.id;
    t.op = op_name(Op::kCompressRequest);
    t.op_raw = static_cast<std::uint8_t>(Op::kCompressRequest);
    t.conn_id = job.conn_id;
    t.admit_ns = job.admit_ns;
    t.exec_start_ns = group.exec_start_ns;
    t.exec_end_ns = obs::monotonic_ns();
    // The whole admission-to-execution wait was spent coalescing with the
    // batcher, so it bills as batch_wait (queue_wait stays 0 — the two
    // never overlap on one request).
    if (t.admit_ns && t.exec_start_ns > t.admit_ns)
      t.batch_wait_ns = t.exec_start_ns - t.admit_ns;
    t.bytes_in = job.frame.size();
    t.bytes_out = response.size();
    if (auto op = peek_op(response); op.ok() && *op == Op::kErrorResponse)
      t.error = true;
    finish_trace(t);
    job.done(std::move(response));
  };

  struct Live {
    BatchJob* job;
    Field field;
    ErrorBound eb;
    std::string codec_name;
    int rank;
    CachedCodec entry;
  };
  std::vector<Live> live;
  live.reserve(jobs.size());
  for (auto& job : jobs) {
    // Same per-request accounting as the solo path (handle_frame +
    // dispatch): one requests/bytes_in/compress_requests tick each, one
    // codec_for hit-or-miss each — coalescing is invisible in these
    // counters.
    counters_.requests.inc();
    counters_.bytes_in.inc(job.frame.size());
    counters_.compress_requests.inc();
    auto req = parse_compress_request(job.frame);
    if (!req.ok()) {  // raced mutation cannot happen (frame is owned), but
                      // keep the typed-error discipline anyway
      finish(job, error_frame(req.status().code, req.status().message));
      continue;
    }
    auto entry = codec_for(req->codec, req->dims.rank);
    if (!entry.ok()) {
      finish(job, error_frame(entry.status().code, entry.status().message));
      continue;
    }
    std::vector<float> values(req->dims.total());
    std::memcpy(values.data(), req->field.data(), req->field.size());
    live.push_back(Live{&job, Field(req->dims, std::move(values)), req->eb,
                        req->codec, req->dims.rank, std::move(*entry)});
  }
  if (live.empty()) {
    finish_group();
    return;
  }

  // One canonical key per group — every live job shares one instance and
  // one per-instance mutex.
  std::lock_guard<std::mutex> lock(*live.front().entry.mu);
  Compressor* codec = live.front().entry.codec.get();
  if (!codec->supports_rank(live.front().rank)) {
    for (Live& l : live)
      finish(*l.job, error_frame(ErrCode::kUnsupported,
                                 l.codec_name + " does not support rank-" +
                                     std::to_string(l.rank) + " fields"));
    finish_group();
    return;
  }

  std::vector<std::vector<std::uint8_t>> streams(live.size());
  bool batched = false;
  if (live.size() > 1) {
    if (auto* bc = dynamic_cast<BatchCompressor*>(codec)) {
      std::vector<const Field*> fields;
      std::vector<ErrorBound> ebs;
      fields.reserve(live.size());
      ebs.reserve(live.size());
      for (Live& l : live) {
        fields.push_back(&l.field);
        ebs.push_back(l.eb);
      }
      try {
        streams = bc->compress_batch(fields, ebs);
        batched = streams.size() == live.size();
      } catch (...) {
        // One bad field fails a whole compress_batch call; redo the group
        // solo below so each request gets its own success or typed error.
        batched = false;
      }
    }
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    Live& l = live[i];
    try {
      if (!batched) streams[i] = codec->compress(l.field, l.eb);
      const double abs_eb = l.eb.absolute(l.field.value_range());
      finish(*l.job, encode_compress_response({abs_eb, streams[i]}));
    } catch (const Error& e) {
      const ErrCode c =
          e.code() == ErrCode::kOk ? ErrCode::kInternal : e.code();
      finish(*l.job, error_frame(c, e.what()));
    } catch (const std::exception& e) {
      finish(*l.job, error_frame(ErrCode::kInternal, e.what()));
    }
  }
  finish_group();
}

void Server::serve(Transport& transport) {
  // Pipelined scheduling: the reader keeps pulling frames and submitting
  // them while earlier requests are still executing (on the pool or with
  // the batcher — it is this pipelining that gives the batcher same-key
  // companions to coalesce); the writer thread sends completed responses
  // strictly in request order, so a client that stacks N requests gets N
  // responses in the order it asked. The reader stops accepting new
  // frames while kMaxInflight requests are buffered — without that cap a
  // client that streams requests without draining responses would grow
  // server memory without bound (request bytes plus completed responses),
  // defeating the per-frame size limit.
  constexpr std::size_t kMaxInflight = 32;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::future<std::vector<std::uint8_t>>> inflight;
  bool done = false;

  std::thread writer([&] {
    for (;;) {
      std::future<std::vector<std::uint8_t>> next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done || !inflight.empty(); });
        if (inflight.empty()) return;  // done and drained
        next = std::move(inflight.front());
        inflight.pop_front();
      }
      cv.notify_all();  // a slot freed: unblock a backpressured reader
      // A failed send means the peer is gone; keep draining futures so
      // every submitted request still completes.
      (void)transport.send_frame(next.get());
    }
  });

  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return inflight.size() < kMaxInflight; });
    }
    auto frame = transport.recv_frame();
    if (!frame.ok()) break;  // orderly close or framing violation
    auto prom =
        std::make_shared<std::promise<std::vector<std::uint8_t>>>();
    {
      std::lock_guard<std::mutex> lock(mu);
      inflight.push_back(prom->get_future());
    }
    cv.notify_all();
    submit(std::move(*frame), [prom](std::vector<std::uint8_t> response) {
      prom->set_value(std::move(response));
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  writer.join();
}

}  // namespace aesz::service
