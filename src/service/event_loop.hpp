#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "service/server.hpp"
#include "service/transport.hpp"

namespace aesz::service {

/// Readiness multiplexer: a thin wrapper over epoll(7) where available,
/// with a byte-compatible poll(2) fallback (`force_poll` selects it
/// explicitly, e.g. to exercise both paths in one test binary). Level
/// triggered in both modes, so handlers may consume partial input and rely
/// on the next wait() re-reporting readiness.
class EventLoop {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  // EPOLLERR/EPOLLHUP — treat as fatal for the fd
  };

  explicit EventLoop(bool force_poll = false);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void add(int fd, bool want_read, bool want_write);
  void modify(int fd, bool want_read, bool want_write);
  void remove(int fd);

  /// Block up to timeout_ms (-1 = forever) and append ready fds to `out`.
  /// Returns the number of events appended (0 on timeout).
  int wait(std::vector<Event>& out, int timeout_ms);

  bool using_epoll() const { return epfd_ >= 0; }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  int epfd_ = -1;  // epoll instance; -1 = poll fallback
  std::map<int, Interest> interest_;
};

/// Event-driven multi-client front end over one Server: a single loop
/// thread multiplexes the listening socket and every client connection
/// through EventLoop, while request execution stays on the Server's
/// ThreadPool / batching scheduler via Server::submit().
///
/// Per-connection lifecycle (docs/PROTOCOL.md "connection lifecycle"):
///
///   reading-frame -> queued/executing -> writing-response -> reading-frame
///
///  - reading-frame: nonblocking reads feed an incremental reassembly
///    buffer; the 4-byte length prefix is validated against
///    kMaxFrameBytes BEFORE any body allocation, and a hostile prefix gets
///    a typed kCorruptStream error frame before the connection closes
///    (framing cannot resynchronize after it).
///  - queued/executing: each completed frame takes a per-connection
///    sequence slot and goes to Server::submit(). Admission control:
///    past Options::max_inflight outstanding requests (across ALL
///    connections) a request is answered immediately with a typed
///    kOverloaded error frame instead of being queued.
///  - writing-response: completions arrive on worker threads, are handed
///    to the loop through a wake pipe, and flush strictly in request
///    order per connection. A peer that stops reading only backs up its
///    OWN buffers: past Options::max_conn_buffered outbound bytes the
///    loop pauses that connection's reads (resuming below half), so a
///    slow reader caps server memory instead of growing it.
///
/// Half-close is honored: EOF stops reads, but responses still in flight
/// flush before the connection closes. The loop's ev_* counters and gauges
/// live in the Server's MetricsRegistry (Server::metrics()), so one stats
/// or Prometheus metrics frame covers both layers through a single
/// snapshot.
class EventServer {
 public:
  struct Options {
    /// Use the poll(2) backend even where epoll is available.
    bool force_poll = false;
    /// Admission cap: outstanding (submitted, unanswered) requests across
    /// all connections before new requests get kOverloaded answers.
    std::size_t max_inflight = 64;
    /// Per-connection outbound byte threshold that pauses reading from
    /// that connection (resumes below half of it).
    std::size_t max_conn_buffered = std::size_t{8} << 20;
    /// 0 = serve until stop(); N = return from run() once N accepted
    /// connections have fully closed (the example's --once N mode).
    std::uint64_t accept_limit = 0;
  };

  EventServer(Server& server, TcpListener& listener, Options opt);
  ~EventServer();

  EventServer(const EventServer&) = delete;
  EventServer& operator=(const EventServer&) = delete;

  /// Run the loop on the calling thread until stop() or accept_limit.
  void run();

  /// Thread-safe and idempotent: wake the loop, stop accepting, let every
  /// connection flush what it owes, then make run() return.
  void stop();

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    // Incremental frame reassembly: raw bytes as they arrived; a frame is
    // extracted the moment its prefix + body are complete.
    std::vector<std::uint8_t> rbuf;
    // Ordered response slots: requests take seqs in arrival order and
    // responses flush in seq order no matter which finishes first.
    std::uint64_t next_seq = 0;
    std::uint64_t next_flush = 0;
    std::map<std::uint64_t, std::vector<std::uint8_t>> ready;
    // Outbound: length-prefixed frames waiting for the socket.
    std::deque<std::vector<std::uint8_t>> wqueue;
    std::size_t woff = 0;            // bytes of wqueue.front() already sent
    std::size_t buffered = 0;        // wqueue + ready payload bytes
    std::size_t inflight = 0;        // submitted, not yet completed
    bool read_paused = false;        // backpressure: read interest dropped
    bool peer_eof = false;           // half-close: no more requests
    bool closing = false;            // close once inflight == 0 and flushed
    bool want_crc = false;           // peer checksums frames: echo trailers
    bool gauged_exec = false;        // bookkeeping for the state gauges
    bool gauged_write = false;
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> response;
  };

  /// Worker→loop completion handoff that OUTLIVES the EventServer: the
  /// DoneFn lambdas handed to Server::submit() capture it by shared_ptr,
  /// so a request still executing in the Server's pool when the front end
  /// is torn down delivers into this queue (and its wake pipe) instead of
  /// a destroyed object; the last such lambda releases it. Owns both ends
  /// of the wake pipe for the same reason.
  struct CompletionQueue {
    /// Throws Error(kIoError) if the wake pipe cannot be created — without
    /// it completions could never wake the loop and the server would
    /// wedge, so construction failure is fatal.
    CompletionQueue();
    ~CompletionQueue();

    CompletionQueue(const CompletionQueue&) = delete;
    CompletionQueue& operator=(const CompletionQueue&) = delete;

    /// Enqueue one completion and wake the loop. Any-thread safe.
    void push(Completion done);
    /// Make the loop's next wait() return. Any-thread safe.
    void wake();

    std::mutex mu;
    std::deque<Completion> q;
    int wake_rd = -1;  // loop side: readable => drain completions
    int wake_wr = -1;
  };

  void accept_ready();
  /// Handlers that may close the connection return true when they did —
  /// the Conn reference is dead afterwards and callers must not touch it.
  /// This includes complete()/admit_frame()/parse_frames(): each ends with
  /// an opportunistic flush that closes the connection when the peer has
  /// reset, so their closed result must propagate all the way up.
  bool read_ready(Conn& c);
  bool write_ready(Conn& c);
  bool parse_frames(Conn& c);
  bool admit_frame(Conn& c, std::vector<std::uint8_t> frame);
  bool complete(Conn& c, std::uint64_t seq,
                std::vector<std::uint8_t> response);
  void drain_completions();
  void update_interest(Conn& c);
  bool maybe_close(Conn& c);
  void close_conn(Conn& c);

  Server& server_;
  TcpListener& listener_;
  Options opt_;
  EventLoop loop_;

  bool accepting_ = true;

  std::map<int, Conn> conns_;                // keyed by fd (loop thread only)
  std::map<std::uint64_t, int> id_to_fd_;    // loop thread only
  std::uint64_t next_conn_id_ = 1;

  std::shared_ptr<CompletionQueue> done_q_;

  // Front-end instruments, living in the Server's MetricsRegistry under
  // their historical ev_* stats names. References bound at construction;
  // the loop thread writes, stats/metrics exports read. A second front end
  // over the same Server shares (accumulates into) the same instruments.
  obs::Gauge& connections_;
  obs::Counter& connections_total_;
  obs::Counter& connections_closed_;
  obs::Gauge& inflight_;
  obs::Gauge& conns_executing_;
  obs::Gauge& conns_write_blocked_;
  obs::Gauge& conns_read_paused_;
  obs::Counter& rejected_requests_;
  obs::Counter& read_pauses_;
  obs::Gauge& buffered_high_water_;

  std::atomic<bool> stop_{false};
};

}  // namespace aesz::service
