#include "service/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "service/protocol.hpp"
#include "util/crc32c.hpp"

namespace aesz::service {

std::uint64_t FaultyTransport::next_rand() {
  if (!rng_seeded_) {
    // splitmix64 seeding, then xorshift64* per draw: tiny, deterministic,
    // independent across seeds.
    std::uint64_t z = opt_.seed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    rng_state_ = (z ^ (z >> 31)) | 1;
    rng_seeded_ = true;
  }
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return rng_state_ * 0x2545f4914f6cdd1dull;
}

namespace {
double unit(std::uint64_t r) {
  return static_cast<double>(r >> 11) * 0x1.0p-53;  // [0, 1)
}
}  // namespace

Status FaultyTransport::send_frame(std::span<const std::uint8_t> frame) {
  ++stats_.sends;
  if (dead_) return Status::error(ErrCode::kIoError, "connection reset");
  // Order matters for determinism: one draw per candidate fault, always
  // consumed, so disabling one rate never shifts another's schedule.
  const double drop = unit(next_rand());
  const double flip = unit(next_rand());
  const double reset = unit(next_rand());
  if (drop < opt_.drop_rate) {
    ++stats_.dropped;
    return {};  // the void says thanks
  }
  if (flip < opt_.flip_rate && !frame.empty()) {
    ++stats_.flipped;
    // The flip must land AFTER checksumming — a wire fault damages bytes
    // the sender already committed, trailer included. So build the exact
    // wire image the inner transport would have produced (prefix | body |
    // CRC trailer when enabled), flip one bit of the BODY region, and
    // ship it raw. The peer's CRC verification is what should catch this.
    const bool with_crc = inner_->frame_crc();
    std::uint32_t len = static_cast<std::uint32_t>(frame.size());
    if (with_crc) len |= kFrameCrcFlag;
    std::vector<std::uint8_t> wire(4 + frame.size() +
                                   (with_crc ? kFrameCrcBytes : 0));
    std::memcpy(wire.data(), &len, 4);
    std::memcpy(wire.data() + 4, frame.data(), frame.size());
    if (with_crc) {
      const std::uint32_t crc = util::crc32c(frame);
      std::memcpy(wire.data() + 4 + frame.size(), &crc, kFrameCrcBytes);
    }
    const std::uint64_t bit = next_rand() % (frame.size() * 8);
    wire[4 + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    if (auto* p = dynamic_cast<PipeTransport*>(inner_.get())) {
      p->send_raw(wire);
      return {};
    }
    if (auto* t = dynamic_cast<TcpTransport*>(inner_.get()))
      return t->send_raw(wire);
    // Unknown inner transport: no raw hook, so the flipped body goes
    // through its normal framing (pre-CRC — the peer sees a damaged but
    // consistently-checksummed frame and must catch it at the parse layer).
    return inner_->send_frame(
        std::span<const std::uint8_t>(wire).subspan(4, frame.size()));
  }
  if (reset < opt_.reset_rate) {
    ++stats_.reset;
    dead_ = true;
    inner_->shutdown();  // the peer sees the connection die too
    return Status::error(ErrCode::kIoError, "connection reset");
  }
  return inner_->send_frame(frame);
}

Expected<std::vector<std::uint8_t>> FaultyTransport::recv_frame() {
  ++stats_.recvs;
  if (dead_) return Status::error(ErrCode::kIoError, "connection reset");
  if (opt_.recv_delay_ms > 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt_.recv_delay_ms));
  return inner_->recv_frame();
}

bool FaultyFile::write(std::span<const std::uint8_t> data) {
  if (torn_) return false;
  const std::size_t room = budget_ - bytes_.size();
  const std::size_t take = std::min(room, data.size());
  bytes_.insert(bytes_.end(), data.begin(), data.begin() + take);
  if (take < data.size()) {
    torn_ = true;  // short write: the rest of this append never lands
    return false;
  }
  return true;
}

}  // namespace aesz::service
