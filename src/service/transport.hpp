#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/expected.hpp"

namespace aesz::service {

/// Bidirectional, frame-oriented byte transport between a client and a
/// server. On the wire every frame is a u32 little-endian byte length
/// followed by the frame body (protocol.hpp); recv_frame() validates the
/// declared length against protocol::kMaxFrameBytes BEFORE allocating, so
/// a hostile peer cannot trigger an unbounded allocation with a 4-byte
/// prefix.
///
/// Threading contract: one thread may send while another receives (the
/// server's pipelined response writer depends on full-duplex operation),
/// but concurrent sends — or concurrent receives — need external
/// serialization.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Deliver one frame. kIoError when the peer is gone.
  virtual Status send_frame(std::span<const std::uint8_t> frame) = 0;

  /// Block for the next frame. kIoError on orderly close / lost peer,
  /// kCorruptStream on an un-resynchronizable framing violation (oversized
  /// declared length, truncated length prefix mid-stream).
  virtual Expected<std::vector<std::uint8_t>> recv_frame() = 0;

  /// Unblock any pending recv_frame on both ends and refuse further
  /// traffic. Idempotent.
  virtual void shutdown() = 0;

  /// Opt into frame integrity (protocol.hpp kFrameCrcFlag): send_frame
  /// sets bit 31 of the length prefix and appends a CRC32C trailer over
  /// the body. Receivers ALWAYS accept both forms regardless of this
  /// switch, and receiving one checksummed frame turns the switch on —
  /// so a server built on raw transports echoes trailers to any peer
  /// that sends them, without per-connection bookkeeping by the caller.
  /// Default implementation is a no-op for transports (wrappers,
  /// test doubles) that do not frame bytes themselves.
  virtual void set_frame_crc(bool) {}
  virtual bool frame_crc() const { return false; }
};

namespace detail {
/// One direction of an in-process pipe: an unbounded byte FIFO with
/// blocking reads and a closed flag (reads drain remaining bytes first).
class ByteChannel;
}  // namespace detail

/// In-process transport for deterministic tests: a pair of endpoints
/// connected by two byte FIFOs, no sockets involved. The wire format is
/// byte-exact with the TCP transport, so framing violations (a hostile
/// length prefix injected via send_raw) exercise the same validation path.
class PipeTransport final : public Transport {
 public:
  /// Two connected endpoints; frames sent on one arrive at the other.
  static std::pair<std::unique_ptr<PipeTransport>,
                   std::unique_ptr<PipeTransport>>
  make_pair();

  Status send_frame(std::span<const std::uint8_t> frame) override;
  Expected<std::vector<std::uint8_t>> recv_frame() override;
  void shutdown() override;
  void set_frame_crc(bool on) override { crc_.store(on); }
  bool frame_crc() const override { return crc_.load(); }

  /// Test hook: put raw bytes on the wire with NO length prefix — the way
  /// to present a hostile/truncated length prefix to the peer's
  /// recv_frame().
  void send_raw(std::span<const std::uint8_t> bytes);

 private:
  PipeTransport(std::shared_ptr<detail::ByteChannel> in,
                std::shared_ptr<detail::ByteChannel> out);

  std::shared_ptr<detail::ByteChannel> in_, out_;
  std::atomic<bool> crc_{false};
};

/// TCP loopback transport over a connected socket. Construction paths:
/// TcpListener::accept() on the server side, TcpTransport::connect() on
/// the client side. Close/shutdown use ::shutdown so a blocked recv on
/// another thread returns instead of hanging.
class TcpTransport final : public Transport {
 public:
  /// Connect to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  static Expected<std::unique_ptr<TcpTransport>> connect(
      const std::string& host, std::uint16_t port);

  /// Adopt an already-connected socket (the listener's accept path).
  explicit TcpTransport(int fd);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status send_frame(std::span<const std::uint8_t> frame) override;
  Expected<std::vector<std::uint8_t>> recv_frame() override;
  void shutdown() override;
  void set_frame_crc(bool on) override { crc_.store(on); }
  bool frame_crc() const override { return crc_.load(); }

  /// Bound how long recv_frame() blocks waiting for bytes (a poll() ahead
  /// of every recv). A hung or wedged peer surfaces as a typed kTimeout
  /// instead of a hang; -1 (the default) blocks forever. The timeout is
  /// per read-progress, not per frame: a slow-but-moving multi-megabyte
  /// frame is fine as long as no single stall exceeds the budget.
  void set_recv_timeout_ms(int ms) { recv_timeout_ms_.store(ms); }

  /// Test hook mirroring PipeTransport::send_raw: put raw bytes on the
  /// wire with NO length prefix, so fuzzers can present hostile/truncated
  /// prefixes and split frames at arbitrary byte boundaries.
  Status send_raw(std::span<const std::uint8_t> bytes);

 private:
  int fd_ = -1;
  std::atomic<bool> crc_{false};
  std::atomic<int> recv_timeout_ms_{-1};
};

/// Loopback (127.0.0.1) listening socket. `port == 0` binds an ephemeral
/// port; port() reports the one the kernel assigned, for clients and port
/// files.
class TcpListener {
 public:
  static Expected<std::unique_ptr<TcpListener>> bind(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Underlying listening socket, for readiness-based accept loops (the
  /// event server polls this instead of blocking in accept()). -1 after
  /// close(). The listener keeps ownership.
  int fd() const { return fd_; }

  /// Block for the next connection. kIoError after close().
  Expected<std::unique_ptr<TcpTransport>> accept();

  /// Stop listening and unblock a pending accept(). Idempotent.
  void close();

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace aesz::service
