#include "service/protocol.hpp"

#include <cmath>

#include "sz/common.hpp"
#include "temporal/aetc.hpp"
#include "util/bytestream.hpp"

namespace aesz::service {

const char* op_name(Op op) {
  switch (op) {
    case Op::kCompressRequest: return "compress-request";
    case Op::kDecompressRequest: return "decompress-request";
    case Op::kListCodecsRequest: return "list-codecs-request";
    case Op::kStatsRequest: return "stats-request";
    case Op::kOpenStreamRequest: return "open-stream-request";
    case Op::kAppendTimestepRequest: return "append-timestep-request";
    case Op::kReadTimestepRequest: return "read-timestep-request";
    case Op::kCloseStreamRequest: return "close-stream-request";
    case Op::kMetricsRequest: return "metrics-request";
    case Op::kReadPartialRequest: return "read-partial-request";
    case Op::kDeadlineRequest: return "deadline-request";
    case Op::kCompressResponse: return "compress-response";
    case Op::kDecompressResponse: return "decompress-response";
    case Op::kListCodecsResponse: return "list-codecs-response";
    case Op::kStatsResponse: return "stats-response";
    case Op::kOpenStreamResponse: return "open-stream-response";
    case Op::kAppendTimestepResponse: return "append-timestep-response";
    case Op::kReadTimestepResponse: return "read-timestep-response";
    case Op::kCloseStreamResponse: return "close-stream-response";
    case Op::kMetricsResponse: return "metrics-response";
    case Op::kReadPartialResponse: return "read-partial-response";
    case Op::kErrorResponse: return "error-response";
  }
  return "?";
}

std::uint64_t StatsResponse::get(const std::string& name) const {
  for (const auto& [k, v] : counters)
    if (k == name) return v;
  return 0;
}

namespace {

bool known_op(std::uint8_t raw) {
  switch (static_cast<Op>(raw)) {
    case Op::kCompressRequest:
    case Op::kDecompressRequest:
    case Op::kListCodecsRequest:
    case Op::kStatsRequest:
    case Op::kOpenStreamRequest:
    case Op::kAppendTimestepRequest:
    case Op::kReadTimestepRequest:
    case Op::kCloseStreamRequest:
    case Op::kMetricsRequest:
    case Op::kReadPartialRequest:
    case Op::kDeadlineRequest:
    case Op::kCompressResponse:
    case Op::kDecompressResponse:
    case Op::kListCodecsResponse:
    case Op::kStatsResponse:
    case Op::kOpenStreamResponse:
    case Op::kAppendTimestepResponse:
    case Op::kReadTimestepResponse:
    case Op::kCloseStreamResponse:
    case Op::kMetricsResponse:
    case Op::kReadPartialResponse:
    case Op::kErrorResponse:
      return true;
  }
  return false;
}

void write_header(ByteWriter& w, Op op) {
  w.put(kFrameMagic);
  w.put(kProtocolVersion);
  w.put(static_cast<std::uint8_t>(op));
}

/// Validate the frame header (via the public peek_op, so the two paths
/// can never drift) and return a reader positioned at the body.
Expected<ByteReader> open_frame(std::span<const std::uint8_t> frame,
                                Op expected) {
  const auto op = peek_op(frame);
  if (!op.ok()) return op.status();
  if (*op != expected)
    return Status::error(ErrCode::kBadHeader,
                         std::string("expected ") + op_name(expected) +
                             ", got " + op_name(*op));
  return ByteReader(frame.subspan(kFrameHeaderBytes));
}

/// A frame body must end exactly where its last field does — trailing
/// bytes mean a framing bug or a hostile sender.
Status close_frame(const ByteReader& r) {
  if (!r.eof())
    return Status::error(ErrCode::kCorruptStream,
                         "trailing bytes after frame body");
  return {};
}

Status read_string(ByteReader& r, std::size_t cap, const char* what,
                   std::string& out) {
  std::span<const std::uint8_t> bytes;
  if (!r.try_get_blob(bytes))
    return Status::error(ErrCode::kTruncated,
                         std::string("truncated ") + what);
  if (bytes.size() > cap)
    return Status::error(ErrCode::kBadHeader,
                         std::string(what) + " exceeds " +
                             std::to_string(cap) + " bytes");
  out.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return {};
}

Status read_error_bound(ByteReader& r, ErrorBound& out) {
  std::uint8_t mode = 0;
  double value = 0.0;
  if (!r.try_get(mode) || !r.try_get(value))
    return Status::error(ErrCode::kTruncated, "truncated error bound");
  if (mode > static_cast<std::uint8_t>(EbMode::kPSNR))
    return Status::error(ErrCode::kBadHeader, "bad error-bound mode");
  if (!std::isfinite(value))
    return Status::error(ErrCode::kBadHeader, "bad error-bound value");
  out = ErrorBound(static_cast<EbMode>(mode), value);
  return {};
}

void write_dims(ByteWriter& w, const Dims& d) {
  w.put(static_cast<std::uint8_t>(d.rank));
  for (int i = 0; i < d.rank; ++i) w.put_varint(d[i]);
}

}  // namespace

// -------------------------------------------------------------- encoding --

std::vector<std::uint8_t> encode_compress_request(const CompressRequest& r) {
  ByteWriter w;
  write_header(w, Op::kCompressRequest);
  w.put_blob({reinterpret_cast<const std::uint8_t*>(r.codec.data()),
              r.codec.size()});
  w.put(static_cast<std::uint8_t>(r.eb.mode()));
  w.put(r.eb.value());
  write_dims(w, r.dims);
  w.put_blob(r.field);
  return w.take();
}

std::vector<std::uint8_t> encode_decompress_request(
    const DecompressRequest& r) {
  ByteWriter w;
  write_header(w, Op::kDecompressRequest);
  w.put_blob({reinterpret_cast<const std::uint8_t*>(r.codec.data()),
              r.codec.size()});
  w.put_blob(r.stream);
  return w.take();
}

std::vector<std::uint8_t> encode_list_codecs_request() {
  ByteWriter w;
  write_header(w, Op::kListCodecsRequest);
  return w.take();
}

std::vector<std::uint8_t> encode_stats_request() {
  ByteWriter w;
  write_header(w, Op::kStatsRequest);
  return w.take();
}

std::vector<std::uint8_t> encode_compress_response(
    const CompressResponse& r) {
  ByteWriter w;
  write_header(w, Op::kCompressResponse);
  w.put(r.abs_eb);
  w.put_blob(r.stream);
  return w.take();
}

std::vector<std::uint8_t> encode_decompress_response(
    const DecompressResponse& r) {
  ByteWriter w;
  write_header(w, Op::kDecompressResponse);
  write_dims(w, r.dims);
  w.put_blob(r.field);
  return w.take();
}

std::vector<std::uint8_t> encode_list_codecs_response(
    const std::vector<CodecSummary>& codecs) {
  ByteWriter w;
  write_header(w, Op::kListCodecsResponse);
  w.put_varint(codecs.size());
  for (const auto& c : codecs) {
    w.put_blob({reinterpret_cast<const std::uint8_t*>(c.name.data()),
                c.name.size()});
    w.put(static_cast<std::uint8_t>(c.error_bounded ? 1 : 0));
    w.put(c.magic);
    w.put_blob({reinterpret_cast<const std::uint8_t*>(c.description.data()),
                c.description.size()});
  }
  return w.take();
}

std::vector<std::uint8_t> encode_stats_response(const StatsResponse& r) {
  ByteWriter w;
  write_header(w, Op::kStatsResponse);
  w.put_varint(r.counters.size());
  for (const auto& [name, value] : r.counters) {
    w.put_blob({reinterpret_cast<const std::uint8_t*>(name.data()),
                name.size()});
    w.put_varint(value);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_error_response(const ErrorResponse& r) {
  ByteWriter w;
  write_header(w, Op::kErrorResponse);
  w.put(static_cast<std::uint8_t>(r.code));
  w.put_blob({reinterpret_cast<const std::uint8_t*>(r.message.data()),
              r.message.size()});
  return w.take();
}

// --------------------------------------------------------------- parsing --

Expected<Op> peek_op(std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  std::uint32_t magic = 0;
  if (!r.try_get(magic))
    return Status::error(ErrCode::kTruncated, "frame too short for magic");
  if (magic != kFrameMagic)
    return Status::error(ErrCode::kBadMagic, "frame magic mismatch");
  std::uint8_t version = 0, raw_op = 0;
  if (!r.try_get(version) || !r.try_get(raw_op))
    return Status::error(ErrCode::kTruncated, "truncated frame header");
  if (version != kProtocolVersion)
    return Status::error(ErrCode::kBadHeader,
                         "unsupported protocol version " +
                             std::to_string(version));
  if (!known_op(raw_op))
    return Status::error(ErrCode::kBadHeader,
                         "unknown opcode " + std::to_string(raw_op));
  return static_cast<Op>(raw_op);
}

Expected<CompressRequest> parse_compress_request(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kCompressRequest);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  CompressRequest out;
  if (Status s = read_string(r, kMaxCodecName, "codec name", out.codec);
      !s.ok())
    return s;
  if (Status s = read_error_bound(r, out.eb); !s.ok()) return s;
  if (Status s = sz::read_dims_checked(r, out.dims); !s.ok()) return s;
  if (!r.try_get_blob(out.field))
    return Status::error(ErrCode::kTruncated, "truncated field payload");
  // The payload length is part of the request's self-consistency: it must
  // be exactly the raw f32 bytes of the declared dims.
  if (out.field.size() != out.dims.total() * sizeof(float))
    return Status::error(ErrCode::kCorruptStream,
                         "field payload does not match dims");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<DecompressRequest> parse_decompress_request(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kDecompressRequest);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  DecompressRequest out;
  if (Status s = read_string(r, kMaxCodecName, "codec name", out.codec);
      !s.ok())
    return s;
  if (!r.try_get_blob(out.stream))
    return Status::error(ErrCode::kTruncated, "truncated stream payload");
  if (out.stream.empty())
    return Status::error(ErrCode::kCorruptStream, "empty stream payload");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<CompressResponse> parse_compress_response(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kCompressResponse);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  CompressResponse out;
  if (!r.try_get(out.abs_eb) || !std::isfinite(out.abs_eb) || out.abs_eb < 0)
    return Status::error(ErrCode::kBadHeader, "bad resolved bound");
  if (!r.try_get_blob(out.stream))
    return Status::error(ErrCode::kTruncated, "truncated stream payload");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<DecompressResponse> parse_decompress_response(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kDecompressResponse);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  DecompressResponse out;
  if (Status s = sz::read_dims_checked(r, out.dims); !s.ok()) return s;
  if (!r.try_get_blob(out.field))
    return Status::error(ErrCode::kTruncated, "truncated field payload");
  if (out.field.size() != out.dims.total() * sizeof(float))
    return Status::error(ErrCode::kCorruptStream,
                         "field payload does not match dims");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<std::vector<CodecSummary>> parse_list_codecs_response(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kListCodecsResponse);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  std::uint64_t count = 0;
  if (!r.try_get_varint(count))
    return Status::error(ErrCode::kTruncated, "truncated codec count");
  // Each entry takes at least 1 (name blob) + 1 (flag) + 4 (magic) +
  // 1 (description blob) = 7 bytes — capacity is validated before reserve.
  if (count > r.remaining() / 7)
    return Status::error(ErrCode::kBadHeader, "bad codec count");
  std::vector<CodecSummary> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    CodecSummary c;
    if (Status s = read_string(r, kMaxCodecName, "codec name", c.name);
        !s.ok())
      return s;
    std::uint8_t bounded = 0;
    if (!r.try_get(bounded) || !r.try_get(c.magic))
      return Status::error(ErrCode::kTruncated, "truncated codec entry");
    c.error_bounded = bounded != 0;
    if (Status s = read_string(r, 4096, "codec description", c.description);
        !s.ok())
      return s;
    out.push_back(std::move(c));
  }
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<StatsResponse> parse_stats_response(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kStatsResponse);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  std::uint64_t count = 0;
  if (!r.try_get_varint(count))
    return Status::error(ErrCode::kTruncated, "truncated counter count");
  // Minimum counter entry: 1-byte name blob + 1-byte varint value.
  if (count > r.remaining() / 2)
    return Status::error(ErrCode::kBadHeader, "bad counter count");
  StatsResponse out;
  out.counters.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name;
    if (Status s = read_string(r, kMaxCodecName, "counter name", name);
        !s.ok())
      return s;
    std::uint64_t value = 0;
    if (!r.try_get_varint(value))
      return Status::error(ErrCode::kTruncated, "truncated counter value");
    out.counters.emplace_back(std::move(name), value);
  }
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<ErrorResponse> parse_error_response(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kErrorResponse);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  std::uint8_t raw_code = 0;
  if (!r.try_get(raw_code))
    return Status::error(ErrCode::kTruncated, "truncated error code");
  if (raw_code > static_cast<std::uint8_t>(ErrCode::kTimeout) ||
      raw_code == static_cast<std::uint8_t>(ErrCode::kOk))
    return Status::error(ErrCode::kBadHeader, "bad error code");
  ErrorResponse out;
  out.code = static_cast<ErrCode>(raw_code);
  if (Status s = read_string(r, 4096, "error message", out.message); !s.ok())
    return s;
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

// ------------------------------------------------------ stream sessions --

std::vector<std::uint8_t> encode_open_stream_request(
    const OpenStreamRequest& r) {
  ByteWriter w;
  write_header(w, Op::kOpenStreamRequest);
  w.put_blob({reinterpret_cast<const std::uint8_t*>(r.codec.data()),
              r.codec.size()});
  w.put(static_cast<std::uint8_t>(r.eb.mode()));
  w.put(r.eb.value());
  write_dims(w, r.dims);
  w.put_varint(r.gop);
  return w.take();
}

std::vector<std::uint8_t> encode_open_stream_response(
    const OpenStreamResponse& r) {
  ByteWriter w;
  write_header(w, Op::kOpenStreamResponse);
  w.put(r.session_id);
  return w.take();
}

std::vector<std::uint8_t> encode_append_timestep_request(
    const AppendTimestepRequest& r) {
  ByteWriter w;
  write_header(w, Op::kAppendTimestepRequest);
  w.put(r.session_id);
  w.put_blob(r.field);
  return w.take();
}

std::vector<std::uint8_t> encode_append_timestep_response(
    const AppendTimestepResponse& r) {
  ByteWriter w;
  write_header(w, Op::kAppendTimestepResponse);
  w.put_varint(r.timestep);
  w.put(static_cast<std::uint8_t>(r.residual ? 1 : 0));
  w.put(r.abs_eb);
  w.put_varint(r.stored_bytes);
  return w.take();
}

std::vector<std::uint8_t> encode_read_timestep_request(
    const ReadTimestepRequest& r) {
  ByteWriter w;
  write_header(w, Op::kReadTimestepRequest);
  w.put(r.session_id);
  w.put_varint(r.timestep);
  return w.take();
}

std::vector<std::uint8_t> encode_read_timestep_response(
    const ReadTimestepResponse& r) {
  ByteWriter w;
  write_header(w, Op::kReadTimestepResponse);
  write_dims(w, r.dims);
  w.put_blob(r.field);
  return w.take();
}

std::vector<std::uint8_t> encode_close_stream_request(
    const CloseStreamRequest& r) {
  ByteWriter w;
  write_header(w, Op::kCloseStreamRequest);
  w.put(r.session_id);
  return w.take();
}

std::vector<std::uint8_t> encode_close_stream_response(
    const CloseStreamResponse& r) {
  ByteWriter w;
  write_header(w, Op::kCloseStreamResponse);
  w.put_varint(r.timesteps);
  w.put_blob(r.artifact);
  return w.take();
}

Expected<OpenStreamRequest> parse_open_stream_request(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kOpenStreamRequest);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  OpenStreamRequest out;
  if (Status s = read_string(r, kMaxCodecName, "codec name", out.codec);
      !s.ok())
    return s;
  if (out.codec.empty())
    return Status::error(ErrCode::kBadHeader, "empty codec name");
  if (Status s = read_error_bound(r, out.eb); !s.ok()) return s;
  if (Status s = sz::read_dims_checked(r, out.dims); !s.ok()) return s;
  if (!r.try_get_varint(out.gop))
    return Status::error(ErrCode::kTruncated, "truncated gop");
  if (out.gop > temporal::kMaxGop)
    return Status::error(ErrCode::kBadHeader, "gop exceeds cap");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<OpenStreamResponse> parse_open_stream_response(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kOpenStreamResponse);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  OpenStreamResponse out;
  if (!r.try_get(out.session_id))
    return Status::error(ErrCode::kTruncated, "truncated session id");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<AppendTimestepRequest> parse_append_timestep_request(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kAppendTimestepRequest);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  AppendTimestepRequest out;
  if (!r.try_get(out.session_id))
    return Status::error(ErrCode::kTruncated, "truncated session id");
  if (!r.try_get_blob(out.field))
    return Status::error(ErrCode::kTruncated, "truncated field payload");
  // Whether the size matches the session's dims only the server knows;
  // a payload that isn't whole floats is malformed on its face.
  if (out.field.empty() || out.field.size() % sizeof(float) != 0)
    return Status::error(ErrCode::kCorruptStream,
                         "field payload not a whole number of floats");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<AppendTimestepResponse> parse_append_timestep_response(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kAppendTimestepResponse);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  AppendTimestepResponse out;
  std::uint8_t residual = 0;
  if (!r.try_get_varint(out.timestep) || !r.try_get(residual))
    return Status::error(ErrCode::kTruncated, "truncated append response");
  if (residual > 1)
    return Status::error(ErrCode::kBadHeader, "bad residual flag");
  out.residual = residual != 0;
  if (!r.try_get(out.abs_eb) || !std::isfinite(out.abs_eb) || out.abs_eb <= 0)
    return Status::error(ErrCode::kBadHeader, "bad resolved bound");
  if (!r.try_get_varint(out.stored_bytes))
    return Status::error(ErrCode::kTruncated, "truncated stored-bytes");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<ReadTimestepRequest> parse_read_timestep_request(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kReadTimestepRequest);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  ReadTimestepRequest out;
  if (!r.try_get(out.session_id))
    return Status::error(ErrCode::kTruncated, "truncated session id");
  if (!r.try_get_varint(out.timestep))
    return Status::error(ErrCode::kTruncated, "truncated timestep");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<ReadTimestepResponse> parse_read_timestep_response(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kReadTimestepResponse);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  ReadTimestepResponse out;
  if (Status s = sz::read_dims_checked(r, out.dims); !s.ok()) return s;
  if (!r.try_get_blob(out.field))
    return Status::error(ErrCode::kTruncated, "truncated field payload");
  if (out.field.size() != out.dims.total() * sizeof(float))
    return Status::error(ErrCode::kCorruptStream,
                         "field payload does not match dims");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<CloseStreamRequest> parse_close_stream_request(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kCloseStreamRequest);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  CloseStreamRequest out;
  if (!r.try_get(out.session_id))
    return Status::error(ErrCode::kTruncated, "truncated session id");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<CloseStreamResponse> parse_close_stream_response(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kCloseStreamResponse);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  CloseStreamResponse out;
  if (!r.try_get_varint(out.timesteps))
    return Status::error(ErrCode::kTruncated, "truncated timestep count");
  if (!r.try_get_blob(out.artifact))
    return Status::error(ErrCode::kTruncated, "truncated artifact");
  if (out.artifact.empty())
    return Status::error(ErrCode::kCorruptStream, "empty artifact");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

// ------------------------------------------------------------ progressive --

std::vector<std::uint8_t> encode_read_partial_request(
    const ReadPartialRequest& r) {
  ByteWriter w;
  write_header(w, Op::kReadPartialRequest);
  w.put_blob(r.stream);
  w.put(static_cast<std::uint8_t>(r.mode));
  if (r.mode == PartialMode::kByteBudget) {
    w.put_varint(r.budget);
  } else {
    w.put(static_cast<std::uint8_t>(r.bound.mode()));
    w.put(r.bound.value());
  }
  return w.take();
}

std::vector<std::uint8_t> encode_read_partial_response(
    const ReadPartialResponse& r) {
  ByteWriter w;
  write_header(w, Op::kReadPartialResponse);
  w.put(r.abs_eb);
  w.put_varint(r.layers);
  w.put_varint(r.total_layers);
  w.put_blob(r.stream);
  return w.take();
}

Expected<ReadPartialRequest> parse_read_partial_request(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kReadPartialRequest);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  ReadPartialRequest out;
  if (!r.try_get_blob(out.stream))
    return Status::error(ErrCode::kTruncated, "truncated stream payload");
  if (out.stream.empty())
    return Status::error(ErrCode::kCorruptStream, "empty stream payload");
  std::uint8_t mode = 0;
  if (!r.try_get(mode))
    return Status::error(ErrCode::kTruncated, "truncated partial mode");
  if (mode > static_cast<std::uint8_t>(PartialMode::kTargetBound))
    return Status::error(ErrCode::kBadHeader, "bad partial mode");
  out.mode = static_cast<PartialMode>(mode);
  if (out.mode == PartialMode::kByteBudget) {
    if (!r.try_get_varint(out.budget))
      return Status::error(ErrCode::kTruncated, "truncated byte budget");
  } else {
    if (Status s = read_error_bound(r, out.bound); !s.ok()) return s;
    if (!out.bound.usable())
      return Status::error(ErrCode::kBadHeader, "unusable target bound");
  }
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<ReadPartialResponse> parse_read_partial_response(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kReadPartialResponse);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  ReadPartialResponse out;
  if (!r.try_get(out.abs_eb) || !std::isfinite(out.abs_eb) || out.abs_eb <= 0)
    return Status::error(ErrCode::kBadHeader, "bad achieved bound");
  if (!r.try_get_varint(out.layers) || !r.try_get_varint(out.total_layers))
    return Status::error(ErrCode::kTruncated, "truncated layer counts");
  if (out.layers == 0 || out.layers > out.total_layers)
    return Status::error(ErrCode::kBadHeader, "bad layer counts");
  if (!r.try_get_blob(out.stream))
    return Status::error(ErrCode::kTruncated, "truncated stream payload");
  if (out.stream.empty())
    return Status::error(ErrCode::kCorruptStream, "empty stream payload");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

// -------------------------------------------------------------- deadline --

std::vector<std::uint8_t> encode_deadline_request(const DeadlineRequest& r) {
  ByteWriter w;
  write_header(w, Op::kDeadlineRequest);
  w.put_varint(r.deadline_ms);
  w.put_blob(r.inner);
  return w.take();
}

Expected<DeadlineRequest> parse_deadline_request(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kDeadlineRequest);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  DeadlineRequest out;
  if (!r.try_get_varint(out.deadline_ms))
    return Status::error(ErrCode::kTruncated, "truncated deadline");
  if (!r.try_get_blob(out.inner))
    return Status::error(ErrCode::kTruncated, "truncated inner frame");
  const auto inner_op = peek_op(out.inner);
  if (!inner_op.ok()) return inner_op.status();
  if (*inner_op == Op::kDeadlineRequest)
    return Status::error(ErrCode::kBadHeader, "nested deadline envelope");
  if (static_cast<std::uint8_t>(*inner_op) >=
      static_cast<std::uint8_t>(Op::kCompressResponse))
    return Status::error(ErrCode::kBadHeader,
                         "deadline envelope must wrap a request");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

// --------------------------------------------------------------- metrics --

std::vector<std::uint8_t> encode_metrics_request() {
  ByteWriter w;
  write_header(w, Op::kMetricsRequest);
  return w.take();
}

std::vector<std::uint8_t> encode_metrics_response(const MetricsResponse& r) {
  ByteWriter w;
  write_header(w, Op::kMetricsResponse);
  w.put_blob(r.text);
  return w.take();
}

Expected<MetricsResponse> parse_metrics_response(
    std::span<const std::uint8_t> frame) {
  auto opened = open_frame(frame, Op::kMetricsResponse);
  if (!opened.ok()) return opened.status();
  ByteReader r = *opened;
  MetricsResponse out;
  if (!r.try_get_blob(out.text))
    return Status::error(ErrCode::kTruncated, "truncated exposition text");
  if (Status s = close_frame(r); !s.ok()) return s;
  return out;
}

Expected<std::uint64_t> peek_session_id(std::span<const std::uint8_t> frame) {
  const auto op = peek_op(frame);
  if (!op.ok()) return op.status();
  if (*op != Op::kAppendTimestepRequest && *op != Op::kReadTimestepRequest &&
      *op != Op::kCloseStreamRequest)
    return Status::error(ErrCode::kBadHeader,
                         std::string(op_name(*op)) +
                             " does not carry a session id");
  ByteReader r(frame.subspan(kFrameHeaderBytes));
  std::uint64_t id = 0;
  if (!r.try_get(id))
    return Status::error(ErrCode::kTruncated, "truncated session id");
  return id;
}

}  // namespace aesz::service
