#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/expected.hpp"

namespace aesz::service {

/// Retry policy for transient service failures: capped exponential backoff
/// with deterministic jitter. "Transient" is a fixed, deliberately short
/// list — a lost connection (kIoError), an expired budget (kTimeout), a
/// shedding server (kOverloaded). Everything else (bad arguments, corrupt
/// streams, checksum mismatches, unknown sessions) reproduces on retry and
/// fails fast instead.
///
/// Only idempotent operations may be retried: re-sending an append after a
/// lost RESPONSE would store the timestep twice. The policy itself is
/// mechanism — the caller (Client) knows which of its operations are safe.
///
/// Jitter is a pure function of (seed, attempt): two processes with
/// different seeds desynchronize their retry storms, while a test with a
/// fixed seed sees byte-identical schedules every run.
struct RetryPolicy {
  std::size_t max_attempts = 3;     // total tries, the first included
  std::uint64_t base_delay_ms = 10; // delay after the first failure
  std::uint64_t max_delay_ms = 2000;
  double jitter = 0.25;             // +/- fraction of the computed delay
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  /// Transient failures only: a lost/reset connection, an expired wait,
  /// a shedding server, or a frame damaged on the wire. A checksum
  /// mismatch is retryable WITHOUT a reconnect — the length prefix was
  /// intact, so the stream is still frame-synchronized and a resend is
  /// safe (client.cpp keys its reconnect on kIoError/kTimeout only).
  bool retryable(ErrCode code) const {
    return code == ErrCode::kIoError || code == ErrCode::kTimeout ||
           code == ErrCode::kOverloaded || code == ErrCode::kChecksumMismatch;
  }

  /// Backoff before attempt `attempt + 1` (i.e. after the `attempt`-th try
  /// failed, 1-based): base * 2^(attempt-1), jittered, capped.
  std::uint64_t delay_ms(std::size_t attempt) const;
};

/// Sleep hook so tests drive the schedule without wall-clock waits. The
/// default really sleeps.
using SleepFn = std::function<void(std::uint64_t ms)>;
void sleep_for_ms(std::uint64_t ms);

namespace detail {
inline const Status& status_of(const Status& s) { return s; }
template <typename T>
const Status& status_of(const Expected<T>& e) {
  return e.status();
}
}  // namespace detail

/// Run `fn` until it succeeds, the failure is not retryable, or attempts
/// run out — whichever comes first. `fn` returns Status or Expected<T>;
/// the last result is returned verbatim. `on_retry`, when set, runs before
/// each re-attempt with the failure that triggered it (the Client hooks
/// its reconnect here and keys on the code: a dead or desynchronized
/// connection wants a fresh one, an overloaded server just wants patience).
template <typename Fn>
auto with_retry(const RetryPolicy& policy, Fn&& fn,
                const std::function<void(const Status&)>& on_retry = nullptr,
                const SleepFn& sleep = sleep_for_ms) -> decltype(fn()) {
  for (std::size_t attempt = 1;; ++attempt) {
    auto result = fn();
    const Status& failure = detail::status_of(result);
    if (failure.ok() || attempt >= policy.max_attempts ||
        !policy.retryable(failure.code))
      return result;
    if (sleep) sleep(policy.delay_ms(attempt));
    if (on_retry) on_retry(failure);
  }
}

}  // namespace aesz::service
