#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/field.hpp"
#include "predictors/error_bound.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/expected.hpp"

namespace aesz::service {

/// Synchronous client over any Transport: one request frame out, one
/// response frame in. An error frame from the server comes back as the
/// typed Status it carries, transport failures as kIoError — callers
/// dispatch on ErrCode exactly like the local Expected-based codec API.
///
/// The client borrows the transport (no ownership) and is NOT thread-safe:
/// give each thread its own connection, or serialize externally. Pipelined
/// use (stacking requests before reading responses) is possible against
/// the raw transport; this wrapper keeps the simple call-and-wait shape.
class Client {
 public:
  explicit Client(Transport& transport) : transport_(transport) {}

  struct CompressResult {
    std::vector<std::uint8_t> stream;
    /// The absolute tolerance the server resolved the requested bound to.
    double abs_eb = 0.0;
  };

  /// Compress `f` under `eb` with the named server-side codec.
  Expected<CompressResult> compress(const std::string& codec, const Field& f,
                                    const ErrorBound& eb);

  /// Pipelined compression: send ALL requests before reading any response,
  /// so an event-loop server sees them queued together and can coalesce
  /// compatible ones into one batched inference pass. Result i corresponds
  /// to fields[i] (responses arrive in request order); each slot carries
  /// its own success or typed error. A transport failure mid-pipeline
  /// fails the remaining slots with its status.
  std::vector<Expected<CompressResult>> compress_many(
      const std::string& codec, const std::vector<const Field*>& fields,
      const ErrorBound& eb);

  /// Decompress a stream. Empty `codec` asks the server to identify it by
  /// its magic.
  Expected<Field> decompress(std::span<const std::uint8_t> stream,
                             const std::string& codec = "");

  Expected<std::vector<CodecSummary>> list_codecs();

  Expected<StatsResponse> stats();

 private:
  /// Send one frame, receive one frame, check it carries `expected` (an
  /// error frame is unwrapped into its Status instead).
  Expected<std::vector<std::uint8_t>> round_trip(
      std::span<const std::uint8_t> request, Op expected);

  Transport& transport_;
};

}  // namespace aesz::service
