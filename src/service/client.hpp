#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "data/field.hpp"
#include "predictors/error_bound.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"
#include "service/transport.hpp"
#include "util/expected.hpp"

namespace aesz::service {

/// Synchronous client over any Transport: one request frame out, one
/// response frame in. An error frame from the server comes back as the
/// typed Status it carries, transport failures as kIoError — callers
/// dispatch on ErrCode exactly like the local Expected-based codec API.
///
/// The client borrows the transport (no ownership) and is NOT thread-safe:
/// give each thread its own connection, or serialize externally. Pipelined
/// use (stacking requests before reading responses) is possible against
/// the raw transport; this wrapper keeps the simple call-and-wait shape.
class Client {
 public:
  explicit Client(Transport& transport) : transport_(&transport) {}

  /// Produces a replacement connection after the current one dies or
  /// desynchronizes; the Client owns the replacement.
  using ReconnectFn = std::function<Expected<std::unique_ptr<Transport>>()>;

  /// Enable transparent retry of idempotent operations (everything except
  /// Stream::append/close — replaying an append after a lost response
  /// would store the timestep twice). `reconnect` is invoked before a
  /// re-attempt when the failure was connection-level: kIoError (peer
  /// gone) or kTimeout (a stale response may still arrive, so the old
  /// connection cannot be trusted to pair responses with requests).
  /// kOverloaded backs off on the same connection. `sleep` exists so
  /// tests run the schedule without wall-clock waits.
  void set_retry(RetryPolicy policy, ReconnectFn reconnect = nullptr,
                 SleepFn sleep = sleep_for_ms) {
    retry_ = policy;
    retry_enabled_ = true;
    reconnect_ = std::move(reconnect);
    sleep_ = std::move(sleep);
  }

  /// Wrap every request in a deadline envelope (op 0x0B): the server
  /// answers kTimeout instead of executing once the budget has expired in
  /// its queue. 0 disables.
  void set_deadline_ms(std::uint64_t ms) { deadline_ms_ = ms; }

  /// Checksum frames in both directions (transport-level CRC32C trailers,
  /// protocol.hpp kFrameCrcFlag). Remembered across reconnects.
  void set_frame_crc(bool on) {
    want_crc_ = on;
    transport_->set_frame_crc(on);
  }

  struct CompressResult {
    std::vector<std::uint8_t> stream;
    /// The absolute tolerance the server resolved the requested bound to.
    double abs_eb = 0.0;
  };

  /// Compress `f` under `eb` with the named server-side codec.
  Expected<CompressResult> compress(const std::string& codec, const Field& f,
                                    const ErrorBound& eb);

  /// Pipelined compression: send ALL requests before reading any response,
  /// so an event-loop server sees them queued together and can coalesce
  /// compatible ones into one batched inference pass. Result i corresponds
  /// to fields[i] (responses arrive in request order); each slot carries
  /// its own success or typed error. A transport failure mid-pipeline
  /// fails the remaining slots with its status.
  std::vector<Expected<CompressResult>> compress_many(
      const std::string& codec, const std::vector<const Field*>& fields,
      const ErrorBound& eb);

  /// Decompress a stream. Empty `codec` asks the server to identify it by
  /// its magic.
  Expected<Field> decompress(std::span<const std::uint8_t> stream,
                             const std::string& codec = "");

  struct PartialResult {
    /// A valid AEPR stream: the prefix of `stream` carrying the served
    /// layers (decode with progressive::ProgressiveReader, or hand back
    /// to decompress() for full fidelity once all layers are present).
    std::vector<std::uint8_t> stream;
    /// The absolute tolerance the served prefix honors.
    double abs_eb = 0.0;
    std::uint64_t layers = 0;        // layers the prefix carries
    std::uint64_t total_layers = 0;  // layers the full stream declares
  };

  /// Byte-budgeted retrieval from an AEPR progressive stream (op 0x0A):
  /// the largest layer prefix whose bytes fit `budget` — never less than
  /// the coarsest layer, so a tiny budget still answers a usable field.
  Expected<PartialResult> read_partial(std::span<const std::uint8_t> stream,
                                       std::uint64_t budget);

  /// Bound-targeted retrieval: the smallest layer prefix whose recorded
  /// tolerance meets `target` (best effort: the whole stream when the
  /// target outruns its final layer).
  Expected<PartialResult> read_partial(std::span<const std::uint8_t> stream,
                                       const ErrorBound& target);

  Expected<std::vector<CodecSummary>> list_codecs();

  Expected<StatsResponse> stats();

  /// Prometheus text exposition of the server's metrics registry (op
  /// 0x09). A pre-metrics server answers with kBadHeader, surfaced here as
  /// the typed error status.
  Expected<std::string> metrics();

  /// RAII handle on one server-side stream session. Obtained from
  /// open_stream(); move-only. close() ends the session and returns the
  /// complete AETC artifact; if the handle dies without close(), the
  /// destructor closes the session best-effort (artifact discarded) so
  /// abandoned handles do not pin server state until the idle reaper
  /// runs. Borrows the Client — same single-thread discipline, and the
  /// Client (and its transport) must outlive the handle.
  class Stream {
   public:
    Stream(Stream&& other) noexcept;
    Stream& operator=(Stream&& other) noexcept;
    Stream(const Stream&) = delete;
    Stream& operator=(const Stream&) = delete;
    ~Stream();

    struct AppendInfo {
      std::uint64_t timestep = 0;
      bool residual = false;
      double abs_eb = 0.0;
      std::uint64_t stored_bytes = 0;
    };

    /// Compress-and-append one timestep on the server.
    Expected<AppendInfo> append(const Field& f);

    /// Decode timestep t back out of the session's stream.
    Expected<Field> read_timestep(std::uint64_t t);

    /// Close the session and fetch the complete AETC artifact (readable
    /// with temporal::TemporalReader, appendable with TemporalWriter).
    /// After a successful close the handle is inert. If the server
    /// refuses (artifact over the frame cap), the session STAYS open —
    /// timesteps remain readable.
    Expected<std::vector<std::uint8_t>> close();

    std::uint64_t id() const { return id_; }
    bool open() const { return client_ != nullptr; }

   private:
    friend class Client;
    Stream(Client* client, std::uint64_t id) : client_(client), id_(id) {}

    Client* client_ = nullptr;  // null once closed / moved-from
    std::uint64_t id_ = 0;
  };

  /// Open a stream session: the server allocates per-session state (inner
  /// codec, residual reference chain, growing artifact) addressed by the
  /// returned handle. `gop` is the keyframe cadence (0 = single leading
  /// keyframe).
  Expected<Stream> open_stream(const std::string& codec, const Dims& dims,
                               const ErrorBound& eb, std::uint64_t gop = 8);

 private:
  /// Send one frame, receive one frame, check it carries `expected` (an
  /// error frame is unwrapped into its Status instead). Applies the
  /// deadline envelope, and — for idempotent requests when retry is
  /// enabled — the retry/reconnect policy.
  Expected<std::vector<std::uint8_t>> round_trip(
      std::span<const std::uint8_t> request, Op expected,
      bool idempotent = true);
  Expected<std::vector<std::uint8_t>> round_trip_once(
      std::span<const std::uint8_t> request, Op expected);
  void maybe_reconnect(const Status& failure);

  Transport* transport_;               // never null; repointed on reconnect
  std::unique_ptr<Transport> owned_;   // a reconnect-produced replacement
  RetryPolicy retry_;
  bool retry_enabled_ = false;
  ReconnectFn reconnect_;
  SleepFn sleep_ = sleep_for_ms;
  std::uint64_t deadline_ms_ = 0;
  bool want_crc_ = false;
};

}  // namespace aesz::service
