#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "predictors/error_bound.hpp"
#include "util/dims.hpp"
#include "util/expected.hpp"

namespace aesz::service {

/// Frame protocol (version 1) of the compression service. A *frame* is the
/// unit a Transport delivers: the transport prefixes each frame with a u32
/// byte length (see transport.hpp); everything below describes the frame
/// body. Layout (little-endian, varint = LEB128, blob = varint length +
/// bytes — the ByteWriter/ByteReader conventions shared with the codec
/// stream formats):
///
///   magic u32 "AESF" | version u8 | opcode u8 | opcode-specific body
///
/// Request bodies:
///   compress        codec blob | eb-mode u8 | eb-value f64 |
///                   rank u8 | dims varint* | field blob (raw f32, row-major)
///   decompress      codec blob (empty = identify by stream magic) |
///                   stream blob
///   list-codecs     (empty)
///   stats           (empty)
///   open-stream     codec blob | eb-mode u8 | eb-value f64 |
///                   rank u8 | dims varint* | gop varint
///   append-timestep session-id u64 | field blob (raw f32, row-major,
///                   must match the session's dims)
///   read-timestep   session-id u64 | timestep varint
///   close-stream    session-id u64
///   metrics         (empty)
///   read-partial    stream blob (an AEPR progressive artifact) |
///                   mode u8 (0 byte budget / 1 target bound) |
///                   mode 0: budget varint
///                   mode 1: bound-mode u8 | bound-value f64
///   deadline        deadline-ms varint | inner request frame blob (a
///                   complete frame body of any OTHER request op)
///
/// Response bodies:
///   compress        abs-bound f64 (the bound the server resolved and
///                   enforced) | stream blob
///   decompress      rank u8 | dims varint* | field blob (raw f32)
///   list-codecs     count varint | per codec: name blob, error-bounded u8,
///                   magic u32, description blob
///   stats           count varint | per counter: name blob, value varint
///   open-stream     session-id u64
///   append-timestep timestep varint | mode u8 (0 intra / 1 residual) |
///                   abs-bound f64 | stored-bytes varint
///   read-timestep   rank u8 | dims varint* | field blob (raw f32)
///   close-stream    timesteps varint | artifact blob (the complete AETC
///                   container — see src/temporal/aetc.hpp)
///   metrics         text blob (UTF-8 Prometheus text exposition, see
///                   docs/OBSERVABILITY.md)
///   read-partial    achieved-bound f64 | layers varint |
///                   total-layers varint | stream blob (a valid AEPR
///                   prefix carrying the served layers)
///   error           err-code u8 (ErrCode) | message blob
///
/// Stream sessions (protocol rev 2026-08, wire version unchanged — the
/// ops are additive and a v1 peer answers them with a typed kBadHeader
/// error): open-stream creates per-session state on the server and hands
/// back a server-unique session id; append-timestep/read-timestep/
/// close-stream address that id. A request naming an unknown, closed, or
/// idle-reaped id gets kNoSession. close-stream returns the complete
/// appendable artifact and frees the session. See docs/PROTOCOL.md for
/// the lifecycle state diagram.
///
/// Hostile-input discipline (same as the container/codec header parsers):
/// every length is bounds-validated against the remaining frame bytes
/// before any allocation, dims are checked against sz::kMaxTotalElems with
/// overflow-safe arithmetic, parse_* returns typed Expected statuses and
/// never throws, and a frame with trailing bytes after its body is
/// kCorruptStream. Parsed structs hold zero-copy spans into the caller's
/// frame bytes (nothing is copied until the server/client builds a Field).

/// "AESF" in little-endian byte order.
constexpr std::uint32_t kFrameMagic = 0x46534541u;
constexpr std::uint8_t kProtocolVersion = 1;

/// Bytes of the fixed frame-body header (magic + version + opcode).
constexpr std::size_t kFrameHeaderBytes = 6;

/// Upper bound on a single frame's byte length. Transports reject a larger
/// declared length before allocating; at 4 bytes/element this caps a served
/// field at 256 Mi elements per request, far above the bench/test sizes.
constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 30;

/// Frame-integrity flag (protocol rev 2026-08, wire version unchanged):
/// bit 31 of the transport's u32 length prefix. When set, the frame body
/// is followed by a 4-byte CRC32C trailer over the body bytes; the length
/// field (low 31 bits) still counts the BODY only. The flag is opt-in per
/// sender and sticky per connection on the server: once a peer sends one
/// checksummed frame, every response to that peer carries a trailer too.
/// A legacy peer never sets the bit and never sees a trailer — byte-level
/// compatibility is preserved. A trailer that does not match is
/// kChecksumMismatch, NOT a framing error: the length field was intact,
/// so the connection stays resynchronized and usable.
constexpr std::uint32_t kFrameCrcFlag = 0x80000000u;
constexpr std::uint32_t kFrameLenMask = 0x7FFFFFFFu;
constexpr std::size_t kFrameCrcBytes = 4;

/// Cap on codec-name length inside a frame — a name longer than this is a
/// hostile frame, not a registry lookup.
constexpr std::size_t kMaxCodecName = 256;

/// Frame opcodes. Requests have the high bit clear, responses set;
/// kErrorResponse answers any request the server could not serve.
enum class Op : std::uint8_t {
  kCompressRequest = 0x01,
  kDecompressRequest = 0x02,
  kListCodecsRequest = 0x03,
  kStatsRequest = 0x04,
  kOpenStreamRequest = 0x05,
  kAppendTimestepRequest = 0x06,
  kReadTimestepRequest = 0x07,
  kCloseStreamRequest = 0x08,
  kMetricsRequest = 0x09,
  kReadPartialRequest = 0x0A,
  kDeadlineRequest = 0x0B,
  kCompressResponse = 0x81,
  kDecompressResponse = 0x82,
  kListCodecsResponse = 0x83,
  kStatsResponse = 0x84,
  kOpenStreamResponse = 0x85,
  kAppendTimestepResponse = 0x86,
  kReadTimestepResponse = 0x87,
  kCloseStreamResponse = 0x88,
  kMetricsResponse = 0x89,
  kReadPartialResponse = 0x8A,
  kErrorResponse = 0xFF,
};

const char* op_name(Op op);

// ---------------------------------------------------------------- frames --

struct CompressRequest {
  std::string codec;
  ErrorBound eb;
  Dims dims;
  /// Raw little-endian f32 field bytes; size == dims.total() * 4 (checked).
  std::span<const std::uint8_t> field;
};

struct DecompressRequest {
  std::string codec;  // empty = server identifies by stream magic
  std::span<const std::uint8_t> stream;
};

struct CompressResponse {
  double abs_eb = 0.0;  // the absolute bound the server resolved/enforced
  std::span<const std::uint8_t> stream;
};

struct DecompressResponse {
  Dims dims;
  std::span<const std::uint8_t> field;  // raw f32, size == total() * 4
};

struct CodecSummary {
  std::string name;
  bool error_bounded = false;
  std::uint32_t magic = 0;
  std::string description;
};

/// Named monotonic counters — an extensible stats surface: servers may add
/// counters without a protocol bump, clients look up by name.
struct StatsResponse {
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  /// Value of a counter, or 0 when the server does not report it.
  std::uint64_t get(const std::string& name) const;
};

struct ErrorResponse {
  ErrCode code = ErrCode::kInternal;
  std::string message;
};

// ------------------------------------------------------ stream sessions --

struct OpenStreamRequest {
  std::string codec;
  ErrorBound eb;
  Dims dims;
  std::uint64_t gop = 8;  // keyframe cadence; 0 = single leading keyframe
};

struct OpenStreamResponse {
  std::uint64_t session_id = 0;
};

struct AppendTimestepRequest {
  std::uint64_t session_id = 0;
  /// Raw little-endian f32 field bytes; the parser checks alignment (a
  /// whole number of floats), the server checks the size against the
  /// session's dims.
  std::span<const std::uint8_t> field;
};

struct AppendTimestepResponse {
  std::uint64_t timestep = 0;
  bool residual = false;   // how the server coded this timestep
  double abs_eb = 0.0;     // the absolute tolerance enforced on it
  std::uint64_t stored_bytes = 0;  // record bytes it added to the artifact
};

struct ReadTimestepRequest {
  std::uint64_t session_id = 0;
  std::uint64_t timestep = 0;
};

struct ReadTimestepResponse {
  Dims dims;
  std::span<const std::uint8_t> field;  // raw f32, size == total() * 4
};

struct CloseStreamRequest {
  std::uint64_t session_id = 0;
};

struct CloseStreamResponse {
  std::uint64_t timesteps = 0;
  /// The complete AETC artifact (header + records + footer index).
  std::span<const std::uint8_t> artifact;
};

// ------------------------------------------------------------ progressive --

/// How a read-partial request states its fidelity target.
enum class PartialMode : std::uint8_t {
  kByteBudget = 0,  // largest layer prefix whose bytes fit the budget
  kTargetBound = 1, // smallest layer prefix meeting the bound
};

/// Byte-budgeted / bound-targeted retrieval from an AEPR progressive
/// stream (protocol rev 2026-08, wire version unchanged — additive op; a
/// pre-progressive peer answers 0x0A with a typed kBadHeader error). The
/// server never decodes anything: it parses the layer table and answers
/// with the stream PREFIX carrying the selected layers — itself a valid
/// AEPR stream the client decodes locally. A budget smaller than the
/// coarsest layer answers that layer anyway (never an error); a bound
/// tighter than the stream's final layer answers the whole stream.
struct ReadPartialRequest {
  std::span<const std::uint8_t> stream;
  PartialMode mode = PartialMode::kByteBudget;
  std::uint64_t budget = 0;  // kByteBudget: max response stream bytes
  ErrorBound bound;          // kTargetBound: the tolerance to reach
};

struct ReadPartialResponse {
  double abs_eb = 0.0;             // the bound the served prefix honors
  std::uint64_t layers = 0;        // layers the prefix carries
  std::uint64_t total_layers = 0;  // layers the full stream declares
  std::span<const std::uint8_t> stream;  // the valid AEPR prefix
};

// -------------------------------------------------------------- deadline --

/// Deadline envelope (protocol rev 2026-08, wire version unchanged —
/// additive op; a pre-deadline peer answers 0x0B with a typed kBadHeader
/// error). Wraps any OTHER request frame with a time budget in
/// milliseconds, measured from the moment the server admits the request.
/// A request whose budget is already exhausted when a worker picks it up
/// is answered kTimeout without executing — the deadline bounds queue
/// wait, not execution, so a request that started in time still completes.
/// The response is whatever the inner request would have answered (no
/// response envelope). Enveloped requests always take the direct worker
/// path: they are not batch-coalesced with bare AE-SZ compress requests.
struct DeadlineRequest {
  std::uint64_t deadline_ms = 0;  // 0 = no deadline (envelope is a no-op)
  std::span<const std::uint8_t> inner;  // a complete request frame
};

// --------------------------------------------------------------- metrics --

/// Prometheus text exposition of the server's MetricsRegistry (additive op
/// like the stream-session ops: wire version unchanged, a pre-metrics v1
/// peer answers 0x09 with a typed kBadHeader error). The stats frame stays
/// the compact machine-readable surface; this one is for scrapers.
struct MetricsResponse {
  std::span<const std::uint8_t> text;  // UTF-8 exposition body

  std::string text_str() const {
    return std::string(reinterpret_cast<const char*>(text.data()),
                       text.size());
  }
};

// -------------------------------------------------------------- encoding --

std::vector<std::uint8_t> encode_compress_request(const CompressRequest& r);
std::vector<std::uint8_t> encode_decompress_request(const DecompressRequest& r);
std::vector<std::uint8_t> encode_list_codecs_request();
std::vector<std::uint8_t> encode_stats_request();
std::vector<std::uint8_t> encode_compress_response(const CompressResponse& r);
std::vector<std::uint8_t> encode_decompress_response(
    const DecompressResponse& r);
std::vector<std::uint8_t> encode_list_codecs_response(
    const std::vector<CodecSummary>& codecs);
std::vector<std::uint8_t> encode_stats_response(const StatsResponse& r);
std::vector<std::uint8_t> encode_error_response(const ErrorResponse& r);
std::vector<std::uint8_t> encode_open_stream_request(
    const OpenStreamRequest& r);
std::vector<std::uint8_t> encode_open_stream_response(
    const OpenStreamResponse& r);
std::vector<std::uint8_t> encode_append_timestep_request(
    const AppendTimestepRequest& r);
std::vector<std::uint8_t> encode_append_timestep_response(
    const AppendTimestepResponse& r);
std::vector<std::uint8_t> encode_read_timestep_request(
    const ReadTimestepRequest& r);
std::vector<std::uint8_t> encode_read_timestep_response(
    const ReadTimestepResponse& r);
std::vector<std::uint8_t> encode_close_stream_request(
    const CloseStreamRequest& r);
std::vector<std::uint8_t> encode_close_stream_response(
    const CloseStreamResponse& r);
std::vector<std::uint8_t> encode_metrics_request();
std::vector<std::uint8_t> encode_metrics_response(const MetricsResponse& r);
std::vector<std::uint8_t> encode_read_partial_request(
    const ReadPartialRequest& r);
std::vector<std::uint8_t> encode_read_partial_response(
    const ReadPartialResponse& r);
std::vector<std::uint8_t> encode_deadline_request(const DeadlineRequest& r);

// --------------------------------------------------------------- parsing --

/// Validate the 6-byte frame header and return the opcode. Statuses:
/// kTruncated (short frame), kBadMagic, kBadHeader (version or unknown
/// opcode).
Expected<Op> peek_op(std::span<const std::uint8_t> frame);

/// Each parse validates the header (magic/version/expected opcode), then
/// the body, then that no trailing bytes remain. Spans in the result alias
/// `frame` — the caller keeps the bytes alive.
Expected<CompressRequest> parse_compress_request(
    std::span<const std::uint8_t> frame);
Expected<DecompressRequest> parse_decompress_request(
    std::span<const std::uint8_t> frame);
Expected<CompressResponse> parse_compress_response(
    std::span<const std::uint8_t> frame);
Expected<DecompressResponse> parse_decompress_response(
    std::span<const std::uint8_t> frame);
Expected<std::vector<CodecSummary>> parse_list_codecs_response(
    std::span<const std::uint8_t> frame);
Expected<StatsResponse> parse_stats_response(
    std::span<const std::uint8_t> frame);
Expected<ErrorResponse> parse_error_response(
    std::span<const std::uint8_t> frame);
Expected<OpenStreamRequest> parse_open_stream_request(
    std::span<const std::uint8_t> frame);
Expected<OpenStreamResponse> parse_open_stream_response(
    std::span<const std::uint8_t> frame);
Expected<AppendTimestepRequest> parse_append_timestep_request(
    std::span<const std::uint8_t> frame);
Expected<AppendTimestepResponse> parse_append_timestep_response(
    std::span<const std::uint8_t> frame);
Expected<ReadTimestepRequest> parse_read_timestep_request(
    std::span<const std::uint8_t> frame);
Expected<ReadTimestepResponse> parse_read_timestep_response(
    std::span<const std::uint8_t> frame);
Expected<CloseStreamRequest> parse_close_stream_request(
    std::span<const std::uint8_t> frame);
Expected<CloseStreamResponse> parse_close_stream_response(
    std::span<const std::uint8_t> frame);
Expected<MetricsResponse> parse_metrics_response(
    std::span<const std::uint8_t> frame);
Expected<ReadPartialRequest> parse_read_partial_request(
    std::span<const std::uint8_t> frame);
Expected<ReadPartialResponse> parse_read_partial_response(
    std::span<const std::uint8_t> frame);
Expected<DeadlineRequest> parse_deadline_request(
    std::span<const std::uint8_t> frame);

/// For a session-scoped request (append/read/close-stream), the session
/// id its body leads with — what the server's submit() path needs to
/// serialize per-session work without parsing the whole frame. Any other
/// opcode (or a body too short for the id) is a typed error.
Expected<std::uint64_t> peek_session_id(std::span<const std::uint8_t> frame);

}  // namespace aesz::service
