#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "predictors/compressor.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/thread_pool.hpp"

namespace aesz::service {

/// Long-lived compression server: dispatches protocol frames onto a
/// ThreadPool, routes codec names through the CodecRegistry (including the
/// `parallel:<codec>` wrappers), and keeps every constructed codec warm in
/// a per-(codec, rank) instance cache — for the learned codecs that cache
/// IS the warm-model cache: the AE network is built (or loaded from a
/// trained model file) exactly once and reused by every later request,
/// observable through the `ae_model_loads` stats counter. The one case
/// the cache cannot keep warm is `parallel:AE-SZ`: the wrapper itself is
/// cached, but ParallelCompressor builds fresh per-worker inner instances
/// on every compress/decompress by design, so each such request loads the
/// model once per worker.
///
/// Request scheduling: serve() pipelines — it keeps reading frames while
/// earlier requests are still executing on the pool, and a dedicated
/// response writer sends results back in request order, so a client may
/// stack N requests on one connection and the pool works them
/// concurrently. Codec instances are not required to be thread-safe, so
/// requests hitting the SAME cached instance serialize on a per-instance
/// mutex; requests for different codecs (or ranks) run in parallel.
///
/// Failure discipline: handle_frame() never throws and always produces a
/// response frame — every malformed or unserviceable request becomes a
/// typed error frame (protocol::ErrorResponse), mirroring the
/// Expected-based codec API.
class Server {
 public:
  struct Options {
    /// Worker threads for request execution; 0 = hardware concurrency.
    std::size_t threads = 0;
    /// Optional trained AE-SZ model served for "AE-SZ" requests: path to a
    /// save_model() file plus the model-zoo field name that configured it.
    /// Empty = registry default (fixed-seed untrained network).
    std::string aesz_model;
    std::string aesz_field = "CESM-CLDHGH";
  };

  // Two overloads, not a `= {}` default argument: NSDMIs of a nested
  // class are only parsed once the enclosing class is complete, so GCC
  // rejects brace-init of Options in a default argument here.
  Server();
  explicit Server(Options opt);

  /// Handle one request frame and return the response frame. Thread-safe;
  /// this is the transport-free core the deterministic tests drive.
  std::vector<std::uint8_t> handle_frame(std::span<const std::uint8_t> frame);

  /// Serve one connection until the peer closes (or the transport fails).
  /// Blocking; call from a dedicated thread per connection.
  void serve(Transport& transport);

  /// Snapshot of the running counters (the same data a stats frame
  /// reports).
  StatsResponse snapshot() const;

 private:
  /// One cache slot per canonical (codec, rank). `mu` serializes both the
  /// first construction and every later use of the instance (codecs keep
  /// per-compression state); the global cache_mu_ only ever guards the
  /// map itself, so an expensive model load never stalls requests for
  /// other codecs.
  struct CacheEntry {
    std::mutex mu;
    std::shared_ptr<Compressor> codec;  // null until the first build
  };

  /// Handler-facing view of a cache entry: the instance plus the mutex to
  /// hold while using it (aliased into the owning CacheEntry).
  struct CachedCodec {
    std::shared_ptr<Compressor> codec;
    std::shared_ptr<std::mutex> mu;
  };

  Expected<CachedCodec> codec_for(const std::string& name, int rank);
  Expected<std::unique_ptr<Compressor>> build_codec(const std::string& base,
                                                    bool parallel, int rank);
  std::vector<std::uint8_t> dispatch(Op op,
                                     std::span<const std::uint8_t> frame);
  std::vector<std::uint8_t> handle_compress(
      std::span<const std::uint8_t> frame);
  std::vector<std::uint8_t> handle_decompress(
      std::span<const std::uint8_t> frame);
  std::vector<std::uint8_t> handle_list_codecs();
  std::vector<std::uint8_t> handle_stats();
  std::vector<std::uint8_t> error_frame(ErrCode code, std::string message);

  Options opt_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex cache_mu_;
  std::map<std::string, std::shared_ptr<CacheEntry>> cache_;

  struct Counters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> compress_requests{0};
    std::atomic<std::uint64_t> decompress_requests{0};
    std::atomic<std::uint64_t> list_codecs_requests{0};
    std::atomic<std::uint64_t> stats_requests{0};
    std::atomic<std::uint64_t> error_responses{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> codec_cache_hits{0};
    std::atomic<std::uint64_t> codec_cache_misses{0};
    std::atomic<std::uint64_t> ae_model_loads{0};
  };
  Counters counters_;
};

}  // namespace aesz::service
