#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "predictors/compressor.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "temporal/temporal.hpp"
#include "util/thread_pool.hpp"

namespace aesz::service {

/// Long-lived compression server: dispatches protocol frames onto a
/// ThreadPool, routes codec names through the CodecRegistry (including the
/// `parallel:<codec>` wrappers), and keeps every constructed codec warm in
/// a per-(codec, rank) instance cache — for the learned codecs that cache
/// IS the warm-model cache: the AE network is built (or loaded from a
/// trained model file) exactly once and reused by every later request,
/// observable through the `ae_model_loads` stats counter. `parallel:AE-SZ`
/// shares that warmth too: its pipeline workers draw inner instances from
/// a pooled factory, so repeated parallel requests reuse the same loaded
/// models instead of rebuilding one per worker per request.
///
/// Request scheduling: submit() is the async entry point. Most requests go
/// straight to the ThreadPool; AE-SZ compress requests are routed through
/// the batching scheduler, which coalesces up to Options::max_batch queued
/// requests for the same (codec, rank) into ONE AESZ::compress_batch()
/// call so their per-block network inference shares forward passes.
/// Because batched streams are byte-identical to solo streams (see
/// BatchCompressor), coalescing is invisible to clients except as
/// throughput. serve() pipelines submit() over a transport: it keeps
/// reading frames while earlier requests execute and writes responses back
/// strictly in request order. Codec instances are not required to be
/// thread-safe, so requests hitting the SAME cached instance serialize on
/// a per-instance mutex; different codecs (or ranks) run in parallel.
///
/// Failure discipline: handle_frame() never throws and always produces a
/// response frame — every malformed or unserviceable request becomes a
/// typed error frame (protocol::ErrorResponse), mirroring the
/// Expected-based codec API. The batched path keeps the same per-request
/// counter and error semantics as the solo path.
class Server {
 public:
  struct Options {
    /// Worker threads for request execution; 0 = hardware concurrency.
    std::size_t threads = 0;
    /// Optional trained AE-SZ model served for "AE-SZ" requests: path to a
    /// save_model() file plus the model-zoo field name that configured it.
    /// Empty = registry default (fixed-seed untrained network).
    std::string aesz_model;
    std::string aesz_field = "CESM-CLDHGH";
    /// Cross-request inference batching: up to max_batch queued AE-SZ
    /// compress requests for the same (codec, rank) coalesce into one
    /// compress_batch() call. 1 disables coalescing entirely.
    std::size_t max_batch = 8;
    /// How long the batcher holds the first request of a group open
    /// waiting for companions, in microseconds. 0 = coalesce only what is
    /// already queued (no added latency).
    std::uint64_t batch_delay_us = 1000;
    /// Stream sessions idle longer than this (no op addressed them) are
    /// reaped: their state is freed and their id answers kNoSession from
    /// then on. Reaping runs opportunistically on session/stats requests
    /// (no dedicated timer thread); reap_idle_sessions() forces a pass.
    std::uint64_t session_idle_ms = 60000;
    /// Admission cap on concurrently open stream sessions; open-stream
    /// beyond it answers kOverloaded.
    std::size_t max_sessions = 64;
    /// Per-request Chrome trace-event JSONL output path (aesz_server
    /// --trace-out). Empty = tracing off; a path that cannot be opened
    /// fails construction with a typed Error(kIoError). The explicit
    /// initializer keeps partial aggregate init ({threads, model, field})
    /// warning-free at existing call sites.
    std::string trace_out = {};
    /// Requests whose admission-to-completion wall time exceeds this many
    /// milliseconds get a warn-level log line with their per-stage
    /// breakdown (aesz_server --slow-ms). 0 = off.
    double slow_ms = 0;
  };

  // Two overloads, not a `= {}` default argument: NSDMIs of a nested
  // class are only parsed once the enclosing class is complete, so GCC
  // rejects brace-init of Options in a default argument here.
  Server();
  explicit Server(Options opt);
  ~Server();

  /// Handle one request frame and return the response frame. Thread-safe;
  /// this is the transport-free core the deterministic tests drive.
  /// Synchronous — never routed through the batcher.
  std::vector<std::uint8_t> handle_frame(std::span<const std::uint8_t> frame);

  /// Response sink for submit(). Invoked exactly once per submitted frame,
  /// from a worker or batcher thread; must not throw.
  using DoneFn = std::function<void(std::vector<std::uint8_t>)>;

  /// Async entry point: classify `frame` and either hand it to the
  /// ThreadPool or enqueue it with the batching scheduler. `done` receives
  /// the response frame. Thread-safe; callers needing ordered responses
  /// sequence completions themselves (serve() does). `conn_id` is the
  /// submitting front end's connection id, carried into the request's
  /// trace and slow-request log line (0 = no connection identity).
  void submit(std::vector<std::uint8_t> frame, DoneFn done,
              std::uint64_t conn_id = 0);

  /// Serve one connection until the peer closes (or the transport fails).
  /// Blocking; call from a dedicated thread per connection.
  void serve(Transport& transport);

  /// Snapshot of every registered metric (the same data a stats frame
  /// reports): counters and gauges as named rows, histograms as
  /// `<name>_count/_sum/_p50/_p90/_p99` summary rows, then any extra rows
  /// from registered providers.
  StatsResponse snapshot() const;

  /// The registry every layer's instruments live in. The EventServer
  /// front end creates its ev_* counters/gauges here, so one stats or
  /// metrics frame covers Server, sessions, and event loop alike.
  /// References obtained from it stay valid for the Server's lifetime.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Register a named provider of extra stats rows appended to
  /// snapshot() — a thin adapter for front ends that want rows without
  /// registry instruments. Re-registering a name replaces its provider in
  /// place; providers run in REGISTRATION order (first registered, first
  /// emitted) so stats frames stay deterministic.
  void register_stats(const std::string& name,
                      std::function<void(StatsResponse&)> fn);
  void unregister_stats(const std::string& name);

  /// Force one idle-session reap pass (normally run opportunistically on
  /// session and stats requests); returns how many sessions it freed.
  std::size_t reap_idle_sessions();

 private:
  /// One cache slot per canonical (codec, rank). `mu` serializes both the
  /// first construction and every later use of the instance (codecs keep
  /// per-compression state); the global cache_mu_ only ever guards the
  /// map itself, so an expensive model load never stalls requests for
  /// other codecs.
  struct CacheEntry {
    std::mutex mu;
    std::shared_ptr<Compressor> codec;  // null until the first build
  };

  /// Handler-facing view of a cache entry: the instance plus the mutex to
  /// hold while using it (aliased into the owning CacheEntry).
  struct CachedCodec {
    std::shared_ptr<Compressor> codec;
    std::shared_ptr<std::mutex> mu;
  };

  /// A compress request parked with the batching scheduler. `key` is the
  /// canonical "codec#rank" the group is formed on; `id`/`admit_ns` are
  /// the request's trace identity, stamped at admission so the coalesce
  /// wait is observable per request.
  struct BatchJob {
    std::vector<std::uint8_t> frame;
    std::string key;
    DoneFn done;
    std::uint64_t id = 0;
    std::uint64_t admit_ns = 0;
    std::uint64_t conn_id = 0;
  };

  /// One open stream session: a TemporalWriter plus the serialization
  /// state that keeps pipelined session ops in arrival order. `mu` guards
  /// every member; ops on DIFFERENT sessions run concurrently. Tickets:
  /// submit() assigns `next_ticket++` at frame arrival, the pool task
  /// waits until `done_ticket` reaches its ticket, runs, and increments
  /// it — so responses reflect append order even when the pool executes
  /// out of order. Deadlock-free because the pool is FIFO: a session's
  /// lowest unfinished ticket was submitted (hence dequeued) before any
  /// task that could be waiting on it.
  struct StreamSession {
    std::uint64_t id = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t next_ticket = 0;
    std::uint64_t done_ticket = 0;
    std::unique_ptr<temporal::TemporalWriter> writer;
    std::chrono::steady_clock::time_point last_used;
    bool closed = false;
  };

  Expected<CachedCodec> codec_for(const std::string& name, int rank);
  Expected<std::unique_ptr<Compressor>> build_codec(const std::string& base,
                                                    bool parallel, int rank);
  std::vector<std::uint8_t> dispatch(Op op,
                                     std::span<const std::uint8_t> frame);
  std::vector<std::uint8_t> handle_compress(
      std::span<const std::uint8_t> frame);
  std::vector<std::uint8_t> handle_decompress(
      std::span<const std::uint8_t> frame);
  std::vector<std::uint8_t> handle_list_codecs();
  std::vector<std::uint8_t> handle_stats();
  std::vector<std::uint8_t> handle_open_stream(
      std::span<const std::uint8_t> frame);
  std::vector<std::uint8_t> handle_append_timestep(
      std::span<const std::uint8_t> frame);
  std::vector<std::uint8_t> handle_read_timestep(
      std::span<const std::uint8_t> frame);
  std::vector<std::uint8_t> handle_close_stream(
      std::span<const std::uint8_t> frame);
  std::vector<std::uint8_t> handle_read_partial(
      std::span<const std::uint8_t> frame);
  std::vector<std::uint8_t> handle_deadline(
      std::span<const std::uint8_t> frame);
  std::vector<std::uint8_t> handle_metrics();
  std::shared_ptr<StreamSession> find_session(std::uint64_t id);
  std::vector<std::uint8_t> error_frame(ErrCode code, std::string message);

  void batcher_main();
  void run_batch(std::vector<BatchJob>& jobs);

  /// Observe a finished request into the latency/size histograms, write
  /// its trace events, and emit the slow-request log line.
  /// `count_request` is false for the synthetic batch-group trace, whose
  /// member requests were already counted individually.
  void finish_trace(const obs::RequestTrace& t, bool count_request = true);
  /// Recompute the point-in-time gauges (queue depths, active sessions)
  /// before a snapshot or exposition leaves the server.
  void refresh_gauges() const;

  Options opt_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceWriter> tracer_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex cache_mu_;
  std::map<std::string, std::shared_ptr<CacheEntry>> cache_;

  mutable std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::deque<BatchJob> batch_queue_;
  bool batch_stop_ = false;
  std::thread batcher_;

  mutable std::mutex extra_mu_;
  // Registration order, NOT name order — snapshot() promises providers
  // run first-registered-first.
  std::vector<std::pair<std::string, std::function<void(StatsResponse&)>>>
      extra_stats_;

  mutable std::mutex sessions_mu_;
  std::map<std::uint64_t, std::shared_ptr<StreamSession>> sessions_;
  std::atomic<std::uint64_t> next_session_id_{1};

  /// Server-layer instruments, all living in metrics_ (registered in this
  /// declaration order, which fixes the stats-frame row order). The
  /// members are references so every existing call site stays a single
  /// relaxed atomic op.
  struct Counters {
    explicit Counters(obs::MetricsRegistry& m);
    obs::Counter& requests;
    obs::Counter& compress_requests;
    obs::Counter& decompress_requests;
    obs::Counter& list_codecs_requests;
    obs::Counter& stats_requests;
    obs::Counter& metrics_requests;
    obs::Counter& error_responses;
    obs::Counter& bytes_in;
    obs::Counter& bytes_out;
    obs::Counter& codec_cache_hits;
    obs::Counter& codec_cache_misses;
    obs::Counter& ae_model_loads;
    // Batching scheduler: how many requests rode through it, how many
    // compress_batch group executions ran, and a group-size histogram.
    obs::Counter& batched_requests;
    obs::Counter& batch_executions;
    obs::Counter& batch_size_1;
    obs::Counter& batch_size_2_3;
    obs::Counter& batch_size_4_7;
    obs::Counter& batch_size_8_plus;
    // Stream sessions: per-op request counts plus lifecycle totals.
    obs::Counter& open_stream_requests;
    obs::Counter& append_timestep_requests;
    obs::Counter& read_timestep_requests;
    obs::Counter& close_stream_requests;
    obs::Counter& sessions_opened;
    obs::Counter& sessions_closed;
    obs::Counter& sessions_reaped;
    obs::Counter& session_timesteps_stored;
    // Progressive retrieval: byte-budgeted / bound-targeted prefix reads.
    obs::Counter& read_partial_requests;
    // Deadline envelopes: wrapped requests seen, and the ones answered
    // kTimeout because their budget expired while queued.
    obs::Counter& deadline_requests;
    obs::Counter& timeout_responses;
  };
  Counters counters_;

  /// Point-in-time levels, recomputed by refresh_gauges() before export.
  struct Gauges {
    explicit Gauges(obs::MetricsRegistry& m);
    obs::Gauge& batch_queue_depth;
    obs::Gauge& pool_queue_depth;
    obs::Gauge& sessions_active;
  };
  Gauges gauges_;

  /// Latency/size distributions, fed per request by finish_trace().
  struct Histograms {
    explicit Histograms(obs::MetricsRegistry& m);
    obs::Histogram& request_ns_compress;
    obs::Histogram& request_ns_decompress;
    obs::Histogram& request_ns_session;
    obs::Histogram& request_ns_admin;
    obs::Histogram& request_ns_other;
    obs::Histogram& queue_wait_ns;
    obs::Histogram& batch_wait_ns;
    obs::Histogram& predict_ns;
    obs::Histogram& quantize_ns;
    obs::Histogram& entropy_ns;
    obs::Histogram& inference_ns;
    obs::Histogram& request_bytes_in;
    obs::Histogram& response_bytes_out;
    // Fidelity actually served by read-partial: prefix bytes shipped and
    // refinement layers included — together they chart bytes-per-fidelity.
    obs::Histogram& progressive_bytes_served;
    obs::Histogram& progressive_layers_served;
    // Budget left (ms) when an enveloped request started executing; the
    // left tail approaching zero is the early warning before timeouts.
    obs::Histogram& deadline_slack_ms;
  };
  Histograms hists_;
};

}  // namespace aesz::service
