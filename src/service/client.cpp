#include "service/client.hpp"

#include <cstring>
#include <utility>

namespace aesz::service {

Expected<std::vector<std::uint8_t>> Client::round_trip_once(
    std::span<const std::uint8_t> request, Op expected) {
  if (Status s = transport_->send_frame(request); !s.ok()) return s;
  auto response = transport_->recv_frame();
  if (!response.ok()) return response.status();
  const auto op = peek_op(*response);
  if (!op.ok()) return op.status();
  if (*op == Op::kErrorResponse) {
    auto err = parse_error_response(*response);
    if (!err.ok()) return err.status();
    return Status::error(err->code, "server: " + err->message);
  }
  if (*op != expected)
    return Status::error(ErrCode::kCorruptStream,
                         std::string("expected ") + op_name(expected) +
                             ", server sent " + op_name(*op));
  return response;
}

void Client::maybe_reconnect(const Status& failure) {
  // kOverloaded means the connection delivered a well-formed answer —
  // keep it. kIoError/kTimeout mean the connection is gone or can no
  // longer pair responses with requests (a timed-out response may still
  // arrive later and would be credited to the NEXT request).
  if (failure.code != ErrCode::kIoError && failure.code != ErrCode::kTimeout)
    return;
  if (!reconnect_) return;
  auto fresh = reconnect_();
  if (!fresh.ok() || *fresh == nullptr)
    return;  // next attempt fails kIoError and the policy decides again
  owned_ = std::move(*fresh);
  transport_ = owned_.get();
  transport_->set_frame_crc(want_crc_);
}

Expected<std::vector<std::uint8_t>> Client::round_trip(
    std::span<const std::uint8_t> request, Op expected, bool idempotent) {
  std::vector<std::uint8_t> enveloped;
  if (deadline_ms_ > 0) {
    enveloped = encode_deadline_request({deadline_ms_, request});
    request = enveloped;
  }
  if (!retry_enabled_ || !idempotent) return round_trip_once(request, expected);
  return with_retry(
      retry_, [&] { return round_trip_once(request, expected); },
      [&](const Status& failure) { maybe_reconnect(failure); }, sleep_);
}

Expected<Client::CompressResult> Client::compress(const std::string& codec,
                                                  const Field& f,
                                                  const ErrorBound& eb) {
  const auto floats = f.values();
  CompressRequest req;
  req.codec = codec;
  req.eb = eb;
  req.dims = f.dims();
  req.field = {reinterpret_cast<const std::uint8_t*>(floats.data()),
               floats.size() * sizeof(float)};
  const auto frame = encode_compress_request(req);
  auto response = round_trip(frame, Op::kCompressResponse);
  if (!response.ok()) return response.status();
  auto parsed = parse_compress_response(*response);
  if (!parsed.ok()) return parsed.status();
  CompressResult out;
  out.abs_eb = parsed->abs_eb;
  out.stream.assign(parsed->stream.begin(), parsed->stream.end());
  return out;
}

std::vector<Expected<Client::CompressResult>> Client::compress_many(
    const std::string& codec, const std::vector<const Field*>& fields,
    const ErrorBound& eb) {
  std::vector<Expected<CompressResult>> out;
  out.reserve(fields.size());
  std::size_t sent = 0;
  Status send_failure;
  for (const Field* f : fields) {
    const auto floats = f->values();
    CompressRequest req;
    req.codec = codec;
    req.eb = eb;
    req.dims = f->dims();
    req.field = {reinterpret_cast<const std::uint8_t*>(floats.data()),
                 floats.size() * sizeof(float)};
    if (Status s = transport_->send_frame(encode_compress_request(req));
        !s.ok()) {
      send_failure = s;
      break;
    }
    ++sent;
  }
  for (std::size_t i = 0; i < sent; ++i) {
    auto response = transport_->recv_frame();
    if (!response.ok()) {
      // The connection is gone; everything still owed fails the same way.
      for (std::size_t j = i; j < fields.size(); ++j)
        out.push_back(response.status());
      return out;
    }
    const auto op = peek_op(*response);
    if (!op.ok()) {
      out.push_back(op.status());
      continue;
    }
    if (*op == Op::kErrorResponse) {
      auto err = parse_error_response(*response);
      out.push_back(err.ok() ? Expected<CompressResult>(Status::error(
                                   err->code, "server: " + err->message))
                             : Expected<CompressResult>(err.status()));
      continue;
    }
    auto parsed = parse_compress_response(*response);
    if (!parsed.ok()) {
      out.push_back(parsed.status());
      continue;
    }
    CompressResult r;
    r.abs_eb = parsed->abs_eb;
    r.stream.assign(parsed->stream.begin(), parsed->stream.end());
    out.push_back(std::move(r));
  }
  for (std::size_t i = sent; i < fields.size(); ++i)
    out.push_back(send_failure.ok()
                      ? Status::error(ErrCode::kIoError, "send failed")
                      : send_failure);
  return out;
}

Expected<Field> Client::decompress(std::span<const std::uint8_t> stream,
                                   const std::string& codec) {
  DecompressRequest req;
  req.codec = codec;
  req.stream = stream;
  const auto frame = encode_decompress_request(req);
  auto response = round_trip(frame, Op::kDecompressResponse);
  if (!response.ok()) return response.status();
  auto parsed = parse_decompress_response(*response);
  if (!parsed.ok()) return parsed.status();
  std::vector<float> values(parsed->dims.total());
  std::memcpy(values.data(), parsed->field.data(), parsed->field.size());
  return Field(parsed->dims, std::move(values));
}

namespace {

Expected<Client::PartialResult> finish_read_partial(
    Expected<std::vector<std::uint8_t>> response) {
  if (!response.ok()) return response.status();
  auto parsed = parse_read_partial_response(*response);
  if (!parsed.ok()) return parsed.status();
  Client::PartialResult out;
  out.abs_eb = parsed->abs_eb;
  out.layers = parsed->layers;
  out.total_layers = parsed->total_layers;
  out.stream.assign(parsed->stream.begin(), parsed->stream.end());
  return out;
}

}  // namespace

Expected<Client::PartialResult> Client::read_partial(
    std::span<const std::uint8_t> stream, std::uint64_t budget) {
  ReadPartialRequest req;
  req.stream = stream;
  req.mode = PartialMode::kByteBudget;
  req.budget = budget;
  const auto frame = encode_read_partial_request(req);
  return finish_read_partial(round_trip(frame, Op::kReadPartialResponse));
}

Expected<Client::PartialResult> Client::read_partial(
    std::span<const std::uint8_t> stream, const ErrorBound& target) {
  ReadPartialRequest req;
  req.stream = stream;
  req.mode = PartialMode::kTargetBound;
  req.bound = target;
  const auto frame = encode_read_partial_request(req);
  return finish_read_partial(round_trip(frame, Op::kReadPartialResponse));
}

Expected<Client::Stream> Client::open_stream(const std::string& codec,
                                             const Dims& dims,
                                             const ErrorBound& eb,
                                             std::uint64_t gop) {
  OpenStreamRequest req;
  req.codec = codec;
  req.eb = eb;
  req.dims = dims;
  req.gop = gop;
  const auto frame = encode_open_stream_request(req);
  auto response = round_trip(frame, Op::kOpenStreamResponse);
  if (!response.ok()) return response.status();
  auto parsed = parse_open_stream_response(*response);
  if (!parsed.ok()) return parsed.status();
  return Stream(this, parsed->session_id);
}

Client::Stream::Stream(Stream&& other) noexcept
    : client_(other.client_), id_(other.id_) {
  other.client_ = nullptr;
}

Client::Stream& Client::Stream::operator=(Stream&& other) noexcept {
  if (this != &other) {
    if (client_) (void)close();  // best-effort, artifact discarded
    client_ = other.client_;
    id_ = other.id_;
    other.client_ = nullptr;
  }
  return *this;
}

Client::Stream::~Stream() {
  if (!client_) return;
  // Best-effort: free the server-side session now instead of waiting for
  // the idle reaper. Any failure (connection gone, session already
  // reaped) is fine — the destructor must not throw.
  (void)close();
}

Expected<Client::Stream::AppendInfo> Client::Stream::append(const Field& f) {
  if (!client_)
    return Status::error(ErrCode::kNoSession, "stream handle is closed");
  const auto floats = f.values();
  AppendTimestepRequest req;
  req.session_id = id_;
  req.field = {reinterpret_cast<const std::uint8_t*>(floats.data()),
               floats.size() * sizeof(float)};
  const auto frame = encode_append_timestep_request(req);
  // NOT idempotent: replaying an append whose response was lost would
  // store the timestep twice.
  auto response = client_->round_trip(frame, Op::kAppendTimestepResponse,
                                      /*idempotent=*/false);
  if (!response.ok()) return response.status();
  auto parsed = parse_append_timestep_response(*response);
  if (!parsed.ok()) return parsed.status();
  return AppendInfo{parsed->timestep, parsed->residual, parsed->abs_eb,
                    parsed->stored_bytes};
}

Expected<Field> Client::Stream::read_timestep(std::uint64_t t) {
  if (!client_)
    return Status::error(ErrCode::kNoSession, "stream handle is closed");
  ReadTimestepRequest req;
  req.session_id = id_;
  req.timestep = t;
  const auto frame = encode_read_timestep_request(req);
  auto response = client_->round_trip(frame, Op::kReadTimestepResponse);
  if (!response.ok()) return response.status();
  auto parsed = parse_read_timestep_response(*response);
  if (!parsed.ok()) return parsed.status();
  std::vector<float> values(parsed->dims.total());
  std::memcpy(values.data(), parsed->field.data(), parsed->field.size());
  return Field(parsed->dims, std::move(values));
}

Expected<std::vector<std::uint8_t>> Client::Stream::close() {
  if (!client_)
    return Status::error(ErrCode::kNoSession, "stream handle is closed");
  CloseStreamRequest req;
  req.session_id = id_;
  const auto frame = encode_close_stream_request(req);
  // NOT idempotent: a successful close frees the session, so a replay
  // would answer kNoSession and mask the artifact already delivered.
  auto response = client_->round_trip(frame, Op::kCloseStreamResponse,
                                      /*idempotent=*/false);
  if (!response.ok()) {
    // kUnsupported = artifact over the frame cap: the server kept the
    // session alive, so keep the handle usable too. Anything else (the
    // session is gone, the connection died) makes the handle inert.
    if (response.status().code != ErrCode::kUnsupported) client_ = nullptr;
    return response.status();
  }
  client_ = nullptr;
  auto parsed = parse_close_stream_response(*response);
  if (!parsed.ok()) return parsed.status();
  return std::vector<std::uint8_t>(parsed->artifact.begin(),
                                   parsed->artifact.end());
}

Expected<std::vector<CodecSummary>> Client::list_codecs() {
  const auto frame = encode_list_codecs_request();
  auto response = round_trip(frame, Op::kListCodecsResponse);
  if (!response.ok()) return response.status();
  return parse_list_codecs_response(*response);
}

Expected<StatsResponse> Client::stats() {
  const auto frame = encode_stats_request();
  auto response = round_trip(frame, Op::kStatsResponse);
  if (!response.ok()) return response.status();
  return parse_stats_response(*response);
}

Expected<std::string> Client::metrics() {
  const auto frame = encode_metrics_request();
  auto response = round_trip(frame, Op::kMetricsResponse);
  if (!response.ok()) return response.status();
  auto parsed = parse_metrics_response(*response);
  if (!parsed.ok()) return parsed.status();
  return parsed->text_str();
}

}  // namespace aesz::service
