#include "service/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include "service/protocol.hpp"
#include "util/crc32c.hpp"

namespace aesz::service {

namespace detail {

class ByteChannel {
 public:
  /// Soft capacity mirroring a kernel socket buffer: write() blocks while
  /// the buffer is at/over this, so a peer that never reads bounds the
  /// channel at cap + one frame instead of growing it without limit.
  static constexpr std::size_t kMaxBuffered = std::size_t{64} << 20;

  void write(std::span<const std::uint8_t> bytes) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock,
               [&] { return closed_ || bytes_.size() < kMaxBuffered; });
      if (closed_) return;  // peer is gone; drop silently like a broken pipe
      bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
    }
    cv_.notify_all();
  }

  /// Block until `n` bytes are available and copy them out. Returns false
  /// when the channel closes with fewer than `n` bytes left (EOF).
  bool read_exact(std::uint8_t* dst, std::size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || bytes_.size() >= n; });
    if (bytes_.size() < n) return false;
    // Bulk copy + range erase (deque iterators are random-access): a
    // per-byte front/pop_front loop would hold the lock for millions of
    // operations on multi-MB frames and dominate pipe latency.
    const auto first = bytes_.begin();
    std::copy(first, first + static_cast<std::ptrdiff_t>(n), dst);
    bytes_.erase(first, first + static_cast<std::ptrdiff_t>(n));
    cv_.notify_all();  // room freed: unblock a backpressured writer
    return true;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::uint8_t> bytes_;
  bool closed_ = false;
};

}  // namespace detail

// ---------------------------------------------------------------- pipe ----

PipeTransport::PipeTransport(std::shared_ptr<detail::ByteChannel> in,
                             std::shared_ptr<detail::ByteChannel> out)
    : in_(std::move(in)), out_(std::move(out)) {}

std::pair<std::unique_ptr<PipeTransport>, std::unique_ptr<PipeTransport>>
PipeTransport::make_pair() {
  auto a_to_b = std::make_shared<detail::ByteChannel>();
  auto b_to_a = std::make_shared<detail::ByteChannel>();
  std::unique_ptr<PipeTransport> a(new PipeTransport(b_to_a, a_to_b));
  std::unique_ptr<PipeTransport> b(new PipeTransport(a_to_b, b_to_a));
  return {std::move(a), std::move(b)};
}

Status PipeTransport::send_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() > kMaxFrameBytes)
    return Status::error(ErrCode::kInvalidArgument, "frame exceeds limit");
  if (out_->closed())
    return Status::error(ErrCode::kIoError, "pipe closed");
  const bool with_crc = crc_.load();
  std::uint32_t len = static_cast<std::uint32_t>(frame.size());
  if (with_crc) len |= kFrameCrcFlag;
  std::uint8_t prefix[4];
  std::memcpy(prefix, &len, 4);
  out_->write({prefix, 4});
  out_->write(frame);
  if (with_crc) {
    const std::uint32_t crc = util::crc32c(frame);
    std::uint8_t trailer[kFrameCrcBytes];
    std::memcpy(trailer, &crc, kFrameCrcBytes);
    out_->write({trailer, kFrameCrcBytes});
  }
  return {};
}

void PipeTransport::send_raw(std::span<const std::uint8_t> bytes) {
  out_->write(bytes);
}

Expected<std::vector<std::uint8_t>> PipeTransport::recv_frame() {
  std::uint8_t prefix[4];
  if (!in_->read_exact(prefix, 4))
    return Status::error(ErrCode::kIoError, "pipe closed");
  std::uint32_t len = 0;
  std::memcpy(&len, prefix, 4);
  const bool has_crc = (len & kFrameCrcFlag) != 0;
  len &= kFrameLenMask;
  // Validated BEFORE the allocation the length would size (the CRC flag is
  // masked off first so a checksummed max-size frame is not misread as an
  // oversize one).
  if (len > kMaxFrameBytes)
    return Status::error(ErrCode::kCorruptStream,
                         "declared frame length exceeds limit");
  std::vector<std::uint8_t> frame(len);
  if (len > 0 && !in_->read_exact(frame.data(), len))
    return Status::error(ErrCode::kCorruptStream,
                         "pipe closed mid-frame");
  if (has_crc) {
    std::uint8_t trailer[kFrameCrcBytes];
    if (!in_->read_exact(trailer, kFrameCrcBytes))
      return Status::error(ErrCode::kCorruptStream,
                           "pipe closed mid-frame");
    std::uint32_t want = 0;
    std::memcpy(&want, trailer, kFrameCrcBytes);
    if (util::crc32c(frame) != want)
      return Status::error(ErrCode::kChecksumMismatch,
                           "frame checksum mismatch");
    crc_.store(true);  // peer checksums: echo trailers on our sends too
  }
  return frame;
}

void PipeTransport::shutdown() {
  in_->close();
  out_->close();
}

// ----------------------------------------------------------------- tcp ----

namespace {

Status send_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::error(ErrCode::kIoError,
                           std::string("send: ") + std::strerror(errno));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return {};
}

enum class RecvResult { kOk, kClosed, kTimeout };

/// Read exactly n bytes. `timeout_ms >= 0` bounds each wait for the socket
/// to become readable (poll before recv), so a wedged peer yields kTimeout
/// instead of blocking forever; kClosed covers EOF and errors.
RecvResult recv_all(int fd, std::uint8_t* data, std::size_t n,
                    int timeout_ms) {
  while (n > 0) {
    if (timeout_ms >= 0) {
      pollfd pfd{fd, POLLIN, 0};
      const int p = ::poll(&pfd, 1, timeout_ms);
      if (p < 0) {
        if (errno == EINTR) continue;
        return RecvResult::kClosed;
      }
      if (p == 0) return RecvResult::kTimeout;
    }
    const ssize_t r = ::recv(fd, data, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return RecvResult::kClosed;
    }
    if (r == 0) return RecvResult::kClosed;  // EOF
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return RecvResult::kOk;
}

}  // namespace

TcpTransport::TcpTransport(int fd) : fd_(fd) {}

TcpTransport::~TcpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Expected<std::unique_ptr<TcpTransport>> TcpTransport::connect(
    const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::error(ErrCode::kIoError,
                         std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::error(ErrCode::kInvalidArgument,
                         "bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::error(ErrCode::kIoError,
                         std::string("connect: ") + std::strerror(err));
  }
  return std::make_unique<TcpTransport>(fd);
}

Status TcpTransport::send_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() > kMaxFrameBytes)
    return Status::error(ErrCode::kInvalidArgument, "frame exceeds limit");
  if (fd_ < 0) return Status::error(ErrCode::kIoError, "socket closed");
  const bool with_crc = crc_.load();
  std::uint32_t len = static_cast<std::uint32_t>(frame.size());
  if (with_crc) len |= kFrameCrcFlag;
  std::uint8_t prefix[4];
  std::memcpy(prefix, &len, 4);
  if (Status s = send_all(fd_, prefix, 4); !s.ok()) return s;
  if (Status s = send_all(fd_, frame.data(), frame.size()); !s.ok()) return s;
  if (with_crc) {
    const std::uint32_t crc = util::crc32c(frame);
    std::uint8_t trailer[kFrameCrcBytes];
    std::memcpy(trailer, &crc, kFrameCrcBytes);
    return send_all(fd_, trailer, kFrameCrcBytes);
  }
  return {};
}

Status TcpTransport::send_raw(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) return Status::error(ErrCode::kIoError, "socket closed");
  return send_all(fd_, bytes.data(), bytes.size());
}

Expected<std::vector<std::uint8_t>> TcpTransport::recv_frame() {
  if (fd_ < 0) return Status::error(ErrCode::kIoError, "socket closed");
  const int timeout_ms = recv_timeout_ms_.load();
  const auto timeout =
      Status::error(ErrCode::kTimeout, "recv timed out waiting for peer");
  std::uint8_t prefix[4];
  switch (recv_all(fd_, prefix, 4, timeout_ms)) {
    case RecvResult::kOk: break;
    case RecvResult::kTimeout: return timeout;
    case RecvResult::kClosed:
      return Status::error(ErrCode::kIoError, "connection closed");
  }
  std::uint32_t len = 0;
  std::memcpy(&len, prefix, 4);
  const bool has_crc = (len & kFrameCrcFlag) != 0;
  len &= kFrameLenMask;
  if (len > kMaxFrameBytes)
    return Status::error(ErrCode::kCorruptStream,
                         "declared frame length exceeds limit");
  std::vector<std::uint8_t> frame(len);
  if (len > 0) {
    switch (recv_all(fd_, frame.data(), len, timeout_ms)) {
      case RecvResult::kOk: break;
      case RecvResult::kTimeout: return timeout;
      case RecvResult::kClosed:
        return Status::error(ErrCode::kCorruptStream,
                             "connection closed mid-frame");
    }
  }
  if (has_crc) {
    std::uint8_t trailer[kFrameCrcBytes];
    switch (recv_all(fd_, trailer, kFrameCrcBytes, timeout_ms)) {
      case RecvResult::kOk: break;
      case RecvResult::kTimeout: return timeout;
      case RecvResult::kClosed:
        return Status::error(ErrCode::kCorruptStream,
                             "connection closed mid-frame");
    }
    std::uint32_t want = 0;
    std::memcpy(&want, trailer, kFrameCrcBytes);
    if (util::crc32c(frame) != want)
      return Status::error(ErrCode::kChecksumMismatch,
                           "frame checksum mismatch");
    crc_.store(true);  // peer checksums: echo trailers on our sends too
  }
  return frame;
}

void TcpTransport::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

// ------------------------------------------------------------- listener ----

Expected<std::unique_ptr<TcpListener>> TcpListener::bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::error(ErrCode::kIoError,
                         std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::error(ErrCode::kIoError,
                         std::string("bind/listen: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::error(ErrCode::kIoError,
                         std::string("getsockname: ") + std::strerror(err));
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(bound.sin_port)));
}

TcpListener::~TcpListener() { close(); }

Expected<std::unique_ptr<TcpTransport>> TcpListener::accept() {
  if (fd_ < 0) return Status::error(ErrCode::kIoError, "listener closed");
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return std::make_unique<TcpTransport>(conn);
    if (errno == EINTR) continue;
    return Status::error(ErrCode::kIoError,
                         std::string("accept: ") + std::strerror(errno));
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    // shutdown() unblocks a concurrent accept() before the fd goes away.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace aesz::service
