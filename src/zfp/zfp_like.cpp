#include "zfp/zfp_like.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "sz/common.hpp"
#include "util/bitstream.hpp"
#include "util/bytestream.hpp"

namespace aesz {
namespace {

constexpr std::uint32_t kMagic = ZFPLike::kStreamMagic;
constexpr int kIntPrec = 32;                  // bit planes per value (float32)

/// zfp's forward lifting step on a 4-vector with stride s. Arithmetic is
/// done in 64 bits and stored back into 32-bit lanes; the transform is
/// range-expanding by < 2x, so 30-bit inputs stay representable.
void fwd_lift(std::int32_t* p, std::size_t s) {
  std::int64_t x = p[0], y = p[s], z = p[2 * s], w = p[3 * s];
  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;
  p[0] = static_cast<std::int32_t>(x);
  p[s] = static_cast<std::int32_t>(y);
  p[2 * s] = static_cast<std::int32_t>(z);
  p[3 * s] = static_cast<std::int32_t>(w);
}

/// Exact inverse of fwd_lift.
void inv_lift(std::int32_t* p, std::size_t s) {
  std::int64_t x = p[0], y = p[s], z = p[2 * s], w = p[3 * s];
  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
  p[0] = static_cast<std::int32_t>(x);
  p[s] = static_cast<std::int32_t>(y);
  p[2 * s] = static_cast<std::int32_t>(z);
  p[3 * s] = static_cast<std::int32_t>(w);
}

/// Sequency-order permutation for a 4^rank block: coefficients sorted by
/// total degree i+j+k (low frequencies first), deterministic tie-break.
/// perm[slot] = source index within the block.
std::vector<std::uint16_t> sequency_perm(int rank) {
  const std::size_t n = rank == 1 ? 4 : rank == 2 ? 16 : 64;
  std::vector<std::uint16_t> perm(n);
  for (std::size_t t = 0; t < n; ++t) perm[t] = static_cast<std::uint16_t>(t);
  auto key = [rank](std::uint16_t t) {
    const int i = t & 3;
    const int j = rank >= 2 ? (t >> 2) & 3 : 0;
    const int k = rank >= 3 ? (t >> 4) & 3 : 0;
    return std::array<int, 3>{i + j + k, i * i + j * j + k * k, t};
  };
  std::sort(perm.begin(), perm.end(),
            [&](std::uint16_t a, std::uint16_t b) { return key(a) < key(b); });
  return perm;
}

std::uint32_t to_negabinary(std::int32_t v) {
  constexpr std::uint32_t mask = 0xAAAAAAAAu;
  return (static_cast<std::uint32_t>(v) + mask) ^ mask;
}

std::int32_t from_negabinary(std::uint32_t u) {
  constexpr std::uint32_t mask = 0xAAAAAAAAu;
  return static_cast<std::int32_t>((u ^ mask) - mask);
}

// BitWriter::put_bits / BitReader::get_bits handle the full 64-bit range
// in one call, so no chunked helpers are needed here anymore.

struct BlockGeom {
  int rank;
  std::size_t nvals;  // 4^rank
  std::size_t nb[3];  // blocks per axis
};

BlockGeom geom(const Dims& d) {
  BlockGeom g{};
  g.rank = d.rank;
  g.nvals = d.rank == 1 ? 4u : d.rank == 2 ? 16u : 64u;
  for (int i = 0; i < 3; ++i)
    g.nb[i] = i < d.rank ? num_blocks(d[i], 4) : 1;
  return g;
}

/// Gather one 4^rank block with edge replication for partial blocks.
void gather(const Field& f, const BlockGeom& g, std::size_t B0,
            std::size_t B1, std::size_t B2, float* blk) {
  const Dims& d = f.dims();
  for (std::size_t a = 0; a < 4; ++a) {
    const std::size_t i = std::min(B0 * 4 + a, d[0] - 1);
    if (g.rank == 1) {
      blk[a] = f.at(i);
      continue;
    }
    for (std::size_t b = 0; b < 4; ++b) {
      const std::size_t j = std::min(B1 * 4 + b, d[1] - 1);
      if (g.rank == 2) {
        blk[b * 4 + a] = f.at2(i, j);
        continue;
      }
      for (std::size_t c = 0; c < 4; ++c) {
        const std::size_t k = std::min(B2 * 4 + c, d[2] - 1);
        // Block-local layout: t = a + 4*b + 16*c with `a` the fastest axis.
        blk[c * 16 + b * 4 + a] = f.at3(i, j, k);
      }
    }
  }
}

/// Scatter a decoded block back, skipping padded lanes.
void scatter(Field& f, const BlockGeom& g, std::size_t B0, std::size_t B1,
             std::size_t B2, const float* blk) {
  const Dims& d = f.dims();
  for (std::size_t a = 0; a < 4; ++a) {
    const std::size_t i = B0 * 4 + a;
    if (i >= d[0]) break;
    if (g.rank == 1) {
      f.at(i) = blk[a];
      continue;
    }
    for (std::size_t b = 0; b < 4; ++b) {
      const std::size_t j = B1 * 4 + b;
      if (j >= d[1]) break;
      if (g.rank == 2) {
        f.at2(i, j) = blk[b * 4 + a];
        continue;
      }
      for (std::size_t c = 0; c < 4; ++c) {
        const std::size_t k = B2 * 4 + c;
        if (k >= d[2]) break;
        f.at3(i, j, k) = blk[c * 16 + b * 4 + a];
      }
    }
  }
}

/// Forward transform: lift along each axis. Block layout puts axis-0 of the
/// *field's innermost loop* at stride 1; the order only needs to mirror the
/// inverse.
void fwd_xform(std::int32_t* q, int rank) {
  if (rank == 1) {
    fwd_lift(q, 1);
    return;
  }
  if (rank == 2) {
    for (std::size_t y = 0; y < 4; ++y) fwd_lift(q + 4 * y, 1);
    for (std::size_t x = 0; x < 4; ++x) fwd_lift(q + x, 4);
    return;
  }
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y) fwd_lift(q + 16 * z + 4 * y, 1);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t x = 0; x < 4; ++x) fwd_lift(q + 16 * z + x, 4);
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x) fwd_lift(q + 4 * y + x, 16);
}

void inv_xform(std::int32_t* q, int rank) {
  if (rank == 1) {
    inv_lift(q, 1);
    return;
  }
  if (rank == 2) {
    for (std::size_t x = 0; x < 4; ++x) inv_lift(q + x, 4);
    for (std::size_t y = 0; y < 4; ++y) inv_lift(q + 4 * y, 1);
    return;
  }
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x) inv_lift(q + 4 * y + x, 16);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t x = 0; x < 4; ++x) inv_lift(q + 16 * z + x, 4);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y) inv_lift(q + 16 * z + 4 * y, 1);
}

int exponent_of(float maxabs) {
  int e = 0;
  std::frexp(maxabs, &e);
  return e;  // maxabs in [2^(e-1), 2^e)
}

/// Per-block precision in fixed-accuracy mode (zfp's heuristic: enough
/// planes that the dropped tail is below the tolerance even after the
/// transform's error amplification of 2 per dimension pass).
int block_maxprec(int emax, int minexp, int rank) {
  return std::clamp(emax - minexp + 2 * (rank + 1), 0, kIntPrec);
}

/// Encode one block's bit planes with zfp's group-testing scheme.
/// `budget` counts remaining writable bits for fixed-rate mode (huge value
/// for fixed accuracy). Returns bits consumed.
void encode_planes(BitWriter& w, const std::uint32_t* u, std::size_t size,
                   int kmin, std::size_t& budget) {
  std::size_t n = 0;
  for (int k = kIntPrec - 1; k >= kmin; --k) {
    // Extract plane k: bit i of x = plane bit of value i.
    std::uint64_t x = 0;
    for (std::size_t i = 0; i < size; ++i)
      x |= static_cast<std::uint64_t>((u[i] >> k) & 1u) << i;
    // Verbatim bits for the already-scanned prefix.
    const std::size_t m = std::min(n, budget);
    budget -= m;
    w.put_bits(x, static_cast<int>(m));
    x = m >= 64 ? 0 : x >> m;  // m can hit 64 on full 3-D blocks
    if (m < n) return;  // budget exhausted mid-prefix
    // Group-test + unary run-length for the remainder.
    while (n < size && budget > 0) {
      --budget;
      const bool any = x != 0;
      w.put_bit(any);
      if (!any) break;
      while (n < size - 1 && budget > 0) {
        --budget;
        const bool bit = (x & 1u) != 0;
        w.put_bit(bit);
        x >>= 1;
        ++n;
        if (bit) goto next_group;
      }
      if (n == size - 1 && budget > 0) {
        // Last position: its 1 is implied by the group test.
        x >>= 1;
        ++n;
      }
    next_group:;
      if (budget == 0) return;
    }
    if (budget == 0) return;
  }
}

void decode_planes(BitReader& r, std::uint32_t* u, std::size_t size, int kmin,
                   std::size_t& budget) {
  std::size_t n = 0;
  std::fill(u, u + size, 0u);
  for (int k = kIntPrec - 1; k >= kmin; --k) {
    const std::size_t m = std::min(n, budget);
    budget -= m;
    std::uint64_t x = r.get_bits(static_cast<int>(m));
    if (m < n) {
      for (std::size_t i = 0; x; ++i, x >>= 1)
        u[i] |= static_cast<std::uint32_t>(x & 1u) << k;
      return;
    }
    while (n < size && budget > 0) {
      --budget;
      if (!r.get_bit()) break;
      while (n < size - 1 && budget > 0) {
        --budget;
        if (r.get_bit()) break;
        ++n;
      }
      // Either we read the significant 1 at position n, or we ran out of
      // budget, or n == size-1 (implied 1).
      if (budget == 0 && n < size - 1) break;
      x |= std::uint64_t{1} << n;
      ++n;
    }
    for (std::size_t i = 0; x; ++i, x >>= 1)
      u[i] |= static_cast<std::uint32_t>(x & 1u) << k;
    if (budget == 0) return;
  }
}

}  // namespace

std::vector<std::uint8_t> ZFPLike::compress(const Field& f,
                                            const ErrorBound& eb) {
  const Dims& d = f.dims();
  const bool fixed_rate = opt_.rate_bits_per_value > 0.0;
  const double tol =
      fixed_rate ? 0.0 : sz::resolve_abs_eb(f, eb, "ZFP fixed-accuracy");

  int minexp = 0;
  if (!fixed_rate) {
    // floor(log2(tol)): tol = m * 2^e with m in [0.5, 1) -> floor = e - 1.
    int e = 0;
    std::frexp(tol, &e);
    minexp = e - 1;
  }

  const BlockGeom g = geom(d);
  ByteWriter header;
  sz::write_header(header, kMagic, d, eb, tol);
  header.put(static_cast<std::uint8_t>(fixed_rate ? 1 : 0));
  header.put(static_cast<std::int32_t>(minexp));
  const std::size_t rate_budget =
      fixed_rate ? static_cast<std::size_t>(opt_.rate_bits_per_value *
                                            static_cast<double>(g.nvals))
                 : 0;
  // A block spends 1 (nonzero flag) + 10 (emax) bits before any plane bit.
  AESZ_CHECK_ARG(!fixed_rate || rate_budget >= 11,
                 "fixed rate too low (< 11 bits per block)");
  header.put_varint(rate_budget);

  const auto perm = sequency_perm(g.rank);
  BitWriter bits;
  float blk[64];
  std::int32_t q[64];
  std::uint32_t u[64];

  for (std::size_t B0 = 0; B0 < g.nb[0]; ++B0) {
    for (std::size_t B1 = 0; B1 < g.nb[1]; ++B1) {
      for (std::size_t B2 = 0; B2 < g.nb[2]; ++B2) {
        gather(f, g, B0, B1, B2, blk);
        float maxabs = 0.0f;
        for (std::size_t i = 0; i < g.nvals; ++i)
          maxabs = std::max(maxabs, std::abs(blk[i]));
        const std::size_t block_start = bits.bit_count();
        std::size_t budget =
            fixed_rate ? rate_budget : std::size_t{1} << 60;
        const int emax = exponent_of(maxabs);
        const int maxprec = fixed_rate
                                ? kIntPrec
                                : block_maxprec(emax, minexp, g.rank);
        if (maxabs == 0.0f || maxprec == 0) {
          if (budget > 0) {
            bits.put_bit(false);  // empty block
            --budget;
          }
        } else {
          bits.put_bit(true);
          budget -= std::min<std::size_t>(budget, 1);
          bits.put(static_cast<std::uint64_t>(emax + 300), 10);
          budget -= std::min<std::size_t>(budget, 10);
          // Fixed point: |x| < 2^emax => |q| <= 2^30.
          for (std::size_t i = 0; i < g.nvals; ++i)
            q[i] = static_cast<std::int32_t>(
                std::ldexp(static_cast<double>(blk[i]),
                           kIntPrec - 2 - emax));
          fwd_xform(q, g.rank);
          for (std::size_t t = 0; t < g.nvals; ++t)
            u[t] = to_negabinary(q[perm[t]]);
          encode_planes(bits, u, g.nvals, kIntPrec - maxprec, budget);
        }
        if (fixed_rate) {
          // Pad the block to exactly rate_budget bits (random access).
          const std::size_t used = bits.bit_count() - block_start;
          for (std::size_t i = used; i < rate_budget; ++i)
            bits.put_bit(false);
        }
      }
    }
  }

  header.put_blob(bits.finish());
  return sz::seal_stream(header.take());
}

Field ZFPLike::decompress_impl(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const sz::StreamHeader h = sz::read_header_or_throw(r, kMagic);
  const Dims d = h.dims;
  const bool fixed_rate = r.get<std::uint8_t>() != 0;
  const int minexp = r.get<std::int32_t>();
  const std::size_t rate_budget = r.get_varint();
  // A block never legitimately spends more than flag + emax + all 32 planes
  // verbatim; a larger budget is corruption and would stall the pad-skip
  // loop below for ~2^64 iterations.
  AESZ_CHECK_STREAM(!fixed_rate || (rate_budget >= 11 &&
                                    rate_budget <= (kIntPrec + 2) * 64 + 11),
                    "bad fixed-rate budget");
  const auto payload = r.get_blob();
  BitReader bits(payload);

  const BlockGeom g = geom(d);
  const auto perm = sequency_perm(g.rank);
  Field out(d);
  float blk[64];
  std::int32_t q[64];
  std::uint32_t u[64];

  for (std::size_t B0 = 0; B0 < g.nb[0]; ++B0) {
    for (std::size_t B1 = 0; B1 < g.nb[1]; ++B1) {
      for (std::size_t B2 = 0; B2 < g.nb[2]; ++B2) {
        const std::size_t block_start = bits.bit_pos();
        std::size_t budget =
            fixed_rate ? rate_budget : std::size_t{1} << 60;
        bool nonzero = false;
        if (budget > 0) {
          nonzero = bits.get_bit() != 0;
          --budget;
        }
        if (!nonzero) {
          std::fill(blk, blk + g.nvals, 0.0f);
        } else {
          const int emax = static_cast<int>(bits.get(10)) - 300;
          budget -= std::min<std::size_t>(budget, 10);
          const int maxprec = fixed_rate
                                  ? kIntPrec
                                  : block_maxprec(emax, minexp, g.rank);
          decode_planes(bits, u, g.nvals, kIntPrec - maxprec, budget);
          for (std::size_t t = 0; t < g.nvals; ++t)
            q[perm[t]] = from_negabinary(u[t]);
          inv_xform(q, g.rank);
          for (std::size_t i = 0; i < g.nvals; ++i)
            blk[i] = static_cast<float>(std::ldexp(
                static_cast<double>(q[i]), emax + 2 - kIntPrec));
        }
        if (fixed_rate) {
          // Skip padding to the fixed block boundary.
          while (bits.bit_pos() - block_start < rate_budget) bits.get_bit();
        }
        scatter(out, g, B0, B1, B2, blk);
      }
    }
  }
  // Fixed-accuracy streams are written in full; any zero-filled read past
  // the payload means the bit stream was truncated mid-block. (Fixed-rate
  // keeps the zero-fill tolerance: prefixes of a fixed-rate stream decode
  // to progressively coarser fields by design.)
  AESZ_CHECK_STREAM(fixed_rate || !bits.overran(),
                    "bit stream truncated mid-block");
  return out;
}

}  // namespace aesz
