#pragma once

#include "predictors/compressor.hpp"

namespace aesz {

/// ZFP-like transform compressor (Lindstrom, TVCG 2014; the zfp 0.5.x float
/// codec): the field is partitioned into 4^d blocks; each block is aligned
/// to a common exponent and converted to 30-bit fixed point, decorrelated by
/// zfp's non-orthogonal lifted transform along each axis, reordered by total
/// sequency, mapped to negabinary, and coded bit plane by bit plane with
/// group testing (verbatim bits for the already-scanned prefix, unary
/// run-length for the rest).
///
/// Two modes:
///  - fixed accuracy (used for the paper's error-bound interface): bit
///    planes below the tolerance-derived cutoff are dropped; the absolute
///    error tolerance is respected.
///  - fixed rate: each block consumes exactly `rate_bits_per_value * 4^d`
///    bits (random-access layout), used by the fixed-rate comparisons.
class ZFPLike final : public Compressor {
 public:
  static constexpr std::uint32_t kStreamMagic = 0x5A465031;  // "ZFP1"

  struct Options {
    /// 0 = fixed-accuracy driven by the compress() error bound; >0 = fixed
    /// rate in bits per value (the bound then ignored).
    double rate_bits_per_value = 0.0;
  };

  ZFPLike() = default;
  explicit ZFPLike(Options opt) : opt_(opt) {}

  std::string name() const override { return "ZFP"; }
  using Compressor::compress;
  std::vector<std::uint8_t> compress(const Field& f,
                                     const ErrorBound& eb) override;
  bool error_bounded() const override {
    return opt_.rate_bits_per_value == 0.0;
  }

 protected:
  Field decompress_impl(std::span<const std::uint8_t> stream) override;

 private:
  Options opt_;
};

}  // namespace aesz
