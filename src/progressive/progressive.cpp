#include "progressive/progressive.hpp"

#include <cmath>
#include <utility>

#include "predictors/registry.hpp"
#include "util/error.hpp"

namespace aesz::progressive {

namespace {

/// Build the inner codec through the caller's factory or the registry
/// (the temporal subsystem's make_inner contract). `require_rank` makes
/// an unsupported rank a hard error; the ProgressiveCompressor ctor
/// passes false because registry create() must succeed for every
/// (name, rank) — callers gate on supports_rank() afterwards.
Expected<std::unique_ptr<Compressor>> make_inner(const CodecFactory& factory,
                                                 const std::string& name,
                                                 int rank,
                                                 bool require_rank = true) {
  std::unique_ptr<Compressor> codec;
  if (factory) {
    codec = factory(name, rank);
    if (!codec)
      return Status::error(ErrCode::kUnsupported,
                           "codec factory returned null for '" + name + "'");
  } else {
    auto built = CodecRegistry::instance().create(name, rank);
    if (!built.ok()) return built.status();
    codec = std::move(*built);
  }
  if (require_rank && !codec->supports_rank(rank))
    return Status::error(ErrCode::kUnsupported,
                         "codec '" + name + "' does not support rank " +
                             std::to_string(rank));
  return codec;
}

std::unique_ptr<Compressor> make_inner_or_throw(const CodecFactory& factory,
                                                const std::string& name,
                                                int rank,
                                                bool require_rank = true) {
  auto codec = make_inner(factory, name, rank, require_rank);
  if (!codec.ok()) throw Error(codec.status().code, codec.status().str());
  return std::move(*codec);
}

}  // namespace

ProgressiveWriter::ProgressiveWriter(Options opt) : opt_(std::move(opt)) {
  AESZ_CHECK_ARG(!opt_.inner.empty() && opt_.inner.size() <= kMaxInnerName,
                 "bad inner codec name length");
  AESZ_CHECK_ARG(opt_.layers >= 1 && opt_.layers <= kMaxLayers,
                 "layer count out of range");
  AESZ_CHECK_ARG(std::isfinite(opt_.factor) && opt_.factor > 1.0,
                 "bound factor must be > 1");
}

std::vector<std::uint8_t> ProgressiveWriter::encode(const Field& f,
                                                    const ErrorBound& eb) {
  AESZ_CHECK_ARG(eb.usable(), "unusable error bound");
  auto codec = make_inner_or_throw(opt_.factory, opt_.inner, f.dims().rank);
  if (!codec->error_bounded())
    throw Error(ErrCode::kUnsupported,
                "progressive layering needs an error-bounded inner codec; '" +
                    opt_.inner + "' is not");
  const double value_range = f.value_range();
  const double abs_eb = eb.absolute(value_range);

  // The ladder: layer i guarantees abs_eb * factor^(L-1-i); the last rung
  // is the exact non-progressive tolerance. Layer 0 codes the field
  // itself at the loosest rung; each refinement codes the residual
  // against the DECODED reconstruction so far, so after layer i the
  // per-element error is |residual_i - recon_residual_i| <= rung i —
  // regardless of the error the previous layers left behind.
  std::vector<LayerInfo> table(opt_.layers);
  std::vector<std::vector<std::uint8_t>> payloads(opt_.layers);
  Field recon;
  for (std::size_t i = 0; i < opt_.layers; ++i) {
    const double rung =
        abs_eb * std::pow(opt_.factor,
                          static_cast<double>(opt_.layers - 1 - i));
    if (i == 0) {
      payloads[i] = codec->compress(f, ErrorBound::Abs(rung));
    } else {
      Field residual(f.dims());
      auto tv = residual.values();
      auto fv = f.values();
      auto rv = recon.values();
      for (std::size_t j = 0; j < tv.size(); ++j) tv[j] = fv[j] - rv[j];
      payloads[i] = codec->compress(residual, ErrorBound::Abs(rung));
    }
    // Advance the reference with the decoded layer, never the original —
    // the encoder's chain must be bit-identical to any reader's.
    auto dec = codec->decompress(payloads[i]);
    if (!dec.ok() || dec->dims() != f.dims())
      throw Error(ErrCode::kInternal,
                  "self-decode of freshly encoded layer failed: " +
                      (dec.ok() ? "dims mismatch" : dec.status().str()));
    if (i == 0) {
      recon = std::move(*dec);
    } else {
      auto rv = recon.values();
      auto dv = dec->values();
      for (std::size_t j = 0; j < rv.size(); ++j) rv[j] += dv[j];
    }
    table[i].abs_eb = rung;
    table[i].payload = payloads[i];
  }
  return write_stream(opt_.inner, f.dims(), eb, value_range, table);
}

Expected<std::unique_ptr<ProgressiveReader>> ProgressiveReader::open(
    std::span<const std::uint8_t> stream, CodecFactory factory) {
  auto parsed = read_stream(stream);
  if (!parsed.ok()) return parsed.status();
  auto codec = make_inner(factory, parsed->inner, parsed->dims.rank);
  if (!codec.ok()) return codec.status();
  std::unique_ptr<ProgressiveReader> r(new ProgressiveReader());
  r->info_ = std::move(*parsed);
  r->codec_ = std::move(*codec);
  return r;
}

Expected<Field> ProgressiveReader::read(std::size_t k) {
  if (k >= info_.present)
    return Status::error(ErrCode::kInvalidArgument,
                         "layer " + std::to_string(k) + " out of range (" +
                             std::to_string(info_.present) + " present)");
  // Refining a previous read resumes the memoized chain; rewinding to a
  // coarser prefix restarts it (recon_ already folds later layers in).
  std::size_t start = next_;
  if (k + 1 < next_ || next_ == 0) {
    recon_ = Field();
    start = 0;
  }
  next_ = 0;  // invalid until the loop completes
  for (std::size_t i = start; i <= k; ++i) {
    auto dec = codec_->decompress(info_.layers[i].payload);
    if (!dec.ok()) return dec.status();
    if (dec->dims() != info_.dims)
      return Status::error(ErrCode::kCorruptStream, "layer dims mismatch");
    if (i == 0) {
      recon_ = std::move(*dec);
    } else {
      auto rv = recon_.values();
      auto dv = dec->values();
      for (std::size_t j = 0; j < rv.size(); ++j) rv[j] += dv[j];
    }
  }
  next_ = k + 1;
  return recon_;
}

Expected<TruncateResult> truncate_to_bytes(
    std::span<const std::uint8_t> stream, std::size_t budget) {
  auto parsed = read_stream(stream);
  if (!parsed.ok()) return parsed.status();
  const std::size_t k = layers_for_budget(*parsed, budget);
  return TruncateResult{prefix_bytes(*parsed, k), k + 1,
                        parsed->layers.size(), parsed->layers[k].abs_eb};
}

Expected<TruncateResult> truncate_to_bound(
    std::span<const std::uint8_t> stream, const ErrorBound& target) {
  auto parsed = read_stream(stream);
  if (!parsed.ok()) return parsed.status();
  auto k = layers_for_bound(*parsed, target);
  if (!k.ok()) return k.status();
  return TruncateResult{prefix_bytes(*parsed, *k), *k + 1,
                        parsed->layers.size(), parsed->layers[*k].abs_eb};
}

ProgressiveCompressor::ProgressiveCompressor(ProgressiveWriter::Options opt,
                                             int rank)
    : opt_(opt) {
  // Lenient on rank by design: the registry contract is that create()
  // succeeds for every registered name at every rank, with callers
  // gating on supports_rank() — which delegates to the inner instance.
  inner_ = make_inner_or_throw(opt_.factory, opt_.inner, rank,
                               /*require_rank=*/false);
  if (!inner_->error_bounded())
    throw Error(ErrCode::kUnsupported,
                "progressive layering needs an error-bounded inner codec; '" +
                    opt_.inner + "' is not");
  ProgressiveWriter probe(opt_);  // validate the ladder shape up front
}

std::vector<std::uint8_t> ProgressiveCompressor::compress(
    const Field& f, const ErrorBound& eb) {
  return ProgressiveWriter(opt_).encode(f, eb);
}

bool ProgressiveCompressor::supports_rank(int rank) const {
  return inner_->supports_rank(rank);
}

Field ProgressiveCompressor::decompress_impl(
    std::span<const std::uint8_t> stream) {
  auto reader = ProgressiveReader::open(stream, opt_.factory);
  if (!reader.ok())
    throw Error(reader.status().code, reader.status().str());
  auto f = (*reader)->read((*reader)->present() - 1);
  if (!f.ok()) throw Error(f.status().code, f.status().str());
  return std::move(*f);
}

}  // namespace aesz::progressive
