#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "predictors/error_bound.hpp"
#include "util/bytestream.hpp"
#include "util/dims.hpp"
#include "util/expected.hpp"

namespace aesz::progressive {

/// Layered-bitstream container (version 2, "AEPR"). One artifact holds a
/// single field recoded into an ordered sequence of refinement layers,
/// where every *prefix* of layers decodes to a valid field honoring a
/// progressively tighter absolute bound. Layout (little-endian, varint =
/// LEB128, blob = varint length + bytes):
///
///   header   magic u32 "AEPR" | version u8 | inner codec name blob |
///            rank u8 | dims varint* | eb-mode u8 | eb-value f64 |
///            value-range f64 | layer count varint |
///            per layer: offset varint, length varint, abs-bound f64,
///            crc32c u32 (v2+)
///   payload  concatenated inner-codec layer streams
///
/// v2 added the per-layer CRC32C over each layer's payload bytes. The
/// checksums live in the TABLE, not the payload region, so truncation
/// stays a pure byte-slice: a truncate_to() prefix keeps every declared
/// layer's checksum and the reader verifies exactly the layers the
/// prefix carries (absent layers' checksums are simply unused). A flip
/// inside a present layer is kChecksumMismatch. v1 streams — no
/// checksums — still parse; writers emit v2.
///
/// `inner codec name` is the registry spelling of the codec every layer
/// payload was produced by. `eb-mode`/`eb-value` record the bound the
/// FINAL layer restores (the non-progressive guarantee); `value-range` is
/// the original field's value range, stored so rel/psnr target bounds can
/// be resolved at truncation time without decoding anything. Each layer
/// table entry records the absolute tolerance the stream guarantees after
/// decoding layers 0..i — bounds must be finite, positive, and STRICTLY
/// decreasing (each layer refines), and the last one equals the resolved
/// final bound.
///
/// Layer offsets are relative to the payload-region start and must tile
/// it contiguously in order (offset 0 is 0, each next offset is the
/// previous end). The payload region may end at ANY layer boundary: the
/// header always describes all declared layers, and a prefix produced by
/// truncate_to() — header plus the first k layers' bytes — is itself a
/// valid AEPR stream whose remaining layers are simply absent. A payload
/// ending mid-layer is kTruncated; bytes past the last declared layer are
/// kCorruptStream.
///
/// Hostile-input discipline matches the AEPC/AETC containers: every
/// length is bounds-checked against the remaining bytes before any
/// allocation, the layer count is capped, malformed offsets/lengths/
/// bounds map to typed statuses — never an out-of-bounds read or
/// unbounded allocation.

/// "AEPR" in little-endian byte order.
constexpr std::uint32_t kStreamMagic = 0x52504541u;
constexpr std::uint8_t kFormatVersion = 2;
constexpr std::uint8_t kFormatVersionV1 = 1;  // pre-checksum, read-only

/// Cap on the inner-codec-name blob (mirrors temporal::kMaxInnerName).
constexpr std::size_t kMaxInnerName = 256;

/// Cap on the declared layer count. A geometric bound ladder reaches
/// float precision in far fewer steps; more layers is a hostile header.
constexpr std::size_t kMaxLayers = 64;

/// One layer-table entry: where the layer's inner-codec stream lives in
/// the payload region, and the absolute tolerance guaranteed after
/// decoding layers 0..this one. `payload` aliases the caller's bytes and
/// is empty for layers the (possibly truncated) stream does not carry.
struct LayerInfo {
  std::size_t offset = 0;  // relative to the payload-region start
  std::size_t length = 0;
  double abs_eb = 0.0;
  std::uint32_t crc = 0;  // CRC32C of the payload bytes (v2 streams)
  std::span<const std::uint8_t> payload;
};

/// Parsed and validated artifact. `layers` always holds every DECLARED
/// layer; `present` counts how many of them this stream actually carries
/// (a truncate_to() prefix keeps the full table but fewer payloads).
struct StreamInfo {
  std::string inner;  // registry codec name of every layer payload
  /// Format version the header declared (v1 layers carry no checksums).
  std::uint8_t version = kFormatVersion;
  Dims dims;
  ErrorBound eb;            // the bound the final layer restores
  double value_range = 0.0; // original field's range (resolves rel/psnr)
  std::vector<LayerInfo> layers;
  std::size_t present = 0;      // complete layers in this stream
  std::size_t header_bytes = 0; // payload region starts here
};

/// True when `stream` leads with the AEPR magic (cheap sniff for the CLI
/// and the service decompress path).
bool is_progressive(std::span<const std::uint8_t> stream);

/// The inner codec name from the header alone — what identify() needs
/// without paying for (or trusting) the layer table.
Expected<std::string> peek_inner(std::span<const std::uint8_t> stream);

/// Serialize a complete artifact. Layer payload spans must be non-empty;
/// bounds must be strictly decreasing. Throws
/// aesz::Error(kInvalidArgument) on violations.
std::vector<std::uint8_t> write_stream(const std::string& inner,
                                       const Dims& dims, const ErrorBound& eb,
                                       double value_range,
                                       std::span<const LayerInfo> layers);

/// Strict parse: header + layer table validated, then the payload region
/// matched against the table. Truncation anywhere but an exact layer
/// boundary, lying offsets/lengths, overlapping layers, and
/// non-decreasing bounds all map to typed statuses before any payload is
/// touched.
Expected<StreamInfo> read_stream(std::span<const std::uint8_t> stream);

/// Byte length of the stream prefix carrying layers 0..k (header + the
/// first k+1 payloads). k must be < info.layers.size().
std::size_t prefix_bytes(const StreamInfo& info, std::size_t k);

/// Largest layer index k (< info.present) whose prefix fits in `budget`
/// bytes. A budget smaller than the coarsest layer still answers layer 0
/// — never an error (docs/PROTOCOL.md read-partial semantics).
std::size_t layers_for_budget(const StreamInfo& info, std::size_t budget);

/// Smallest layer index k (< info.present) whose recorded bound meets
/// `target` (resolved against the stream's stored value range). A target
/// tighter than the tightest present layer answers everything the stream
/// has — best effort, never an error. Unusable targets are
/// kInvalidArgument.
Expected<std::size_t> layers_for_bound(const StreamInfo& info,
                                       const ErrorBound& target);

}  // namespace aesz::progressive
