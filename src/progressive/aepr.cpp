#include "progressive/aepr.hpp"

#include <cmath>
#include <cstring>
#include <string>

#include "sz/common.hpp"
#include "util/crc32c.hpp"

namespace aesz::progressive {

namespace {

Status parse_header(ByteReader& r, StreamInfo& out) {
  std::uint32_t magic = 0;
  if (!r.try_get(magic))
    return Status::error(ErrCode::kTruncated, "stream too short for magic");
  if (magic != kStreamMagic)
    return Status::error(ErrCode::kBadMagic, "not an AEPR progressive stream");
  std::uint8_t version = 0;
  if (!r.try_get(version))
    return Status::error(ErrCode::kTruncated, "truncated AEPR header");
  if (version != kFormatVersion && version != kFormatVersionV1)
    return Status::error(ErrCode::kBadHeader, "unsupported AEPR version");
  out.version = version;
  std::span<const std::uint8_t> name;
  if (!r.try_get_blob(name))
    return Status::error(ErrCode::kTruncated, "truncated inner codec name");
  if (name.empty() || name.size() > kMaxInnerName)
    return Status::error(ErrCode::kBadHeader, "bad inner codec name length");
  out.inner.assign(reinterpret_cast<const char*>(name.data()), name.size());
  for (char c : out.inner) {
    if (c < 0x20 || c > 0x7E)
      return Status::error(ErrCode::kBadHeader,
                           "non-printable inner codec name");
  }
  if (Status s = sz::read_dims_checked(r, out.dims); !s.ok()) return s;
  std::uint8_t mode = 0;
  double value = 0.0;
  if (!r.try_get(mode) || !r.try_get(value))
    return Status::error(ErrCode::kTruncated, "truncated error bound");
  if (mode > static_cast<std::uint8_t>(EbMode::kPSNR))
    return Status::error(ErrCode::kBadHeader, "bad error-bound mode");
  out.eb = ErrorBound(static_cast<EbMode>(mode), value);
  if (!out.eb.usable())
    return Status::error(ErrCode::kBadHeader, "unusable error bound");
  if (!r.try_get(out.value_range))
    return Status::error(ErrCode::kTruncated, "truncated value range");
  if (!std::isfinite(out.value_range) || out.value_range < 0)
    return Status::error(ErrCode::kBadHeader, "bad value range");
  return {};
}

/// Layer-table validation shared by read_stream and peek paths: count
/// capped, offsets tiling the payload region contiguously in order,
/// lengths nonzero, bounds finite/positive and strictly decreasing — all
/// before any payload byte is touched or allocated.
Status parse_layer_table(ByteReader& r, StreamInfo& out) {
  std::uint64_t count = 0;
  if (!r.try_get_varint(count))
    return Status::error(ErrCode::kTruncated, "truncated layer count");
  if (count == 0 || count > kMaxLayers)
    return Status::error(ErrCode::kBadHeader, "layer count out of range");
  out.layers.reserve(static_cast<std::size_t>(count));
  std::size_t prev_end = 0;
  double prev_bound = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) {
    LayerInfo layer;
    std::uint64_t offset = 0, length = 0;
    if (!r.try_get_varint(offset) || !r.try_get_varint(length) ||
        !r.try_get(layer.abs_eb))
      return Status::error(ErrCode::kTruncated, "truncated layer entry");
    if (out.version >= kFormatVersion && !r.try_get(layer.crc))
      return Status::error(ErrCode::kTruncated, "truncated layer entry");
    // Layers must tile the payload region exactly, in order — a table
    // pointing anywhere else (gaps, overlaps, backwards) is corrupt.
    if (offset != prev_end || length == 0)
      return Status::error(ErrCode::kCorruptStream,
                           "layer table does not tile the payload");
    if (length > sz::kMaxTotalElems * sizeof(float))
      return Status::error(ErrCode::kCorruptStream, "layer length overflow");
    if (!std::isfinite(layer.abs_eb) || layer.abs_eb <= 0)
      return Status::error(ErrCode::kCorruptStream, "bad layer bound");
    if (i > 0 && layer.abs_eb >= prev_bound)
      return Status::error(ErrCode::kCorruptStream,
                           "layer bounds must strictly decrease");
    layer.offset = static_cast<std::size_t>(offset);
    layer.length = static_cast<std::size_t>(length);
    prev_end = layer.offset + layer.length;
    prev_bound = layer.abs_eb;
    out.layers.push_back(layer);
  }
  return {};
}

}  // namespace

bool is_progressive(std::span<const std::uint8_t> stream) {
  std::uint32_t magic = 0;
  if (stream.size() < sizeof(magic)) return false;
  std::memcpy(&magic, stream.data(), sizeof(magic));
  return magic == kStreamMagic;
}

Expected<std::string> peek_inner(std::span<const std::uint8_t> stream) {
  StreamInfo info;
  ByteReader r(stream);
  if (Status s = parse_header(r, info); !s.ok()) return s;
  return info.inner;
}

std::vector<std::uint8_t> write_stream(const std::string& inner,
                                       const Dims& dims, const ErrorBound& eb,
                                       double value_range,
                                       std::span<const LayerInfo> layers) {
  AESZ_CHECK_ARG(!inner.empty() && inner.size() <= kMaxInnerName,
                 "bad inner codec name length");
  AESZ_CHECK_ARG(dims.rank >= 1 && dims.rank <= 3, "bad rank");
  AESZ_CHECK_ARG(eb.usable(), "unusable error bound");
  AESZ_CHECK_ARG(std::isfinite(value_range) && value_range >= 0,
                 "bad value range");
  AESZ_CHECK_ARG(!layers.empty() && layers.size() <= kMaxLayers,
                 "layer count out of range");
  ByteWriter w;
  w.put(kStreamMagic);
  w.put(kFormatVersion);
  w.put_blob({reinterpret_cast<const std::uint8_t*>(inner.data()),
              inner.size()});
  w.put(static_cast<std::uint8_t>(dims.rank));
  for (int i = 0; i < dims.rank; ++i) w.put_varint(dims[i]);
  w.put(static_cast<std::uint8_t>(eb.mode()));
  w.put(eb.value());
  w.put(value_range);
  w.put_varint(layers.size());
  std::size_t offset = 0;
  double prev_bound = 0.0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerInfo& layer = layers[i];
    AESZ_CHECK_ARG(!layer.payload.empty(), "empty layer payload");
    AESZ_CHECK_ARG(std::isfinite(layer.abs_eb) && layer.abs_eb > 0,
                   "bad layer bound");
    AESZ_CHECK_ARG(i == 0 || layer.abs_eb < prev_bound,
                   "layer bounds must strictly decrease");
    w.put_varint(offset);
    w.put_varint(layer.payload.size());
    w.put(layer.abs_eb);
    w.put(util::crc32c(layer.payload));
    offset += layer.payload.size();
    prev_bound = layer.abs_eb;
  }
  w.reserve(offset);
  for (const LayerInfo& layer : layers) w.put_bytes(layer.payload);
  return w.take();
}

Expected<StreamInfo> read_stream(std::span<const std::uint8_t> stream) {
  StreamInfo info;
  ByteReader r(stream);
  if (Status s = parse_header(r, info); !s.ok()) return s;
  if (Status s = parse_layer_table(r, info); !s.ok()) return s;
  info.header_bytes = r.pos();
  const std::size_t payload_bytes = r.remaining();

  // The payload region must end at an exact layer boundary: a
  // truncate_to() prefix carries the first k layers and nothing else.
  std::size_t matched = 0;
  std::size_t end = 0;
  for (const LayerInfo& layer : info.layers) {
    end = layer.offset + layer.length;
    if (end > payload_bytes) break;
    ++matched;
    if (end == payload_bytes) break;
  }
  if (matched == 0)
    return Status::error(ErrCode::kTruncated,
                         "payload shorter than the coarsest layer");
  const std::size_t last_end =
      info.layers[matched - 1].offset + info.layers[matched - 1].length;
  if (payload_bytes > last_end) {
    // More bytes than the matched prefix: either mid-layer truncation
    // (next layer started but did not finish) or trailing garbage past
    // the last declared layer.
    if (matched < info.layers.size())
      return Status::error(ErrCode::kTruncated,
                           "payload ends mid-layer (not a valid prefix)");
    return Status::error(ErrCode::kCorruptStream,
                         "trailing bytes after the last layer");
  }
  info.present = matched;
  for (std::size_t i = 0; i < matched; ++i) {
    LayerInfo& layer = info.layers[i];
    layer.payload = stream.subspan(info.header_bytes + layer.offset,
                                   layer.length);
    // v2: only the layers this (possibly truncated) stream carries are
    // verified — absent layers' table checksums simply go unused.
    if (info.version >= kFormatVersion &&
        util::crc32c(layer.payload) != layer.crc)
      return Status::error(ErrCode::kChecksumMismatch,
                           "layer " + std::to_string(i) +
                               " checksum mismatch");
  }
  return info;
}

std::size_t prefix_bytes(const StreamInfo& info, std::size_t k) {
  AESZ_CHECK_ARG(k < info.layers.size(), "layer index out of range");
  return info.header_bytes + info.layers[k].offset + info.layers[k].length;
}

std::size_t layers_for_budget(const StreamInfo& info, std::size_t budget) {
  std::size_t k = 0;
  for (std::size_t i = 1; i < info.present; ++i) {
    if (prefix_bytes(info, i) > budget) break;
    k = i;
  }
  return k;
}

Expected<std::size_t> layers_for_bound(const StreamInfo& info,
                                       const ErrorBound& target) {
  if (!target.usable())
    return Status::error(ErrCode::kInvalidArgument,
                         "unusable target bound " + target.str());
  const double abs = target.absolute(info.value_range);
  for (std::size_t i = 0; i < info.present; ++i)
    if (info.layers[i].abs_eb <= abs) return i;
  // Tighter than anything present: best effort, serve the whole stream.
  return info.present - 1;
}

}  // namespace aesz::progressive
