#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/field.hpp"
#include "predictors/compressor.hpp"
#include "predictors/error_bound.hpp"
#include "progressive/aepr.hpp"
#include "util/expected.hpp"

namespace aesz::progressive {

/// Builds the inner codec for a given field rank. Defaults to
/// CodecRegistry::create(name, rank); callers with out-of-registry
/// configuration (an AE-SZ instance loaded from a trained model file)
/// supply their own — same contract as temporal::CodecFactory.
using CodecFactory =
    std::function<std::unique_ptr<Compressor>(const std::string& name,
                                              int rank)>;

/// Default bound ladder: 3 layers whose absolute tolerances shrink by 4x
/// per refinement (layer 0 at 16x the final bound). Chosen so the coarse
/// base stays well under the 35% preview-byte budget on smooth fields
/// while two refinements reach the exact non-progressive guarantee.
constexpr std::size_t kDefaultLayers = 3;
constexpr double kDefaultFactor = 4.0;

/// Residual bound ladder over any error-bounded registry compressor:
/// layer 0 is the inner codec's stream of the field itself at the
/// loosest tolerance abs·factor^(L-1); layer i >= 1 is the inner stream
/// of the residual field − recon_{i−1}, compressed at abs·factor^(L-1-i),
/// where recon is rebuilt from the DECODED layers so the encoder's
/// reference chain is bit-identical to any reader's (the
/// temporal-subsystem discipline). After decoding layers 0..i the
/// per-element error is at most that layer's recorded tolerance; the
/// final layer lands exactly on the bound a non-progressive compress()
/// would have enforced.
class ProgressiveWriter {
 public:
  struct Options {
    std::string inner = "SZ2.1";
    std::size_t layers = kDefaultLayers;  // total layers, >= 1
    double factor = kDefaultFactor;       // bound ratio between layers, > 1
    CodecFactory factory;                 // empty = CodecRegistry
  };

  /// Throws aesz::Error(kInvalidArgument) on an unusable ladder shape.
  /// The inner codec is built per encode() (its rank depends on the
  /// field), so an unknown codec name surfaces there.
  explicit ProgressiveWriter(Options opt);
  ProgressiveWriter() : ProgressiveWriter(Options()) {}

  /// Recode `f` into a complete AEPR artifact. Throws aesz::Error on an
  /// unknown/unsupported inner codec, a non-error-bounded inner codec
  /// (the ladder's per-layer guarantee would be meaningless), or an
  /// unusable bound.
  std::vector<std::uint8_t> encode(const Field& f, const ErrorBound& eb);

  const Options& options() const { return opt_; }

 private:
  Options opt_;
};

/// Decodes layer prefixes out of a parsed AEPR artifact. Zero-copy: the
/// reader aliases the caller's bytes, which must outlive it. read(k)
/// decodes layers 0..k front to back (the decoder chain is memoized, so
/// refining a previous read costs only the new layers).
class ProgressiveReader {
 public:
  static Expected<std::unique_ptr<ProgressiveReader>> open(
      std::span<const std::uint8_t> stream, CodecFactory factory = {});

  /// Decode layers 0..k; k must be < present(). The result honors the
  /// recorded bound of layer k.
  Expected<Field> read(std::size_t k);

  /// Declared layers in the table / layers this stream actually carries.
  std::size_t layers() const { return info_.layers.size(); }
  std::size_t present() const { return info_.present; }

  /// The absolute tolerance guaranteed after decoding layers 0..k.
  double bound_after(std::size_t k) const { return info_.layers[k].abs_eb; }

  /// Bytes of the stream prefix carrying layers 0..k (see aepr.hpp).
  std::size_t prefix_bytes(std::size_t k) const {
    return progressive::prefix_bytes(info_, k);
  }

  const StreamInfo& info() const { return info_; }

 private:
  ProgressiveReader() = default;

  StreamInfo info_;
  std::unique_ptr<Compressor> codec_;
  Field recon_;            // sum of decoded layers 0..next_-1
  std::size_t next_ = 0;   // layers already folded into recon_
};

/// What truncate_to() answers: a valid AEPR prefix plus what it promises.
struct TruncateResult {
  std::size_t bytes = 0;       // prefix length (header + k+1 layers)
  std::size_t layers = 0;      // layers served (k+1)
  std::size_t total_layers = 0;
  double abs_eb = 0.0;         // the bound the prefix honors
};

/// Pure table math over a parsed stream — no codec, no decode (the
/// service read-partial path). `truncate_to_bytes` serves the largest
/// prefix fitting the budget, never less than the coarsest layer;
/// `truncate_to_bound` the smallest prefix meeting the target (best
/// effort when the target outruns the stream). Both fail only on a
/// malformed stream (typed, from aepr::read_stream) or an unusable
/// target bound.
Expected<TruncateResult> truncate_to_bytes(
    std::span<const std::uint8_t> stream, std::size_t budget);
Expected<TruncateResult> truncate_to_bound(
    std::span<const std::uint8_t> stream, const ErrorBound& target);

/// The `progressive:<codec>` registry wrapper: compress() recodes through
/// ProgressiveWriter with the default ladder, decompress() restores full
/// fidelity (all layers present in the stream). Partial decodes go
/// through ProgressiveReader/truncate_to — a Compressor returns one
/// field, not a fidelity menu.
class ProgressiveCompressor : public Compressor {
 public:
  /// Throws aesz::Error(kUnsupported) on an unknown inner codec or one
  /// that is not error-bounded (AE-B: a bound ladder needs bounds).
  explicit ProgressiveCompressor(ProgressiveWriter::Options opt, int rank);

  std::string name() const override { return "progressive:" + opt_.inner; }
  using Compressor::compress;
  std::vector<std::uint8_t> compress(const Field& f,
                                     const ErrorBound& eb) override;
  bool error_bounded() const override { return true; }
  bool supports_rank(int rank) const override;

 protected:
  Field decompress_impl(std::span<const std::uint8_t> stream) override;

 private:
  ProgressiveWriter::Options opt_;
  std::unique_ptr<Compressor> inner_;  // rank-probe + capability witness
};

}  // namespace aesz::progressive
