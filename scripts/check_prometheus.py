#!/usr/bin/env python3
"""Validate a Prometheus text exposition (stdin, or a file argument).

Used by CI against a live `aesz_client metrics` fetch. Checks the rules a
scraper depends on, without requiring promtool:

  * every sample line is `name[{labels}] value`, with a legal metric name
    ([a-zA-Z_:][a-zA-Z0-9_:]*);
  * every sample belongs to a family announced by `# HELP` + `# TYPE`
    (HELP first, then TYPE, then samples — the aesz exposition order);
  * histogram families carry a `+Inf` bucket, strictly increasing `le`
    bounds, monotone non-decreasing cumulative counts, and a `_count`
    equal to the `+Inf` bucket.

Exit status 0 when the exposition is valid, 1 otherwise (problems on
stderr). Requires at least one sample so an empty fetch cannot pass.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)


def family_of(name):
    """Strip histogram/summary suffixes to the declared family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def le_value(labels):
    for part in labels.split(","):
        if part.startswith('le="') and part.endswith('"'):
            bound = part[4:-1]
            return float("inf") if bound == "+Inf" else float(bound)
    return None


def main():
    text = (
        open(sys.argv[1], encoding="utf-8").read()
        if len(sys.argv) > 1
        else sys.stdin.read()
    )
    problems = []
    helped, typed = set(), {}
    hist = {}  # family -> list of (le, cumulative) in exposition order
    hist_count = {}
    samples = 0

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.match(parts[2]):
                problems.append(f"line {lineno}: malformed HELP: {line!r}")
            else:
                helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not NAME_RE.match(parts[2]):
                problems.append(f"line {lineno}: malformed TYPE: {line!r}")
                continue
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {lineno}: unknown TYPE {kind!r}")
            if name not in helped:
                problems.append(f"line {lineno}: TYPE {name} without prior HELP")
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        samples += 1
        name = m.group("name")
        family = family_of(name)
        try:
            value = float(m.group("value"))
        except ValueError:
            problems.append(f"line {lineno}: non-numeric value: {line!r}")
            continue
        kind = typed.get(family) or typed.get(name)
        if kind is None:
            problems.append(f"line {lineno}: sample {name} has no TYPE")
            continue
        if kind == "histogram" and name.endswith("_bucket"):
            le = le_value(m.group("labels") or "")
            if le is None:
                problems.append(f"line {lineno}: bucket without le label")
            else:
                hist.setdefault(family, []).append((lineno, le, value))
        elif kind == "histogram" and name.endswith("_count"):
            hist_count[family] = (lineno, value)

    if samples == 0:
        problems.append("no samples at all")

    for family, buckets in hist.items():
        prev_le, prev_cum = None, None
        for lineno, le, cum in buckets:
            if prev_le is not None and le <= prev_le:
                problems.append(
                    f"line {lineno}: {family} bucket le={le} not above {prev_le}"
                )
            if prev_cum is not None and cum < prev_cum:
                problems.append(
                    f"line {lineno}: {family} cumulative count {cum} < {prev_cum}"
                )
            prev_le, prev_cum = le, cum
        if prev_le != float("inf"):
            problems.append(f"{family}: no +Inf bucket")
        elif family in hist_count and hist_count[family][1] != prev_cum:
            problems.append(
                f"{family}: _count {hist_count[family][1]} != +Inf bucket {prev_cum}"
            )
        elif family not in hist_count:
            problems.append(f"{family}: histogram without _count")

    for problem in problems:
        print(f"check_prometheus: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(
        f"check_prometheus: OK ({samples} samples, "
        f"{len(hist)} histograms with buckets)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
