#!/usr/bin/env bash
# Build and run the kernel microbench, writing the machine-readable result
# to BENCH_kernels.json at the repo root so the perf trajectory of the
# single-thread hot paths (bit I/O, Huffman, GEMM/conv) is recorded per
# machine. Human-readable output goes to the terminal (stderr).
#
#   scripts/run_bench.sh                  # default sizes (~10 s)
#   AESZ_BENCH_KERNELS_SYMS=1000000 scripts/run_bench.sh   # quicker
#
# Env: BUILD_DIR (default build), plus the AESZ_BENCH_KERNELS_* knobs
# documented in bench/bench_kernels.cpp.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_kernels >/dev/null

"$BUILD_DIR"/bench_kernels > BENCH_kernels.json
echo "wrote BENCH_kernels.json:"
python3 -m json.tool BENCH_kernels.json 2>/dev/null || cat BENCH_kernels.json
