#!/usr/bin/env bash
# Build and run the test suite under ASan + UBSan. The corrupt-stream
# robustness/registry tests are only meaningful with sanitizers watching
# for the OOB reads and overflows they try to provoke.
#
#   scripts/run_sanitizers.sh            # full suite
#   scripts/run_sanitizers.sh -R corrupt # extra args forwarded to ctest
#
# Env: BUILD_DIR (default build-asan), CC/CXX respected by CMake.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAESZ_SANITIZE=ON \
  -DAESZ_BUILD_BENCH=OFF \
  -DAESZ_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

# allocator_may_return_null: hostile-length allocation attempts must surface
# as bad_alloc (which decompress() converts to a typed status), not as an
# ASan hard error; halt_on_error keeps genuine UB fatal.
export ASAN_OPTIONS="allocator_may_return_null=1:detect_leaks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
