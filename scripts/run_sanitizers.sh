#!/usr/bin/env bash
# Build and run the test suite under a sanitizer set. The corrupt-stream
# robustness/registry/pipeline tests are only meaningful with sanitizers
# watching for the OOB reads, overflows, and data races they try to
# provoke.
#
#   scripts/run_sanitizers.sh                  # ASan + UBSan, full suite
#   scripts/run_sanitizers.sh -R corrupt       # extra args forwarded to ctest
#   SANITIZER=tsan scripts/run_sanitizers.sh -R pipeline
#                                              # ThreadSanitizer on the
#                                              # parallel-pipeline tests
#
# Env: SANITIZER (asan|tsan, default asan), BUILD_DIR (default
# build-$SANITIZER), CC/CXX respected by CMake.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER=${SANITIZER:-asan}
BUILD_DIR=${BUILD_DIR:-build-$SANITIZER}

case "$SANITIZER" in
  asan) CMAKE_SANITIZE=ASAN ;;
  tsan) CMAKE_SANITIZE=TSAN ;;
  *) echo "unknown SANITIZER '$SANITIZER' (use asan|tsan)" >&2; exit 2 ;;
esac

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAESZ_SANITIZE="$CMAKE_SANITIZE" \
  -DAESZ_BUILD_BENCH=OFF \
  -DAESZ_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

# allocator_may_return_null: hostile-length allocation attempts must surface
# as bad_alloc (which decompress() converts to a typed status), not as an
# ASan hard error; halt_on_error keeps genuine UB fatal.
export ASAN_OPTIONS="allocator_may_return_null=1:detect_leaks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
# TSan: any reported race is a real bug in the thread pool / parallel
# pipeline (OpenMP is disabled in TSAN builds, see CMakeLists.txt).
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
