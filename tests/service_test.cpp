// Service-layer tests: frame protocol hostile-input discipline, pipe/TCP
// transports, server dispatch + codec/model caching, client round trips.
// The hostile-frame cases run under ASan/UBSan in CI (run_sanitizers.sh):
// every truncated/oversized/corrupt frame must come back as a typed error
// frame — never a crash, OOB read, or unbounded allocation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "data/synth.hpp"
#include "metrics/metrics.hpp"
#include "predictors/registry.hpp"
#include "progressive/progressive.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "util/bytestream.hpp"

namespace aesz {
namespace {

namespace svc = ::aesz::service;

CodecRegistry& reg() { return CodecRegistry::instance(); }

Field field_for_rank(int rank) {
  switch (rank) {
    case 1: {
      Field f{Dims(std::size_t{512})};
      for (std::size_t i = 0; i < f.size(); ++i)
        f.at(i) = std::sin(0.02f * static_cast<float>(i)) +
                  0.2f * std::sin(0.17f * static_cast<float>(i));
      return f;
    }
    case 2: return synth::cesm_freqsh(32, 48, 50);
    default: return synth::hurricane_u(16, 16, 16, 43);
  }
}

std::span<const std::uint8_t> field_bytes(const Field& f) {
  const auto v = f.values();
  return {reinterpret_cast<const std::uint8_t*>(v.data()),
          v.size() * sizeof(float)};
}

svc::CompressRequest sample_compress_request(const Field& f) {
  svc::CompressRequest req;
  req.codec = "SZ2.1";
  req.eb = ErrorBound::Rel(1e-2);
  req.dims = f.dims();
  req.field = field_bytes(f);
  return req;
}

// ---------------------------------------------------------- protocol ----

TEST(Protocol, CompressRequestRoundTrip) {
  const Field f = field_for_rank(2);
  const auto frame = svc::encode_compress_request(sample_compress_request(f));
  ASSERT_EQ(svc::peek_op(frame).value(), svc::Op::kCompressRequest);
  auto parsed = svc::parse_compress_request(frame);
  ASSERT_TRUE(parsed.ok()) << parsed.status().str();
  EXPECT_EQ(parsed->codec, "SZ2.1");
  EXPECT_EQ(parsed->eb, ErrorBound::Rel(1e-2));
  EXPECT_EQ(parsed->dims, f.dims());
  ASSERT_EQ(parsed->field.size(), f.size() * sizeof(float));
  EXPECT_EQ(0, std::memcmp(parsed->field.data(), f.data(),
                           parsed->field.size()));
}

TEST(Protocol, DecompressRequestRoundTrip) {
  const std::vector<std::uint8_t> stream{1, 2, 3, 4, 5};
  const auto frame = svc::encode_decompress_request({"ZFP", stream});
  auto parsed = svc::parse_decompress_request(frame);
  ASSERT_TRUE(parsed.ok()) << parsed.status().str();
  EXPECT_EQ(parsed->codec, "ZFP");
  EXPECT_EQ(std::vector<std::uint8_t>(parsed->stream.begin(),
                                      parsed->stream.end()),
            stream);
}

TEST(Protocol, ResponseFramesRoundTrip) {
  const std::vector<std::uint8_t> stream{9, 8, 7};
  auto cr = svc::parse_compress_response(
      svc::encode_compress_response({0.125, stream}));
  ASSERT_TRUE(cr.ok());
  EXPECT_DOUBLE_EQ(cr->abs_eb, 0.125);
  EXPECT_EQ(cr->stream.size(), 3u);

  const Field f = field_for_rank(1);
  auto dr = svc::parse_decompress_response(
      svc::encode_decompress_response({f.dims(), field_bytes(f)}));
  ASSERT_TRUE(dr.ok());
  EXPECT_EQ(dr->dims, f.dims());

  auto lr = svc::parse_list_codecs_response(svc::encode_list_codecs_response(
      {{"A", true, 0x41414141, "alpha"}, {"B", false, 0, "beta"}}));
  ASSERT_TRUE(lr.ok());
  ASSERT_EQ(lr->size(), 2u);
  EXPECT_EQ((*lr)[0].name, "A");
  EXPECT_TRUE((*lr)[0].error_bounded);
  EXPECT_EQ((*lr)[1].description, "beta");

  svc::StatsResponse stats;
  stats.counters = {{"requests", 7}, {"bytes_in", 123456}};
  auto sr = svc::parse_stats_response(svc::encode_stats_response(stats));
  ASSERT_TRUE(sr.ok());
  EXPECT_EQ(sr->get("requests"), 7u);
  EXPECT_EQ(sr->get("bytes_in"), 123456u);
  EXPECT_EQ(sr->get("unknown_counter"), 0u);

  auto er = svc::parse_error_response(svc::encode_error_response(
      {ErrCode::kUnsupported, "nope"}));
  ASSERT_TRUE(er.ok());
  EXPECT_EQ(er->code, ErrCode::kUnsupported);
  EXPECT_EQ(er->message, "nope");
}

TEST(Protocol, ZeroLengthAndSingleByteFramesAreTypedErrors) {
  for (const auto& frame :
       {std::vector<std::uint8_t>{}, std::vector<std::uint8_t>{0x41}}) {
    EXPECT_EQ(svc::peek_op(frame).status().code, ErrCode::kTruncated);
    EXPECT_FALSE(svc::parse_compress_request(frame).ok());
    EXPECT_FALSE(svc::parse_decompress_request(frame).ok());
    EXPECT_FALSE(svc::parse_compress_response(frame).ok());
    EXPECT_FALSE(svc::parse_stats_response(frame).ok());
    EXPECT_FALSE(svc::parse_error_response(frame).ok());
  }
}

TEST(Protocol, BadMagicVersionAndOpcodeAreTypedErrors) {
  const Field f = field_for_rank(1);
  auto frame = svc::encode_compress_request(sample_compress_request(f));
  {
    auto bad = frame;
    bad[0] ^= 0xFF;
    EXPECT_EQ(svc::peek_op(bad).status().code, ErrCode::kBadMagic);
    EXPECT_EQ(svc::parse_compress_request(bad).status().code,
              ErrCode::kBadMagic);
  }
  {
    auto bad = frame;
    bad[4] = 99;  // version byte
    EXPECT_EQ(svc::peek_op(bad).status().code, ErrCode::kBadHeader);
  }
  {
    auto bad = frame;
    bad[5] = 0x7E;  // unknown opcode
    EXPECT_EQ(svc::peek_op(bad).status().code, ErrCode::kBadHeader);
  }
  {
    // A valid frame of the WRONG type is a typed mismatch, not a crash.
    EXPECT_EQ(svc::parse_decompress_request(frame).status().code,
              ErrCode::kBadHeader);
  }
  {
    auto bad = frame;
    bad.push_back(0);  // trailing byte after a complete body
    EXPECT_EQ(svc::parse_compress_request(bad).status().code,
              ErrCode::kCorruptStream);
  }
}

/// The ISSUE's core hostile-frame case: a valid frame truncated at EVERY
/// byte boundary must parse to a typed status, and the server must answer
/// each with an error frame — never crash or over-allocate.
TEST(Protocol, TruncationAtEveryByteBoundaryIsATypedError) {
  const Field f = field_for_rank(2);
  const std::vector<std::vector<std::uint8_t>> frames = {
      svc::encode_compress_request(sample_compress_request(f)),
      svc::encode_decompress_request({"ZFP", {field_bytes(f).begin(),
                                              field_bytes(f).end()}}),
      svc::encode_stats_request(),
      svc::encode_list_codecs_request(),
  };
  svc::Server server({1, "", "CESM-CLDHGH"});
  for (const auto& frame : frames) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const std::span<const std::uint8_t> prefix(frame.data(), len);
      const auto op = svc::peek_op(prefix);
      if (op.ok()) {
        // Headers survive truncation past byte 6; the body parse must not.
        if (*op == svc::Op::kCompressRequest) {
          EXPECT_FALSE(svc::parse_compress_request(prefix).ok()) << len;
        }
        if (*op == svc::Op::kDecompressRequest) {
          EXPECT_FALSE(svc::parse_decompress_request(prefix).ok()) << len;
        }
      }
      // Whatever the truncation point, the server answers with a frame —
      // either a typed error frame, or (for the empty-body requests whose
      // 6-byte prefix is already a complete frame) a real response.
      const auto response = server.handle_frame(prefix);
      ASSERT_FALSE(response.empty()) << len;
      ASSERT_TRUE(svc::peek_op(response).ok()) << len;
    }
  }
}

TEST(Protocol, OversizedDeclaredLengthsNeverOverAllocate) {
  // Hand-build a compress request whose codec-name blob declares ~2^60
  // bytes: the parser must reject against the remaining frame bytes
  // BEFORE any allocation (under ASan a giant allocation would abort).
  ByteWriter w;
  w.put(svc::kFrameMagic);
  w.put(svc::kProtocolVersion);
  w.put(static_cast<std::uint8_t>(svc::Op::kCompressRequest));
  w.put_varint(std::uint64_t{1} << 60);  // hostile blob length
  w.put_bytes(std::vector<std::uint8_t>(8, 0xAB));
  const auto r = svc::parse_compress_request(w.bytes());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code, ErrCode::kTruncated);

  // Same discipline for a hostile stats counter count.
  ByteWriter s;
  s.put(svc::kFrameMagic);
  s.put(svc::kProtocolVersion);
  s.put(static_cast<std::uint8_t>(svc::Op::kStatsResponse));
  s.put_varint(std::uint64_t{1} << 60);  // hostile counter count
  const auto sr = svc::parse_stats_response(s.bytes());
  ASSERT_FALSE(sr.ok());
  EXPECT_EQ(sr.status().code, ErrCode::kBadHeader);
}

TEST(Protocol, MismatchedFieldPayloadIsCorruptStream) {
  const Field f = field_for_rank(1);
  auto req = sample_compress_request(f);
  req.field = req.field.subspan(0, req.field.size() - 4);  // one elem short
  const auto frame = svc::encode_compress_request(req);
  EXPECT_EQ(svc::parse_compress_request(frame).status().code,
            ErrCode::kCorruptStream);
}

// --------------------------------------------------------- transports ----

TEST(PipeTransport, FrameRoundTripAndShutdown) {
  auto [client, server] = svc::PipeTransport::make_pair();
  const std::vector<std::uint8_t> frame{1, 2, 3, 4, 5};
  ASSERT_TRUE(client->send_frame(frame).ok());
  auto received = server->recv_frame();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(*received, frame);

  // Empty frames are legal on the wire.
  ASSERT_TRUE(server->send_frame({}).ok());
  auto empty = client->recv_frame();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  client->shutdown();
  EXPECT_EQ(server->recv_frame().status().code, ErrCode::kIoError);
  EXPECT_EQ(client->recv_frame().status().code, ErrCode::kIoError);
}

TEST(PipeTransport, HostileLengthPrefixIsRejectedBeforeAllocation) {
  auto [client, server] = svc::PipeTransport::make_pair();
  // Declared frame length 0xFFFFFFFF (4 GiB) > kMaxFrameBytes: recv must
  // reject on the prefix alone, without allocating the declared size.
  const std::uint8_t hostile[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  client->send_raw({hostile, 4});
  const auto r = server->recv_frame();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code, ErrCode::kCorruptStream);
}

TEST(PipeTransport, TruncatedLengthPrefixSurfacesOnClose) {
  auto [client, server] = svc::PipeTransport::make_pair();
  const std::uint8_t partial[2] = {5, 0};  // half a length prefix
  client->send_raw({partial, 2});
  client->shutdown();
  EXPECT_FALSE(server->recv_frame().ok());
}

TEST(TcpTransport, ConnectToClosedPortIsTypedError) {
  // Bind-then-close yields a port with (almost certainly) no listener.
  auto listener = svc::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = (*listener)->port();
  (*listener)->close();
  const auto t = svc::TcpTransport::connect("127.0.0.1", port);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code, ErrCode::kIoError);
}

// ------------------------------------------------------------- server ----

TEST(Server, UnknownCodecAndNonRequestOpcodesAreErrorFrames) {
  svc::Server server({1, "", "CESM-CLDHGH"});
  const Field f = field_for_rank(1);
  auto req = sample_compress_request(f);
  req.codec = "no-such-codec";
  auto resp = server.handle_frame(svc::encode_compress_request(req));
  auto err = svc::parse_error_response(resp);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, ErrCode::kUnsupported);

  // A response opcode sent TO the server is refused, not dispatched.
  resp = server.handle_frame(svc::encode_error_response(
      {ErrCode::kInternal, "confused client"}));
  err = svc::parse_error_response(resp);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, ErrCode::kUnsupported);
}

TEST(Server, UnusableBoundIsTypedErrorFrame) {
  svc::Server server({1, "", "CESM-CLDHGH"});
  const Field f = field_for_rank(1);
  auto req = sample_compress_request(f);
  req.eb = ErrorBound::Abs(0.0);  // unusable: not positive
  const auto resp = server.handle_frame(svc::encode_compress_request(req));
  auto err = svc::parse_error_response(resp);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, ErrCode::kInvalidArgument);
}

TEST(Server, CorruptStreamDecompressIsTypedErrorFrame) {
  svc::Server server({1, "", "CESM-CLDHGH"});
  std::vector<std::uint8_t> junk{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3};
  const auto resp = server.handle_frame(
      svc::encode_decompress_request({"", junk}));  // auto-identify fails
  auto err = svc::parse_error_response(resp);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, ErrCode::kBadMagic);
}

/// Acceptance criterion: every registered codec round-trips through the
/// in-process transport with the error bound verified client-side against
/// the server-reported resolved bound.
TEST(Server, EveryRegisteredCodecRoundTripsThroughPipeTransport) {
  auto [client_end, server_end] = svc::PipeTransport::make_pair();
  svc::Server server({2, "", "CESM-CLDHGH"});
  std::thread session([&server, &t = *server_end] { server.serve(t); });
  svc::Client client(*client_end);

  for (const auto& name : reg().names()) {
    // AE-B's convolutional stack is fixed to 3-D fields.
    const int rank = name.find("AE-B") != std::string::npos ? 3 : 2;
    const Field f = field_for_rank(rank);
    auto compressed = client.compress(name, f, ErrorBound::Rel(1e-2));
    ASSERT_TRUE(compressed.ok()) << name << ": "
                                 << compressed.status().str();
    EXPECT_GT(compressed->stream.size(), 0u) << name;
    EXPECT_GT(compressed->abs_eb, 0.0) << name;

    // Identified decompress (empty codec name) must recover the field.
    auto recon = client.decompress(compressed->stream);
    ASSERT_TRUE(recon.ok()) << name << ": " << recon.status().str();
    ASSERT_EQ(recon->dims(), f.dims()) << name;
    const CodecInfo* info = reg().find(name);
    ASSERT_NE(info, nullptr) << name;
    if (info->error_bounded) {
      EXPECT_LE(metrics::max_abs_err(f.values(), recon->values()),
                compressed->abs_eb * (1 + 1e-9))
          << name << " violated its bound through the service";
    }
  }

  client_end->shutdown();
  session.join();
}

/// Acceptance criterion: the warm model cache — repeated AE-SZ requests
/// construct/load the model exactly once, observable via `stats`.
TEST(Server, AeModelCacheServesRepeatedRequestsWithoutReloading) {
  auto [client_end, server_end] = svc::PipeTransport::make_pair();
  svc::Server server({1, "", "CESM-CLDHGH"});
  std::thread session([&server, &t = *server_end] { server.serve(t); });
  svc::Client client(*client_end);

  const Field f = field_for_rank(2);
  // Mixed spellings on purpose: every alias/case must canonicalize onto
  // the SAME cache slot, or the model would silently load again.
  for (const char* spelling : {"AE-SZ", "AESZ", "ae-sz"}) {
    auto compressed = client.compress(spelling, f, ErrorBound::Rel(1e-2));
    ASSERT_TRUE(compressed.ok()) << spelling << ": "
                                 << compressed.status().str();
  }
  auto stats = client.stats();
  ASSERT_TRUE(stats.ok()) << stats.status().str();
  EXPECT_EQ(stats->get("compress_requests"), 3u);
  EXPECT_EQ(stats->get("ae_model_loads"), 1u)
      << "AE-SZ model must load once and stay warm";
  EXPECT_EQ(stats->get("codec_cache_misses"), 1u);
  EXPECT_EQ(stats->get("codec_cache_hits"), 2u);
  EXPECT_EQ(stats->get("error_responses"), 0u);

  client_end->shutdown();
  session.join();
}

TEST(Server, StatsCountersTrackTrafficAndErrors) {
  svc::Server server({1, "", "CESM-CLDHGH"});
  const Field f = field_for_rank(1);
  const auto ok_frame =
      svc::encode_compress_request(sample_compress_request(f));
  (void)server.handle_frame(ok_frame);
  (void)server.handle_frame(std::vector<std::uint8_t>{1, 2});  // hostile
  const auto resp = server.handle_frame(svc::encode_stats_request());
  auto stats = svc::parse_stats_response(resp);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->get("requests"), 3u);
  EXPECT_EQ(stats->get("compress_requests"), 1u);
  EXPECT_EQ(stats->get("stats_requests"), 1u);
  EXPECT_EQ(stats->get("error_responses"), 1u);
  EXPECT_GE(stats->get("bytes_in"), ok_frame.size());
  EXPECT_GT(stats->get("bytes_out"), 0u);
}

/// Pipelined scheduling: a client may stack requests on one connection;
/// responses come back in request order.
TEST(Server, PipelinedRequestsGetOrderedResponses) {
  auto [client_end, server_end] = svc::PipeTransport::make_pair();
  svc::Server server({2, "", "CESM-CLDHGH"});
  std::thread session([&server, &t = *server_end] { server.serve(t); });

  const Field f = field_for_rank(1);
  ASSERT_TRUE(client_end->send_frame(svc::encode_stats_request()).ok());
  ASSERT_TRUE(client_end
                  ->send_frame(svc::encode_compress_request(
                      sample_compress_request(f)))
                  .ok());
  ASSERT_TRUE(client_end->send_frame(svc::encode_list_codecs_request()).ok());

  const svc::Op expected[] = {svc::Op::kStatsResponse,
                              svc::Op::kCompressResponse,
                              svc::Op::kListCodecsResponse};
  for (const svc::Op want : expected) {
    auto frame = client_end->recv_frame();
    ASSERT_TRUE(frame.ok()) << frame.status().str();
    const auto op = svc::peek_op(*frame);
    ASSERT_TRUE(op.ok());
    EXPECT_EQ(*op, want);
  }

  client_end->shutdown();
  session.join();
}

TEST(Server, ListCodecsMatchesRegistry) {
  svc::Server server({1, "", "CESM-CLDHGH"});
  auto parsed = svc::parse_list_codecs_response(
      server.handle_frame(svc::encode_list_codecs_request()));
  ASSERT_TRUE(parsed.ok());
  const auto names = reg().names();
  ASSERT_EQ(parsed->size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ((*parsed)[i].name, names[i]);
    EXPECT_EQ((*parsed)[i].error_bounded, reg().find(names[i])->error_bounded);
  }
}

// ------------------------------------------------------------ metrics ----

TEST(Server, MetricsOpReturnsPrometheusExposition) {
  svc::Server server({1, "", "CESM-CLDHGH"});
  const Field f = field_for_rank(1);
  (void)server.handle_frame(
      svc::encode_compress_request(sample_compress_request(f)));
  const auto resp = server.handle_frame(svc::encode_metrics_request());
  const auto op = svc::peek_op(resp);
  ASSERT_TRUE(op.ok()) << op.status().str();
  ASSERT_EQ(*op, svc::Op::kMetricsResponse);
  const auto parsed = svc::parse_metrics_response(resp);
  ASSERT_TRUE(parsed.ok()) << parsed.status().str();
  const std::string text = parsed->text_str();
  EXPECT_NE(text.find("# TYPE aesz_requests counter\n"), std::string::npos);
  EXPECT_NE(text.find("aesz_compress_requests 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aesz_pool_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE aesz_request_ns_compress histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("aesz_request_ns_compress_count 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("aesz_request_ns_compress_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
}

TEST(Server, MetricsRequestHostileFramesAreTypedErrorFrames) {
  svc::Server server({1, "", "CESM-CLDHGH"});
  const auto frame = svc::encode_metrics_request();
  ASSERT_EQ(frame.size(), 6u);  // magic + version + opcode, empty body
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto resp = server.handle_frame({frame.data(), len});
    const auto op = svc::peek_op(resp);
    ASSERT_TRUE(op.ok()) << len;
    EXPECT_EQ(*op, svc::Op::kErrorResponse) << len;
  }
  {
    auto bad = frame;
    bad[4] = 99;  // version byte
    const auto err = svc::parse_error_response(server.handle_frame(bad));
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->code, ErrCode::kBadHeader);
  }
}

TEST(Protocol, MetricsResponseParserRejectsHostileFrames) {
  const std::string text = "# HELP aesz_requests frames handled\n";
  const auto frame = svc::encode_metrics_response(
      {{reinterpret_cast<const std::uint8_t*>(text.data()), text.size()}});
  const auto ok = svc::parse_metrics_response(frame);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->text_str(), text);

  // Truncation at every byte boundary is a typed error, never a crash.
  for (std::size_t len = 0; len < frame.size(); ++len)
    EXPECT_FALSE(
        svc::parse_metrics_response({frame.data(), len}).ok())
        << len;
  {
    auto bad = frame;
    bad.push_back(0);  // trailing byte after a complete body
    EXPECT_EQ(svc::parse_metrics_response(bad).status().code,
              ErrCode::kCorruptStream);
  }
  {
    // A hostile declared text length must not over-allocate.
    ByteWriter w;
    w.put(svc::kFrameMagic);
    w.put(svc::kProtocolVersion);
    w.put(static_cast<std::uint8_t>(svc::Op::kMetricsResponse));
    w.put_varint(std::uint64_t{1} << 60);
    const auto r = svc::parse_metrics_response(w.bytes());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code, ErrCode::kTruncated);
  }
  // A valid frame of the wrong type is a typed mismatch.
  EXPECT_EQ(svc::parse_metrics_response(svc::encode_stats_request())
                .status()
                .code,
            ErrCode::kBadHeader);
}

TEST(Server, ClientMetricsFetchesPrometheusText) {
  auto [client_end, server_end] = svc::PipeTransport::make_pair();
  svc::Server server({1, "", "CESM-CLDHGH"});
  std::thread session([&server, &t = *server_end] { server.serve(t); });
  svc::Client client(*client_end);
  const Field f = field_for_rank(2);
  ASSERT_TRUE(client.compress("ZFP", f, ErrorBound::Rel(1e-2)).ok());
  const auto text = client.metrics();
  ASSERT_TRUE(text.ok()) << text.status().str();
  EXPECT_NE(text->find("aesz_compress_requests 1\n"), std::string::npos);
  EXPECT_NE(text->find("# TYPE aesz_request_ns_compress histogram\n"),
            std::string::npos);
  client_end->shutdown();
  session.join();
}

TEST(Server, StatsFrameCarriesHistogramSummaryRows) {
  svc::Server server({1, "", "CESM-CLDHGH"});
  const Field f = field_for_rank(1);
  (void)server.handle_frame(
      svc::encode_compress_request(sample_compress_request(f)));
  // The extended frame still parses with the v1 stats parser — histogram
  // summaries are just more named rows of the same wire shape.
  const auto stats = svc::parse_stats_response(
      server.handle_frame(svc::encode_stats_request()));
  ASSERT_TRUE(stats.ok()) << stats.status().str();
  EXPECT_EQ(stats->get("requests"), 2u);
  EXPECT_EQ(stats->get("request_ns_compress_count"), 1u);
  EXPECT_GT(stats->get("request_ns_compress_sum"), 0u);
  EXPECT_GT(stats->get("request_ns_compress_p50"), 0u);
  EXPECT_GE(stats->get("request_ns_compress_p99"),
            stats->get("request_ns_compress_p50"));
  EXPECT_EQ(stats->get("request_bytes_in_count"), 1u);
  EXPECT_EQ(stats->get("response_bytes_out_count"), 1u);
}

TEST(Server, RegisterStatsProvidersRunInRegistrationOrder) {
  svc::Server server({1, "", "CESM-CLDHGH"});
  server.register_stats("zz_first", [](svc::StatsResponse& s) {
    s.counters.emplace_back("zz_row", 1);
  });
  server.register_stats("aa_second", [](svc::StatsResponse& s) {
    s.counters.emplace_back("aa_row", 2);
  });
  const auto index_of = [](const svc::StatsResponse& s,
                           const std::string& name) {
    for (std::size_t i = 0; i < s.counters.size(); ++i)
      if (s.counters[i].first == name) return static_cast<long>(i);
    return -1L;
  };
  auto snap = server.snapshot();
  // Registration order, not name order: zz registered first, emits first.
  ASSERT_GE(index_of(snap, "zz_row"), 0);
  ASSERT_GE(index_of(snap, "aa_row"), 0);
  EXPECT_LT(index_of(snap, "zz_row"), index_of(snap, "aa_row"));

  // Re-registering a name replaces its provider in place, keeping the slot.
  server.register_stats("zz_first", [](svc::StatsResponse& s) {
    s.counters.emplace_back("zz_row_v2", 3);
  });
  snap = server.snapshot();
  EXPECT_EQ(index_of(snap, "zz_row"), -1);
  EXPECT_LT(index_of(snap, "zz_row_v2"), index_of(snap, "aa_row"));

  server.unregister_stats("zz_first");
  snap = server.snapshot();
  EXPECT_EQ(index_of(snap, "zz_row_v2"), -1);
  EXPECT_GE(index_of(snap, "aa_row"), 0);
}

// ------------------------------------------------------- read-partial ----

TEST(Server, ReadPartialServesBudgetedAndBoundTargetedPrefixes) {
  svc::Server server({2, "", "CESM-CLDHGH"});
  const Field f = field_for_rank(2);

  // Build the AEPR artifact through the server itself.
  svc::CompressRequest creq;
  creq.codec = "progressive:SZ2.1";
  creq.eb = ErrorBound::Rel(1e-2);
  creq.dims = f.dims();
  creq.field = field_bytes(f);
  const auto cframe = server.handle_frame(svc::encode_compress_request(creq));
  auto compressed = svc::parse_compress_response(cframe);
  ASSERT_TRUE(compressed.ok()) << compressed.status().str();
  const std::vector<std::uint8_t> stream(compressed->stream.begin(),
                                         compressed->stream.end());

  // A whole-stream budget answers every layer at the full-fidelity bound.
  svc::ReadPartialRequest req;
  req.stream = stream;
  req.mode = svc::PartialMode::kByteBudget;
  req.budget = stream.size();
  const auto full_frame =
      server.handle_frame(svc::encode_read_partial_request(req));
  auto full = svc::parse_read_partial_response(full_frame);
  ASSERT_TRUE(full.ok()) << full.status().str();
  EXPECT_EQ(full->layers, full->total_layers);
  EXPECT_EQ(full->stream.size(), stream.size());
  EXPECT_DOUBLE_EQ(full->abs_eb, compressed->abs_eb);

  // A one-byte budget still answers the coarsest layer — never an error —
  // and the shipped prefix actually decodes within the promised bound.
  req.budget = 1;
  const auto coarse_frame =
      server.handle_frame(svc::encode_read_partial_request(req));
  auto coarse = svc::parse_read_partial_response(coarse_frame);
  ASSERT_TRUE(coarse.ok()) << coarse.status().str();
  EXPECT_EQ(coarse->layers, 1u);
  EXPECT_LT(coarse->stream.size(), stream.size());
  EXPECT_GT(coarse->abs_eb, full->abs_eb);
  auto reader = progressive::ProgressiveReader::open(coarse->stream);
  ASSERT_TRUE(reader.ok()) << reader.status().str();
  auto recon = (*reader)->read(coarse->layers - 1);
  ASSERT_TRUE(recon.ok()) << recon.status().str();
  EXPECT_LE(metrics::max_abs_err(f.values(), recon->values()),
            coarse->abs_eb * (1 + 1e-9));

  // By target bound: asking for exactly the coarse bound gets the same
  // one-layer prefix; a target tighter than the final rung gets the whole
  // stream (best effort, not an error).
  req.mode = svc::PartialMode::kTargetBound;
  req.bound = ErrorBound::Abs(coarse->abs_eb * (1 + 1e-9));
  const auto by_bound_frame =
      server.handle_frame(svc::encode_read_partial_request(req));
  auto by_bound = svc::parse_read_partial_response(by_bound_frame);
  ASSERT_TRUE(by_bound.ok()) << by_bound.status().str();
  EXPECT_EQ(by_bound->layers, 1u);
  req.bound = ErrorBound::Abs(full->abs_eb / 1e3);
  const auto best_frame =
      server.handle_frame(svc::encode_read_partial_request(req));
  auto best = svc::parse_read_partial_response(best_frame);
  ASSERT_TRUE(best.ok()) << best.status().str();
  EXPECT_EQ(best->layers, best->total_layers);

  // The dispatch is observable: dedicated counter plus fidelity histograms.
  auto stats = svc::parse_stats_response(
      server.handle_frame(svc::encode_stats_request()));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->get("read_partial_requests"), 4u);
  EXPECT_EQ(stats->get("progressive_bytes_served_count"), 4u);
  EXPECT_EQ(stats->get("progressive_layers_served_count"), 4u);
}

TEST(Server, ReadPartialRejectsNonProgressiveStreamsTyped) {
  svc::Server server({1, "", "CESM-CLDHGH"});
  const Field f = field_for_rank(1);
  auto plain = reg().create("SZ2.1", 1).value()->compress(
      f, ErrorBound::Rel(1e-2));
  svc::ReadPartialRequest req;
  req.stream = plain;
  req.mode = svc::PartialMode::kByteBudget;
  req.budget = plain.size();
  auto err = svc::parse_error_response(
      server.handle_frame(svc::encode_read_partial_request(req)));
  ASSERT_TRUE(err.ok()) << err.status().str();
  EXPECT_EQ(err->code, ErrCode::kBadMagic);

  // A truncated AEPR (mid-layer cut) is typed too, not a crash.
  auto aepr = reg().create("progressive:SZ2.1", 1).value()->compress(
      f, ErrorBound::Rel(1e-2));
  aepr.resize(aepr.size() - 1);
  req.stream = aepr;
  req.budget = aepr.size();
  err = svc::parse_error_response(
      server.handle_frame(svc::encode_read_partial_request(req)));
  ASSERT_TRUE(err.ok()) << err.status().str();
  EXPECT_EQ(err->code, ErrCode::kTruncated);
}

// ------------------------------------------------------- tcp loopback ----

/// Acceptance criterion: a TCP loopback client↔server round trip.
TEST(TcpLoopback, ClientServerRoundTrip) {
  auto listener = svc::TcpListener::bind(0);  // ephemeral port
  ASSERT_TRUE(listener.ok()) << listener.status().str();
  svc::Server server({2, "", "CESM-CLDHGH"});
  std::thread session([&] {
    auto conn = (*listener)->accept();
    ASSERT_TRUE(conn.ok()) << conn.status().str();
    server.serve(**conn);
  });

  auto transport = svc::TcpTransport::connect("127.0.0.1",
                                              (*listener)->port());
  ASSERT_TRUE(transport.ok()) << transport.status().str();
  svc::Client client(**transport);

  const Field f = field_for_rank(2);
  auto compressed = client.compress("SZ2.1", f, ErrorBound::Abs(0.01));
  ASSERT_TRUE(compressed.ok()) << compressed.status().str();
  EXPECT_DOUBLE_EQ(compressed->abs_eb, 0.01);
  auto recon = client.decompress(compressed->stream, "SZ2.1");
  ASSERT_TRUE(recon.ok()) << recon.status().str();
  ASSERT_EQ(recon->dims(), f.dims());
  EXPECT_LE(metrics::max_abs_err(f.values(), recon->values()),
            0.01 * (1 + 1e-9));

  // Progressive retrieval over the same connection: compress as AEPR,
  // fetch a byte-budgeted prefix, and the served layers honor the bound
  // the server reported.
  auto aepr = client.compress("progressive:SZ2.1", f, ErrorBound::Abs(0.01));
  ASSERT_TRUE(aepr.ok()) << aepr.status().str();
  auto partial = client.read_partial(aepr->stream, aepr->stream.size() / 2);
  ASSERT_TRUE(partial.ok()) << partial.status().str();
  EXPECT_LT(partial->layers, partial->total_layers);
  auto reader = progressive::ProgressiveReader::open(partial->stream);
  ASSERT_TRUE(reader.ok()) << reader.status().str();
  auto preview = (*reader)->read(partial->layers - 1);
  ASSERT_TRUE(preview.ok()) << preview.status().str();
  EXPECT_LE(metrics::max_abs_err(f.values(), preview->values()),
            partial->abs_eb * (1 + 1e-9));

  auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->get("requests"), 5u);
  EXPECT_EQ(stats->get("read_partial_requests"), 1u);

  (*transport)->shutdown();
  session.join();
}

}  // namespace
}  // namespace aesz
