// Event-loop server under concurrency: N clients with byte-interleaved
// partial writes (frames split at every boundary), per-client
// response-to-request correspondence, admission control answering typed
// kOverloaded frames past the in-flight cap, and slow-reader backpressure
// keeping server-side buffering bounded. Runs under TSan in CI.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "data/synth.hpp"
#include "service/client.hpp"
#include "service/event_loop.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"

namespace aesz {
namespace {

namespace svc = ::aesz::service;

std::vector<std::uint8_t> framed(std::span<const std::uint8_t> frame) {
  const std::uint32_t len = static_cast<std::uint32_t>(frame.size());
  std::vector<std::uint8_t> out(4 + frame.size());
  std::memcpy(out.data(), &len, 4);
  std::memcpy(out.data() + 4, frame.data(), frame.size());
  return out;
}

std::vector<std::uint8_t> compress_frame(const Field& f, double abs_eb,
                                         const std::string& codec) {
  const auto floats = f.values();
  svc::CompressRequest req;
  req.codec = codec;
  req.eb = ErrorBound::Abs(abs_eb);
  req.dims = f.dims();
  req.field = {reinterpret_cast<const std::uint8_t*>(floats.data()),
               floats.size() * sizeof(float)};
  return svc::encode_compress_request(req);
}

/// Server + event loop on a background thread, stopped on destruction.
struct EventHarness {
  svc::Server server;
  std::unique_ptr<svc::TcpListener> listener;
  std::unique_ptr<svc::EventServer> events;
  std::thread loop;

  explicit EventHarness(svc::EventServer::Options ev = {},
                        svc::Server::Options so = {})
      : server(so) {
    auto bound = svc::TcpListener::bind(0);
    EXPECT_TRUE(bound.ok());
    listener = std::move(*bound);
    events = std::make_unique<svc::EventServer>(server, *listener, ev);
    loop = std::thread([this] { events->run(); });
  }
  ~EventHarness() {
    events->stop();
    loop.join();
  }
  std::unique_ptr<svc::TcpTransport> connect() {
    auto t = svc::TcpTransport::connect("127.0.0.1", listener->port());
    EXPECT_TRUE(t.ok());
    return std::move(*t);
  }
};

/// Four clients, three requests each, all requests sent ONE BYTE AT A TIME
/// round-robin across the clients — every frame boundary lands mid-read on
/// the server, exercising incremental reassembly. The resolved bound
/// echoed in each response proves response-to-request correspondence.
TEST(EventServerConcurrency, InterleavedPartialWritesReassembleCorrectly) {
  for (const bool force_poll : {false, true}) {
    svc::EventServer::Options ev;
    ev.force_poll = force_poll;
    EventHarness h(ev);

    constexpr int kClients = 4, kRequests = 3;
    const Field f = synth::cesm_freqsh(24, 36, 50);

    std::vector<std::unique_ptr<svc::TcpTransport>> clients;
    std::vector<std::vector<std::uint8_t>> wire(kClients);
    std::vector<std::size_t> sent(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
      clients.push_back(h.connect());
      for (int r = 0; r < kRequests; ++r) {
        const double abs_eb = 1e-3 * (1 + c * kRequests + r);
        const auto bytes = framed(compress_frame(f, abs_eb, "SZ2.1"));
        wire[c].insert(wire[c].end(), bytes.begin(), bytes.end());
      }
    }
    // Round-robin single-byte sends: client 0 byte 0, client 1 byte 0, ...
    for (bool progressed = true; progressed;) {
      progressed = false;
      for (int c = 0; c < kClients; ++c) {
        if (sent[c] >= wire[c].size()) continue;
        ASSERT_TRUE(
            clients[c]->send_raw({wire[c].data() + sent[c], 1}).ok());
        ++sent[c];
        progressed = true;
      }
    }
    for (int c = 0; c < kClients; ++c) {
      for (int r = 0; r < kRequests; ++r) {
        auto response = clients[c]->recv_frame();
        ASSERT_TRUE(response.ok()) << "client " << c << " response " << r;
        auto parsed = svc::parse_compress_response(*response);
        ASSERT_TRUE(parsed.ok()) << "client " << c << " response " << r;
        EXPECT_DOUBLE_EQ(parsed->abs_eb, 1e-3 * (1 + c * kRequests + r))
            << "client " << c << " got someone else's response";
      }
    }
    const auto snap = h.server.snapshot();
    EXPECT_EQ(snap.get("compress_requests"),
              static_cast<std::uint64_t>(kClients * kRequests));
    EXPECT_EQ(snap.get("error_responses"), 0u);
  }
}

/// Past the admission cap the server answers immediately with a typed
/// kOverloaded error frame — in the rejected request's ordered slot — and
/// keeps serving afterwards.
TEST(EventServerConcurrency, OverloadAnswersTypedErrorAndServerSurvives) {
  svc::Server::Options so;
  so.max_batch = 8;
  so.batch_delay_us = 250000;  // hold the admitted request busy
  svc::EventServer::Options ev;
  ev.max_inflight = 1;
  EventHarness h(ev, so);

  auto conn = h.connect();
  const Field f = synth::cesm_freqsh(32, 48, 50);
  constexpr int kBurst = 8;
  // Pipeline a burst; with one in-flight slot and the first request parked
  // in the batcher's delay window, the rest must be rejected.
  for (int i = 0; i < kBurst; ++i) {
    const auto bytes = framed(compress_frame(f, 1e-3 * (i + 1), "AE-SZ"));
    ASSERT_TRUE(conn->send_raw(bytes).ok());
  }
  int ok = 0, overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto response = conn->recv_frame();
    ASSERT_TRUE(response.ok()) << i;
    const auto op = svc::peek_op(*response);
    ASSERT_TRUE(op.ok());
    if (*op == svc::Op::kErrorResponse) {
      auto err = svc::parse_error_response(*response);
      ASSERT_TRUE(err.ok());
      EXPECT_EQ(err->code, ErrCode::kOverloaded) << err->message;
      ++overloaded;
    } else {
      EXPECT_TRUE(svc::parse_compress_response(*response).ok());
      ++ok;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(overloaded, 1);
  EXPECT_EQ(ok + overloaded, kBurst);

  // The server is still healthy: a fresh request round-trips.
  svc::Client client(*conn);
  auto again = client.compress("SZ2.1", f, ErrorBound::Rel(1e-2));
  ASSERT_TRUE(again.ok());

  auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->get("ev_rejected_requests"),
            static_cast<std::uint64_t>(overloaded));
}

/// A client that stacks requests while refusing to read responses only
/// backs up its own connection: the loop pauses that connection's reads at
/// the buffered threshold, so the server never holds anywhere near the
/// total response volume, and every response still arrives (in order) once
/// the client starts draining.
TEST(EventServerConcurrency, SlowReaderBackpressureBoundsServerBuffering) {
  constexpr std::size_t kCap = 64 << 10;
  svc::EventServer::Options ev;
  ev.max_conn_buffered = kCap;
  EventHarness h(ev);

  // Small request, big response: decompress of a compact stream that
  // expands to a 256 KiB field.
  const Field big = synth::cesm_cldhgh(256, 256, 50);
  std::vector<std::uint8_t> stream;
  {
    auto direct = h.connect();
    svc::Client c(*direct);
    auto compressed = c.compress("SZ2.1", big, ErrorBound::Rel(1e-2));
    ASSERT_TRUE(compressed.ok());
    stream = std::move(compressed->stream);
  }
  svc::DecompressRequest req;
  req.codec = "SZ2.1";
  req.stream = stream;
  const auto wire = framed(svc::encode_decompress_request(req));
  const std::size_t kResponseBytes = big.dims().total() * sizeof(float);

  constexpr int kRequests = 24;
  auto slow = h.connect();
  std::thread sender([&] {
    for (int i = 0; i < kRequests; ++i) {
      if (!slow->send_raw(wire).ok()) return;
      // Pace the sends so responses accumulate one at a time and the
      // pause point is crossed deterministically.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  // Let responses pile up against the paused connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Observe from a second connection while the slow one is still blocked.
  {
    auto probe = h.connect();
    svc::Client c(*probe);
    auto stats = c.stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_GE(stats->get("ev_read_pauses"), 1u);
    EXPECT_GE(stats->get("ev_conns_read_paused"), 1u);
    // The cap held: nowhere near all kRequests responses were buffered.
    EXPECT_LT(stats->get("ev_buffered_high_water"),
              static_cast<std::uint64_t>(kRequests) * kResponseBytes / 2);
    EXPECT_GT(stats->get("ev_buffered_high_water"), kCap / 2);
  }

  // Drain: every response arrives intact and the connection recovers.
  for (int i = 0; i < kRequests; ++i) {
    auto response = slow->recv_frame();
    ASSERT_TRUE(response.ok()) << i;
    auto parsed = svc::parse_decompress_response(*response);
    ASSERT_TRUE(parsed.ok()) << i;
    EXPECT_EQ(parsed->dims.total(), big.dims().total());
  }
  sender.join();

  auto probe = h.connect();
  svc::Client c(*probe);
  auto stats = c.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->get("error_responses"), 0u);
  EXPECT_EQ(stats->get("ev_conns_read_paused"), 0u);
}

/// Raw loopback socket the harness transports can't express: closes with
/// SO_LINGER{on, 0s}, so ::close sends RST instead of FIN and the server's
/// next send/recv on the connection fails hard.
struct RawClient {
  int fd = -1;
  explicit RawClient(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      ADD_FAILURE() << "raw connect failed: " << std::strerror(errno);
      ::close(fd);
      fd = -1;
    }
  }
  void send(std::span<const std::uint8_t> bytes) {
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  void rst_close() {
    if (fd < 0) return;
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    ::close(fd);
    fd = -1;
  }
  ~RawClient() { rst_close(); }
};

/// Hostile peers that pipeline past the admission cap (or send a lying
/// length prefix) and then RESET the connection race the server's
/// synchronous error responses against a dying socket: send() inside the
/// completion path fails and the connection must be torn down exactly once
/// with nothing touching it afterwards (the use-after-free regression this
/// pins is only observable under ASan). The server must survive the storm
/// and keep serving.
TEST(EventServerConcurrency, ResetDuringErrorResponsesDoesNotCorrupt) {
  for (const bool force_poll : {false, true}) {
    svc::Server::Options so;
    so.max_batch = 8;
    so.batch_delay_us = 400000;  // parks one admitted AE-SZ request
    svc::EventServer::Options ev;
    ev.force_poll = force_poll;
    ev.max_inflight = 1;
    EventHarness h(ev, so);

    // Occupy the single in-flight slot so every stormer frame is answered
    // synchronously with kOverloaded inside the read pass.
    auto occupier = h.connect();
    const Field f = synth::cesm_freqsh(24, 36, 50);
    ASSERT_TRUE(
        occupier->send_raw(framed(compress_frame(f, 1e-3, "AE-SZ"))).ok());

    std::vector<std::uint8_t> tiny = {1, 0, 0, 0, 0xEE};  // 1-byte frame
    std::vector<std::uint8_t> burst;
    for (int i = 0; i < 16; ++i)
      burst.insert(burst.end(), tiny.begin(), tiny.end());
    const std::vector<std::uint8_t> hostile = {0xFF, 0xFF, 0xFF, 0xFF};

    for (int i = 0; i < 40; ++i) {
      RawClient raw(h.listener->port());
      if (raw.fd < 0) break;  // ASSERT in ctor already failed the test
      // Alternate abuse: overload burst vs. oversized length prefix, with
      // a sliding delay to move the reset around the server's read→send
      // window.
      raw.send(i % 2 == 0 ? burst : hostile);
      if (i % 4 != 0)
        std::this_thread::sleep_for(std::chrono::microseconds(50 * (i % 4)));
      raw.rst_close();
    }

    // The parked request still completes for the well-behaved client...
    auto response = occupier->recv_frame();
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(svc::parse_compress_response(*response).ok());
    // ...and a fresh connection round-trips against a healthy server.
    auto probe = h.connect();
    svc::Client client(*probe);
    auto again = client.compress("SZ2.1", f, ErrorBound::Rel(1e-2));
    ASSERT_TRUE(again.ok());
  }
}

/// Tear the front end down while a request is still executing: the client
/// resets (so the connection is reaped) and the harness is destroyed while
/// the admitted request is still parked in the batcher. Its completion
/// then fires after the EventServer is gone and must land in the
/// shared-ownership completion queue, not the destroyed front end (the
/// destroyed-mutex/wake-pipe regression this pins shows up under ASan).
TEST(EventServerConcurrency, TeardownWithRequestStillExecuting) {
  svc::Server::Options so;
  so.max_batch = 8;
  so.batch_delay_us = 300000;  // keeps the request alive past teardown
  const Field f = synth::cesm_freqsh(24, 36, 50);
  {
    EventHarness h({}, so);
    RawClient raw(h.listener->port());
    ASSERT_GE(raw.fd, 0);
    raw.send(framed(compress_frame(f, 1e-3, "AE-SZ")));
    // Let the loop read and admit the frame before the reset discards it.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    raw.rst_close();
  }  // stop() + join, then ~EventServer, then ~Server completes the job
}

/// Stacked pipelined requests all get answered, in order, on one
/// connection — the ordered-slot machinery under out-of-order completion.
TEST(EventServerConcurrency, PipelinedResponsesArriveInRequestOrder) {
  EventHarness h;
  auto conn = h.connect();
  const Field f = synth::cesm_freqsh(24, 36, 50);
  constexpr int kRequests = 4;
  for (int i = 0; i < kRequests; ++i)
    ASSERT_TRUE(
        conn->send_raw(framed(compress_frame(f, 1e-3 * (i + 1), "SZ2.1")))
            .ok());
  for (int i = 0; i < kRequests; ++i) {
    auto response = conn->recv_frame();
    ASSERT_TRUE(response.ok()) << i;
    auto parsed = svc::parse_compress_response(*response);
    ASSERT_TRUE(parsed.ok()) << i;
    EXPECT_DOUBLE_EQ(parsed->abs_eb, 1e-3 * (i + 1));
  }
}

}  // namespace
}  // namespace aesz
