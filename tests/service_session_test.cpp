// Stream-session service tests: the open/append/read/close lifecycle over
// handle_frame, submit() ordering for pipelined appends, idle reaping,
// typed kNoSession discipline, the registered-gauge stats API, and the
// acceptance path — a full session over TCP through the EventServer with
// the returned artifact matching a locally built AETC stream byte for
// byte.

#include <gtest/gtest.h>

#include <cmath>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "data/synth.hpp"
#include "metrics/metrics.hpp"
#include "service/client.hpp"
#include "service/event_loop.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "temporal/temporal.hpp"

namespace aesz {
namespace {

namespace svc = ::aesz::service;

/// Slowly advected noise — consecutive timesteps are strongly correlated,
/// so auto mode has real residual wins to find.
Field frame_at(std::size_t t) {
  return synth::value_noise_2d(24, 32, 3, 6.0, /*seed=*/91,
                               /*tphase=*/0.15 * static_cast<double>(t));
}

std::span<const std::uint8_t> field_bytes(const Field& f) {
  const auto v = f.values();
  return {reinterpret_cast<const std::uint8_t*>(v.data()),
          v.size() * sizeof(float)};
}

svc::OpenStreamRequest open_request(const Field& f, std::uint64_t gop = 4) {
  svc::OpenStreamRequest req;
  req.codec = "SZ2.1";
  req.eb = ErrorBound::Abs(1e-3);
  req.dims = f.dims();
  req.gop = gop;
  return req;
}

svc::Server::Options server_options(std::size_t threads = 1) {
  svc::Server::Options so;
  so.threads = threads;
  return so;
}

std::uint64_t open_session(svc::Server& server,
                           const svc::OpenStreamRequest& req) {
  const auto resp =
      server.handle_frame(svc::encode_open_stream_request(req));
  auto parsed = svc::parse_open_stream_response(resp);
  EXPECT_TRUE(parsed.ok()) << parsed.status().str();
  return parsed.ok() ? parsed->session_id : 0;
}

ErrCode error_code_of(std::span<const std::uint8_t> resp) {
  auto err = svc::parse_error_response(resp);
  return err.ok() ? err->code : ErrCode::kOk;
}

// ---------------------------------------------------------- protocol ----

TEST(SessionProtocol, AllSessionFramesRoundTrip) {
  const Field f = frame_at(0);
  {
    const auto frame = svc::encode_open_stream_request(open_request(f, 7));
    ASSERT_EQ(svc::peek_op(frame).value(), svc::Op::kOpenStreamRequest);
    auto p = svc::parse_open_stream_request(frame);
    ASSERT_TRUE(p.ok()) << p.status().str();
    EXPECT_EQ(p->codec, "SZ2.1");
    EXPECT_EQ(p->eb, ErrorBound::Abs(1e-3));
    EXPECT_EQ(p->dims, f.dims());
    EXPECT_EQ(p->gop, 7u);
  }
  {
    auto p = svc::parse_open_stream_response(
        svc::encode_open_stream_response({42}));
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->session_id, 42u);
  }
  {
    const auto frame =
        svc::encode_append_timestep_request({42, field_bytes(f)});
    EXPECT_EQ(svc::peek_session_id(frame).value(), 42u);
    auto p = svc::parse_append_timestep_request(frame);
    ASSERT_TRUE(p.ok()) << p.status().str();
    EXPECT_EQ(p->session_id, 42u);
    EXPECT_EQ(0, std::memcmp(p->field.data(), f.data(), p->field.size()));
  }
  {
    auto p = svc::parse_append_timestep_response(
        svc::encode_append_timestep_response({3, true, 0.25, 999}));
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->timestep, 3u);
    EXPECT_TRUE(p->residual);
    EXPECT_DOUBLE_EQ(p->abs_eb, 0.25);
    EXPECT_EQ(p->stored_bytes, 999u);
  }
  {
    const auto frame = svc::encode_read_timestep_request({42, 5});
    EXPECT_EQ(svc::peek_session_id(frame).value(), 42u);
    auto p = svc::parse_read_timestep_request(frame);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->timestep, 5u);
  }
  {
    auto p = svc::parse_read_timestep_response(
        svc::encode_read_timestep_response({f.dims(), field_bytes(f)}));
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->dims, f.dims());
  }
  {
    const auto frame = svc::encode_close_stream_request({42});
    EXPECT_EQ(svc::peek_session_id(frame).value(), 42u);
    ASSERT_TRUE(svc::parse_close_stream_request(frame).ok());
  }
  {
    const std::vector<std::uint8_t> artifact{1, 2, 3};
    // Keep the frame alive: the parsed artifact span aliases it.
    const auto frame = svc::encode_close_stream_response({9, artifact});
    auto p = svc::parse_close_stream_response(frame);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->timesteps, 9u);
    EXPECT_EQ(std::vector<std::uint8_t>(p->artifact.begin(),
                                        p->artifact.end()),
              artifact);
  }
  // peek_session_id refuses non-session ops.
  EXPECT_EQ(svc::peek_session_id(svc::encode_stats_request()).status().code,
            ErrCode::kBadHeader);
}

// --------------------------------------------------------- lifecycle ----

/// The core lifecycle: open, append a handful of advected timesteps, read
/// them all back within the bound, close — and the returned artifact is
/// byte-identical to one built locally with TemporalWriter under the same
/// knobs, proving the service adds no hidden state to the format.
TEST(SessionLifecycle, AppendReadCloseMatchesLocalWriterByteForByte) {
  svc::Server server(server_options());
  const Field f0 = frame_at(0);
  const auto id = open_session(server, open_request(f0));
  ASSERT_NE(id, 0u);

  temporal::TemporalWriter::Options wopt;
  wopt.inner = "SZ2.1";
  wopt.gop = 4;
  temporal::TemporalWriter local(f0.dims(), ErrorBound::Abs(1e-3), wopt);

  constexpr std::size_t kSteps = 9;
  bool saw_residual = false;
  for (std::size_t t = 0; t < kSteps; ++t) {
    const Field f = frame_at(t);
    const auto resp = server.handle_frame(
        svc::encode_append_timestep_request({id, field_bytes(f)}));
    auto parsed = svc::parse_append_timestep_response(resp);
    ASSERT_TRUE(parsed.ok()) << "t=" << t << ": " << parsed.status().str();
    EXPECT_EQ(parsed->timestep, t);
    EXPECT_DOUBLE_EQ(parsed->abs_eb, 1e-3);
    saw_residual = saw_residual || parsed->residual;

    const auto want = local.append(f);
    EXPECT_EQ(parsed->residual, want.mode == temporal::kModeResidual)
        << "t=" << t;
    EXPECT_EQ(parsed->stored_bytes, want.stored_bytes) << "t=" << t;
  }
  EXPECT_TRUE(saw_residual) << "advected data never chose residual coding";

  for (std::size_t t = 0; t < kSteps; ++t) {
    const auto resp = server.handle_frame(
        svc::encode_read_timestep_request({id, t}));
    auto parsed = svc::parse_read_timestep_response(resp);
    ASSERT_TRUE(parsed.ok()) << "t=" << t << ": " << parsed.status().str();
    const Field f = frame_at(t);
    ASSERT_EQ(parsed->dims, f.dims());
    std::vector<float> recon(parsed->dims.total());
    std::memcpy(recon.data(), parsed->field.data(), parsed->field.size());
    EXPECT_LE(metrics::max_abs_err(f.values(), recon), 1e-3 * (1 + 1e-9))
        << "t=" << t;
  }

  const auto resp =
      server.handle_frame(svc::encode_close_stream_request({id}));
  auto closed = svc::parse_close_stream_response(resp);
  ASSERT_TRUE(closed.ok()) << closed.status().str();
  EXPECT_EQ(closed->timesteps, kSteps);
  const auto local_artifact = local.bytes();
  ASSERT_EQ(closed->artifact.size(), local_artifact.size());
  EXPECT_EQ(0, std::memcmp(closed->artifact.data(), local_artifact.data(),
                           local_artifact.size()))
      << "service artifact diverged from the local TemporalWriter";
}

TEST(SessionLifecycle, UnknownClosedAndDoubleCloseAreKNoSession) {
  svc::Server server(server_options());
  // Never-issued id.
  EXPECT_EQ(error_code_of(server.handle_frame(
                svc::encode_read_timestep_request({777, 0}))),
            ErrCode::kNoSession);

  const Field f0 = frame_at(0);
  const auto id = open_session(server, open_request(f0));
  ASSERT_TRUE(svc::parse_append_timestep_response(
                  server.handle_frame(svc::encode_append_timestep_request(
                      {id, field_bytes(f0)})))
                  .ok());
  ASSERT_TRUE(svc::parse_close_stream_response(
                  server.handle_frame(svc::encode_close_stream_request({id})))
                  .ok());
  // Every op on the closed id, including a second close, is kNoSession.
  EXPECT_EQ(error_code_of(server.handle_frame(
                svc::encode_append_timestep_request({id, field_bytes(f0)}))),
            ErrCode::kNoSession);
  EXPECT_EQ(error_code_of(server.handle_frame(
                svc::encode_read_timestep_request({id, 0}))),
            ErrCode::kNoSession);
  EXPECT_EQ(error_code_of(server.handle_frame(
                svc::encode_close_stream_request({id}))),
            ErrCode::kNoSession);
}

TEST(SessionLifecycle, BadOpensAndAppendsAreTypedErrors) {
  svc::Server server(server_options());
  const Field f0 = frame_at(0);
  {
    auto req = open_request(f0);
    req.codec = "no-such-codec";
    EXPECT_EQ(error_code_of(server.handle_frame(
                  svc::encode_open_stream_request(req))),
              ErrCode::kUnsupported);
  }
  {
    auto req = open_request(f0);
    req.eb = ErrorBound::Abs(0.0);  // unusable bound
    EXPECT_EQ(error_code_of(server.handle_frame(
                  svc::encode_open_stream_request(req))),
              ErrCode::kInvalidArgument);
  }
  {
    const auto id = open_session(server, open_request(f0));
    // Right float count discipline, wrong dims total.
    const std::vector<std::uint8_t> short_field(f0.size() * 4 - 4, 0);
    EXPECT_EQ(error_code_of(server.handle_frame(
                  svc::encode_append_timestep_request({id, short_field}))),
              ErrCode::kInvalidArgument);
    // Out-of-range read on a live session.
    (void)server.handle_frame(
        svc::encode_append_timestep_request({id, field_bytes(f0)}));
    EXPECT_EQ(error_code_of(server.handle_frame(
                  svc::encode_read_timestep_request({id, 99}))),
              ErrCode::kInvalidArgument);
  }
}

TEST(SessionLifecycle, SessionCapAnswersOverloaded) {
  auto so = server_options();
  so.max_sessions = 2;
  svc::Server server(so);
  const Field f0 = frame_at(0);
  ASSERT_NE(open_session(server, open_request(f0)), 0u);
  const auto second = open_session(server, open_request(f0));
  ASSERT_NE(second, 0u);
  EXPECT_EQ(error_code_of(server.handle_frame(
                svc::encode_open_stream_request(open_request(f0)))),
            ErrCode::kOverloaded);
  // Closing one admits the next open.
  ASSERT_TRUE(svc::parse_close_stream_response(
                  server.handle_frame(
                      svc::encode_close_stream_request({second})))
                  .ok());
  EXPECT_NE(open_session(server, open_request(f0)), 0u);
}

// ----------------------------------------------------------- reaping ----

TEST(SessionReaping, IdleSessionsAreReapedAndAnswerKNoSession) {
  auto so = server_options();
  so.session_idle_ms = 0;  // everything not mid-op is idle
  svc::Server server(so);
  const Field f0 = frame_at(0);
  const auto id = open_session(server, open_request(f0));
  ASSERT_NE(id, 0u);
  EXPECT_EQ(server.reap_idle_sessions(), 1u);
  EXPECT_EQ(server.reap_idle_sessions(), 0u);  // idempotent
  EXPECT_EQ(error_code_of(server.handle_frame(
                svc::encode_append_timestep_request({id, field_bytes(f0)}))),
            ErrCode::kNoSession);

  auto stats = svc::parse_stats_response(
      server.handle_frame(svc::encode_stats_request()));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->get("sessions_reaped"), 1u);
  EXPECT_EQ(stats->get("sessions_active"), 0u);
}

TEST(SessionReaping, LongIdleWindowKeepsSessionsAlive) {
  auto so = server_options();
  so.session_idle_ms = 60000;
  svc::Server server(so);
  const auto id = open_session(server, open_request(frame_at(0)));
  ASSERT_NE(id, 0u);
  EXPECT_EQ(server.reap_idle_sessions(), 0u);
  EXPECT_TRUE(svc::parse_append_timestep_response(
                  server.handle_frame(svc::encode_append_timestep_request(
                      {id, field_bytes(frame_at(0))})))
                  .ok());
}

// ------------------------------------------------------------- stats ----

TEST(SessionStats, CountersAndRegisteredGaugesReport) {
  svc::Server server(server_options());
  const Field f0 = frame_at(0);
  const auto id = open_session(server, open_request(f0));
  (void)server.handle_frame(
      svc::encode_append_timestep_request({id, field_bytes(f0)}));
  (void)server.handle_frame(svc::encode_read_timestep_request({id, 0}));

  server.register_stats("zz_test", [](svc::StatsResponse& out) {
    out.counters.emplace_back("test_gauge", 123);
  });
  auto stats = svc::parse_stats_response(
      server.handle_frame(svc::encode_stats_request()));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->get("open_stream_requests"), 1u);
  EXPECT_EQ(stats->get("append_timestep_requests"), 1u);
  EXPECT_EQ(stats->get("read_timestep_requests"), 1u);
  EXPECT_EQ(stats->get("sessions_opened"), 1u);
  EXPECT_EQ(stats->get("sessions_active"), 1u);
  EXPECT_EQ(stats->get("session_timesteps_stored"), 1u);
  EXPECT_EQ(stats->get("test_gauge"), 123u);

  server.unregister_stats("zz_test");
  stats = svc::parse_stats_response(
      server.handle_frame(svc::encode_stats_request()));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->get("test_gauge"), 0u);

  (void)server.handle_frame(svc::encode_close_stream_request({id}));
  stats = svc::parse_stats_response(
      server.handle_frame(svc::encode_stats_request()));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->get("sessions_closed"), 1u);
  EXPECT_EQ(stats->get("sessions_active"), 0u);
}

// --------------------------------------------------- submit() ordering ----

/// Pipelined appends through submit() on a multi-thread pool: the per-
/// session tickets must keep timesteps in arrival order even though pool
/// workers complete out of order. Every response's timestep must equal
/// its request index.
TEST(SessionOrdering, PipelinedSubmitsStoreTimestepsInArrivalOrder) {
  svc::Server server(server_options(/*threads=*/4));
  const auto id = open_session(server, open_request(frame_at(0)));
  ASSERT_NE(id, 0u);

  constexpr std::size_t kSteps = 16;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  std::vector<std::vector<std::uint8_t>> responses(kSteps);
  for (std::size_t t = 0; t < kSteps; ++t) {
    const Field f = frame_at(t);
    server.submit(svc::encode_append_timestep_request({id, field_bytes(f)}),
                  [&, t](std::vector<std::uint8_t> resp) {
                    std::lock_guard<std::mutex> lock(mu);
                    responses[t] = std::move(resp);
                    ++done;
                    cv.notify_all();
                  });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == kSteps; });
  }
  for (std::size_t t = 0; t < kSteps; ++t) {
    auto parsed = svc::parse_append_timestep_response(responses[t]);
    ASSERT_TRUE(parsed.ok()) << "t=" << t << ": " << parsed.status().str();
    EXPECT_EQ(parsed->timestep, t)
        << "pipelined appends landed out of arrival order";
  }

  // The stored chain must match a strictly sequential local writer.
  temporal::TemporalWriter::Options wopt;
  wopt.inner = "SZ2.1";
  wopt.gop = 4;
  temporal::TemporalWriter local(frame_at(0).dims(), ErrorBound::Abs(1e-3),
                                 wopt);
  for (std::size_t t = 0; t < kSteps; ++t) (void)local.append(frame_at(t));
  // Bind the response frame: the parsed artifact span aliases it.
  const auto close_resp =
      server.handle_frame(svc::encode_close_stream_request({id}));
  auto closed = svc::parse_close_stream_response(close_resp);
  ASSERT_TRUE(closed.ok()) << closed.status().str();
  const auto local_artifact = local.bytes();
  ASSERT_EQ(closed->artifact.size(), local_artifact.size());
  EXPECT_EQ(0, std::memcmp(closed->artifact.data(), local_artifact.data(),
                           local_artifact.size()));
}

/// A close racing pipelined appends must not wedge the session's ticket
/// chain: ops after the close answer kNoSession, and every submit gets
/// exactly one response.
TEST(SessionOrdering, CloseMidPipelineAnswersRemainderWithKNoSession) {
  svc::Server server(server_options(/*threads=*/4));
  const auto id = open_session(server, open_request(frame_at(0)));
  ASSERT_NE(id, 0u);

  constexpr std::size_t kBefore = 3, kAfter = 3;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  std::vector<std::vector<std::uint8_t>> responses;
  const auto record = [&](std::size_t slot) {
    return [&, slot](std::vector<std::uint8_t> resp) {
      std::lock_guard<std::mutex> lock(mu);
      responses[slot] = std::move(resp);
      ++done;
      cv.notify_all();
    };
  };
  responses.resize(kBefore + 1 + kAfter);
  const Field f0 = frame_at(0);
  std::size_t slot = 0;
  for (std::size_t i = 0; i < kBefore; ++i)
    server.submit(svc::encode_append_timestep_request({id, field_bytes(f0)}),
                  record(slot++));
  server.submit(svc::encode_close_stream_request({id}), record(slot++));
  for (std::size_t i = 0; i < kAfter; ++i)
    server.submit(svc::encode_append_timestep_request({id, field_bytes(f0)}),
                  record(slot++));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == responses.size(); });
  }
  for (std::size_t i = 0; i < kBefore; ++i)
    EXPECT_TRUE(
        svc::parse_append_timestep_response(responses[i]).ok())
        << i;
  EXPECT_TRUE(
      svc::parse_close_stream_response(responses[kBefore]).ok());
  for (std::size_t i = kBefore + 1; i < responses.size(); ++i)
    EXPECT_EQ(error_code_of(responses[i]), ErrCode::kNoSession) << i;
}

// ------------------------------------------- client handle + loopback ----

/// Acceptance criterion: a full stream session over real TCP through the
/// EventServer front end — open, pipelined appends, bounded read-back,
/// close returning an artifact that a local TemporalReader decodes.
TEST(SessionLoopback, FullSessionOverTcpThroughEventServer) {
  svc::Server server(server_options(/*threads=*/2));
  auto bound = svc::TcpListener::bind(0);
  ASSERT_TRUE(bound.ok()) << bound.status().str();
  svc::EventServer events(server, **bound, {});
  std::thread loop([&] { events.run(); });

  {
    auto transport = svc::TcpTransport::connect("127.0.0.1",
                                                (*bound)->port());
    ASSERT_TRUE(transport.ok()) << transport.status().str();
    svc::Client client(**transport);

    const Field f0 = frame_at(0);
    auto stream = client.open_stream("SZ2.1", f0.dims(),
                                     ErrorBound::Abs(1e-3), /*gop=*/4);
    ASSERT_TRUE(stream.ok()) << stream.status().str();

    constexpr std::size_t kSteps = 6;
    for (std::size_t t = 0; t < kSteps; ++t) {
      auto info = stream->append(frame_at(t));
      ASSERT_TRUE(info.ok()) << "t=" << t << ": " << info.status().str();
      EXPECT_EQ(info->timestep, t);
    }
    for (std::size_t t = 0; t < kSteps; ++t) {
      auto recon = stream->read_timestep(t);
      ASSERT_TRUE(recon.ok()) << "t=" << t << ": " << recon.status().str();
      EXPECT_LE(metrics::max_abs_err(frame_at(t).values(),
                                     recon->values()),
                1e-3 * (1 + 1e-9))
          << "t=" << t;
    }
    auto artifact = stream->close();
    ASSERT_TRUE(artifact.ok()) << artifact.status().str();
    EXPECT_FALSE(stream->open());

    // The wire artifact is a complete AETC stream a local reader decodes.
    auto reader = temporal::TemporalReader::open(*artifact);
    ASSERT_TRUE(reader.ok()) << reader.status().str();
    EXPECT_EQ((*reader)->timesteps(), kSteps);
    for (std::size_t t = 0; t < kSteps; ++t) {
      auto recon = (*reader)->read(t);
      ASSERT_TRUE(recon.ok()) << recon.status().str();
      EXPECT_LE(metrics::max_abs_err(frame_at(t).values(),
                                     recon->values()),
                1e-3 * (1 + 1e-9));
    }

    // Post-close use of the handle is a local typed error, no round trip.
    EXPECT_EQ(stream->append(f0).status().code, ErrCode::kNoSession);
    (*transport)->shutdown();
  }
  events.stop();
  loop.join();
}

/// The RAII contract: dropping an un-closed handle closes the server-side
/// session (best effort), so abandoned streams do not wait for the reaper.
TEST(SessionClientHandle, DestructorClosesAbandonedSession) {
  svc::Server server(server_options());
  auto [client_end, server_end] = svc::PipeTransport::make_pair();
  std::thread session([&server, &t = *server_end] { server.serve(t); });
  {
    svc::Client client(*client_end);
    const Field f0 = frame_at(0);
    auto stream = client.open_stream("SZ2.1", f0.dims(),
                                     ErrorBound::Abs(1e-3));
    ASSERT_TRUE(stream.ok()) << stream.status().str();
    ASSERT_TRUE(stream->append(f0).ok());
    // `stream` destructs here, still open -> best-effort close round trip.
  }
  auto direct = svc::parse_stats_response(
      server.handle_frame(svc::encode_stats_request()));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->get("sessions_active"), 0u);
  EXPECT_EQ(direct->get("sessions_closed"), 1u);
  client_end->shutdown();
  session.join();
}

/// parallel:AE-SZ as the session's inner codec: the per-element bound
/// must hold through the pipelined container exactly as it does locally
/// (acceptance: bounds across >= 2 inner codecs incl. parallel:AE-SZ —
/// the others run in temporal_test.cpp).
TEST(SessionCodecs, ParallelAeszSessionHoldsTheBound) {
  svc::Server server(server_options(/*threads=*/2));
  const Field f0 = frame_at(0);
  svc::OpenStreamRequest req;
  req.codec = "parallel:AE-SZ";
  req.eb = ErrorBound::Abs(1e-2);
  req.dims = f0.dims();
  req.gop = 3;
  const auto id = open_session(server, req);
  ASSERT_NE(id, 0u);
  constexpr std::size_t kSteps = 5;
  for (std::size_t t = 0; t < kSteps; ++t) {
    const Field f = frame_at(t);
    auto parsed = svc::parse_append_timestep_response(server.handle_frame(
        svc::encode_append_timestep_request({id, field_bytes(f)})));
    ASSERT_TRUE(parsed.ok()) << "t=" << t << ": " << parsed.status().str();
  }
  for (std::size_t t = 0; t < kSteps; ++t) {
    // Bind the response frame: the parsed field span aliases it.
    const auto resp =
        server.handle_frame(svc::encode_read_timestep_request({id, t}));
    auto parsed = svc::parse_read_timestep_response(resp);
    ASSERT_TRUE(parsed.ok()) << "t=" << t << ": " << parsed.status().str();
    std::vector<float> recon(parsed->dims.total());
    std::memcpy(recon.data(), parsed->field.data(), parsed->field.size());
    EXPECT_LE(metrics::max_abs_err(frame_at(t).values(), recon),
              1e-2 * (1 + 1e-6))
        << "t=" << t;
  }
}

}  // namespace
}  // namespace aesz
