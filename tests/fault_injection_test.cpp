// Deterministic fault-injection suite: the robustness acceptance gate.
//
// Every fault here is a pure function of a seed or a byte offset, so a
// failure reproduces exactly — no flaky-rerun archaeology. Four layers of
// the integrity story are exercised end to end:
//
//   1. Wire integrity: frame-CRC trailers catch every single-bit flip a
//      FaultyTransport injects, as a typed kChecksumMismatch that leaves
//      the connection synchronized (the event server answers an error
//      frame and keeps serving).
//   2. Format integrity: a full single-bit-flip sweep over every sealed
//      artifact format (v3 codec stream, AEPC container, AETC temporal
//      stream, AEPR progressive stream) decodes to a typed error or an
//      intact result — never a crash (this file runs under ASan/UBSan in
//      CI, which is where "no OOB read" is actually enforced).
//   3. Client resilience: retry with backoff + reconnect survives a
//      server kill/restart and a lossy link; deadlines and recv timeouts
//      turn hangs into typed kTimeout.
//   4. Crash consistency: a TemporalWriter append torn at EVERY byte
//      offset (FaultyFile) recovers to exactly the fully-committed
//      records, and the re-opened stream accepts further appends.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/synth.hpp"
#include "obs/log.hpp"
#include "pipeline/parallel_compressor.hpp"
#include "predictors/registry.hpp"
#include "metrics/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/container.hpp"
#include "progressive/aepr.hpp"
#include "progressive/progressive.hpp"
#include "service/client.hpp"
#include "service/event_loop.hpp"
#include "service/fault.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "temporal/aetc.hpp"
#include "temporal/temporal.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"

namespace aesz {
namespace {

namespace svc = ::aesz::service;

Field small_field(double tphase = 0.0) {
  return synth::value_noise_2d(8, 10, 2, 3.0, /*seed=*/71, tphase);
}

std::span<const std::uint8_t> field_bytes(const Field& f) {
  const auto v = f.values();
  return {reinterpret_cast<const std::uint8_t*>(v.data()),
          v.size() * sizeof(float)};
}

std::vector<std::uint8_t> small_compress_frame() {
  const Field f = small_field();
  svc::CompressRequest req;
  req.codec = "SZ2.1";
  req.eb = ErrorBound::Abs(1e-2);
  req.dims = f.dims();
  req.field = field_bytes(f);
  return svc::encode_compress_request(req);
}

/// The exact wire image PipeTransport/TcpTransport emit for `frame`:
/// u32 LE length prefix (bit 31 = CRC flag), body, optional CRC trailer.
std::vector<std::uint8_t> wire_image(std::span<const std::uint8_t> frame,
                                     bool with_crc) {
  std::uint32_t len = static_cast<std::uint32_t>(frame.size());
  if (with_crc) len |= svc::kFrameCrcFlag;
  std::vector<std::uint8_t> wire(4 + frame.size() +
                                 (with_crc ? svc::kFrameCrcBytes : 0));
  std::memcpy(wire.data(), &len, 4);
  std::memcpy(wire.data() + 4, frame.data(), frame.size());
  if (with_crc) {
    const std::uint32_t crc = util::crc32c(frame);
    std::memcpy(wire.data() + 4 + frame.size(), &crc, svc::kFrameCrcBytes);
  }
  return wire;
}

/// Server + event loop on a background thread, stopped on destruction.
struct EventHarness {
  svc::Server server;
  std::unique_ptr<svc::TcpListener> listener;
  std::unique_ptr<svc::EventServer> events;
  std::thread loop;

  explicit EventHarness(svc::EventServer::Options ev = {},
                        svc::Server::Options so = {})
      : server(so) {
    auto bound = svc::TcpListener::bind(0);
    EXPECT_TRUE(bound.ok());
    listener = std::move(*bound);
    events = std::make_unique<svc::EventServer>(server, *listener, ev);
    loop = std::thread([this] { events->run(); });
  }
  ~EventHarness() {
    events->stop();
    loop.join();
  }
  std::unique_ptr<svc::TcpTransport> connect() {
    auto t = svc::TcpTransport::connect("127.0.0.1", listener->port());
    EXPECT_TRUE(t.ok());
    return std::move(*t);
  }
};

// ------------------------------------------------- fault primitives ----

TEST(FaultyFile, TearsExactlyAtBudgetAndKeepsLeadingBytes) {
  svc::FaultyFile f(6);
  const std::vector<std::uint8_t> a{1, 2, 3, 4};
  const std::vector<std::uint8_t> b{5, 6, 7, 8};
  EXPECT_TRUE(f.write(a));
  EXPECT_TRUE(f.sync());
  // The boundary write is SHORT: 2 of 4 bytes land — the torn-append
  // shape a kill -9 mid-write leaves behind.
  EXPECT_FALSE(f.write(b));
  EXPECT_TRUE(f.torn());
  EXPECT_FALSE(f.sync());
  EXPECT_EQ(f.bytes(), (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6}));
  // Nothing further lands after the tear.
  EXPECT_FALSE(f.write(a));
  EXPECT_EQ(f.bytes().size(), 6u);
}

TEST(FaultyTransport, SameSeedSameFaultSchedule) {
  const auto run = [](std::uint64_t seed) {
    auto [a, b] = svc::PipeTransport::make_pair();
    a->set_frame_crc(true);
    svc::FaultyTransport::Options opt;
    opt.seed = seed;
    // No resets here: a reset kills the transport and would cut the
    // schedule short (its permanence has its own test below).
    opt.drop_rate = 0.3;
    opt.flip_rate = 0.3;
    svc::FaultyTransport faulty(std::move(a), opt);
    const auto frame = svc::encode_stats_request();
    for (int i = 0; i < 60; ++i) (void)faulty.send_frame(frame);
    b->shutdown();
    return faulty.stats();
  };
  const auto s1 = run(42), s2 = run(42), s3 = run(43);
  EXPECT_EQ(s1.dropped, s2.dropped);
  EXPECT_EQ(s1.flipped, s2.flipped);
  EXPECT_EQ(s1.reset, s2.reset);
  EXPECT_EQ(s1.sends, s2.sends);
  // The schedule did inject something worth testing.
  EXPECT_GT(s1.dropped, 0u);
  EXPECT_GT(s1.flipped, 0u);
  // A different seed is a different schedule (all three equal would mean
  // the seed is ignored).
  EXPECT_TRUE(s1.dropped != s3.dropped || s1.flipped != s3.flipped ||
              s1.reset != s3.reset);
}

TEST(FaultyTransport, ResetIsPermanentAndUnblocksPeer) {
  auto [a, b] = svc::PipeTransport::make_pair();
  svc::FaultyTransport::Options opt;
  opt.reset_rate = 1.0;
  svc::FaultyTransport faulty(std::move(a), opt);
  const auto frame = svc::encode_stats_request();
  auto st = faulty.send_frame(frame);
  EXPECT_EQ(st.code, ErrCode::kIoError);
  // The peer sees the connection die instead of blocking forever.
  auto r = b->recv_frame();
  EXPECT_FALSE(r.ok());
  // And the transport stays dead, like a real RST.
  EXPECT_EQ(faulty.send_frame(frame).code, ErrCode::kIoError);
  EXPECT_FALSE(faulty.recv_frame().ok());
  EXPECT_EQ(faulty.stats().reset, 1u);
}

// ---------------------------------------------------- wire integrity ----

TEST(FrameCrc, FlippedBitIsCaughtAsChecksumMismatch) {
  auto [a, b] = svc::PipeTransport::make_pair();
  a->set_frame_crc(true);
  svc::FaultyTransport::Options opt;
  opt.seed = 7;
  opt.flip_rate = 1.0;
  svc::FaultyTransport faulty(std::move(a), opt);
  ASSERT_TRUE(faulty.send_frame(svc::encode_stats_request()).ok());
  EXPECT_EQ(faulty.stats().flipped, 1u);
  auto r = b->recv_frame();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code, ErrCode::kChecksumMismatch);
}

TEST(FrameCrc, ReceiverTurnsStickyAndEchoesTrailers) {
  auto [a, b] = svc::PipeTransport::make_pair();
  a->set_frame_crc(true);
  EXPECT_FALSE(b->frame_crc());
  const auto req = svc::encode_stats_request();
  ASSERT_TRUE(a->send_frame(req).ok());
  auto got = b->recv_frame();
  ASSERT_TRUE(got.ok()) << got.status().str();
  EXPECT_EQ(*got, req);
  // One checksummed frame received -> this end now checksums its sends,
  // so a raw-transport server echoes trailers with no caller bookkeeping.
  EXPECT_TRUE(b->frame_crc());
  ASSERT_TRUE(b->send_frame(req).ok());
  auto back = a->recv_frame();
  ASSERT_TRUE(back.ok()) << back.status().str();
  EXPECT_EQ(*back, req);
}

/// Exhaustive wire sweep: every single-bit flip of a checksummed wire
/// image must surface as a typed error — or, when the flip lands in the
/// prefix/trailer and the BODY still arrives whole, as the intact body.
/// Body-region flips specifically must be kChecksumMismatch: that is the
/// trailer's whole job.
void sweep_wire(std::span<const std::uint8_t> frame) {
  const auto wire = wire_image(frame, /*with_crc=*/true);
  const std::size_t body_begin = 4 * 8;
  const std::size_t body_end = (4 + frame.size()) * 8;
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    auto damaged = wire;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    auto [a, b] = svc::PipeTransport::make_pair();
    a->send_raw(damaged);
    a->shutdown();  // a short read must end in EOF, not a hang
    auto r = b->recv_frame();
    if (bit >= body_begin && bit < body_end) {
      ASSERT_FALSE(r.ok()) << "body bit " << bit << " went unnoticed";
      EXPECT_EQ(r.status().code, ErrCode::kChecksumMismatch)
          << "body bit " << bit;
    } else if (r.ok()) {
      // Flip landed in prefix or trailer; if the frame was accepted at
      // all, the delivered body must be byte-identical to the original.
      EXPECT_EQ(std::span<const std::uint8_t>(*r).size(), frame.size())
          << "prefix/trailer bit " << bit;
      EXPECT_EQ(0, std::memcmp(r->data(), frame.data(), frame.size()))
          << "prefix/trailer bit " << bit;
    }
    // !r.ok() outside the body region is fine: kCorruptStream (hostile
    // length), kIoError (EOF mid-frame), kChecksumMismatch (trailer bit).
  }
}

TEST(FrameCrc, EveryWireBitFlipIsTypedOrIntactSmallFrame) {
  sweep_wire(svc::encode_stats_request());
}

TEST(FrameCrc, EveryWireBitFlipIsTypedOrIntactCompressFrame) {
  sweep_wire(small_compress_frame());
}

TEST(FrameCrc, EventServerAnswersMismatchAndConnectionSurvives) {
  EventHarness h;
  auto t = h.connect();
  ASSERT_TRUE(t != nullptr);
  t->set_frame_crc(true);

  // Hand-corrupt a checksummed request ON THE WIRE (past the transport's
  // own CRC computation) and ship it raw.
  const auto req = svc::encode_stats_request();
  auto wire = wire_image(req, /*with_crc=*/true);
  wire[4] ^= 0x40;  // one bit of the body
  ASSERT_TRUE(t->send_raw(wire).ok());
  auto r1 = t->recv_frame();
  ASSERT_TRUE(r1.ok()) << r1.status().str();
  auto err = svc::parse_error_response(*r1);
  ASSERT_TRUE(err.ok()) << err.status().str();
  EXPECT_EQ(err->code, ErrCode::kChecksumMismatch);

  // The length prefix was intact, so the stream is still synchronized:
  // the SAME connection serves the next (clean) request.
  ASSERT_TRUE(t->send_frame(req).ok());
  auto r2 = t->recv_frame();
  ASSERT_TRUE(r2.ok()) << r2.status().str();
  auto stats = svc::parse_stats_response(*r2);
  ASSERT_TRUE(stats.ok()) << stats.status().str();
  t->shutdown();
}

TEST(FrameCrc, ClientRoundTripsWithChecksummedFramesOverEventServer) {
  EventHarness h;
  auto t = h.connect();
  ASSERT_TRUE(t != nullptr);
  svc::Client client(*t);
  client.set_frame_crc(true);
  const Field f = small_field();
  auto compressed = client.compress("SZ2.1", f, ErrorBound::Abs(1e-2));
  ASSERT_TRUE(compressed.ok()) << compressed.status().str();
  auto recon = client.decompress(compressed->stream, "SZ2.1");
  ASSERT_TRUE(recon.ok()) << recon.status().str();
  EXPECT_LE(metrics::max_abs_err(f.values(), recon->values()),
            1e-2 * (1 + 1e-9));
  t->shutdown();
}

// -------------------------------------------------- format integrity ----

/// Run `probe` against every single-bit flip of `artifact`. The probe
/// must return a typed verdict (ok or error) without crashing; the sweep
/// additionally asserts the checksums actually fire somewhere.
template <typename Probe>
void sweep_artifact(std::span<const std::uint8_t> artifact, Probe&& probe,
                    std::size_t* mismatches_out = nullptr) {
  std::size_t mismatches = 0;
  for (std::size_t bit = 0; bit < artifact.size() * 8; ++bit) {
    std::vector<std::uint8_t> damaged(artifact.begin(), artifact.end());
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      if (probe(damaged) == ErrCode::kChecksumMismatch) ++mismatches;
    } catch (const Error& e) {
      // A thrown aesz::Error is still a typed verdict, not a crash.
      if (e.code() == ErrCode::kChecksumMismatch) ++mismatches;
    }
  }
  EXPECT_GT(mismatches, 0u) << "no flip ever tripped a checksum";
  if (mismatches_out) *mismatches_out = mismatches;
}

constexpr ErrCode kFlipSurvived = ErrCode::kOk;

TEST(FormatBitFlips, SealedCodecStreamCatchesEveryFlip) {
  auto codec = CodecRegistry::instance().create("SZ2.1", 2).value();
  const Field f = small_field();
  const auto stream = codec->compress(f, ErrorBound::Abs(1e-2));
  std::size_t mismatches = 0;
  std::size_t undetected = 0;
  sweep_artifact(
      stream,
      [&](std::span<const std::uint8_t> damaged) {
        auto r = codec->decompress(damaged);
        if (r.ok()) ++undetected;
        return r.ok() ? kFlipSurvived : r.status().code;
      },
      &mismatches);
  // The v3 whole-payload CRC covers everything past the fixed header, and
  // header flips hit magic/version/CRC-field checks: NO single-bit flip
  // of a sealed stream may decode successfully.
  EXPECT_EQ(undetected, 0u);
  // Most of the stream is CRC-covered payload.
  EXPECT_GT(mismatches, stream.size() * 8 / 2);
}

TEST(FormatBitFlips, ContainerParseIsTypedOrIntact) {
  // A real AEPC container: the chunked (parallel) compressor's output.
  pipeline::ParallelCompressor::Options popt;
  popt.inner = "SZ2.1";
  popt.threads = 1;
  popt.chunk_rows = 4;  // several chunks -> several table CRCs
  pipeline::ParallelCompressor chunked(popt, /*rank_hint=*/2);
  const Field f = synth::value_noise_2d(16, 10, 2, 3.0, 71, 0.0);
  const auto artifact = chunked.compress(f, ErrorBound::Abs(1e-2));
  ASSERT_TRUE(pipeline::is_container(artifact));

  sweep_artifact(artifact, [&](std::span<const std::uint8_t> damaged) {
    auto info = pipeline::read_container(damaged);
    return info.ok() ? kFlipSurvived : info.status().code;
  });
}

TEST(FormatBitFlips, TemporalStreamIsTypedOrIntact) {
  temporal::TemporalWriter::Options opt;
  opt.gop = 4;
  temporal::TemporalWriter w(Dims(8, 10), ErrorBound::Abs(1e-2), opt);
  for (int t = 0; t < 3; ++t)
    w.append(small_field(0.08 * static_cast<double>(t)));
  const auto artifact = w.bytes();

  sweep_artifact(artifact, [&](std::span<const std::uint8_t> damaged) {
    auto info = temporal::read_stream(damaged);
    if (!info.ok()) return info.status().code;
    // Header bits (dims/eb/gop are not CRC-covered) can flip without
    // breaking the parse; decoding must still end in a typed verdict.
    auto reader = temporal::TemporalReader::open(damaged);
    if (!reader.ok()) return reader.status().code;
    auto last = (*reader)->read(info->records.size() - 1);
    return last.ok() ? kFlipSurvived : last.status().code;
  });
}

TEST(FormatBitFlips, ProgressiveStreamIsTypedOrIntact) {
  progressive::ProgressiveWriter::Options opt;
  opt.layers = 3;
  progressive::ProgressiveWriter w(opt);
  const Field f = small_field();
  const auto artifact = w.encode(f, ErrorBound::Abs(1e-2));

  sweep_artifact(artifact, [&](std::span<const std::uint8_t> damaged) {
    auto info = progressive::read_stream(damaged);
    if (!info.ok()) return info.status().code;
    auto reader = progressive::ProgressiveReader::open(damaged);
    if (!reader.ok()) return reader.status().code;
    auto full = (*reader)->read(info->layers.size() - 1);
    return full.ok() ? kFlipSurvived : full.status().code;
  });
}

// ------------------------------------------------------ deadlines ----

TEST(Deadline, ExpiredQueueWaitAnswersTypedTimeout) {
  svc::Server server({1, "", ""});
  const auto inner = svc::encode_list_codecs_request();
  const auto env = svc::encode_deadline_request({/*deadline_ms=*/5, inner});

  // Simulate a request that sat in the queue past its budget: a trace
  // admitted 50 ms ago (submit() stamps admit_ns the same way).
  obs::RequestTrace t;
  t.admit_ns = obs::monotonic_ns() - 50'000'000ull;
  {
    obs::TraceScope scope(&t);
    auto err = svc::parse_error_response(server.handle_frame(env));
    ASSERT_TRUE(err.ok()) << err.status().str();
    EXPECT_EQ(err->code, ErrCode::kTimeout);
  }

  // The same envelope with headroom unwraps and serves the inner request.
  auto ok = svc::parse_list_codecs_response(server.handle_frame(
      svc::encode_deadline_request({/*deadline_ms=*/60'000, inner})));
  ASSERT_TRUE(ok.ok()) << ok.status().str();
  EXPECT_FALSE(ok->empty());

  // And deadline 0 means "no budget".
  auto unbounded = svc::parse_list_codecs_response(
      server.handle_frame(svc::encode_deadline_request({0, inner})));
  ASSERT_TRUE(unbounded.ok()) << unbounded.status().str();

  EXPECT_EQ(server.snapshot().get("deadline_requests"), 3u);
  EXPECT_EQ(server.snapshot().get("timeout_responses"), 1u);
}

TEST(Deadline, NestedEnvelopeAndResponseOpsAreRejected) {
  svc::Server server({1, "", ""});
  const auto inner = svc::encode_list_codecs_request();
  const auto env = svc::encode_deadline_request({10, inner});
  auto nested = svc::parse_error_response(
      server.handle_frame(svc::encode_deadline_request({10, env})));
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->code, ErrCode::kBadHeader);

  const auto resp = svc::encode_error_response({ErrCode::kInternal, "x"});
  auto wrapped = svc::parse_error_response(
      server.handle_frame(svc::encode_deadline_request({10, resp})));
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(wrapped->code, ErrCode::kBadHeader);
}

TEST(Deadline, ClientDeadlineEnvelopePassesThroughServer) {
  auto [client_end, server_end] = svc::PipeTransport::make_pair();
  svc::Server server({1, "", ""});
  std::thread session([&server, &t = *server_end] { server.serve(t); });
  svc::Client client(*client_end);
  client.set_deadline_ms(60'000);  // generous: proves the envelope path
  const Field f = small_field();
  auto compressed = client.compress("SZ2.1", f, ErrorBound::Abs(1e-2));
  ASSERT_TRUE(compressed.ok()) << compressed.status().str();
  auto codecs = client.list_codecs();
  ASSERT_TRUE(codecs.ok()) << codecs.status().str();
  client_end->shutdown();
  session.join();
  EXPECT_EQ(server.snapshot().get("deadline_requests"), 2u);
}

// ------------------------------------------------- client resilience ----

TEST(Retry, BackoffDoublesJittersAndCaps) {
  svc::RetryPolicy p;
  p.base_delay_ms = 10;
  p.max_delay_ms = 100;
  p.jitter = 0.0;
  EXPECT_EQ(p.delay_ms(1), 10u);
  EXPECT_EQ(p.delay_ms(2), 20u);
  EXPECT_EQ(p.delay_ms(3), 40u);
  EXPECT_EQ(p.delay_ms(5), 100u);   // capped
  EXPECT_EQ(p.delay_ms(60), 100u);  // shift overflow guarded, still capped

  p.jitter = 0.25;
  for (std::size_t attempt = 1; attempt <= 3; ++attempt) {
    const auto d = p.delay_ms(attempt);
    const double nominal = 10.0 * static_cast<double>(1u << (attempt - 1));
    EXPECT_GE(d, static_cast<std::uint64_t>(nominal * 0.75) - 1);
    EXPECT_LE(d, static_cast<std::uint64_t>(nominal * 1.25) + 1);
    // Same policy, same attempt -> same jitter: deterministic schedules.
    EXPECT_EQ(d, p.delay_ms(attempt));
  }
  svc::RetryPolicy q = p;
  q.seed = p.seed + 1;
  bool differs = false;
  for (std::size_t attempt = 1; attempt <= 8 && !differs; ++attempt)
    differs = q.delay_ms(attempt) != p.delay_ms(attempt);
  EXPECT_TRUE(differs) << "jitter ignores the seed";
}

TEST(Retry, OnlyTransientFailuresRetryAndAttemptsAreCounted) {
  svc::RetryPolicy p;
  p.max_attempts = 4;
  std::vector<std::uint64_t> slept;
  const svc::SleepFn fake_sleep = [&](std::uint64_t ms) {
    slept.push_back(ms);
  };

  // Transient failure heals on the third try.
  int calls = 0;
  auto healed = svc::with_retry(
      p,
      [&]() -> Status {
        return ++calls < 3 ? Status::error(ErrCode::kIoError, "flaky")
                           : Status();
      },
      nullptr, fake_sleep);
  EXPECT_TRUE(healed.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(slept.size(), 2u);

  // Non-retryable failures return immediately: no sleeps, one call.
  calls = 0;
  slept.clear();
  auto fatal = svc::with_retry(
      p,
      [&]() -> Status {
        ++calls;
        return Status::error(ErrCode::kInvalidArgument, "bad codec");
      },
      nullptr, fake_sleep);
  EXPECT_EQ(fatal.code, ErrCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());

  // Exhaustion returns the last failure verbatim after max_attempts.
  calls = 0;
  int retries_seen = 0;
  auto exhausted = svc::with_retry(
      p,
      [&]() -> Expected<int> {
        ++calls;
        return Status::error(ErrCode::kTimeout, "still waiting");
      },
      [&](const Status& failure) {
        ++retries_seen;
        EXPECT_EQ(failure.code, ErrCode::kTimeout);
      },
      fake_sleep);
  EXPECT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code, ErrCode::kTimeout);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(retries_seen, 3);

  // A wire-corruption verdict is transient too (the stream stayed
  // frame-synchronized, a resend is safe).
  EXPECT_TRUE(p.retryable(ErrCode::kChecksumMismatch));
  EXPECT_TRUE(p.retryable(ErrCode::kOverloaded));
  EXPECT_FALSE(p.retryable(ErrCode::kBadMagic));
}

TEST(Retry, ClientSurvivesServerKillAndRestart) {
  std::atomic<std::uint16_t> port{0};
  auto h1 = std::make_unique<EventHarness>();
  port.store(h1->listener->port());

  auto t = svc::TcpTransport::connect("127.0.0.1", port.load());
  ASSERT_TRUE(t.ok()) << t.status().str();
  svc::Client client(**t);
  svc::RetryPolicy policy;
  policy.max_attempts = 5;
  client.set_retry(
      policy,
      [&]() -> Expected<std::unique_ptr<svc::Transport>> {
        auto fresh = svc::TcpTransport::connect("127.0.0.1", port.load());
        if (!fresh.ok()) return fresh.status();
        return std::unique_ptr<svc::Transport>(std::move(*fresh));
      },
      [](std::uint64_t) {});  // no wall-clock waits in the schedule

  auto before = client.list_codecs();
  ASSERT_TRUE(before.ok()) << before.status().str();

  // Kill the server, restart on a NEW port (the old one is gone for
  // real), and the same client call succeeds via retry + reconnect.
  h1.reset();
  EventHarness h2;
  port.store(h2.listener->port());
  auto after = client.list_codecs();
  ASSERT_TRUE(after.ok()) << after.status().str();
  EXPECT_EQ(before->size(), after->size());
}

TEST(Retry, LossyLinkWithChecksumsEventuallyServesEveryRequest) {
  EventHarness h;
  const std::uint16_t port = h.listener->port();
  std::uint64_t next_seed = 1000;
  std::uint64_t total_faults = 0;
  const svc::FaultyTransport* live = nullptr;

  const auto make_faulty =
      [&]() -> Expected<std::unique_ptr<svc::Transport>> {
    auto tcp = svc::TcpTransport::connect("127.0.0.1", port);
    if (!tcp.ok()) return tcp.status();
    // A dropped frame would otherwise hang the response read forever;
    // the recv timeout turns it into a typed, retryable kTimeout.
    (*tcp)->set_recv_timeout_ms(200);
    svc::FaultyTransport::Options opt;
    opt.seed = next_seed++;
    opt.drop_rate = 0.25;
    opt.flip_rate = 0.15;
    opt.reset_rate = 0.05;
    auto faulty =
        std::make_unique<svc::FaultyTransport>(std::move(*tcp), opt);
    if (live != nullptr) {
      total_faults += live->stats().dropped + live->stats().flipped +
                      live->stats().reset;
    }
    live = faulty.get();
    return std::unique_ptr<svc::Transport>(std::move(faulty));
  };

  auto first = make_faulty();
  ASSERT_TRUE(first.ok()) << first.status().str();
  auto transport = std::move(*first);
  svc::Client client(*transport);
  client.set_frame_crc(true);
  svc::RetryPolicy policy;
  policy.max_attempts = 10;
  client.set_retry(
      policy,
      [&]() -> Expected<std::unique_ptr<svc::Transport>> {
        return make_faulty();
      },
      [](std::uint64_t) {});  // backoff schedule without wall-clock cost

  const Field f = small_field();
  for (int i = 0; i < 12; ++i) {
    auto compressed = client.compress("SZ2.1", f, ErrorBound::Abs(1e-2));
    ASSERT_TRUE(compressed.ok()) << "op " << i << ": "
                                 << compressed.status().str();
    auto recon = client.decompress(compressed->stream, "SZ2.1");
    ASSERT_TRUE(recon.ok()) << "op " << i << ": " << recon.status().str();
    EXPECT_LE(metrics::max_abs_err(f.values(), recon->values()),
              1e-2 * (1 + 1e-9));
  }
  total_faults +=
      live->stats().dropped + live->stats().flipped + live->stats().reset;
  EXPECT_GT(total_faults, 0u) << "chaos schedule never fired";
}

TEST(RecvTimeout, SilentPeerSurfacesTypedTimeoutAndStreamRecovers) {
  EventHarness h;
  auto t = h.connect();
  ASSERT_TRUE(t != nullptr);
  t->set_recv_timeout_ms(50);
  // No request sent: the server has nothing to say, so the recv must
  // time out instead of hanging.
  auto r = t->recv_frame();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code, ErrCode::kTimeout);
  // The timeout consumed no bytes; the connection is still usable.
  ASSERT_TRUE(t->send_frame(svc::encode_stats_request()).ok());
  auto r2 = t->recv_frame();
  ASSERT_TRUE(r2.ok()) << r2.status().str();
  EXPECT_TRUE(svc::parse_stats_response(*r2).ok());
  t->shutdown();
}

// ----------------------------------------------- crash consistency ----

/// S3 acceptance: kill the writer at EVERY byte offset of a sync-mode
/// append (body, then footer — the aesz_cli --sync write order) and the
/// surviving bytes always recover to exactly the fully-committed records,
/// after which appending resumes.
TEST(CrashConsistency, EveryByteOffsetOfAnAppendRecovers) {
  temporal::TemporalWriter::Options opt;
  opt.gop = 4;
  const Dims dims(8, 10);
  const ErrorBound eb = ErrorBound::Abs(1e-2);
  temporal::TemporalWriter w(dims, eb, opt);
  for (int t = 0; t < 4; ++t)
    w.append(small_field(0.08 * static_cast<double>(t)));

  const std::vector<std::uint8_t> body(w.body().begin(), w.body().end());
  const std::vector<std::uint8_t> footer = w.footer();
  // bytes() assembles a fresh artifact per call — parse ONE copy so the
  // StreamInfo spans stay anchored to live storage.
  const std::vector<std::uint8_t> artifact = w.bytes();
  const auto info = temporal::read_stream(artifact);
  ASSERT_TRUE(info.ok()) << info.status().str();
  ASSERT_EQ(info->records.size(), 4u);

  const std::size_t total = body.size() + footer.size();
  std::size_t header_failures = 0;
  for (std::size_t budget = 0; budget <= total; ++budget) {
    svc::FaultyFile disk(budget);
    disk.write(body);
    disk.write(footer);
    ASSERT_EQ(disk.bytes().size(), std::min(budget, total));

    auto recovered = temporal::recover_stream(disk.bytes());
    if (!recovered.ok()) {
      // Only a torn HEADER is unrecoverable — there is no stream yet.
      // Any complete header must recover, however torn the tail.
      EXPECT_LT(budget, info->body_bytes) << "budget " << budget;
      ++header_failures;
      continue;
    }
    // Exactly the records whose every byte landed; a torn record or a
    // torn footer never invents or loses a committed timestep.
    std::size_t committed = 0;
    for (const auto& rec : info->records)
      committed += rec.offset + rec.length <= budget ? 1 : 0;
    ASSERT_EQ(recovered->records.size(), committed) << "budget " << budget;

    // Re-open for append at every offset; decode-verify sparsely (the
    // sweep is O(file bytes) opens already).
    auto reopened =
        temporal::TemporalWriter::open(disk.bytes(), opt, /*recover=*/true);
    ASSERT_TRUE(reopened.ok())
        << "budget " << budget << ": " << reopened.status().str();
    const Field next = small_field(0.5);
    (*reopened)->append(next);
    if (budget % 37 == 0 || budget == total) {
      const std::vector<std::uint8_t> extended = (*reopened)->bytes();
      auto full = temporal::read_stream(extended);
      ASSERT_TRUE(full.ok()) << full.status().str();
      ASSERT_EQ(full->records.size(), committed + 1);
      auto reader = temporal::TemporalReader::open(extended);
      ASSERT_TRUE(reader.ok()) << reader.status().str();
      auto back = (*reader)->read(committed);
      ASSERT_TRUE(back.ok()) << back.status().str();
      EXPECT_LE(metrics::max_abs_err(next.values(), back->values()),
                1e-2 * (1 + 1e-9));
    }
  }
  // The sweep covered both regimes.
  EXPECT_GT(header_failures, 0u);
  EXPECT_LT(header_failures, total);
}

TEST(CrashConsistency, CorruptRecordIsAHardErrorNotATornTail) {
  temporal::TemporalWriter::Options opt;
  opt.gop = 4;
  temporal::TemporalWriter w(Dims(8, 10), ErrorBound::Abs(1e-2), opt);
  for (int t = 0; t < 3; ++t)
    w.append(small_field(0.08 * static_cast<double>(t)));
  // bytes() assembles a fresh artifact per call; parse ONE copy so the
  // payload spans below stay anchored to it.
  const std::vector<std::uint8_t> artifact = w.bytes();
  const auto info = temporal::read_stream(artifact);
  ASSERT_TRUE(info.ok());

  // Flip one payload bit inside the SECOND record: recovery must refuse
  // (checksum mismatch) rather than silently resume after damaged data.
  std::vector<std::uint8_t> damaged = artifact;
  const auto& rec = info->records[1];
  const std::size_t payload_off =
      static_cast<std::size_t>(rec.payload.data() - artifact.data());
  damaged[payload_off + rec.payload.size() / 2] ^= 0x10;
  auto recovered = temporal::recover_stream(damaged);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code, ErrCode::kChecksumMismatch);
}

}  // namespace
}  // namespace aesz
