#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "util/bitstream.hpp"
#include "util/bytestream.hpp"
#include "util/dims.hpp"
#include "util/expected.hpp"
#include "util/rng.hpp"

namespace aesz {
namespace {

TEST(ByteStream, PodRoundtrip) {
  ByteWriter w;
  w.put<std::uint32_t>(0xDEADBEEF);
  w.put<float>(3.25f);
  w.put<double>(-1e300);
  w.put<std::uint8_t>(7);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<float>(), 3.25f);
  EXPECT_EQ(r.get<double>(), -1e300);
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_TRUE(r.eof());
}

TEST(ByteStream, VarintRoundtripEdgeValues) {
  const std::vector<std::uint64_t> vals{
      0, 1, 127, 128, 255, 16383, 16384, 0xFFFFFFFFull,
      0xFFFFFFFFFFFFFFFFull};
  ByteWriter w;
  for (auto v : vals) w.put_varint(v);
  ByteReader r(w.bytes());
  for (auto v : vals) EXPECT_EQ(r.get_varint(), v);
}

TEST(ByteStream, VarintDense) {
  ByteWriter w;
  Rng rng(3);
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 2000; ++i) {
    const int bits = static_cast<int>(rng.below(64));
    vals.push_back(rng.next_u64() >> bits);
    w.put_varint(vals.back());
  }
  ByteReader r(w.bytes());
  for (auto v : vals) EXPECT_EQ(r.get_varint(), v);
}

TEST(ByteStream, BlobRoundtrip) {
  ByteWriter w;
  std::vector<std::uint8_t> a{1, 2, 3}, b{};
  w.put_blob(a);
  w.put_blob(b);
  ByteReader r(w.bytes());
  auto ra = r.get_blob();
  EXPECT_EQ(std::vector<std::uint8_t>(ra.begin(), ra.end()), a);
  EXPECT_EQ(r.get_blob().size(), 0u);
}

TEST(ByteStream, ArrayRoundtrip) {
  ByteWriter w;
  std::vector<float> vals{1.5f, -2.0f, 0.0f};
  w.put_array<float>(vals);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_array<float>(), vals);
}

TEST(ByteStream, TruncatedThrows) {
  ByteWriter w;
  w.put<std::uint32_t>(1);
  ByteReader r(w.bytes());
  (void)r.get<std::uint16_t>();
  EXPECT_THROW((void)r.get<std::uint32_t>(), Error);
}

TEST(ByteStream, TruncatedVarintThrows) {
  std::vector<std::uint8_t> bad{0x80, 0x80};  // never terminates
  ByteReader r(bad);
  EXPECT_THROW((void)r.get_varint(), Error);
}

TEST(ByteStream, TruncationCarriesTypedCode) {
  ByteReader r({});
  try {
    (void)r.get<std::uint32_t>();
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrCode::kTruncated);
  }
}

TEST(ByteStream, FallibleReadsNeverThrow) {
  ByteWriter w;
  w.put<std::uint32_t>(0xFEEDFACE);
  w.put_varint(300);
  w.put_blob(std::vector<std::uint8_t>{9, 8, 7});
  const auto bytes = w.take();
  ByteReader r(bytes);
  std::uint32_t u = 0;
  std::uint64_t v = 0;
  std::span<const std::uint8_t> blob;
  EXPECT_TRUE(r.try_get(u));
  EXPECT_EQ(u, 0xFEEDFACEu);
  EXPECT_TRUE(r.try_get_varint(v));
  EXPECT_EQ(v, 300u);
  EXPECT_TRUE(r.try_get_blob(blob));
  EXPECT_EQ(blob.size(), 3u);
  EXPECT_TRUE(r.eof());
  // At EOF every fallible read reports failure without moving the cursor.
  EXPECT_FALSE(r.try_get(u));
  EXPECT_FALSE(r.try_get_varint(v));
  EXPECT_FALSE(r.try_get_blob(blob));
  EXPECT_TRUE(r.eof());
}

TEST(ByteStream, HostileLengthsDoNotAllocate) {
  // A varint declaring a near-2^64 array/blob must fail the bounds check
  // (overflow-safely) instead of attempting a giant allocation.
  ByteWriter w;
  w.put_varint(0xFFFFFFFFFFFFFFFFull);
  w.put<std::uint8_t>(1);
  const auto bytes = w.take();
  {
    ByteReader r(bytes);
    EXPECT_THROW((void)r.get_array<float>(), Error);
  }
  {
    ByteReader r(bytes);
    EXPECT_THROW((void)r.get_blob(), Error);
  }
  {
    ByteReader r(bytes);
    std::span<const std::uint8_t> out;
    EXPECT_FALSE(r.try_get_blob(out));
  }
}

TEST(Expected, ValueAndStatusPaths) {
  Expected<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(*good, 42);

  Expected<int> bad(ErrCode::kBadMagic, "nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code, ErrCode::kBadMagic);
  EXPECT_NE(bad.status().str().find("bad_magic"), std::string::npos);
  try {
    (void)bad.value();
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrCode::kBadMagic);
  }
  EXPECT_EQ(Expected<int>(ErrCode::kTruncated, "").value_or(7), 7);
}

TEST(Expected, WorksWithMoveOnlyTypes) {
  Expected<std::unique_ptr<int>> e(std::make_unique<int>(5));
  ASSERT_TRUE(e.ok());
  std::unique_ptr<int> p = std::move(e).value();
  EXPECT_EQ(*p, 5);
}

TEST(BitStream, SingleBits) {
  BitWriter w;
  const std::vector<bool> bits{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (bool b : bits) w.put_bit(b);
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (bool b : bits) EXPECT_EQ(r.get_bit(), b ? 1 : 0);
}

TEST(BitStream, MultiBitRoundtrip) {
  BitWriter w;
  Rng rng(11);
  std::vector<std::pair<std::uint64_t, int>> items;
  for (int i = 0; i < 500; ++i) {
    const int n = 1 + static_cast<int>(rng.below(57));
    const std::uint64_t v = rng.next_u64() & ((n >= 64) ? ~0ull : ((1ull << n) - 1));
    items.emplace_back(v, n);
    w.put(v, n);
  }
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (auto [v, n] : items) EXPECT_EQ(r.get(n), v);
}

TEST(BitStream, UnaryRoundtrip) {
  BitWriter w;
  for (unsigned n : {0u, 1u, 2u, 7u, 31u}) w.put_unary(n);
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (unsigned n : {0u, 1u, 2u, 7u, 31u}) EXPECT_EQ(r.get_unary(64), n);
}

TEST(BitStream, PutGetBitsEveryLength) {
  // Round-trip every width 1..64, each preceded by a 3-bit phase shift so
  // the values straddle byte and 64-bit-word boundaries in varying ways.
  BitWriter w;
  std::vector<std::uint64_t> vals;
  Rng rng(13);
  for (int n = 1; n <= 64; ++n) {
    w.put_bits(0x5, 3);
    const std::uint64_t mask = n >= 64 ? ~0ULL : ((1ULL << n) - 1);
    const std::uint64_t v = rng.next_u64() & mask;
    vals.push_back(v);
    w.put_bits(v, n);
    w.put_bits(mask, n);  // all-ones pattern at the same width
  }
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (int n = 1; n <= 64; ++n) {
    EXPECT_EQ(r.get_bits(3), 0x5u) << "phase before n=" << n;
    const std::uint64_t mask = n >= 64 ? ~0ULL : ((1ULL << n) - 1);
    EXPECT_EQ(r.get_bits(n), vals[static_cast<std::size_t>(n - 1)])
        << "n=" << n;
    EXPECT_EQ(r.get_bits(n), mask) << "ones n=" << n;
  }
  EXPECT_FALSE(r.overran());
}

TEST(BitStream, PutBitsMatchesPerBitEmission) {
  // The word-at-a-time writer must emit the byte-identical stream a
  // per-bit writer would (bitstream compatibility across the refactor).
  Rng rng(29);
  BitWriter word, bit;
  for (int i = 0; i < 3000; ++i) {
    const int n = 1 + static_cast<int>(rng.below(64));
    const std::uint64_t v =
        rng.next_u64() & (n >= 64 ? ~0ULL : ((1ULL << n) - 1));
    word.put_bits(v, n);
    for (int b = 0; b < n; ++b) bit.put_bit((v >> b) & 1);
  }
  EXPECT_EQ(word.finish(), bit.finish());
}

TEST(BitStream, GetBitsZeroFillAndOverran) {
  BitWriter w;
  w.put_bits(0x1FF, 9);
  const auto bytes = w.finish();  // 2 bytes: 9 ones + 7 pad zeros
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(4), 0xFu);
  EXPECT_FALSE(r.overran());
  // 12 real bits remain (5 ones + 7 pad); the top 48 read as zero-fill.
  EXPECT_EQ(r.get_bits(60), 0x1Fu);
  EXPECT_TRUE(r.overran());
  EXPECT_EQ(r.get_bits(64), 0u);
}

TEST(BitStream, PeekBitsDoesNotConsumeOrOverrun) {
  BitWriter w;
  w.put_bits(0b1011, 4);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.peek_bits(4), 0b1011u);
  EXPECT_EQ(r.peek_bits(4), 0b1011u);  // unchanged position
  EXPECT_EQ(r.bit_pos(), 0u);
  // Peeking past the end zero-fills without flagging an overrun.
  EXPECT_EQ(r.peek_bits(20), 0b1011u);
  EXPECT_FALSE(r.overran());
  EXPECT_EQ(r.get_bits(4), 0b1011u);
}

TEST(BitStream, SkipBitsAdvancesLikeReads) {
  BitWriter w;
  for (int i = 0; i < 40; ++i) w.put_bits(static_cast<std::uint64_t>(i), 7);
  const auto bytes = w.finish();
  BitReader a(bytes), b(bytes);
  a.skip_bits(7 * 13);
  for (int i = 0; i < 13; ++i) (void)b.get_bits(7);
  EXPECT_EQ(a.bit_pos(), b.bit_pos());
  EXPECT_EQ(a.get_bits(7), 13u);
}

TEST(BitStream, ZeroFillPastEnd) {
  BitWriter w;
  w.put_bit(true);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bit(), 1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(r.get_bit(), 0) << "bit " << i;
}

TEST(BitStream, BitCountTracksWrites) {
  BitWriter w;
  w.put(0x3, 2);
  EXPECT_EQ(w.bit_count(), 2u);
  w.put(0xFF, 8);
  EXPECT_EQ(w.bit_count(), 10u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Dims, TotalsAndIndexing) {
  Dims d1(10);
  EXPECT_EQ(d1.rank, 1);
  EXPECT_EQ(d1.total(), 10u);
  Dims d2(4, 5);
  EXPECT_EQ(d2.total(), 20u);
  EXPECT_EQ(lin2(d2, 2, 3), 13u);
  Dims d3(2, 3, 4);
  EXPECT_EQ(d3.total(), 24u);
  EXPECT_EQ(lin3(d3, 1, 2, 3), 23u);
  EXPECT_EQ(d3.str(), "2x3x4");
}

TEST(Dims, NumBlocks) {
  EXPECT_EQ(num_blocks(10, 4), 3u);
  EXPECT_EQ(num_blocks(8, 4), 2u);
  EXPECT_EQ(num_blocks(1, 4), 1u);
}

}  // namespace
}  // namespace aesz
