#include <gtest/gtest.h>

#include <cmath>

#include "nn/autoencoder.hpp"
#include "nn/optimizer.hpp"
#include "nn/variants.hpp"
#include "util/bytestream.hpp"

namespace aesz::nn {
namespace {

AEConfig small2d() {
  AEConfig cfg;
  cfg.rank = 2;
  cfg.block = 16;
  cfg.latent = 8;
  cfg.channels = {4, 8};
  return cfg;
}

AEConfig small3d() {
  AEConfig cfg;
  cfg.rank = 3;
  cfg.block = 8;
  cfg.latent = 8;
  cfg.channels = {4, 8};
  return cfg;
}

Tensor random_batch(const AEConfig& cfg, std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> shape{n, 1};
  for (int i = 0; i < cfg.rank; ++i) shape.push_back(cfg.block);
  Tensor t(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = std::tanh(rng.gaussianf());
  return t;
}

/// Smooth, learnable batch: each sample is a random low-frequency wave.
Tensor smooth_batch(const AEConfig& cfg, std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> shape{n, 1};
  for (int i = 0; i < cfg.rank; ++i) shape.push_back(cfg.block);
  Tensor t(shape);
  Rng rng(seed);
  const std::size_t be = cfg.block_elems();
  for (std::size_t s = 0; s < n; ++s) {
    const double fx = 1.0 + rng.uniform() * 2.0;
    const double ph = rng.uniform() * 6.28;
    for (std::size_t i = 0; i < be; ++i) {
      const double u = static_cast<double>(i % cfg.block) / cfg.block;
      const double v = static_cast<double>(i / cfg.block % cfg.block) /
                       cfg.block;
      t[s * be + i] =
          static_cast<float>(0.8 * std::sin(fx * 6.28 * u + ph) *
                             std::cos(fx * 3.14 * v));
    }
  }
  return t;
}

TEST(Tensor, ShapeAndReshape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24u);
  Tensor r = t.reshaped({6, 4});
  EXPECT_EQ(r.dim(0), 6u);
  EXPECT_THROW((void)t.reshaped({5, 5}), Error);
}

TEST(Autoencoder, EncodeDecodeShapes2d) {
  ConvAutoencoder ae(small2d(), 1);
  Tensor x = random_batch(small2d(), 3, 2);
  Tensor z = ae.encode(x, false);
  EXPECT_EQ(z.dim(0), 3u);
  EXPECT_EQ(z.dim(1), 8u);
  Tensor y = ae.decode(z, false);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Autoencoder, EncodeDecodeShapes3d) {
  ConvAutoencoder ae(small3d(), 1);
  Tensor x = random_batch(small3d(), 2, 3);
  Tensor z = ae.encode(x, false);
  EXPECT_EQ(z.dim(1), 8u);
  Tensor y = ae.decode(z, false);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Autoencoder, OutputBoundedByTanh) {
  ConvAutoencoder ae(small2d(), 4);
  Tensor x = random_batch(small2d(), 2, 5);
  Tensor y = ae.decode(ae.encode(x, false), false);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_GE(y[i], -1.0f);
    EXPECT_LE(y[i], 1.0f);
  }
}

TEST(Autoencoder, DeterministicAcrossBatching) {
  // Per-sample results must not depend on batch composition — the
  // compressor/decompressor batch blocks differently.
  ConvAutoencoder ae(small2d(), 6);
  Tensor x = random_batch(small2d(), 4, 7);
  Tensor z_all = ae.encode(x, false);
  const std::size_t be = small2d().block_elems();
  for (std::size_t s = 0; s < 4; ++s) {
    Tensor single({1, 1, 16, 16});
    std::copy(x.data() + s * be, x.data() + (s + 1) * be, single.data());
    Tensor z1 = ae.encode(single, false);
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_EQ(z1[i], z_all[s * 8 + i]) << "sample " << s;
  }
}

TEST(Autoencoder, VariationalDoublesLatent) {
  AEConfig cfg = small2d();
  cfg.variational = true;
  ConvAutoencoder ae(cfg, 1);
  Tensor x = random_batch(cfg, 2, 2);
  Tensor z = ae.encode(x, false);
  EXPECT_EQ(z.dim(1), 16u);  // mu ++ logvar
}

TEST(Autoencoder, RejectsBadBlockSize) {
  AEConfig cfg = small2d();
  cfg.block = 2;  // cannot halve twice
  EXPECT_THROW(ConvAutoencoder(cfg, 1), Error);
}

TEST(Autoencoder, SerializationRoundtrip) {
  ConvAutoencoder a(small2d(), 11);
  ByteWriter w;
  a.save(w);
  ConvAutoencoder b(small2d(), 99);  // different init
  const auto bytes = w.take();
  ByteReader r(bytes);
  b.load(r);
  Tensor x = random_batch(small2d(), 2, 12);
  Tensor ya = a.decode(a.encode(x, false), false);
  Tensor yb = b.decode(b.encode(x, false), false);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Autoencoder, LoadRejectsWrongArchitecture) {
  ConvAutoencoder a(small2d(), 1);
  ByteWriter w;
  a.save(w);
  ConvAutoencoder b(small3d(), 1);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(b.load(r), Error);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize ||w - target||^2 directly through the optimizer plumbing.
  Param w(Tensor::zeros({8}));
  std::vector<float> target{1, -2, 3, -4, 0.5f, 0, 2, -1};
  Adam opt({&w}, 0.05f);
  for (int it = 0; it < 800; ++it) {
    opt.zero_grad();
    for (std::size_t i = 0; i < 8; ++i)
      w.grad[i] = 2.0f * (w.value[i] - target[i]);
    opt.step();
  }
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(w.value[i], target[i], 1e-2);
}

TEST(Variants, NamesAndFamilies) {
  EXPECT_EQ(variant_name(AEVariant::kSWAE), "SWAE");
  EXPECT_FALSE(variant_is_variational(AEVariant::kSWAE));
  EXPECT_FALSE(variant_is_variational(AEVariant::kWAE));
  EXPECT_TRUE(variant_is_variational(AEVariant::kBetaVAE));
  EXPECT_TRUE(variant_is_variational(AEVariant::kLogCoshVAE));
}

class VariantTrains : public ::testing::TestWithParam<AEVariant> {};

TEST_P(VariantTrains, LossDecreases) {
  AEConfig cfg = small2d();
  VariantHyper hyper;
  hyper.lr = 2e-3f;
  VariantTrainer t(cfg, GetParam(), 42, hyper);
  Tensor batch = smooth_batch(cfg, 16, 9);
  double first = 0, last = 0;
  for (int it = 0; it < 30; ++it) {
    const double loss = t.train_step(batch);
    if (it == 0) first = loss;
    last = loss;
    ASSERT_TRUE(std::isfinite(loss)) << "iteration " << it;
  }
  EXPECT_LT(last, first) << variant_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllEight, VariantTrains,
    ::testing::Values(AEVariant::kAE, AEVariant::kVAE, AEVariant::kBetaVAE,
                      AEVariant::kDIPVAE, AEVariant::kInfoVAE,
                      AEVariant::kLogCoshVAE, AEVariant::kWAE,
                      AEVariant::kSWAE),
    [](const ::testing::TestParamInfo<AEVariant>& info) {
      std::string n = variant_name(info.param);
      for (char& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST(Variants, ReconstructionImprovesWithTraining) {
  AEConfig cfg = small2d();
  VariantTrainer t(cfg, AEVariant::kSWAE, 7);
  Tensor batch = smooth_batch(cfg, 24, 3);
  auto recon_err = [&]() {
    Tensor y = t.reconstruct(batch);
    double e = 0;
    for (std::size_t i = 0; i < y.numel(); ++i) {
      const double d = y[i] - batch[i];
      e += d * d;
    }
    return e / static_cast<double>(y.numel());
  };
  const double before = recon_err();
  for (int it = 0; it < 60; ++it) t.train_step(batch);
  EXPECT_LT(recon_err(), before);
}

TEST(Variants, GDNProjectionKeepsConstraints) {
  GDN g(4, false);
  // Force a violating step then project.
  for (Param* p : g.params())
    for (std::size_t i = 0; i < p->value.numel(); ++i)
      p->value[i] = -1.0f;
  g.project();
  auto ps = g.params();
  for (std::size_t i = 0; i < ps[0]->value.numel(); ++i)
    EXPECT_GT(ps[0]->value[i], 0.0f);  // beta >= beta_min
  for (std::size_t i = 0; i < ps[1]->value.numel(); ++i)
    EXPECT_GE(ps[1]->value[i], 0.0f);  // gamma >= 0
}

}  // namespace
}  // namespace aesz::nn
