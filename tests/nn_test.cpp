#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/autoencoder.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/gemm.hpp"
#include "nn/optimizer.hpp"
#include "nn/variants.hpp"
#include "util/bytestream.hpp"

namespace aesz::nn {
namespace {

AEConfig small2d() {
  AEConfig cfg;
  cfg.rank = 2;
  cfg.block = 16;
  cfg.latent = 8;
  cfg.channels = {4, 8};
  return cfg;
}

AEConfig small3d() {
  AEConfig cfg;
  cfg.rank = 3;
  cfg.block = 8;
  cfg.latent = 8;
  cfg.channels = {4, 8};
  return cfg;
}

Tensor random_batch(const AEConfig& cfg, std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> shape{n, 1};
  for (int i = 0; i < cfg.rank; ++i) shape.push_back(cfg.block);
  Tensor t(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = std::tanh(rng.gaussianf());
  return t;
}

/// Smooth, learnable batch: each sample is a random low-frequency wave.
Tensor smooth_batch(const AEConfig& cfg, std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> shape{n, 1};
  for (int i = 0; i < cfg.rank; ++i) shape.push_back(cfg.block);
  Tensor t(shape);
  Rng rng(seed);
  const std::size_t be = cfg.block_elems();
  for (std::size_t s = 0; s < n; ++s) {
    const double fx = 1.0 + rng.uniform() * 2.0;
    const double ph = rng.uniform() * 6.28;
    for (std::size_t i = 0; i < be; ++i) {
      const double u = static_cast<double>(i % cfg.block) / cfg.block;
      const double v = static_cast<double>(i / cfg.block % cfg.block) /
                       cfg.block;
      t[s * be + i] =
          static_cast<float>(0.8 * std::sin(fx * 6.28 * u + ph) *
                             std::cos(fx * 3.14 * v));
    }
  }
  return t;
}

// ---------------------------------------------------------------------
// Blocked-GEMM kernel layer: the register-tiled sgemm and the im2col conv
// forwards must agree with straightforward reference loops to 1e-4.
// ---------------------------------------------------------------------

void naive_gemm(bool ta, bool tb, std::size_t m, std::size_t n, std::size_t k,
                const float* a, std::size_t lda, const float* b,
                std::size_t ldb, float beta, float* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = ta ? a[kk * lda + i] : a[i * lda + kk];
        const float bv = tb ? b[j * ldb + kk] : b[kk * ldb + j];
        acc += av * bv;
      }
      c[i * ldc + j] = beta * c[i * ldc + j] + acc;
    }
}

TEST(Gemm, MatchesNaiveAcrossShapesAndTransposes) {
  Rng rng(71);
  struct Case {
    std::size_t m, n, k;
    bool ta, tb;
    float beta;
  };
  const std::vector<Case> cases{
      {1, 1, 1, false, false, 0.0f},   {7, 13, 5, false, false, 0.0f},
      {6, 16, 32, false, false, 1.0f}, {97, 33, 130, false, false, 0.0f},
      {33, 97, 65, true, false, 0.0f}, {40, 24, 70, false, true, 0.5f},
      {19, 21, 23, true, true, 1.0f},  {128, 1, 300, false, true, 0.0f},
  };
  for (const auto& tc : cases) {
    const std::size_t lda = tc.ta ? tc.m : tc.k;
    const std::size_t ldb = tc.tb ? tc.k : tc.n;
    std::vector<float> a(tc.m * tc.k), b(tc.k * tc.n);
    std::vector<float> c1(tc.m * tc.n), c2(tc.m * tc.n);
    for (auto& v : a) v = rng.gaussianf();
    for (auto& v : b) v = rng.gaussianf();
    for (std::size_t i = 0; i < c1.size(); ++i) c1[i] = c2[i] = rng.gaussianf();
    sgemm(tc.ta, tc.tb, tc.m, tc.n, tc.k, a.data(), lda, b.data(), ldb,
          tc.beta, c1.data(), tc.n);
    naive_gemm(tc.ta, tc.tb, tc.m, tc.n, tc.k, a.data(), lda, b.data(), ldb,
               tc.beta, c2.data(), tc.n);
    float maxd = 0.0f;
    for (std::size_t i = 0; i < c1.size(); ++i)
      maxd = std::max(maxd, std::abs(c1[i] - c2[i]));
    EXPECT_LT(maxd, 1e-4f) << tc.m << "x" << tc.n << "x" << tc.k << " ta="
                           << tc.ta << " tb=" << tc.tb;
  }
}

TEST(Gemm, Conv2dForwardMatchesNaive) {
  Rng rng(72);
  for (const auto& [stride, pad] :
       std::vector<std::pair<std::size_t, std::size_t>>{{1, 1}, {2, 1},
                                                        {1, 0}, {2, 0}}) {
    const std::size_t in_c = 5, out_c = 7, k = 3, H = 17, W = 13, N = 2;
    Conv2d layer(in_c, out_c, k, stride, pad, rng);
    const std::size_t OH = layer.out_size(H), OW = layer.out_size(W);
    Tensor x({N, in_c, H, W});
    for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.gaussianf();
    Tensor y = layer.forward(x, false);
    const float* wp = layer.params()[0]->value.data();
    const float* bp = layer.params()[1]->value.data();
    // Direct definition: y[n][oc][o][p] = b + sum x[n][ic][o*s-p+kh][...]*w.
    float maxd = 0.0f;
    for (std::size_t n = 0; n < N; ++n)
      for (std::size_t oc = 0; oc < out_c; ++oc)
        for (std::size_t o = 0; o < OH; ++o)
          for (std::size_t q = 0; q < OW; ++q) {
            float acc = bp[oc];
            for (std::size_t ic = 0; ic < in_c; ++ic)
              for (std::size_t kh = 0; kh < k; ++kh)
                for (std::size_t kw = 0; kw < k; ++kw) {
                  const std::ptrdiff_t ih =
                      static_cast<std::ptrdiff_t>(o * stride + kh) -
                      static_cast<std::ptrdiff_t>(pad);
                  const std::ptrdiff_t iw =
                      static_cast<std::ptrdiff_t>(q * stride + kw) -
                      static_cast<std::ptrdiff_t>(pad);
                  if (ih < 0 || iw < 0 ||
                      ih >= static_cast<std::ptrdiff_t>(H) ||
                      iw >= static_cast<std::ptrdiff_t>(W))
                    continue;
                  acc += x[((n * in_c + ic) * H +
                            static_cast<std::size_t>(ih)) *
                               W +
                           static_cast<std::size_t>(iw)] *
                         wp[((oc * in_c + ic) * k + kh) * k + kw];
                }
            const float got = y[((n * out_c + oc) * OH + o) * OW + q];
            maxd = std::max(maxd, std::abs(got - acc));
          }
    EXPECT_LT(maxd, 1e-4f) << "stride=" << stride << " pad=" << pad;
  }
}

TEST(Gemm, ConvT2dForwardMatchesNaive) {
  Rng rng(73);
  for (const auto& [stride, pad, out_pad] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {2, 1, 1}, {1, 1, 0}, {2, 0, 0}}) {
    const std::size_t in_c = 6, out_c = 4, k = 3, H = 9, W = 11, N = 2;
    ConvT2d layer(in_c, out_c, k, stride, pad, out_pad, rng);
    const std::size_t OH = layer.out_size(H), OW = layer.out_size(W);
    Tensor x({N, in_c, H, W});
    for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.gaussianf();
    Tensor y = layer.forward(x, false);
    const float* wp = layer.params()[0]->value.data();
    const float* bp = layer.params()[1]->value.data();
    // Reference scatter: y[oh][ow] += x[ih][iw] * w, oh = ih*s + kh - p.
    Tensor ref({N, out_c, OH, OW});
    for (std::size_t n = 0; n < N; ++n)
      for (std::size_t oc = 0; oc < out_c; ++oc)
        for (std::size_t o = 0; o < OH * OW; ++o)
          ref[(n * out_c + oc) * OH * OW + o] = bp[oc];
    for (std::size_t n = 0; n < N; ++n)
      for (std::size_t ic = 0; ic < in_c; ++ic)
        for (std::size_t ih = 0; ih < H; ++ih)
          for (std::size_t iw = 0; iw < W; ++iw)
            for (std::size_t oc = 0; oc < out_c; ++oc)
              for (std::size_t kh = 0; kh < k; ++kh)
                for (std::size_t kw = 0; kw < k; ++kw) {
                  const std::ptrdiff_t oh =
                      static_cast<std::ptrdiff_t>(ih * stride + kh) -
                      static_cast<std::ptrdiff_t>(pad);
                  const std::ptrdiff_t ow =
                      static_cast<std::ptrdiff_t>(iw * stride + kw) -
                      static_cast<std::ptrdiff_t>(pad);
                  if (oh < 0 || ow < 0 ||
                      oh >= static_cast<std::ptrdiff_t>(OH) ||
                      ow >= static_cast<std::ptrdiff_t>(OW))
                    continue;
                  ref[((n * out_c + oc) * OH + static_cast<std::size_t>(oh)) *
                          OW +
                      static_cast<std::size_t>(ow)] +=
                      x[((n * in_c + ic) * H + ih) * W + iw] *
                      wp[((ic * out_c + oc) * k + kh) * k + kw];
                }
    float maxd = 0.0f;
    for (std::size_t i = 0; i < y.numel(); ++i)
      maxd = std::max(maxd, std::abs(y[i] - ref[i]));
    EXPECT_LT(maxd, 1e-4f) << "stride=" << stride << " pad=" << pad;
  }
}

TEST(Gemm, LinearForwardMatchesNaive) {
  Rng rng(74);
  const std::size_t in = 130, out = 37, N = 9;
  Linear layer(in, out, rng);
  Tensor x({N, in});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.gaussianf();
  Tensor y = layer.forward(x, false);
  const float* wp = layer.params()[0]->value.data();
  const float* bp = layer.params()[1]->value.data();
  float maxd = 0.0f;
  for (std::size_t n = 0; n < N; ++n)
    for (std::size_t o = 0; o < out; ++o) {
      float acc = bp[o];
      for (std::size_t i = 0; i < in; ++i)
        acc += x[n * in + i] * wp[o * in + i];
      maxd = std::max(maxd, std::abs(y[n * out + o] - acc));
    }
  EXPECT_LT(maxd, 1e-4f);
}

TEST(Tensor, ShapeAndReshape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24u);
  Tensor r = t.reshaped({6, 4});
  EXPECT_EQ(r.dim(0), 6u);
  EXPECT_THROW((void)t.reshaped({5, 5}), Error);
}

TEST(Autoencoder, EncodeDecodeShapes2d) {
  ConvAutoencoder ae(small2d(), 1);
  Tensor x = random_batch(small2d(), 3, 2);
  Tensor z = ae.encode(x, false);
  EXPECT_EQ(z.dim(0), 3u);
  EXPECT_EQ(z.dim(1), 8u);
  Tensor y = ae.decode(z, false);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Autoencoder, EncodeDecodeShapes3d) {
  ConvAutoencoder ae(small3d(), 1);
  Tensor x = random_batch(small3d(), 2, 3);
  Tensor z = ae.encode(x, false);
  EXPECT_EQ(z.dim(1), 8u);
  Tensor y = ae.decode(z, false);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Autoencoder, OutputBoundedByTanh) {
  ConvAutoencoder ae(small2d(), 4);
  Tensor x = random_batch(small2d(), 2, 5);
  Tensor y = ae.decode(ae.encode(x, false), false);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_GE(y[i], -1.0f);
    EXPECT_LE(y[i], 1.0f);
  }
}

TEST(Autoencoder, DeterministicAcrossBatching) {
  // Per-sample results must not depend on batch composition — the
  // compressor/decompressor batch blocks differently.
  ConvAutoencoder ae(small2d(), 6);
  Tensor x = random_batch(small2d(), 4, 7);
  Tensor z_all = ae.encode(x, false);
  const std::size_t be = small2d().block_elems();
  for (std::size_t s = 0; s < 4; ++s) {
    Tensor single({1, 1, 16, 16});
    std::copy(x.data() + s * be, x.data() + (s + 1) * be, single.data());
    Tensor z1 = ae.encode(single, false);
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_EQ(z1[i], z_all[s * 8 + i]) << "sample " << s;
  }
}

TEST(Autoencoder, VariationalDoublesLatent) {
  AEConfig cfg = small2d();
  cfg.variational = true;
  ConvAutoencoder ae(cfg, 1);
  Tensor x = random_batch(cfg, 2, 2);
  Tensor z = ae.encode(x, false);
  EXPECT_EQ(z.dim(1), 16u);  // mu ++ logvar
}

TEST(Autoencoder, RejectsBadBlockSize) {
  AEConfig cfg = small2d();
  cfg.block = 2;  // cannot halve twice
  EXPECT_THROW(ConvAutoencoder(cfg, 1), Error);
}

TEST(Autoencoder, SerializationRoundtrip) {
  ConvAutoencoder a(small2d(), 11);
  ByteWriter w;
  a.save(w);
  ConvAutoencoder b(small2d(), 99);  // different init
  const auto bytes = w.take();
  ByteReader r(bytes);
  b.load(r);
  Tensor x = random_batch(small2d(), 2, 12);
  Tensor ya = a.decode(a.encode(x, false), false);
  Tensor yb = b.decode(b.encode(x, false), false);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Autoencoder, LoadRejectsWrongArchitecture) {
  ConvAutoencoder a(small2d(), 1);
  ByteWriter w;
  a.save(w);
  ConvAutoencoder b(small3d(), 1);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(b.load(r), Error);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize ||w - target||^2 directly through the optimizer plumbing.
  Param w(Tensor::zeros({8}));
  std::vector<float> target{1, -2, 3, -4, 0.5f, 0, 2, -1};
  Adam opt({&w}, 0.05f);
  for (int it = 0; it < 800; ++it) {
    opt.zero_grad();
    for (std::size_t i = 0; i < 8; ++i)
      w.grad[i] = 2.0f * (w.value[i] - target[i]);
    opt.step();
  }
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(w.value[i], target[i], 1e-2);
}

TEST(Variants, NamesAndFamilies) {
  EXPECT_EQ(variant_name(AEVariant::kSWAE), "SWAE");
  EXPECT_FALSE(variant_is_variational(AEVariant::kSWAE));
  EXPECT_FALSE(variant_is_variational(AEVariant::kWAE));
  EXPECT_TRUE(variant_is_variational(AEVariant::kBetaVAE));
  EXPECT_TRUE(variant_is_variational(AEVariant::kLogCoshVAE));
}

class VariantTrains : public ::testing::TestWithParam<AEVariant> {};

TEST_P(VariantTrains, LossDecreases) {
  AEConfig cfg = small2d();
  VariantHyper hyper;
  hyper.lr = 2e-3f;
  VariantTrainer t(cfg, GetParam(), 42, hyper);
  Tensor batch = smooth_batch(cfg, 16, 9);
  double first = 0, last = 0;
  for (int it = 0; it < 30; ++it) {
    const double loss = t.train_step(batch);
    if (it == 0) first = loss;
    last = loss;
    ASSERT_TRUE(std::isfinite(loss)) << "iteration " << it;
  }
  EXPECT_LT(last, first) << variant_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllEight, VariantTrains,
    ::testing::Values(AEVariant::kAE, AEVariant::kVAE, AEVariant::kBetaVAE,
                      AEVariant::kDIPVAE, AEVariant::kInfoVAE,
                      AEVariant::kLogCoshVAE, AEVariant::kWAE,
                      AEVariant::kSWAE),
    [](const ::testing::TestParamInfo<AEVariant>& info) {
      std::string n = variant_name(info.param);
      for (char& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST(Variants, ReconstructionImprovesWithTraining) {
  AEConfig cfg = small2d();
  VariantTrainer t(cfg, AEVariant::kSWAE, 7);
  Tensor batch = smooth_batch(cfg, 24, 3);
  auto recon_err = [&]() {
    Tensor y = t.reconstruct(batch);
    double e = 0;
    for (std::size_t i = 0; i < y.numel(); ++i) {
      const double d = y[i] - batch[i];
      e += d * d;
    }
    return e / static_cast<double>(y.numel());
  };
  const double before = recon_err();
  for (int it = 0; it < 60; ++it) t.train_step(batch);
  EXPECT_LT(recon_err(), before);
}

TEST(Variants, GDNProjectionKeepsConstraints) {
  GDN g(4, false);
  // Force a violating step then project.
  for (Param* p : g.params())
    for (std::size_t i = 0; i < p->value.numel(); ++i)
      p->value[i] = -1.0f;
  g.project();
  auto ps = g.params();
  for (std::size_t i = 0; i < ps[0]->value.numel(); ++i)
    EXPECT_GT(ps[0]->value[i], 0.0f);  // beta >= beta_min
  for (std::size_t i = 0; i < ps[1]->value.numel(); ++i)
    EXPECT_GE(ps[1]->value[i], 0.0f);  // gamma >= 0
}

}  // namespace
}  // namespace aesz::nn
