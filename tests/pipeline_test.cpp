#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "data/synth.hpp"
#include "metrics/metrics.hpp"
#include "pipeline/container.hpp"
#include "pipeline/parallel_compressor.hpp"
#include "pipeline/sharder.hpp"
#include "predictors/registry.hpp"
#include "util/bytestream.hpp"
#include "util/crc32c.hpp"
#include "util/thread_pool.hpp"

namespace aesz {
namespace {

using pipeline::ChunkSpec;
using pipeline::ParallelCompressor;

CodecRegistry& reg() { return CodecRegistry::instance(); }

Field field_for_rank(int rank) {
  switch (rank) {
    case 1: {
      Field f{Dims(std::size_t{512})};
      for (std::size_t i = 0; i < f.size(); ++i)
        f.at(i) = std::sin(0.02f * static_cast<float>(i)) +
                  0.2f * std::sin(0.17f * static_cast<float>(i));
      return f;
    }
    case 2: return synth::cesm_freqsh(32, 48, 50);
    default: return synth::hurricane_u(16, 16, 16, 43);
  }
}

// ------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 64; ++i)
    futs.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;  // 0 → hardware_concurrency, clamped to >= 1
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw Error(ErrCode::kInternal, "task boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), Error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.submit([&ran] { ran.fetch_add(1); });
    // No future joins: the destructor itself must finish the queue.
  }
  EXPECT_EQ(ran.load(), 100);
}

// ----------------------------------------------------------- sharder ----

TEST(Sharder, ChunksTileTheFieldWithRemainder) {
  const Dims d(10, 6, 4);
  const auto chunks = pipeline::make_chunks(d, 4);
  ASSERT_EQ(chunks.size(), 3u);  // 4 + 4 + 2 planes
  std::size_t row = 0, elem = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.row0, row);
    EXPECT_EQ(c.elem0, elem);
    EXPECT_EQ(c.dims.rank, 3);
    EXPECT_EQ(c.dims[0], c.rows);
    EXPECT_EQ(c.dims[1], 6u);
    EXPECT_EQ(c.dims[2], 4u);
    EXPECT_EQ(c.elems, c.rows * 24u);
    row += c.rows;
    elem += c.elems;
  }
  EXPECT_EQ(row, 10u);
  EXPECT_EQ(elem, d.total());
  EXPECT_EQ(chunks.back().rows, 2u);
}

TEST(Sharder, OversizedOrZeroChunkYieldsSingleChunk) {
  for (const std::size_t rows : {std::size_t{0}, std::size_t{99}}) {
    const auto chunks = pipeline::make_chunks(Dims(7, 5), rows);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0].rows, 7u);
    EXPECT_EQ(chunks[0].elems, 35u);
  }
}

TEST(Sharder, DegenerateDimsAreTypedErrors) {
  EXPECT_THROW(pipeline::make_chunks(Dims(std::size_t{0}), 4), Error);
  EXPECT_THROW(pipeline::make_chunks(Dims(4, 0), 4), Error);
  EXPECT_THROW(pipeline::make_chunks(Dims{}, 4), Error);  // rank 0
}

TEST(Sharder, ExtractScatterRoundTrip) {
  Field f = field_for_rank(3);
  const auto chunks = pipeline::make_chunks(f.dims(), 5);
  Field out(f.dims(), -999.0f);
  for (const auto& c : chunks) {
    const Field chunk = pipeline::extract_chunk(f, c);
    EXPECT_EQ(chunk.dims(), c.dims);
    pipeline::scatter_chunk(out, c, chunk);
  }
  for (std::size_t i = 0; i < f.size(); ++i)
    ASSERT_EQ(out.at(i), f.at(i)) << i;
}

TEST(Sharder, ScatterRejectsMismatchedChunk) {
  Field f(Dims(8, 8));
  const auto chunks = pipeline::make_chunks(f.dims(), 4);
  const Field wrong(Dims(3, 8));
  EXPECT_THROW(pipeline::scatter_chunk(f, chunks[0], wrong), Error);
}

TEST(Sharder, AutoChunkRowsTargetsOneMiBIndependentOfThreads) {
  // ~1 MiB of f32 per slab, derived from the dims ALONE (no thread-count
  // parameter exists) so default-chunked containers are byte-identical
  // for every worker count.
  EXPECT_EQ(pipeline::auto_chunk_rows(Dims(std::size_t{8192})), 262144u);
  EXPECT_EQ(pipeline::auto_chunk_rows(Dims(4096, 4096)), 64u);
  EXPECT_EQ(pipeline::auto_chunk_rows(Dims(512, 512, 512)), 1u);
  // Plane wider than the target: still at least one row per chunk.
  EXPECT_EQ(pipeline::auto_chunk_rows(Dims(4, 1 << 20)), 1u);
}

// --------------------------------------------------------- container ----

TEST(Container, SniffAndPeek) {
  auto c = reg().create("parallel:SZ2.1", 2).value();
  const auto stream = c->compress(field_for_rank(2), ErrorBound::Rel(1e-2));
  EXPECT_TRUE(pipeline::is_container(stream));
  const auto inner = pipeline::peek_inner_magic(stream);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(*inner, reg().find("SZ2.1")->magic);

  const auto plain = reg().create("SZ2.1", 2).value()->compress(
      field_for_rank(2), ErrorBound::Rel(1e-2));
  EXPECT_FALSE(pipeline::is_container(plain));
  EXPECT_EQ(pipeline::peek_inner_magic(plain).status().code,
            ErrCode::kBadMagic);
  EXPECT_EQ(pipeline::peek_inner_magic({}).status().code, ErrCode::kTruncated);
}

TEST(Container, HeaderRecordsRequestAndResolvedBound) {
  const Field f = field_for_rank(2);
  ParallelCompressor c({.inner = "SZ2.1", .threads = 2, .chunk_rows = 8}, 2);
  const ErrorBound eb = ErrorBound::Rel(1e-2);
  const auto stream = c.compress(f, eb);
  const auto info = pipeline::read_container(stream);
  ASSERT_TRUE(info.ok()) << info.status().str();
  EXPECT_EQ(info->dims, f.dims());
  EXPECT_EQ(info->eb, eb);
  EXPECT_DOUBLE_EQ(info->abs_eb, eb.absolute(f.value_range()));
  EXPECT_EQ(info->chunk_rows, 8u);
  EXPECT_EQ(info->chunks.size(), 4u);  // 32 rows / 8
  EXPECT_EQ(info->payloads.size(), info->chunks.size());
}

/// Hand-built hostile containers: every malformed table maps to a typed
/// status before any unbounded allocation.
TEST(Container, HostileHeadersAreTypedErrors) {
  const auto base = [] {
    ByteWriter w;
    w.put(pipeline::kContainerMagic);
    w.put(pipeline::kContainerVersion);
    w.put(std::uint32_t{0x1234});  // inner magic (unchecked by the parser)
    return w;
  };
  {  // bad version
    ByteWriter w;
    w.put(pipeline::kContainerMagic);
    w.put(std::uint8_t{99});
    w.put(std::uint32_t{0x1234});
    EXPECT_EQ(pipeline::read_container(w.bytes()).status().code,
              ErrCode::kBadHeader);
  }
  {  // bad rank
    auto w = base();
    w.put(std::uint8_t{4});
    EXPECT_EQ(pipeline::read_container(w.bytes()).status().code,
              ErrCode::kBadHeader);
  }
  {  // dims overflow
    auto w = base();
    w.put(std::uint8_t{2});
    w.put_varint(std::uint64_t{1} << 32);
    w.put_varint(std::uint64_t{1} << 32);
    EXPECT_EQ(pipeline::read_container(w.bytes()).status().code,
              ErrCode::kBadHeader);
  }
  const auto with_bound = [&base] {
    auto w = base();
    w.put(std::uint8_t{1});  // rank 1
    w.put_varint(16);        // dims {16}
    w.put(std::uint8_t{0});  // abs mode
    w.put(1e-3);             // requested
    w.put(1e-3);             // resolved
    return w;
  };
  {  // hostile chunk count: capped before the table allocation
    auto w = with_bound();
    w.put_varint(4);                        // chunk_rows
    w.put_varint(std::uint64_t{1} << 60);  // chunk count
    EXPECT_EQ(pipeline::read_container(w.bytes()).status().code,
              ErrCode::kBadHeader);
  }
  {  // chunk rows exceed the field
    auto w = with_bound();
    w.put_varint(4);
    w.put_varint(2);       // 2 chunks
    w.put_varint(20);      // 20 rows > dims[0]=16
    w.put_varint(0);
    w.put(std::uint32_t{0});  // v2 per-chunk crc
    w.put_varint(1);
    w.put_varint(0);
    w.put(std::uint32_t{0});
    EXPECT_EQ(pipeline::read_container(w.bytes()).status().code,
              ErrCode::kCorruptStream);
  }
  {  // table does not cover the field
    auto w = with_bound();
    w.put_varint(4);
    w.put_varint(1);
    w.put_varint(8);  // only 8 of 16 rows
    w.put_varint(0);
    w.put(std::uint32_t{0});  // v2 per-chunk crc
    EXPECT_EQ(pipeline::read_container(w.bytes()).status().code,
              ErrCode::kCorruptStream);
  }
  {  // payload length overruns the stream
    auto w = with_bound();
    w.put_varint(16);
    w.put_varint(1);
    w.put_varint(16);
    w.put_varint(1000);  // claims 1000 payload bytes; none follow
    w.put(std::uint32_t{0});  // v2 per-chunk crc
    EXPECT_EQ(pipeline::read_container(w.bytes()).status().code,
              ErrCode::kTruncated);
  }
  {  // trailing garbage after the declared payloads
    auto w = with_bound();
    w.put_varint(16);
    w.put_varint(1);
    w.put_varint(16);
    w.put_varint(2);
    const std::uint8_t payload[2] = {0, 0};
    w.put(util::crc32c(payload));  // honest crc of the declared payload
    w.put(std::uint8_t{0});
    w.put(std::uint8_t{0});
    w.put(std::uint8_t{0xEE});  // one byte too many
    EXPECT_EQ(pipeline::read_container(w.bytes()).status().code,
              ErrCode::kCorruptStream);
  }
}

// ------------------------------------------- parallel round-trips --------

/// The acceptance-criteria suite: every registered base codec × 1-D/2-D/
/// 3-D × {Abs, Rel} bounds round-trips through the parallel wrapper with
/// multiple chunks and a real thread pool, and the requested bound holds
/// for EVERY chunk of the reassembled field (max-over-chunks guarantee).
TEST(ParallelPipeline, RoundTripEveryCodecBoundAndRank) {
  for (const auto& name : reg().names()) {
    if (name.rfind("parallel:", 0) == 0) continue;  // wrap each base once
    for (int rank = 1; rank <= 3; ++rank) {
      // Slab thickness that forces several chunks at every rank (512-elem
      // 1-D, 32x48 2-D, 16^3 3-D test fields) but keeps 3-D slabs thick
      // enough for AE-B's fixed 8^3 blocks.
      const std::size_t chunk_rows = rank == 1 ? 128 : 8;
      ParallelCompressor codec(
          {.inner = name, .threads = 3, .chunk_rows = chunk_rows}, rank);
      if (!codec.supports_rank(rank)) continue;
      const Field f = field_for_rank(rank);
      const double range = f.value_range();
      for (const ErrorBound& eb :
           {ErrorBound::Abs(1e-2 * range), ErrorBound::Rel(1e-2)}) {
        const auto stream = codec.compress(f, eb);
        auto recon = codec.decompress(stream);
        ASSERT_TRUE(recon.ok())
            << name << " rank " << rank << " " << eb.str() << ": "
            << recon.status().str();
        ASSERT_EQ(recon->dims(), f.dims()) << name;
        if (!codec.error_bounded()) continue;  // AE-B: fixed ratio
        const double tol = eb.absolute(range) * (1 + 1e-9);
        // Per-chunk bound check against the container's own geometry.
        const auto info = pipeline::read_container(stream);
        ASSERT_TRUE(info.ok());
        for (const auto& chunk : info->chunks) {
          double chunk_err = 0;
          for (std::size_t i = chunk.elem0; i < chunk.elem0 + chunk.elems;
               ++i)
            chunk_err = std::max(
                chunk_err,
                std::abs(static_cast<double>(f.at(i)) - recon->at(i)));
          EXPECT_LE(chunk_err, tol)
              << name << " violated " << eb.str() << " in chunk at row "
              << chunk.row0 << " (rank " << rank << ")";
        }
      }
    }
  }
}

/// Thread counts must not change the bytes: chunk boundaries depend only
/// on (dims, chunk_rows) and per-worker codec instances are identical, so
/// 1-thread and N-thread runs produce byte-identical containers and
/// identical reconstructions.
TEST(ParallelPipeline, DeterministicAcrossThreadCounts) {
  for (const char* name : {"SZ2.1", "ZFP", "AE-SZ"}) {
    const Field f = field_for_rank(2);
    ParallelCompressor one({.inner = name, .threads = 1, .chunk_rows = 8},
                           2);
    ParallelCompressor four({.inner = name, .threads = 4, .chunk_rows = 8},
                            2);
    const auto s1 = one.compress(f, ErrorBound::Rel(1e-2));
    const auto s4 = four.compress(f, ErrorBound::Rel(1e-2));
    EXPECT_EQ(s1, s4) << name << ": containers differ across thread counts";
    auto g1 = four.decompress(s1);  // cross-decode: 4 threads on 1's bytes
    auto g4 = one.decompress(s4);
    ASSERT_TRUE(g1.ok()) << name << ": " << g1.status().str();
    ASSERT_TRUE(g4.ok()) << name << ": " << g4.status().str();
    for (std::size_t i = 0; i < f.size(); ++i)
      ASSERT_EQ(g1->at(i), g4->at(i)) << name << " diverges at " << i;
  }
}

TEST(ParallelPipeline, DefaultChunkingIsAlsoThreadCountInvariant) {
  // The auto chunk size is a function of the dims alone, so the
  // byte-identical guarantee holds with NO chunk_rows given. A rank-1
  // field of 4M elements auto-shards into 16 one-MiB chunks.
  Field f{Dims(std::size_t{4 * 1024 * 1024})};
  for (std::size_t i = 0; i < f.size(); ++i)
    f.at(i) = std::sin(1e-4f * static_cast<float>(i));
  ParallelCompressor one({.inner = "SZ2.1", .threads = 1}, 1);
  ParallelCompressor three({.inner = "SZ2.1", .threads = 3}, 1);
  const auto s1 = one.compress(f, ErrorBound::Rel(1e-3));
  const auto s3 = three.compress(f, ErrorBound::Rel(1e-3));
  EXPECT_EQ(s1, s3);
  const auto info = pipeline::read_container(s1);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->chunks.size(), 16u);
}

TEST(ParallelPipeline, MatchesSingleShotErrorBoundResolution) {
  // A Rel bound resolved against the WHOLE field: a chunk with a smaller
  // local value range must still be held to the global tolerance, i.e.
  // the parallel result satisfies exactly what a single-shot run would.
  Field f(Dims(64, 32));
  for (std::size_t i = 0; i < f.size(); ++i) {
    const float x = static_cast<float>(i) / static_cast<float>(f.size());
    // First half nearly flat, second half spans a large range.
    f.at(i) = i < f.size() / 2 ? 0.01f * x
                               : 10.0f * std::sin(20.0f * x);
  }
  const ErrorBound eb = ErrorBound::Rel(1e-3);
  ParallelCompressor c({.inner = "SZ2.1", .threads = 2, .chunk_rows = 16},
                       2);
  const auto stream = c.compress(f, eb);
  const auto info = pipeline::read_container(stream);
  ASSERT_TRUE(info.ok());
  EXPECT_DOUBLE_EQ(info->abs_eb, eb.absolute(f.value_range()));
  Field g = c.decompress(stream).value();
  EXPECT_LE(metrics::max_abs_err(f.values(), g.values()),
            eb.absolute(f.value_range()) * (1 + 1e-9));
}

TEST(ParallelPipeline, RegistryCreateAndIdentify) {
  // The registry path: `parallel:<codec>` factories and container-aware
  // stream identification.
  const Field f = field_for_rank(2);
  auto c = reg().create("PARALLEL:sz2.1", 2).value();  // case-insensitive
  EXPECT_EQ(c->name(), "parallel:SZ2.1");
  const auto stream = c->compress(f, ErrorBound::Rel(1e-2));
  auto id = reg().identify(stream);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, "parallel:SZ2.1");
  // A container wrapping an unknown inner magic is a typed error.
  auto bad = stream;
  bad[5] ^= 0xFF;  // inner-magic bytes sit after magic+version
  EXPECT_EQ(reg().identify(bad).status().code, ErrCode::kBadMagic);
}

TEST(ParallelPipeline, UnknownInnerCodecIsTypedError) {
  EXPECT_THROW(
      ParallelCompressor({.inner = "SZ9000", .threads = 2}, 2), Error);
}

TEST(ParallelPipeline, WorkerExceptionsSurfaceOnce) {
  ParallelCompressor c({.inner = "SZ2.1", .threads = 3, .chunk_rows = 4},
                       2);
  const Field f = field_for_rank(2);
  // An unusable bound is rejected up front with a typed exception.
  EXPECT_THROW(
      {
        try {
          c.compress(f, ErrorBound::Abs(-1.0));
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrCode::kInvalidArgument);
          throw;
        }
      },
      Error);
  // A chunk whose payload is garbage makes a WORKER throw mid-decode; the
  // pool collects it and decompress() reports a single typed status.
  auto stream = c.compress(f, ErrorBound::Rel(1e-2));
  const auto info = pipeline::read_container(stream);
  ASSERT_TRUE(info.ok());
  ASSERT_GE(info->payloads.size(), 3u);
  const auto& victim = info->payloads[2];
  const std::size_t off =
      static_cast<std::size_t>(victim.data() - stream.data());
  std::fill(stream.begin() + static_cast<long>(off),
            stream.begin() + static_cast<long>(off + victim.size()), 0xAB);
  const auto result = c.decompress(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().code, ErrCode::kOk);
}

/// Satellite regression: mutate a valid container at every chunk boundary
/// (and truncate it there) — each case must come back as a typed error or
/// a decoded field, never a crash or OOB read (run under ASan/UBSan and
/// TSan in CI).
TEST(ParallelPipeline, CorruptionAtEveryChunkBoundary) {
  ParallelCompressor c({.inner = "SZ2.1", .threads = 2, .chunk_rows = 8},
                       2);
  const Field f = field_for_rank(2);
  const auto stream = c.compress(f, ErrorBound::Rel(1e-2));

  // Chunk boundaries: start of each payload, plus the stream end.
  std::vector<std::size_t> boundaries;
  {
    const auto info = pipeline::read_container(stream);
    ASSERT_TRUE(info.ok());
    ASSERT_EQ(info->payloads.size(), 4u);
    for (const auto& p : info->payloads)
      boundaries.push_back(
          static_cast<std::size_t>(p.data() - stream.data()));
    boundaries.push_back(stream.size());
  }

  for (const std::size_t b : boundaries) {
    // Truncation at the boundary must be a typed error (the container
    // declares its payload sizes, so any strict prefix is detectable).
    if (b < stream.size()) {
      std::vector<std::uint8_t> cut(stream.begin(),
                                    stream.begin() + static_cast<long>(b));
      const auto result = c.decompress(cut);
      ASSERT_FALSE(result.ok()) << "prefix of " << b << " bytes accepted";
      EXPECT_NE(result.status().code, ErrCode::kOk);
    }
    // Byte flips just before/after the boundary must not crash; a typed
    // error or a (garbage) field are both acceptable outcomes.
    for (const std::size_t pos : {b - 1, b}) {
      if (pos >= stream.size()) continue;
      auto bad = stream;
      bad[pos] ^= 0x5A;
      const auto result = c.decompress(bad);
      if (!result.ok()) {
        EXPECT_NE(result.status().code, ErrCode::kOk);
      }
    }
  }

  // Every single-byte truncation of the whole stream is also typed (the
  // cheap exhaustive version of the same guarantee).
  for (std::size_t n = 0; n < stream.size(); n += 7) {
    std::vector<std::uint8_t> cut(stream.begin(),
                                  stream.begin() + static_cast<long>(n));
    const auto result = c.decompress(cut);
    ASSERT_FALSE(result.ok()) << n;
  }
}

TEST(ParallelPipeline, SingleChunkFieldStillRoundTrips) {
  // chunk_rows >= d0: one chunk, sequential path, still a valid container.
  const Field f = field_for_rank(1);
  ParallelCompressor c({.inner = "SZinterp", .threads = 4,
                        .chunk_rows = 100000},
                       1);
  const auto stream = c.compress(f, ErrorBound::Abs(1e-3));
  const auto info = pipeline::read_container(stream);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->chunks.size(), 1u);
  Field g = c.decompress(stream).value();
  EXPECT_LE(metrics::max_abs_err(f.values(), g.values()), 1e-3 * (1 + 1e-9));
}

}  // namespace
}  // namespace aesz
