#include <gtest/gtest.h>

#include "ae_baselines/ae_a.hpp"
#include "ae_baselines/ae_b.hpp"
#include "data/synth.hpp"
#include "metrics/metrics.hpp"

namespace aesz {
namespace {

TEST(AeA, ErrorBoundHoldsEvenUntrained) {
  // The residual-correction stream must enforce the bound regardless of
  // model quality (an untrained AE just predicts poorly).
  AEA c(AEA::Options{.window = 256, .latent = 4}, 1);
  Field f = synth::cesm_freqsh(32, 64, 50);
  for (double eb : {1e-2, 1e-3}) {
    const auto stream = c.compress(f, eb);
    Field g = c.decompress(stream).value();
    ASSERT_EQ(g.size(), f.size());
    EXPECT_LE(metrics::max_abs_err(f.values(), g.values()),
              eb * f.value_range() * (1 + 1e-9));
  }
}

TEST(AeA, TrainingImprovesRatio) {
  AEA c(AEA::Options{.window = 256, .latent = 4}, 2);
  Field train = synth::cesm_freqsh(64, 64, 10);
  Field test = synth::cesm_freqsh(64, 64, 55);
  const auto before = c.compress(test, 1e-2);
  TrainOptions topt;
  topt.epochs = 20;
  topt.batch = 16;
  c.train({&train}, topt);
  const auto after = c.compress(test, 1e-2);
  EXPECT_LT(after.size(), before.size() * 1.2);  // no catastrophic regress
  Field g = c.decompress(after).value();
  EXPECT_LE(metrics::max_abs_err(test.values(), g.values()),
            1e-2 * test.value_range() * (1 + 1e-9));
}

TEST(AeA, FlattensAnyRank) {
  AEA c(AEA::Options{.window = 256, .latent = 4}, 3);
  Field f3 = synth::hurricane_qvapor(4, 16, 16, 43);
  const auto stream = c.compress(f3, 1e-2);
  Field g = c.decompress(stream).value();
  EXPECT_EQ(g.dims().rank, 3);
  EXPECT_LE(metrics::max_abs_err(f3.values(), g.values()),
            1e-2 * f3.value_range() * (1 + 1e-9));
}

TEST(AeA, RejectsZeroBound) {
  AEA c(AEA::Options{.window = 256, .latent = 4}, 4);
  Field f(Dims(std::size_t{512}), 1.0f);
  EXPECT_THROW((void)c.compress(f, 0.0), Error);
}

TEST(AeB, FixedRatioIsSixtyFour) {
  AEB c(AEB::Options{}, 5);
  Field f = synth::value_noise_3d(32, 32, 32, 3, 2.0, 6);
  const auto stream = c.compress(f, /*ignored=*/1e-3);
  const double cr = metrics::compression_ratio(f.size(), stream.size());
  EXPECT_GT(cr, 55.0);
  EXPECT_LT(cr, 70.0);  // 64x latents + small header
}

TEST(AeB, NotErrorBounded) {
  AEB c(AEB::Options{}, 5);
  EXPECT_FALSE(c.error_bounded());
}

TEST(AeB, RoundtripShapeAndRange) {
  AEB c(AEB::Options{}, 7);
  Field f = synth::hurricane_u(8, 32, 32, 43);
  Field g = c.decompress(c.compress(f, 0.0)).value();
  ASSERT_EQ(g.dims().rank, 3);
  ASSERT_EQ(g.size(), f.size());
  // Output is tanh-bounded in normalized space => within the data range.
  auto [lo, hi] = f.min_max();
  for (float v : g.values()) {
    EXPECT_GE(v, lo - 1e-3f);
    EXPECT_LE(v, hi + 1e-3f);
  }
}

TEST(AeB, TrainingReducesReconstructionError) {
  AEB c(AEB::Options{.block = 8, .width = 4, .res_blocks = 1}, 8);
  Field train = synth::value_noise_3d(24, 24, 24, 2, 2.0, 9);
  Field test = synth::value_noise_3d(24, 24, 24, 2, 2.0, 9, /*tphase=*/0.5);
  Field g0 = c.decompress(c.compress(test, 0.0)).value();
  const double before = metrics::mse(test.values(), g0.values());
  TrainOptions topt;
  topt.epochs = 6;
  topt.batch = 8;
  c.train({&train}, topt);
  Field g1 = c.decompress(c.compress(test, 0.0)).value();
  EXPECT_LT(metrics::mse(test.values(), g1.values()), before);
}

TEST(AeB, Rejects2DData) {
  AEB c(AEB::Options{}, 10);
  Field f2(Dims(16, 16), 1.0f);
  EXPECT_THROW((void)c.compress(f2, 0.0), Error);
}

}  // namespace
}  // namespace aesz
