#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "predictors/lorenzo.hpp"
#include "predictors/quantizer.hpp"
#include "util/rng.hpp"

namespace aesz {
namespace {

// ----------------------------------------------------------- Lorenzo -----

TEST(Lorenzo, Exact1DOnConstant) {
  std::vector<float> v(10, 3.0f);
  for (std::size_t i = 1; i < v.size(); ++i)
    EXPECT_FLOAT_EQ(lorenzo::predict1(v.data(), i), 3.0f);
}

TEST(Lorenzo, Exact2DOnLinearField) {
  // First-order Lorenzo reproduces any affine field exactly (away from
  // the zero-padded border).
  const Dims d(8, 9);
  std::vector<float> v(d.total());
  for (std::size_t i = 0; i < d[0]; ++i)
    for (std::size_t j = 0; j < d[1]; ++j)
      v[lin2(d, i, j)] = 2.0f + 0.5f * i - 1.25f * j;
  for (std::size_t i = 1; i < d[0]; ++i)
    for (std::size_t j = 1; j < d[1]; ++j)
      EXPECT_NEAR(lorenzo::predict2(v.data(), d, i, j), v[lin2(d, i, j)],
                  1e-5);
}

TEST(Lorenzo, Exact3DOnLinearField) {
  const Dims d(5, 6, 7);
  std::vector<float> v(d.total());
  for (std::size_t i = 0; i < d[0]; ++i)
    for (std::size_t j = 0; j < d[1]; ++j)
      for (std::size_t k = 0; k < d[2]; ++k)
        v[lin3(d, i, j, k)] = 1.0f + 0.3f * i + 0.7f * j - 0.2f * k;
  for (std::size_t i = 1; i < d[0]; ++i)
    for (std::size_t j = 1; j < d[1]; ++j)
      for (std::size_t k = 1; k < d[2]; ++k)
        EXPECT_NEAR(lorenzo::predict3(v.data(), d, i, j, k),
                    v[lin3(d, i, j, k)], 1e-4);
}

TEST(Lorenzo, BilinearErrorIsTheMixedDifference) {
  // For f = i*j the first-order Lorenzo residual equals the constant (1,1)
  // mixed difference (= 1) everywhere in the interior — a sharp check of
  // the stencil arithmetic.
  const Dims d(6, 6);
  std::vector<float> v(d.total());
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      v[lin2(d, i, j)] = static_cast<float>(i * j);
  for (std::size_t i = 1; i < 6; ++i)
    for (std::size_t j = 1; j < 6; ++j)
      EXPECT_NEAR(v[lin2(d, i, j)] - lorenzo::predict2(v.data(), d, i, j),
                  1.0f, 1e-5);
}

TEST(Lorenzo, SecondOrder1DExactOnQuadratic) {
  std::vector<float> v(12);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 1.0f + 2.0f * i + 0.5f * i * i;
  for (std::size_t i = 3; i < v.size(); ++i)
    EXPECT_NEAR(lorenzo::predict1_2nd(v.data(), i), v[i], 1e-4);
}

TEST(Lorenzo, SecondOrder2DExactOnQuadratic) {
  const Dims d(8, 8);
  std::vector<float> v(d.total());
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      v[lin2(d, i, j)] = 1.0f + 0.5f * i * i - 0.25f * j * j + 0.1f * i * j +
                         2.0f * i - j;
  for (std::size_t i = 2; i < 8; ++i)
    for (std::size_t j = 2; j < 8; ++j)
      EXPECT_NEAR(lorenzo::predict2_2nd(v.data(), d, i, j), v[lin2(d, i, j)],
                  1e-3);
}

TEST(Lorenzo, SecondOrder3DExactOnQuadratic) {
  const Dims d(6, 6, 6);
  std::vector<float> v(d.total());
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      for (std::size_t k = 0; k < 6; ++k)
        v[lin3(d, i, j, k)] = 0.3f * i * i + 0.2f * j * j - 0.1f * k * k +
                              0.05f * i * j + 0.02f * j * k + i - 2.0f * k +
                              4.0f;
  for (std::size_t i = 2; i < 6; ++i)
    for (std::size_t j = 2; j < 6; ++j)
      for (std::size_t k = 2; k < 6; ++k)
        EXPECT_NEAR(lorenzo::predict3_2nd(v.data(), d, i, j, k),
                    v[lin3(d, i, j, k)], 1e-3);
}

TEST(Lorenzo, SecondOrderFallsBackNearBorder) {
  const Dims d(4, 4);
  std::vector<float> v(d.total(), 1.0f);
  // At (1,1) the 2nd-order stencil has no room; must match 1st order.
  EXPECT_EQ(lorenzo::predict2_2nd(v.data(), d, 1, 1),
            lorenzo::predict2(v.data(), d, 1, 1));
}

TEST(Lorenzo, BlockL1LossZeroOnLinear) {
  const std::size_t bh = 6, bw = 6;
  std::vector<float> blk(bh * bw);
  for (std::size_t i = 0; i < bh; ++i)
    for (std::size_t j = 0; j < bw; ++j)
      blk[i * bw + j] = 0.25f * i - 0.5f * j;
  // Interior is exact; the zero-padded border contributes the loss.
  const double loss = lorenzo::block_l1_loss_2d(blk, bh, bw);
  double border = 0.0;
  const Dims d(bh, bw);
  for (std::size_t j = 0; j < bw; ++j)
    border +=
        std::abs(blk[j] - lorenzo::predict2(blk.data(), d, 0, j));
  for (std::size_t i = 1; i < bh; ++i)
    border +=
        std::abs(blk[i * bw] - lorenzo::predict2(blk.data(), d, i, 0));
  EXPECT_NEAR(loss, border, 1e-4);
}

// --------------------------------------------------------- Quantizer -----

TEST(Quantizer, ExactWithinBound) {
  LinearQuantizer q(0.5);
  float recon;
  const auto code = q.quantize(10.3f, 9.0f, recon);
  ASSERT_NE(code, LinearQuantizer::kUnpredictable);
  EXPECT_LE(std::abs(recon - 10.3f), 0.5f);
  EXPECT_EQ(q.recover(9.0f, code), recon);
}

TEST(Quantizer, ZeroResidualIsCenterCode) {
  LinearQuantizer q(0.01);
  float recon;
  const auto code = q.quantize(5.0f, 5.0f, recon);
  EXPECT_EQ(code, 32768);
  EXPECT_EQ(recon, 5.0f);
}

TEST(Quantizer, OutOfRangeIsUnpredictable) {
  LinearQuantizer q(1e-6);
  float recon;
  const auto code = q.quantize(1000.0f, 0.0f, recon);
  EXPECT_EQ(code, LinearQuantizer::kUnpredictable);
  EXPECT_EQ(recon, 1000.0f);  // stored verbatim
}

TEST(Quantizer, FloatPrecisionGuard) {
  // Huge magnitude + tiny bound: float rounding would violate the bound,
  // so the point must go unpredictable rather than silently exceed it.
  LinearQuantizer q(1e-3);
  const float orig = 16777216.0f;  // 2^24: float spacing is 2 here
  const float pred = 16777300.0f;
  float recon;
  const auto code = q.quantize(orig, pred, recon);
  // Either verbatim storage or a reconstruction that truly meets the bound.
  EXPECT_LE(std::abs(static_cast<double>(recon) -
                     static_cast<double>(orig)),
            1e-3);
  if (code == LinearQuantizer::kUnpredictable) {
    EXPECT_EQ(recon, orig);
  }
}

struct QuantCase {
  double eb;
  std::uint64_t seed;
};

class QuantizerProperty : public ::testing::TestWithParam<QuantCase> {};

TEST_P(QuantizerProperty, BoundHoldsOnRandomPairs) {
  const auto [eb, seed] = GetParam();
  LinearQuantizer q(eb);
  Rng rng(seed);
  for (int i = 0; i < 20000; ++i) {
    const float orig = static_cast<float>(rng.gaussian() * 10.0);
    const float pred = orig + static_cast<float>(rng.gaussian() * 5.0 * eb);
    float recon;
    const auto code = q.quantize(orig, pred, recon);
    EXPECT_LE(std::abs(static_cast<double>(recon) - orig), eb);
    if (code != LinearQuantizer::kUnpredictable) {
      EXPECT_EQ(q.recover(pred, code), recon);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantizerProperty,
    ::testing::Values(QuantCase{1e-1, 1}, QuantCase{1e-2, 2},
                      QuantCase{1e-3, 3}, QuantCase{1e-4, 4},
                      QuantCase{1e-6, 5}));

}  // namespace
}  // namespace aesz
