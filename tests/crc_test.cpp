// CRC32C correctness: the known-answer vectors every implementation must
// hit, incremental-vs-one-shot equivalence, and the differential sweep
// that keeps the SSE4.2 and slice-by-8 paths interchangeable on every
// machine (the sealed formats must verify identically regardless of which
// path wrote them).

#include "util/crc32c.hpp"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace {

using aesz::util::crc32c;
using aesz::util::crc32c_hw;
using aesz::util::crc32c_hw_available;
using aesz::util::crc32c_sw;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

/// Deterministic pseudo-random buffer (xorshift) — no seeds from the
/// clock, so a failure reproduces byte-identically.
std::vector<std::uint8_t> noise(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> out(n);
  std::uint64_t x = seed | 1;
  for (auto& b : out) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    b = static_cast<std::uint8_t>(x * 0x2545f4914f6cdd1dull >> 56);
  }
  return out;
}

TEST(Crc32c, KnownAnswerVectors) {
  // RFC 3720 (iSCSI) appendix vector and friends.
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c(bytes_of("")), 0x00000000u);
  EXPECT_EQ(crc32c(bytes_of("a")), 0xC1D04330u);
  EXPECT_EQ(crc32c(std::vector<std::uint8_t>(32, 0x00)), 0x8A9136AAu);
  EXPECT_EQ(crc32c(std::vector<std::uint8_t>(32, 0xFF)), 0x62A8AB43u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const auto data = noise(4096 + 7, 42);
  const std::uint32_t whole = crc32c(data);
  // Every split point of a few awkward alignments, plus a 3-way chain.
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{8}, std::size_t{63}, std::size_t{1000},
                          data.size() - 1, data.size()}) {
    std::span<const std::uint8_t> all(data);
    std::uint32_t c = crc32c(all.subspan(0, cut));
    c = crc32c(all.subspan(cut), c);
    EXPECT_EQ(c, whole) << "split at " << cut;
  }
  std::span<const std::uint8_t> all(data);
  std::uint32_t c = crc32c(all.subspan(0, 100));
  c = crc32c(all.subspan(100, 1000), c);
  c = crc32c(all.subspan(1100), c);
  EXPECT_EQ(c, whole);
}

TEST(Crc32c, HardwareAndSoftwarePathsAgree) {
  if (!crc32c_hw_available())
    GTEST_SKIP() << "no SSE4.2; software path is the only path";
  // Sizes straddling every unrolling boundary: sub-word, word, the 8-byte
  // main loop, and tails of every residue class.
  for (std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7},
        std::size_t{8}, std::size_t{9}, std::size_t{15}, std::size_t{16},
        std::size_t{63}, std::size_t{64}, std::size_t{65}, std::size_t{255},
        std::size_t{1024}, std::size_t{65536 + 5}}) {
    const auto data = noise(n, 7 + n);
    EXPECT_EQ(crc32c_hw(data), crc32c_sw(data)) << "n=" << n;
    // And with a nonzero running value.
    EXPECT_EQ(crc32c_hw(data, 0xDEADBEEFu), crc32c_sw(data, 0xDEADBEEFu))
        << "n=" << n;
  }
}

TEST(Crc32c, MisalignedViewsAgreeAcrossPaths) {
  if (!crc32c_hw_available())
    GTEST_SKIP() << "no SSE4.2; software path is the only path";
  const auto data = noise(256 + 16, 99);
  std::span<const std::uint8_t> all(data);
  for (std::size_t off = 0; off < 16; ++off) {
    const auto view = all.subspan(off, 256);
    EXPECT_EQ(crc32c_hw(view), crc32c_sw(view)) << "offset " << off;
  }
}

TEST(Crc32c, EverySingleBitFlipChangesTheChecksum) {
  // CRC's whole job here: no single-bit corruption may go unnoticed.
  const auto data = noise(128, 1234);
  const std::uint32_t clean = crc32c(data);
  for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
    auto damaged = data;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(crc32c(damaged), clean) << "bit " << bit;
  }
}

}  // namespace
