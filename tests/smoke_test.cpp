#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/aesz.hpp"
#include "data/synth.hpp"
#include "metrics/metrics.hpp"

namespace aesz {
namespace {

// End-to-end guard for the whole pipeline (split -> predict -> quantize ->
// encode -> decode): if any stage regresses, the bound or the round-trip
// breaks here before the slower paper benchmarks notice.

AESZ make_tiny_codec(std::uint64_t seed) {
  AESZ::Options opt;
  opt.ae.rank = 2;
  opt.ae.block = 16;
  opt.ae.latent = 8;
  opt.ae.channels = {4, 8};
  return AESZ(opt, seed);
}

TEST(Smoke, RoundTripHoldsErrorBoundAcrossBounds) {
  Field train0 = synth::cesm_cldhgh(48, 64, 10);
  Field train1 = synth::cesm_cldhgh(48, 64, 20);
  Field test = synth::cesm_cldhgh(48, 64, 55);

  AESZ codec = make_tiny_codec(11);
  TrainOptions topt;
  topt.epochs = 4;
  topt.batch = 16;
  codec.train({&train0, &train1}, topt);

  for (const double rel_eb : {1e-1, 1e-2, 1e-3}) {
    const auto stream = codec.compress(test, rel_eb);
    const Field recon = codec.decompress(stream).value();
    ASSERT_EQ(recon.size(), test.size());
    ASSERT_EQ(recon.dims(), test.dims());
    const double abs_eb = rel_eb * test.value_range();
    EXPECT_LE(metrics::max_abs_err(test.values(), recon.values()),
              abs_eb * (1 + 1e-9))
        << "bound violated at rel_eb=" << rel_eb;
    EXPECT_GT(metrics::compression_ratio(test.size(), stream.size()), 1.0)
        << "stream expanded at rel_eb=" << rel_eb;
  }
}

TEST(Smoke, UntrainedModelStillErrorBounded) {
  // The selector must never let a useless AE predictor break the guarantee:
  // quantization enforces the bound regardless of predictor quality.
  Field test = synth::cesm_cldhgh(48, 64, 55);
  AESZ codec = make_tiny_codec(12);

  const double rel_eb = 1e-2;
  const auto stream = codec.compress(test, rel_eb);
  const Field recon = codec.decompress(stream).value();
  ASSERT_EQ(recon.size(), test.size());
  EXPECT_LE(metrics::max_abs_err(test.values(), recon.values()),
            rel_eb * test.value_range() * (1 + 1e-9));
}

TEST(Smoke, RoundTrip3DField) {
  AESZ::Options opt;
  opt.ae.rank = 3;
  opt.ae.block = 8;
  opt.ae.latent = 8;
  opt.ae.channels = {4, 8};
  AESZ codec(opt, 13);

  Field train = synth::hurricane_u(16, 24, 24, 10);
  Field test = synth::hurricane_u(16, 24, 24, 43);
  TrainOptions topt;
  topt.epochs = 4;
  topt.batch = 16;
  codec.train({&train}, topt);

  const double rel_eb = 1e-2;
  const auto stream = codec.compress(test, rel_eb);
  const Field recon = codec.decompress(stream).value();
  ASSERT_EQ(recon.size(), test.size());
  ASSERT_EQ(recon.dims(), test.dims());
  EXPECT_LE(metrics::max_abs_err(test.values(), recon.values()),
            rel_eb * test.value_range() * (1 + 1e-9));
}

}  // namespace
}  // namespace aesz
