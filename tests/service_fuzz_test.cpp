// Deterministic protocol fuzz layer: seeded-PRNG mutations of valid frames
// (bit flips, truncation, extension, splicing, hostile length prefixes)
// pushed through the frame handler, the pipe transport, and the TCP event
// server. The contract under ASan/UBSan (run_sanitizers.sh): every input
// produces a typed error frame or a valid response — never a crash, hang,
// out-of-bounds access, or unbounded allocation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "data/synth.hpp"
#include "service/client.hpp"
#include "service/event_loop.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "util/rng.hpp"

namespace aesz {
namespace {

namespace svc = ::aesz::service;

/// Corpus of well-formed request frames the mutators start from.
std::vector<std::vector<std::uint8_t>> corpus() {
  std::vector<std::vector<std::uint8_t>> out;
  const Field f = synth::cesm_freqsh(16, 24, 50);
  const auto floats = f.values();
  svc::CompressRequest creq;
  creq.codec = "SZ2.1";
  creq.eb = ErrorBound::Rel(1e-2);
  creq.dims = f.dims();
  creq.field = {reinterpret_cast<const std::uint8_t*>(floats.data()),
                floats.size() * sizeof(float)};
  out.push_back(svc::encode_compress_request(creq));
  creq.codec = "AE-SZ";
  out.push_back(svc::encode_compress_request(creq));

  static std::vector<std::uint8_t> stream;  // valid SZ2.1 stream
  if (stream.empty()) {
    svc::Server one_shot;
    auto response = one_shot.handle_frame(out.front());
    auto parsed = svc::parse_compress_response(response);
    EXPECT_TRUE(parsed.ok());
    stream.assign(parsed->stream.begin(), parsed->stream.end());
  }
  svc::DecompressRequest dreq;
  dreq.codec = "";
  dreq.stream = stream;
  out.push_back(svc::encode_decompress_request(dreq));
  out.push_back(svc::encode_list_codecs_request());
  out.push_back(svc::encode_stats_request());

  // Progressive retrieval over a valid AEPR artifact, both modes; the
  // mutators scramble the stream, the mode byte, and the budget/target.
  static std::vector<std::uint8_t> aepr;  // valid AEPR stream
  if (aepr.empty()) {
    svc::Server one_shot;
    svc::CompressRequest preq = creq;
    preq.codec = "progressive:SZ2.1";
    // Keep the response frame alive: parsed->stream is a span into it.
    auto response = one_shot.handle_frame(svc::encode_compress_request(preq));
    auto parsed = svc::parse_compress_response(response);
    EXPECT_TRUE(parsed.ok());
    aepr.assign(parsed->stream.begin(), parsed->stream.end());
  }
  svc::ReadPartialRequest rpreq;
  rpreq.stream = aepr;
  rpreq.mode = svc::PartialMode::kByteBudget;
  rpreq.budget = aepr.size() / 2;
  out.push_back(svc::encode_read_partial_request(rpreq));
  rpreq.mode = svc::PartialMode::kTargetBound;
  rpreq.bound = ErrorBound::Abs(1e-2);
  out.push_back(svc::encode_read_partial_request(rpreq));

  // Stream-session ops. The session ids here are arbitrary — against a
  // fresh server they exercise the kNoSession path, and mutation scrambles
  // them into every other value.
  svc::OpenStreamRequest oreq;
  oreq.codec = "SZ2.1";
  oreq.eb = ErrorBound::Abs(1e-2);
  oreq.dims = f.dims();
  oreq.gop = 4;
  out.push_back(svc::encode_open_stream_request(oreq));
  svc::AppendTimestepRequest areq;
  areq.session_id = 1;
  areq.field = creq.field;
  out.push_back(svc::encode_append_timestep_request(areq));
  svc::ReadTimestepRequest rreq;
  rreq.session_id = 1;
  rreq.timestep = 0;
  out.push_back(svc::encode_read_timestep_request(rreq));
  svc::CloseStreamRequest xreq;
  xreq.session_id = 1;
  out.push_back(svc::encode_close_stream_request(xreq));
  return out;
}

/// A hostile length prefix: either a small lie (peer waits for bytes that
/// never come) or a guaranteed-oversize one (> kMaxFrameBytes, must be
/// rejected before any allocation). Never an in-between value that would
/// make the transport legitimately pre-allocate hundreds of megabytes.
std::uint32_t hostile_len(Rng& rng) {
  if (rng.below(2) == 0)
    return static_cast<std::uint32_t>(rng.below(1 << 16));
  return 0xC0000000u | static_cast<std::uint32_t>(rng.next_u64());
}

/// One deterministic mutation of `base` driven by `rng`.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& base,
                                 const std::vector<std::uint8_t>& other,
                                 Rng& rng) {
  std::vector<std::uint8_t> m = base;
  switch (rng.below(6)) {
    case 0:  // flip 1-8 random bits
      for (std::uint64_t i = 0, n = 1 + rng.below(8); i < n && !m.empty();
           ++i)
        m[rng.below(m.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 1:  // truncate at a random point (frame boundaries included)
      m.resize(rng.below(m.size() + 1));
      break;
    case 2:  // extend with random tail bytes
      for (std::uint64_t i = 0, n = 1 + rng.below(64); i < n; ++i)
        m.push_back(static_cast<std::uint8_t>(rng.below(256)));
      break;
    case 3: {  // splice: head of one frame, tail of another
      const std::size_t cut_a = rng.below(m.size() + 1);
      const std::size_t cut_b = other.empty() ? 0 : rng.below(other.size());
      m.resize(cut_a);
      m.insert(m.end(), other.begin() + cut_b, other.end());
      break;
    }
    case 4:  // stomp a random aligned u32 (magic/length/count fields)
      if (m.size() >= 4) {
        const std::uint32_t v = static_cast<std::uint32_t>(rng.next_u64());
        std::memcpy(m.data() + 4 * rng.below(m.size() / 4), &v, 4);
      }
      break;
    default:  // pure noise of hostile length
      m.assign(rng.below(512), 0);
      for (auto& b : m) b = static_cast<std::uint8_t>(rng.below(256));
      break;
  }
  return m;
}

bool is_valid_response_or_error(std::span<const std::uint8_t> frame) {
  const auto op = svc::peek_op(frame);
  if (!op.ok()) return false;
  switch (*op) {
    case svc::Op::kErrorResponse:
      return svc::parse_error_response(frame).ok();
    case svc::Op::kCompressResponse:
      return svc::parse_compress_response(frame).ok();
    case svc::Op::kDecompressResponse:
      return svc::parse_decompress_response(frame).ok();
    case svc::Op::kListCodecsResponse:
      return svc::parse_list_codecs_response(frame).ok();
    case svc::Op::kStatsResponse:
      return svc::parse_stats_response(frame).ok();
    case svc::Op::kOpenStreamResponse:
      return svc::parse_open_stream_response(frame).ok();
    case svc::Op::kAppendTimestepResponse:
      return svc::parse_append_timestep_response(frame).ok();
    case svc::Op::kReadTimestepResponse:
      return svc::parse_read_timestep_response(frame).ok();
    case svc::Op::kCloseStreamResponse:
      return svc::parse_close_stream_response(frame).ok();
    case svc::Op::kReadPartialResponse:
      return svc::parse_read_partial_response(frame).ok();
    default:
      return false;
  }
}

/// Frame-level: every mutated frame gets a parseable typed response.
TEST(ServiceFuzz, MutatedFramesAlwaysGetTypedResponses) {
  svc::Server server;
  const auto seeds = {0x5eedULL, 0xfeedULL, 0xc0ffeeULL};
  const auto base = corpus();
  for (const auto seed : seeds) {
    Rng rng(seed);
    for (int iter = 0; iter < 150; ++iter) {
      const auto& a = base[rng.below(base.size())];
      const auto& b = base[rng.below(base.size())];
      const auto m = mutate(a, b, rng);
      const auto response = server.handle_frame(m);
      EXPECT_TRUE(is_valid_response_or_error(response))
          << "seed " << seed << " iter " << iter;
    }
  }
  // The server survived several hundred hostile frames and still works.
  const auto ok = server.handle_frame(base.front());
  EXPECT_TRUE(svc::parse_compress_response(ok).ok());
}

/// Stateful session fuzz: a random interleaving of VALID session ops
/// (open / append / read / close, plus stats as a reap tick) against live
/// sessions, with mutated frames spliced in between. Exercises the
/// session table, ticket ordering, and reaping under hostile traffic; the
/// invariant is the same — typed responses only, and a healthy server
/// afterwards with no leaked sessions.
TEST(ServiceFuzz, SessionOpsSurviveRandomInterleaving) {
  svc::Server::Options sopt;
  sopt.max_sessions = 4;  // small cap so the fuzz hits kOverloaded too
  svc::Server server(sopt);
  const Field f = synth::cesm_freqsh(16, 24, 50);
  const auto floats = f.values();
  const std::span<const std::uint8_t> field_bytes{
      reinterpret_cast<const std::uint8_t*>(floats.data()),
      floats.size() * sizeof(float)};
  const auto base = corpus();

  for (const auto seed : {0xdeadULL, 0xbeefULL, 0x5e55ULL}) {
    Rng rng(seed);
    std::vector<std::uint64_t> live;  // ids we believe are open
    for (int iter = 0; iter < 200; ++iter) {
      // A session id to target: usually a live one, sometimes garbage.
      const std::uint64_t id =
          (!live.empty() && rng.below(4) != 0)
              ? live[rng.below(live.size())]
              : rng.next_u64() % 1000;
      std::vector<std::uint8_t> frame;
      switch (rng.below(8)) {
        case 0: {
          svc::OpenStreamRequest req;
          req.codec = rng.below(4) == 0 ? "no-such-codec" : "SZ2.1";
          req.eb = ErrorBound::Abs(1e-2);
          req.dims = f.dims();
          req.gop = rng.below(6);
          frame = svc::encode_open_stream_request(req);
          break;
        }
        case 1:
        case 2: {
          svc::AppendTimestepRequest req;
          req.session_id = id;
          // Sometimes a short/oversized field (kInvalidArgument path).
          req.field = rng.below(5) == 0
                          ? field_bytes.subspan(0, 4 * rng.below(16) + 4)
                          : field_bytes;
          frame = svc::encode_append_timestep_request(req);
          break;
        }
        case 3: {
          svc::ReadTimestepRequest req;
          req.session_id = id;
          req.timestep = rng.below(32);  // often out of range
          frame = svc::encode_read_timestep_request(req);
          break;
        }
        case 4: {
          svc::CloseStreamRequest req;
          req.session_id = id;
          frame = svc::encode_close_stream_request(req);
          break;
        }
        case 5:
          frame = svc::encode_stats_request();  // doubles as a reap tick
          break;
        default:  // splice hostile bytes between the valid session traffic
          frame = mutate(base[rng.below(base.size())],
                         base[rng.below(base.size())], rng);
          break;
      }
      const auto response = server.handle_frame(frame);
      ASSERT_TRUE(is_valid_response_or_error(response))
          << "seed " << seed << " iter " << iter;
      // Track the session table as the server reports it.
      const auto op = svc::peek_op(response);
      if (op.ok() && *op == svc::Op::kOpenStreamResponse)
        live.push_back(svc::parse_open_stream_response(response)->session_id);
      if (op.ok() && *op == svc::Op::kCloseStreamResponse)
        live.erase(std::remove(live.begin(), live.end(), id), live.end());
    }
    // Drain: close everything we still hold; each close must answer with
    // either the artifact or a typed kNoSession (never anything else).
    for (const auto sid : live) {
      svc::CloseStreamRequest req;
      req.session_id = sid;
      const auto response =
          server.handle_frame(svc::encode_close_stream_request(req));
      const auto op = svc::peek_op(response);
      ASSERT_TRUE(op.ok());
      if (*op == svc::Op::kErrorResponse) {
        EXPECT_EQ(svc::parse_error_response(response)->code,
                  ErrCode::kNoSession);
      } else {
        EXPECT_EQ(*op, svc::Op::kCloseStreamResponse);
      }
    }
    live.clear();
  }

  // No leaked sessions, and the server still does normal work.
  const auto stats_frame = server.handle_frame(svc::encode_stats_request());
  auto stats = svc::parse_stats_response(stats_frame);
  ASSERT_TRUE(stats.ok());
  for (const auto& [name, value] : stats->counters) {
    if (name == "sessions_active") {
      EXPECT_EQ(value, 0u);
    }
  }
  const auto ok = server.handle_frame(base.front());
  EXPECT_TRUE(svc::parse_compress_response(ok).ok());
}

/// Pipe-transport-level: mutated bytes INCLUDING the length prefix go
/// through serve()'s framing; the serving thread must always terminate
/// (typed response, or orderly close on an un-resynchronizable prefix).
TEST(ServiceFuzz, PipeTransportSurvivesHostileFraming) {
  svc::Server server;
  const auto base = corpus();
  for (const auto seed : {0x11ULL, 0x22ULL, 0x33ULL}) {
    Rng rng(seed);
    for (int iter = 0; iter < 40; ++iter) {
      auto [client_end, server_end] = svc::PipeTransport::make_pair();
      std::thread serving([&server, &server_end] {
        server.serve(*server_end);
      });
      // A valid framed request, then mutated raw bytes (frame + mangled
      // prefix), then close.
      const auto& a = base[rng.below(base.size())];
      const auto m = mutate(a, base[rng.below(base.size())], rng);
      if (rng.below(2) == 0)
        (void)client_end->send_frame(a);
      std::uint32_t len = static_cast<std::uint32_t>(m.size());
      if (rng.below(3) == 0) len = hostile_len(rng);
      std::uint8_t prefix[4];
      std::memcpy(prefix, &len, 4);
      client_end->send_raw({prefix, 4});
      client_end->send_raw(m);
      client_end->shutdown();
      serving.join();  // must not hang
    }
  }
}

/// TCP-level against the event server: byte soup, split at random points
/// across many connections; the server must survive them all and then
/// serve a normal client correctly.
TEST(ServiceFuzz, EventServerSurvivesTcpByteSoup) {
  svc::Server server;
  auto bound = svc::TcpListener::bind(0);
  ASSERT_TRUE(bound.ok());
  svc::EventServer::Options ev;
  svc::EventServer events(server, **bound, ev);
  std::thread loop([&] { events.run(); });

  const auto base = corpus();
  for (const auto seed : {0xaaULL, 0xbbULL}) {
    Rng rng(seed);
    for (int iter = 0; iter < 30; ++iter) {
      auto conn = svc::TcpTransport::connect("127.0.0.1", (*bound)->port());
      ASSERT_TRUE(conn.ok());
      const auto& a = base[rng.below(base.size())];
      auto m = mutate(a, base[rng.below(base.size())], rng);
      // Random framing: half the time a (possibly lying) prefix, half raw.
      if (rng.below(2) == 0) {
        std::uint32_t len = static_cast<std::uint32_t>(m.size());
        if (rng.below(3) == 0) len = hostile_len(rng);
        std::uint8_t prefix[4];
        std::memcpy(prefix, &len, 4);
        m.insert(m.begin(), prefix, prefix + 4);
      }
      // Split the bytes at random points so frames straddle reads.
      std::size_t off = 0;
      while (off < m.size()) {
        const std::size_t n =
            std::min<std::size_t>(1 + rng.below(96), m.size() - off);
        if (!(*conn)->send_raw({m.data() + off, n}).ok()) break;
        off += n;
      }
      (*conn)->shutdown();  // never waits for a response: hang-proof
    }
  }

  // The loop is still healthy after the abuse.
  auto conn = svc::TcpTransport::connect("127.0.0.1", (*bound)->port());
  ASSERT_TRUE(conn.ok());
  svc::Client client(**conn);
  const Field f = synth::cesm_freqsh(16, 24, 50);
  auto result = client.compress("SZ2.1", f, ErrorBound::Rel(1e-2));
  ASSERT_TRUE(result.ok());
  auto round = client.decompress(result->stream);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->dims().total(), f.dims().total());

  events.stop();
  loop.join();
}

}  // namespace
}  // namespace aesz
