#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "lossless/huffman.hpp"
#include "lossless/lz.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace aesz {
namespace {

std::vector<std::uint16_t> random_symbols(std::size_t n, std::uint16_t maxv,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint16_t> s(n);
  for (auto& v : s) v = static_cast<std::uint16_t>(rng.below(maxv + 1));
  return s;
}

TEST(Huffman, RoundtripUniform) {
  const auto syms = random_symbols(20000, 255, 1);
  const auto enc = huffman::encode(syms);
  EXPECT_EQ(huffman::decode(enc), syms);
}

TEST(Huffman, RoundtripSkewed) {
  // Geometric-ish distribution like quantization bins around the center.
  Rng rng(2);
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 30000; ++i) {
    int v = 32768;
    while (rng.uniform() < 0.5 && std::abs(v - 32768) < 40) {
      v += rng.uniform() < 0.5 ? 1 : -1;
    }
    syms.push_back(static_cast<std::uint16_t>(v));
  }
  const auto enc = huffman::encode(syms);
  EXPECT_EQ(huffman::decode(enc), syms);
  // A heavily skewed stream should compress well below 2 bytes/symbol.
  EXPECT_LT(enc.size(), syms.size());
}

TEST(Huffman, RoundtripSingleSymbol) {
  std::vector<std::uint16_t> syms(1000, 42);
  const auto enc = huffman::encode(syms);
  EXPECT_EQ(huffman::decode(enc), syms);
  EXPECT_LT(enc.size(), 300u);  // ~1 bit per symbol + table
}

TEST(Huffman, RoundtripEmpty) {
  std::vector<std::uint16_t> syms;
  const auto enc = huffman::encode(syms);
  EXPECT_TRUE(huffman::decode(enc).empty());
}

TEST(Huffman, RoundtripTwoSymbols) {
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 100; ++i) syms.push_back(i % 2 ? 7 : 9);
  EXPECT_EQ(huffman::decode(huffman::encode(syms)), syms);
}

TEST(Huffman, RoundtripFullAlphabet) {
  std::vector<std::uint16_t> syms(65536);
  std::iota(syms.begin(), syms.end(), 0);
  EXPECT_EQ(huffman::decode(huffman::encode(syms)), syms);
}

TEST(Huffman, KraftInequalityHolds) {
  Rng rng(3);
  std::vector<std::uint64_t> freq(300);
  for (auto& f : freq) f = rng.below(10000);
  const auto lengths = huffman::code_lengths(freq);
  double kraft = 0.0;
  for (std::size_t i = 0; i < lengths.size(); ++i)
    if (lengths[i]) kraft += std::pow(2.0, -static_cast<double>(lengths[i]));
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(Huffman, NearEntropyOnSkewedData) {
  // Huffman should be within ~1 bit/symbol of the empirical entropy.
  Rng rng(4);
  std::vector<std::uint16_t> syms;
  std::vector<std::uint64_t> freq(16, 0);
  for (int i = 0; i < 50000; ++i) {
    // P(k) ~ 2^-k
    std::uint16_t k = 0;
    while (k < 15 && rng.uniform() < 0.5) ++k;
    syms.push_back(k);
    ++freq[k];
  }
  double entropy = 0.0;
  for (auto f : freq) {
    if (!f) continue;
    const double p = static_cast<double>(f) / syms.size();
    entropy -= p * std::log2(p);
  }
  const auto enc = huffman::encode(syms);
  const double bits_per_sym = 8.0 * enc.size() / syms.size();
  EXPECT_LT(bits_per_sym, entropy + 1.0);
}

TEST(Huffman, CorruptTableThrows) {
  std::vector<std::uint16_t> syms{1, 2, 3};
  auto enc = huffman::encode(syms);
  enc.resize(enc.size() / 2);  // truncate
  EXPECT_THROW((void)huffman::decode(enc), Error);
}

TEST(Lz, RoundtripRandom) {
  Rng rng(5);
  std::vector<std::uint8_t> data(10000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  EXPECT_EQ(lz::decompress(lz::compress(data)), data);
}

TEST(Lz, RoundtripRepetitive) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 1000; ++i)
    for (std::uint8_t b : {1, 2, 3, 4, 5, 6, 7}) data.push_back(b);
  const auto enc = lz::compress(data);
  EXPECT_EQ(lz::decompress(enc), data);
  EXPECT_LT(enc.size(), data.size() / 10);  // highly repetitive
}

TEST(Lz, RoundtripLongRun) {
  std::vector<std::uint8_t> data(100000, 0xAB);  // overlapping match case
  const auto enc = lz::compress(data);
  EXPECT_EQ(lz::decompress(enc), data);
  EXPECT_LT(enc.size(), 200u);
}

TEST(Lz, RoundtripEmpty) {
  std::vector<std::uint8_t> data;
  EXPECT_TRUE(lz::decompress(lz::compress(data)).empty());
}

TEST(Lz, RoundtripTiny) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    std::vector<std::uint8_t> data(n, 9);
    EXPECT_EQ(lz::decompress(lz::compress(data)), data) << "n=" << n;
  }
}

TEST(Lz, RoundtripMixed) {
  // Random segments interleaved with repeats (typical Huffman output).
  Rng rng(6);
  std::vector<std::uint8_t> data;
  for (int seg = 0; seg < 50; ++seg) {
    if (seg % 2) {
      const std::uint8_t b = static_cast<std::uint8_t>(rng.below(256));
      for (int i = 0; i < 200; ++i) data.push_back(b);
    } else {
      for (int i = 0; i < 300; ++i)
        data.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
  }
  EXPECT_EQ(lz::decompress(lz::compress(data)), data);
}

TEST(Lz, MatchesBeyondWindowNotUsed) {
  // Distance > 64 KiB must not be referenced; construct data whose only
  // repeats are 100 KiB apart and check roundtrip.
  Rng rng(7);
  std::vector<std::uint8_t> unique(100000);
  for (auto& b : unique) b = static_cast<std::uint8_t>(rng.below(256));
  std::vector<std::uint8_t> data = unique;
  data.insert(data.end(), unique.begin(), unique.begin() + 1000);
  EXPECT_EQ(lz::decompress(lz::compress(data)), data);
}

TEST(Lz, CorruptStreamThrows) {
  std::vector<std::uint8_t> data(1000, 1);
  auto enc = lz::compress(data);
  enc.resize(3);
  EXPECT_THROW((void)lz::decompress(enc), Error);
}

TEST(QCodec, RoundtripQuantBins) {
  Rng rng(8);
  std::vector<std::uint16_t> codes;
  for (int i = 0; i < 40000; ++i) {
    const double g = rng.gaussian() * 3.0;
    codes.push_back(static_cast<std::uint16_t>(32768 + std::lround(g)));
  }
  const auto enc = qcodec::encode_codes(codes);
  EXPECT_EQ(qcodec::decode_codes(enc), codes);
  // Gaussian bins with sigma 3 have ~3.3 bits of entropy; expect < 1 B/sym.
  EXPECT_LT(enc.size(), codes.size());
}

}  // namespace
}  // namespace aesz
