#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "lossless/huffman.hpp"
#include "lossless/lz.hpp"
#include "util/bytestream.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace aesz {
namespace {

std::vector<std::uint16_t> random_symbols(std::size_t n, std::uint16_t maxv,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint16_t> s(n);
  for (auto& v : s) v = static_cast<std::uint16_t>(rng.below(maxv + 1));
  return s;
}

TEST(Huffman, RoundtripUniform) {
  const auto syms = random_symbols(20000, 255, 1);
  const auto enc = huffman::encode(syms);
  EXPECT_EQ(huffman::decode(enc), syms);
}

TEST(Huffman, RoundtripSkewed) {
  // Geometric-ish distribution like quantization bins around the center.
  Rng rng(2);
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 30000; ++i) {
    int v = 32768;
    while (rng.uniform() < 0.5 && std::abs(v - 32768) < 40) {
      v += rng.uniform() < 0.5 ? 1 : -1;
    }
    syms.push_back(static_cast<std::uint16_t>(v));
  }
  const auto enc = huffman::encode(syms);
  EXPECT_EQ(huffman::decode(enc), syms);
  // A heavily skewed stream should compress well below 2 bytes/symbol.
  EXPECT_LT(enc.size(), syms.size());
}

TEST(Huffman, RoundtripSingleSymbol) {
  std::vector<std::uint16_t> syms(1000, 42);
  const auto enc = huffman::encode(syms);
  EXPECT_EQ(huffman::decode(enc), syms);
  EXPECT_LT(enc.size(), 300u);  // ~1 bit per symbol + table
}

TEST(Huffman, RoundtripEmpty) {
  std::vector<std::uint16_t> syms;
  const auto enc = huffman::encode(syms);
  EXPECT_TRUE(huffman::decode(enc).empty());
}

TEST(Huffman, RoundtripTwoSymbols) {
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 100; ++i) syms.push_back(i % 2 ? 7 : 9);
  EXPECT_EQ(huffman::decode(huffman::encode(syms)), syms);
}

TEST(Huffman, RoundtripFullAlphabet) {
  std::vector<std::uint16_t> syms(65536);
  std::iota(syms.begin(), syms.end(), 0);
  EXPECT_EQ(huffman::decode(huffman::encode(syms)), syms);
}

TEST(Huffman, KraftInequalityHolds) {
  Rng rng(3);
  std::vector<std::uint64_t> freq(300);
  for (auto& f : freq) f = rng.below(10000);
  const auto lengths = huffman::code_lengths(freq);
  double kraft = 0.0;
  for (std::size_t i = 0; i < lengths.size(); ++i)
    if (lengths[i]) kraft += std::pow(2.0, -static_cast<double>(lengths[i]));
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(Huffman, NearEntropyOnSkewedData) {
  // Huffman should be within ~1 bit/symbol of the empirical entropy.
  Rng rng(4);
  std::vector<std::uint16_t> syms;
  std::vector<std::uint64_t> freq(16, 0);
  for (int i = 0; i < 50000; ++i) {
    // P(k) ~ 2^-k
    std::uint16_t k = 0;
    while (k < 15 && rng.uniform() < 0.5) ++k;
    syms.push_back(k);
    ++freq[k];
  }
  double entropy = 0.0;
  for (auto f : freq) {
    if (!f) continue;
    const double p = static_cast<double>(f) / syms.size();
    entropy -= p * std::log2(p);
  }
  const auto enc = huffman::encode(syms);
  const double bits_per_sym = 8.0 * enc.size() / syms.size();
  EXPECT_LT(bits_per_sym, entropy + 1.0);
}

TEST(Huffman, CorruptTableThrows) {
  std::vector<std::uint16_t> syms{1, 2, 3};
  auto enc = huffman::encode(syms);
  enc.resize(enc.size() / 2);  // truncate
  EXPECT_THROW((void)huffman::decode(enc), Error);
}


// ---------------------------------------------------------------------
// Golden encodings captured from the pre-refactor (per-bit) encoder.
// The word-at-a-time encoder must reproduce them byte for byte, and the
// table-driven decoder must decode them — this pins bitstream
// compatibility across the hot-path overhaul. The generators below are
// the exact inputs the fixtures were captured from; keep them in sync.
// ---------------------------------------------------------------------

// GoldenUniform: 2000 symbols -> 2503 bytes
const char* const kGoldenUniform =
    "d00f800280020008010a0109010801080108010a01080108010901080108010701080108"
    "010801080108010901080108010801080108010801080108010801080108010801080108"
    "010801080108010901080108010801080108010901090107010701090109010701080109"
    "010701080108010901070108010901080108010801080109010801080108010801090108"
    "010701090108010701080108010801080108010801080108010901080108010801090108"
    "010901080108010701080109010801080108010801080107010a01090108010801080107"
    "010801080108010801080108010801090108010801090107010801080108010801090108"
    "010801080108010801090108010801080109010901070108010a01080108010801080109"
    "010801080108010801080109010901080108010801090109010701080108010801080108"
    "010801070108010801080109010801080108010801080108010801080108010801080107"
    "010801080108010801080108010801090108010901090108010801070109010901080108"
    "010801090108010801080107010901080109010801080108010801080108010701080108"
    "010901080109010801070108010901080107010801080108010901080109010701090108"
    "010701090109010801090107010801090107010701070108010801080109010701090108"
    "0108010801070109010801080108bf0f5f27f10d39328de79f8b3a54f35c77f689988d92"
    "98bf8446d4fd06634966ef6aa76033d178e5c7f5f1af8f6baa6f18fe04755aa6e6cf83a3"
    "1284ddc3342ac4188dbf3fc30f8caffb31ef4588f98c3f431faa7e31f80d812e944389f2"
    "7fbf81223995f470d3c06e3c206988538a6814554a94c27249721bfc0554798f6c5dfcda"
    "d2e727e6149148065b7a5559b3ae1daa654ba640de5c4fa84f893478d20d49cd1ed1a4ca"
    "c8ad93e77f6ef7e3d5b7def4b3427c49b7b9a5582866cd0c2f41e30a7a666066a9fb8bae"
    "9371fa0ed98da0247cab1c290a755659952b3bd336f9245446c6ad54a9a42d56821f8451"
    "c6de746714b3491f351765b54422f55f6e371034d39c321d2bca5bc93db2a34d8a2cbfc0"
    "9cb7f97aa62f7fe66bb56d646a6666c49572d918bbafd9e49a11158aa87687d61a8b56f5"
    "04dcf277d75d20d030299d632eb8dfda1b0ba4f6bed62dde84bfc609ec8bb1c1bec99a5f"
    "7c8a6838fc693e0d9b93241402de7bf036cf047aaa7a0a999268d0dcd7b68a0a1df55d23"
    "b8b9cb7fe77d5b3d1c89778c96e8270d18557e110d934e4f23382dccf366c2adce1a922f"
    "b293bca66b0827c38bdb5971f537bc682035b249b5367af5ed55173c6074accab5540926"
    "6d651eb61c9481b3d89f8099fa4ea937ebb4bd10d9b544f62074495bf246578ca3cdc1e7"
    "2867f78745613ec0bd4b73ecd5fc8f4bcbf4e259cc78ce963e2b5cd328a46869252618e8"
    "d49c80150954d17097465955c7b71c28d218b6155a1c0c3b255c69b14896bbb722ba55a1"
    "eb083cd2a2b37c22720711a498084cbd44be0b51f0987e244c31cf0b1b5249e21681c2bd"
    "e607024058f8b769cf008a7fa7eeca6d243a8aebb4ed41c0ff71efab3f23ce663f939f57"
    "ace9adb2a888cf8cde7a64819d2d04269d87ffc52ed7327689058807c99704905029735c"
    "20d4f2d78d51d95c9b31d7337e2c4b1802cdfbe7f8c233f435138fa0b9697b01078ea42c"
    "4f7b4ae1d86c969de02303a67bb3af4ad4d2278e6a0d4c53ea9dbfa7f2871e2386abcb6c"
    "b10c24d1bf98586bc3508d49d6d1211a9dde368e37f873ade8fd1f974cedf36294c2f406"
    "1931e9c98c28c882158136f6c2c0559783d4327b825712df89f43f3369d89942e7eceb91"
    "4f04174d38421d8ca790ef9ffe6a08b145d376ce16cce8f4d814a5943cf7e46ab29a43c8"
    "6eb3ab3ef4b064c1a035f94a49369cb9b5b4eae9064d1823b1c3162464fe0df40155993c"
    "cb95b39409ec905430cc88fcbca7feea9075e1aacad5ff84667c25f4bff21d41ce0f8e0e"
    "0424406d7a351beeabfc6a75cceff00ef562f2693af36b6752b26e7bc75046733e5758ef"
    "7750e85970bde3b299fb5a8839d550302d759d986adaf4239fc5a68dab08cb9ca86d0ea5"
    "eef28c347ad5bccad2abee1bdd0bcc347f9a6f459514e36cb76b1ebe97bda25a8155157e"
    "6e52d256c91f47f7f7a9db976bd667f4af20b678c4bbea785df148e5c6f93cdef810b9a6"
    "804181160cec7b5bb0548867fc53fddc94047a48e2e3dcaa6e42ba5ff0c59d8619faa6c2"
    "08274d2e07b5aa5ccb472d53769d892dca1917b207bf801e12d9f49d3445eb87ecd9b800"
    "c16135877353e227668f4dfb26d0c2c29297ff2c3672690cb74b123fb55dfc850e416f61"
    "ae4b2e6da42031a7d272f7180b12bb8a15dda76e9767ea0127207e4c8dc48c71c6507bdf"
    "7b39c37353b535a88d77a2a4184ec105d057043ea7df47ab1c276c03ffe8ba434bab02a9"
    "b2fbbe0c6403f244d07c82da4bebc708bbd08820e5e644aaa8440146bee9c87f92cfc41b"
    "5f9a1943a5640058964f31be857b9bd2a5cecaa645e4d4a789ea876bdd2d76a2b5b34dd4"
    "70a5729de28c6b1e7aea93f5a662ed47113af0329ff19e9309c17efc3ecfac7221ff1890"
    "1694fb7bd1d4fa668a4b324c2edb6d3233a129525bed5d3bbd5e77ed1a7080d5a2bcf9cf"
    "ddf4cadb0025db78ce91b5998c8147bc78f04dba5cafa32f6898cb41e49105f382941e45"
    "65c8a533041cf692685726c20e120083edbda706793300c3573c2f6671715e16bc31d9dd"
    "ceb837e71eb3d26f1c4ad6e116f348ef6bbcf2a0fd999833fab23c2c67ddf9747d0e6441"
    "6d83b4b757a578aa231b753746dced2132bb5b282f7bb4c3e68db267cca91a0358316d0e"
    "72ccd99a94dfaafb67f30c96ed10fba3c443ff421d698dedf05a3c3622cf7ec2a967db61"
    "6f4dc8b215e7cdf2e4d19c5eaf0f96f1d8c5024cbafaabc0eabbb041d22221f44e4948b3"
    "7cf8e4111a638cb13cc4ed5a701a114814f8c8b0d3fa6151120e16360c8caac3b9f335f8"
    "1dad2009adb5296656a8c0cb70efd8c540979f377801a9b39e78711bcce737d0310c13db"
    "b51215b2603b13fd02267519fe8d1b565e9cdd6ccfb57916e35469eb6eef79bc13472427"
    "c3bd36283f7cc55c6d4d97e750746f26a7f26ef17d4a0cb1a450034128f847d51184b38a"
    "ebe6fdce5f23891398e8de0f2c642f39a627affe2bffc4287f3411da8267af1eccfc17f6"
    "212dafb6139f5c5b663c64f7c11be0d4f1cd52df38afd98aba1879595fafe652e8839262"
    "6203d00474e82d8268d2ef4a57e74e1a8c60699b0dfa74bf7e153d1f74fe446767541f18"
    "1512faa3adf216f38ea4b8434f60b86f7fc84bbfe480f823eca60526793983ac8372b8c1"
    "7febd5c05dc68333d48188879bfc4e2af50ffe00ce55ea8e20d6e515189c6c0a4aaabd1a"
    "50b2e21007c96e11bd99cfbcb7e2d5df1f7c1076e2d1425bc8a755c76f2bd649b78a9e74"
    "7138d48d7447bf5992db14fcf4f22d0e12310d";

// GoldenSkewed: 4000 symbols -> 1018 bytes
const char* const kGoldenSkewed =
    "a01f8680020bfbff010a010901070105010201010103010401060108010ada071875f2da"
    "c86cc084e0f95f2e99a9d6860daf9bb9448108b3ee19bcf50ee34fd808c078986fe021ce"
    "771ffe25616676bd40bb2dc4ebfd0a4f51c6613b04eb80bb768dff3406cb5cca3043ef06"
    "43603c11fbb63a332826337e5fed355bd6dcc12f86c600aec3e0f76fd643b3e38cf961dc"
    "233539bded2c7000db41280c18661b3cc1438d198cf9b1df830d23b9dd634e16d6471fc2"
    "7c984503fce0ab357ae9c321dc3e976dadfc20c395cc3c1cb6ae33759665965be9f9369a"
    "d0c4986f8f67034485156bf3c4268b22b8178cce8741f3ee0380dfb059c793017bf69ecc"
    "07723308b00dfe9c50a02118588483817332261c19637c191bdcf7fc9e022448d970deb3"
    "d41b805d64f63b1b6f6b81c3c60f0de968e3e460fe59dd47007bf5a3ceec37d200f360c0"
    "a389d46be8f10445430b8c27df21a199050ff21ede58e74f3036e6e6feefa5edf39881b3"
    "41638d7f7a76834fa007b00359839210e023669a61708475c5e690c1e59d3d2b3ae843c4"
    "b6affb3e0082112b4d3bad1f78e07aeef94984c0f44343ce3103df1bf3c1d82ef32d857b"
    "50eb0c649232b0a1dbe10e0601871d7b2767624ff00c5bfc4cdee2fef5d743d8e05e8d29"
    "d86e30000b3f6003dbc21df0087e62a3e1affd9a6b089602d6a896ffaedb5ed3433a3ce3"
    "89ed19ccc3cd09d842f365fa90ec4ccc286e329e7cfa10baeffc769dfc374cc0ef7dd9e2"
    "09faf66692c169de60037b1e51d0c1e703b405e605633733ed3c8fc6f886f05914a4d6b0"
    "cf19124640c09f18988b19c2a080677d95f76e62188ee875cc1e7140c1689bb8ec9e798c"
    "0c3265e47e0c8997b66fdb5eefdf07864d7c3cb361c320e7ecadc5009d5935b1bbef9506"
    "8c011ac8f191bf80994bccc38d2de3d887fc21f1eaec5938920cc52fc2f44787a2c9fe8c"
    "67e89171cf0327d641653f7814feb18defd8c65ac0c3819f0db9c5b0d1e71fb0595206f4"
    "5a8bbd3c0ad8583773675220867cffe95960c69fe7676e7ec20af6875ef0c6941bd2f830"
    "dec8c08dc0f46fa7c74484613e4058ae301fcea374000151cc13cc8f8a083c00c3e81e60"
    "0b30c6e04326023fc2b0919c77a09d8658af15566c7a3d0fd4fa14179b0f1908f8c4d9d3"
    "5d983fc0fb3d2a1264c6a21964cacd04864764df206e989acd8192e137033c351757c23c"
    "4c677b3cc036ff9406e0a393e32383f2363202f1e5ede43060822c4caf3d1b60765be979"
    "364b8ca30996d67cde34bc0826b1d52b807b7e9e1e2c76fa7f850c36deef736dde84d9bd"
    "3081e8cd01b6308f8db9bb3c22404202ecd8e6a267601297e70df8592c6c9eb1c7a70dce"
    "44d202c8e091c2e7e33f831ecc382c6f61a11a92381f0479b3f10f00dddc3dd36c0cc7f1"
    "36c6d1f89e514c5bb200";

// GoldenSingle: 500 symbols -> 70 bytes
const char* const kGoldenSingle =
    "f4032b012a013f0000000000000000000000000000000000000000000000000000000000"
    "00000000000000000000000000000000000000000000000000000000000000000000";

// GoldenDeep: 6764 symbols -> 2254 bytes
const char* const kGoldenDeep =
    "ec341212001101110110010f010e010d010c010b010a0109010801070106010501040103"
    "01020101a411fffffefffffffdfffdfffe7fffbfffeffffbfffebfffeffffdbffff7fffe"
    "dffffb7fffeffffeeffffeeffffeeffffeeffffeeffffeeffffef7bffffdef7ffffbdfff"
    "fef7bffffdef7ffffbdffffef7bffffdef7ffffdf7df7ffffdf7df7ffffdf7df7ffffdf7"
    "df7ffffdf7df7ffffdf7df7ffffdf7df7ffffdf7df7ffffdf7efdfbf7ffffefdfbf7efdf"
    "bf7ffffefdfbf7efdfbf7ffffefdfbf7efdfbf7ffffefdfbf7efdfbf7ffffefdfbf7efdf"
    "bf7ffffefdfbf7efdfbf7ffffefdfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfb"
    "fbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfb"
    "fbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfbfd7ebfdf"
    "eff7fbfd7ebfdfeff7fbfd7ebfdfeff7fbfd7ebfdfeff7fbfd7ebfdfeff7fbfd7ebfdfef"
    "f7fbfd7ebfdfeff7fbfd7ebfdfeff7fbfd7ebfdfeff7fbfd7ebfdfeff7fbfd7ebfdfeff7"
    "fbfd7ebfdfeff7fbfd7ebfdfeff7fbfd7ebfdfeff7fbfd7ebfdfeff7fbfd7ebfdfeff7fb"
    "fd7ebfdfeff7fbfd7ebfdfeff7fbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbe"
    "effbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbe"
    "effbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbe"
    "effbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbe"
    "effbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbeeffbbe"
    "effbbeeffbbeeffbde7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7bef"
    "bdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbd"
    "f7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7"
    "de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de"
    "7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7b"
    "efbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7bef"
    "bdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7de7befbdf7dedddddddddddddddd"
    "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
    "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
    "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
    "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
    "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
    "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
    "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
    "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
    "ddddddddddddddddddb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddb"
    "b66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddb"
    "b66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddb"
    "b66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddb"
    "b66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddb"
    "b66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddb"
    "b66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddb"
    "b66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddb"
    "b66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddb"
    "b66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb66ddb"
    "b66ddbb66ddbb66ddbb66ddbb66ddbb66ddbb6aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa0000000000000000000000000000"
    "000000000000000000000000000000000000000000000000000000000000000000000000"
    "000000000000000000000000000000000000000000000000000000000000000000000000"
    "000000000000000000000000000000000000000000000000000000000000000000000000"
    "000000000000000000000000000000000000000000000000000000000000000000000000"
    "000000000000000000000000000000000000000000000000000000000000000000000000"
    "000000000000000000000000000000000000000000000000000000000000000000000000"
    "000000000000000000000000000000000000000000000000000000000000000000000000"
    "000000000000000000000000000000000000000000000000000000000000000000000000"
    "00000000000000000000000000000000000000000000";


std::vector<std::uint8_t> from_hex(const char* hex) {
  std::vector<std::uint8_t> out;
  for (const char* p = hex; p[0] && p[1]; p += 2) {
    auto nib = [](char c) {
      return static_cast<std::uint8_t>(c <= '9' ? c - '0' : c - 'a' + 10);
    };
    out.push_back(static_cast<std::uint8_t>((nib(p[0]) << 4) | nib(p[1])));
  }
  return out;
}

std::vector<std::uint16_t> golden_uniform() {
  Rng rng(101);
  std::vector<std::uint16_t> s(2000);
  for (auto& v : s) v = static_cast<std::uint16_t>(rng.below(256));
  return s;
}

std::vector<std::uint16_t> golden_skewed() {
  Rng rng(102);
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 4000; ++i) {
    int v = 32768;
    while (rng.uniform() < 0.5 && std::abs(v - 32768) < 40)
      v += rng.uniform() < 0.5 ? 1 : -1;
    syms.push_back(static_cast<std::uint16_t>(v));
  }
  return syms;
}

std::vector<std::uint16_t> golden_single() {
  return std::vector<std::uint16_t>(500, 42);
}

std::vector<std::uint16_t> golden_deep() {
  // Fibonacci-count runs: symbol i appears fib(i+1) times, which forces
  // code lengths well past the decoder's 11-bit primary table.
  std::vector<std::uint16_t> syms;
  std::uint64_t a = 1, b = 1;
  for (std::uint16_t s = 0; s < 18; ++s) {
    for (std::uint64_t i = 0; i < a; ++i) syms.push_back(s);
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return syms;
}

struct GoldenCase {
  const char* name;
  const char* hex;
  std::vector<std::uint16_t> syms;
};

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  cases.push_back({"uniform", kGoldenUniform, golden_uniform()});
  cases.push_back({"skewed", kGoldenSkewed, golden_skewed()});
  cases.push_back({"single", kGoldenSingle, golden_single()});
  cases.push_back({"deep", kGoldenDeep, golden_deep()});
  return cases;
}

TEST(HuffmanGolden, EncoderByteIdenticalToPreRefactor) {
  for (const auto& gc : golden_cases())
    EXPECT_EQ(huffman::encode(gc.syms), from_hex(gc.hex)) << gc.name;
}

TEST(HuffmanGolden, PreRefactorStreamsDecode) {
  for (const auto& gc : golden_cases()) {
    const auto stream = from_hex(gc.hex);
    EXPECT_EQ(huffman::decode(stream), gc.syms) << gc.name;
    EXPECT_EQ(huffman::decode_reference(stream), gc.syms) << gc.name;
  }
}

TEST(HuffmanGolden, DeepCodesExceedPrimaryTable) {
  // The fixture must actually exercise the long-code fallback: its Huffman
  // tree is Fibonacci-deep, far past the 11-bit primary decode table.
  const auto syms = golden_deep();
  std::vector<std::uint64_t> freq(18, 0);
  for (auto s : syms) ++freq[s];
  const auto lengths = huffman::code_lengths(freq);
  int maxlen = 0;
  for (auto l : lengths) maxlen = std::max<int>(maxlen, l);
  EXPECT_GT(maxlen, 11);
  EXPECT_EQ(huffman::decode(huffman::encode(syms)), syms);
}

TEST(Huffman, DecodeMatchesReferenceOnRandomStreams) {
  // Differential fuzz: the table-driven decoder and the per-bit canonical
  // walk must agree symbol for symbol across alphabet shapes.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(1000 + seed);
    std::vector<std::uint16_t> syms;
    const std::size_t n = 2000 + rng.below(3000);
    const std::uint16_t width =
        static_cast<std::uint16_t>(1u << (2 + seed * 2));  // 16 .. 16384
    for (std::size_t i = 0; i < n; ++i) {
      // Mix a skewed core with uniform outliers to get both short and
      // long codes in one table.
      if (rng.below(8) == 0)
        syms.push_back(static_cast<std::uint16_t>(rng.below(width)));
      else
        syms.push_back(static_cast<std::uint16_t>(rng.below(8)));
    }
    const auto enc = huffman::encode(syms);
    EXPECT_EQ(huffman::decode(enc), syms) << "seed " << seed;
    EXPECT_EQ(huffman::decode(enc), huffman::decode_reference(enc))
        << "seed " << seed;
  }
}

TEST(Huffman, TruncatedStreamsMatchReferenceBehavior) {
  // At every truncation point both decoders must agree: same typed error,
  // or the same (zero-filled) symbol output.
  const auto syms = golden_skewed();
  const auto enc = huffman::encode(syms);
  for (std::size_t cut : {enc.size() - 1, enc.size() * 3 / 4, enc.size() / 2,
                          enc.size() / 4, std::size_t{12}, std::size_t{3}}) {
    std::vector<std::uint8_t> trunc(enc.begin(),
                                    enc.begin() + static_cast<long>(cut));
    std::vector<std::uint16_t> a, b;
    bool threw_a = false, threw_b = false;
    try {
      a = huffman::decode(trunc);
    } catch (const Error&) {
      threw_a = true;
    }
    try {
      b = huffman::decode_reference(trunc);
    } catch (const Error&) {
      threw_b = true;
    }
    EXPECT_EQ(threw_a, threw_b) << "cut " << cut;
    if (!threw_a) {
      EXPECT_EQ(a, b) << "cut " << cut;
    }
  }
}

TEST(Huffman, OversubscribedLengthTableRejected) {
  // Hand-built stream whose table declares three 1-bit codes — a
  // non-prefix-free code space that would previously index the canonical
  // ranges out of bounds. The Kraft check must reject it.
  ByteWriter w;
  w.put_varint(1);  // symbol count
  w.put_varint(4);  // alphabet size
  w.put_varint(3);  // three non-zero lengths
  for (std::uint64_t delta : {0u, 1u, 1u}) {
    w.put_varint(delta);
    w.put(static_cast<std::uint8_t>(1));
  }
  w.put_blob(std::vector<std::uint8_t>{0x00});
  const auto stream = w.take();
  try {
    (void)huffman::decode(stream);
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrCode::kCorruptStream);
  }
}

TEST(Lz, RoundtripRandom) {
  Rng rng(5);
  std::vector<std::uint8_t> data(10000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  EXPECT_EQ(lz::decompress(lz::compress(data)), data);
}

TEST(Lz, RoundtripRepetitive) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 1000; ++i)
    for (std::uint8_t b : {1, 2, 3, 4, 5, 6, 7}) data.push_back(b);
  const auto enc = lz::compress(data);
  EXPECT_EQ(lz::decompress(enc), data);
  EXPECT_LT(enc.size(), data.size() / 10);  // highly repetitive
}

TEST(Lz, RoundtripLongRun) {
  std::vector<std::uint8_t> data(100000, 0xAB);  // overlapping match case
  const auto enc = lz::compress(data);
  EXPECT_EQ(lz::decompress(enc), data);
  EXPECT_LT(enc.size(), 200u);
}

TEST(Lz, RoundtripEmpty) {
  std::vector<std::uint8_t> data;
  EXPECT_TRUE(lz::decompress(lz::compress(data)).empty());
}

TEST(Lz, RoundtripTiny) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    std::vector<std::uint8_t> data(n, 9);
    EXPECT_EQ(lz::decompress(lz::compress(data)), data) << "n=" << n;
  }
}

TEST(Lz, RoundtripMixed) {
  // Random segments interleaved with repeats (typical Huffman output).
  Rng rng(6);
  std::vector<std::uint8_t> data;
  for (int seg = 0; seg < 50; ++seg) {
    if (seg % 2) {
      const std::uint8_t b = static_cast<std::uint8_t>(rng.below(256));
      for (int i = 0; i < 200; ++i) data.push_back(b);
    } else {
      for (int i = 0; i < 300; ++i)
        data.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
  }
  EXPECT_EQ(lz::decompress(lz::compress(data)), data);
}

TEST(Lz, MatchesBeyondWindowNotUsed) {
  // Distance > 64 KiB must not be referenced; construct data whose only
  // repeats are 100 KiB apart and check roundtrip.
  Rng rng(7);
  std::vector<std::uint8_t> unique(100000);
  for (auto& b : unique) b = static_cast<std::uint8_t>(rng.below(256));
  std::vector<std::uint8_t> data = unique;
  data.insert(data.end(), unique.begin(), unique.begin() + 1000);
  EXPECT_EQ(lz::decompress(lz::compress(data)), data);
}

TEST(Lz, CorruptStreamThrows) {
  std::vector<std::uint8_t> data(1000, 1);
  auto enc = lz::compress(data);
  enc.resize(3);
  EXPECT_THROW((void)lz::decompress(enc), Error);
}

TEST(QCodec, RoundtripQuantBins) {
  Rng rng(8);
  std::vector<std::uint16_t> codes;
  for (int i = 0; i < 40000; ++i) {
    const double g = rng.gaussian() * 3.0;
    codes.push_back(static_cast<std::uint16_t>(32768 + std::lround(g)));
  }
  const auto enc = qcodec::encode_codes(codes);
  EXPECT_EQ(qcodec::decode_codes(enc), codes);
  // Gaussian bins with sigma 3 have ~3.3 bits of entropy; expect < 1 B/sym.
  EXPECT_LT(enc.size(), codes.size());
}

}  // namespace
}  // namespace aesz
