// Temporal subsystem (src/temporal/): the residual timestep codec, the
// appendable AETC container, and their hostile-input behavior. The
// acceptance contracts under test:
//   - byte-level determinism: same sequence + same knobs => identical
//     AETC bytes, including across a close/reopen/append cycle;
//   - every decoded timestep honors the per-element bound, for abs and
//     rel modes, across >= 2 inner codecs including parallel:AE-SZ;
//   - corruption at any record boundary is a typed error, never a crash;
//   - a truncated final append recovers to the last complete timestep.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "data/synth.hpp"
#include "temporal/aetc.hpp"
#include "temporal/temporal.hpp"
#include "util/rng.hpp"

namespace aesz::temporal {
namespace {

// A slowly advected 2-D field: frame-to-frame deltas are small relative
// to the field's range, the regime where residual coding wins.
Field advected_frame(std::size_t t, std::size_t h = 32, std::size_t w = 48) {
  return synth::value_noise_2d(h, w, /*octaves=*/3, /*cells0=*/6.0,
                               /*seed=*/77, /*tphase=*/0.15 * static_cast<double>(t));
}

std::vector<Field> advected_sequence(std::size_t n) {
  std::vector<Field> frames;
  frames.reserve(n);
  for (std::size_t t = 0; t < n; ++t) frames.push_back(advected_frame(t));
  return frames;
}

double max_abs_error(const Field& a, const Field& b) {
  double worst = 0.0;
  auto av = a.values();
  auto bv = b.values();
  for (std::size_t i = 0; i < av.size(); ++i)
    worst = std::max(worst, std::abs(static_cast<double>(av[i]) -
                                     static_cast<double>(bv[i])));
  return worst;
}

std::vector<std::uint8_t> compress_sequence(const std::vector<Field>& frames,
                                            TemporalWriter::Options opt,
                                            const ErrorBound& eb) {
  TemporalWriter w(frames[0].dims(), eb, std::move(opt));
  for (const Field& f : frames) w.append(f);
  return w.bytes();
}

// ------------------------------------------------- error-bound matrix ----

struct BoundCase {
  const char* inner;
  ErrorBound eb;
};

class TemporalBounds : public ::testing::TestWithParam<BoundCase> {};

TEST_P(TemporalBounds, EveryDecodedTimestepHonorsThePerElementBound) {
  const auto& p = GetParam();
  const auto frames = advected_sequence(10);
  TemporalWriter::Options opt;
  opt.inner = p.inner;
  opt.gop = 4;
  TemporalWriter w(frames[0].dims(), p.eb, opt);
  std::vector<TemporalWriter::AppendResult> results;
  for (const Field& f : frames) results.push_back(w.append(f));

  // Auto mode on an advected field must actually exercise BOTH paths —
  // a bound test that never decodes a residual proves nothing.
  bool saw_residual = false, saw_intra = false;
  for (const auto& r : results) {
    saw_residual |= r.mode == kModeResidual;
    saw_intra |= r.mode == kModeIntra;
  }
  EXPECT_TRUE(saw_intra);
  EXPECT_TRUE(saw_residual) << "sequence never chose residual coding";

  const auto artifact = w.bytes();
  auto reader = TemporalReader::open(artifact);
  ASSERT_TRUE(reader.ok()) << reader.status().str();
  ASSERT_EQ((*reader)->timesteps(), frames.size());
  for (std::size_t t = 0; t < frames.size(); ++t) {
    auto dec = (*reader)->read(t);
    ASSERT_TRUE(dec.ok()) << "t=" << t << ": " << dec.status().str();
    const double tol =
        p.eb.absolute(frames[t].value_range()) * (1.0 + 1e-6);
    EXPECT_LE(max_abs_error(frames[t], *dec), tol) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    InnerCodecs, TemporalBounds,
    ::testing::Values(BoundCase{"SZ2.1", ErrorBound::Abs(1e-3)},
                      BoundCase{"SZ2.1", ErrorBound::Rel(1e-3)},
                      BoundCase{"SZinterp", ErrorBound::Abs(1e-3)},
                      BoundCase{"SZinterp", ErrorBound::Rel(1e-3)},
                      BoundCase{"parallel:AE-SZ", ErrorBound::Abs(1e-2)},
                      BoundCase{"parallel:AE-SZ", ErrorBound::Rel(1e-2)}),
    [](const auto& info) {
      std::string name = std::string(info.param.inner) + "_" +
                         eb_mode_name(info.param.eb.mode());
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

// ------------------------------------------------------- determinism ----

TEST(TemporalDeterminism, SameSequenceSameKnobsSameBytes) {
  const auto frames = advected_sequence(8);
  TemporalWriter::Options opt;
  opt.inner = "SZ2.1";
  opt.gop = 4;
  const auto a = compress_sequence(frames, opt, ErrorBound::Rel(1e-3));
  const auto b = compress_sequence(frames, opt, ErrorBound::Rel(1e-3));
  EXPECT_EQ(a, b);
}

TEST(TemporalDeterminism, ReopenAppendMatchesContinuousWrite) {
  const auto frames = advected_sequence(9);
  TemporalWriter::Options opt;
  opt.inner = "SZ2.1";
  opt.gop = 4;
  const ErrorBound eb = ErrorBound::Rel(1e-3);

  const auto continuous = compress_sequence(frames, opt, eb);

  // Write 5, serialize, reopen, append the remaining 4: the encoder's
  // reference chain must be rebuilt bit-identically from the artifact.
  TemporalWriter first(frames[0].dims(), eb, opt);
  for (std::size_t t = 0; t < 5; ++t) first.append(frames[t]);
  const auto half = first.bytes();
  auto reopened = TemporalWriter::open(half);
  ASSERT_TRUE(reopened.ok()) << reopened.status().str();
  for (std::size_t t = 5; t < frames.size(); ++t)
    (*reopened)->append(frames[t]);
  EXPECT_EQ((*reopened)->bytes(), continuous);
}

TEST(TemporalDeterminism, ResidualBeatsIndependentSnapshotsOnAdvectedData) {
  const auto frames = advected_sequence(8);
  TemporalWriter::Options residual;
  residual.inner = "SZ2.1";
  residual.gop = 8;
  TemporalWriter::Options intra = residual;
  intra.mode = Mode::kIntra;
  const auto eb = ErrorBound::Rel(1e-3);
  EXPECT_LT(compress_sequence(frames, residual, eb).size(),
            compress_sequence(frames, intra, eb).size());
}

// ------------------------------------------------------ gop cadence ----

TEST(TemporalGop, KeyframesLandOnTheGopCadence) {
  const auto frames = advected_sequence(9);
  TemporalWriter::Options opt;
  opt.inner = "SZ2.1";
  opt.gop = 3;
  opt.mode = Mode::kResidual;  // everything between keyframes residual
  TemporalWriter w(frames[0].dims(), ErrorBound::Rel(1e-3), opt);
  for (std::size_t t = 0; t < frames.size(); ++t) {
    const auto r = w.append(frames[t]);
    EXPECT_EQ(r.mode, t % 3 == 0 ? kModeIntra : kModeResidual) << "t=" << t;
  }
}

TEST(TemporalGop, GopZeroMeansSingleLeadingKeyframe) {
  const auto frames = advected_sequence(6);
  TemporalWriter::Options opt;
  opt.inner = "SZ2.1";
  opt.gop = 0;
  opt.mode = Mode::kResidual;
  TemporalWriter w(frames[0].dims(), ErrorBound::Rel(1e-3), opt);
  for (std::size_t t = 0; t < frames.size(); ++t)
    EXPECT_EQ(w.append(frames[t]).mode, t == 0 ? kModeIntra : kModeResidual);
}

// ----------------------------------------------------- random access ----

TEST(TemporalReadback, RandomAccessMatchesSequentialDecode) {
  const auto frames = advected_sequence(10);
  TemporalWriter::Options opt;
  opt.inner = "SZ2.1";
  opt.gop = 4;
  TemporalWriter w(frames[0].dims(), ErrorBound::Rel(1e-3), opt);
  for (const Field& f : frames) w.append(f);
  const auto artifact = w.bytes();

  auto reader = TemporalReader::open(artifact);
  ASSERT_TRUE(reader.ok());
  std::vector<std::vector<float>> sequential;
  for (std::size_t t = 0; t < frames.size(); ++t) {
    auto dec = (*reader)->read(t);
    ASSERT_TRUE(dec.ok());
    sequential.emplace_back(dec->values().begin(), dec->values().end());
  }
  // Out-of-order reads (seeks backwards across keyframes, repeats) must
  // reconstruct exactly the same frames as the sequential pass — and so
  // must the writer's own read path.
  for (std::size_t t : {9u, 0u, 5u, 5u, 3u, 8u, 1u}) {
    auto dec = (*reader)->read(t);
    ASSERT_TRUE(dec.ok()) << "t=" << t;
    EXPECT_TRUE(std::equal(sequential[t].begin(), sequential[t].end(),
                           dec->values().begin()))
        << "t=" << t;
    auto via_writer = w.read(t);
    ASSERT_TRUE(via_writer.ok()) << "t=" << t;
    EXPECT_TRUE(std::equal(sequential[t].begin(), sequential[t].end(),
                           via_writer->values().begin()))
        << "t=" << t;
  }
  auto oob = (*reader)->read(frames.size());
  EXPECT_FALSE(oob.ok());
  EXPECT_EQ(oob.status().code, ErrCode::kInvalidArgument);
}

// ------------------------------------------------- hostile containers ----

std::vector<std::uint8_t> small_artifact(std::size_t timesteps = 5) {
  TemporalWriter::Options opt;
  opt.inner = "SZ2.1";
  opt.gop = 2;
  return compress_sequence(advected_sequence(timesteps), opt,
                           ErrorBound::Rel(1e-3));
}

TEST(AetcHostile, TruncationAtEveryLengthIsATypedError) {
  const auto artifact = small_artifact();
  for (std::size_t len = 0; len < artifact.size(); ++len) {
    std::span<const std::uint8_t> prefix(artifact.data(), len);
    auto parsed = read_stream(prefix);
    EXPECT_FALSE(parsed.ok()) << "len=" << len;
  }
  EXPECT_TRUE(read_stream(artifact).ok());
}

TEST(AetcHostile, SingleByteCorruptionNeverCrashesStrictRead) {
  const auto artifact = small_artifact(3);
  for (std::size_t i = 0; i < artifact.size(); ++i) {
    auto bad = artifact;
    bad[i] ^= 0xFF;
    auto parsed = read_stream(bad);
    if (!parsed.ok()) continue;  // typed rejection — fine
    // A flip the index can't see (payload interior) must still surface
    // as a typed decode error or a valid decode, never a crash.
    auto reader = TemporalReader::open(bad);
    if (!reader.ok()) continue;
    for (std::size_t t = 0; t < (*reader)->timesteps(); ++t)
      (void)(*reader)->read(t);
  }
}

TEST(AetcHostile, CorruptionAtEveryRecordBoundaryIsRejected) {
  const auto artifact = small_artifact();
  auto info = read_stream(artifact);
  ASSERT_TRUE(info.ok());
  for (const RecordInfo& rec : info->records) {
    // Stomp the record marker: strict read must reject the index/record
    // disagreement, and recovery must stop at the previous record.
    auto bad = artifact;
    bad[rec.offset] = 0x00;
    EXPECT_FALSE(read_stream(bad).ok()) << "offset=" << rec.offset;
    auto recovered = recover_stream(bad);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered->records.size(),
              static_cast<std::size_t>(&rec - info->records.data()));
  }
}

TEST(AetcHostile, TruncatedFinalAppendRecoversToLastCompleteTimestep) {
  const auto frames = advected_sequence(6);
  TemporalWriter::Options opt;
  opt.inner = "SZ2.1";
  opt.gop = 2;
  const ErrorBound eb = ErrorBound::Rel(1e-3);
  TemporalWriter w(frames[0].dims(), eb, opt);
  for (std::size_t t = 0; t + 1 < frames.size(); ++t) w.append(frames[t]);
  const std::size_t body_before = w.body_bytes();
  w.append(frames.back());
  const auto artifact = w.bytes();

  // A crash mid-append: the final record was partially written and the
  // footer never made it. Strict read fails; recovery returns the first
  // 5 timesteps and reopening for append continues deterministically.
  std::vector<std::uint8_t> torn(artifact.begin(),
                                 artifact.begin() + body_before + 7);
  EXPECT_FALSE(read_stream(torn).ok());
  auto recovered = recover_stream(torn);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records.size(), frames.size() - 1);
  EXPECT_EQ(recovered->body_bytes, body_before);

  TemporalWriter::Options reopen_opt;
  auto reopened = TemporalWriter::open(torn, reopen_opt, /*recover=*/true);
  ASSERT_TRUE(reopened.ok()) << reopened.status().str();
  (*reopened)->append(frames.back());
  EXPECT_EQ((*reopened)->bytes(), artifact);
}

TEST(AetcHostile, HeaderFieldValidation) {
  const auto artifact = small_artifact(2);
  {
    auto bad = artifact;
    bad[4] = kFormatVersion + 1;  // future container version
    auto parsed = read_stream(bad);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code, ErrCode::kBadHeader);
  }
  {
    auto bad = artifact;
    bad[0] ^= 0xFF;  // magic
    auto parsed = read_stream(bad);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code, ErrCode::kBadMagic);
    EXPECT_FALSE(is_temporal(bad));
  }
  EXPECT_TRUE(is_temporal(artifact));
}

TEST(AetcHostile, UnknownInnerCodecIsUnsupportedNotACrash) {
  const auto header = write_stream_header("no-such-codec", Dims(8, 8),
                                          ErrorBound::Rel(1e-3), 4);
  std::vector<std::uint8_t> body = header;
  StreamInfo empty;
  const auto footer = write_footer(empty.records);
  body.insert(body.end(), footer.begin(), footer.end());
  auto reader = TemporalReader::open(body);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code, ErrCode::kUnsupported);
}

TEST(AetcHostile, RandomByteSoupNeverCrashes) {
  Rng rng(20260809);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::uint8_t> soup(rng.below(512));
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.below(256));
    // Lead with the magic half the time so the parser gets past byte 4.
    if (iter % 2 == 0 && soup.size() >= 4)
      std::memcpy(soup.data(), &kStreamMagic, 4);
    (void)read_stream(soup);
    (void)recover_stream(soup);
  }
}

}  // namespace
}  // namespace aesz::temporal
