#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "metrics/metrics.hpp"

namespace aesz::metrics {
namespace {

TEST(Metrics, MseBasics) {
  std::vector<float> a{0, 1, 2, 3}, b{0, 1, 2, 3};
  EXPECT_EQ(mse(a, b), 0.0);
  b[0] = 2.0f;  // diff 2 -> squared 4, mean 1
  EXPECT_DOUBLE_EQ(mse(a, b), 1.0);
}

TEST(Metrics, MaxAbsErr) {
  std::vector<float> a{0, 1, 2}, b{0.5f, 1, -1};
  EXPECT_DOUBLE_EQ(max_abs_err(a, b), 3.0);
}

TEST(Metrics, PsnrMatchesClosedForm) {
  // vrange = 10, uniform error 0.1 -> mse = 0.01
  std::vector<float> a(1000), b(1000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(i % 11);
    b[i] = a[i] + 0.1f;
  }
  const double expect = 20.0 * std::log10(10.0) - 10.0 * std::log10(0.01);
  EXPECT_NEAR(psnr(a, b), expect, 0.1);
}

TEST(Metrics, PsnrLosslessSentinel) {
  std::vector<float> a{1, 2, 3};
  EXPECT_EQ(psnr(a, a), 999.0);
}

TEST(Metrics, PsnrMonotoneInError) {
  std::vector<float> a(500), b1(500), b2(500);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = std::sin(0.1f * static_cast<float>(i));
    b1[i] = a[i] + 0.01f;
    b2[i] = a[i] + 0.1f;
  }
  EXPECT_GT(psnr(a, b1), psnr(a, b2));
}

TEST(Metrics, CompressionRatioAndBitRate) {
  // 1000 floats = 4000 bytes; 400 compressed bytes -> CR 10, 3.2 bits/val.
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 400), 10.0);
  EXPECT_DOUBLE_EQ(bit_rate(1000, 400), 3.2);
}

TEST(Metrics, ErrorPdfNormalized) {
  std::vector<float> a(1000, 0.0f), b(1000);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<float>(i % 3) * 0.01f - 0.01f;
  const auto pdf = error_pdf(a, b, -0.1, 0.1, 20);
  EXPECT_EQ(pdf.size(), 20u);
  EXPECT_NEAR(std::accumulate(pdf.begin(), pdf.end(), 0.0), 1.0, 1e-12);
}

TEST(Metrics, ErrorPdfClampsOutliers) {
  std::vector<float> a{0.0f}, b{100.0f};
  const auto pdf = error_pdf(a, b, -1.0, 1.0, 4);
  EXPECT_EQ(pdf.back(), 1.0);  // clamped to edge bin
}

TEST(Metrics, RdRowFormatting) {
  RDPoint p{1e-3, 0.5, 62.1, 64.0, 3.1e-3};
  const auto row = format_rd_row("SZ2.1", p);
  EXPECT_NE(row.find("SZ2.1"), std::string::npos);
  EXPECT_NE(row.find("62.1"), std::string::npos);
  EXPECT_FALSE(rd_header().empty());
}

}  // namespace
}  // namespace aesz::metrics
