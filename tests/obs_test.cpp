// Observability-layer tests (src/obs/): histogram bucket layout and
// quantile accuracy against exact order statistics, snapshot merging,
// registry registration-order/kind/name discipline, Prometheus exposition
// validity, log-level parsing, trace-context propagation through the
// prof::StageScope sink, and Chrome trace-event JSONL emission — both from
// a bare TraceWriter and end-to-end through a Server with trace_out set.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "data/synth.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stage_timer.hpp"

namespace aesz {
namespace {

namespace svc = ::aesz::service;

// ------------------------------------------------------------ buckets ----

TEST(HistogramBuckets, BoundsFollowTheRecurrenceAndStrictlyIncrease) {
  EXPECT_EQ(obs::histogram_bucket_bound(0), 1u);
  for (std::size_t i = 0; i + 1 < obs::kHistogramBuckets; ++i) {
    const std::uint64_t b = obs::histogram_bucket_bound(i);
    const std::uint64_t expect = std::max(b + 1, b + b / 4);
    EXPECT_EQ(obs::histogram_bucket_bound(i + 1), expect) << i;
    EXPECT_LT(b, obs::histogram_bucket_bound(i + 1)) << i;
  }
  // The layout spans nanosecond-scale values up to hours.
  EXPECT_GT(obs::histogram_bucket_bound(obs::kHistogramBuckets - 1),
            std::uint64_t{3600} * 1000 * 1000 * 1000);
}

TEST(HistogramBuckets, IndexMapsBoundariesToTheirOwnBucket) {
  EXPECT_EQ(obs::histogram_bucket_index(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(1), 0u);
  for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i) {
    const std::uint64_t b = obs::histogram_bucket_bound(i);
    // A bucket's inclusive upper bound counts into the bucket itself...
    EXPECT_EQ(obs::histogram_bucket_index(b), i) << i;
    // ...and the next value starts the next bucket (or overflow).
    EXPECT_EQ(obs::histogram_bucket_index(b + 1),
              i + 1 < obs::kHistogramBuckets ? i + 1 : obs::kHistogramBuckets)
        << i;
  }
  EXPECT_EQ(obs::histogram_bucket_index(~std::uint64_t{0}),
            obs::kHistogramBuckets);
}

// ---------------------------------------------------------- quantiles ----

/// Assert the histogram quantile tracks the exact order statistic within
/// one bucket width (~25% relative) plus small-integer slack.
void check_quantiles(const std::vector<std::uint64_t>& values) {
  obs::Histogram h;
  std::uint64_t sum = 0;
  for (auto v : values) {
    h.observe(v);
    sum += v;
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.sum, sum);

  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.50, 0.90, 0.99}) {
    std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size()));
    if (rank < 1) rank = 1;
    const double exact = static_cast<double>(sorted[rank - 1]);
    const double est = snap.quantile(q);
    EXPECT_LE(std::abs(est - exact), 0.30 * exact + 2.0)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(HistogramQuantile, TracksUniformSamplesWithinABucket) {
  Rng rng(17);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10000; ++i) values.push_back(rng.below(1000000));
  check_quantiles(values);
}

TEST(HistogramQuantile, TracksExponentialSamplesWithinABucket) {
  Rng rng(29);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10000; ++i) {
    const double u =
        (static_cast<double>(rng.below(1000000)) + 1.0) / 1000001.0;
    values.push_back(static_cast<std::uint64_t>(-std::log(u) * 50000.0));
  }
  check_quantiles(values);
}

TEST(HistogramQuantile, SingleValueDistributionStaysInItsBucket) {
  obs::Histogram h;
  for (int i = 0; i < 1000; ++i) h.observe(777);
  const auto snap = h.snapshot();
  const std::size_t idx = obs::histogram_bucket_index(777);
  const double lo = static_cast<double>(obs::histogram_bucket_bound(idx - 1));
  const double hi = static_cast<double>(obs::histogram_bucket_bound(idx));
  for (double q : {0.0, 0.5, 1.0}) {
    const double est = snap.quantile(q);
    EXPECT_GT(est, lo) << q;
    EXPECT_LE(est, hi) << q;
  }
}

TEST(HistogramQuantile, EmptyHistogramReportsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.snapshot().quantile(0.5), 0.0);
}

TEST(HistogramQuantile, OverflowValuesClampToTheLastFiniteBound) {
  obs::Histogram h;
  const std::uint64_t last =
      obs::histogram_bucket_bound(obs::kHistogramBuckets - 1);
  h.observe(last + 5);
  h.observe(last + 123456789);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, (last + 5) + (last + 123456789));
  EXPECT_EQ(snap.buckets[obs::kHistogramBuckets], 2u);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), static_cast<double>(last));
}

TEST(HistogramSnapshot, MergeEqualsObservingTheUnion) {
  Rng rng(41);
  std::vector<std::uint64_t> a, b;
  for (int i = 0; i < 500; ++i) a.push_back(rng.below(100000));
  for (int i = 0; i < 700; ++i) b.push_back(rng.below(100000000));
  obs::Histogram ha, hb, hu;
  for (auto v : a) {
    ha.observe(v);
    hu.observe(v);
  }
  for (auto v : b) {
    hb.observe(v);
    hu.observe(v);
  }
  auto merged = ha.snapshot();
  merged.merge(hb.snapshot());
  const auto un = hu.snapshot();
  EXPECT_EQ(merged.count, un.count);
  EXPECT_EQ(merged.sum, un.sum);
  for (std::size_t i = 0; i < merged.buckets.size(); ++i)
    EXPECT_EQ(merged.buckets[i], un.buckets[i]) << i;
  EXPECT_DOUBLE_EQ(merged.quantile(0.9), un.quantile(0.9));
}

// ----------------------------------------------------------- registry ----

TEST(MetricsRegistry, SnapshotKeepsRegistrationOrder) {
  obs::MetricsRegistry m;
  m.counter("zzz_last_alphabetically").inc(3);
  m.gauge("aaa_first_alphabetically").set(-2);
  m.histogram("mmm_middle").observe(10);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "zzz_last_alphabetically");
  EXPECT_EQ(snap[0].kind, obs::MetricKind::kCounter);
  EXPECT_EQ(snap[0].counter, 3u);
  EXPECT_EQ(snap[1].name, "aaa_first_alphabetically");
  EXPECT_EQ(snap[1].gauge, -2);
  EXPECT_EQ(snap[2].name, "mmm_middle");
  EXPECT_EQ(snap[2].hist.count, 1u);
}

TEST(MetricsRegistry, GetOrCreateReturnsTheSameInstrument) {
  obs::MetricsRegistry m;
  obs::Counter& a = m.counter("c", "help fixed by first call");
  obs::Counter& b = m.counter("c", "ignored");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(2);
  EXPECT_EQ(a.value(), 3u);
}

TEST(MetricsRegistry, KindMismatchThrowsInvalidArgument) {
  obs::MetricsRegistry m;
  m.counter("c");
  try {
    m.gauge("c");
    FAIL() << "kind mismatch did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrCode::kInvalidArgument);
  }
}

TEST(MetricsRegistry, BadPrometheusNameThrowsInvalidArgument) {
  obs::MetricsRegistry m;
  for (const char* bad : {"", "1starts_with_digit", "has-dash", "has space"}) {
    try {
      m.counter(bad);
      FAIL() << "'" << bad << "' accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrCode::kInvalidArgument) << bad;
    }
  }
  m.counter("_leading_underscore_is_fine");
}

TEST(MetricsRegistry, PrometheusExpositionIsWellFormed) {
  obs::MetricsRegistry m;
  m.counter("reqs", "requests").inc(3);
  m.gauge("depth", "queue depth").set(-2);
  auto& h = m.histogram("lat_ns", "latency");
  h.observe(1);
  h.observe(100);
  h.observe(100);
  h.observe(obs::histogram_bucket_bound(obs::kHistogramBuckets - 1) + 7);
  const std::string text = m.prometheus("aesz_");

  EXPECT_NE(text.find("# HELP aesz_reqs requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aesz_reqs counter\n"), std::string::npos);
  EXPECT_NE(text.find("aesz_reqs 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aesz_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("aesz_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aesz_lat_ns histogram\n"), std::string::npos);
  EXPECT_NE(text.find("aesz_lat_ns_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("aesz_lat_ns_count 4\n"), std::string::npos);

  // Cumulative bucket counts must be monotone and every le bound larger
  // than the previous one.
  std::uint64_t prev_cum = 0;
  double prev_le = -1.0;
  std::size_t pos = 0;
  std::size_t bucket_lines = 0;
  while ((pos = text.find("aesz_lat_ns_bucket{le=\"", pos)) !=
         std::string::npos) {
    pos += std::string("aesz_lat_ns_bucket{le=\"").size();
    const std::size_t end_quote = text.find('"', pos);
    const std::string le = text.substr(pos, end_quote - pos);
    const double le_val = le == "+Inf" ? 1e300 : std::stod(le);
    const std::uint64_t cum =
        std::stoull(text.substr(text.find('}', end_quote) + 2));
    EXPECT_GT(le_val, prev_le);
    EXPECT_GE(cum, prev_cum);
    prev_le = le_val;
    prev_cum = cum;
    ++bucket_lines;
  }
  EXPECT_GE(bucket_lines, 3u);  // two finite buckets hit + "+Inf"
}

// ---------------------------------------------------------------- log ----

TEST(Log, ParseLevelNamesCaseInsensitively) {
  EXPECT_EQ(*obs::parse_log_level("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(*obs::parse_log_level("WARN"), obs::LogLevel::kWarn);
  EXPECT_EQ(*obs::parse_log_level("warning"), obs::LogLevel::kWarn);
  EXPECT_EQ(*obs::parse_log_level("off"), obs::LogLevel::kOff);
  EXPECT_EQ(*obs::parse_log_level("none"), obs::LogLevel::kOff);
  const auto bad = obs::parse_log_level("loud");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code, ErrCode::kInvalidArgument);
}

TEST(Log, LevelNamesRoundTripThroughParse) {
  for (auto l : {obs::LogLevel::kTrace, obs::LogLevel::kDebug,
                 obs::LogLevel::kInfo, obs::LogLevel::kWarn,
                 obs::LogLevel::kError, obs::LogLevel::kOff})
    EXPECT_EQ(*obs::parse_log_level(obs::log_level_name(l)), l);
}

TEST(Log, ThresholdGatesEnabledLevels) {
  const auto saved = obs::log_level();
  obs::set_log_level(obs::LogLevel::kError);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kWarn));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kError));
  obs::set_log_level(obs::LogLevel::kOff);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kError));
  obs::set_log_level(saved);
}

// -------------------------------------------------------------- trace ----

TEST(Trace, RequestIdsAreUniqueAndIncreasing) {
  std::uint64_t prev = obs::next_request_id();
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = obs::next_request_id();
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(Trace, ScopeInstallsAndRestoresNested) {
  EXPECT_EQ(obs::current_trace(), nullptr);
  obs::RequestTrace outer, inner;
  {
    obs::TraceScope s1(&outer);
    EXPECT_EQ(obs::current_trace(), &outer);
    {
      obs::TraceScope s2(&inner);
      EXPECT_EQ(obs::current_trace(), &inner);
    }
    EXPECT_EQ(obs::current_trace(), &outer);
    {
      obs::TraceScope s3(nullptr);  // no-op scope
      EXPECT_EQ(obs::current_trace(), &outer);
    }
  }
  EXPECT_EQ(obs::current_trace(), nullptr);
}

TEST(Trace, StageSinkBillsNanosecondsIntoTheCurrentTrace) {
  obs::RequestTrace t;
  {
    obs::TraceScope scope(&t);
    const prof::StageSink& sink = prof::stage_sink();
    ASSERT_NE(sink.fn, nullptr);
    sink.fn(sink.ctx, prof::Stage::kQuantize, 123);
    sink.fn(sink.ctx, prof::Stage::kQuantize, 7);
    sink.fn(sink.ctx, prof::Stage::kEntropy, 50);
  }
  EXPECT_EQ(t.stage_ns[static_cast<int>(prof::Stage::kQuantize)], 130u);
  EXPECT_EQ(t.stage_ns[static_cast<int>(prof::Stage::kEntropy)], 50u);
  // Outside the scope the sink is gone again.
  EXPECT_EQ(prof::stage_sink().fn, nullptr);
}

TEST(Trace, WallTimeIsQueueWaitPlusExecByConstruction) {
  obs::RequestTrace t;
  t.admit_ns = 1000;
  t.exec_start_ns = 5000;
  t.exec_end_ns = 9000;
  t.queue_wait_ns = t.exec_start_ns - t.admit_ns;
  EXPECT_EQ(t.exec_ns(), 4000u);
  EXPECT_EQ(t.wall_ns(), 8000u);
  EXPECT_EQ(t.wall_ns(), t.queue_wait_ns + t.exec_ns());
}

// ----------------------------------------------- trace JSONL validator ----

/// Minimal structural JSON check: quote/escape-aware brace and bracket
/// balance, non-empty, whole line consumed. Catches truncated writes and
/// unescaped quotes without pulling in a JSON dependency.
bool json_line_valid(const std::string& line) {
  if (line.empty() || line[0] != '{') return false;
  int depth = 0;
  bool in_string = false, escaped = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    if (depth == 0 && i + 1 < line.size()) return false;  // trailing junk
  }
  return depth == 0 && !in_string;
}

/// Value of a numeric field like "dur":12.5 in a one-line JSON object;
/// NaN when absent.
double num_field(const std::string& line, const std::string& key) {
  const std::size_t pos = line.find("\"" + key + "\":");
  if (pos == std::string::npos) return std::nan("");
  return std::stod(line.substr(pos + key.size() + 3));
}

std::string str_field(const std::string& line, const std::string& key) {
  const std::size_t pos = line.find("\"" + key + "\":\"");
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + key.size() + 4;
  return line.substr(start, line.find('"', start) - start);
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

TEST(TraceWriter, EmitsValidChromeTraceJsonl) {
  const std::string path = testing::TempDir() + "/aesz_trace_unit.jsonl";
  auto writer = obs::TraceWriter::open(path);
  ASSERT_TRUE(writer.ok()) << writer.status().str();

  obs::RequestTrace t;
  t.id = 42;
  t.op = "compress";
  t.conn_id = 7;
  t.admit_ns = 1000;
  t.exec_start_ns = 5000;
  t.exec_end_ns = 905000;
  t.queue_wait_ns = 4000;
  t.batch_wait_ns = 2000;
  t.stage_ns[static_cast<int>(prof::Stage::kPredict)] = 100000;
  t.stage_ns[static_cast<int>(prof::Stage::kEntropy)] = 200000;
  t.bytes_in = 1234;
  t.bytes_out = 567;
  (*writer)->write(t);
  writer->reset();  // close + flush

  const auto lines = read_lines(path);
  // queue-wait + batch-coalesce + request + 2 nonzero stages.
  ASSERT_EQ(lines.size(), 5u);
  for (const auto& line : lines) {
    EXPECT_TRUE(json_line_valid(line)) << line;
    EXPECT_EQ(str_field(line, "ph"), "X") << line;
    EXPECT_EQ(num_field(line, "tid"), 42.0) << line;
  }
  // ts/dur are microseconds on the shared monotonic clock.
  const std::string& queue = lines[0];
  EXPECT_EQ(str_field(queue, "name"), "queue-wait");
  EXPECT_DOUBLE_EQ(num_field(queue, "ts"), 1.0);
  EXPECT_DOUBLE_EQ(num_field(queue, "dur"), 4.0);
  const std::string& coalesce = lines[1];
  EXPECT_EQ(str_field(coalesce, "name"), "batch-coalesce");
  // The coalesce span ends exactly at execution start.
  EXPECT_DOUBLE_EQ(num_field(coalesce, "ts") + num_field(coalesce, "dur"),
                   5.0);
  const std::string& req = lines[2];
  EXPECT_EQ(str_field(req, "name"), "compress");
  EXPECT_DOUBLE_EQ(num_field(req, "ts"), 5.0);
  EXPECT_DOUBLE_EQ(num_field(req, "dur"), 900.0);
  EXPECT_EQ(num_field(req, "conn"), 7.0);
  EXPECT_EQ(num_field(req, "bytes_in"), 1234.0);
  EXPECT_EQ(num_field(req, "error"), 0.0);
  // Wall == queue wait + exec, reported in the args.
  EXPECT_DOUBLE_EQ(num_field(req, "wall_us"),
                   num_field(req, "queue_wait_us") + num_field(req, "dur"));
  // Stage children tile the front of the request span in stage order.
  EXPECT_EQ(str_field(lines[3], "name"), "predict");
  EXPECT_DOUBLE_EQ(num_field(lines[3], "ts"), 5.0);
  EXPECT_DOUBLE_EQ(num_field(lines[3], "dur"), 100.0);
  EXPECT_EQ(str_field(lines[4], "name"), "entropy");
  EXPECT_DOUBLE_EQ(num_field(lines[4], "ts"), 105.0);
  EXPECT_DOUBLE_EQ(num_field(lines[4], "dur"), 200.0);
}

TEST(TraceWriter, UnopenablePathIsATypedIoError) {
  const auto w = obs::TraceWriter::open("/nonexistent-dir/x/y.jsonl");
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.status().code, ErrCode::kIoError);
}

TEST(ServerTracing, TraceOutCapturesRequestSpansThatSumToWallTime) {
  const std::string path = testing::TempDir() + "/aesz_trace_server.jsonl";
  const Field f = synth::cesm_freqsh(32, 48, 50);
  {
    svc::Server::Options opt;
    opt.threads = 1;
    opt.trace_out = path;
    svc::Server server(opt);

    svc::CompressRequest creq;
    creq.codec = "SZ2.1";
    creq.eb = ErrorBound::Rel(1e-2);
    creq.dims = f.dims();
    const auto v = f.values();
    creq.field = {reinterpret_cast<const std::uint8_t*>(v.data()),
                  v.size() * sizeof(float)};
    const auto cresp = server.handle_frame(svc::encode_compress_request(creq));
    const auto parsed = svc::parse_compress_response(cresp);
    ASSERT_TRUE(parsed.ok()) << parsed.status().str();
    svc::DecompressRequest dreq;
    dreq.stream = parsed->stream;
    ASSERT_TRUE(svc::peek_op(server.handle_frame(
                                 svc::encode_decompress_request(dreq)))
                    .ok());
    server.handle_frame(svc::encode_stats_request());
  }  // server teardown closes the trace file

  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), 3u);
  std::map<std::uint64_t, std::pair<double, double>> request_span;  // tid->ts,end
  std::size_t requests = 0;
  for (const auto& line : lines) {
    ASSERT_TRUE(json_line_valid(line)) << line;
    if (str_field(line, "cat") != "request") continue;
    ++requests;
    const double dur = num_field(line, "dur");
    EXPECT_GE(dur, 0.0) << line;
    // The request's reported wall time is its queue wait plus its span.
    EXPECT_NEAR(num_field(line, "wall_us"),
                num_field(line, "queue_wait_us") + dur, 0.01)
        << line;
    request_span[static_cast<std::uint64_t>(num_field(line, "tid"))] = {
        num_field(line, "ts"), num_field(line, "ts") + dur};
  }
  EXPECT_EQ(requests, 3u);  // compress, decompress, stats

  // Codec stage children must land inside their request's span (the
  // compress request runs real predict/entropy stages through the sink).
  std::size_t stage_children = 0;
  for (const auto& line : lines) {
    if (str_field(line, "cat") != "stage") continue;
    ++stage_children;
    const auto it = request_span.find(
        static_cast<std::uint64_t>(num_field(line, "tid")));
    ASSERT_NE(it, request_span.end()) << line;
    EXPECT_GE(num_field(line, "ts") + 1e-6, it->second.first) << line;
    EXPECT_LE(num_field(line, "ts") + num_field(line, "dur"),
              it->second.second * 1.05 + 100.0)
        << line;
  }
  EXPECT_GE(stage_children, 2u);  // SZ2.1: fused predict + entropy at least
}

}  // namespace
}  // namespace aesz
