#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "ae_baselines/ae_b.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/gdn.hpp"
#include "nn/losses.hpp"

namespace aesz::nn {
namespace {

/// Finite-difference gradient check of a layer: scalar objective
/// S(x) = sum_i r_i * forward(x)_i with fixed random r. Verifies dS/dx
/// against Layer::backward and dS/dparam against the accumulated grads.
/// float32 central differences carry ~1e-3 noise, hence the loose but
/// still bug-catching tolerance.
void gradcheck_layer(Layer& layer, std::vector<std::size_t> in_shape,
                     std::uint64_t seed, float h = 2e-2f,
                     float tol = 4e-2f) {
  Rng rng(seed);
  Tensor x(in_shape);
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] = 0.5f * rng.gaussianf();

  Tensor y0 = layer.forward(x, /*train=*/true);
  Tensor r(y0.shape());
  for (std::size_t i = 0; i < r.numel(); ++i) r[i] = rng.gaussianf();

  for (Param* p : layer.params()) p->grad.zero();
  Tensor gx = layer.backward(r);

  auto objective = [&](const Tensor& xin) {
    Tensor y = layer.forward(xin, /*train=*/false);
    double s = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i)
      s += static_cast<double>(r[i]) * y[i];
    return s;
  };

  // Input gradient at a sample of indices.
  const std::size_t n_checks = std::min<std::size_t>(x.numel(), 12);
  for (std::size_t c = 0; c < n_checks; ++c) {
    const std::size_t i = rng.below(x.numel());
    Tensor xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    const double num = (objective(xp) - objective(xm)) / (2.0 * h);
    const double ana = gx[i];
    EXPECT_NEAR(ana, num, tol * std::max({1.0, std::abs(num), std::abs(ana)}))
        << "input index " << i;
  }

  // Parameter gradients.
  for (Param* p : layer.params()) {
    const std::size_t n_param_checks = std::min<std::size_t>(p->value.numel(), 10);
    for (std::size_t c = 0; c < n_param_checks; ++c) {
      const std::size_t i = rng.below(p->value.numel());
      const float orig = p->value[i];
      p->value[i] = orig + h;
      const double up = objective(x);
      p->value[i] = orig - h;
      const double dn = objective(x);
      p->value[i] = orig;
      const double num = (up - dn) / (2.0 * h);
      const double ana = p->grad[i];
      EXPECT_NEAR(ana, num,
                  tol * std::max({1.0, std::abs(num), std::abs(ana)}))
          << "param index " << i;
    }
  }
}

TEST(GradCheck, Conv2dStride1) {
  Rng rng(1);
  Conv2d l(2, 3, 3, 1, 1, rng);
  gradcheck_layer(l, {2, 2, 6, 6}, 101);
}

TEST(GradCheck, Conv2dStride2) {
  Rng rng(2);
  Conv2d l(2, 4, 3, 2, 1, rng);
  gradcheck_layer(l, {2, 2, 8, 8}, 102);
}

TEST(GradCheck, ConvT2dStride1) {
  Rng rng(3);
  ConvT2d l(3, 2, 3, 1, 1, 0, rng);
  gradcheck_layer(l, {2, 3, 5, 5}, 103);
}

TEST(GradCheck, ConvT2dStride2Upsamples) {
  Rng rng(4);
  ConvT2d l(3, 2, 3, 2, 1, 1, rng);
  Tensor x({1, 3, 4, 4});
  Tensor y = l.forward(x, false);
  ASSERT_EQ(y.dim(2), 8u);  // exact doubling
  ASSERT_EQ(y.dim(3), 8u);
  gradcheck_layer(l, {2, 3, 4, 4}, 104);
}

TEST(GradCheck, Conv3dStride1) {
  Rng rng(5);
  Conv3d l(1, 2, 3, 1, 1, rng);
  gradcheck_layer(l, {2, 1, 4, 4, 4}, 105);
}

TEST(GradCheck, Conv3dStride2) {
  Rng rng(6);
  Conv3d l(2, 2, 3, 2, 1, rng);
  gradcheck_layer(l, {1, 2, 6, 6, 6}, 106);
}

TEST(GradCheck, ConvT3dStride2Upsamples) {
  Rng rng(7);
  ConvT3d l(2, 1, 3, 2, 1, 1, rng);
  Tensor x({1, 2, 3, 3, 3});
  Tensor y = l.forward(x, false);
  ASSERT_EQ(y.dim(2), 6u);
  gradcheck_layer(l, {1, 2, 3, 3, 3}, 107);
}

TEST(GradCheck, ConvT3dStride1) {
  Rng rng(8);
  ConvT3d l(2, 2, 3, 1, 1, 0, rng);
  gradcheck_layer(l, {1, 2, 4, 4, 4}, 108);
}

TEST(GradCheck, Linear) {
  Rng rng(9);
  Linear l(10, 7, rng);
  gradcheck_layer(l, {4, 10}, 109);
}

TEST(GradCheck, Tanh) {
  Tanh l;
  gradcheck_layer(l, {3, 17}, 110);
}

TEST(GradCheck, LeakyReLU) {
  LeakyReLU l(0.2f);
  // Shift inputs away from the kink at 0 by using a generous h-aware seed;
  // the loose tolerance also absorbs rare kink crossings.
  gradcheck_layer(l, {3, 17}, 111, /*h=*/1e-2f, /*tol=*/6e-2f);
}

TEST(GradCheck, GDNForwardShape) {
  GDN l(4, /*inverse=*/false);
  Tensor x({2, 4, 3, 3});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = 0.1f * (i % 7);
  Tensor y = l.forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(GradCheck, GDN) {
  GDN l(3, /*inverse=*/false);
  gradcheck_layer(l, {2, 3, 4, 4}, 112);
}

TEST(GradCheck, InverseGDN) {
  GDN l(3, /*inverse=*/true);
  gradcheck_layer(l, {2, 3, 4, 4}, 113);
}

TEST(GradCheck, GDN3dInput) {
  GDN l(2, /*inverse=*/false);
  gradcheck_layer(l, {1, 2, 3, 3, 3}, 114);
}

TEST(GradCheck, ResBlock3d) {
  // The hard-ReLU inside the block makes finite differences noisy (kink
  // crossings shift many downstream activations at once); the tolerance is
  // loose enough for that but still catches a mis-wired skip connection,
  // which produces O(1) errors.
  Rng rng(10);
  ResBlock3d l(2, rng);
  gradcheck_layer(l, {1, 2, 4, 4, 4}, 115, /*h=*/5e-3f, /*tol=*/0.15f);
}

// ------------------------------------------------------------- losses ----

/// Numeric check for a loss over its primary input.
void gradcheck_loss(
    const std::function<double(const Tensor&, Tensor&)>& loss_fn,
    std::vector<std::size_t> shape, std::uint64_t seed, float h = 1e-2f,
    float tol = 3e-2f) {
  Rng rng(seed);
  Tensor x(shape);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.gaussianf();
  Tensor g(shape);
  loss_fn(x, g);
  for (std::size_t c = 0; c < std::min<std::size_t>(x.numel(), 15); ++c) {
    const std::size_t i = rng.below(x.numel());
    Tensor xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    Tensor dummy(shape);
    const double num = (loss_fn(xp, dummy) - loss_fn(xm, dummy)) / (2.0 * h);
    EXPECT_NEAR(g[i], num,
                tol * std::max({1.0, std::abs(num),
                                std::abs(static_cast<double>(g[i]))}))
        << "index " << i;
  }
}

TEST(GradCheck, MseLoss) {
  Rng rng(20);
  Tensor target({4, 9});
  for (std::size_t i = 0; i < target.numel(); ++i)
    target[i] = rng.gaussianf();
  gradcheck_loss(
      [&](const Tensor& x, Tensor& g) {
        g.zero();
        return losses::mse(x, target, g);
      },
      {4, 9}, 201);
}

TEST(GradCheck, LogCoshLoss) {
  Rng rng(21);
  Tensor target({4, 9});
  for (std::size_t i = 0; i < target.numel(); ++i)
    target[i] = rng.gaussianf();
  gradcheck_loss(
      [&](const Tensor& x, Tensor& g) {
        g.zero();
        return losses::logcosh(x, target, g);
      },
      {4, 9}, 202);
}

TEST(GradCheck, KlDivergenceOverMu) {
  Tensor logvar({5, 4});
  for (std::size_t i = 0; i < logvar.numel(); ++i)
    logvar[i] = 0.1f * static_cast<float>(i % 3) - 0.1f;
  gradcheck_loss(
      [&](const Tensor& mu, Tensor& gmu) {
        gmu.zero();
        Tensor glv(logvar.shape());
        return losses::kl_divergence(mu, logvar, 0.7, gmu, glv);
      },
      {5, 4}, 203);
}

TEST(GradCheck, KlDivergenceOverLogvar) {
  Tensor mu({5, 4});
  for (std::size_t i = 0; i < mu.numel(); ++i)
    mu[i] = 0.2f * static_cast<float>(i % 5) - 0.4f;
  gradcheck_loss(
      [&](const Tensor& lv, Tensor& glv) {
        glv.zero();
        Tensor gmu(mu.shape());
        return losses::kl_divergence(mu, lv, 0.7, gmu, glv);
      },
      {5, 4}, 204);
}

TEST(GradCheck, MmdLoss) {
  Rng rng(22);
  Tensor prior({6, 3});
  for (std::size_t i = 0; i < prior.numel(); ++i)
    prior[i] = rng.gaussianf();
  gradcheck_loss(
      [&](const Tensor& z, Tensor& gz) {
        gz.zero();
        return losses::mmd_rbf(z, prior, 1.0, gz);
      },
      {6, 3}, 205);
}

TEST(GradCheck, SlicedWassersteinLoss) {
  Rng rng(23);
  Tensor prior({8, 4});
  for (std::size_t i = 0; i < prior.numel(); ++i)
    prior[i] = rng.gaussianf();
  // Fixed projection seed per evaluation so numeric and analytic gradients
  // see the same random directions. Piecewise-smooth in z (sorting), so
  // generic points are differentiable.
  gradcheck_loss(
      [&](const Tensor& z, Tensor& gz) {
        gz.zero();
        Rng proj(777);
        return losses::sliced_wasserstein(z, prior, 16, 1.0, proj, gz);
      },
      {8, 4}, 206, /*h=*/5e-3f, /*tol=*/6e-2f);
}

TEST(GradCheck, DipPenalty) {
  gradcheck_loss(
      [&](const Tensor& mu, Tensor& gmu) {
        gmu.zero();
        return losses::dip_penalty(mu, 0.5, 0.25, gmu);
      },
      {7, 3}, 207);
}

TEST(GradCheck, L1LossSign) {
  // L1 grad is +-1/n away from zero; verify signs rather than magnitudes.
  Tensor x({1, 4}), t({1, 4}), g({1, 4});
  x[0] = 1.0f; t[0] = 0.0f;   // +
  x[1] = -1.0f; t[1] = 0.0f;  // -
  x[2] = 0.5f; t[2] = 0.5f;   // 0
  x[3] = 2.0f; t[3] = 5.0f;   // -
  losses::l1(x, t, g);
  EXPECT_GT(g[0], 0.0f);
  EXPECT_LT(g[1], 0.0f);
  EXPECT_EQ(g[2], 0.0f);
  EXPECT_LT(g[3], 0.0f);
}

}  // namespace
}  // namespace aesz::nn
