#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/field.hpp"
#include "data/synth.hpp"

namespace aesz {
namespace {

TEST(Field, ConstructAndAccess) {
  Field f(Dims(4, 5), 1.5f);
  EXPECT_EQ(f.size(), 20u);
  f.at2(2, 3) = 7.0f;
  EXPECT_EQ(f.at2(2, 3), 7.0f);
  EXPECT_EQ(f.at(2 * 5 + 3), 7.0f);
}

TEST(Field, MinMaxAndRange) {
  Field f(Dims(10), 0.0f);
  f.at(3) = -2.0f;
  f.at(7) = 5.0f;
  auto [lo, hi] = f.min_max();
  EXPECT_EQ(lo, -2.0f);
  EXPECT_EQ(hi, 5.0f);
  EXPECT_EQ(f.value_range(), 7.0f);
}

TEST(Field, LogTransform) {
  Field f(Dims(3), 0.0f);
  f.at(0) = 0.0f;
  f.at(1) = 9.0f;
  f.at(2) = 99.0f;
  f.log_transform();
  EXPECT_NEAR(f.at(0), 0.0f, 1e-6);
  EXPECT_NEAR(f.at(1), 1.0f, 1e-6);
  EXPECT_NEAR(f.at(2), 2.0f, 1e-6);
}

TEST(Field, RawIORoundtrip) {
  const std::string path = "/tmp/aesz_field_test.f32";
  Field f = synth::value_noise_2d(16, 24, 3, 2.0, 99);
  f.save_raw(path);
  Field g = Field::load_raw(path, f.dims());
  ASSERT_EQ(g.size(), f.size());
  for (std::size_t i = 0; i < f.size(); ++i) EXPECT_EQ(f.at(i), g.at(i));
  std::remove(path.c_str());
}

TEST(Field, LoadMissingThrows) {
  EXPECT_THROW((void)Field::load_raw("/nonexistent/x.f32", Dims(4)), Error);
}

TEST(Field, SavePgm2D) {
  const std::string path = "/tmp/aesz_test.pgm";
  Field f = synth::value_noise_2d(8, 9, 2, 2.0, 1);
  f.save_pgm(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(std::filesystem::file_size(path), 8u * 9u);
  std::remove(path.c_str());
}

TEST(Synth, Deterministic) {
  Field a = synth::cesm_cldhgh(32, 64, 5, 1);
  Field b = synth::cesm_cldhgh(32, 64, 5, 1);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(Synth, TimestepsDiffer) {
  Field a = synth::cesm_cldhgh(32, 64, 5, 1);
  Field b = synth::cesm_cldhgh(32, 64, 6, 1);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.at(i) != b.at(i)) ++diff;
  // Correlated but clearly distinct; the exact-zero clear-sky plateaus are
  // shared between consecutive steps, so only a minority of points move.
  EXPECT_GT(diff, a.size() / 20);
}

TEST(Synth, SeedsDiffer) {
  Field a = synth::nyx_baryon_density(16, 42, 4);
  Field b = synth::nyx_baryon_density(16, 42, 5);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.at(i) != b.at(i)) ++diff;
  EXPECT_GT(diff, a.size() / 2);
}

TEST(Synth, CldhghIsFractionWithConstantRegions) {
  Field f = synth::cesm_cldhgh(128, 256, 10);
  std::size_t zeros = 0, ones = 0;
  for (float v : f.values()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    if (v == 0.0f) ++zeros;
    if (v == 1.0f) ++ones;
  }
  // Clear-sky plateaus: a meaningful share of exact constants.
  EXPECT_GT(zeros, f.size() / 20);
}

TEST(Synth, NyxDensityIsLogNormalish) {
  Field f = synth::nyx_baryon_density(32, 42);
  double mx = 0;
  for (float v : f.values()) {
    EXPECT_GT(v, 0.0f);  // densities positive
    mx = std::max<double>(mx, v);
  }
  EXPECT_GT(mx, 10.0);  // heavy right tail (overdense filaments)
}

TEST(Synth, HurricaneUHasVortexSignature) {
  Field f = synth::hurricane_u(8, 64, 64, 20);
  auto [lo, hi] = f.min_max();
  // Tangential wind flips sign across the eye.
  EXPECT_LT(lo, -10.0f);
  EXPECT_GT(hi, 10.0f);
}

TEST(Synth, QvaporStratified) {
  Field f = synth::hurricane_qvapor(16, 32, 32, 20);
  // Column means should decrease with altitude (k index).
  double low = 0, high = 0;
  for (std::size_t i = 0; i < 32; ++i)
    for (std::size_t j = 0; j < 32; ++j) {
      low += f.at3(0, i, j);
      high += f.at3(15, i, j);
    }
  EXPECT_GT(low, 2.0 * high);
  for (float v : f.values()) EXPECT_GE(v, 0.0f);
}

TEST(Synth, RtmWavefrontMoves) {
  Field a = synth::rtm(32, 32, 32, 1450);
  Field b = synth::rtm(32, 32, 32, 1550);
  // Energy distribution should shift as the front expands.
  double da = 0, db = 0;
  for (std::size_t k = 16; k < 32; ++k)
    for (std::size_t i = 0; i < 32; ++i)
      for (std::size_t j = 0; j < 32; ++j) {
        da += std::abs(a.at3(k, i, j));
        db += std::abs(b.at3(k, i, j));
      }
  EXPECT_NE(da, db);
}

TEST(Synth, ExafelHasPeaksOverBackground) {
  Field f = synth::exafel(128, 128, 300);
  auto [lo, hi] = f.min_max();
  EXPECT_GT(hi - lo, 100.0f);  // Bragg peaks tower over the pedestal
}

TEST(Synth, Figure8SuiteShape) {
  const auto suite = synth::figure8_suite(1);
  ASSERT_EQ(suite.size(), 8u);
  EXPECT_EQ(suite[0].name, "CESM-CLDHGH");
  EXPECT_EQ(suite[0].field.dims().rank, 2);
  EXPECT_EQ(suite[7].name, "RTM");
  EXPECT_EQ(suite[7].field.dims().rank, 3);
  for (const auto& nf : suite) EXPECT_GT(nf.field.value_range(), 0.0f);
}

TEST(Synth, ValueNoiseRange) {
  Field f = synth::value_noise_3d(16, 16, 16, 4, 3.0, 2);
  for (float v : f.values()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

}  // namespace
}  // namespace aesz
