#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "data/synth.hpp"
#include "metrics/metrics.hpp"
#include "pipeline/container.hpp"
#include "predictors/registry.hpp"
#include "progressive/progressive.hpp"
#include "sz/common.hpp"
#include "temporal/temporal.hpp"
#include "util/bytestream.hpp"

namespace aesz {
namespace {

CodecRegistry& reg() { return CodecRegistry::instance(); }

Field field_for_rank(int rank) {
  switch (rank) {
    case 1: {
      Field f{Dims(std::size_t{512})};
      for (std::size_t i = 0; i < f.size(); ++i)
        f.at(i) = std::sin(0.02f * static_cast<float>(i)) +
                  0.2f * std::sin(0.17f * static_cast<float>(i));
      return f;
    }
    case 2: return synth::cesm_freqsh(32, 48, 50);
    default: return synth::hurricane_u(16, 16, 16, 43);
  }
}

TEST(Registry, AllCodecsAndWrappersRegistered) {
  // Seven built-ins, one `parallel:<codec>` pipeline wrapper each, and one
  // `progressive:<codec>` layered wrapper per error-bounded built-in
  // (six: AE-B has no bound to ladder).
  const auto names = reg().names();
  ASSERT_EQ(names.size(), 20u);
  for (const char* base : {"AE-SZ", "SZ2.1", "SZauto", "SZinterp", "ZFP",
                           "AE-A", "AE-B"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), base) != names.end())
        << base << " missing from the registry";
    EXPECT_TRUE(reg().contains(base));
    const std::string wrapped = std::string("parallel:") + base;
    EXPECT_TRUE(reg().contains(wrapped)) << wrapped;
    // The wrapper advertises the inner codec's error-bound capability.
    EXPECT_EQ(reg().find(wrapped)->error_bounded,
              reg().find(base)->error_bounded)
        << wrapped;
    const std::string layered = std::string("progressive:") + base;
    EXPECT_EQ(reg().contains(layered),
              reg().find(base)->error_bounded)
        << layered;
  }
}

TEST(Registry, LookupIsCaseInsensitive) {
  EXPECT_TRUE(reg().contains("sz2.1"));
  EXPECT_TRUE(reg().contains("ZFP"));
  EXPECT_TRUE(reg().contains("zfp"));
  auto c = reg().create("ae-sz", 2);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->name(), "AE-SZ");
}

TEST(Registry, UnknownCodecIsTypedError) {
  auto c = reg().create("SZ9000");
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code, ErrCode::kUnsupported);
  // The message lists what IS available, for CLI ergonomics.
  EXPECT_NE(c.status().message.find("SZ2.1"), std::string::npos);
}

TEST(Registry, CreatedNamesMatchRegistryNames) {
  for (const auto& name : reg().names()) {
    for (int rank = 1; rank <= 3; ++rank) {
      auto c = reg().create(name, rank);
      ASSERT_TRUE(c.ok()) << name;
      EXPECT_EQ((*c)->name(), name);
      // The metadata flag (used by `list-codecs` without constructing the
      // codec) must agree with the instance.
      EXPECT_EQ(reg().find(name)->error_bounded, (*c)->error_bounded())
          << name;
    }
  }
}

/// The acceptance-criteria suite: every registered codec x {Abs, Rel}
/// bounds x 1-D/2-D/3-D synthetic fields round-trips within the bound
/// (non-error-bounded codecs and unsupported ranks are skipped via the
/// interface, not via name lists).
TEST(Registry, RoundTripEveryCodecBoundAndRank) {
  for (const auto& name : reg().names()) {
    for (int rank = 1; rank <= 3; ++rank) {
      auto created = reg().create(name, rank);
      ASSERT_TRUE(created.ok()) << name;
      std::unique_ptr<Compressor> c = std::move(created).value();
      if (!c->supports_rank(rank)) continue;
      const Field f = field_for_rank(rank);
      const double range = f.value_range();
      for (const ErrorBound& eb :
           {ErrorBound::Abs(1e-2 * range), ErrorBound::Rel(1e-2)}) {
        const auto stream = c->compress(f, eb);
        auto recon = c->decompress(stream);
        ASSERT_TRUE(recon.ok())
            << name << " rank " << rank << " " << eb.str() << ": "
            << recon.status().str();
        ASSERT_EQ(recon->dims(), f.dims()) << name;
        if (!c->error_bounded()) continue;  // AE-B: fixed ratio, no bound
        const double tol = eb.absolute(range);
        EXPECT_LE(metrics::max_abs_err(f.values(), recon->values()),
                  tol * (1 + 1e-9))
            << name << " violated " << eb.str() << " at rank " << rank;
      }
    }
  }
}

TEST(Registry, PsnrBoundMode) {
  // PSNR mode derives the tolerance from the uniform-noise model
  // (MSE = e^2/3); since max_err <= e, the worst guaranteed PSNR is the
  // target minus 10*log10(3) ~ 4.8 dB, and in practice it lands above the
  // target.
  auto c = reg().create("SZ2.1").value();
  const Field f = field_for_rank(2);
  const double target = 60.0;
  const auto stream = c->compress(f, ErrorBound::PSNR(target));
  Field g = c->decompress(stream).value();
  EXPECT_GE(metrics::psnr(f.values(), g.values()), target - 4.8);
}

TEST(Registry, ErrorBoundParse) {
  EXPECT_EQ(ErrorBound::parse("abs:1e-3").value(), ErrorBound::Abs(1e-3));
  EXPECT_EQ(ErrorBound::parse("REL:0.01").value(), ErrorBound::Rel(0.01));
  EXPECT_EQ(ErrorBound::parse("psnr:60").value(), ErrorBound::PSNR(60.0));
  EXPECT_EQ(ErrorBound::parse("1e-2").value(), ErrorBound::Rel(1e-2));
  // str() must survive a round-trip through parse(), including bounds
  // that a fixed-precision format would print as zero.
  EXPECT_EQ(ErrorBound::parse(ErrorBound::Rel(1e-7).str()).value(),
            ErrorBound::Rel(1e-7));
  for (const char* bad : {"", "pnsr:60", "rel:", "rel:zero", "rel:-1",
                          "abs:0", "rel:nan", "rel:inf"}) {
    const auto r = ErrorBound::parse(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code, ErrCode::kInvalidArgument) << bad;
  }
}

TEST(Registry, ErrorBoundAbsolute) {
  EXPECT_DOUBLE_EQ(ErrorBound::Abs(0.5).absolute(100.0), 0.5);
  EXPECT_DOUBLE_EQ(ErrorBound::Rel(1e-2).absolute(100.0), 1.0);
  EXPECT_DOUBLE_EQ(ErrorBound::Rel(1e-2).absolute(0.0), 1e-2);  // degenerate
  // psnr:60 on range 1: e = sqrt(3) * 10^-3.
  EXPECT_NEAR(ErrorBound::PSNR(60).absolute(1.0), std::sqrt(3.0) * 1e-3,
              1e-12);
}

TEST(Registry, IdentifyByMagic) {
  const Field f = field_for_rank(2);
  for (const char* name : {"SZ2.1", "SZauto", "SZinterp", "ZFP"}) {
    auto c = reg().create(name).value();
    const auto stream = c->compress(f, 1e-2);
    auto id = reg().identify(stream);
    ASSERT_TRUE(id.ok()) << name;
    EXPECT_EQ(*id, name);
  }
  EXPECT_EQ(reg().identify({}).status().code, ErrCode::kTruncated);
  const std::vector<std::uint8_t> junk{1, 2, 3, 4, 5};
  EXPECT_EQ(reg().identify(junk).status().code, ErrCode::kBadMagic);
}

/// Satellite regression for the identify()/docs drift: EVERY registered
/// magic resolves to its codec, and all three container formats (AEPC
/// parallel, AETC temporal, AEPR progressive) resolve through an
/// inner-codec lookup — not just the ones some test happened to pick.
TEST(Registry, IdentifyResolvesEveryRegisteredMagicAndAllContainers) {
  // Plain codecs: a stream leading with the registered magic identifies
  // as that codec (identify matches magics without parsing further).
  std::size_t with_magic = 0;
  for (const auto& name : reg().names()) {
    const CodecInfo* info = reg().find(name);
    ASSERT_NE(info, nullptr) << name;
    if (info->magic == 0) continue;  // container-format wrappers
    ++with_magic;
    ByteWriter w;
    w.put(info->magic);
    const auto stream = w.take();
    auto id = reg().identify(stream);
    ASSERT_TRUE(id.ok()) << name << ": " << id.status().str();
    EXPECT_EQ(*id, name);
  }
  EXPECT_EQ(with_magic, 7u);  // every built-in carries a distinct magic

  const Field f = field_for_rank(2);

  // AEPC parallel container -> parallel:<codec> via the inner MAGIC.
  {
    auto c = reg().create("parallel:SZ2.1", 2).value();
    auto id = reg().identify(c->compress(f, 1e-2));
    ASSERT_TRUE(id.ok()) << id.status().str();
    EXPECT_EQ(*id, "parallel:SZ2.1");
  }
  // AETC temporal container -> temporal:<codec> via the inner NAME.
  {
    temporal::TemporalWriter::Options opt;
    opt.inner = "SZ2.1";
    temporal::TemporalWriter w(f.dims(), ErrorBound::Rel(1e-2), opt);
    w.append(f);
    auto id = reg().identify(w.bytes());
    ASSERT_TRUE(id.ok()) << id.status().str();
    EXPECT_EQ(*id, "temporal:SZ2.1");
  }
  // AEPR progressive container -> progressive:<codec> via the inner NAME.
  {
    auto c = reg().create("progressive:SZ2.1", 2).value();
    auto id = reg().identify(c->compress(f, 1e-2));
    ASSERT_TRUE(id.ok()) << id.status().str();
    EXPECT_EQ(*id, "progressive:SZ2.1");
  }
}

TEST(Registry, LearnedCodecsAreDeterministicAcrossInstances) {
  // Fixed registry seeds: two independently created AE-SZ instances share
  // weights, produce byte-identical streams, and decode each other.
  auto a = reg().create("AE-SZ", 2).value();
  auto b = reg().create("AE-SZ", 2).value();
  const Field f = field_for_rank(2);
  const auto sa = a->compress(f, 1e-2);
  const auto sb = b->compress(f, 1e-2);
  EXPECT_EQ(sa, sb);
  auto g = b->decompress(sa);
  ASSERT_TRUE(g.ok()) << g.status().str();
}

TEST(Registry, ZeroLengthStreamIsTypedErrorForEveryCodec) {
  for (const auto& name : reg().names()) {
    auto c = reg().create(name, 3).value();
    const auto result = c->decompress({});
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code, ErrCode::kTruncated) << name;
  }
}

/// Satellite regression: identify(), container parsing, and every codec's
/// decompress must treat zero-length AND single-byte inputs as typed
/// errors — the degenerate prefixes a flaky transport or truncated file
/// hands the service layer.
TEST(Registry, ZeroAndSingleByteInputsAreTypedErrors) {
  const std::vector<std::uint8_t> empty;
  const std::vector<std::uint8_t> one_byte{0x41};
  EXPECT_EQ(reg().identify(empty).status().code, ErrCode::kTruncated);
  EXPECT_EQ(reg().identify(one_byte).status().code, ErrCode::kTruncated);
  EXPECT_EQ(pipeline::read_container(empty).status().code,
            ErrCode::kTruncated);
  EXPECT_EQ(pipeline::read_container(one_byte).status().code,
            ErrCode::kTruncated);
  EXPECT_EQ(pipeline::peek_inner_magic(empty).status().code,
            ErrCode::kTruncated);
  EXPECT_EQ(pipeline::peek_inner_magic(one_byte).status().code,
            ErrCode::kTruncated);
  EXPECT_FALSE(pipeline::is_container(empty));
  EXPECT_FALSE(pipeline::is_container(one_byte));
  for (const auto& name : reg().names()) {
    auto c = reg().create(name, 3).value();
    const auto result = c->decompress(one_byte);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code, ErrCode::kTruncated) << name;
  }
}

TEST(Registry, MagicCorruptionIsTypedErrorForEveryCodec) {
  for (const auto& name : reg().names()) {
    const int rank = name == "AE-B" ? 3 : 2;
    auto c = reg().create(name, rank).value();
    if (!c->supports_rank(rank)) continue;
    auto stream = c->compress(field_for_rank(rank), 1e-2);
    stream[0] ^= 0xFF;
    const auto result = c->decompress(stream);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code, ErrCode::kBadMagic) << name;
  }
}

/// Satellite regression test: mutate a valid AE-SZ stream at every blob
/// boundary (and truncate it there) — each case must come back as a typed
/// error or a decoded field, never a crash or OOB read (run under
/// ASan/UBSan in CI via scripts/run_sanitizers.sh).
TEST(Registry, AeszCorruptionAtEveryBlobBoundary) {
  auto c = reg().create("AE-SZ", 2).value();
  const Field f = field_for_rank(2);
  const auto stream = c->compress(f, 1e-2);

  // Walk the stream structure to find every blob boundary: fixed header
  // fields, then five length-prefixed blobs (flags, latents, means, codes,
  // unpredictable).
  std::vector<std::size_t> boundaries;
  {
    ByteReader r(stream);
    auto h = sz::read_header(r, reg().find("AE-SZ")->magic);
    ASSERT_TRUE(h.ok());
    boundaries.push_back(r.pos());  // end of shared header
    (void)r.get<float>();
    (void)r.get<float>();
    (void)r.get<std::uint64_t>();
    (void)r.get_varint();
    (void)r.get_varint();
    boundaries.push_back(r.pos());  // end of AE-SZ fixed fields
    for (int blob = 0; blob < 5; ++blob) {
      (void)r.get_blob();
      boundaries.push_back(r.pos());  // end of each blob
    }
    ASSERT_TRUE(r.eof());
  }

  for (const std::size_t b : boundaries) {
    // Truncation at the boundary must be a typed error.
    std::vector<std::uint8_t> cut(stream.begin(),
                                  stream.begin() + static_cast<long>(b));
    if (cut.size() < stream.size()) {
      const auto result = c->decompress(cut);
      ASSERT_FALSE(result.ok()) << "prefix of " << b << " bytes accepted";
      EXPECT_NE(result.status().code, ErrCode::kOk);
    }
    // Byte flips just before/after the boundary must not crash; a typed
    // error or a (garbage) field are both acceptable outcomes.
    for (const std::size_t pos : {b - 1, b}) {
      if (pos >= stream.size()) continue;
      auto bad = stream;
      bad[pos] ^= 0x5A;
      const auto result = c->decompress(bad);
      if (!result.ok()) {
        EXPECT_NE(result.status().code, ErrCode::kOk);
      }
    }
  }
}

}  // namespace
}  // namespace aesz
