#include <gtest/gtest.h>

#include <memory>

#include "ae_baselines/ae_a.hpp"
#include "core/aesz.hpp"
#include "data/synth.hpp"
#include "metrics/metrics.hpp"
#include "sz/sz21.hpp"
#include "sz/szauto.hpp"
#include "sz/szinterp.hpp"
#include "zfp/zfp_like.hpp"

namespace aesz {
namespace {

/// End-to-end protocol of the paper: train on early timesteps, compress an
/// unseen later snapshot, compare the whole compressor zoo under one bound.
TEST(Integration, FullPipelineOnClimateField) {
  Field train0 = synth::cesm_cldhgh(64, 96, 10);
  Field train1 = synth::cesm_cldhgh(64, 96, 20);
  Field test = synth::cesm_cldhgh(64, 96, 55);
  const double rel_eb = 1e-2;
  const double abs_eb = rel_eb * test.value_range();

  AESZ::Options opt;
  opt.ae.rank = 2;
  opt.ae.block = 16;
  opt.ae.latent = 8;
  opt.ae.channels = {4, 8};
  AESZ aesz_codec(opt, 3);
  TrainOptions topt;
  topt.epochs = 8;
  topt.batch = 16;
  aesz_codec.train({&train0, &train1}, topt);

  SZ21 sz21;
  SZAuto szauto;
  SZInterp szinterp;
  ZFPLike zfp;
  AEA aea(AEA::Options{.window = 256, .latent = 4}, 4);

  for (Compressor* c : std::initializer_list<Compressor*>{
           &aesz_codec, &sz21, &szauto, &szinterp, &zfp, &aea}) {
    const auto stream = c->compress(test, rel_eb);
    Field g = c->decompress(stream).value();
    ASSERT_EQ(g.size(), test.size()) << c->name();
    EXPECT_LE(metrics::max_abs_err(test.values(), g.values()),
              abs_eb * (1 + 1e-9))
        << c->name();
    EXPECT_GT(metrics::compression_ratio(test.size(), stream.size()), 1.5)
        << c->name();
    EXPECT_GT(metrics::psnr(test.values(), g.values()), 25.0) << c->name();
  }
}

TEST(Integration, AESZBeatsOrMatchesLorenzoOnlyAblation) {
  // Fig. 11's point: the adaptive AE+Lorenzo selector should not lose to
  // a Lorenzo-only policy on data the AE learned.
  Field train0 = synth::cesm_cldhgh(64, 96, 10);
  Field train1 = synth::cesm_cldhgh(64, 96, 15);
  Field test = synth::cesm_cldhgh(64, 96, 55);

  AESZ::Options opt;
  opt.ae.rank = 2;
  opt.ae.block = 16;
  opt.ae.latent = 8;
  opt.ae.channels = {4, 8};
  AESZ adaptive(opt, 5);
  TrainOptions topt;
  topt.epochs = 10;
  topt.batch = 16;
  adaptive.train({&train0, &train1}, topt);

  const std::string path = "/tmp/aesz_integration_model.bin";
  adaptive.save_model(path);
  opt.policy = AESZ::Policy::kLorenzoOnly;
  AESZ lorenzo_only(opt, 5);
  lorenzo_only.load_model(path);
  std::remove(path.c_str());

  const auto a = adaptive.compress(test, 2e-2);
  const auto b = lorenzo_only.compress(test, 2e-2);
  // The selector picks per-block minima, so it can only add the flag+latent
  // overhead; allow a small slack but catch gross regressions.
  EXPECT_LT(static_cast<double>(a.size()),
            static_cast<double>(b.size()) * 1.15);
}

TEST(Integration, NyxLogTransformPipeline) {
  // The paper compresses NYX fields in log space.
  Field train = synth::nyx_baryon_density(24, 40);
  train.log_transform();
  Field test = synth::nyx_baryon_density(24, 42, /*seed=*/777);
  test.log_transform();

  AESZ::Options opt;
  opt.ae.rank = 3;
  opt.ae.block = 8;
  opt.ae.latent = 8;
  opt.ae.channels = {4, 8};
  AESZ codec(opt, 6);
  TrainOptions topt;
  topt.epochs = 6;
  topt.batch = 16;
  codec.train({&train}, topt);

  const auto stream = codec.compress(test, 1e-2);
  Field g = codec.decompress(stream).value();
  EXPECT_LE(metrics::max_abs_err(test.values(), g.values()),
            1e-2 * test.value_range() * (1 + 1e-9));
  EXPECT_GT(codec.last_stats().blocks_total, 0u);
}

TEST(Integration, StreamsAreSelfContainedAcrossFields) {
  // One codec object, many fields: streams must not leak state.
  SZInterp c;
  Field a = synth::cesm_freqsh(40, 56, 50);
  Field b = synth::hurricane_qvapor(8, 24, 24, 43);
  const auto sa = c.compress(a, 1e-3);
  const auto sb = c.compress(b, 1e-3);
  Field ra = c.decompress(sa).value();
  Field rb = c.decompress(sb).value();
  EXPECT_EQ(ra.dims().rank, 2);
  EXPECT_EQ(rb.dims().rank, 3);
  EXPECT_LE(metrics::max_abs_err(a.values(), ra.values()),
            1e-3 * a.value_range() * (1 + 1e-9));
  EXPECT_LE(metrics::max_abs_err(b.values(), rb.values()),
            1e-3 * b.value_range() * (1 + 1e-9));
}

TEST(Integration, PsnrOrderingTracksErrorBound) {
  // Across every error-bounded codec: eb 1e-3 must beat eb 1e-2 in PSNR.
  Field f = synth::rtm(24, 24, 24, 1510);
  SZ21 sz21;
  SZInterp szinterp;
  ZFPLike zfp;
  for (Compressor* c : std::initializer_list<Compressor*>{
           &sz21, &szinterp, &zfp}) {
    Field loose = c->decompress(c->compress(f, 1e-2)).value();
    Field tight = c->decompress(c->compress(f, 1e-3)).value();
    EXPECT_GT(metrics::psnr(f.values(), tight.values()),
              metrics::psnr(f.values(), loose.values()))
        << c->name();
  }
}

}  // namespace
}  // namespace aesz
